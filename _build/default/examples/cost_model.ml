(* The cost model and ordering selection in isolation (paper Section 6).

   Builds the paper's Figure 7 situation by hand: three explicit ranges
   and their computed default ranges, with a profile that makes a default
   range the hottest.  Prints Equation 1/2 costs for several orderings
   and shows that the Figure 8 greedy selection matches the exhaustive
   search — the agreement the paper reports for all its test programs.

   Run with:  dune exec examples/cost_model.exe *)

let item range target cost count payload =
  {
    Reorder.Select.in_range = range;
    in_target = target;
    in_cost = cost;
    in_count = count;
    in_payload = payload;
  }

let pp_items label items =
  Printf.printf "%s\n" label;
  List.iter
    (fun (it : Reorder.Select.input_item) ->
      Printf.printf "  %-14s -> %-3s cost=%d count=%d\n"
        (Reorder.Range.show it.Reorder.Select.in_range)
        it.Reorder.Select.in_target it.Reorder.Select.in_cost
        it.Reorder.Select.in_count)
    items

let () =
  (* explicit ranges as in Figure 7(a): [c1..c2] -> T1, [c3] -> T2,
     [c4] -> T1, with c1=65, c2=90, c3=100, c4=110 *)
  let explicit =
    [
      item (Reorder.Range.make 65 90) "T1" 4 150 0;
      item (Reorder.Range.single 100) "T2" 2 50 1;
      item (Reorder.Range.single 110) "T1" 2 30 2;
    ]
  in
  let defaults =
    Reorder.Range.complement_cover
      (List.map (fun it -> it.Reorder.Select.in_range) explicit)
  in
  Printf.printf "default ranges: %s\n"
    (String.concat ", " (List.map Reorder.Range.show defaults));
  (* profile: most values fall below 'A' (e.g. blanks and digits) *)
  let default_counts = [ 600; 40; 20; 110 ] in
  let default_items =
    List.mapi
      (fun j (r, count) ->
        item r "TD" (Reorder.Range_cond.cost r) count (3 + j))
      (List.combine defaults default_counts)
  in
  let items = explicit @ default_items in
  let total = List.fold_left (fun a it -> a + it.Reorder.Select.in_count) 0 items in
  pp_items "selection problem (explicit + default ranges):" items;

  (* Equation 1: explicit cost of the original order *)
  let orig_pairs =
    List.map
      (fun it -> (it.Reorder.Select.in_count, it.Reorder.Select.in_cost))
      explicit
  in
  Printf.printf "\nEquation 1 explicit cost of the original order (x total): %d\n"
    (Reorder.Cost.explicit_cost orig_pairs);
  Printf.printf "Equation 2 full cost of the original sequence: %d\n"
    (Reorder.Cost.sequence_cost ~total ~explicit:orig_pairs);

  let show_choice label = function
    | None -> Printf.printf "%s: no valid choice\n" label
    | Some (c : Reorder.Select.choice) ->
      Printf.printf "%s: cost %d, default -> %s\n" label
        c.Reorder.Select.est_cost c.Reorder.Select.default_target;
      List.iteri
        (fun i (it : Reorder.Select.input_item) ->
          Printf.printf "  %d. test %-14s -> %s\n" (i + 1)
            (Reorder.Range.show it.Reorder.Select.in_range)
            it.Reorder.Select.in_target)
        c.Reorder.Select.ordered;
      Printf.printf "  untested: %s\n"
        (String.concat ", "
           (List.map
              (fun (it : Reorder.Select.input_item) ->
                Reorder.Range.show it.Reorder.Select.in_range)
              c.Reorder.Select.eliminated))
  in
  Printf.printf "\n";
  let greedy = Reorder.Select.greedy ~total items in
  let exhaustive = Reorder.Select.exhaustive ~total items in
  let brute = Reorder.Select.brute_force ~total items in
  show_choice "Figure 8 greedy" greedy;
  show_choice "exhaustive (all subsets)" exhaustive;
  show_choice "brute force (all permutations)" brute;
  match greedy, exhaustive, brute with
  | Some g, Some e, Some b ->
    Printf.printf
      "\ngreedy = exhaustive: %b; greedy = brute force: %b (the agreement the \
       paper reports)\n"
      (g.Reorder.Select.est_cost = e.Reorder.Select.est_cost)
      (g.Reorder.Select.est_cost = b.Reorder.Select.est_cost)
  | _ -> ()
