(* Switch translation heuristics (paper Table 2) and their interplay with
   branch reordering.

   One switch statement is compiled under the three heuristic sets; the
   example prints the shape each produces (jump table / binary search /
   linear chain), then runs the reordering pipeline under each set on a
   skewed input, reproducing the paper's observation that branch
   reordering becomes more effective as indirect jumps are avoided
   (Section 9: "the effectiveness of branch reordering increases as
   indirect jumps become more expensive").

   Run with:  dune exec examples/switch_heuristics.exe *)

let source =
  {|
int vowels;
int digits;
int others;

int classify(int c) {
  switch (c) {
  case 'a': return 1;
  case 'e': return 1;
  case 'i': return 1;
  case 'o': return 1;
  case 'u': return 1;
  case '0': return 2;
  case '1': return 2;
  case '2': return 2;
  case '3': return 2;
  case '4': return 2;
  default: return 0;
  }
}

int main() {
  int c;
  while ((c = getchar()) != EOF) {
    int k = classify(c);
    if (k == 1)
      vowels++;
    else if (k == 2)
      digits++;
    else
      others++;
  }
  print_int(vowels);
  putchar(' ');
  print_int(digits);
  putchar(' ');
  print_int(others);
  putchar('\n');
  return 0;
}
|}

let describe_shape prog =
  let fn = Mir.Program.find_func prog "classify" in
  let branches = ref 0 and jtabs = ref 0 in
  Mir.Func.iter_blocks fn (fun b ->
      match b.Mir.Block.term.Mir.Block.kind with
      | Mir.Block.Br _ -> incr branches
      | Mir.Block.Jtab _ -> incr jtabs
      | _ -> ());
  Printf.printf "  classify: %d conditional branches, %d indirect jumps\n"
    !branches !jtabs

let () =
  let training_input = Workloads.Textgen.prose ~seed:42 ~chars:20_000 in
  let test_input = Workloads.Textgen.prose ~seed:43 ~chars:30_000 in
  List.iter
    (fun hs ->
      Printf.printf "\n=== heuristic set %s ===\n" hs.Mopt.Switch_lower.hs_name;
      let config = { Driver.Config.default with Driver.Config.heuristic = hs } in
      let base = Driver.Pipeline.compile_base config source in
      describe_shape base;
      let result =
        Driver.Pipeline.run ~config ~name:"switch-demo" ~source ~training_input
          ~test_input ()
      in
      let o = result.Driver.Pipeline.r_original.Driver.Pipeline.v_counters in
      let r = result.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters in
      Printf.printf
        "  sequences reordered: %d of %d\n\
        \  instructions: %7d -> %7d (%+.2f%%)\n\
        \  indirect jumps executed: %d -> %d\n"
        (Reorder.Pass.reordered_count result.Driver.Pipeline.r_report)
        (Reorder.Pass.detected_count result.Driver.Pipeline.r_report)
        o.Sim.Counters.insns r.Sim.Counters.insns
        (Driver.Pipeline.pct o.Sim.Counters.insns r.Sim.Counters.insns)
        o.Sim.Counters.indirect_jumps r.Sim.Counters.indirect_jumps)
    Mopt.Switch_lower.all_sets
