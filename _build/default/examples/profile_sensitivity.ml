(* Profile sensitivity: what happens when training and test inputs
   disagree.

   The paper's only regression was hyphen (+3.4% instructions), which it
   attributes to "different test input data ... as compared to the
   training input data" — reordering optimises for the trained
   distribution, and an adversarial test distribution can invert the
   ranking.  This example makes that effect concrete: one classifier
   loop, three training regimes (matching, mismatched, and mixed),
   measured on the same two test inputs.

   Run with:  dune exec examples/profile_sensitivity.exe *)

let source =
  {|
int letters;
int digits;
int blanks;
int others;

int main() {
  int c;
  while ((c = getchar()) != EOF) {
    if (c >= 'a' && c <= 'z')
      letters++;
    else if (c >= '0' && c <= '9')
      digits++;
    else if (c == ' ')
      blanks++;
    else
      others++;
  }
  print_int(letters);
  putchar(' ');
  print_int(digits);
  putchar(' ');
  print_int(blanks);
  putchar(' ');
  print_int(others);
  putchar('\n');
  return 0;
}
|}

(* inputs with opposite character distributions *)
let letters_input =
  String.concat " "
    (List.init 300 (fun i ->
         String.init (3 + (i mod 6)) (fun j ->
             Char.chr (Char.code 'a' + ((i + (j * 7)) mod 26)))))

let digits_input =
  String.concat " "
    (List.init 300 (fun i -> string_of_int (((i * 7919) mod 99991) + 10000)))

let mixed_input =
  String.concat ""
    (List.init 200 (fun i ->
         if i mod 2 = 0 then String.init 8 (fun j -> Char.chr (97 + ((i + j) mod 26)))
         else string_of_int (i * 12345)))

let measure ~train ~test =
  let r =
    Driver.Pipeline.run ~name:"sensitivity" ~source ~training_input:train
      ~test_input:test ()
  in
  let o =
    r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters.Sim.Counters.insns
  in
  let n =
    r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters.Sim.Counters.insns
  in
  Driver.Pipeline.pct o n

let () =
  Printf.printf
    "Instruction change when the sequence is trained on one distribution\n\
     and measured on another (cf. the paper's hyphen discussion):\n\n";
  Printf.printf "%-22s %18s %18s\n" "trained on \\ tested on" "letters text"
    "digit text";
  print_endline (String.make 60 '-');
  List.iter
    (fun (label, train) ->
      Printf.printf "%-22s %+17.2f%% %+17.2f%%\n" label
        (measure ~train ~test:letters_input)
        (measure ~train ~test:digits_input))
    [
      ("letters text", letters_input);
      ("digit text", digits_input);
      ("mixed text", mixed_input);
    ];
  Printf.printf
    "\nMatching train/test pairs sit on the diagonal; off-diagonal entries\n\
     show the win shrinking (or flipping, as for the paper's hyphen) when\n\
     the profile lies about the test distribution, while mixed training\n\
     hedges both.\n"
