examples/switch_heuristics.ml: Driver List Mir Mopt Printf Reorder Sim Workloads
