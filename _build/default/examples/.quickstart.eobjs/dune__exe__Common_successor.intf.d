examples/common_successor.mli:
