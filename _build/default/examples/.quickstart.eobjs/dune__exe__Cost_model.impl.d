examples/cost_model.ml: List Printf Reorder String
