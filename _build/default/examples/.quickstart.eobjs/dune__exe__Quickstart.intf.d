examples/quickstart.mli:
