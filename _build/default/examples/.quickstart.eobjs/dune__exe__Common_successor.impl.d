examples/common_successor.ml: Array Driver Format List Printf Reorder Sim String Workloads
