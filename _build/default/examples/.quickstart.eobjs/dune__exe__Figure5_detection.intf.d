examples/figure5_detection.mli:
