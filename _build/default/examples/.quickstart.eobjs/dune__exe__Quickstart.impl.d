examples/quickstart.ml: Driver Format List Mir Printf Reorder Sim
