examples/switch_heuristics.mli:
