examples/profile_sensitivity.mli:
