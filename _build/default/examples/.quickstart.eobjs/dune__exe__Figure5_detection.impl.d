examples/figure5_detection.ml: Array Driver Format List Mir Mopt Option Printf Reorder Sim String
