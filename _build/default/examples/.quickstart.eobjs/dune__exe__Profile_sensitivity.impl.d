examples/profile_sensitivity.ml: Char Driver List Printf Sim String
