(* A guided tour of detection, default ranges and selection on the
   paper's Figure 5 example:

       if (c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z')
         T1;
       else if (c == '_')
         T2;

   — the classic "is this an identifier character?" test.  The example
   prints each artifact the paper defines on the way to the decision:
   the detected range conditions (Figure 5(c)), the computed default
   ranges (Figure 7), the profile, the p/c-sorted selection problem,
   and the chosen ordering with its Equation 2 cost.

   Run with:  dune exec examples/figure5_detection.exe *)

let source =
  {|
int t1;
int t2;
int t3;

int main() {
  int c;
  while ((c = getchar()) != EOF) {
    if (c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z')
      t1++;
    else if (c == '_')
      t2++;
    else
      t3++;
  }
  print_int(t1);
  putchar(' ');
  print_int(t2);
  putchar(' ');
  print_int(t3);
  putchar('\n');
  return 0;
}
|}

let training_input =
  "some_training_text with_mostly lowercase_words AND A FEW CAPS\n"

let () =
  let base = Driver.Pipeline.compile_base Driver.Config.default source in
  let seqs = Reorder.Detect.find_program base in
  let seq =
    List.find (fun s -> String.equal s.Reorder.Detect.func_name "main") seqs
  in

  Printf.printf "=== detected range conditions (paper Figure 5(c)) ===\n";
  print_string (Format.asprintf "%a" Reorder.Detect.pp seq);

  Printf.printf "\n=== default ranges (paper Figure 7) ===\n";
  List.iter
    (fun r -> Printf.printf "  %s -> default target %s\n" (Reorder.Range.show r)
        seq.Reorder.Detect.default_target)
    (Reorder.Detect.default_ranges seq);

  (* train *)
  let train = Mir.Clone.program base in
  let table = Reorder.Profiles.instrument train seqs in
  let _ = Sim.Machine.run train ~profile:table ~input:training_input in
  let view = Reorder.Profiles.counts table seq in

  Printf.printf "\n=== profile (%d executions of the head) ===\n"
    view.Reorder.Profiles.total;
  List.iteri
    (fun i (it : Reorder.Detect.item) ->
      Printf.printf "  explicit %-12s: %d\n"
        (Reorder.Range.show it.Reorder.Detect.range)
        view.Reorder.Profiles.item_counts.(i))
    seq.Reorder.Detect.items;
  List.iter
    (fun (r, n) ->
      Printf.printf "  default  %-12s: %d\n" (Reorder.Range.show r) n)
    view.Reorder.Profiles.default_counts;

  let input = Reorder.Profiles.select_input seq view in
  let choice =
    Option.get (Reorder.Select.greedy ~total:view.Reorder.Profiles.total input)
  in
  Printf.printf "\n=== selection (Figure 8; Equation 2 cost %d / %d execs) ===\n"
    choice.Reorder.Select.est_cost view.Reorder.Profiles.total;
  List.iteri
    (fun i (it : Reorder.Select.input_item) ->
      Printf.printf "  %d. test %-12s -> %s  (count %d, cost %d)\n" (i + 1)
        (Reorder.Range.show it.Reorder.Select.in_range)
        it.Reorder.Select.in_target it.Reorder.Select.in_count
        it.Reorder.Select.in_cost)
    choice.Reorder.Select.ordered;
  Printf.printf "  untested (new default -> %s): %s\n"
    choice.Reorder.Select.default_target
    (String.concat ", "
       (List.map
          (fun (it : Reorder.Select.input_item) ->
            Reorder.Range.show it.Reorder.Select.in_range)
          choice.Reorder.Select.eliminated));

  (* apply and show the final code *)
  let fn = Mir.Program.find_func base "main" in
  (match Reorder.Apply.apply_seq fn seq choice Reorder.Apply.default_options with
  | Reorder.Apply.Applied info ->
    Mopt.Cleanup.run base;
    Printf.printf "\n=== reordered sequence (%d tests, %d branches, %d cmps merged) ===\n"
      info.Reorder.Apply.final_items info.Reorder.Apply.final_branches
      info.Reorder.Apply.cmps_eliminated;
    print_string (Format.asprintf "%a" Mir.Func.pp fn)
  | Reorder.Apply.Skipped reason -> Printf.printf "not applied: %s\n" reason)
