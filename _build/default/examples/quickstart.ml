(* Quickstart: the paper's Figure 1 example, end to end.

   A loop reads characters and tests them against blank, newline and EOF
   in that order.  Because most characters are letters (greater than
   blank), the paper's transformation learns from a training run that the
   best first test is "c > ' '", inserting a branch that did not exist in
   the source — exactly Figure 1(c).

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
int blanks;
int lines;

int main() {
  int c;
  int x = 0;
  while ((c = getchar()) != EOF) {
    if (c == ' ')
      blanks++;          /* Y in the paper's Figure 1 */
    else if (c == '\n')
      lines++;           /* X */
    else
      x++;               /* Z: the common case */
  }
  print_int(x);
  putchar('\n');
  return 0;
}
|}

let training_input =
  "the quick brown fox jumps over the lazy dog\n\
   pack my box with five dozen liquor jugs\n"

let test_input =
  "sphinx of black quartz judge my vow\n\
   how vexingly quick daft zebras jump\n\
   the five boxing wizards jump quickly\n"

let separator title =
  Printf.printf "\n=== %s ===\n" title

let () =
  (* 1. compile with conventional optimizations *)
  let base = Driver.Pipeline.compile_base Driver.Config.default source in
  separator "optimized MIR before reordering (main)";
  print_string (Format.asprintf "%a" Mir.Func.pp (Mir.Program.find_func base "main"));

  (* 2. detect reorderable sequences *)
  let seqs = Reorder.Detect.find_program base in
  separator "detected sequences";
  List.iter (fun s -> print_string (Format.asprintf "%a" Reorder.Detect.pp s)) seqs;

  (* 3. the pipeline: instrument, train, select, transform, measure *)
  let result =
    Driver.Pipeline.run ~name:"quickstart" ~source ~training_input ~test_input
      ()
  in
  separator "reordering report";
  print_string
    (Format.asprintf "%a" Reorder.Pass.pp_report result.Driver.Pipeline.r_report);

  separator "reordered MIR (main)";
  print_string
    (Format.asprintf "%a" Mir.Func.pp
       (Mir.Program.find_func
          result.Driver.Pipeline.r_reordered.Driver.Pipeline.v_program "main"));

  separator "measurements on the test input";
  let o = result.Driver.Pipeline.r_original.Driver.Pipeline.v_counters in
  let r = result.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters in
  Printf.printf "instructions: %7d -> %7d (%+.2f%%)\n" o.Sim.Counters.insns
    r.Sim.Counters.insns
    (Driver.Pipeline.pct o.Sim.Counters.insns r.Sim.Counters.insns);
  Printf.printf "branches:     %7d -> %7d (%+.2f%%)\n"
    o.Sim.Counters.cond_branches r.Sim.Counters.cond_branches
    (Driver.Pipeline.pct o.Sim.Counters.cond_branches
       r.Sim.Counters.cond_branches);
  Printf.printf "output unchanged: %S\n"
    result.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output
