(* Reordering branches with a common successor (paper Section 10,
   Figure 14) — the extension the paper sketches as future work.

   The condition "a == 0 && b == 2 || d == 4 && b == 1" lowers to two
   chains of branches (one per conjunction group), each falling into a
   common successor.  Within a group, reordering tests the most
   selective condition first; across groups, Figure 14(d)-(e)'s
   super-branch view can swap the two conjunctions wholesale.
   Combination counters (2^n, as the paper prescribes) capture the
   correlations that per-branch probabilities would miss.

   Run with:  dune exec examples/common_successor.exe *)

let source =
  {|
int hits;
int misses;

int main() {
  int a;
  int b;
  int d;
  int c;
  a = 0;
  b = 0;
  d = 0;
  while ((c = getchar()) != EOF) {
    /* derive three weakly-correlated conditions from the input */
    a = c % 3;
    b = c % 5;
    d = c % 7;
    if (a == 0 && b == 2 || d == 4 && b == 1)
      hits++;
    else
      misses++;
  }
  print_int(hits);
  putchar(' ');
  print_int(misses);
  putchar('\n');
  return 0;
}
|}

let () =
  let training_input = Workloads.Textgen.prose ~seed:7 ~chars:20_000 in
  let test_input = Workloads.Textgen.prose ~seed:8 ~chars:30_000 in
  let config = { Driver.Config.default with Driver.Config.common_succ = true } in
  let result =
    Driver.Pipeline.run ~config ~name:"common-succ" ~source ~training_input
      ~test_input ()
  in
  Printf.printf "common-successor runs detected: %d (%d super-branch pairs)\n"
    (List.length result.Driver.Pipeline.r_comb)
    (List.length result.Driver.Pipeline.r_pairs);
  List.iter
    (fun (run, outcome) ->
      print_string (Format.asprintf "%a\n" Reorder.Common_succ.pp_run run);
      match outcome with
      | Reorder.Common_succ.Reordered order ->
        Printf.printf "  reordered: tests now run in original positions [%s]\n"
          (String.concat "; "
             (Array.to_list (Array.map string_of_int order)))
      | Reorder.Common_succ.Unchanged reason ->
        Printf.printf "  unchanged: %s\n" reason)
    result.Driver.Pipeline.r_comb;
  List.iter
    (fun (pr, outcome) ->
      Printf.printf "pair #%d (groups of %d and %d conditions): %s\n"
        pr.Reorder.Common_succ.pr_id
        (Array.length pr.Reorder.Common_succ.pr_first.Reorder.Common_succ.conds)
        (Array.length pr.Reorder.Common_succ.pr_second.Reorder.Common_succ.conds)
        (match outcome with
        | Reorder.Common_succ.Reordered _ -> "groups swapped (Figure 14(e))"
        | Reorder.Common_succ.Unchanged reason -> "kept: " ^ reason))
    result.Driver.Pipeline.r_pairs;
  let o = result.Driver.Pipeline.r_original.Driver.Pipeline.v_counters in
  let r = result.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters in
  Printf.printf "instructions: %d -> %d (%+.2f%%)\n" o.Sim.Counters.insns
    r.Sim.Counters.insns
    (Driver.Pipeline.pct o.Sim.Counters.insns r.Sim.Counters.insns);
  Printf.printf "branches:     %d -> %d (%+.2f%%)\n" o.Sim.Counters.cond_branches
    r.Sim.Counters.cond_branches
    (Driver.Pipeline.pct o.Sim.Counters.cond_branches
       r.Sim.Counters.cond_branches)
