(** Branch chaining and trivial branch simplification.

    - Retargets any control transfer pointing at an empty block whose only
      content is a jump, to the jump's destination (chains are followed to
      a fixpoint, with cycle protection).
    - Rewrites [Br (c, t, t)] to [Jmp t].
    - Folds a branch whose block ends with [Cmp (Imm a, Imm b)] into a
      jump. *)

val run_func : Mir.Func.t -> bool
(** Returns [true] if anything changed. *)

val run : Mir.Program.t -> bool
