type strategy =
  | Indirect
  | Binary_search
  | Linear

type heuristic_set = {
  hs_name : string;
  choose : ncases:int -> span:int -> strategy;
}

let dense_enough ~ncases ~span = span <= 3 * ncases

let set_i =
  {
    hs_name = "I";
    choose =
      (fun ~ncases ~span ->
        if ncases >= 4 && dense_enough ~ncases ~span then Indirect
        else if ncases >= 8 then Binary_search
        else Linear);
  }

let set_ii =
  {
    hs_name = "II";
    choose =
      (fun ~ncases ~span ->
        if ncases >= 16 && dense_enough ~ncases ~span then Indirect
        else if ncases >= 8 then Binary_search
        else Linear);
  }

let set_iii = { hs_name = "III"; choose = (fun ~ncases:_ ~span:_ -> Linear) }
let all_sets = [ set_i; set_ii; set_iii ]

let strategy_name = function
  | Indirect -> "indirect"
  | Binary_search -> "binary"
  | Linear -> "linear"

(* ------------------------------------------------------------------ *)

let rop r = Mir.Operand.Reg r
let imm n = Mir.Operand.Imm n

(* Lower one switch.  [b] keeps its body; its terminator is replaced and
   [new_blocks] are returned for splicing right after [b] in the layout. *)
let lower_one fn (b : Mir.Block.t) r cases default strategy =
  let new_blocks = ref [] in
  let emit label insns kind =
    new_blocks := Mir.Block.make ~label insns kind :: !new_blocks
  in
  (match strategy, cases with
  | _, [] ->
    b.Mir.Block.term <- Mir.Block.term (Mir.Block.Jmp default)
  | Linear, (c0, t0) :: rest ->
    (* chain of equality tests in source order; the switch block holds the
       first test *)
    b.Mir.Block.insns <- b.Mir.Block.insns @ [ Mir.Insn.Cmp (rop r, imm c0) ];
    let rec chain prev_set_term = function
      | [] -> prev_set_term default
      | (c, t) :: rest ->
        let label = Mir.Func.fresh_label fn in
        prev_set_term label;
        let block =
          Mir.Block.make ~label
            [ Mir.Insn.Cmp (rop r, imm c) ]
            (Mir.Block.Br (Mir.Cond.Eq, t, "<patch>"))
        in
        new_blocks := block :: !new_blocks;
        chain
          (fun next ->
            block.Mir.Block.term <-
              Mir.Block.term (Mir.Block.Br (Mir.Cond.Eq, t, next)))
          rest
    in
    chain
      (fun next ->
        b.Mir.Block.term <-
          Mir.Block.term (Mir.Block.Br (Mir.Cond.Eq, t0, next)))
      rest
  | Binary_search, _ ->
    let sorted =
      List.sort (fun (a, _) (c, _) -> Int.compare a c) cases |> Array.of_list
    in
    (* each tree node is an eq block (cmp + beq target) falling into an lt
       block (no cmp: the condition codes are still set) that branches to
       the subtrees; the root's eq test lives in the switch block itself *)
    let node lo hi ~emit_eq =
      let rec emit_tree lo hi =
        if lo > hi then default
        else begin
          let mid = (lo + hi) / 2 in
          let c, target = sorted.(mid) in
          let eq_label = Mir.Func.fresh_label fn in
          let lt_label = Mir.Func.fresh_label fn in
          let left = emit_tree lo (mid - 1) in
          let right = emit_tree (mid + 1) hi in
          emit lt_label [] (Mir.Block.Br (Mir.Cond.Lt, left, right));
          emit eq_label
            [ Mir.Insn.Cmp (rop r, imm c) ]
            (Mir.Block.Br (Mir.Cond.Eq, target, lt_label));
          eq_label
        end
      in
      let mid = (lo + hi) / 2 in
      let c, target = sorted.(mid) in
      let lt_label = Mir.Func.fresh_label fn in
      let left = emit_tree lo (mid - 1) in
      let right = emit_tree (mid + 1) hi in
      emit lt_label [] (Mir.Block.Br (Mir.Cond.Lt, left, right));
      emit_eq c target lt_label
    in
    node 0
      (Array.length sorted - 1)
      ~emit_eq:(fun c target lt_label ->
        b.Mir.Block.insns <-
          b.Mir.Block.insns @ [ Mir.Insn.Cmp (rop r, imm c) ];
        b.Mir.Block.term <-
          Mir.Block.term (Mir.Block.Br (Mir.Cond.Eq, target, lt_label)))
  | Indirect, _ ->
    let sorted = List.sort (fun (a, _) (c, _) -> Int.compare a c) cases in
    let lo = fst (List.hd sorted) in
    let hi = fst (List.hd (List.rev sorted)) in
    let table = Array.make (hi - lo + 1) default in
    List.iter (fun (c, t) -> table.(c - lo) <- t) sorted;
    let tbl_id = Mir.Func.add_jtable fn table in
    let idx = Mir.Func.fresh_reg fn in
    let hi_label = Mir.Func.fresh_label fn in
    let jump_label = Mir.Func.fresh_label fn in
    (* bounds check low, bounds check high, index, indirect jump *)
    b.Mir.Block.insns <- b.Mir.Block.insns @ [ Mir.Insn.Cmp (rop r, imm lo) ];
    b.Mir.Block.term <-
      Mir.Block.term (Mir.Block.Br (Mir.Cond.Lt, default, hi_label));
    emit hi_label
      [ Mir.Insn.Cmp (rop r, imm hi) ]
      (Mir.Block.Br (Mir.Cond.Gt, default, jump_label));
    emit jump_label
      [ Mir.Insn.Binop (Mir.Insn.Sub, idx, rop r, imm lo) ]
      (Mir.Block.Jtab (idx, tbl_id)));
  List.rev !new_blocks

let lower_func hs (fn : Mir.Func.t) =
  let rec go acc = function
    | [] -> List.rev acc
    | (b : Mir.Block.t) :: rest -> (
      match b.Mir.Block.term.kind with
      | Mir.Block.Switch (r, cases, default) ->
        let strategy =
          match cases with
          | [] -> Linear
          | (c0, _) :: _ ->
            let values = List.map fst cases in
            let lo = List.fold_left min c0 values in
            let hi = List.fold_left max c0 values in
            hs.choose ~ncases:(List.length cases) ~span:(hi - lo + 1)
        in
        let extra = lower_one fn b r cases default strategy in
        go (List.rev_append (b :: extra) acc) rest
      | Mir.Block.Br _ | Mir.Block.Jmp _ | Mir.Block.Jtab _ | Mir.Block.Ret _ ->
        go (b :: acc) rest)
  in
  fn.Mir.Func.blocks <- go [] fn.Mir.Func.blocks

let lower_program hs (p : Mir.Program.t) =
  List.iter (lower_func hs) p.Mir.Program.funcs
