(* Follow chains of empty jump-only blocks to their final destination. *)
let resolve fn label =
  let rec go seen label =
    if List.mem label seen then label
    else
      match Mir.Func.find_block_opt fn label with
      | Some { Mir.Block.insns = []; term = { kind = Mir.Block.Jmp next; delay = None; _ }; _ }
        ->
        go (label :: seen) next
      | Some _ | None -> label
  in
  go [] label

let run_func (fn : Mir.Func.t) =
  let changed = ref false in
  let retarget label =
    let label' = resolve fn label in
    if not (String.equal label label') then changed := true;
    label'
  in
  List.iter
    (fun (b : Mir.Block.t) ->
      let term = b.Mir.Block.term in
      let set kind =
        b.Mir.Block.term <- { term with kind };
        changed := true
      in
      match term.kind with
      | Mir.Block.Br (cond, taken0, not_taken0) -> (
        let taken = retarget taken0 and not_taken = retarget not_taken0 in
        (* constant condition: the block ends cmp imm, imm *)
        let const_cc =
          match List.rev b.Mir.Block.insns with
          | Mir.Insn.Cmp (Mir.Operand.Imm a, Mir.Operand.Imm c) :: _ ->
            Some (a, c)
          | _ -> None
        in
        match const_cc with
        | Some (a, c) ->
          let dest = if Mir.Cond.eval cond a c then taken else not_taken in
          (* the cmp may still feed later branches via fall-through; keep
             it — dead-code elimination cannot remove cmps, but the cc is
             only consumed by branches we just resolved, and any later
             branch reading it would read the same constant codes. *)
          set (Mir.Block.Jmp dest)
        | None ->
          if String.equal taken not_taken then set (Mir.Block.Jmp taken)
          else if
            not (String.equal taken taken0 && String.equal not_taken not_taken0)
          then set (Mir.Block.Br (cond, taken, not_taken)))
      | Mir.Block.Jmp l ->
        let l' = retarget l in
        if not (String.equal l l') then set (Mir.Block.Jmp l')
      | Mir.Block.Switch (r, cases, default) ->
        let cases' = List.map (fun (c, t) -> (c, retarget t)) cases in
        let default' = retarget default in
        if
          default' <> default
          || List.exists2 (fun (_, a) (_, b) -> a <> b) cases cases'
        then set (Mir.Block.Switch (r, cases', default'))
      | Mir.Block.Jtab (_, id) ->
        let table = Mir.Func.jtab fn id in
        Array.iteri
          (fun i t ->
            let t' = retarget t in
            if not (String.equal t t') then table.(i) <- t')
          table
      | Mir.Block.Ret _ -> ())
    fn.Mir.Func.blocks;
  !changed

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
