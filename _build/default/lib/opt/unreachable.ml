let run_func (fn : Mir.Func.t) =
  let reachable = Mir.Func.reachable fn in
  let before = List.length fn.Mir.Func.blocks in
  fn.Mir.Func.blocks <-
    List.filter
      (fun (b : Mir.Block.t) -> Hashtbl.mem reachable b.Mir.Block.label)
      fn.Mir.Func.blocks;
  List.length fn.Mir.Func.blocks <> before

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
