let will_emit_transfer ~layout_next (b : Mir.Block.t) =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br _ | Mir.Block.Jtab _ | Mir.Block.Ret _ -> true
  | Mir.Block.Jmp l -> (
    match layout_next with Some n -> not (String.equal n l) | None -> true)
  | Mir.Block.Switch _ -> false

let fillable term_uses insn =
  match insn with
  | Mir.Insn.Cmp _ | Mir.Insn.Call _ | Mir.Insn.Profile_range _
  | Mir.Insn.Profile_comb _ | Mir.Insn.Nop ->
    false
  | Mir.Insn.Mov _ | Mir.Insn.Unop _ | Mir.Insn.Binop _ | Mir.Insn.Load _
  | Mir.Insn.Store _ ->
    List.for_all
      (fun d -> not (List.exists (Mir.Reg.equal d) term_uses))
      (Mir.Insn.defs insn)

let fill_block ~layout_next (b : Mir.Block.t) =
  if
    b.Mir.Block.term.delay = None
    && will_emit_transfer ~layout_next b
  then begin
    match List.rev b.Mir.Block.insns with
    | last :: rev_rest
      when fillable (Mir.Liveness.term_uses b.Mir.Block.term) last ->
      b.Mir.Block.insns <- List.rev rev_rest;
      b.Mir.Block.term <- { b.Mir.Block.term with delay = Some last };
      true
    | _ -> false
  end
  else false

(* phase two: steal the first instruction of a single-predecessor target
   (annulled for conditional branches, plain for jumps) *)
let stealable insn =
  match insn with
  | Mir.Insn.Cmp _ | Mir.Insn.Call _ | Mir.Insn.Profile_range _
  | Mir.Insn.Profile_comb _ | Mir.Insn.Nop ->
    false
  | Mir.Insn.Mov _ | Mir.Insn.Unop _ | Mir.Insn.Binop _ | Mir.Insn.Load _
  | Mir.Insn.Store _ ->
    true

let steal_from_target fn ~layout_next (b : Mir.Block.t) =
  if b.Mir.Block.term.delay <> None || not (will_emit_transfer ~layout_next b)
  then false
  else begin
    let preds = Mir.Func.predecessors fn in
    let target_annul =
      match b.Mir.Block.term.kind with
      | Mir.Block.Br (_, taken, _) -> Some (taken, true)
      | Mir.Block.Jmp l -> Some (l, false)
      | Mir.Block.Jtab _ | Mir.Block.Ret _ | Mir.Block.Switch _ -> None
    in
    match target_annul with
    | Some (target, annul) when not (String.equal target b.Mir.Block.label) -> (
      let single_pred =
        match Hashtbl.find_opt preds target with
        | Some [ p ] -> String.equal p b.Mir.Block.label
        | Some _ | None -> false
      in
      if not single_pred then false
      else
        match Mir.Func.find_block_opt fn target with
        | Some tb -> (
          match tb.Mir.Block.insns with
          | first :: rest when stealable first ->
            tb.Mir.Block.insns <- rest;
            b.Mir.Block.term <- { b.Mir.Block.term with delay = Some first };
            b.Mir.Block.term.annul <- annul;
            true
          | _ -> false)
        | None -> false)
    | Some _ | None -> false
  end

let run_func ?(steal = true) (fn : Mir.Func.t) =
  let fill step =
    let rec go count = function
      | [] -> count
      | [ b ] -> if step ~layout_next:None b then count + 1 else count
      | b :: (next :: _ as rest) ->
        let filled = step ~layout_next:(Some next.Mir.Block.label) b in
        go (if filled then count + 1 else count) rest
    in
    go 0 fn.Mir.Func.blocks
  in
  let above = fill fill_block in
  let stolen =
    if steal then
      fill (fun ~layout_next b -> steal_from_target fn ~layout_next b)
    else 0
  in
  above + stolen

let run ?steal (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> acc + run_func ?steal fn) 0 p.Mir.Program.funcs

let strip_func (fn : Mir.Func.t) =
  List.iter
    (fun (b : Mir.Block.t) ->
      match b.Mir.Block.term.delay with
      | Some insn ->
        (if b.Mir.Block.term.annul then
           (* an annulled instruction was stolen from the taken target;
              it executes only on that path, so it must go back there *)
           match b.Mir.Block.term.kind with
           | Mir.Block.Br (_, taken, _) -> (
             match Mir.Func.find_block_opt fn taken with
             | Some tb -> tb.Mir.Block.insns <- insn :: tb.Mir.Block.insns
             | None -> b.Mir.Block.insns <- b.Mir.Block.insns @ [ insn ])
           | _ -> b.Mir.Block.insns <- b.Mir.Block.insns @ [ insn ]
         else b.Mir.Block.insns <- b.Mir.Block.insns @ [ insn ]);
        b.Mir.Block.term <- { b.Mir.Block.term with delay = None };
        b.Mir.Block.term.annul <- false
      | None -> ())
    fn.Mir.Func.blocks

let strip (p : Mir.Program.t) = List.iter strip_func p.Mir.Program.funcs
