let preferred_fallthrough (b : Mir.Block.t) =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br (_, _, not_taken) -> Some not_taken
  | Mir.Block.Jmp l -> Some l
  | Mir.Block.Switch (_, _, default) -> Some default
  | Mir.Block.Jtab _ | Mir.Block.Ret _ -> None

let run_func (fn : Mir.Func.t) =
  match fn.Mir.Func.blocks with
  | [] -> false
  | original ->
    let by_label = Hashtbl.create 64 in
    List.iter
      (fun (b : Mir.Block.t) -> Hashtbl.replace by_label b.Mir.Block.label b)
      original;
    let placed = Hashtbl.create 64 in
    let order = ref [] in
    let place (b : Mir.Block.t) =
      Hashtbl.replace placed b.Mir.Block.label ();
      order := b :: !order
    in
    let rec chain (b : Mir.Block.t) =
      place b;
      match preferred_fallthrough b with
      | Some next when not (Hashtbl.mem placed next) -> (
        match Hashtbl.find_opt by_label next with
        | Some nb -> chain nb
        | None -> ())
      | Some _ | None -> ()
    in
    chain (List.hd original);
    List.iter
      (fun (b : Mir.Block.t) ->
        if not (Hashtbl.mem placed b.Mir.Block.label) then chain b)
      original;
    let new_order = List.rev !order in
    let changed =
      not
        (List.equal
           (fun (a : Mir.Block.t) (b : Mir.Block.t) ->
             String.equal a.Mir.Block.label b.Mir.Block.label)
           original new_order)
    in
    fn.Mir.Func.blocks <- new_order;
    changed

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
