(** Unreachable-block removal (the "dead code elimination" applied after
    restructuring in the paper's Figure 10(e)). *)

val run_func : Mir.Func.t -> bool
val run : Mir.Program.t -> bool
