(** Local common-subexpression elimination.

    Within a basic block, a pure computation whose operands have not been
    redefined since an identical earlier computation is replaced by a
    move from the earlier result.  Loads participate until a store or a
    call intervenes (calls may perform stores through builtins'
    callees).  Copy propagation and dead-code elimination then finish
    the job. *)

val run_func : Mir.Func.t -> bool
val run : Mir.Program.t -> bool
