(* one backward sweep over a block, with live = live_out, removing dead
   pure instructions *)
let sweep_block live_out (b : Mir.Block.t) =
  let changed = ref false in
  let live = ref live_out in
  List.iter (fun r -> live := Mir.Reg.Set.add r !live)
    (Mir.Liveness.term_uses b.Mir.Block.term);
  let keep = ref [] in
  List.iter
    (fun insn ->
      let defs = Mir.Insn.defs insn in
      let dead =
        Mir.Insn.is_pure insn
        && defs <> []
        && List.for_all (fun r -> not (Mir.Reg.Set.mem r !live)) defs
      in
      if dead then changed := true
      else begin
        List.iter (fun r -> live := Mir.Reg.Set.remove r !live) defs;
        List.iter (fun r -> live := Mir.Reg.Set.add r !live) (Mir.Insn.uses insn);
        keep := insn :: !keep
      end)
    (List.rev b.Mir.Block.insns);
  b.Mir.Block.insns <- !keep;
  !changed

let run_func (fn : Mir.Func.t) =
  let changed_any = ref false in
  let continue_ = ref true in
  while !continue_ do
    let live = Mir.Liveness.compute fn in
    let changed =
      List.fold_left
        (fun acc b ->
          sweep_block (Mir.Liveness.live_out live b.Mir.Block.label) b || acc)
        false fn.Mir.Func.blocks
    in
    if changed then changed_any := true;
    continue_ := changed
  done;
  !changed_any

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
