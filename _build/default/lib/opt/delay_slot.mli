(** Delay-slot filling (the final pass, as in the paper's Figure 2).

    Each emitted control transfer carries one delay slot.  The filler
    hoists the last instruction of the block into the slot when it is
    safe: not a compare (the branch and any fall-through consumer need the
    condition codes), not a call or profiling pseudo, and not a definition
    of a register the terminator itself reads.  An instruction moved into
    a branch delay slot executes on both outcomes — which is exactly what
    it did in its original position above the branch, so semantics are
    preserved (the "fill from above" strategy; the paper notes vpo can
    also fill from a successor, which this pass does not attempt).

    A second phase fills slots that phase one could not: the first
    instruction of a single-predecessor *taken target* is hoisted into
    the slot with the SPARC annul bit set (the instruction executes only
    when the branch is taken — exactly where it originally ran), and
    jump targets are stolen from the same way without annulment.  This
    is vpo's "fill from the successor", whose interaction with
    reordering the paper discusses for hyphen.

    Jumps that will fall through in the current layout assemble to
    nothing, so their slots are not filled; run this after
    {!Reposition}. *)

val run_func : ?steal:bool -> Mir.Func.t -> int
(** Returns the number of slots filled.  [steal] (default true) enables
    the fill-from-successor phase. *)

val run : ?steal:bool -> Mir.Program.t -> int

val strip_func : Mir.Func.t -> unit
(** Move any filled delay slots back into block bodies (used before
    re-running other passes). *)

val strip : Mir.Program.t -> unit
