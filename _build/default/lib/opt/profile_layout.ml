type counts = (string, int * int) Hashtbl.t

(* the successor we want placed next: the branch arm executed more often
   (falling through the hot edge), the jump target, or the static
   preference when no counts exist *)
let preferred counts (b : Mir.Block.t) =
  match b.Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Br (cond, taken, not_taken) -> (
    match Hashtbl.find_opt counts b.Mir.Block.label with
    | Some (t, nt) when t > nt ->
      (* invert the branch so the hot arm falls through *)
      b.Mir.Block.term <-
        {
          b.Mir.Block.term with
          Mir.Block.kind = Mir.Block.Br (Mir.Cond.negate cond, not_taken, taken);
        };
      Some taken
    | _ -> Some not_taken)
  | Mir.Block.Jmp l -> Some l
  | Mir.Block.Switch (_, _, default) -> Some default
  | Mir.Block.Jtab _ | Mir.Block.Ret _ -> None

let run_func (fn : Mir.Func.t) counts =
  match fn.Mir.Func.blocks with
  | [] -> false
  | original ->
    let by_label = Hashtbl.create 64 in
    List.iter
      (fun (b : Mir.Block.t) -> Hashtbl.replace by_label b.Mir.Block.label b)
      original;
    let placed = Hashtbl.create 64 in
    let order = ref [] in
    let rec chain (b : Mir.Block.t) =
      Hashtbl.replace placed b.Mir.Block.label ();
      order := b :: !order;
      match preferred counts b with
      | Some next when not (Hashtbl.mem placed next) -> (
        match Hashtbl.find_opt by_label next with
        | Some nb -> chain nb
        | None -> ())
      | Some _ | None -> ()
    in
    chain (List.hd original);
    List.iter
      (fun (b : Mir.Block.t) ->
        if not (Hashtbl.mem placed b.Mir.Block.label) then chain b)
      original;
    let new_order = List.rev !order in
    let changed =
      not
        (List.equal
           (fun (a : Mir.Block.t) (b : Mir.Block.t) ->
             String.equal a.Mir.Block.label b.Mir.Block.label)
           original new_order)
    in
    fn.Mir.Func.blocks <- new_order;
    changed

let run (p : Mir.Program.t) tables =
  List.fold_left
    (fun acc (fn : Mir.Func.t) ->
      match Hashtbl.find_opt tables fn.Mir.Func.name with
      | Some counts -> run_func fn counts || acc
      | None -> acc)
    false p.Mir.Program.funcs
