(** Global (whole-function) constant propagation.

    A forward must-dataflow over the lattice
    [unknown (top) > constant c > varying (bottom)] per register, with
    meet over predecessors.  Uses whose register is a known constant at
    that program point are rewritten to immediates, which feeds the
    local folder, branch-constant folding and dead-code elimination.
    Compares keep their register operands (see {!Copy_prop}); only
    arithmetic, moves, addresses and call arguments are rewritten. *)

val run_func : Mir.Func.t -> bool
val run : Mir.Program.t -> bool
