(** Loop-invariant code motion.

    Hoists pure register computations (and, when the loop is free of
    stores and calls, loads) whose operands are defined outside the loop
    into a preheader.  To stay conservative without a full reaching-
    definitions analysis, an instruction is hoisted only when:

    - it is pure ([Mov]/[Unop]/non-trapping [Binop], or [Load] in a
      store/call-free loop);
    - every register it reads has no definition anywhere in the loop
      (so the value is the same on every iteration);
    - its destination has exactly one definition in the loop (itself),
      is not live into the loop header from outside (the hoisted
      definition would clobber a value used on the zero-trip path
      otherwise: since hoisting makes it execute even when the loop
      body would not), and is not defined by a delay slot.

    Because lowering gives every temporary a fresh register, these
    conditions fire on the redundant recomputations inside hot loops
    (e.g. address or bound computations), which is what vpo's code
    motion bought its measured baselines. *)

val run_func : Mir.Func.t -> int
(** Number of instructions hoisted. *)

val run : Mir.Program.t -> int
