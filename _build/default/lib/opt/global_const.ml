(* lattice value per register *)
type value =
  | Unknown          (* no path reaches here yet (top) *)
  | Const of int
  | Varying          (* bottom *)

module RM = Mir.Reg.Map

let meet_value a b =
  match a, b with
  | Unknown, x | x, Unknown -> x
  | Const x, Const y when x = y -> Const x
  | _ -> Varying

(* states are maps; a register absent from the map is Unknown before any
   path defines it, but registers start as 0 in the machine; we stay
   conservative and treat absent as Varying for soundness with respect
   to uninitialised reads, except parameters which are Varying anyway *)
let meet_state a b =
  RM.merge
    (fun _ x y ->
      match x, y with
      | Some x, Some y -> Some (meet_value x y)
      | Some _, None | None, Some _ -> Some Varying
      | None, None -> None)
    a b

let lookup state r =
  match RM.find_opt r state with Some v -> v | None -> Varying

let transfer_insn state insn =
  let set r v = RM.add r v state in
  let op_value = function
    | Mir.Operand.Imm n -> Const n
    | Mir.Operand.Reg r -> lookup state r
  in
  match insn with
  | Mir.Insn.Mov (r, o) -> set r (op_value o)
  | Mir.Insn.Unop (u, r, o) -> (
    match op_value o with
    | Const n -> set r (Const (Mir.Insn.eval_unop u n))
    | v -> set r v)
  | Mir.Insn.Binop (b, r, x, y) -> (
    match op_value x, op_value y with
    | Const a, Const c
      when not ((b = Mir.Insn.Div || b = Mir.Insn.Rem) && c = 0) ->
      set r (Const (Mir.Insn.eval_binop b a c))
    | Unknown, _ | _, Unknown -> set r Unknown
    | _ -> set r Varying)
  | Mir.Insn.Load (r, _, _) | Mir.Insn.Call (Some r, _, _) -> set r Varying
  | Mir.Insn.Store _ | Mir.Insn.Cmp _ | Mir.Insn.Call (None, _, _)
  | Mir.Insn.Nop | Mir.Insn.Profile_range _ | Mir.Insn.Profile_comb _ ->
    state

let transfer_block state (b : Mir.Block.t) =
  let state = List.fold_left transfer_insn state b.Mir.Block.insns in
  match b.Mir.Block.term.Mir.Block.delay with
  | Some i -> transfer_insn state i
  | None -> state

let equal_state a b =
  RM.equal
    (fun x y ->
      match x, y with
      | Unknown, Unknown | Varying, Varying -> true
      | Const a, Const b -> a = b
      | _ -> false)
    a b

let compute_in_states (fn : Mir.Func.t) =
  let in_states = Hashtbl.create 32 in
  (match fn.Mir.Func.blocks with
  | entry :: _ ->
    (* parameters (and everything else) start Varying: empty map *)
    Hashtbl.replace in_states entry.Mir.Block.label RM.empty
  | [] -> ());
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Mir.Block.t) ->
        match Hashtbl.find_opt in_states b.Mir.Block.label with
        | None -> ()
        | Some in_state ->
          let out = transfer_block in_state b in
          List.iter
            (fun s ->
              let merged =
                match Hashtbl.find_opt in_states s with
                | None -> out
                | Some existing -> meet_state existing out
              in
              match Hashtbl.find_opt in_states s with
              | Some existing when equal_state existing merged -> ()
              | _ ->
                Hashtbl.replace in_states s merged;
                changed := true)
            (Mir.Func.successors fn b))
      fn.Mir.Func.blocks
  done;
  in_states

let rewrite_block in_state (b : Mir.Block.t) =
  let changed = ref false in
  let state = ref in_state in
  let subst op =
    match op with
    | Mir.Operand.Reg r -> (
      match lookup !state r with
      | Const n ->
        changed := true;
        Mir.Operand.Imm n
      | Unknown | Varying -> op)
    | Mir.Operand.Imm _ -> op
  in
  let rewrite insn =
    let insn' =
      match insn with
      | Mir.Insn.Mov (r, o) -> Mir.Insn.Mov (r, subst o)
      | Mir.Insn.Unop (u, r, o) -> Mir.Insn.Unop (u, r, subst o)
      | Mir.Insn.Binop (bop, r, x, y) -> Mir.Insn.Binop (bop, r, subst x, subst y)
      | Mir.Insn.Load (r, sym, idx) -> Mir.Insn.Load (r, sym, subst idx)
      | Mir.Insn.Store (sym, idx, v) -> Mir.Insn.Store (sym, subst idx, subst v)
      | Mir.Insn.Call (dst, f, args) -> Mir.Insn.Call (dst, f, List.map subst args)
      (* compares keep registers for the sequence detector; constants
         flow into them via the local pass when profitable *)
      | (Mir.Insn.Cmp _ | Mir.Insn.Nop | Mir.Insn.Profile_range _
        | Mir.Insn.Profile_comb _) as i ->
        i
    in
    state := transfer_insn !state insn;
    insn'
  in
  b.Mir.Block.insns <- List.map rewrite b.Mir.Block.insns;
  !changed

let run_func (fn : Mir.Func.t) =
  let in_states = compute_in_states fn in
  List.fold_left
    (fun acc (b : Mir.Block.t) ->
      match Hashtbl.find_opt in_states b.Mir.Block.label with
      | Some in_state -> rewrite_block in_state b || acc
      | None -> acc)
    false fn.Mir.Func.blocks

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
