lib/opt/profile_layout.mli: Hashtbl Mir
