lib/opt/delay_slot.mli: Mir
