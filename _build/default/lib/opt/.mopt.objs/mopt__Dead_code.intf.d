lib/opt/dead_code.mli: Mir
