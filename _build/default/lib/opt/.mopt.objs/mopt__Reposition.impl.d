lib/opt/reposition.ml: Hashtbl List Mir String
