lib/opt/copy_prop.mli: Mir
