lib/opt/licm.ml: Hashtbl List Mir Option
