lib/opt/global_const.mli: Mir
