lib/opt/cleanup.mli: Mir
