lib/opt/global_const.ml: Hashtbl List Mir
