lib/opt/cse.ml: List Mir
