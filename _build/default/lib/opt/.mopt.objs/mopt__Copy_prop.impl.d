lib/opt/copy_prop.ml: List Mir
