lib/opt/unreachable.mli: Mir
