lib/opt/delay_slot.ml: Hashtbl List Mir String
