lib/opt/profile_layout.ml: Hashtbl List Mir String
