lib/opt/branch_chain.ml: Array List Mir String
