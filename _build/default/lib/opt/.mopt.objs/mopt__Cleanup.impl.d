lib/opt/cleanup.ml: Branch_chain Copy_prop Cse Dead_code Delay_slot Global_const Licm List Mir Reposition Unreachable
