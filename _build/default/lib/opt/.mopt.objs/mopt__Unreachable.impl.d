lib/opt/unreachable.ml: Hashtbl List Mir
