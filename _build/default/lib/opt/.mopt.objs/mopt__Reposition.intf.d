lib/opt/reposition.mli: Mir
