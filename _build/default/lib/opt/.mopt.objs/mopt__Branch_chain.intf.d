lib/opt/branch_chain.mli: Mir
