lib/opt/switch_lower.mli: Mir
