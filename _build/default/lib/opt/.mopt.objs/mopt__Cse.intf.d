lib/opt/cse.mli: Mir
