lib/opt/dead_code.ml: List Mir
