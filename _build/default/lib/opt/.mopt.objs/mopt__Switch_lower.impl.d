lib/opt/switch_lower.ml: Array Int List Mir
