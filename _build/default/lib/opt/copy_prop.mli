(** Local copy/constant propagation, constant folding and peephole
    simplification within each basic block.

    Tracks [Mov r, op] facts forward through the block, substitutes known
    registers into later uses (including the terminator where operand
    kinds allow), folds constant ALU operations, deletes self-moves and
    strength-reduces identities ([x + 0], [x * 1], [x | 0] ...). *)

val run_func : Mir.Func.t -> bool
val run : Mir.Program.t -> bool
