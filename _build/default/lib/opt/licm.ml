module RS = Mir.Reg.Set

let loop_insns fn (loop : Mir.Loops.loop) =
  List.concat_map
    (fun label ->
      match Mir.Func.find_block_opt fn label with
      | Some b ->
        let delay =
          match b.Mir.Block.term.Mir.Block.delay with
          | Some i -> [ i ]
          | None -> []
        in
        b.Mir.Block.insns @ delay
      | None -> [])
    loop.Mir.Loops.body

let hoistable_kind ~loop_has_effects insn =
  match insn with
  | Mir.Insn.Mov _ | Mir.Insn.Unop _ -> true
  | Mir.Insn.Binop ((Mir.Insn.Div | Mir.Insn.Rem), _, _, _) -> false
  | Mir.Insn.Binop _ -> true
  | Mir.Insn.Load _ -> not loop_has_effects
  | Mir.Insn.Store _ | Mir.Insn.Cmp _ | Mir.Insn.Call _ | Mir.Insn.Nop
  | Mir.Insn.Profile_range _ | Mir.Insn.Profile_comb _ ->
    false

let hoist_from_loop fn (loop : Mir.Loops.loop) =
  let insns = loop_insns fn loop in
  let loop_has_effects =
    List.exists
      (function
        | Mir.Insn.Store _ | Mir.Insn.Call _ -> true
        | _ -> false)
      insns
  in
  (* registers defined in the loop, with definition counts *)
  let def_count = Hashtbl.create 32 in
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          Hashtbl.replace def_count r
            (1 + Option.value ~default:0 (Hashtbl.find_opt def_count r)))
        (Mir.Insn.defs i))
    insns;
  let defined_in_loop r = Hashtbl.mem def_count r in
  let live = Mir.Liveness.compute fn in
  let in_loop l = List.mem l loop.Mir.Loops.body in
  (* registers live on entry to any block just outside the loop *)
  let exit_live =
    List.fold_left
      (fun acc label ->
        match Mir.Func.find_block_opt fn label with
        | Some b ->
          List.fold_left
            (fun acc s ->
              if in_loop s then acc
              else RS.union acc (Mir.Liveness.live_in live s))
            acc (Mir.Func.successors fn b)
        | None -> acc)
      RS.empty loop.Mir.Loops.body
  in
  let header_live = Mir.Liveness.live_in live loop.Mir.Loops.header in
  let can_hoist insn =
    hoistable_kind ~loop_has_effects insn
    && (match Mir.Insn.defs insn with
       | [ dst ] ->
         Hashtbl.find_opt def_count dst = Some 1
         && (not (RS.mem dst header_live))
         && not (RS.mem dst exit_live)
       | _ -> false)
    && List.for_all (fun r -> not (defined_in_loop r)) (Mir.Insn.uses insn)
  in
  let hoisted = ref [] in
  List.iter
    (fun label ->
      match Mir.Func.find_block_opt fn label with
      | Some b ->
        let keep, move = List.partition (fun i -> not (can_hoist i)) b.Mir.Block.insns in
        if move <> [] then begin
          b.Mir.Block.insns <- keep;
          hoisted := !hoisted @ move;
          (* the moved registers are now defined outside; forget them so a
             second definition in another block is not also hoisted *)
          List.iter
            (fun i -> List.iter (fun r -> Hashtbl.remove def_count r) (Mir.Insn.defs i))
            move
        end
      | None -> ())
    loop.Mir.Loops.body;
  (match !hoisted with
  | [] -> ()
  | moved ->
    let ph = Mir.Loops.preheader fn loop in
    let phb = Mir.Func.find_block fn ph in
    phb.Mir.Block.insns <- phb.Mir.Block.insns @ moved);
  List.length !hoisted

let run_func (fn : Mir.Func.t) =
  let total = ref 0 in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 10 do
    incr rounds;
    let n =
      List.fold_left
        (fun acc loop -> acc + hoist_from_loop fn loop)
        0 (Mir.Loops.find fn)
    in
    total := !total + n;
    continue_ := n > 0
  done;
  !total

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> acc + run_func fn) 0 p.Mir.Program.funcs
