(** Liveness-based dead instruction elimination.

    Removes pure instructions whose results are dead, iterating to a
    fixpoint (a removed instruction can make its operands' definitions
    dead in turn).  Calls, stores and compares are never removed; removing
    a dead compare would require proving no reachable branch consumes the
    condition codes, which branch chaining already makes irrelevant. *)

val run_func : Mir.Func.t -> bool
val run : Mir.Program.t -> bool
