(** Profile-guided code layout (cf. Calder & Grunwald 1994, cited by the
    paper as the complementary technique that changes which branches are
    taken rather than how many execute).

    Given per-block branch execution counts (taken, not-taken) measured
    on a training run, lays blocks out so that each conditional branch's
    more frequent successor falls through where possible, and hot jump
    targets follow their jumps.  The entry block stays first.

    Counts are keyed by block label; blocks without counts keep the
    static preference (not-taken falls through). *)

type counts = (string, int * int) Hashtbl.t
(** label of the branch's block -> (taken, not-taken) executions. *)

val run_func : Mir.Func.t -> counts -> bool
val run : Mir.Program.t -> (string, counts) Hashtbl.t -> bool
(** Outer table keyed by function name. *)
