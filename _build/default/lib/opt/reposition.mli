(** Code repositioning: orders blocks so that fall-through edges are
    physically adjacent, minimising the unconditional jumps the assembled
    code executes (the paper reinvokes this after reordering).

    Greedy chain layout: starting from the entry, each placed block is
    followed by its preferred fall-through successor (the not-taken arm of
    a branch, or the target of a jump) when that block is still unplaced;
    otherwise the next unplaced block in the current order starts a new
    chain.  The entry block always stays first. *)

val run_func : Mir.Func.t -> bool
val run : Mir.Program.t -> bool
