module RM = Mir.Reg.Map

(* facts: register -> operand it currently equals *)

let subst facts op =
  match op with
  | Mir.Operand.Reg r -> (
    match RM.find_opt r facts with Some op' -> op' | None -> op)
  | Mir.Operand.Imm _ -> op

(* drop facts about r and facts whose value mentions r *)
let kill facts r =
  RM.filter
    (fun key value ->
      (not (Mir.Reg.equal key r))
      &&
      match value with
      | Mir.Operand.Reg vr -> not (Mir.Reg.equal vr r)
      | Mir.Operand.Imm _ -> true)
    facts

let kill_defs facts insn = List.fold_left kill facts (Mir.Insn.defs insn)

(* algebraic identities; returns a replacement instruction *)
let simplify_binop op r a b =
  let open Mir.Insn in
  match op, a, b with
  | (Add | Sub | Or | Xor | Shl | Shr), x, Mir.Operand.Imm 0 -> Some (Mov (r, x))
  | Add, Mir.Operand.Imm 0, x -> Some (Mov (r, x))
  | (Mul | Div), x, Mir.Operand.Imm 1 -> Some (Mov (r, x))
  | Mul, Mir.Operand.Imm 1, x -> Some (Mov (r, x))
  | Mul, _, Mir.Operand.Imm 0 -> Some (Mov (r, Mir.Operand.Imm 0))
  | Mul, Mir.Operand.Imm 0, _ -> Some (Mov (r, Mir.Operand.Imm 0))
  | And, _, Mir.Operand.Imm 0 -> Some (Mov (r, Mir.Operand.Imm 0))
  | And, Mir.Operand.Imm 0, _ -> Some (Mov (r, Mir.Operand.Imm 0))
  | _ -> None

let rewrite_insn facts insn =
  let open Mir.Insn in
  match insn with
  | Mov (r, op) -> Mov (r, subst facts op)
  | Unop (u, r, op) -> (
    match subst facts op with
    | Mir.Operand.Imm n -> Mov (r, Mir.Operand.Imm (eval_unop u n))
    | op -> Unop (u, r, op))
  | Binop (bop, r, a, b) -> (
    let a = subst facts a and b = subst facts b in
    match a, b with
    | Mir.Operand.Imm x, Mir.Operand.Imm y
      when not ((bop = Div || bop = Rem) && y = 0) ->
      Mov (r, Mir.Operand.Imm (eval_binop bop x y))
    | _ -> (
      match simplify_binop bop r a b with
      | Some i -> i
      | None -> Binop (bop, r, a, b)))
  | Load (r, sym, idx) -> Load (r, sym, subst facts idx)
  | Store (sym, idx, v) -> Store (sym, subst facts idx, subst facts v)
  | Cmp (a, b) ->
    (* propagate constants into compares, but never rename a compared
       register to its copy source: sequence detection unifies range
       conditions by the register they test, and the source-level
       variable's register is the one later conditions use *)
    let subst_cmp op =
      match subst facts op with
      | Mir.Operand.Imm _ as imm -> imm
      | Mir.Operand.Reg _ -> op
    in
    Cmp (subst_cmp a, subst_cmp b)
  | Call (dst, f, args) -> Call (dst, f, List.map (subst facts) args)
  | Nop -> Nop
  | Profile_range (id, r) -> (
    (* the profiled variable must stay a register *)
    match subst facts (Mir.Operand.Reg r) with
    | Mir.Operand.Reg r' -> Profile_range (id, r')
    | Mir.Operand.Imm _ -> Profile_range (id, r))
  | Profile_comb id -> Profile_comb id

let update_facts facts insn =
  let open Mir.Insn in
  match insn with
  | Mov (r, op) ->
    let facts = kill facts r in
    (match op with
    | Mir.Operand.Reg src when Mir.Reg.equal src r -> facts
    | _ -> RM.add r op facts)
  | _ -> kill_defs facts insn

let is_self_move = function
  | Mir.Insn.Mov (r, Mir.Operand.Reg src) -> Mir.Reg.equal r src
  | _ -> false

let rewrite_term facts (t : Mir.Block.term) =
  let subst_reg r =
    match RM.find_opt r facts with
    | Some (Mir.Operand.Reg r') -> r'
    | Some (Mir.Operand.Imm _) | None -> r
  in
  let kind =
    match t.Mir.Block.kind with
    | (Mir.Block.Br _ | Mir.Block.Jmp _) as k -> k
    | Mir.Block.Switch (r, cases, default) ->
      Mir.Block.Switch (subst_reg r, cases, default)
    | Mir.Block.Jtab (r, id) -> Mir.Block.Jtab (subst_reg r, id)
    | Mir.Block.Ret (Some op) -> Mir.Block.Ret (Some (subst facts op))
    | Mir.Block.Ret None as k -> k
  in
  { t with Mir.Block.kind }

let run_block (b : Mir.Block.t) =
  let changed = ref false in
  let facts = ref RM.empty in
  let out = ref [] in
  List.iter
    (fun insn ->
      let insn' = rewrite_insn !facts insn in
      if not (Mir.Insn.equal insn insn') then changed := true;
      if is_self_move insn' then changed := true
      else out := insn' :: !out;
      facts := update_facts !facts insn')
    b.Mir.Block.insns;
  b.Mir.Block.insns <- List.rev !out;
  let term' = rewrite_term !facts b.Mir.Block.term in
  if not (Mir.Block.equal_term_kind term'.Mir.Block.kind b.Mir.Block.term.kind)
  then begin
    changed := true;
    b.Mir.Block.term <- term'
  end;
  !changed

let run_func (fn : Mir.Func.t) =
  List.fold_left (fun acc b -> run_block b || acc) false fn.Mir.Func.blocks

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
