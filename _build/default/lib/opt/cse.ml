(* the key of an available expression *)
type expr =
  | Eunop of Mir.Insn.unop * Mir.Operand.t
  | Ebinop of Mir.Insn.binop * Mir.Operand.t * Mir.Operand.t
  | Eload of string * Mir.Operand.t

let expr_of = function
  | Mir.Insn.Unop (op, _, a) -> Some (Eunop (op, a))
  | Mir.Insn.Binop ((Mir.Insn.Div | Mir.Insn.Rem), _, _, _) ->
    None (* may trap; replaying the trap point matters *)
  | Mir.Insn.Binop (op, _, a, b) -> Some (Ebinop (op, a, b))
  | Mir.Insn.Load (r, sym, idx) ->
    ignore r;
    Some (Eload (sym, idx))
  | _ -> None

let mentions_reg r = function
  | Mir.Operand.Reg r' -> Mir.Reg.equal r r'
  | Mir.Operand.Imm _ -> false

let expr_uses_reg r = function
  | Eunop (_, a) -> mentions_reg r a
  | Ebinop (_, a, b) -> mentions_reg r a || mentions_reg r b
  | Eload (_, idx) -> mentions_reg r idx

let is_load = function Eload _ -> true | Eunop _ | Ebinop _ -> false

let run_block (b : Mir.Block.t) =
  let changed = ref false in
  (* available: expression -> register holding its value *)
  let available = ref [] in
  let kill_reg r =
    available :=
      List.filter
        (fun (e, holder) ->
          (not (Mir.Reg.equal holder r)) && not (expr_uses_reg r e))
        !available
  in
  let kill_loads () =
    available := List.filter (fun (e, _) -> not (is_load e)) !available
  in
  let out = ref [] in
  List.iter
    (fun insn ->
      let insn' =
        match expr_of insn with
        | Some e -> (
          match List.assoc_opt e !available with
          | Some holder -> (
            match Mir.Insn.defs insn with
            | [ dst ] ->
              changed := true;
              Mir.Insn.Mov (dst, Mir.Operand.Reg holder)
            | _ -> insn)
          | None -> insn)
        | None -> insn
      in
      (match insn' with
      | Mir.Insn.Store _ -> kill_loads ()
      | Mir.Insn.Call _ -> kill_loads ()
      | _ -> ());
      List.iter kill_reg (Mir.Insn.defs insn');
      (match expr_of insn' with
      | Some e -> (
        match Mir.Insn.defs insn' with
        (* an expression like r1 = r1 + r2 references the old r1 and is
           not available afterwards *)
        | [ dst ] when not (expr_uses_reg dst e) ->
          available := (e, dst) :: !available
        | _ -> ())
      | None -> ());
      out := insn' :: !out)
    b.Mir.Block.insns;
  b.Mir.Block.insns <- List.rev !out;
  !changed

let run_func (fn : Mir.Func.t) =
  List.fold_left (fun acc b -> run_block b || acc) false fn.Mir.Func.blocks

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
