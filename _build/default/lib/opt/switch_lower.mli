(** Switch-statement translation (paper Table 2).

    A [Switch] pseudo terminator is expanded into one of three shapes:

    - {b indirect jump}: bounds checks, an index subtraction and a jump
      through a dense table (holes jump to the default target);
    - {b binary search}: a balanced tree of compare/branch pairs; each
      node tests equality and then branches on less/greater, sharing one
      compare between the two branches;
    - {b linear search}: a chain of equality tests in source order — the
      shape the reordering transformation benefits from most.

    The heuristic sets choose among the shapes from [n] (number of cases)
    and [span] (number of possible values between first and last case):

    - Set I (pcc, used for the IPC and the SPARC 20): indirect when
      [n >= 4] and [span <= 3n]; else binary search when [n >= 8]; else
      linear.
    - Set II (Ultra 1, where indirect jumps are ~4x dearer): indirect only
      when [n >= 16] and [span <= 3n]; else as Set I.
    - Set III: always linear. *)

type strategy =
  | Indirect
  | Binary_search
  | Linear

type heuristic_set = {
  hs_name : string;
  choose : ncases:int -> span:int -> strategy;
}

val set_i : heuristic_set
val set_ii : heuristic_set
val set_iii : heuristic_set
val all_sets : heuristic_set list
val strategy_name : strategy -> string

val lower_func : heuristic_set -> Mir.Func.t -> unit
val lower_program : heuristic_set -> Mir.Program.t -> unit
(** After lowering, no [Switch] terminators remain. *)
