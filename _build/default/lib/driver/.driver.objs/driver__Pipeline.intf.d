lib/driver/pipeline.mli: Config Mir Reorder Sim
