lib/driver/pipeline.ml: Array Config Hashtbl List Minic Mir Mopt Printf Reorder Sim String
