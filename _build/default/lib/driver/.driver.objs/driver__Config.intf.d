lib/driver/config.mli: Mopt Reorder Sim
