lib/driver/config.ml: List Mopt Reorder Sim
