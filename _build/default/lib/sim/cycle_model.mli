(** A simple pipeline cycle model, the stand-in for the paper's wall-clock
    measurements (Table 7).

    Cycles = instructions executed (base CPI of 1)
           + mispredicted branches x [mispredict_penalty]
           + indirect jumps x [indirect_penalty]
           + loads x ([load_latency] - 1).

    The three parameter sets correspond to the paper's machines; the Ultra
    set reflects the paper's measurement that indirect jumps on the Ultra 1
    are about four times as expensive as on the IPC or the SPARCstation 20
    (Section 9), and its (0,2) 2048-entry predictor. *)

type params = {
  model_name : string;
  mispredict_penalty : int;
  indirect_penalty : int;
  load_latency : int;
  predictor : (int * int * int) option;
      (** (history bits, counter bits, entries); [None] = no dynamic
          predictor (every conditional branch pays a fixed 1-cycle bubble
          when taken, modelling the older in-order machines) *)
}

val sparc_ipc : params
val sparc_20 : params
val sparc_ultra1 : params
val all_machines : params list

val cycles :
  params -> Counters.t -> mispredicts:int -> int
(** Total simulated cycles for a run.  For parameter sets without a
    predictor, pass the number of taken branches as [mispredicts] (each
    taken branch redirects the fetch stream). *)
