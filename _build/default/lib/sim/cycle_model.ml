type params = {
  model_name : string;
  mispredict_penalty : int;
  indirect_penalty : int;
  load_latency : int;
  predictor : (int * int * int) option;
}

let sparc_ipc =
  {
    model_name = "SPARC IPC";
    mispredict_penalty = 1;
    indirect_penalty = 2;
    load_latency = 2;
    predictor = None;
  }

let sparc_20 =
  {
    model_name = "SPARC 20";
    mispredict_penalty = 2;
    indirect_penalty = 2;
    load_latency = 2;
    predictor = None;
  }

let sparc_ultra1 =
  {
    model_name = "SPARC Ultra 1";
    mispredict_penalty = 4;
    indirect_penalty = 8;
    load_latency = 2;
    predictor = Some (0, 2, 2048);
  }

let all_machines = [ sparc_ipc; sparc_20; sparc_ultra1 ]

let cycles p (c : Counters.t) ~mispredicts =
  c.Counters.insns
  + (mispredicts * p.mispredict_penalty)
  + (c.Counters.indirect_jumps * p.indirect_penalty)
  + (c.Counters.loads * (p.load_latency - 1))
