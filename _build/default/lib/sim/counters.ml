type t = {
  mutable insns : int;
  mutable cond_branches : int;
  mutable taken_branches : int;
  mutable jumps : int;
  mutable indirect_jumps : int;
  mutable calls : int;
  mutable returns : int;
  mutable loads : int;
  mutable stores : int;
  mutable nops : int;
}

let make () =
  {
    insns = 0;
    cond_branches = 0;
    taken_branches = 0;
    jumps = 0;
    indirect_jumps = 0;
    calls = 0;
    returns = 0;
    loads = 0;
    stores = 0;
    nops = 0;
  }

let copy t = { t with insns = t.insns }

let pp ppf t =
  Format.fprintf ppf
    "insns=%d branches=%d (taken=%d) jumps=%d indirect=%d calls=%d loads=%d \
     stores=%d nops=%d"
    t.insns t.cond_branches t.taken_branches t.jumps t.indirect_jumps t.calls
    t.loads t.stores t.nops
