type t = {
  history_bits : int;
  counter_bits : int;
  entries : int;
  table : int array;
  init_state : int;
  mutable history : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make ~history_bits ~counter_bits ~entries =
  if history_bits < 0 || history_bits > 16 then
    invalid_arg "Predictor.make: history_bits out of range";
  if counter_bits < 1 || counter_bits > 8 then
    invalid_arg "Predictor.make: counter_bits out of range";
  if not (is_power_of_two entries) then
    invalid_arg "Predictor.make: entries must be a power of two";
  let init_state = (1 lsl (counter_bits - 1)) - 1 in
  {
    history_bits;
    counter_bits;
    entries;
    table = Array.make entries init_state;
    init_state;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

let access t ~site ~taken =
  let index = (site lxor t.history) land (t.entries - 1) in
  let counter = t.table.(index) in
  let predict_taken = counter >= 1 lsl (t.counter_bits - 1) in
  t.lookups <- t.lookups + 1;
  if predict_taken <> taken then t.mispredicts <- t.mispredicts + 1;
  let max_counter = (1 lsl t.counter_bits) - 1 in
  t.table.(index) <-
    (if taken then min max_counter (counter + 1) else max 0 (counter - 1));
  if t.history_bits > 0 then
    t.history <-
      ((t.history lsl 1) lor (if taken then 1 else 0))
      land ((1 lsl t.history_bits) - 1)

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let reset t =
  Array.fill t.table 0 t.entries t.init_state;
  t.history <- 0;
  t.lookups <- 0;
  t.mispredicts <- 0

let describe t =
  Printf.sprintf "(%d,%d)x%d" t.history_bits t.counter_bits t.entries
