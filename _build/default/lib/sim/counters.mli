(** Dynamic execution counters.

    [insns] is the total number of machine instructions executed,
    including nops in unfilled delay slots and the implicit jumps taken
    when a not-taken branch does not fall through in the final layout
    (mirroring what the assembled SPARC code would execute).  Profiling
    pseudo instructions are free. *)

type t = {
  mutable insns : int;
  mutable cond_branches : int;
  mutable taken_branches : int;
  mutable jumps : int;           (** unconditional jumps actually executed *)
  mutable indirect_jumps : int;
  mutable calls : int;
  mutable returns : int;
  mutable loads : int;
  mutable stores : int;
  mutable nops : int;            (** unfilled delay slots executed *)
}

val make : unit -> t
val copy : t -> t
val pp : Format.formatter -> t -> unit
