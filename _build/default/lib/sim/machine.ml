exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type config = {
  fuel : int;
  max_depth : int;
}

let default_config = { fuel = 2_000_000_000; max_depth = 10_000 }

type result = {
  counters : Counters.t;
  output : string;
  exit_code : int;
}

(* Pre-resolved view of a function: block array, label -> index map, and
   per-block site numbers for branch predictor indexing. *)
type func_image = {
  fn : Mir.Func.t;
  blocks : Mir.Block.t array;
  index_of : (string, int) Hashtbl.t;
  sites : int array;  (* site id of each block's terminator *)
  nregs : int;
}

type image = {
  funcs : (string, func_image) Hashtbl.t;
}

(* highest register id actually referenced, for register files of
   hand-built functions whose [next_reg] counter was never advanced *)
let max_reg_of (fn : Mir.Func.t) =
  let m = ref fn.Mir.Func.next_reg in
  let see r = m := max !m (Mir.Reg.to_int r + 1) in
  List.iter see fn.Mir.Func.params;
  List.iter
    (fun (b : Mir.Block.t) ->
      let see_insn i =
        List.iter see (Mir.Insn.defs i);
        List.iter see (Mir.Insn.uses i)
      in
      List.iter see_insn b.Mir.Block.insns;
      (match b.Mir.Block.term.Mir.Block.delay with
      | Some i -> see_insn i
      | None -> ());
      match b.Mir.Block.term.Mir.Block.kind with
      | Mir.Block.Switch (r, _, _) | Mir.Block.Jtab (r, _) -> see r
      | Mir.Block.Ret (Some (Mir.Operand.Reg r)) -> see r
      | Mir.Block.Br _ | Mir.Block.Jmp _ | Mir.Block.Ret _ -> ())
    fn.Mir.Func.blocks;
  !m

let build_image (p : Mir.Program.t) =
  let funcs = Hashtbl.create 16 in
  let next_site = ref 0 in
  List.iter
    (fun (fn : Mir.Func.t) ->
      let blocks = Array.of_list fn.Mir.Func.blocks in
      let index_of = Hashtbl.create (Array.length blocks) in
      Array.iteri
        (fun i (b : Mir.Block.t) -> Hashtbl.replace index_of b.Mir.Block.label i)
        blocks;
      let sites =
        Array.map
          (fun (_ : Mir.Block.t) ->
            let s = !next_site in
            incr next_site;
            s)
          blocks
      in
      Hashtbl.replace funcs fn.Mir.Func.name
        { fn; blocks; index_of; sites; nregs = max_reg_of fn })
    p.Mir.Program.funcs;
  { funcs }

let sites p =
  let image = build_image p in
  let out = ref [] in
  Hashtbl.iter
    (fun name fi ->
      Array.iteri
        (fun i (b : Mir.Block.t) ->
          out := (fi.sites.(i), (name, b.Mir.Block.label)) :: !out)
        fi.blocks)
    image.funcs;
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) !out in
  Array.of_list (List.map snd sorted)

let site_of p ~func ~label =
  let image = build_image p in
  match Hashtbl.find_opt image.funcs func with
  | None -> trap "site_of: unknown function %s" func
  | Some fi -> (
    match Hashtbl.find_opt fi.index_of label with
    | None -> trap "site_of: unknown label %s" label
    | Some i -> fi.sites.(i))

type state = {
  image : image;
  memory : (string, int array) Hashtbl.t;
  counters : Counters.t;
  out : Buffer.t;
  input : string;
  mutable input_pos : int;
  mutable cc : int * int;  (* operands of the last executed cmp *)
  mutable fuel_left : int;
  config : config;
  profile : Profile.t option;
  on_branch : (site:int -> taken:bool -> unit) option;
  on_block : (func:string -> label:string -> unit) option;
}

exception Program_exit of int

let charge st n =
  st.counters.Counters.insns <- st.counters.Counters.insns + n;
  st.fuel_left <- st.fuel_left - n;
  if st.fuel_left < 0 then trap "fuel exhausted (%d instructions)" st.config.fuel

let getchar st =
  if st.input_pos >= String.length st.input then -1
  else begin
    let c = Char.code st.input.[st.input_pos] in
    st.input_pos <- st.input_pos + 1;
    c
  end

let memory_cell st sym idx =
  match Hashtbl.find_opt st.memory sym with
  | None -> trap "access to unknown global %s" sym
  | Some arr ->
    if idx < 0 || idx >= Array.length arr then
      trap "out-of-bounds access %s[%d] (size %d)" sym idx (Array.length arr);
    arr, idx

let operand_value regs = function
  | Mir.Operand.Reg r -> regs.(Mir.Reg.to_int r)
  | Mir.Operand.Imm n -> n

let set_reg regs r v = regs.(Mir.Reg.to_int r) <- v

(* Built-in functions; returns Some value for value-producing builtins. *)
let builtin st name args =
  match name, args with
  | "getchar", [] -> Some (getchar st)
  | "putchar", [ c ] ->
    Buffer.add_char st.out (Char.chr (c land 255));
    Some c
  | "print_int", [ n ] ->
    Buffer.add_string st.out (string_of_int n);
    Some 0
  | "exit", [ code ] -> raise (Program_exit code)
  | ("getchar" | "putchar" | "print_int" | "exit"), _ ->
    trap "builtin %s: wrong number of arguments" name
  | _, _ -> None

let rec exec_call st depth name args =
  match builtin st name args with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt st.image.funcs name with
    | None -> trap "call to unknown function %s" name
    | Some fi ->
      if depth >= st.config.max_depth then trap "call depth exceeded in %s" name;
      let regs = Array.make (max fi.nregs 1) 0 in
      List.iteri
        (fun i r ->
          match List.nth_opt args i with
          | Some v -> set_reg regs r v
          | None -> trap "too few arguments to %s" name)
        fi.fn.Mir.Func.params;
      exec_blocks st depth fi regs 0)

and exec_insn st depth regs (i : Mir.Insn.t) =
  match i with
  | Mir.Insn.Profile_range (id, r) ->
    (match st.profile with
    | Some p -> Profile.record_range p id regs.(Mir.Reg.to_int r)
    | None -> ())
  | Mir.Insn.Profile_comb id ->
    (match st.profile with
    | Some p ->
      Profile.record_comb p id ~read_reg:(fun r -> regs.(Mir.Reg.to_int r))
    | None -> ())
  | Mir.Insn.Mov (r, o) ->
    charge st 1;
    set_reg regs r (operand_value regs o)
  | Mir.Insn.Unop (op, r, o) ->
    charge st 1;
    set_reg regs r (Mir.Insn.eval_unop op (operand_value regs o))
  | Mir.Insn.Binop (op, r, a, b) ->
    charge st 1;
    let va = operand_value regs a and vb = operand_value regs b in
    let v =
      try Mir.Insn.eval_binop op va vb
      with Division_by_zero -> trap "division by zero"
    in
    set_reg regs r v
  | Mir.Insn.Load (r, sym, idx) ->
    charge st 1;
    st.counters.Counters.loads <- st.counters.Counters.loads + 1;
    let arr, i = memory_cell st sym (operand_value regs idx) in
    set_reg regs r arr.(i)
  | Mir.Insn.Store (sym, idx, v) ->
    charge st 1;
    st.counters.Counters.stores <- st.counters.Counters.stores + 1;
    let arr, i = memory_cell st sym (operand_value regs idx) in
    arr.(i) <- operand_value regs v
  | Mir.Insn.Cmp (a, b) ->
    charge st 1;
    st.cc <- (operand_value regs a, operand_value regs b)
  | Mir.Insn.Call (dst, name, args) ->
    charge st 1;
    st.counters.Counters.calls <- st.counters.Counters.calls + 1;
    let v = exec_call st (depth + 1) name (List.map (operand_value regs) args) in
    (match dst with Some r -> set_reg regs r v | None -> ())
  | Mir.Insn.Nop ->
    charge st 1;
    st.counters.Counters.nops <- st.counters.Counters.nops + 1

(* Execute the delay slot of an emitted control transfer. *)
and exec_delay st depth regs (t : Mir.Block.term) =
  match t.Mir.Block.delay with
  | Some i -> exec_insn st depth regs i
  | None ->
    charge st 1;
    st.counters.Counters.nops <- st.counters.Counters.nops + 1

(* Charge the synthetic jump needed when a not-taken branch does not fall
   through to the next block in the layout. *)
and charge_layout_jump st =
  charge st 2 (* jmp + its (nop) delay slot *);
  st.counters.Counters.jumps <- st.counters.Counters.jumps + 1;
  st.counters.Counters.nops <- st.counters.Counters.nops + 1

and exec_blocks st depth fi regs start_index =
  let block_index = ref start_index in
  let return_value = ref None in
  let running = ref true in
  while !running do
    let b = fi.blocks.(!block_index) in
    (match st.on_block with
    | Some f -> f ~func:fi.fn.Mir.Func.name ~label:b.Mir.Block.label
    | None -> ());
    List.iter (exec_insn st depth regs) b.Mir.Block.insns;
    let layout_next =
      if !block_index + 1 < Array.length fi.blocks then
        Some fi.blocks.(!block_index + 1).Mir.Block.label
      else None
    in
    let goto label =
      match Hashtbl.find_opt fi.index_of label with
      | Some i -> block_index := i
      | None -> trap "jump to unknown label %s" label
    in
    let term = b.Mir.Block.term in
    match term.Mir.Block.kind with
    | Mir.Block.Br (cond, taken_l, not_taken_l) ->
      charge st 1;
      st.counters.Counters.cond_branches <-
        st.counters.Counters.cond_branches + 1;
      let a, cb = st.cc in
      let taken = Mir.Cond.eval cond a cb in
      if taken then
        st.counters.Counters.taken_branches <-
          st.counters.Counters.taken_branches + 1;
      (match st.on_branch with
      | Some f -> f ~site:fi.sites.(!block_index) ~taken
      | None -> ());
      (if term.Mir.Block.annul then
         match term.Mir.Block.delay with
         | Some i when taken -> exec_insn st depth regs i
         | Some _ -> () (* annulled: the slot is squashed, nothing executes *)
         | None ->
           charge st 1;
           st.counters.Counters.nops <- st.counters.Counters.nops + 1
       else exec_delay st depth regs term);
      if taken then goto taken_l
      else begin
        (match layout_next with
        | Some next when String.equal next not_taken_l -> ()
        | Some _ | None -> charge_layout_jump st);
        goto not_taken_l
      end
    | Mir.Block.Jmp l ->
      (match layout_next with
      | Some next when String.equal next l -> ()
      | Some _ | None ->
        charge st 1;
        st.counters.Counters.jumps <- st.counters.Counters.jumps + 1;
        exec_delay st depth regs term);
      goto l
    | Mir.Block.Switch _ ->
      trap "unlowered switch reached the simulator (%s)" b.Mir.Block.label
    | Mir.Block.Jtab (r, id) ->
      charge st 1;
      st.counters.Counters.indirect_jumps <-
        st.counters.Counters.indirect_jumps + 1;
      exec_delay st depth regs term;
      let table = Mir.Func.jtab fi.fn id in
      let idx = regs.(Mir.Reg.to_int r) in
      if idx < 0 || idx >= Array.length table then
        trap "jump table index %d out of bounds (%s)" idx b.Mir.Block.label;
      goto table.(idx)
    | Mir.Block.Ret v ->
      charge st 1;
      st.counters.Counters.returns <- st.counters.Counters.returns + 1;
      exec_delay st depth regs term;
      return_value := Option.map (operand_value regs) v;
      running := false
  done;
  match !return_value with Some v -> v | None -> 0

let run ?(config = default_config) ?profile ?on_branch ?on_block
    (p : Mir.Program.t) ~input =
  let image = build_image p in
  let memory = Hashtbl.create 64 in
  List.iter
    (fun (g : Mir.Program.global) ->
      let arr =
        match g.Mir.Program.init with
        | Some init ->
          let arr = Array.make g.Mir.Program.size 0 in
          Array.blit init 0 arr 0 (Array.length init);
          arr
        | None -> Array.make g.Mir.Program.size 0
      in
      Hashtbl.replace memory g.Mir.Program.gname arr)
    p.Mir.Program.globals;
  let st =
    {
      image;
      memory;
      counters = Counters.make ();
      out = Buffer.create 1024;
      input;
      input_pos = 0;
      cc = (0, 0);
      fuel_left = config.fuel;
      config;
      profile;
      on_branch;
      on_block;
    }
  in
  let exit_code =
    try exec_call st 0 "main" [] with Program_exit code -> code
  in
  { counters = st.counters; output = Buffer.contents st.out; exit_code }
