(** (m, n) branch predictors.

    An [(m, n)] predictor keeps [entries] n-bit saturating counters indexed
    by the branch site number XORed with m bits of global branch history,
    as in the paper's Tables 5 and 6 ((0,1) and (0,2) predictors with
    32..2048 entries; the SPARC Ultra 1 uses a (0,2) predictor with 2048
    entries). *)

type t

val make : history_bits:int -> counter_bits:int -> entries:int -> t
(** [entries] must be a power of two.  Counters start in the weakly
    not-taken state. *)

val access : t -> site:int -> taken:bool -> unit
(** Record one executed conditional branch: predict, compare with the
    outcome, update the counter and history. *)

val lookups : t -> int
val mispredicts : t -> int
val reset : t -> unit
val describe : t -> string
(** e.g. ["(0,2)x2048"]. *)
