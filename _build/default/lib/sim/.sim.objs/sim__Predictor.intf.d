lib/sim/predictor.mli:
