lib/sim/cycle_model.mli: Counters
