lib/sim/profile.mli: Mir
