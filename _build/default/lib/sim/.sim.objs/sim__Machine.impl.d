lib/sim/machine.ml: Array Buffer Char Counters Hashtbl Int List Mir Option Printf Profile String
