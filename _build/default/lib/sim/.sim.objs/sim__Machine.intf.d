lib/sim/machine.mli: Counters Mir Profile
