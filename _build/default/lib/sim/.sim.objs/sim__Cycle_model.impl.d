lib/sim/cycle_model.ml: Counters
