lib/sim/profile.ml: Array Hashtbl Mir Printf
