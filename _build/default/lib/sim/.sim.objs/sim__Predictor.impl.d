lib/sim/predictor.ml: Array Printf
