lib/core/select.mli: Range
