lib/core/stats.mli: Format Pass
