lib/core/detect.mli: Format Mir Range
