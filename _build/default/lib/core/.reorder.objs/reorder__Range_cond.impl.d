lib/core/range_cond.ml: Mir Range
