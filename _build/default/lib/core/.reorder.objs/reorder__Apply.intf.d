lib/core/apply.mli: Detect Mir Select
