lib/core/stats.ml: Format Hashtbl Int List Option Pass
