lib/core/cost.ml: Array Int List
