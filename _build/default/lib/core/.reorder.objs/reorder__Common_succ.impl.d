lib/core/common_succ.ml: Array Format Hashtbl List Mir Sim String
