lib/core/coalesce.mli: Detect Mir Sim
