lib/core/profiles.ml: Array Detect List Mir Printf Range Range_cond Select Sim
