lib/core/common_succ.mli: Format Mir Sim
