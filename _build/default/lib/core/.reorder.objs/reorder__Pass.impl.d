lib/core/pass.ml: Apply Array Coalesce Detect Format Int List Mir Printf Profiles Select String
