lib/core/profiles.mli: Detect Mir Range Select Sim
