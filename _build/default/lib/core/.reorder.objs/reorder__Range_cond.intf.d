lib/core/range_cond.mli: Mir Range
