lib/core/coalesce.ml: Array Detect List Mir Range Sim
