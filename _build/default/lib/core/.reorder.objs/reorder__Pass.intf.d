lib/core/pass.mli: Apply Coalesce Detect Format Mir Select Sim
