lib/core/cost.mli:
