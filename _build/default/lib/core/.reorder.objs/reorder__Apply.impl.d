lib/core/apply.ml: Array Detect List Mir Option Printf Range Range_cond Select
