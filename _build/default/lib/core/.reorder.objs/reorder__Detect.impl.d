lib/core/detect.ml: Format Hashtbl List Mir Option Printf Range String
