lib/core/range.ml: Format Int List Printf
