lib/core/select.ml: Array Cost Int List Range String
