type run = {
  cs_id : int;
  cs_func : string;
  labels : string list;
  common_succ : string;
  final_fail : string;
  conds : (Mir.Cond.t * Mir.Operand.t * Mir.Operand.t) array;
  costs : int array;
}

let max_run_length = 7

let pp_run ppf r =
  Format.fprintf ppf "comb #%d in %s: [%s] -> %s else %s" r.cs_id r.cs_func
    (String.concat "; " r.labels)
    r.common_succ r.final_fail

(* a chain link: pure compare + branch.  Non-head links must be exactly
   one compare (they are permuted wholesale); the head may carry leading
   instructions, which stay put in front of the permuted chain. *)
let link_of (b : Mir.Block.t) =
  match b.Mir.Block.insns, b.Mir.Block.term.kind with
  | [ Mir.Insn.Cmp (x, y) ], Mir.Block.Br (cond, taken, fall)
    when not (String.equal taken fall) ->
    Some (x, y, cond, taken, fall)
  | _ -> None

let head_link_of (b : Mir.Block.t) =
  match List.rev b.Mir.Block.insns, b.Mir.Block.term.kind with
  | Mir.Insn.Cmp (x, y) :: _, Mir.Block.Br (cond, taken, fall)
    when not (String.equal taken fall) ->
    Some (x, y, cond, taken, fall)
  | _ -> None

let find_func ?(exclude = fun _ -> false) ~next_id (fn : Mir.Func.t) =
  let preds = Mir.Func.predecessors fn in
  let single_pred label =
    match Hashtbl.find_opt preds label with
    | Some [ _ ] -> true
    | Some _ | None -> false
  in
  let claimed = Hashtbl.create 16 in
  let runs = ref [] in
  List.iter
    (fun (b : Mir.Block.t) ->
      if (not (Hashtbl.mem claimed b.Mir.Block.label)) && not (exclude b.Mir.Block.label)
      then
        match head_link_of b with
        | None -> ()
        | Some (x, y, cond, taken, fall) ->
          (* try both orientations: common successor on the taken side
             (|| chains) and on the fall-through side (&& chains) *)
          let try_orient cs first_next first_cond =
            let rec extend labels conds costs next =
              if
                List.length labels >= max_run_length
                || Hashtbl.mem claimed next || exclude next
                || String.equal next cs
                || not (single_pred next)
              then (labels, conds, costs, next)
              else
                match Mir.Func.find_block_opt fn next with
                | None -> (labels, conds, costs, next)
                | Some nb -> (
                  match link_of nb with
                  | Some (nx, ny, ncond, ntaken, nfall)
                    when String.equal ntaken cs && not (String.equal nfall cs) ->
                    extend (labels @ [ next ])
                      (conds @ [ (ncond, nx, ny) ])
                      (costs @ [ List.length nb.Mir.Block.insns + 1 ])
                      nfall
                  | Some (nx, ny, ncond, ntaken, nfall)
                    when String.equal nfall cs && not (String.equal ntaken cs) ->
                    extend (labels @ [ next ])
                      (conds @ [ (Mir.Cond.negate ncond, nx, ny) ])
                      (costs @ [ List.length nb.Mir.Block.insns + 1 ])
                      ntaken
                  | Some _ | None -> (labels, conds, costs, next))
            in
            (* the head's leading instructions stay put, so its condition
               costs one compare plus one branch like the others *)
            extend [ b.Mir.Block.label ] [ (first_cond, x, y) ] [ 2 ] first_next
          in
          let candidates =
            [ try_orient taken fall cond;
              try_orient fall taken (Mir.Cond.negate cond) ]
          in
          let cs_of i = if i = 0 then taken else fall in
          let best = ref None in
          List.iteri
            (fun i (labels, conds, costs, final) ->
              if List.length labels >= 2 then
                match !best with
                | Some (blabels, _, _, _, _) when List.length blabels >= List.length labels
                  -> ()
                | _ -> best := Some (labels, conds, costs, final, cs_of i))
            candidates;
          (match !best with
          | Some (labels, conds, costs, final_fail, cs) ->
            let r =
              {
                cs_id = !next_id;
                cs_func = fn.Mir.Func.name;
                labels;
                common_succ = cs;
                final_fail;
                conds = Array.of_list conds;
                costs = Array.of_list costs;
              }
            in
            incr next_id;
            List.iter (fun l -> Hashtbl.replace claimed l ()) labels;
            runs := r :: !runs
          | None -> ()))
    fn.Mir.Func.blocks;
  List.rev !runs

let find_program ?exclude ?(first_id = 0) (p : Mir.Program.t) =
  let next_id = ref first_id in
  List.concat_map (fun fn -> find_func ?exclude ~next_id fn) p.Mir.Program.funcs

let instrument (p : Mir.Program.t) runs (table : Sim.Profile.t) =
  List.iter
    (fun r ->
      ignore (Sim.Profile.register_comb_seq table r.cs_id r.conds);
      let fn = Mir.Program.find_func p r.cs_func in
      let head = Mir.Func.find_block fn (List.hd r.labels) in
      (* just before the head's compare: every condition operand is
         defined by then (the head prefix may define the first one) *)
      let rec splice = function
        | [ (Mir.Insn.Cmp _ as cmp) ] -> [ Mir.Insn.Profile_comb r.cs_id; cmp ]
        | i :: rest -> i :: splice rest
        | [] -> invalid_arg "Common_succ.instrument: head has no compare"
      in
      head.Mir.Block.insns <- splice head.Mir.Block.insns)
    runs

let expected_cost ~counts ~costs order =
  let n = Array.length costs in
  let masks = Array.length counts in
  let total = ref 0 in
  for mask = 0 to masks - 1 do
    if counts.(mask) > 0 then begin
      (* instructions executed until the first satisfied condition in
         [order]; all of them when none is satisfied *)
      let cost = ref 0 in
      (try
         for k = 0 to n - 1 do
           let i = order.(k) in
           cost := !cost + costs.(i);
           if mask land (1 lsl i) <> 0 then raise Exit
         done
       with Exit -> ());
      total := !total + (counts.(mask) * !cost)
    end
  done;
  !total

(* all permutations of 0..n-1, generated deterministically *)
let permutations n =
  let rec go avail =
    if avail = [] then [ [] ]
    else
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (go (List.filter (( <> ) x) avail)))
        avail
  in
  List.map Array.of_list (go (List.init n (fun i -> i)))

let best_permutation ~counts ~costs =
  let n = Array.length costs in
  let best = ref (Array.init n (fun i -> i)) in
  let best_cost = ref (expected_cost ~counts ~costs !best) in
  List.iter
    (fun p ->
      let c = expected_cost ~counts ~costs p in
      if c < !best_cost then begin
        best := p;
        best_cost := c
      end)
    (permutations n);
  !best

type outcome =
  | Reordered of int array
  | Unchanged of string

let apply (p : Mir.Program.t) (table : Sim.Profile.t) r =
  match Sim.Profile.find_comb_seq table r.cs_id with
  | None -> Unchanged "no profile data registered"
  | Some prof ->
    if prof.Sim.Profile.comb_executions = 0 then
      Unchanged "never executed in training"
    else begin
      let counts = prof.Sim.Profile.comb_counts in
      let order = best_permutation ~counts ~costs:r.costs in
      if order = Array.init (Array.length order) (fun i -> i) then
        Unchanged "original order already optimal"
      else begin
        let fn = Mir.Program.find_func p r.cs_func in
        let shells =
          List.map (fun l -> Mir.Func.find_block fn l) r.labels
        in
        (* the permutable content of each block is its final compare; the
           head's leading instructions (including profiling pseudos) stay
           in the head shell, in front of whichever compare lands there *)
        let contents =
          List.map
            (fun (b : Mir.Block.t) ->
              match List.rev b.Mir.Block.insns with
              | (Mir.Insn.Cmp _ as cmp) :: _ -> [ cmp ]
              | _ -> assert false (* links always end with a compare *))
            shells
          |> Array.of_list
        in
        let head_prefix =
          match List.rev (List.hd shells).Mir.Block.insns with
          | Mir.Insn.Cmp _ :: rev_prefix -> List.rev rev_prefix
          | _ -> assert false
        in
        let shells = Array.of_list shells in
        let n = Array.length shells in
        Array.iteri
          (fun k i ->
            let shell = shells.(k) in
            let body = contents.(i) in
            let body = if k = 0 then head_prefix @ body else body in
            let next =
              if k = n - 1 then r.final_fail
              else shells.(k + 1).Mir.Block.label
            in
            let cond, _, _ = r.conds.(i) in
            shell.Mir.Block.insns <- body;
            shell.Mir.Block.term <-
              Mir.Block.term (Mir.Block.Br (cond, r.common_succ, next)))
          order;
        Reordered order
      end
    end

(* ------------------------------------------------------------------ *)
(* Sequences as super-branches (Figure 14(d)-(e))                      *)
(* ------------------------------------------------------------------ *)

type pair = {
  pr_id : int;
  pr_first : run;
  pr_second : run;
}

let head_label r = List.hd r.labels

(* the second group's head must carry nothing but its compare: anything
   else would be a side effect executed between the groups *)
let head_is_bare fn label =
  match Mir.Func.find_block_opt fn label with
  | Some { Mir.Block.insns = [ Mir.Insn.Cmp _ ]; _ } -> true
  | Some _ | None -> false

let find_pairs (p : Mir.Program.t) runs ~first_id =
  let next = ref first_id in
  let used = Hashtbl.create 8 in
  List.filter_map
    (fun r1 ->
      if Hashtbl.mem used r1.cs_id then None
      else
        match
          List.find_opt
            (fun r2 ->
              (not (Hashtbl.mem used r2.cs_id))
              && r2.cs_id <> r1.cs_id
              && String.equal r1.cs_func r2.cs_func
              && String.equal r1.common_succ (head_label r2)
              && String.equal r1.final_fail r2.final_fail
              (* degenerate shapes where the leave targets alias a group
                 head or each other cannot be relinked safely *)
              && (not (String.equal r2.common_succ r2.final_fail))
              && (not (String.equal r1.final_fail (head_label r2)))
              && (not (String.equal r2.common_succ (head_label r1)))
              && Array.length r1.conds + Array.length r2.conds
                 <= max_run_length)
            runs
        with
        | None -> None
        | Some r2 ->
          let fn = Mir.Program.find_func p r1.cs_func in
          let preds = Mir.Func.predecessors fn in
          let second_entered_only_from_first =
            match Hashtbl.find_opt preds (head_label r2) with
            | Some ps -> List.for_all (fun l -> List.mem l r1.labels) ps
            | None -> false
          in
          if second_entered_only_from_first && head_is_bare fn (head_label r2)
          then begin
            Hashtbl.replace used r1.cs_id ();
            Hashtbl.replace used r2.cs_id ();
            let id = !next in
            incr next;
            Some { pr_id = id; pr_first = r1; pr_second = r2 }
          end
          else None)
    runs

let instrument_pairs (p : Mir.Program.t) pairs (table : Sim.Profile.t) =
  List.iter
    (fun pr ->
      let conds = Array.append pr.pr_first.conds pr.pr_second.conds in
      ignore (Sim.Profile.register_comb_seq table pr.pr_id conds);
      let fn = Mir.Program.find_func p pr.pr_first.cs_func in
      let head = Mir.Func.find_block fn (head_label pr.pr_first) in
      let rec splice = function
        | [ (Mir.Insn.Cmp _ as cmp) ] -> [ Mir.Insn.Profile_comb pr.pr_id; cmp ]
        | i :: rest -> i :: splice rest
        | [] -> invalid_arg "Common_succ.instrument_pairs: head has no compare"
      in
      head.Mir.Block.insns <- splice head.Mir.Block.insns)
    pairs

(* expected instructions for one outcome mask under a group order: walk
   the first group's conditions until one escapes (go to the second
   group) or all fail (leave: the conjunction held); same in the second
   group, whose escape leaves to the final fail target *)
let pair_cost ~counts ~first ~second ~swapped =
  let n1 = Array.length first.conds in
  let group_cost costs offsets mask =
    (* returns (instructions, escaped) *)
    let cost = ref 0 and escaped = ref false in
    (try
       Array.iteri
         (fun i c ->
           cost := !cost + c;
           if mask land (1 lsl offsets.(i)) <> 0 then begin
             escaped := true;
             raise Exit
           end)
         costs
     with Exit -> ());
    (!cost, !escaped)
  in
  let offsets1 = Array.init n1 (fun i -> i) in
  let offsets2 = Array.init (Array.length second.conds) (fun i -> n1 + i) in
  let ga, oa, gb, ob =
    if swapped then (second.costs, offsets2, first.costs, offsets1)
    else (first.costs, offsets1, second.costs, offsets2)
  in
  let total = ref 0 in
  Array.iteri
    (fun mask count ->
      if count > 0 then begin
        let ca, escaped = group_cost ga oa mask in
        let c =
          if escaped then ca + fst (group_cost gb ob mask) else ca
        in
        total := !total + (count * c)
      end)
    counts;
  !total

let retarget_term (t : Mir.Block.term) ~from ~into =
  let swap l = if String.equal l from then into else l in
  let kind =
    match t.Mir.Block.kind with
    | Mir.Block.Br (c, a, b) -> Mir.Block.Br (c, swap a, swap b)
    | Mir.Block.Jmp l -> Mir.Block.Jmp (swap l)
    | Mir.Block.Switch (r, cases, d) ->
      Mir.Block.Switch (r, List.map (fun (v, l) -> (v, swap l)) cases, swap d)
    | (Mir.Block.Jtab _ | Mir.Block.Ret _) as k -> k
  in
  { t with Mir.Block.kind }

let retarget_run fn r ~from ~into =
  List.iter
    (fun l ->
      match Mir.Func.find_block_opt fn l with
      | Some b -> b.Mir.Block.term <- retarget_term b.Mir.Block.term ~from ~into
      | None -> ())
    r.labels

let apply_pair (p : Mir.Program.t) (table : Sim.Profile.t) pr =
  match Sim.Profile.find_comb_seq table pr.pr_id with
  | None -> Unchanged "no joint profile registered"
  | Some prof ->
    if prof.Sim.Profile.comb_executions = 0 then
      Unchanged "never executed in training"
    else begin
      let counts = prof.Sim.Profile.comb_counts in
      let keep =
        pair_cost ~counts ~first:pr.pr_first ~second:pr.pr_second ~swapped:false
      in
      let swap =
        pair_cost ~counts ~first:pr.pr_first ~second:pr.pr_second ~swapped:true
      in
      if swap >= keep then Unchanged "original group order already optimal"
      else begin
        let fn = Mir.Program.find_func p pr.pr_first.cs_func in
        let h1 = head_label pr.pr_first and h2 = head_label pr.pr_second in
        let final = pr.pr_second.common_succ in
        let h1_block = Mir.Func.find_block fn h1 in
        (* the first head may carry leading instructions (the enclosing
           block's computations); they must keep executing before EITHER
           group, so split them off: the original head block keeps the
           prefix and enters the second group, while a fresh block takes
           over as the first group's head *)
        let r1_head, r1_labels =
          match List.rev h1_block.Mir.Block.insns with
          | (Mir.Insn.Cmp _ as cmp) :: ([] as _rev_prefix) ->
            ignore cmp;
            (h1, pr.pr_first.labels)
          | (Mir.Insn.Cmp _ as cmp) :: rev_prefix ->
            let label = Mir.Func.fresh_label fn in
            let nb = Mir.Block.make ~label [ cmp ] h1_block.Mir.Block.term.Mir.Block.kind in
            nb.Mir.Block.term <- h1_block.Mir.Block.term;
            h1_block.Mir.Block.insns <- List.rev rev_prefix;
            h1_block.Mir.Block.term <- Mir.Block.term (Mir.Block.Jmp h2);
            Mir.Func.insert_blocks_after fn h1 [ nb ];
            (label, label :: List.tl pr.pr_first.labels)
          | _ -> assert false (* runs always end their head with a compare *)
        in
        let r1 = { pr.pr_first with labels = r1_labels } in
        if String.equal r1_head h1 then begin
          (* bare head: entries into the structure start at group 2 now *)
          List.iter
            (fun (b : Mir.Block.t) ->
              if
                (not (List.mem b.Mir.Block.label r1.labels))
                && not (List.mem b.Mir.Block.label pr.pr_second.labels)
              then
                b.Mir.Block.term <-
                  retarget_term b.Mir.Block.term ~from:h1 ~into:h2)
            fn.Mir.Func.blocks;
          List.iter
            (fun (jt : string array) ->
              Array.iteri
                (fun i t -> if String.equal t h1 then jt.(i) <- h2)
                jt)
            fn.Mir.Func.jtables
        end;
        (* first group's escapes now leave the structure *)
        retarget_run fn r1 ~from:h2 ~into:final;
        (* second group's escapes now try the first group *)
        retarget_run fn pr.pr_second ~from:final ~into:r1_head;
        Reordered [| 1; 0 |]
      end
    end
