(** Static measurements over a reordering run (paper Table 8 and
    Figures 11-13). *)

type t = {
  total_seqs : int;
  reordered_seqs : int;
  orig_branch_lengths : int list;
      (** branches per reordered sequence, before (Figures 11-13, left) *)
  final_branch_lengths : int list;
      (** branches per reordered sequence, after (Figures 11-13, right) *)
  avg_len_before : float;  (** over reordered sequences only, as in Table 8 *)
  avg_len_after : float;
}

val of_report : Pass.report -> t

val merge : t -> t -> t

val histogram : int list -> (int * int) list
(** [(length, occurrences)] sorted by length. *)

val pp : Format.formatter -> t -> unit
