type t = {
  lo : int;
  hi : int;
}

let min_value = -0x4000_0000
let max_value = 0x3FFF_FFFF

let make lo hi =
  if lo < min_value || hi > max_value || lo > hi then
    invalid_arg (Printf.sprintf "Range.make %d %d" lo hi);
  { lo; hi }

let single c = make c c
let below c = make min_value c
let above c = make c max_value
let full = { lo = min_value; hi = max_value }

let lo r = r.lo
let hi r = r.hi
let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let pp ppf r =
  let bound ppf v =
    if v = min_value then Format.fprintf ppf "MIN"
    else if v = max_value then Format.fprintf ppf "MAX"
    else Format.fprintf ppf "%d" v
  in
  if r.lo = r.hi then Format.fprintf ppf "[%a]" bound r.lo
  else Format.fprintf ppf "[%a..%a]" bound r.lo bound r.hi

let show r = Format.asprintf "%a" pp r
let mem v r = r.lo <= v && v <= r.hi
let size r = r.hi - r.lo + 1
let is_single r = r.lo = r.hi
let is_bounded r = r.lo > min_value && r.hi < max_value && r.lo < r.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi
let nonoverlapping r rs = not (List.exists (overlaps r) rs)
let sort_by_lo rs = List.sort compare rs

let complement_cover rs =
  let sorted = sort_by_lo rs in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if overlaps a b then
        invalid_arg "Range.complement_cover: overlapping input";
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  let gaps = ref [] in
  let cursor = ref min_value in
  List.iter
    (fun r ->
      if r.lo > !cursor then gaps := make !cursor (r.lo - 1) :: !gaps;
      cursor := r.hi + 1)
    sorted;
  if !cursor <= max_value then gaps := make !cursor max_value :: !gaps;
  List.rev !gaps
