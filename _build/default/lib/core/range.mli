(** Ranges of contiguous integer values (paper Definition 1).

    Bounds are inclusive.  [min_value] and [max_value] play the paper's
    MIN/MAX roles; they are chosen well inside the OCaml integer range so
    that [c - 1] / [c + 1] arithmetic on range endpoints cannot overflow.
    Programs whose compared constants leave this interval are rejected by
    sequence detection. *)

type t = private {
  lo : int;
  hi : int;
}

val min_value : int
val max_value : int

val make : int -> int -> t
(** Raises [Invalid_argument] unless [min_value <= lo <= hi <= max_value]. *)

val single : int -> t

val below : int -> t
(** [below c] is [MIN .. c]. *)

val above : int -> t
(** [above c] is [c .. MAX]. *)

val full : t
val lo : t -> int
val hi : t -> int
val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by [lo], then [hi]. *)

val pp : Format.formatter -> t -> unit
val show : t -> string

val mem : int -> t -> bool
val size : t -> int
val is_single : t -> bool
val is_bounded : t -> bool
(** Bounded on both sides and spanning more than one value: the Form 4
    shape that needs two conditional branches (Table 1). *)

val overlaps : t -> t -> bool
val nonoverlapping : t -> t list -> bool
(** Definition 5 lifted to a set. *)

val complement_cover : t list -> t list
(** Given nonoverlapping ranges, the minimal set of ranges covering all
    remaining values (the paper's default ranges, Section 5), sorted by
    [lo].  Raises [Invalid_argument] if inputs overlap. *)

val sort_by_lo : t list -> t list
