type item = {
  range : Range.t;
  target : string;
  orig_pos : int;
  item_blocks : string list;
  sides : Mir.Insn.t list;
  exit_cc_const : int;
  had_own_cmp : bool;
}

type t = {
  seq_id : int;
  func_name : string;
  var : Mir.Reg.t;
  head : string;
  items : item list;
  default_target : string;
  default_cc_const : int option;
}

let items_count seq = List.length seq.items

let branches seq =
  List.fold_left (fun acc it -> acc + List.length it.item_blocks) 0 seq.items

let explicit_ranges seq = List.map (fun it -> it.range) seq.items
let default_ranges seq = Range.complement_cover (explicit_ranges seq)

let pp ppf seq =
  Format.fprintf ppf "seq #%d in %s on %a, head %s:@\n" seq.seq_id
    seq.func_name Mir.Reg.pp seq.var seq.head;
  List.iter
    (fun it ->
      Format.fprintf ppf "  %d: %a -> %s%s@\n" it.orig_pos Range.pp it.range
        it.target
        (if it.sides = [] then ""
         else Printf.sprintf " (%d side-effect insns)" (List.length it.sides)))
    seq.items;
  Format.fprintf ppf "  default -> %s@\n" seq.default_target

(* ------------------------------------------------------------------ *)
(* Parsing one block as a range condition                              *)
(* ------------------------------------------------------------------ *)

(* a candidate interpretation of the condition starting at some block *)
type cand = {
  c_range : Range.t;
  c_exit : string;        (* target when the value is in the range *)
  c_next : string;        (* where the sequence continues *)
  c_exit_cc : int;        (* cmp constant live on the exit edge *)
  c_next_cc : int option; (* cmp constant live on the continue edge *)
  c_blocks : string list;
  c_sides : Mir.Insn.t list;
  c_own_cmp : bool;
}

let in_bounds c = c > Range.min_value && c < Range.max_value

(* the block's test: variable, constant, leading side effects, whether the
   compare is the block's own *)
type test = {
  t_var : Mir.Reg.t;
  t_const : int;
  t_sides : Mir.Insn.t list;
  t_own : bool;
}

let split_last_cmp insns =
  match List.rev insns with
  | Mir.Insn.Cmp (a, b) :: rev_rest -> Some (List.rev rev_rest, a, b)
  | _ -> None

let block_test ~var ~cc (b : Mir.Block.t) =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br _ -> (
    match split_last_cmp b.Mir.Block.insns with
    | Some (sides, a, cb) -> (
      let normalized =
        match a, cb with
        | Mir.Operand.Reg r, Mir.Operand.Imm c -> Some (r, c, false)
        | Mir.Operand.Imm c, Mir.Operand.Reg r -> Some (r, c, true)
        | _ -> None
      in
      match normalized with
      | Some (r, c, swapped) ->
        let var_ok = match var with None -> true | Some v -> Mir.Reg.equal v r in
        if var_ok && in_bounds c then
          Some ({ t_var = r; t_const = c; t_sides = sides; t_own = true }, swapped)
        else None
      | None -> None)
    | None -> (
      (* no compare anywhere in the body: the branch consumes the
         condition codes of the path's previous compare *)
      let has_cmp =
        List.exists (function Mir.Insn.Cmp _ -> true | _ -> false)
          b.Mir.Block.insns
      in
      match var, cc, has_cmp with
      | Some v, Some c, false ->
        Some
          ( { t_var = v; t_const = c; t_sides = b.Mir.Block.insns; t_own = false },
            false )
      | _ -> None))
  | Mir.Block.Jmp _ | Mir.Block.Switch _ | Mir.Block.Jtab _ | Mir.Block.Ret _ ->
    None

let br_edges (b : Mir.Block.t) =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br (cond, taken, fall) -> Some (cond, taken, fall)
  | _ -> None

(* interval of values for which [cond] against [c] holds; None when the
   set is not an interval (Ne) or is empty *)
(* [in_bounds c] holds for every compare constant that reaches here, so
   c-1 / c+1 stay within [min_value, max_value] *)
let cond_interval cond c =
  match cond with
  | Mir.Cond.Eq -> Some (c, c)
  | Mir.Cond.Ne -> None
  | Mir.Cond.Lt -> Some (Range.min_value, c - 1)
  | Mir.Cond.Le -> Some (Range.min_value, c)
  | Mir.Cond.Gt -> Some (c + 1, Range.max_value)
  | Mir.Cond.Ge -> Some (c, Range.max_value)

let intersect (a_lo, a_hi) (b_lo, b_hi) =
  let lo = max a_lo b_lo and hi = min a_hi b_hi in
  if lo <= hi then Some (lo, hi) else None

(* Form 4: this block's relational branch combined with a successor block
   holding the matching opposite bound, sharing a common "out" successor
   (Figure 4's bounded-range case). *)
let pair_cands fn ~marked (b : Mir.Block.t) (test : test) cond taken fall =
  if not test.t_own then []
  else
    let try_edge my_cond my_target other_target =
      match cond_interval my_cond test.t_const with
      | None -> []
      | Some my_iv -> (
        match Mir.Func.find_block_opt fn my_target with
        | None -> []
        | Some s ->
          if
            Hashtbl.mem marked s.Mir.Block.label
            || String.equal s.Mir.Block.label b.Mir.Block.label
          then []
          else
            (* s must be exactly one compare of the same variable *)
            (match s.Mir.Block.insns, br_edges s with
            | [ Mir.Insn.Cmp (Mir.Operand.Reg r2, Mir.Operand.Imm c2) ],
              Some (cond2, taken2, fall2)
              when Mir.Reg.equal r2 test.t_var && in_bounds c2 ->
              let consider s_cond s_exit s_out =
                if not (String.equal s_out other_target) then []
                else
                  match cond_interval s_cond c2 with
                  | None -> []
                  | Some s_iv -> (
                    match intersect my_iv s_iv with
                    | Some (lo, hi)
                      when lo > Range.min_value && hi < Range.max_value ->
                      [
                        {
                          c_range = Range.make lo hi;
                          c_exit = s_exit;
                          c_next = other_target;
                          c_exit_cc = c2;
                          c_next_cc = None;
                          c_blocks = [ b.Mir.Block.label; s.Mir.Block.label ];
                          c_sides = test.t_sides;
                          c_own_cmp = true;
                        };
                      ]
                    | Some _ | None -> [])
              in
              consider cond2 taken2 fall2 @ consider (Mir.Cond.negate cond2) fall2 taken2
            | _ -> []))
    in
    (* my in-range edge can be either the taken or the fall-through edge *)
    try_edge cond taken fall @ try_edge (Mir.Cond.negate cond) fall taken

(* All interpretations of the condition at block [b], in the paper's
   preference order: equality forms, bounded pairs, then the two readings
   of a relational branch. *)
let candidates fn ~marked ~var ~cc (b : Mir.Block.t) =
  match block_test ~var ~cc b with
  | None -> []
  | Some (test, swapped) -> (
    match br_edges b with
    | None -> []
    | Some (cond0, taken, fall) ->
      let cond = if swapped then Mir.Cond.swap cond0 else cond0 in
      let c = test.t_const in
      let mk range exit next next_cc =
        {
          c_range = range;
          c_exit = exit;
          c_next = next;
          c_exit_cc = c;
          c_next_cc = next_cc;
          c_blocks = [ b.Mir.Block.label ];
          c_sides = test.t_sides;
          c_own_cmp = test.t_own;
        }
      in
      let relational lo_r hi_r =
        (* taken-side range R first, fall-side range I second *)
        [ mk lo_r taken fall (Some c); mk hi_r fall taken (Some c) ]
      in
      (match cond with
      | Mir.Cond.Eq -> [ mk (Range.single c) taken fall (Some c) ]
      | Mir.Cond.Ne -> [ mk (Range.single c) fall taken (Some c) ]
      | Mir.Cond.Lt ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.below (c - 1)) (Range.above c)
      | Mir.Cond.Le ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.below c) (Range.above (c + 1))
      | Mir.Cond.Gt ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.above (c + 1)) (Range.below c)
      | Mir.Cond.Ge ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.above c) (Range.below (c - 1))))

(* ------------------------------------------------------------------ *)
(* Walking a path of range conditions                                  *)
(* ------------------------------------------------------------------ *)

let defines_var var insn = List.exists (Mir.Reg.equal var) (Mir.Insn.defs insn)

(* side effects must be duplicable: they may not redefine the branch
   variable (Theorem 2) and profiling pseudos must not be duplicated *)
let sides_ok var sides =
  List.for_all
    (fun i -> (not (defines_var var i)) && not (Mir.Insn.is_profile i))
    sides

let find_from fn ~marked ~min_len head =
  let rec walk ~var ~cc ~ranges ~acc ~path block =
    let stop () = (List.rev acc, block.Mir.Block.label, cc) in
    if Hashtbl.mem marked block.Mir.Block.label then stop ()
    else if List.mem block.Mir.Block.label path then stop ()
    else
      let cands = candidates fn ~marked ~var ~cc block in
      let viable =
        List.find_opt
          (fun cand ->
            Range.nonoverlapping cand.c_range ranges
            && (acc = [] || sides_ok (Option.get var) cand.c_sides))
          cands
      in
      match viable with
      | None -> stop ()
      | Some cand ->
        let var_reg =
          match var with
          | Some v -> v
          | None -> (
            (* first condition fixes the variable *)
            match block_test ~var:None ~cc block with
            | Some (test, _) -> test.t_var
            | None -> assert false)
        in
        let item =
          {
            range = cand.c_range;
            target = cand.c_exit;
            orig_pos = List.length acc + 1;
            item_blocks = cand.c_blocks;
            sides = (if acc = [] then [] else cand.c_sides);
            exit_cc_const = cand.c_exit_cc;
            had_own_cmp = cand.c_own_cmp;
          }
        in
        (* the head's leading instructions stay in place, so they are not
           side effects of the sequence; later blocks' leading
           instructions are recorded on their item *)
        (match Mir.Func.find_block_opt fn cand.c_next with
        | Some next_block ->
          walk ~var:(Some var_reg) ~cc:cand.c_next_cc
            ~ranges:(cand.c_range :: ranges) ~acc:(item :: acc)
            ~path:(block.Mir.Block.label :: path) next_block
        | None -> (List.rev (item :: acc), cand.c_next, cand.c_next_cc))
  in
  let items, default_target, default_cc =
    walk ~var:None ~cc:None ~ranges:[] ~acc:[] ~path:[] head
  in
  if List.length items >= min_len then
    Some (items, default_target, default_cc)
  else None

let find_func ?(min_len = 2) ~next_id (fn : Mir.Func.t) =
  let marked = Hashtbl.create 64 in
  let reachable = Mir.Func.reachable fn in
  let seqs = ref [] in
  List.iter
    (fun (b : Mir.Block.t) ->
      if
        (not (Hashtbl.mem marked b.Mir.Block.label))
        && Hashtbl.mem reachable b.Mir.Block.label
        (* a head must carry its own compare *)
        && (match split_last_cmp b.Mir.Block.insns with
           | Some (_, Mir.Operand.Reg _, Mir.Operand.Imm _)
           | Some (_, Mir.Operand.Imm _, Mir.Operand.Reg _) ->
             true
           | Some _ | None -> false)
      then
        match find_from fn ~marked ~min_len b with
        | Some (items, default_target, default_cc) ->
          let var =
            match block_test ~var:None ~cc:None b with
            | Some (test, _) -> test.t_var
            | None -> assert false
          in
          let seq =
            {
              seq_id = !next_id;
              func_name = fn.Mir.Func.name;
              var;
              head = b.Mir.Block.label;
              items;
              default_target;
              default_cc_const = default_cc;
            }
          in
          incr next_id;
          List.iter
            (fun it ->
              List.iter (fun l -> Hashtbl.replace marked l ()) it.item_blocks)
            items;
          seqs := seq :: !seqs
        | None -> ())
    fn.Mir.Func.blocks;
  List.rev !seqs

let find_program ?min_len (p : Mir.Program.t) =
  let next_id = ref 0 in
  List.concat_map (fun fn -> find_func ?min_len ~next_id fn) p.Mir.Program.funcs
