(** Coalescing a sequence of range conditions into an indirect jump
    (Uh & Whalley, SAS 1997 — the companion transformation the paper
    compares against, and its conclusion's suggestion: "profile
    information should be used to decide if an indirect jump should be
    generated or branch reordering should instead be applied").

    A detected sequence whose explicit ranges are all bounded, with no
    intervening side effects and no condition-code-consuming targets,
    can be replaced wholesale by two bounds checks, an index subtraction
    and a jump through a dense table mapping every value in
    [min lo .. max hi] to its target (default-target entries fill the
    holes; both out-of-bounds sides go to the sequence's default).

    The estimated per-execution cost is a constant
    [6 + indirect_penalty] instructions-equivalent, independent of the
    profile; {!decide} compares it against the reordered sequence's
    Equation 2 estimate under a given machine model, reproducing the
    paper's Section 9 observation that the decision flips as indirect
    jumps get more expensive (SPARC IPC vs Ultra 1). *)

type plan = {
  table_lo : int;
  table_hi : int;
  targets : string array;  (** [table_hi - table_lo + 1] entries *)
}

val coalescible :
  Mir.Func.t -> Detect.t -> max_span:int -> plan option
(** [None] when a range is unbounded, side effects intervene, a target
    consumes condition codes, or the dense span exceeds [max_span]. *)

val indirect_cost_per_execution : Sim.Cycle_model.params -> int
(** 2 compares + 2 branches + subtract + indirect jump, plus the
    machine's indirect-jump penalty. *)

val decide :
  machine:Sim.Cycle_model.params ->
  total:int ->
  reorder_cost:int ->
  plan ->
  bool
(** True when the coalesced form's scaled cost beats [reorder_cost]
    (a {!Select.choice}'s [est_cost], already scaled by [total]). *)

val apply : Mir.Func.t -> Detect.t -> plan -> unit
(** Rewrites the sequence head into the bounds-checked indirect jump.
    The original condition blocks die by unreachability as in the
    reordering transformation. *)
