(** Range conditions (paper Definition 2 and Table 1).

    A range condition tests whether the branch variable lies in a range:

    - Form 1, [v = c]: one branch ([cmp v,c; be]);
    - Form 2, [v <= c] (range [MIN..c]): one branch;
    - Form 3, [v >= c] (range [c..MAX]): one branch;
    - Form 4, [c1 <= v <= c2]: two compare/branch pairs.

    [emit] produces the replica blocks used by the transformation
    (Section 8); for Form 4 the caller chooses which bound is tested first
    (the Section 7 improvement). *)

type form =
  | Form_single of int       (** [v = c] *)
  | Form_below of int        (** [v <= c] *)
  | Form_above of int        (** [v >= c] *)
  | Form_bounded of int * int

val form : Range.t -> form

val cost : Range.t -> int
(** Estimated instructions to test the range: comparisons plus branches
    (Definition 10; 2 for single-branch forms, 4 for Form 4). *)

val branch_count : Range.t -> int

type emitted = {
  entry_label : string;     (** label of the first block of the test *)
  blocks : Mir.Block.t list;
}

val emit :
  Mir.Func.t ->
  var:Mir.Reg.t ->
  range:Range.t ->
  exit_to:string ->
  fall_to:string ->
  lower_first:bool ->
  emitted
(** Fresh blocks implementing "if [var] in [range] goto [exit_to] else
    goto [fall_to]".  [lower_first] selects the bound tested first for
    Form 4 (ignored otherwise). *)
