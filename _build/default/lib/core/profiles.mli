(** Profiling support for reorderable sequences (Section 5).

    All instrumentation for a sequence lives at its head: one
    {!Mir.Insn.Profile_range} pseudo instruction placed just before the
    head's compare records which range — explicit or default — the branch
    variable falls in each time the sequence is entered from the top.
    The pseudo instruction is free in the simulator and removed by
    {!strip} before any measurement run. *)

type counts_view = {
  item_counts : int array;          (** per explicit item, original order *)
  default_counts : (Range.t * int) list;  (** per default range, by lo *)
  total : int;                      (** executions of the sequence head *)
}

val instrument : Mir.Program.t -> Detect.t list -> Sim.Profile.t
(** Registers every sequence's range table and inserts the profiling
    pseudo instruction at each head.  The program is modified in place. *)

val counts : Sim.Profile.t -> Detect.t -> counts_view
(** Read back training counts after a profiling run. *)

val strip : Mir.Program.t -> unit
(** Remove all profiling pseudo instructions. *)

val select_input : Detect.t -> counts_view -> Select.input_item list
(** Assemble the selection problem: explicit items carry payloads
    [0 .. n-1] (their original 0-based position); default ranges carry
    payloads [n, n+1, ...] and target the sequence's default label.
    Costs come from {!Range_cond.cost}. *)
