type input_item = {
  in_range : Range.t;
  in_target : string;
  in_cost : int;
  in_count : int;
  in_payload : int;
}

type choice = {
  ordered : input_item list;
  eliminated : input_item list;
  default_target : string;
  est_cost : int;
}

(* descending p/c, deterministic tie-break on payload (original order) *)
let sort_by_ratio items =
  List.stable_sort
    (fun a b ->
      match Cost.compare_ratio (a.in_count, a.in_cost) (b.in_count, b.in_cost) with
      | 0 -> Int.compare a.in_payload b.in_payload
      | c -> c)
    items

let choice_cost ~total ordered eliminated =
  let explicit = List.map (fun it -> (it.in_count, it.in_cost)) ordered in
  ignore eliminated;
  Cost.sequence_cost ~total ~explicit

let unique_targets items =
  List.fold_left
    (fun acc it ->
      if List.exists (String.equal it.in_target) acc then acc
      else acc @ [ it.in_target ])
    [] items

let payload_mem it set = List.exists (fun e -> e.in_payload = it.in_payload) set

let make_choice ~total sorted eliminated target =
  let ordered = List.filter (fun it -> not (payload_mem it eliminated)) sorted in
  {
    ordered;
    eliminated;
    default_target = target;
    est_cost = choice_cost ~total ordered eliminated;
  }

let best_of candidates =
  List.fold_left
    (fun best c ->
      match best with
      | None -> Some c
      | Some b -> if c.est_cost < b.est_cost then Some c else Some b)
    None candidates

(* The Figure 8 algorithm.  For fidelity we also compute the incremental
   Equation 4 cost and assert it against the direct evaluation. *)
let greedy ?(compatible = fun _ -> true) ~total items =
  match items with
  | [] -> None
  | _ ->
    let sorted = sort_by_ratio items in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let counts_costs = Array.map (fun it -> (it.in_count, it.in_cost)) arr in
    let explicit_all =
      Cost.explicit_cost (Array.to_list counts_costs)
    in
    (* tcost.(i) = c_(i+1) + ... + c_n ; tprob.(i) = p_i + ... + p_n *)
    let tcost = Array.make n 0 and tprob = Array.make n 0 in
    for i = n - 2 downto 0 do
      tcost.(i) <- snd counts_costs.(i + 1) + tcost.(i + 1)
    done;
    tprob.(n - 1) <- fst counts_costs.(n - 1);
    for i = n - 2 downto 0 do
      tprob.(i) <- fst counts_costs.(i) + tprob.(i + 1)
    done;
    (* Equation 4 assumes every execution is covered by some item
       (sum of counts = total); when tests feed synthetic counts the
       uncovered mass also saves the eliminated test's cost *)
    let uncounted =
      total - Array.fold_left (fun acc (c, _) -> acc + c) 0 counts_costs
    in
    let explicit_all =
      explicit_all
      + (uncounted * Array.fold_left (fun acc (_, c) -> acc + c) 0 counts_costs)
    in
    let candidates = ref [] in
    List.iter
      (fun target ->
        (* this target's items, from lowest to highest p/c, i.e. walking
           the sorted order backwards *)
        let positions = ref [] in
        Array.iteri
          (fun i it -> if String.equal it.in_target target then
              positions := i :: !positions)
          arr;
        let cost = ref explicit_all in
        let elim_cost = ref 0 in
        let elim_set = ref [] in
        List.iter
          (fun i ->
            cost :=
              !cost
              + Cost.eliminate_delta ~items:counts_costs ~tcost ~tprob
                  ~elim_cost:!elim_cost i
              - (snd counts_costs.(i) * uncounted);
            elim_cost := !elim_cost + snd counts_costs.(i);
            elim_set := arr.(i) :: !elim_set;
            if compatible !elim_set then begin
              let c = make_choice ~total sorted !elim_set target in
              (* cross-check Equation 4 against the direct evaluation *)
              assert (c.est_cost = !cost);
              candidates := c :: !candidates
            end)
          !positions)
      (unique_targets sorted);
    best_of (List.rev !candidates)

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let subs = subsets rest in
    subs @ List.map (fun s -> x :: s) subs

let exhaustive ?(compatible = fun _ -> true) ?(max_items = 16) ~total items =
  if List.length items > max_items then
    invalid_arg "Select.exhaustive: too many items";
  match items with
  | [] -> None
  | _ ->
    let sorted = sort_by_ratio items in
    let candidates = ref [] in
    List.iter
      (fun target ->
        let mine = List.filter (fun it -> String.equal it.in_target target) sorted in
        List.iter
          (fun subset ->
            if subset <> [] && compatible subset then
              candidates := make_choice ~total sorted subset target :: !candidates)
          (subsets mine))
      (unique_targets sorted);
    best_of (List.rev !candidates)

let rec permutations = function
  | [] -> [ [] ]
  | items ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y.in_payload <> x.in_payload) items in
        List.map (fun p -> x :: p) (permutations rest))
      items

let brute_force ?(compatible = fun _ -> true) ?(max_items = 7) ~total items =
  if List.length items > max_items then
    invalid_arg "Select.brute_force: too many items";
  match items with
  | [] -> None
  | _ ->
    let candidates = ref [] in
    List.iter
      (fun target ->
        let mine = List.filter (fun it -> String.equal it.in_target target) items in
        List.iter
          (fun subset ->
            if subset <> [] && compatible subset then
              let rest =
                List.filter (fun it -> not (payload_mem it subset)) items
              in
              List.iter
                (fun perm ->
                  candidates :=
                    {
                      ordered = perm;
                      eliminated = subset;
                      default_target = target;
                      est_cost = choice_cost ~total perm subset;
                    }
                    :: !candidates)
                (permutations rest))
          (subsets mine))
      (unique_targets items);
    best_of (List.rev !candidates)
