(** The paper's cost model (Section 6, Equations 1, 2 and 4).

    Probabilities are represented by raw profile counts; all costs are in
    integer units of "instructions x executions" (multiplying Equation 1
    through by the total execution count), which keeps the arithmetic
    exact and the comparisons deterministic. *)

val explicit_cost : (int * int) list -> int
(** [explicit_cost [(count_1, c_1); ...]] is Equation 1 scaled by the
    total count: [sum_i count_i * (c_1 + ... + c_i)]. *)

val sequence_cost :
  total:int -> explicit:(int * int) list -> int
(** Equation 2 scaled by the total count: the explicit cost plus
    [(total - sum_i count_i) * (c_1 + ... + c_n)] for the executions that
    exit through the untested default ranges. *)

val eliminate_delta :
  items:(int * int) array -> tcost:int array -> tprob:int array ->
  elim_cost:int -> int -> int
(** The Equation 4 increment used by the Figure 8 algorithm:
    [eliminate_delta ~items ~tcost ~tprob ~elim_cost i] is the change in
    sequence cost from additionally not testing item [i], where
    [tcost.(i) = c_(i+1) + ... + c_n], [tprob.(i) = count_i + ... +
    count_n], and [elim_cost] is the summed cost of items of the same
    target already eliminated at positions after [i]. *)

val compare_ratio : (int * int) -> (int * int) -> int
(** [compare_ratio (count_a, cost_a) (count_b, cost_b)] orders by
    descending probability/cost ratio (Theorem 3) without division:
    negative when [a] must come first. *)
