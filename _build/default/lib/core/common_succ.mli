(** Reordering sequences of branches with a common successor
    (paper Section 10, Figure 14 — described there as future work).

    A run is a chain of blocks [B1; ...; Bk], each containing exactly one
    compare (of any registers, not necessarily a common variable) and a
    conditional branch with one edge to a shared block CS and the other
    edge to the next block in the chain; the last block's other edge goes
    to F.  Such a run computes a short-circuit disjunction: control
    reaches CS iff some condition holds, F otherwise, and because the
    bodies are pure compares, any permutation is semantically equivalent.

    Profiling records the full outcome combination vector (one counter per
    2^k mask, as the paper prescribes, k <= 7); the expected-cost-optimal
    permutation is found exhaustively and the blocks' contents are
    permuted in place.  Unlike range conditions, outcomes are not
    mutually exclusive, so per-branch probabilities are insufficient and
    the combination counts are what the cost function integrates over. *)

type run = {
  cs_id : int;
  cs_func : string;
  labels : string list;        (** chain blocks in original order *)
  common_succ : string;
  final_fail : string;         (** where the last block's other edge goes *)
  conds : (Mir.Cond.t * Mir.Operand.t * Mir.Operand.t) array;
      (** normalised so condition true = branch to [common_succ] *)
  costs : int array;           (** instructions per block (compare + branch) *)
}

val max_run_length : int
(** 7, as the paper suggests for the combination-counter table. *)

val find_func :
  ?exclude:(string -> bool) -> next_id:int ref -> Mir.Func.t -> run list

val find_program :
  ?exclude:(string -> bool) -> ?first_id:int -> Mir.Program.t -> run list

val instrument : Mir.Program.t -> run list -> Sim.Profile.t -> unit
(** Registers combination tables in the given profile store and inserts
    {!Mir.Insn.Profile_comb} at each run's head. *)

val best_permutation : counts:int array -> costs:int array -> int array
(** Expected-cost-minimising order (indices into the original run). *)

val expected_cost : counts:int array -> costs:int array -> int array -> int
(** Scaled expected cost of executing the run in the given order:
    sum over masks of count(mask) x instructions until the first
    satisfied condition (or all, when none holds). *)

type outcome =
  | Reordered of int array  (** the permutation applied *)
  | Unchanged of string

(** {2 Sequences as super-branches (Figure 14(d)-(e))}

    Two adjacent runs form a {i pair} when the first run's common
    successor is the second run's head (an [||] of two [&&] groups
    lowers to exactly this), both runs continue to the same block when
    no condition escapes, and the second run is entered only from the
    first.  Viewing each run as a single branch, the pair may be
    swapped — the escape disjunction is commutative — and a joint
    2^(n1+n2) combination profile decides whether testing the second
    group first is cheaper. *)

type pair = {
  pr_id : int;
  pr_first : run;
  pr_second : run;
}

val find_pairs : Mir.Program.t -> run list -> first_id:int -> pair list

val instrument_pairs : Mir.Program.t -> pair list -> Sim.Profile.t -> unit
(** Registers the joint combination table and inserts one
    {!Mir.Insn.Profile_comb} at the first run's head. *)

val pair_cost : counts:int array -> first:run -> second:run -> swapped:bool -> int
(** Scaled expected instructions to execute the two groups in the given
    order, integrating over the joint outcome masks (bit i = condition i
    of [first.conds @ second.conds] holds). *)

val apply_pair : Mir.Program.t -> Sim.Profile.t -> pair -> outcome
(** Swaps the groups in place (edge relinking only) when the joint
    profile says the second group should run first.  Returns
    [Reordered [|1; 0|]] on a swap. *)

val apply : Mir.Program.t -> Sim.Profile.t -> run -> outcome
(** Permutes the run's blocks in place when the best order differs from
    the original.  Requires every non-head block to have a single
    predecessor (checked; otherwise skipped). *)

val pp_run : Format.formatter -> run -> unit
