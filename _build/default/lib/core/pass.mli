(** The complete branch-reordering pass.

    Orchestrates, for every detected sequence: reading back training
    counts, assembling the selection problem (explicit plus default
    ranges), choosing the cheapest ordering, and applying the
    transformation when it changes anything.  Matches the paper's
    pipeline (Figure 2): the caller profiles an instrumented clone first
    and passes the filled table here. *)

type outcome =
  | Reordered of Apply.applied
  | Coalesced of Coalesce.plan
      (** replaced by an indirect jump instead (profile-guided decision
          against the configured machine's cost model, the paper's
          Section 9 suggestion) *)
  | Unchanged of string  (** reason: never executed, already optimal, ... *)

type seq_report = {
  sr_seq : Detect.t;
  sr_total : int;                 (** training executions of the head *)
  sr_choice : Select.choice option;
  sr_outcome : outcome;
  sr_orig_branches : int;         (** branches in the original sequence *)
  sr_final_branches : int;        (** after reordering (= original when unchanged) *)
}

type report = { seq_reports : seq_report list }

val reordered_count : report -> int
val coalesced_count : report -> int
val detected_count : report -> int

val run :
  ?options:Apply.options ->
  ?selector:[ `Greedy | `Exhaustive ] ->
  ?keep_original_default:bool ->
  ?coalesce_machine:Sim.Cycle_model.params ->
  ?coalesce_max_span:int ->
  Mir.Program.t ->
  Detect.t list ->
  Sim.Profile.t ->
  report
(** Transforms [program] in place (clone it first if the original is
    needed).  Sequences whose best ordering equals the original, or that
    were never executed in training, are left untouched.  The caller
    should run {!Mopt.Cleanup} afterwards, as the paper reinvokes its
    cleanup optimizations. *)

val pp_report : Format.formatter -> report -> unit
