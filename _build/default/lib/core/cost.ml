let explicit_cost items =
  let _, total =
    List.fold_left
      (fun (prefix, acc) (count, cost) ->
        let prefix = prefix + cost in
        (prefix, acc + (count * prefix)))
      (0, 0) items
  in
  total

let sequence_cost ~total ~explicit =
  let counted = List.fold_left (fun acc (count, _) -> acc + count) 0 explicit in
  let all_costs = List.fold_left (fun acc (_, cost) -> acc + cost) 0 explicit in
  explicit_cost explicit + ((total - counted) * all_costs)

let eliminate_delta ~items ~tcost ~tprob ~elim_cost i =
  let count_i, cost_i = items.(i) in
  (count_i * (tcost.(i) - elim_cost)) - (cost_i * tprob.(i))

let compare_ratio (count_a, cost_a) (count_b, cost_b) =
  (* a/ca >= b/cb  <=>  a*cb >= b*ca (costs are positive) *)
  Int.compare (count_b * cost_a) (count_a * cost_b)
