type t = {
  total_seqs : int;
  reordered_seqs : int;
  orig_branch_lengths : int list;
  final_branch_lengths : int list;
  avg_len_before : float;
  avg_len_after : float;
}

let average = function
  | [] -> 0.0
  | xs -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let of_lengths ~total_seqs ~orig ~final =
  {
    total_seqs;
    reordered_seqs = List.length orig;
    orig_branch_lengths = orig;
    final_branch_lengths = final;
    avg_len_before = average orig;
    avg_len_after = average final;
  }

let of_report (r : Pass.report) =
  let reordered =
    List.filter
      (fun sr ->
        match sr.Pass.sr_outcome with
        | Pass.Reordered _ -> true
        | Pass.Coalesced _ | Pass.Unchanged _ -> false)
      r.Pass.seq_reports
  in
  of_lengths
    ~total_seqs:(List.length r.Pass.seq_reports)
    ~orig:(List.map (fun sr -> sr.Pass.sr_orig_branches) reordered)
    ~final:(List.map (fun sr -> sr.Pass.sr_final_branches) reordered)

let merge a b =
  of_lengths
    ~total_seqs:(a.total_seqs + b.total_seqs)
    ~orig:(a.orig_branch_lengths @ b.orig_branch_lengths)
    ~final:(a.final_branch_lengths @ b.final_branch_lengths)

let histogram lengths =
  let table = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace table l (1 + Option.value ~default:0 (Hashtbl.find_opt table l)))
    lengths;
  Hashtbl.fold (fun len count acc -> (len, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pp ppf t =
  Format.fprintf ppf
    "sequences: %d detected, %d reordered; avg length %.2f -> %.2f"
    t.total_seqs t.reordered_seqs t.avg_len_before t.avg_len_after
