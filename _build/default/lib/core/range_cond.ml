type form =
  | Form_single of int
  | Form_below of int
  | Form_above of int
  | Form_bounded of int * int

let form r =
  let lo = Range.lo r and hi = Range.hi r in
  if lo = hi then Form_single lo
  else if lo = Range.min_value && hi = Range.max_value then
    invalid_arg "Range_cond.form: full range is not a testable condition"
  else if lo = Range.min_value then Form_below hi
  else if hi = Range.max_value then Form_above lo
  else Form_bounded (lo, hi)

let cost r =
  match form r with
  | Form_single _ | Form_below _ | Form_above _ -> 2
  | Form_bounded _ -> 4

let branch_count r =
  match form r with
  | Form_single _ | Form_below _ | Form_above _ -> 1
  | Form_bounded _ -> 2

type emitted = {
  entry_label : string;
  blocks : Mir.Block.t list;
}

let rop r = Mir.Operand.Reg r
let imm n = Mir.Operand.Imm n

let one_block fn ~var ~const ~cond ~exit_to ~fall_to =
  let label = Mir.Func.fresh_label fn in
  let block =
    Mir.Block.make ~label
      [ Mir.Insn.Cmp (rop var, imm const) ]
      (Mir.Block.Br (cond, exit_to, fall_to))
  in
  { entry_label = label; blocks = [ block ] }

let emit fn ~var ~range ~exit_to ~fall_to ~lower_first =
  match form range with
  | Form_single c ->
    one_block fn ~var ~const:c ~cond:Mir.Cond.Eq ~exit_to ~fall_to
  | Form_below c ->
    one_block fn ~var ~const:c ~cond:Mir.Cond.Le ~exit_to ~fall_to
  | Form_above c ->
    one_block fn ~var ~const:c ~cond:Mir.Cond.Ge ~exit_to ~fall_to
  | Form_bounded (c1, c2) ->
    let l1 = Mir.Func.fresh_label fn in
    let l2 = Mir.Func.fresh_label fn in
    let b1, b2 =
      if lower_first then
        (* test v < c1 (out of range) first, then v <= c2 *)
        ( Mir.Block.make ~label:l1
            [ Mir.Insn.Cmp (rop var, imm c1) ]
            (Mir.Block.Br (Mir.Cond.Lt, fall_to, l2)),
          Mir.Block.make ~label:l2
            [ Mir.Insn.Cmp (rop var, imm c2) ]
            (Mir.Block.Br (Mir.Cond.Le, exit_to, fall_to)) )
      else
        (* test v > c2 first, then v >= c1 *)
        ( Mir.Block.make ~label:l1
            [ Mir.Insn.Cmp (rop var, imm c2) ]
            (Mir.Block.Br (Mir.Cond.Gt, fall_to, l2)),
          Mir.Block.make ~label:l2
            [ Mir.Insn.Cmp (rop var, imm c1) ]
            (Mir.Block.Br (Mir.Cond.Ge, exit_to, fall_to)) )
    in
    { entry_label = l1; blocks = [ b1; b2 ] }
