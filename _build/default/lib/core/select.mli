(** Choosing the best ordering of a sequence (Section 6, Figure 8).

    The input is the full set of ranges associated with a sequence —
    every explicit range condition plus every computed default range,
    each with its exit target, estimated cost and training count.  The
    output is an ordered list of ranges to test explicitly, sorted by
    descending probability/cost (optimal by Theorem 3), plus a nonempty
    set of ranges of one target left untested, whose target becomes the
    reordered sequence's default.

    [greedy] follows Figure 8: for each candidate default target it
    considers only the elimination prefixes in ascending p/c order
    (m combinations instead of 2^m - 1).  [exhaustive] tries every
    nonempty subset of every target (still ordering the remaining tests
    by p/c, which is optimal for a fixed eliminated set).  [brute_force]
    additionally tries every permutation and is only for validating
    Theorem 3 in tests. *)

type input_item = {
  in_range : Range.t;
  in_target : string;
  in_cost : int;   (** estimated instructions (Definition 10) *)
  in_count : int;  (** training executions exiting through this range *)
  in_payload : int; (** caller's index, carried through *)
}

type choice = {
  ordered : input_item list;     (** explicit tests, in execution order *)
  eliminated : input_item list;  (** untested ranges (all share a target) *)
  default_target : string;
  est_cost : int;                (** scaled Equation 2 cost of the choice *)
}

val choice_cost : total:int -> input_item list -> input_item list -> int
(** [choice_cost ~total ordered eliminated] evaluates a configuration
    directly (used to cross-check the incremental Equation 4 path). *)

val greedy :
  ?compatible:(input_item list -> bool) ->
  total:int ->
  input_item list ->
  choice option
(** [None] when no candidate elimination set satisfies [compatible]
    (which restricts eliminations when intervening side effects make
    mixed original positions unsound to merge on one default edge). *)

val exhaustive :
  ?compatible:(input_item list -> bool) ->
  ?max_items:int ->
  total:int ->
  input_item list ->
  choice option
(** Raises [Invalid_argument] beyond [max_items] (default 16) items. *)

val brute_force :
  ?compatible:(input_item list -> bool) ->
  ?max_items:int ->
  total:int ->
  input_item list ->
  choice option
(** All permutations times all eliminations; [max_items] defaults to 7. *)
