(* pr: prepares files for printing — a page header every 56 lines with a
   page number and a rule, numbered lines, tab expansion to 8-column
   stops, control characters shown as '?' (pr -v style), and trailing
   blank lines to pad the final page. *)

let source =
  {|
int lineno;
int pageno;

void rule_line() {
  int k = 0;
  while (k < 24) {
    putchar('=');
    k++;
  }
  putchar('\n');
}

void header() {
  pageno++;
  rule_line();
  putchar('P');
  putchar('a');
  putchar('g');
  putchar('e');
  putchar(' ');
  print_num(pageno);
  putchar('\n');
  rule_line();
}

int main() {
  int c;
  int col = 0;
  int at_bol = 1;
  lineno = 0;
  pageno = 0;
  c = getchar();
  while (c != EOF) {
    if (at_bol == 1) {
      if (lineno % 56 == 0)
        header();
      lineno++;
      /* right-align the line number in 5 columns */
      int w = 1;
      int n = lineno;
      while (n >= 10) {
        w++;
        n = n / 10;
      }
      while (w < 5) {
        putchar(' ');
        w++;
      }
      print_num(lineno);
      putchar(' ');
      at_bol = 0;
      col = 0;
    }
    if (c == '\t') {
      putchar(' ');
      col++;
      while (col % 8 != 0) {
        putchar(' ');
        col++;
      }
    } else if (c == '\n') {
      putchar('\n');
      at_bol = 1;
    } else if (c < 32) {
      /* nonprinting: show a placeholder */
      putchar('?');
      col++;
    } else {
      putchar(c);
      col++;
    }
    c = getchar();
  }
  if (at_bol == 0)
    putchar('\n');
  /* pad the last page */
  while (lineno % 56 != 0) {
    putchar('\n');
    lineno++;
  }
  print_num(lineno);
  putchar(' ');
  print_num(pageno);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"pr" ~description:"Prepares File(s) for Printing" ~source
    ~training_input:(lazy (Textgen.prose ~seed:1414 ~chars:75_000))
    ~test_input:(lazy (Textgen.prose ~seed:1515 ~chars:110_000))
