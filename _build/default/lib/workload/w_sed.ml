(* sed: stream editor running the script
     /#/d ; s/ta/TA/ ; y/xyz/XYZ/ ; /etaoin/p
   — delete lines starting with '#', substitute the first "ta",
   transliterate x/y/z, and double-print lines containing "etaoin".
   The transliteration's per-character dispatch is a dense switch, which
   separates the heuristic sets (indirect for Set I, binary for Set II,
   linear for Set III), and the pattern scans are equality chains. *)

let source =
  {|
int line[600];
int deleted;
int substituted;
int printed_twice;

/* y/xyz/XYZ/ plus a few control folds: a dense switch over a small
   character neighbourhood */
int transliterate(int c) {
  switch (c) {
  case 'x': return 'X';
  case 'y': return 'Y';
  case 'z': return 'Z';
  case 'u': return 'u';
  case 'v': return 'v';
  case 'w': return 'w';
  case 't': return 't';
  case 's': return 's';
  case 'r': return 'r';
  case 'q': return 'q';
  case 'p': return 'p';
  default: return c;
  }
}

/* does the line contain "etaoin"? (the etaoin-p address) */
int matches_address(int len) {
  int i = 0;
  while (i + 5 < len) {
    if (line[i] == 'e' && line[i + 1] == 't' && line[i + 2] == 'a'
        && line[i + 3] == 'o' && line[i + 4] == 'i' && line[i + 5] == 'n')
      return 1;
    i++;
  }
  return 0;
}

void output_with_subst(int len) {
  int i = 0;
  int done_subst = 0;
  while (i < len) {
    if (done_subst == 0 && i + 1 < len && line[i] == 't' && line[i + 1] == 'a') {
      putchar('T');
      putchar('A');
      i = i + 2;
      done_subst = 1;
      substituted++;
    } else {
      putchar(transliterate(line[i]));
      i++;
    }
  }
  putchar('\n');
}

int main() {
  int c;
  int len = 0;
  deleted = 0;
  substituted = 0;
  printed_twice = 0;
  while (1) {
    c = getchar();
    if (c == '\n' || c == EOF) {
      if (len > 0 && line[0] == '#')
        deleted++;
      else if (len > 0 || c == '\n') {
        output_with_subst(len);
        if (matches_address(len) == 1) {
          printed_twice++;
          output_with_subst(len);
        }
      }
      len = 0;
      if (c == EOF)
        break;
    } else if (len < 599) {
      line[len] = c;
      len++;
    }
  }
  print_num(deleted);
  putchar(' ');
  print_num(substituted);
  putchar(' ');
  print_num(printed_twice);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"sed" ~description:"Stream Editor" ~source
    ~training_input:(lazy (Textgen.mixed_lines ~seed:2121 ~lines:2_800))
    ~test_input:(lazy (Textgen.mixed_lines ~seed:2222 ~lines:4_200))
