(** Deterministic synthetic inputs for the workload programs.

    The paper trained and tested on different real inputs; we use a
    seeded linear-congruential generator with English-like character
    frequencies so that training and test inputs differ (different seeds
    and sizes) but share the distribution that makes branch profiles
    transfer — the property the transformation relies on (Section 5,
    citing [FiF92]). *)

type rng

val rng : int -> rng
val next : rng -> int -> int
(** [next r n] is uniform in [0, n). *)

val prose : seed:int -> chars:int -> string
(** English-like words, spaces, punctuation, newlines. *)

val code : seed:int -> chars:int -> string
(** C-like source text: identifiers, numbers, operators, braces,
    comments, string literals, preprocessor lines. *)

val numbers : seed:int -> lines:int -> fields:int -> string
(** Lines of space-separated decimal numbers. *)

val records : seed:int -> lines:int -> string
(** Sorted-key records: "key value" lines with ascending keys, for
    join-style workloads. *)

val mixed_lines : seed:int -> lines:int -> string
(** Short lines of prose, some empty, some starting with '.' or '#'
    (troff/preprocessor directives). *)
