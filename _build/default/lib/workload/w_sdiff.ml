(* sdiff: displays two texts side by side.  The input carries both
   halves separated by a '\001' byte: the first half is buffered, then
   the second is compared line against line, emitting <, > or = gutters.
   The per-character line comparison is the hot loop. *)

let source =
  {|
int buf[90000];
int buflen;

int main() {
  int c;
  int i;
  int same = 0;
  int differ = 0;
  buflen = 0;
  /* slurp the first half */
  c = getchar();
  while (c != EOF && c != 1) {
    if (buflen < 89999) {
      buf[buflen] = c;
      buflen++;
    }
    c = getchar();
  }
  buf[buflen] = EOF;
  if (c == 1)
    c = getchar();
  /* walk both halves line by line */
  i = 0;
  while (c != EOF || buf[i] != EOF) {
    int equal = 1;
    int j = i;
    /* compare one line from each half */
    while (buf[j] != EOF && buf[j] != '\n' && c != EOF && c != '\n') {
      if (buf[j] != c)
        equal = 0;
      j++;
      c = getchar();
    }
    if ((buf[j] == '\n' || buf[j] == EOF) && (c == '\n' || c == EOF)) {
      /* both ended */
    } else {
      equal = 0;
      while (buf[j] != EOF && buf[j] != '\n')
        j++;
      while (c != EOF && c != '\n')
        c = getchar();
    }
    if (equal == 1) {
      same++;
      putchar('=');
    } else {
      differ++;
      putchar('|');
    }
    if (buf[j] == '\n')
      j++;
    if (c == '\n')
      c = getchar();
    i = j;
  }
  putchar('\n');
  print_num(same);
  putchar(' ');
  print_num(differ);
  putchar('\n');
  return 0;
}
|}

let halves seed1 seed2 lines =
  lazy
    (let a = Textgen.mixed_lines ~seed:seed1 ~lines in
     let b = Textgen.mixed_lines ~seed:seed2 ~lines in
     (* make the halves partially equal so both gutters are exercised *)
     let b =
       String.mapi
         (fun i ch -> if i < String.length b / 2 && i < String.length a
                      then a.[i] else ch)
         b
     in
     a ^ "\001" ^ b)

let spec =
  Spec.make ~name:"sdiff" ~description:"Displays Files Side-by-Side" ~source
    ~training_input:(halves 1818 1819 900)
    ~test_input:(halves 1920 1921 1_400)
