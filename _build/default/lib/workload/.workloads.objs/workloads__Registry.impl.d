lib/workload/registry.ml: List Spec String W_awk W_cb W_cpp W_ctags W_deroff W_grep W_hyphen W_join W_lex W_nroff W_pr W_ptx W_sdiff W_sed W_sort W_wc W_yacc
