lib/workload/w_grep.ml: Spec Textgen
