lib/workload/w_ptx.ml: Spec Textgen
