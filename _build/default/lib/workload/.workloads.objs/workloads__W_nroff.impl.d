lib/workload/w_nroff.ml: Spec Textgen
