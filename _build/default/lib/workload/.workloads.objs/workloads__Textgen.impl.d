lib/workload/textgen.ml: Buffer Char Int64 String
