lib/workload/w_sed.ml: Spec Textgen
