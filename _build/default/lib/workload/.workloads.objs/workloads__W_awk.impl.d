lib/workload/w_awk.ml: Spec Textgen
