lib/workload/w_sort.ml: Spec Textgen
