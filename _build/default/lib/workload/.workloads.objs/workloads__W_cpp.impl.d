lib/workload/w_cpp.ml: Spec Textgen
