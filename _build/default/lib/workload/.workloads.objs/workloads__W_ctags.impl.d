lib/workload/w_ctags.ml: Spec Textgen
