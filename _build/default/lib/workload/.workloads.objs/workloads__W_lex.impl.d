lib/workload/w_lex.ml: Spec Textgen
