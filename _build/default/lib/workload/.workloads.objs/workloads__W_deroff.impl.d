lib/workload/w_deroff.ml: Spec Textgen
