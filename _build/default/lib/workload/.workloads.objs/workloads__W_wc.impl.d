lib/workload/w_wc.ml: Spec Textgen
