lib/workload/w_pr.ml: Spec Textgen
