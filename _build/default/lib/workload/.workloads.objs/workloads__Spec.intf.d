lib/workload/spec.mli: Lazy
