lib/workload/w_yacc.ml: Buffer Spec Textgen
