lib/workload/w_hyphen.ml: Spec Textgen
