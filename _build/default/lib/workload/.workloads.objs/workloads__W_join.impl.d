lib/workload/w_join.ml: List Printf Spec String Textgen
