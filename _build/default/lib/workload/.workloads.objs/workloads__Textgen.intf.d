lib/workload/textgen.mli:
