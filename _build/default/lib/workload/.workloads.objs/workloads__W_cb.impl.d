lib/workload/w_cb.ml: Spec Textgen
