lib/workload/w_sdiff.ml: Spec String Textgen
