lib/workload/spec.ml: Lazy
