type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed * 2654435761 + 12345) }

let next r n =
  (* 64-bit LCG (Knuth MMIX constants), high bits for quality *)
  r.state <-
    Int64.add (Int64.mul r.state 6364136223846793005L) 1442695040888963407L;
  let hi = Int64.to_int (Int64.shift_right_logical r.state 33) in
  hi mod n

(* letters weighted roughly by English frequency *)
let letter_pool = "etaoinshrdlcumwfgypbvkjxqzetaoinshrdlcetaoinshr"

let letter r = letter_pool.[next r (String.length letter_pool)]

let word r buf =
  let len = 1 + next r 9 in
  for _ = 1 to len do
    Buffer.add_char buf (letter r)
  done

let prose ~seed ~chars =
  let r = rng seed in
  let buf = Buffer.create chars in
  let col = ref 0 in
  while Buffer.length buf < chars do
    let start = Buffer.length buf in
    word r buf;
    (match next r 20 with
    | 0 -> Buffer.add_string buf ". "
    | 1 -> Buffer.add_string buf ", "
    | 2 when next r 3 = 0 -> Buffer.add_string buf "-"
    | _ -> Buffer.add_char buf ' ');
    col := !col + (Buffer.length buf - start);
    if !col > 60 + next r 15 then begin
      Buffer.add_char buf '\n';
      col := 0;
      if next r 25 = 0 then Buffer.add_char buf '\n'
    end
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let ident r buf =
  Buffer.add_char buf (Char.chr (Char.code 'a' + next r 26));
  for _ = 1 to next r 7 do
    let c =
      match next r 12 with
      | 0 -> '_'
      | 1 | 2 -> Char.chr (Char.code '0' + next r 10)
      | _ -> Char.chr (Char.code 'a' + next r 26)
    in
    Buffer.add_char buf c
  done

let code ~seed ~chars =
  let r = rng seed in
  let buf = Buffer.create chars in
  let depth = ref 0 in
  let indent () =
    for _ = 1 to !depth do
      Buffer.add_string buf "  "
    done
  in
  while Buffer.length buf < chars do
    match next r 24 with
    | 0 ->
      Buffer.add_string buf "#define ";
      ident r buf;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (next r 1000));
      Buffer.add_char buf '\n'
    | 1 ->
      Buffer.add_string buf "/* ";
      word r buf;
      Buffer.add_char buf ' ';
      word r buf;
      Buffer.add_string buf " */\n"
    | 2 ->
      indent ();
      Buffer.add_string buf "if (";
      ident r buf;
      Buffer.add_string buf (if next r 2 = 0 then " == " else " < ");
      Buffer.add_string buf (string_of_int (next r 100));
      Buffer.add_string buf ") {\n";
      incr depth
    | 3 when !depth > 0 ->
      decr depth;
      indent ();
      Buffer.add_string buf "}\n"
    | 4 ->
      indent ();
      ident r buf;
      Buffer.add_string buf " = \"";
      word r buf;
      Buffer.add_string buf "\";\n"
    | 5 ->
      Buffer.add_string buf "// ";
      word r buf;
      Buffer.add_char buf '\n'
    | _ ->
      indent ();
      ident r buf;
      Buffer.add_string buf " = ";
      (match next r 3 with
      | 0 -> Buffer.add_string buf (string_of_int (next r 10000))
      | 1 ->
        ident r buf;
        Buffer.add_string buf " + ";
        Buffer.add_string buf (string_of_int (next r 64))
      | _ ->
        ident r buf;
        Buffer.add_string buf " * ";
        ident r buf);
      Buffer.add_string buf ";\n"
  done;
  while !depth > 0 do
    decr depth;
    Buffer.add_string buf "}\n"
  done;
  Buffer.contents buf

let numbers ~seed ~lines ~fields =
  let r = rng seed in
  let buf = Buffer.create (lines * fields * 5) in
  for _ = 1 to lines do
    for f = 1 to fields do
      if f > 1 then Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (next r 99999))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let records ~seed ~lines =
  let r = rng seed in
  let buf = Buffer.create (lines * 12) in
  let key = ref 0 in
  for _ = 1 to lines do
    key := !key + 1 + next r 3;
    Buffer.add_string buf (string_of_int !key);
    Buffer.add_char buf ' ';
    word r buf;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let mixed_lines ~seed ~lines =
  let r = rng seed in
  let buf = Buffer.create (lines * 30) in
  for _ = 1 to lines do
    (match next r 12 with
    | 0 ->
      Buffer.add_char buf '.';
      Buffer.add_string buf (if next r 2 = 0 then "PP" else "SH");
      Buffer.add_char buf ' ';
      word r buf
    | 1 -> Buffer.add_char buf '#'
    | 2 -> () (* empty line *)
    | 3 ->
      (* formatter requests with arguments *)
      Buffer.add_char buf '.';
      Buffer.add_string buf
        (match next r 6 with
        | 0 -> "br"
        | 1 -> "ce"
        | 2 -> "sp 2"
        | 3 -> "in 4"
        | 4 -> "nf"
        | _ -> "fi")
    | _ ->
      let words = 2 + next r 8 in
      for w = 1 to words do
        if w > 1 then Buffer.add_char buf ' ';
        word r buf;
        if next r 12 = 0 then Buffer.add_char buf '\\'
      done);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
