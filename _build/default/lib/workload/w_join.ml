(* join: relational database operator.  "File 1" is a sorted key table
   compiled into the program (generated below); the input stream is
   "file 2" ("key value" lines with ascending keys).  Lines whose key
   appears in the table are joined and printed.  The per-line number
   parse and the binary search over the key table are branch-heavy. *)

let keys =
  (* deterministic sorted key table, distinct ascending *)
  let r = Textgen.rng 5150 in
  let rec go acc k n =
    if n = 0 then List.rev acc
    else
      let k = k + 1 + Textgen.next r 5 in
      go (k :: acc) k (n - 1)
  in
  go [] 0 400

let source =
  Printf.sprintf
    {|
int keys[] = {%s};
int nkeys = %d;

int lookup(int key) {
  int lo = 0;
  int hi = nkeys - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (keys[mid] == key)
      return mid;
    else if (keys[mid] < key)
      lo = mid + 1;
    else
      hi = mid - 1;
  }
  return -1;
}

int main() {
  int c;
  int joined = 0;
  c = getchar();
  while (c != EOF) {
    /* parse the leading decimal key */
    int key = 0;
    int saw_digit = 0;
    while (c >= '0' && c <= '9') {
      key = key * 10 + (c - '0');
      saw_digit = 1;
      c = getchar();
    }
    if (saw_digit == 1 && lookup(key) >= 0) {
      joined++;
      print_num(key);
      /* echo the rest of the line (the value field) */
      while (c != EOF && c != '\n') {
        putchar(c);
        c = getchar();
      }
      putchar('\n');
    } else {
      while (c != EOF && c != '\n')
        c = getchar();
    }
    if (c == '\n')
      c = getchar();
  }
  print_num(joined);
  putchar('\n');
  return 0;
}
|}
    (String.concat ", " (List.map string_of_int keys))
    (List.length keys)

let spec =
  Spec.make ~name:"join" ~description:"Relational Database Operator" ~source
    ~training_input:(lazy (Textgen.records ~seed:555 ~lines:4_000))
    ~test_input:(lazy (Textgen.records ~seed:666 ~lines:6_500))
