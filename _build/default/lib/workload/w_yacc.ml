(* yacc: the parser a parser generator emits — token codes driving a
   dense switch (16 contiguous codes, so Sets I and II both build a jump
   table while Set III searches linearly), plus a recursive-descent
   expression evaluator standing in for the LALR engine's reductions. *)

let source =
  {|
/* token codes 0..15 */
int tok;
int tokval;
int cur;
int tally[16];

/* the generated parser's action dispatch: a dense switch over the token
   code, which Sets I and II translate to a jump table */
void count_token() {
  switch (tok) {
  case 0: tally[0]++; break;
  case 1: tally[1]++; break;
  case 2: tally[2]++; break;
  case 3: tally[3]++; break;
  case 4: tally[4]++; break;
  case 5: tally[5]++; break;
  case 6: tally[6]++; break;
  case 7: tally[7]++; break;
  case 8: tally[8]++; break;
  case 9: tally[9]++; break;
  case 10: tally[10]++; break;
  case 11: tally[11]++; break;
  case 12: tally[12]++; break;
  case 13: tally[13]++; break;
  case 14: tally[14]++; break;
  case 15: tally[15]++; break;
  }
}

int next_char() {
  cur = getchar();
  return cur;
}

void advance() {
  while (cur == ' ' || cur == '\t')
    next_char();
  if (cur >= '0' && cur <= '9') {
    tokval = 0;
    while (cur >= '0' && cur <= '9') {
      tokval = tokval * 10 + (cur - '0');
      next_char();
    }
    tok = 1;
    count_token();
    return;
  }
  switch (cur) {
  case '+': tok = 2; break;
  case '-': tok = 3; break;
  case '*': tok = 4; break;
  case '/': tok = 5; break;
  case '(': tok = 6; break;
  case ')': tok = 7; break;
  case '\n': tok = 8; break;
  case '%': tok = 9; break;
  case '<': tok = 10; break;
  case '>': tok = 11; break;
  case '=': tok = 12; break;
  case ';': tok = 13; break;
  case ',': tok = 14; break;
  case '&': tok = 15; break;
  default:
    if (cur == EOF)
      tok = 0;
    else
      tok = 8;
  }
  if (tok != 0)
    next_char();
  count_token();
}

int parse_primary() {
  if (tok == 1) {
    int v = tokval;
    advance();
    return v;
  }
  if (tok == 6) {
    advance();
    int v = parse_expr();
    if (tok == 7)
      advance();
    return v;
  }
  /* error recovery: skip the token */
  if (tok != 0 && tok != 8)
    advance();
  return 0;
}

int parse_term() {
  int v = parse_primary();
  while (tok == 4 || tok == 5 || tok == 9) {
    int op = tok;
    advance();
    int rhs = parse_primary();
    if (op == 4)
      v = v * rhs;
    else if (rhs != 0) {
      if (op == 5)
        v = v / rhs;
      else
        v = v % rhs;
    }
  }
  return v;
}

int parse_expr() {
  int v = parse_term();
  while (tok == 2 || tok == 3) {
    int op = tok;
    advance();
    int rhs = parse_term();
    if (op == 2)
      v = v + rhs;
    else
      v = v - rhs;
  }
  return v;
}

int main() {
  int checksum = 0;
  int exprs = 0;
  next_char();
  advance();
  while (tok != 0) {
    if (tok == 8) {
      advance();
    } else {
      int v = parse_expr();
      checksum = checksum + (v % 9973);
      exprs++;
      while (tok != 8 && tok != 0)
        advance();
    }
  }
  print_num(exprs);
  putchar(' ');
  print_num(checksum);
  putchar(' ');
  print_num(tally[1] + tally[2] + tally[4]);
  putchar('\n');
  return 0;
}
|}

(* expression-shaped input *)
let exprs ~seed ~lines =
  let r = Textgen.rng seed in
  let buf = Buffer.create (lines * 20) in
  for _ = 1 to lines do
    let terms = 1 + Textgen.next r 5 in
    for t = 1 to terms do
      if t > 1 then
        Buffer.add_string buf
          (match Textgen.next r 5 with
          | 0 -> " + "
          | 1 -> " - "
          | 2 -> " * "
          | 3 -> " / "
          | _ -> " % ");
      if Textgen.next r 6 = 0 then begin
        Buffer.add_char buf '(';
        Buffer.add_string buf (string_of_int (Textgen.next r 1000));
        Buffer.add_string buf " + ";
        Buffer.add_string buf (string_of_int (1 + Textgen.next r 100));
        Buffer.add_char buf ')'
      end
      else Buffer.add_string buf (string_of_int (Textgen.next r 10000))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let spec =
  Spec.make ~name:"yacc" ~description:"Parsing Program Generator" ~source
    ~training_input:(lazy (exprs ~seed:2727 ~lines:3_200))
    ~test_input:(lazy (exprs ~seed:2828 ~lines:5_000))
