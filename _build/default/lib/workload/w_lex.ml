(* lex: the scanner a lexical-analyser generator emits — a hand-rolled
   DFA whose per-state dispatch is a switch over the input character.
   This is the shape the paper's lex spends its time in. *)

let source =
  {|
int counts[8];
/* token classes: 0 ident, 1 number, 2 string, 3 comment, 4 operator,
   5 punctuation, 6 whitespace, 7 other */

int main() {
  int c;
  c = getchar();
  while (c != EOF) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
      counts[0]++;
      while ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
             || (c >= '0' && c <= '9') || c == '_')
        c = getchar();
    } else if (c >= '0' && c <= '9') {
      counts[1]++;
      while (c >= '0' && c <= '9')
        c = getchar();
    } else {
      switch (c) {
      case '"': {
        counts[2]++;
        c = getchar();
        while (c != EOF && c != '"' && c != '\n')
          c = getchar();
        if (c == '"')
          c = getchar();
        break;
      }
      case '/': {
        int c2 = getchar();
        if (c2 == '*') {
          counts[3]++;
          int prev = 0;
          c = getchar();
          while (c != EOF) {
            if (prev == '*' && c == '/')
              break;
            prev = c;
            c = getchar();
          }
          if (c != EOF)
            c = getchar();
        } else if (c2 == '/') {
          counts[3]++;
          c = c2;
          while (c != EOF && c != '\n')
            c = getchar();
        } else {
          counts[4]++;
          c = c2;
        }
        break;
      }
      case '+':
      case '-':
      case '*':
      case '=':
      case '<':
      case '>':
      case '&':
      case '|':
      case '!':
      case '%':
      case '^':
        counts[4]++;
        c = getchar();
        break;
      case '(':
      case ')':
      case '{':
      case '}':
      case '[':
      case ']':
      case ';':
      case ',':
      case '.':
        counts[5]++;
        c = getchar();
        break;
      case ' ':
      case '\t':
      case '\n':
        counts[6]++;
        c = getchar();
        break;
      default:
        counts[7]++;
        c = getchar();
      }
    }
  }
  int i = 0;
  while (i < 8) {
    print_num(counts[i]);
    putchar(' ');
    i++;
  }
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"lex" ~description:"Lexical Analysis Program Generator"
    ~source
    ~training_input:(lazy (Textgen.code ~seed:777 ~chars:80_000))
    ~test_input:(lazy (Textgen.code ~seed:888 ~chars:120_000))
