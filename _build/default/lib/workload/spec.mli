(** A benchmark workload: a MiniC re-creation of one of the paper's 17
    Unix utilities (Table 3), with deterministic training and test
    inputs (different seeds, as the paper used different training and
    test data). *)

type t = {
  name : string;
  description : string;  (** matches the paper's Table 3 description *)
  source : string;       (** MiniC source *)
  training_input : string Lazy.t;
  test_input : string Lazy.t;
}

val runtime_preamble : string
(** Shared MiniC helpers prepended to every workload: [print_num] (the
    utilities do their own decimal output, so the digit loop counts as
    user code, like the paper's measured programs). *)

val make :
  name:string ->
  description:string ->
  source:string ->
  training_input:string Lazy.t ->
  test_input:string Lazy.t ->
  t
(** Prepends {!runtime_preamble} to [source]. *)
