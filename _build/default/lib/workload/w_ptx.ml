(* ptx: generates a permuted index — every significant word (length >= 4,
   not in a small stop list) is emitted with its line number.  The word
   scan and the stop-list rejection are chains of comparisons on common
   variables. *)

let source =
  {|
int word[64];

int is_stop_word(int len) {
  /* the, and, with, that, from */
  if (len == 3) {
    if (word[0] == 't' && word[1] == 'h' && word[2] == 'e')
      return 1;
    if (word[0] == 'a' && word[1] == 'n' && word[2] == 'd')
      return 1;
    return 0;
  }
  if (len == 4) {
    if (word[0] == 'w' && word[1] == 'i' && word[2] == 't' && word[3] == 'h')
      return 1;
    if (word[0] == 't' && word[1] == 'h' && word[2] == 'a' && word[3] == 't')
      return 1;
    if (word[0] == 'f' && word[1] == 'r' && word[2] == 'o' && word[3] == 'm')
      return 1;
    return 0;
  }
  return 0;
}

int main() {
  int c;
  int len = 0;
  int line = 1;
  int emitted = 0;
  c = getchar();
  while (1) {
    if (c >= 'a' && c <= 'z') {
      if (len < 63) {
        word[len] = c;
        len++;
      }
    } else if (c >= 'A' && c <= 'Z') {
      if (len < 63) {
        word[len] = c - 'A' + 'a';
        len++;
      }
    } else {
      if (len >= 4 && is_stop_word(len) == 0) {
        int k = 0;
        while (k < len) {
          putchar(word[k]);
          k++;
        }
        putchar(':');
        print_num(line);
        putchar('\n');
        emitted++;
      }
      len = 0;
      if (c == '\n')
        line++;
      if (c == EOF)
        break;
    }
    c = getchar();
  }
  print_num(emitted);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"ptx" ~description:"Generates a Permuted Index" ~source
    ~training_input:(lazy (Textgen.prose ~seed:1616 ~chars:70_000))
    ~test_input:(lazy (Textgen.prose ~seed:1717 ~chars:100_000))
