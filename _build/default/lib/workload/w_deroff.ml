(* deroff: removes nroff/troff constructs — drops request lines starting
   with '.', skips table blocks between .TS and .TE, strips backslash
   escapes (including the two-character font escapes \fB, \fI, \fR and
   the size escapes \s0..\s9), and passes the remaining text through. *)

let source =
  {|
int main() {
  int c;
  int dropped = 0;
  int in_table = 0;
  c = getchar();
  while (c != EOF) {
    if (c == '.') {
      /* request line */
      dropped++;
      int r1 = getchar();
      int r2 = getchar();
      if (r1 == 'T' && r2 == 'S')
        in_table = 1;
      else if (r1 == 'T' && r2 == 'E')
        in_table = 0;
      c = r2;
      while (c != EOF && c != '\n')
        c = getchar();
      if (c == '\n')
        c = getchar();
    } else if (in_table == 1) {
      /* inside .TS/.TE: drop the whole line */
      dropped++;
      while (c != EOF && c != '\n')
        c = getchar();
      if (c == '\n')
        c = getchar();
    } else {
      while (c != EOF && c != '\n') {
        if (c == '\\') {
          c = getchar();
          if (c == 'f') {
            /* font escape: skip the font letter too */
            c = getchar();
            if (c != EOF && c != '\n')
              c = getchar();
          } else if (c == 's') {
            /* size escape: skip the digit(s) */
            c = getchar();
            while (c >= '0' && c <= '9')
              c = getchar();
          } else if (c != EOF && c != '\n')
            c = getchar();
        } else {
          putchar(c);
          c = getchar();
        }
      }
      putchar('\n');
      if (c == '\n')
        c = getchar();
    }
  }
  print_num(dropped);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"deroff" ~description:"Removes nroff Constructs" ~source
    ~training_input:(lazy (Textgen.mixed_lines ~seed:111 ~lines:2_500))
    ~test_input:(lazy (Textgen.mixed_lines ~seed:222 ~lines:3_800))
