(* nroff: text formatter core — fills words into output lines of width
   64 and adjusts (justifies) them by distributing pad blanks, honours a
   small request repertoire (.br break, .ce centre, .sp space, .in
   indent, .fi/.nf fill mode), and counts the requests it served.  The
   fill/adjust loops and the request dispatch are the branch-heavy
   parts, as in the real formatter. *)

let source =
  {|
int word[80];
int line[90];
int line_len;
int line_words;
int outcol;
int indent;
int centering;
int filling;

void put_spaces(int n) {
  while (n > 0) {
    putchar(' ');
    n--;
  }
}

/* emit the buffered line, justified to width 64 when [adjust] */
void flush_line(int adjust) {
  int width = 64 - indent;
  if (line_len == 0)
    return;
  put_spaces(indent);
  if (centering > 0) {
    put_spaces((width - line_len) / 2);
    centering--;
    adjust = 0;
  }
  if (adjust == 1 && line_words > 1 && line_len < width) {
    /* distribute the slack across the word gaps */
    int slack = width - line_len;
    int gaps = line_words - 1;
    int base = slack / gaps;
    int extra = slack % gaps;
    int k = 0;
    while (k < line_len) {
      putchar(line[k]);
      if (line[k] == ' ') {
        put_spaces(base);
        if (extra > 0) {
          putchar(' ');
          extra--;
        }
      }
      k++;
    }
  } else {
    int k = 0;
    while (k < line_len) {
      putchar(line[k]);
      k++;
    }
  }
  putchar('\n');
  line_len = 0;
  line_words = 0;
}

void emit_word(int len) {
  int k;
  int width = 64 - indent;
  if (len == 0)
    return;
  if (line_len + len + 1 > width)
    flush_line(1);
  if (line_len > 0) {
    line[line_len] = ' ';
    line_len++;
  }
  k = 0;
  while (k < len && line_len < 89) {
    line[line_len] = word[k];
    line_len++;
    k++;
  }
  line_words++;
}

int main() {
  int c;
  int at_bol = 1;
  int len = 0;
  int requests = 0;
  line_len = 0;
  line_words = 0;
  outcol = 0;
  indent = 0;
  centering = 0;
  filling = 1;
  c = getchar();
  while (c != EOF) {
    if (c == '.' && at_bol == 1) {
      /* request line: .xx [arg] */
      requests++;
      int r1 = getchar();
      int r2 = getchar();
      /* parse an optional numeric argument */
      int arg = 0;
      int saw_arg = 0;
      c = getchar();
      while (c == ' ')
        c = getchar();
      while (c >= '0' && c <= '9') {
        arg = arg * 10 + (c - '0');
        saw_arg = 1;
        c = getchar();
      }
      if (r1 == 'b' && r2 == 'r')
        flush_line(0);
      else if (r1 == 'c' && r2 == 'e') {
        flush_line(0);
        centering = saw_arg == 1 ? arg : 1;
      } else if (r1 == 's' && r2 == 'p') {
        flush_line(0);
        int n = saw_arg == 1 ? arg : 1;
        while (n > 0) {
          putchar('\n');
          n--;
        }
      } else if (r1 == 'i' && r2 == 'n') {
        flush_line(0);
        indent = saw_arg == 1 ? arg : 0;
        if (indent > 32)
          indent = 32;
      } else if (r1 == 'n' && r2 == 'f') {
        flush_line(0);
        filling = 0;
      } else if (r1 == 'f' && r2 == 'i')
        filling = 1;
      while (c != EOF && c != '\n')
        c = getchar();
      if (c == '\n')
        c = getchar();
      at_bol = 1;
    } else if (filling == 0) {
      /* no-fill mode: copy lines through with the indent */
      put_spaces(indent);
      while (c != EOF && c != '\n') {
        putchar(c);
        c = getchar();
      }
      putchar('\n');
      if (c == '\n')
        c = getchar();
      at_bol = 1;
    } else if (c == ' ' || c == '\t' || c == '\n') {
      emit_word(len);
      len = 0;
      if (c == '\n') {
        at_bol = 1;
        /* a blank line ends the paragraph */
        int c2 = getchar();
        if (c2 == '\n') {
          flush_line(0);
          putchar('\n');
        }
        c = c2;
      } else {
        at_bol = 0;
        c = getchar();
      }
    } else {
      if (len < 79) {
        word[len] = c;
        len++;
      }
      at_bol = 0;
      c = getchar();
    }
  }
  emit_word(len);
  flush_line(0);
  print_num(requests);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"nroff" ~description:"Text Formatter" ~source
    ~training_input:(lazy (Textgen.mixed_lines ~seed:1212 ~lines:2_500))
    ~test_input:(lazy (Textgen.mixed_lines ~seed:1313 ~lines:3_800))
