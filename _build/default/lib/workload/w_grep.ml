(* grep: searches its input for lines containing a fixed pattern (naive
   string matching, as pre-Boyer-Moore grep cores did).  The per-line
   scan compares characters against the pattern head repeatedly. *)

let source =
  {|
int line[600];
int pat[] = "ta";

int main() {
  int c;
  int len = 0;
  int matched = 0;
  while (1) {
    c = getchar();
    if (c == '\n' || c == EOF) {
      line[len] = 0;
      int i = 0;
      int found = 0;
      /* scan for the pattern's first character, then verify the rest;
         the terminator/first-char dispatch is the grep core's
         reorderable sequence */
      while (found == 0) {
        int c2 = line[i];
        if (c2 == 0)
          break;
        if (c2 == 't') {
          int j = 1;
          while (pat[j] != 0 && line[i + j] == pat[j])
            j++;
          if (pat[j] == 0)
            found = 1;
        }
        i++;
      }
      if (found) {
        matched++;
        int k = 0;
        while (line[k] != 0) {
          putchar(line[k]);
          k++;
        }
        putchar('\n');
      }
      len = 0;
      if (c == EOF)
        break;
    } else if (len < 599) {
      line[len] = c;
      len++;
    }
  }
  print_num(matched);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"grep"
    ~description:"Searches a File for a String or Regular Expression" ~source
    ~training_input:(lazy (Textgen.prose ~seed:303 ~chars:80_000))
    ~test_input:(lazy (Textgen.prose ~seed:404 ~chars:120_000))
