(* sort: sorts and collates lines.  Reads all lines into a flat buffer,
   quicksorts an index of line offsets with character-by-character
   comparison, and prints the result.  The compare loop dominates the
   run, as in the paper's sort (its biggest winner at -47%). *)

let source =
  {|
int text[120000];
int offs[8000];
int perm[8000];
int nlines;

/* fold a character for comparison: line end maps to 0, tabs compare as
   blanks, upper case folds to lower case (sort -df).  This per-character
   classification is the reorderable sequence the paper's sort spends its
   time in. */
int key_char(int c) {
  if (c == '\n')
    return 0;
  if (c == '\t')
    return ' ';
  if (c >= 'A' && c <= 'Z')
    return c + 32;
  return c;
}

/* -1, 0, 1 comparing the lines starting at a and b */
int cmp_lines(int a, int b) {
  while (1) {
    int ca = key_char(text[a]);
    int cb = key_char(text[b]);
    if (ca == 0 && cb == 0)
      return 0;
    if (ca == 0)
      return -1;
    if (cb == 0)
      return 1;
    if (ca < cb)
      return -1;
    if (ca > cb)
      return 1;
    a++;
    b++;
  }
}

void quicksort(int lo, int hi) {
  if (lo >= hi)
    return;
  int pivot = perm[(lo + hi) / 2];
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (cmp_lines(perm[i], pivot) < 0)
      i++;
    while (cmp_lines(perm[j], pivot) > 0)
      j--;
    if (i <= j) {
      int t = perm[i];
      perm[i] = perm[j];
      perm[j] = t;
      i++;
      j--;
    }
  }
  quicksort(lo, j);
  quicksort(i, hi);
}

int main() {
  int c;
  int pos = 0;
  int k;
  nlines = 0;
  offs[0] = 0;
  c = getchar();
  while (c != EOF && pos < 119998 && nlines < 7999) {
    text[pos] = c;
    pos++;
    if (c == '\n') {
      nlines++;
      offs[nlines] = pos;
    }
    c = getchar();
  }
  text[pos] = 0;
  k = 0;
  while (k < nlines) {
    perm[k] = offs[k];
    k++;
  }
  quicksort(0, nlines - 1);
  k = 0;
  while (k < nlines) {
    int p = perm[k];
    while (text[p] != 0 && text[p] != '\n') {
      putchar(text[p]);
      p++;
    }
    putchar('\n');
    k++;
  }
  print_num(nlines);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"sort" ~description:"Sorts and Collates Lines" ~source
    ~training_input:(lazy (Textgen.mixed_lines ~seed:2323 ~lines:1_700))
    ~test_input:(lazy (Textgen.mixed_lines ~seed:2424 ~lines:2_500))
