let all =
  [
    W_awk.spec;
    W_cb.spec;
    W_cpp.spec;
    W_ctags.spec;
    W_deroff.spec;
    W_grep.spec;
    W_hyphen.spec;
    W_join.spec;
    W_lex.spec;
    W_nroff.spec;
    W_pr.spec;
    W_ptx.spec;
    W_sdiff.spec;
    W_sed.spec;
    W_sort.spec;
    W_wc.spec;
    W_yacc.spec;
  ]

let find name = List.find (fun (s : Spec.t) -> String.equal s.Spec.name name) all
let names = List.map (fun (s : Spec.t) -> s.Spec.name) all
