(* cpp: a C preprocessor core — strips comments, recognises directive
   lines, scans identifiers and numbers, and counts what it saw.  The
   token dispatch is a wide switch and the identifier/number scanners
   are bounded range conditions (Form 4). *)

let source =
  {|
int idents;
int numbers;
int directives;
int strings;
int others;

int main() {
  int c;
  int at_bol = 1;
  int prev = 0;
  c = getchar();
  while (c != EOF) {
    if (c == '/') {
      int c2 = getchar();
      if (c2 == '*') {
        prev = 0;
        c = getchar();
        while (c != EOF) {
          if (prev == '*' && c == '/')
            break;
          prev = c;
          c = getchar();
        }
        c = getchar();
      } else if (c2 == '/') {
        while (c != EOF && c != '\n')
          c = getchar();
      } else {
        putchar('/');
        c = c2;
      }
      at_bol = 0;
    } else if (c == '#' && at_bol == 1) {
      directives++;
      while (c != EOF && c != '\n') {
        putchar(c);
        c = getchar();
      }
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
      idents++;
      while ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
             || (c >= '0' && c <= '9') || c == '_') {
        putchar(c);
        c = getchar();
      }
      at_bol = 0;
    } else if (c >= '0' && c <= '9') {
      numbers++;
      while (c >= '0' && c <= '9') {
        putchar(c);
        c = getchar();
      }
      at_bol = 0;
    } else if (c == '"') {
      strings++;
      putchar(c);
      c = getchar();
      while (c != EOF && c != '"') {
        putchar(c);
        c = getchar();
      }
      if (c == '"') {
        putchar(c);
        c = getchar();
      }
      at_bol = 0;
    } else {
      switch (c) {
      case '\n':
        at_bol = 1;
        putchar(c);
        break;
      case ' ':
      case '\t':
        putchar(c);
        break;
      case '=':
      case '+':
      case '-':
      case '*':
      case '<':
      case '>':
      case ';':
      case '(':
      case ')':
      case '{':
      case '}':
        others++;
        putchar(c);
        at_bol = 0;
        break;
      default:
        putchar(c);
        at_bol = 0;
      }
      c = getchar();
    }
  }
  print_num(idents);
  putchar(' ');
  print_num(numbers);
  putchar(' ');
  print_num(directives);
  putchar(' ');
  print_num(strings);
  putchar(' ');
  print_num(others);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"cpp" ~description:"C Compiler Preprocessor" ~source
    ~training_input:(lazy (Textgen.code ~seed:707 ~chars:70_000))
    ~test_input:(lazy (Textgen.code ~seed:808 ~chars:100_000))
