type t = {
  name : string;
  description : string;
  source : string;
  training_input : string Lazy.t;
  test_input : string Lazy.t;
}

let runtime_preamble =
  {|
int _numbuf[24];

void print_num(int n) {
  int i = 0;
  if (n < 0) {
    putchar('-');
    n = -n;
  }
  if (n == 0) {
    putchar('0');
    return;
  }
  while (n > 0) {
    _numbuf[i] = n % 10 + '0';
    i++;
    n = n / 10;
  }
  while (i > 0) {
    i--;
    putchar(_numbuf[i]);
  }
}
|}

let make ~name ~description ~source ~training_input ~test_input =
  {
    name;
    description;
    source = runtime_preamble ^ source;
    training_input;
    test_input;
  }
