(* hyphen: finds hyphenation opportunities.  Besides listing words that
   already contain '-', it applies suffix rules (-ing, -tion, -ed, -er,
   -ly) to long words and prints them with the break point marked — the
   suffix matcher is a cascade of character comparisons over the word
   tail, the utility's hot path. *)

let source =
  {|
int word[64];

/* returns the number of tail characters forming a known suffix, or 0 */
int suffix_len(int len) {
  if (len < 6)
    return 0;
  int a = word[len - 3];
  int b = word[len - 2];
  int c = word[len - 1];
  if (a == 'i' && b == 'n' && c == 'g')
    return 3;
  if (len >= 7 && word[len - 4] == 't' && a == 'i' && b == 'o' && c == 'n')
    return 4;
  if (b == 'e' && c == 'd')
    return 2;
  if (b == 'e' && c == 'r')
    return 2;
  if (b == 'l' && c == 'y')
    return 2;
  return 0;
}

void print_word(int len, int break_at) {
  int k = 0;
  while (k < len) {
    if (k == break_at)
      putchar('-');
    putchar(word[k]);
    k++;
  }
  putchar('\n');
}

int main() {
  int c;
  int len = 0;
  int has_hyphen = 0;
  int found = 0;
  int suggested = 0;
  c = getchar();
  while (1) {
    int is_word;
    is_word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '-';
    if (is_word && c != EOF) {
      if (c == '-' && len > 0)
        has_hyphen = 1;
      if (len < 63) {
        word[len] = c;
        len++;
      }
    } else {
      if (len > 1 && has_hyphen == 1 && word[len - 1] != '-') {
        found++;
        print_word(len, -1);
      } else if (len >= 6 && has_hyphen == 0) {
        int s = suffix_len(len);
        if (s > 0) {
          suggested++;
          print_word(len, len - s);
        }
      }
      len = 0;
      has_hyphen = 0;
      if (c == EOF)
        break;
    }
    c = getchar();
  }
  print_num(found);
  putchar(' ');
  print_num(suggested);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"hyphen" ~description:"Lists Hyphenated Words in a File"
    ~source
    ~training_input:(lazy (Textgen.prose ~seed:333 ~chars:75_000))
    ~test_input:(lazy (Textgen.prose ~seed:444 ~chars:110_000))
