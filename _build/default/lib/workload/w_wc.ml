(* wc: displays count of lines, words and characters.  The inner loop's
   whitespace classification is the paper's canonical reorderable
   sequence (Figure 1). *)

let source =
  {|
int nl;
int nw;
int nc;

int main() {
  int c;
  int in_word = 0;
  nl = 0;
  nw = 0;
  nc = 0;
  while ((c = getchar()) != EOF) {
    nc++;
    if (c == '\n')
      nl++;
    if (c == ' ' || c == '\n' || c == '\t')
      in_word = 0;
    else if (in_word == 0) {
      in_word = 1;
      nw++;
    }
  }
  print_num(nl);
  putchar(' ');
  print_num(nw);
  putchar(' ');
  print_num(nc);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"wc"
    ~description:"Displays Count of Lines, Words, and Characters" ~source
    ~training_input:(lazy (Textgen.prose ~seed:101 ~chars:80_000))
    ~test_input:(lazy (Textgen.prose ~seed:202 ~chars:120_000))
