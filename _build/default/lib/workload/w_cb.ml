(* cb: a simple C program beautifier.  Re-indents code by brace depth,
   tracking string literals and comments; the dispatch over the current
   character is a switch whose translation differs across the heuristic
   sets. *)

let source =
  {|
int depth;

void indent() {
  int i = 0;
  while (i < depth) {
    putchar(' ');
    putchar(' ');
    i++;
  }
}

int main() {
  int c;
  int prev = 0;
  int in_string = 0;
  int in_comment = 0;
  int at_bol = 1;
  depth = 0;
  while ((c = getchar()) != EOF) {
    if (in_comment == 1) {
      if (prev == '*' && c == '/')
        in_comment = 0;
      prev = c;
    } else if (in_string == 1) {
      putchar(c);
      if (c == '"' && prev != '\\')
        in_string = 0;
      prev = c;
    } else {
      switch (c) {
      case '"':
        if (at_bol == 1)
          indent();
        at_bol = 0;
        putchar(c);
        in_string = 1;
        break;
      case '{':
        if (at_bol == 1)
          indent();
        putchar('{');
        putchar('\n');
        depth++;
        at_bol = 1;
        break;
      case '}':
        if (depth > 0)
          depth--;
        if (at_bol == 0)
          putchar('\n');
        indent();
        putchar('}');
        putchar('\n');
        at_bol = 1;
        break;
      case ';':
        putchar(';');
        putchar('\n');
        at_bol = 1;
        break;
      case '\n':
        if (at_bol == 0)
          putchar('\n');
        at_bol = 1;
        break;
      case '\t':
      case ' ':
        if (at_bol == 0)
          putchar(' ');
        break;
      case '*':
        if (prev == '/')
          in_comment = 1;
        else {
          if (at_bol == 1)
            indent();
          at_bol = 0;
          putchar('*');
        }
        break;
      default:
        if (at_bol == 1)
          indent();
        at_bol = 0;
        if (c != '/')
          putchar(c);
      }
      prev = c;
    }
  }
  return 0;
}
|}

let spec =
  Spec.make ~name:"cb" ~description:"A Simple C Program Beautifier" ~source
    ~training_input:(lazy (Textgen.code ~seed:505 ~chars:70_000))
    ~test_input:(lazy (Textgen.code ~seed:606 ~chars:100_000))
