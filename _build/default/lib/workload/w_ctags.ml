(* ctags: finds definition-like lines — an identifier at the beginning
   of a line followed by '(' — and emits the identifier, skipping C
   keywords.  Keyword rejection is a cascade of character equality
   tests over the same variable. *)

let source =
  {|
int name[64];

int is_keyword() {
  /* if, int, for, while, return, switch, case, else, do */
  int c0 = name[0];
  if (c0 == 'i') {
    if (name[1] == 'f' && name[2] == 0)
      return 1;
    if (name[1] == 'n' && name[2] == 't' && name[3] == 0)
      return 1;
    return 0;
  }
  if (c0 == 'f') {
    if (name[1] == 'o' && name[2] == 'r' && name[3] == 0)
      return 1;
    return 0;
  }
  if (c0 == 'w') {
    if (name[1] == 'h' && name[2] == 'i' && name[3] == 'l' && name[4] == 'e'
        && name[5] == 0)
      return 1;
    return 0;
  }
  if (c0 == 'r')
    return name[1] == 'e' && name[2] == 't';
  if (c0 == 's')
    return name[1] == 'w';
  if (c0 == 'c')
    return name[1] == 'a' && name[2] == 's' && name[3] == 'e' && name[4] == 0;
  if (c0 == 'e')
    return name[1] == 'l' && name[2] == 's' && name[3] == 'e' && name[4] == 0;
  if (c0 == 'd')
    return name[1] == 'o' && name[2] == 0;
  return 0;
}

int main() {
  int c;
  int tags = 0;
  int defines = 0;
  c = getchar();
  while (c != EOF) {
    if (c == '#') {
      /* a #define NAME line also yields a tag */
      int d1 = getchar();
      int d2 = getchar();
      int d3 = getchar();
      c = getchar();
      if (d1 == 'd' && d2 == 'e' && d3 == 'f') {
        /* skip to the macro name */
        while (c != EOF && c != ' ' && c != '\n')
          c = getchar();
        while (c == ' ')
          c = getchar();
        int len = 0;
        while ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
               || (c >= '0' && c <= '9') || c == '_') {
          if (len < 63) {
            name[len] = c;
            len++;
          }
          c = getchar();
        }
        if (len > 0) {
          defines++;
          int k = 0;
          while (k < len) {
            putchar(name[k]);
            k++;
          }
          putchar('\n');
        }
      }
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
      int len = 0;
      while ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
             || (c >= '0' && c <= '9') || c == '_') {
        if (len < 63) {
          name[len] = c;
          len++;
        }
        c = getchar();
      }
      name[len] = 0;
      /* skip blanks */
      while (c == ' ' || c == '\t')
        c = getchar();
      if (c == '(' && is_keyword() == 0) {
        tags++;
        int k = 0;
        while (name[k] != 0) {
          putchar(name[k]);
          k++;
        }
        putchar('\n');
      }
    }
    /* skip to the next line */
    while (c != EOF && c != '\n')
      c = getchar();
    if (c == '\n')
      c = getchar();
  }
  print_num(tags);
  putchar(' ');
  print_num(defines);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"ctags" ~description:"Generates Tag File for vi" ~source
    ~training_input:(lazy (Textgen.code ~seed:909 ~chars:80_000))
    ~test_input:(lazy (Textgen.code ~seed:1010 ~chars:120_000))
