(** The 17 benchmark programs of the paper's Table 3. *)

val all : Spec.t list
(** In the paper's order: awk, cb, cpp, ctags, deroff, grep, hyphen,
    join, lex, nroff, pr, ptx, sdiff, sed, sort, wc, yacc. *)

val find : string -> Spec.t
(** Raises [Not_found]. *)

val names : string list
