(** Natural-loop detection from back edges.

    A back edge is an edge [tail -> head] where [head] dominates [tail];
    its natural loop is [head] plus every block that can reach [tail]
    without passing through [head].  Loops sharing a header are merged.
    Used by loop-invariant code motion. *)

type loop = {
  header : string;
  body : string list;    (** includes the header; deterministic order *)
  back_edges : string list;  (** the tails *)
}

val find : Func.t -> loop list
(** Loops in order of their header's layout position. *)

val preheader : Func.t -> loop -> string
(** The unique block outside the loop that falls into the header,
    creating one if needed (all non-back-edge predecessors of the header
    are retargeted to the new block).  Returns its label. *)
