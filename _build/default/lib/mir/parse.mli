(** Textual MIR parser — the inverse of {!Program.pp}.

    Reads the assembly-like dump the printer produces, enabling MIR round
    trips ([parse (to_string p)] is structurally equal to [p] modulo
    layout of whitespace), hand-written MIR test inputs, and the CLI's
    ability to run [.mir] files directly.

    The format is line oriented:

    {v
    global tab[10]
    global msg[3] = {104, 105, 0}

    function main(r0, r1):
      table T0: [a; b]
    main.entry:
      r1 = add r0, 1
      cmp r1, 5
      be -> a | b
    a:
      call putchar(42)
      ret 0  ; delay: r2 = 7
    v} *)

exception Error of int * string
(** Line number (1-based) and message. *)

val program : string -> Program.t
val func : string -> Func.t
(** Parses a single function (no globals). *)
