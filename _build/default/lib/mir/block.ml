type term_kind =
  | Br of Cond.t * string * string
  | Jmp of string
  | Switch of Reg.t * (int * string) list * string
  | Jtab of Reg.t * int
  | Ret of Operand.t option

type term = {
  kind : term_kind;
  mutable delay : Insn.t option;
  mutable annul : bool;
}

type t = {
  label : string;
  mutable insns : Insn.t list;
  mutable term : term;
}

let term kind = { kind; delay = None; annul = false }
let make ~label insns kind = { label; insns; term = term kind }

let successors ~jtab b =
  match b.term.kind with
  | Br (_, taken, not_taken) ->
    if String.equal taken not_taken then [ taken ] else [ taken; not_taken ]
  | Jmp l -> [ l ]
  | Switch (_, cases, default) ->
    let targets = List.map snd cases @ [ default ] in
    List.sort_uniq String.compare targets
  | Jtab (_, id) ->
    Array.to_list (jtab id) |> List.sort_uniq String.compare
  | Ret _ -> []

let equal_term_kind a b =
  match a, b with
  | Br (c1, t1, f1), Br (c2, t2, f2) ->
    Cond.equal c1 c2 && String.equal t1 t2 && String.equal f1 f2
  | Jmp l1, Jmp l2 -> String.equal l1 l2
  | Switch (r1, c1, d1), Switch (r2, c2, d2) ->
    Reg.equal r1 r2
    && List.equal (fun (i1, l1) (i2, l2) -> i1 = i2 && String.equal l1 l2) c1 c2
    && String.equal d1 d2
  | Jtab (r1, i1), Jtab (r2, i2) -> Reg.equal r1 r2 && i1 = i2
  | Ret o1, Ret o2 -> Option.equal Operand.equal o1 o2
  | (Br _ | Jmp _ | Switch _ | Jtab _ | Ret _), _ -> false

let pp_term_kind ppf = function
  | Br (c, taken, not_taken) ->
    Format.fprintf ppf "%s -> %s | %s" (Cond.mnemonic c) taken not_taken
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Switch (r, cases, default) ->
    Format.fprintf ppf "switch %a [%a] default %s" Reg.pp r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (i, l) -> Format.fprintf ppf "%d:%s" i l))
      cases default
  | Jtab (r, id) -> Format.fprintf ppf "jtab %a, T%d" Reg.pp r id
  | Ret None -> Format.fprintf ppf "ret"
  | Ret (Some o) -> Format.fprintf ppf "ret %a" Operand.pp o

let pp_term ppf t =
  pp_term_kind ppf t.kind;
  match t.delay with
  | None -> ()
  | Some i ->
    Format.fprintf ppf "  ; delay%s: %a" (if t.annul then ",a" else "") Insn.pp i

let pp ppf b =
  Format.fprintf ppf "%s:@\n" b.label;
  List.iter (fun i -> Format.fprintf ppf "  %a@\n" Insn.pp i) b.insns;
  Format.fprintf ppf "  %a@\n" pp_term b.term

(* Transfer instructions needed by a terminator given the block laid out
   next: a jump that falls through assembles to nothing; every emitted
   transfer occupies one delay slot. *)
let transfer_count ~layout_next kind =
  let is_next l = match layout_next with Some n -> String.equal n l | None -> false in
  match kind with
  | Jmp l -> if is_next l then 0 else 1
  | Br (_, _, not_taken) -> if is_next not_taken then 1 else 2
  | Jtab _ -> 1
  | Ret _ -> 1
  | Switch _ -> 0

let static_insn_count ~layout_next b =
  let transfers = transfer_count ~layout_next b.term.kind in
  (* each transfer instruction carries a delay slot (filled or nop) *)
  List.length b.insns + (2 * transfers)
