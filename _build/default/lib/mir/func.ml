type t = {
  name : string;
  params : Reg.t list;
  mutable blocks : Block.t list;
  mutable jtables : string array list;
  mutable next_reg : int;
  mutable next_label : int;
}

let make ~name ~params =
  let max_param =
    List.fold_left (fun acc r -> max acc (Reg.to_int r + 1)) 0 params
  in
  { name; params; blocks = []; jtables = []; next_reg = max_param; next_label = 0 }

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Func.entry: empty function " ^ f.name)

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  Reg.of_int r

let fresh_label f =
  let n = f.next_label in
  f.next_label <- n + 1;
  Printf.sprintf "%s.L%d" f.name n

let add_block f b = f.blocks <- f.blocks @ [ b ]

let insert_blocks_after f label blocks =
  let rec go = function
    | [] -> raise Not_found
    | (b : Block.t) :: rest ->
      if String.equal b.Block.label label then b :: (blocks @ rest)
      else b :: go rest
  in
  f.blocks <- go f.blocks

let find_block_opt f label =
  List.find_opt (fun b -> String.equal b.Block.label label) f.blocks

let find_block f label =
  match find_block_opt f label with
  | Some b -> b
  | None -> raise Not_found

let jtab f id =
  match List.nth_opt f.jtables id with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Func.jtab: bad table id %d in %s" id f.name)

let add_jtable f targets =
  let id = List.length f.jtables in
  f.jtables <- f.jtables @ [ targets ];
  id

let successors f b = Block.successors ~jtab:(jtab f) b

let predecessors f =
  let preds = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace preds b.Block.label []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let existing = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (existing @ [ b.Block.label ]))
        (successors f b))
    f.blocks;
  preds

let iter_blocks f g = List.iter g f.blocks

let rec layout_counts acc = function
  | [] -> acc
  | [ b ] -> acc + Block.static_insn_count ~layout_next:None b
  | b :: (next :: _ as rest) ->
    layout_counts
      (acc + Block.static_insn_count ~layout_next:(Some next.Block.label) b)
      rest

let static_insn_count f = layout_counts 0 f.blocks

let reachable f =
  let seen = Hashtbl.create 64 in
  let rec go label =
    if not (Hashtbl.mem seen label) then begin
      Hashtbl.replace seen label ();
      match find_block_opt f label with
      | None -> ()
      | Some b -> List.iter go (successors f b)
    end
  in
  (match f.blocks with b :: _ -> go b.Block.label | [] -> ());
  seen

let pp ppf f =
  Format.fprintf ppf "function %s(%a):@\n" f.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Reg.pp)
    f.params;
  List.iteri
    (fun id targets ->
      Format.fprintf ppf "  table T%d: [%s]@\n" id
        (String.concat "; " (Array.to_list targets)))
    f.jtables;
  List.iter (fun b -> Block.pp ppf b) f.blocks
