type loop = {
  header : string;
  body : string list;
  back_edges : string list;
}

let natural_loop fn header tails =
  let preds = Func.predecessors fn in
  (* restrict the predecessor walk to reachable blocks: an unreachable
     block with an edge into the loop is not part of it (and the header
     does not dominate it) *)
  let reachable = Func.reachable fn in
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec pull label =
    if (not (Hashtbl.mem in_loop label)) && Hashtbl.mem reachable label then begin
      Hashtbl.replace in_loop label ();
      match Hashtbl.find_opt preds label with
      | Some ps -> List.iter pull ps
      | None -> ()
    end
  in
  List.iter pull tails;
  (* deterministic order: layout order of the function *)
  List.filter_map
    (fun (b : Block.t) ->
      if Hashtbl.mem in_loop b.Block.label then Some b.Block.label else None)
    fn.Func.blocks

let find fn =
  let dom = Dom.compute fn in
  let back = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          if Dom.dominates dom s b.Block.label then begin
            let tails = try Hashtbl.find back s with Not_found -> [] in
            Hashtbl.replace back s (tails @ [ b.Block.label ])
          end)
        (Func.successors fn b))
    fn.Func.blocks;
  List.filter_map
    (fun (b : Block.t) ->
      match Hashtbl.find_opt back b.Block.label with
      | Some tails ->
        Some
          {
            header = b.Block.label;
            body = natural_loop fn b.Block.label tails;
            back_edges = tails;
          }
      | None -> None)
    fn.Func.blocks

let retarget_term (t : Block.term) ~from ~into =
  let swap l = if String.equal l from then into else l in
  let kind =
    match t.Block.kind with
    | Block.Br (c, a, b) -> Block.Br (c, swap a, swap b)
    | Block.Jmp l -> Block.Jmp (swap l)
    | Block.Switch (r, cases, d) ->
      Block.Switch (r, List.map (fun (v, l) -> (v, swap l)) cases, swap d)
    | (Block.Jtab _ | Block.Ret _) as k -> k
  in
  { t with Block.kind }

let preheader fn loop =
  let preds = Func.predecessors fn in
  let header_preds =
    match Hashtbl.find_opt preds loop.header with Some ps -> ps | None -> []
  in
  let outside =
    List.filter (fun p -> not (List.mem p loop.body)) header_preds
  in
  let reusable =
    match outside with
    | [ single ] -> (
      match Func.find_block_opt fn single with
      | Some b when Func.successors fn b = [ loop.header ] -> Some single
      | _ -> None)
    | _ -> None
  in
  match reusable with
  | Some label -> label
  | None ->
    let label = Func.fresh_label fn in
    let nb = Block.make ~label [] (Block.Jmp loop.header) in
    List.iter
      (fun p ->
        match Func.find_block_opt fn p with
        | Some pb -> (
          pb.Block.term <-
            retarget_term pb.Block.term ~from:loop.header ~into:label;
          match pb.Block.term.Block.kind with
          | Block.Jtab (_, id) ->
            let table = Func.jtab fn id in
            Array.iteri
              (fun i t -> if String.equal t loop.header then table.(i) <- label)
              table
          | Block.Br _ | Block.Jmp _ | Block.Switch _ | Block.Ret _ -> ())
        | None -> ())
      outside;
    (* place the preheader right before the header; when the header is
       the entry block this makes the preheader the new entry, keeping
       it reachable even with no outside predecessors *)
    let rec insert = function
      | [] -> [ nb ]
      | (b : Block.t) :: rest ->
        if String.equal b.Block.label loop.header then nb :: b :: rest
        else b :: insert rest
    in
    fn.Func.blocks <- insert fn.Func.blocks;
    label
