type t = Eq | Ne | Lt | Le | Gt | Ge [@@deriving show { with_path = false }, eq, ord]

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let swap = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let eval c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let mnemonic = function
  | Eq -> "be"
  | Ne -> "bne"
  | Lt -> "bl"
  | Le -> "ble"
  | Gt -> "bg"
  | Ge -> "bge"
