type t = {
  fn : Func.t;
  mutable current : (string * Insn.t list) option;
      (* open block: label and reversed instructions *)
  mutable referenced : string list;
}

let create ~name ~params =
  { fn = Func.make ~name ~params; current = None; referenced = [] }

let func b = b.fn
let fresh_reg b = Func.fresh_reg b.fn
let new_label b = Func.fresh_label b.fn

let reference b label = b.referenced <- label :: b.referenced

let open_block b label =
  match b.current with
  | Some (open_label, _) ->
    invalid_arg
      (Printf.sprintf "Builder: block %s still open when opening %s" open_label
         label)
  | None -> b.current <- Some (label, [])

let ensure_open b =
  match b.current with
  | Some _ -> ()
  | None ->
    let label =
      if b.fn.Func.blocks = [] then b.fn.Func.name ^ ".entry"
      else Func.fresh_label b.fn
    in
    open_block b label

let close_block b kind =
  ensure_open b;
  match b.current with
  | None -> assert false
  | Some (label, rev_insns) ->
    Func.add_block b.fn (Block.make ~label (List.rev rev_insns) kind);
    b.current <- None

let insn b i =
  ensure_open b;
  match b.current with
  | None -> assert false
  | Some (label, rev_insns) -> b.current <- Some (label, i :: rev_insns)

let set_label b label =
  (match b.current with
  | Some _ -> close_block b (Block.Jmp label)
  | None -> if b.fn.Func.blocks = [] then () else ());
  open_block b label

let branch_to b cond ~taken ~not_taken =
  reference b taken;
  reference b not_taken;
  close_block b (Block.Br (cond, taken, not_taken))

let branch b cond ~taken =
  let next = new_label b in
  branch_to b cond ~taken ~not_taken:next;
  open_block b next

let jmp b label =
  reference b label;
  close_block b (Block.Jmp label)

let switch b r cases ~default =
  List.iter (fun (_, l) -> reference b l) cases;
  reference b default;
  close_block b (Block.Switch (r, cases, default))

let ret b value = close_block b (Block.Ret value)

let finish b =
  (match b.current with Some _ -> ret b None | None -> ());
  List.iter
    (fun label ->
      if Func.find_block_opt b.fn label = None then
        invalid_arg
          (Printf.sprintf "Builder.finish: label %s referenced but never defined"
             label))
    b.referenced;
  b.fn
