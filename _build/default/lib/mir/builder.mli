(** Imperative construction helper for MIR functions.

    Used by the front end's lowering and by tests/examples to build CFGs
    without tracking label bookkeeping by hand.  Typical usage:

    {[
      let b = Builder.create ~name:"f" ~params:[r0] in
      let l_then = Builder.new_label b in
      Builder.insn b (Cmp (Reg r0, Imm 0));
      Builder.branch b Eq ~taken:l_then;
      ...
      Builder.finish b
    ]} *)

type t

val create : name:string -> params:Reg.t list -> t
val func : t -> Func.t
val fresh_reg : t -> Reg.t
val new_label : t -> string

val insn : t -> Insn.t -> unit
(** Appends to the block currently open; opens the entry block if none. *)

val set_label : t -> string -> unit
(** Terminates the open block with a fall-through jump to [label] (if the
    block is not already terminated) and opens a block labelled [label]. *)

val branch : t -> Cond.t -> taken:string -> unit
(** Ends the open block with [Br (c, taken, next)] where [next] is a fresh
    label that the builder immediately opens. *)

val branch_to : t -> Cond.t -> taken:string -> not_taken:string -> unit
(** Ends the open block; no block is left open. *)

val jmp : t -> string -> unit
val switch : t -> Reg.t -> (int * string) list -> default:string -> unit
val ret : t -> Operand.t option -> unit

val finish : t -> Func.t
(** Closes any open block with [Ret None] and returns the function.
    Raises [Invalid_argument] if a referenced label was never defined. *)
