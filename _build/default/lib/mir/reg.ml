type t = int

let of_int n =
  if n < 0 then invalid_arg "Reg.of_int: negative id";
  n

let to_int r = r
let equal = Int.equal
let compare = Int.compare
let hash r = r
let pp ppf r = Format.fprintf ppf "r%d" r
let show r = Format.asprintf "%a" pp r

module Set = Set.Make (Int)
module Map = Map.Make (Int)
