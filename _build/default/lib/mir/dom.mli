(** Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm).

    Used by loop detection and loop-invariant code motion; exposed for
    clients that need to reason about paths (e.g. verifying that a
    compare dominates its branch). *)

type t

val compute : Func.t -> t

val idom : t -> string -> string option
(** Immediate dominator; [None] for the entry block and unreachable
    blocks. *)

val dominates : t -> string -> string -> bool
(** [dominates t a b] holds when every path from the entry to [b] passes
    through [a] (reflexive: [dominates t a a]). *)

val dominators : t -> string -> string list
(** The dominator chain of a block, from itself up to the entry. *)

val dominance_frontier : t -> string -> string list
(** Blocks where [b]'s dominance stops (in deterministic order). *)
