(** A MIR function: a list of basic blocks in layout order.

    The first block is the entry.  Blocks are kept in layout order, which
    determines fall-throughs (see {!Block.static_insn_count}); passes that
    change the order must keep the entry first. *)

type t = {
  name : string;
  params : Reg.t list;
  mutable blocks : Block.t list;  (** layout order; head is the entry *)
  mutable jtables : string array list;
      (** jump tables, indexed by position (table 0 first) *)
  mutable next_reg : int;
  mutable next_label : int;
}

val make : name:string -> params:Reg.t list -> t

val entry : t -> Block.t
(** Raises [Invalid_argument] on a function with no blocks. *)

val fresh_reg : t -> Reg.t
val fresh_label : t -> string
(** Fresh labels are ["<func>.L<n>"] and unique within the function. *)

val add_block : t -> Block.t -> unit
(** Appends at the end of the layout. *)

val insert_blocks_after : t -> string -> Block.t list -> unit
(** [insert_blocks_after f label blocks] splices [blocks] into the layout
    immediately after the block labelled [label].
    Raises [Not_found] if [label] is not defined. *)

val find_block : t -> string -> Block.t
(** Raises [Not_found]. *)

val find_block_opt : t -> string -> Block.t option

val jtab : t -> int -> string array
(** Resolve a jump-table id.  Raises [Invalid_argument] on a bad id. *)

val add_jtable : t -> string array -> int
(** Registers a jump table, returning its id. *)

val successors : t -> Block.t -> string list

val predecessors : t -> (string, string list) Hashtbl.t
(** Map from block label to predecessor labels, in layout order of the
    predecessors.  Recomputed on demand; not cached. *)

val iter_blocks : t -> (Block.t -> unit) -> unit

val static_insn_count : t -> int
(** Sum of {!Block.static_insn_count} over the layout. *)

val reachable : t -> (string, unit) Hashtbl.t
(** Labels reachable from the entry. *)

val pp : Format.formatter -> t -> unit
