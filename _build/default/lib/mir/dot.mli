(** Graphviz rendering of CFGs (for papersmithing and debugging; the CLI
    exposes it as [bromc compile --dot]). *)

val func : Format.formatter -> Func.t -> unit
(** One [digraph] per function: a record node per block listing its
    instructions, edges labelled T/F for branch arms and with the case
    index for jump tables. *)

val func_to_string : Func.t -> string

val program : Format.formatter -> Program.t -> unit
(** All functions as separate [digraph]s in one stream. *)
