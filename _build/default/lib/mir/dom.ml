(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm":
   iterative intersection over a reverse-postorder numbering. *)

type t = {
  order : string array;                  (* reverse postorder; order.(0) = entry *)
  number : (string, int) Hashtbl.t;
  idom : int array;                      (* idom.(i) = rpo index, or -1 *)
  succs : (string, string list) Hashtbl.t;
}

let reverse_postorder fn =
  let visited = Hashtbl.create 64 in
  let post = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      (match Func.find_block_opt fn label with
      | Some b -> List.iter dfs (Func.successors fn b)
      | None -> ());
      post := label :: !post
    end
  in
  (match fn.Func.blocks with
  | entry :: _ -> dfs entry.Block.label
  | [] -> ());
  Array.of_list !post

let compute fn =
  let order = reverse_postorder fn in
  let n = Array.length order in
  let number = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace number l i) order;
  let succs = Hashtbl.create n in
  let preds = Array.make n [] in
  Array.iteri
    (fun i label ->
      match Func.find_block_opt fn label with
      | None -> ()
      | Some b ->
        let ss = Func.successors fn b in
        Hashtbl.replace succs label ss;
        List.iter
          (fun s ->
            match Hashtbl.find_opt number s with
            | Some j -> preds.(j) <- i :: preds.(j)
            | None -> ())
          ss)
    order;
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    let rec intersect a b =
      if a = b then a
      else if a > b then intersect idom.(a) b
      else intersect a idom.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 1 to n - 1 do
        let processed = List.filter (fun p -> idom.(p) >= 0) preds.(i) in
        match processed with
        | [] -> ()
        | first :: rest ->
          let new_idom = List.fold_left intersect first rest in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
      done
    done
  end;
  { order; number; idom; succs }

let idom t label =
  match Hashtbl.find_opt t.number label with
  | None -> None
  | Some i ->
    if i = 0 || t.idom.(i) < 0 then None else Some t.order.(t.idom.(i))

let dominates t a b =
  match Hashtbl.find_opt t.number a, Hashtbl.find_opt t.number b with
  | Some ia, Some ib ->
    let rec walk i = if i = ia then true else if i = 0 then ia = 0 else walk t.idom.(i) in
    if t.idom.(ib) < 0 && ib <> 0 then false else walk ib
  | _ -> false

let dominators t label =
  match Hashtbl.find_opt t.number label with
  | None -> []
  | Some i ->
    if i <> 0 && t.idom.(i) < 0 then []
    else begin
      let rec up acc i =
        let acc = t.order.(i) :: acc in
        if i = 0 then List.rev acc else up acc t.idom.(i)
      in
      up [] i
    end

let dominance_frontier t label =
  match Hashtbl.find_opt t.number label with
  | None -> []
  | Some _ ->
    let out = ref [] in
    Array.iteri
      (fun i l ->
        (* l is in DF(label) if label dominates a predecessor of l but
           does not strictly dominate l *)
        ignore i;
        match Hashtbl.find_opt t.number l with
        | None -> ()
        | Some li ->
          if li <> 0 && t.idom.(li) < 0 then ()
          else
            let has_pred_dominated =
              Array.exists
                (fun p ->
                  match Hashtbl.find_opt t.succs p with
                  | Some ss -> List.mem l ss && dominates t label p
                  | None -> false)
                t.order
            in
            if
              has_pred_dominated
              && ((not (dominates t label l)) || String.equal label l)
            then out := l :: !out)
      t.order;
    List.rev !out
