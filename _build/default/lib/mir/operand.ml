type t =
  | Reg of Reg.t
  | Imm of int

let equal a b =
  match a, b with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Imm i1, Imm i2 -> Int.equal i1 i2
  | Reg _, Imm _ | Imm _, Reg _ -> false

let compare a b =
  match a, b with
  | Reg r1, Reg r2 -> Reg.compare r1 r2
  | Imm i1, Imm i2 -> Int.compare i1 i2
  | Reg _, Imm _ -> -1
  | Imm _, Reg _ -> 1

let pp ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Format.fprintf ppf "%d" i

let show o = Format.asprintf "%a" pp o
let reg n = Reg (Reg.of_int n)
let imm i = Imm i
let as_reg = function Reg r -> Some r | Imm _ -> None
let as_imm = function Imm i -> Some i | Reg _ -> None
