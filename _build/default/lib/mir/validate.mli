(** Well-formedness checks for MIR.

    Run after every construction or transformation in tests; the driver
    runs it after each pass when assertions are enabled.  Checks:

    - block labels are unique and every referenced label is defined;
    - jump-table entries reference defined labels;
    - the entry block exists;
    - every conditional branch is dominated by a [Cmp] (the condition
      codes are set on all paths from the entry);
    - delay slots contain no [Cmp], call, or control transfer;
    - [Switch] pseudo terminators only appear when [allow_switch] is set;
    - when [check_init] is set, no register is read before being written
      (entry live-in must be a subset of the parameters). *)

val func :
  ?allow_switch:bool -> ?check_init:bool -> Func.t -> (unit, string list) result

val program :
  ?allow_switch:bool -> ?check_init:bool -> Program.t -> (unit, string list) result

val check : ?allow_switch:bool -> ?check_init:bool -> Program.t -> unit
(** Like {!program} but raises [Failure] with a joined message. *)
