(** MIR instructions (non-terminator).

    Instructions are SPARC-like RTLs: three-address ALU operations, a
    compare that sets the condition-code register, word-addressed loads and
    stores against named globals, calls, and two profiling pseudo
    instructions that are free at run time and removed before measurement.

    Terminators (branches, jumps, returns) live in {!Block.term}. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated toward zero; division by zero traps in the simulator *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** arithmetic shift right *)

type unop = Neg | Not  (** [Not] is logical: [!x] is 1 if [x = 0] else 0 *)

type t =
  | Mov of Reg.t * Operand.t
  | Unop of unop * Reg.t * Operand.t
  | Binop of binop * Reg.t * Operand.t * Operand.t
  | Load of Reg.t * string * Operand.t
      (** [Load (r, sym, idx)] is [r <- M\[sym + idx\]] (word addressed) *)
  | Store of string * Operand.t * Operand.t
      (** [Store (sym, idx, v)] is [M\[sym + idx\] <- v] *)
  | Cmp of Operand.t * Operand.t  (** sets the condition codes *)
  | Call of Reg.t option * string * Operand.t list
  | Nop  (** an unfilled delay slot; executes and is counted *)
  | Profile_range of int * Reg.t
      (** pseudo: record the value of a sequence's branch variable
          (sequence id, variable register); zero cost, removed before
          measurement runs *)
  | Profile_comb of int
      (** pseudo: record the outcome combination of a common-successor
          branch sequence (sequence id); zero cost, removed before
          measurement runs *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

val eval_binop : binop -> int -> int -> int
(** Raises [Division_by_zero] for [Div]/[Rem] with zero divisor. *)

val eval_unop : unop -> int -> int

val defs : t -> Reg.t list
(** Registers written by the instruction. *)

val uses : t -> Reg.t list
(** Registers read by the instruction. *)

val is_pure : t -> bool
(** [is_pure i] holds when [i] only writes registers (no memory, I/O,
    condition codes or calls), so duplicating or deleting it when its
    results are dead is safe. *)

val is_profile : t -> bool
(** The two profiling pseudo instructions. *)

val has_side_effect : t -> bool
(** Writes memory, performs I/O via a call, or may trap.  Pure register
    writes and [Cmp] are not side effects in the paper's sense
    (Definition 6 concerns updates that reach uses outside the range
    condition; we approximate conservatively at the instruction level and
    let liveness refine register writes). *)
