(** Instruction operands: a register or an immediate constant. *)

type t =
  | Reg of Reg.t
  | Imm of int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

val reg : int -> t
(** [reg n] is [Reg (Reg.of_int n)]. *)

val imm : int -> t

val as_reg : t -> Reg.t option
val as_imm : t -> int option
