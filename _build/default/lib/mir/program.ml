type global = {
  gname : string;
  size : int;
  init : int array option;
}

type t = {
  mutable funcs : Func.t list;
  mutable globals : global list;
}

let make () = { funcs = []; globals = [] }
let add_func p f = p.funcs <- p.funcs @ [ f ]
let add_global p g = p.globals <- p.globals @ [ g ]

let find_func_opt p name =
  List.find_opt (fun f -> String.equal f.Func.name name) p.funcs

let find_func p name =
  match find_func_opt p name with
  | Some f -> f
  | None -> raise Not_found

let find_global_opt p name =
  List.find_opt (fun g -> String.equal g.gname name) p.globals

let string_words s =
  Array.init (String.length s + 1) (fun i ->
      if i < String.length s then Char.code s.[i] else 0)

let intern_string p s =
  let words = string_words s in
  let existing =
    List.find_opt
      (fun g ->
        match g.init with
        | Some init -> String.length g.gname > 4
                       && String.sub g.gname 0 4 = ".str"
                       && init = words
        | None -> false)
      p.globals
  in
  match existing with
  | Some g -> g.gname
  | None ->
    let name = Printf.sprintf ".str%d" (List.length p.globals) in
    add_global p { gname = name; size = Array.length words; init = Some words };
    name

let static_insn_count p =
  List.fold_left (fun acc f -> acc + Func.static_insn_count f) 0 p.funcs

let pp ppf p =
  List.iter
    (fun g ->
      match g.init with
      | None -> Format.fprintf ppf "global %s[%d]@\n" g.gname g.size
      | Some init ->
        Format.fprintf ppf "global %s[%d] = {%s}@\n" g.gname g.size
          (String.concat ", " (List.map string_of_int (Array.to_list init))))
    p.globals;
  List.iter (fun f -> Format.fprintf ppf "@\n%a" Func.pp f) p.funcs

let to_string p = Format.asprintf "%a" pp p
