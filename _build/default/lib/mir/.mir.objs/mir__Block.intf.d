lib/mir/block.pp.mli: Cond Format Insn Operand Reg
