lib/mir/dom.pp.mli: Func
