lib/mir/clone.pp.mli: Block Func Program
