lib/mir/reg.pp.ml: Format Int Map Set
