lib/mir/cond.pp.ml: Ppx_deriving_runtime
