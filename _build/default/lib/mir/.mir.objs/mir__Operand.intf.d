lib/mir/operand.pp.mli: Format Reg
