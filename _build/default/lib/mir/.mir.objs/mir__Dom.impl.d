lib/mir/dom.pp.ml: Array Block Func Hashtbl List String
