lib/mir/dot.pp.mli: Format Func Program
