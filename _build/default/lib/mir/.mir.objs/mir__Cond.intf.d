lib/mir/cond.pp.mli: Format
