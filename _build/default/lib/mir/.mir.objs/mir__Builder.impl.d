lib/mir/builder.pp.ml: Block Func Insn List Printf
