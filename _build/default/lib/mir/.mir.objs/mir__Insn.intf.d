lib/mir/insn.pp.mli: Format Operand Reg
