lib/mir/func.pp.mli: Block Format Hashtbl Reg
