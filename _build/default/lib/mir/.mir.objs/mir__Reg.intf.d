lib/mir/reg.pp.mli: Format Map Set
