lib/mir/validate.pp.ml: Array Block Func Hashtbl Insn List Liveness Printf Program Reg String
