lib/mir/func.pp.ml: Array Block Format Hashtbl List Printf Reg String
