lib/mir/program.pp.ml: Array Char Format Func List Printf String
