lib/mir/liveness.pp.ml: Block Func Hashtbl Insn List Operand Reg
