lib/mir/parse.pp.mli: Func Program
