lib/mir/liveness.pp.mli: Block Func Reg
