lib/mir/block.pp.ml: Array Cond Format Insn List Operand Option Reg String
