lib/mir/program.pp.mli: Format Func
