lib/mir/dot.pp.ml: Array Block Buffer Cond Format Func Hashtbl Insn List Operand Program String
