lib/mir/insn.pp.ml: Format List Operand Option Reg String
