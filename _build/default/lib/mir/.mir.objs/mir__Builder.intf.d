lib/mir/builder.pp.mli: Cond Func Insn Operand Reg
