lib/mir/operand.pp.ml: Format Int Reg
