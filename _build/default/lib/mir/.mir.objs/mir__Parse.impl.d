lib/mir/parse.pp.ml: Array Block Cond Func Insn List Liveness Operand Option Printf Program Reg String
