lib/mir/loops.pp.ml: Array Block Dom Func Hashtbl List String
