lib/mir/clone.pp.ml: Array Block Func List Program
