lib/mir/validate.pp.mli: Func Program
