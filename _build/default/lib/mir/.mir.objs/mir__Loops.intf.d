lib/mir/loops.pp.mli: Func
