type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type unop = Neg | Not

type t =
  | Mov of Reg.t * Operand.t
  | Unop of unop * Reg.t * Operand.t
  | Binop of binop * Reg.t * Operand.t * Operand.t
  | Load of Reg.t * string * Operand.t
  | Store of string * Operand.t * Operand.t
  | Cmp of Operand.t * Operand.t
  | Call of Reg.t option * string * Operand.t list
  | Nop
  | Profile_range of int * Reg.t
  | Profile_comb of int

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "sll"
  | Shr -> "sra"

let unop_name = function Neg -> "neg" | Not -> "not"

let equal a b =
  match a, b with
  | Mov (r1, o1), Mov (r2, o2) -> Reg.equal r1 r2 && Operand.equal o1 o2
  | Unop (u1, r1, o1), Unop (u2, r2, o2) ->
    u1 = u2 && Reg.equal r1 r2 && Operand.equal o1 o2
  | Binop (b1, r1, x1, y1), Binop (b2, r2, x2, y2) ->
    b1 = b2 && Reg.equal r1 r2 && Operand.equal x1 x2 && Operand.equal y1 y2
  | Load (r1, s1, o1), Load (r2, s2, o2) ->
    Reg.equal r1 r2 && String.equal s1 s2 && Operand.equal o1 o2
  | Store (s1, i1, v1), Store (s2, i2, v2) ->
    String.equal s1 s2 && Operand.equal i1 i2 && Operand.equal v1 v2
  | Cmp (x1, y1), Cmp (x2, y2) -> Operand.equal x1 x2 && Operand.equal y1 y2
  | Call (r1, f1, a1), Call (r2, f2, a2) ->
    Option.equal Reg.equal r1 r2
    && String.equal f1 f2
    && List.equal Operand.equal a1 a2
  | Nop, Nop -> true
  | Profile_range (i1, r1), Profile_range (i2, r2) -> i1 = i2 && Reg.equal r1 r2
  | Profile_comb i1, Profile_comb i2 -> i1 = i2
  | ( ( Mov _ | Unop _ | Binop _ | Load _ | Store _ | Cmp _ | Call _ | Nop
      | Profile_range _ | Profile_comb _ ),
      _ ) ->
    false

let pp ppf = function
  | Mov (r, o) -> Format.fprintf ppf "%a = %a" Reg.pp r Operand.pp o
  | Unop (u, r, o) ->
    Format.fprintf ppf "%a = %s %a" Reg.pp r (unop_name u) Operand.pp o
  | Binop (b, r, x, y) ->
    Format.fprintf ppf "%a = %s %a, %a" Reg.pp r (binop_name b) Operand.pp x
      Operand.pp y
  | Load (r, s, i) ->
    Format.fprintf ppf "%a = M[%s + %a]" Reg.pp r s Operand.pp i
  | Store (s, i, v) ->
    Format.fprintf ppf "M[%s + %a] = %a" s Operand.pp i Operand.pp v
  | Cmp (x, y) -> Format.fprintf ppf "cmp %a, %a" Operand.pp x Operand.pp y
  | Call (None, f, args) ->
    Format.fprintf ppf "call %s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Operand.pp)
      args
  | Call (Some r, f, args) ->
    Format.fprintf ppf "%a = call %s(%a)" Reg.pp r f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Operand.pp)
      args
  | Nop -> Format.fprintf ppf "nop"
  | Profile_range (id, r) ->
    Format.fprintf ppf "profile_range #%d, %a" id Reg.pp r
  | Profile_comb id -> Format.fprintf ppf "profile_comb #%d" id

let show i = Format.asprintf "%a" pp i

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Division_by_zero else a / b
  | Rem -> if b = 0 then raise Division_by_zero else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)

let eval_unop op a =
  match op with
  | Neg -> -a
  | Not -> if a = 0 then 1 else 0

let defs = function
  | Mov (r, _) | Unop (_, r, _) | Binop (_, r, _, _) | Load (r, _, _) -> [ r ]
  | Call (Some r, _, _) -> [ r ]
  | Store _ | Cmp _ | Call (None, _, _) | Nop | Profile_range _ | Profile_comb _
    ->
    []

let op_uses o = match Operand.as_reg o with Some r -> [ r ] | None -> []

let uses = function
  | Mov (_, o) | Unop (_, _, o) | Load (_, _, o) -> op_uses o
  | Binop (_, _, x, y) | Cmp (x, y) -> op_uses x @ op_uses y
  | Store (_, i, v) -> op_uses i @ op_uses v
  | Call (_, _, args) -> List.concat_map op_uses args
  | Nop -> []
  | Profile_range (_, r) -> [ r ]
  | Profile_comb _ -> []

let is_pure = function
  | Mov _ | Unop _ -> true
  | Binop ((Div | Rem), _, _, _) -> false (* may trap *)
  | Binop _ -> true
  | Load _ -> true (* memory is not mutated; reads cannot trap here *)
  | Store _ | Cmp _ | Call _ | Nop | Profile_range _ | Profile_comb _ -> false

let is_profile = function
  | Profile_range _ | Profile_comb _ -> true
  | Mov _ | Unop _ | Binop _ | Load _ | Store _ | Cmp _ | Call _ | Nop -> false

let has_side_effect = function
  | Store _ | Call _ -> true
  | Binop ((Div | Rem), _, _, _) -> true
  | Mov _ | Unop _ | Binop _ | Load _ | Cmp _ | Nop | Profile_range _
  | Profile_comb _ ->
    false
