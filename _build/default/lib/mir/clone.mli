(** Deep copies of MIR (blocks are mutable, so the driver clones the
    optimized base program before instrumenting or transforming it). *)

val block : Block.t -> Block.t
val func : Func.t -> Func.t
val program : Program.t -> Program.t
