(** Basic blocks and terminators.

    A block is a label, a list of straight-line instructions and exactly one
    terminator.  Fall-through is explicit: a conditional branch names both
    its taken and its not-taken successor, and the code-layout pass decides
    which successors become physical fall-throughs (the simulator charges an
    extra jump instruction when a not-taken edge does not fall through; see
    {!Layout}). *)

type term_kind =
  | Br of Cond.t * string * string
      (** [Br (c, taken, not_taken)]: conditional branch on the condition
          codes set by the dominating [Cmp]. *)
  | Jmp of string
  | Switch of Reg.t * (int * string) list * string
      (** front-end pseudo terminator: value, (case, target) list, default.
          Must be lowered by {!Mopt.Switch_lower} before simulation. *)
  | Jtab of Reg.t * int
      (** [Jtab (r, tbl)]: indirect jump through jump table [tbl] of the
          enclosing function; [r] must be in-bounds (the switch lowering
          emits the bounds check). *)
  | Ret of Operand.t option

type term = {
  kind : term_kind;
  mutable delay : Insn.t option;
      (** SPARC-style delay slot, filled by {!Mopt.Delay_slot}; [None]
          means an architectural nop occupies the slot. *)
  mutable annul : bool;
      (** SPARC "branch,a": the delay instruction executes only when the
          branch is taken (used when the slot was filled by stealing the
          taken target's first instruction). *)
}

type t = {
  label : string;
  mutable insns : Insn.t list;
  mutable term : term;
}

val make : label:string -> Insn.t list -> term_kind -> t
val term : term_kind -> term

val successors : jtab:(int -> string array) -> t -> string list
(** Successor labels in deterministic order (taken before not-taken);
    [jtab] resolves jump-table ids to their target arrays. *)

val equal_term_kind : term_kind -> term_kind -> bool
val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> t -> unit

val static_insn_count : layout_next:string option -> t -> int
(** Number of machine instructions the block assembles to, given the label
    of the block laid out immediately after it: body instructions plus the
    terminator (a [Jmp] to the fall-through block assembles to nothing; any
    emitted branch or jump also occupies one delay slot, counted here as an
    instruction whether filled or nop). *)
