let err errors fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt

let check_labels errors (f : Func.t) =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let l = b.Block.label in
      if Hashtbl.mem seen l then err errors "%s: duplicate label %s" f.Func.name l;
      Hashtbl.replace seen l ())
    f.Func.blocks;
  let check_target ctx l =
    if not (Hashtbl.mem seen l) then
      err errors "%s: %s references undefined label %s" f.Func.name ctx l
  in
  List.iter
    (fun b ->
      let ctx = b.Block.label in
      match b.Block.term.kind with
      | Block.Br (_, taken, not_taken) ->
        check_target ctx taken;
        check_target ctx not_taken
      | Block.Jmp l -> check_target ctx l
      | Block.Switch (_, cases, default) ->
        List.iter (fun (_, l) -> check_target ctx l) cases;
        check_target ctx default
      | Block.Jtab (_, id) -> (
        match List.nth_opt f.Func.jtables id with
        | None -> err errors "%s: %s references undefined jump table %d" f.Func.name ctx id
        | Some targets -> Array.iter (check_target (ctx ^ " (table)")) targets)
      | Block.Ret _ -> ())
    f.Func.blocks

let check_switch errors allow_switch (f : Func.t) =
  if not allow_switch then
    List.iter
      (fun b ->
        match b.Block.term.kind with
        | Block.Switch _ ->
          err errors "%s: %s has an unlowered switch terminator" f.Func.name
            b.Block.label
        | Block.Br _ | Block.Jmp _ | Block.Jtab _ | Block.Ret _ -> ())
      f.Func.blocks

let check_delay errors (f : Func.t) =
  List.iter
    (fun b ->
      match b.Block.term.delay with
      | None -> ()
      | Some (Insn.Cmp _) ->
        err errors "%s: %s delay slot contains a cmp" f.Func.name b.Block.label
      | Some (Insn.Call _) ->
        err errors "%s: %s delay slot contains a call" f.Func.name b.Block.label
      | Some
          ( Insn.Mov _ | Insn.Unop _ | Insn.Binop _ | Insn.Load _ | Insn.Store _
          | Insn.Nop | Insn.Profile_range _ | Insn.Profile_comb _ ) ->
        ())
    f.Func.blocks

(* Forward "condition codes defined" dataflow: a Br is valid only if every
   path from the entry sets the codes with a Cmp first. *)
let check_cc errors (f : Func.t) =
  match f.Func.blocks with
  | [] -> err errors "%s: function has no blocks" f.Func.name
  | entry :: _ ->
    let cc_in = Hashtbl.create 64 in
    (* true = cc known defined on entry; start optimistic (true) everywhere
       except the entry, standard for a "must" analysis *)
    List.iter (fun b -> Hashtbl.replace cc_in b.Block.label true) f.Func.blocks;
    Hashtbl.replace cc_in entry.Block.label false;
    let block_out b =
      let inn = Hashtbl.find cc_in b.Block.label in
      inn || List.exists (function Insn.Cmp _ -> true | _ -> false) b.Block.insns
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          let out = block_out b in
          List.iter
            (fun s ->
              match Hashtbl.find_opt cc_in s with
              | Some old when old && not out ->
                if not (String.equal s entry.Block.label) then begin
                  Hashtbl.replace cc_in s false;
                  changed := true
                end
              | Some _ | None -> ())
            (Func.successors f b))
        f.Func.blocks
    done;
    let reachable = Func.reachable f in
    List.iter
      (fun b ->
        match b.Block.term.kind with
        | Block.Br _ when Hashtbl.mem reachable b.Block.label ->
          if not (block_out b) then
            err errors "%s: branch in %s not dominated by a cmp" f.Func.name
              b.Block.label
        | Block.Br _ | Block.Jmp _ | Block.Switch _ | Block.Jtab _ | Block.Ret _
          ->
          ())
      f.Func.blocks

let check_init_regs errors (f : Func.t) =
  let live = Liveness.compute f in
  match f.Func.blocks with
  | [] -> ()
  | entry :: _ ->
    let params = Reg.Set.of_list f.Func.params in
    let undefined = Reg.Set.diff (Liveness.live_in live entry.Block.label) params in
    if not (Reg.Set.is_empty undefined) then
      err errors "%s: registers possibly read before written: %s" f.Func.name
        (String.concat ", "
           (List.map Reg.show (Reg.Set.elements undefined)))

let func ?(allow_switch = false) ?(check_init = false) f =
  let errors = ref [] in
  check_labels errors f;
  check_switch errors allow_switch f;
  check_delay errors f;
  if !errors = [] then check_cc errors f;
  if check_init && !errors = [] then check_init_regs errors f;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let program ?allow_switch ?check_init (p : Program.t) =
  let all_errors =
    List.concat_map
      (fun f ->
        match func ?allow_switch ?check_init f with
        | Ok () -> []
        | Error es -> es)
      p.Program.funcs
  in
  match all_errors with [] -> Ok () | es -> Error es

let check ?allow_switch ?check_init p =
  match program ?allow_switch ?check_init p with
  | Ok () -> ()
  | Error es -> failwith ("MIR validation failed:\n  " ^ String.concat "\n  " es)
