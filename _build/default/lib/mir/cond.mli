(** Condition codes for conditional branches.

    A [Cmp (a, b)] instruction records the pair [(a, b)] in the machine's
    single condition-code register; a following branch on condition [c] is
    taken iff [eval c a b] holds.  This mirrors the SPARC integer condition
    codes used by the paper's vpo back end. *)

type t =
  | Eq  (** [a = b] *)
  | Ne  (** [a <> b] *)
  | Lt  (** [a < b], signed *)
  | Le  (** [a <= b], signed *)
  | Gt  (** [a > b], signed *)
  | Ge  (** [a >= b], signed *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

val negate : t -> t
(** [negate c] is the condition holding exactly when [c] does not. *)

val swap : t -> t
(** [swap c] is the condition such that [eval (swap c) b a = eval c a b]. *)

val eval : t -> int -> int -> bool
(** [eval c a b] evaluates [a c b]. *)

val mnemonic : t -> string
(** SPARC-flavoured branch mnemonic, e.g. ["be"] for [Eq]. *)
