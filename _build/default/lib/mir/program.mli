(** A MIR program: functions plus global data.

    Globals are word-addressed integer arrays (a scalar global is an array
    of size one).  String data is stored as one character per word with a
    terminating zero, matching the MiniC front end's view of strings. *)

type global = {
  gname : string;
  size : int;
  init : int array option;  (** [None] means zero-initialised *)
}

type t = {
  mutable funcs : Func.t list;
  mutable globals : global list;
}

val make : unit -> t
val add_func : t -> Func.t -> unit
val add_global : t -> global -> unit
val find_func : t -> string -> Func.t
val find_func_opt : t -> string -> Func.t option
val find_global_opt : t -> string -> global option

val intern_string : t -> string -> string
(** [intern_string p s] returns the name of a global holding [s] as a
    zero-terminated word array, creating (and deduplicating) it. *)

val static_insn_count : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
