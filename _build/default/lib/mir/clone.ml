let block (b : Block.t) =
  {
    Block.label = b.Block.label;
    insns = b.Block.insns;
    term = { b.Block.term with Block.kind = b.Block.term.Block.kind };
  }

let func (f : Func.t) =
  {
    Func.name = f.Func.name;
    params = f.Func.params;
    blocks = List.map block f.Func.blocks;
    jtables = List.map Array.copy f.Func.jtables;
    next_reg = f.Func.next_reg;
    next_label = f.Func.next_label;
  }

let program (p : Program.t) =
  {
    Program.funcs = List.map func p.Program.funcs;
    globals = p.Program.globals;
  }
