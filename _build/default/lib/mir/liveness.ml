type t = {
  live_in : (string, Reg.Set.t) Hashtbl.t;
  live_out : (string, Reg.Set.t) Hashtbl.t;
}

let term_uses (t : Block.term) =
  let kind_uses =
    match t.Block.kind with
    | Block.Br _ | Block.Jmp _ -> []
    | Block.Switch (r, _, _) | Block.Jtab (r, _) -> [ r ]
    | Block.Ret (Some o) -> (
      match Operand.as_reg o with Some r -> [ r ] | None -> [])
    | Block.Ret None -> []
  in
  let delay_uses =
    match t.Block.delay with Some i -> Insn.uses i | None -> []
  in
  kind_uses @ delay_uses

let term_defs (t : Block.term) =
  (* an annulled slot defines its register only on the taken path, so it
     cannot be treated as a kill across both edges *)
  match t.Block.delay with
  | Some i when not t.Block.annul -> Insn.defs i
  | Some _ | None -> []

(* Transfer function for one block: live_in = gen U (live_out \ kill),
   computed by walking instructions backwards.  The terminator's uses are
   consumed first (it executes last). *)
let block_live_in (b : Block.t) out =
  let live = ref out in
  (* delay-slot defs happen after the branch decision but before control
     reaches the successor, so they kill across the edge *)
  List.iter (fun r -> live := Reg.Set.remove r !live) (term_defs b.Block.term);
  List.iter (fun r -> live := Reg.Set.add r !live) (term_uses b.Block.term);
  List.iter
    (fun i ->
      List.iter (fun r -> live := Reg.Set.remove r !live) (Insn.defs i);
      List.iter (fun r -> live := Reg.Set.add r !live) (Insn.uses i))
    (List.rev b.Block.insns);
  !live

let compute (f : Func.t) =
  let live_in = Hashtbl.create 64 in
  let live_out = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.replace live_in b.Block.label Reg.Set.empty;
      Hashtbl.replace live_out b.Block.label Reg.Set.empty)
    f.Func.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse layout order converges quickly for reducible CFGs *)
    List.iter
      (fun b ->
        let out =
          List.fold_left
            (fun acc s ->
              match Hashtbl.find_opt live_in s with
              | Some set -> Reg.Set.union acc set
              | None -> acc)
            Reg.Set.empty (Func.successors f b)
        in
        let inn = block_live_in b out in
        let old_in = Hashtbl.find live_in b.Block.label in
        Hashtbl.replace live_out b.Block.label out;
        if not (Reg.Set.equal inn old_in) then begin
          Hashtbl.replace live_in b.Block.label inn;
          changed := true
        end)
      (List.rev f.Func.blocks)
  done;
  { live_in; live_out }

let live_in t label =
  try Hashtbl.find t.live_in label with Not_found -> Reg.Set.empty

let live_out t label =
  try Hashtbl.find t.live_out label with Not_found -> Reg.Set.empty
