(** Backward liveness analysis over a function's CFG.

    Used by dead-code elimination, the delay-slot filler, and the
    reordering pass's side-effect reasoning.  Delay-slot instructions are
    treated as part of the terminator: their uses count, and their defs are
    visible to all successors. *)

type t

val compute : Func.t -> t

val live_in : t -> string -> Reg.Set.t
(** Registers live on entry to the labelled block. *)

val live_out : t -> string -> Reg.Set.t
(** Registers live on exit from the labelled block (before the
    terminator's uses are added). *)

val term_uses : Block.term -> Reg.t list
(** Registers read by a terminator (switch/jtab scrutinee, return value,
    delay-slot uses). *)
