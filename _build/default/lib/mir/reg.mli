(** Virtual registers.

    Registers are function-local and unbounded in number; the simulator
    allocates one slot per register id, so there is no register allocator
    (the paper's measurements are of RTL-level instructions, which map one
    to one onto our instructions). *)

type t = private int

val of_int : int -> t
(** [of_int n] is the register with id [n].  Raises [Invalid_argument] if
    [n < 0]. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
