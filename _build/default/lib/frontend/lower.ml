module B = Mir.Builder

type loop_ctx = {
  break_to : string option;
  continue_to : string option;
}

type env = {
  prog : Mir.Program.t;
  info : Sema.info;
  b : B.t;
  mutable vars : (string * Mir.Reg.t) list list;  (** scope stack *)
  mutable loops : loop_ctx list;
}

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some r -> Some r
      | None -> go rest)
  in
  go env.vars

let declare_var env name =
  let r = B.fresh_reg env.b in
  (match env.vars with
  | scope :: rest -> env.vars <- ((name, r) :: scope) :: rest
  | [] -> env.vars <- [ [ (name, r) ] ]);
  r

let is_global_scalar env name =
  match lookup_var env name with
  | Some _ -> false
  | None -> List.mem_assoc name env.info.Sema.globals

let ast_binop_to_mir : Ast.binop -> Mir.Insn.binop option = function
  | Ast.Add -> Some Mir.Insn.Add
  | Ast.Sub -> Some Mir.Insn.Sub
  | Ast.Mul -> Some Mir.Insn.Mul
  | Ast.Div -> Some Mir.Insn.Div
  | Ast.Rem -> Some Mir.Insn.Rem
  | Ast.BAnd -> Some Mir.Insn.And
  | Ast.BOr -> Some Mir.Insn.Or
  | Ast.BXor -> Some Mir.Insn.Xor
  | Ast.Shl -> Some Mir.Insn.Shl
  | Ast.Shr -> Some Mir.Insn.Shr
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.LAnd | Ast.LOr ->
    None

let comparison_cond : Ast.binop -> Mir.Cond.t option = function
  | Ast.Eq -> Some Mir.Cond.Eq
  | Ast.Ne -> Some Mir.Cond.Ne
  | Ast.Lt -> Some Mir.Cond.Lt
  | Ast.Le -> Some Mir.Cond.Le
  | Ast.Gt -> Some Mir.Cond.Gt
  | Ast.Ge -> Some Mir.Cond.Ge
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_expr env (e : Ast.expr) : Mir.Operand.t =
  match e.desc with
  | Ast.Num n -> Mir.Operand.Imm n
  | Ast.Var "EOF" -> Mir.Operand.Imm (-1)
  | Ast.Var name -> (
    match lookup_var env name with
    | Some r -> Mir.Operand.Reg r
    | None ->
      (* global scalar *)
      let r = B.fresh_reg env.b in
      B.insn env.b (Mir.Insn.Load (r, name, Mir.Operand.Imm 0));
      Mir.Operand.Reg r)
  | Ast.Index (name, idx) ->
    let idx_op = lower_expr env idx in
    let r = B.fresh_reg env.b in
    B.insn env.b (Mir.Insn.Load (r, name, idx_op));
    Mir.Operand.Reg r
  | Ast.Str _ ->
    (* sema restricts string literals to puts/print_str arguments *)
    assert false
  | Ast.Call (name, args) -> lower_call env ~want_value:true name args
  | Ast.Unary (Ast.Neg, inner) -> (
    match lower_expr env inner with
    | Mir.Operand.Imm n -> Mir.Operand.Imm (-n)
    | op ->
      let r = B.fresh_reg env.b in
      B.insn env.b (Mir.Insn.Unop (Mir.Insn.Neg, r, op));
      Mir.Operand.Reg r)
  | Ast.Unary (Ast.BNot, inner) -> (
    match lower_expr env inner with
    | Mir.Operand.Imm n -> Mir.Operand.Imm (lnot n)
    | op ->
      let r = B.fresh_reg env.b in
      B.insn env.b
        (Mir.Insn.Binop (Mir.Insn.Xor, r, op, Mir.Operand.Imm (-1)));
      Mir.Operand.Reg r)
  | Ast.Unary (Ast.LNot, _) | Ast.Binary ((Ast.LAnd | Ast.LOr), _, _) ->
    materialize_bool env e
  | Ast.Binary (op, a, b) -> (
    match comparison_cond op with
    | Some _ -> materialize_bool env e
    | None -> (
      let mir_op = Option.get (ast_binop_to_mir op) in
      let va = lower_expr env a in
      let vb = lower_expr env b in
      match va, vb, mir_op with
      | Mir.Operand.Imm _, Mir.Operand.Imm y, (Mir.Insn.Div | Mir.Insn.Rem)
        when y = 0 ->
        (* keep the trap at run time *)
        let r = B.fresh_reg env.b in
        B.insn env.b (Mir.Insn.Binop (mir_op, r, va, vb));
        Mir.Operand.Reg r
      | Mir.Operand.Imm x, Mir.Operand.Imm y, _ ->
        Mir.Operand.Imm (Mir.Insn.eval_binop mir_op x y)
      | _ ->
        let r = B.fresh_reg env.b in
        B.insn env.b (Mir.Insn.Binop (mir_op, r, va, vb));
        Mir.Operand.Reg r))
  | Ast.Assign (lv, rhs) -> (
    let v = lower_expr env rhs in
    store_lvalue env lv v;
    (* read the value back through the lvalue's register where possible,
       so every later comparison of the variable uses one register (the
       sequence detector unifies conditions by register) *)
    match lv with
    | Ast.Lvar name -> (
      match lookup_var env name with
      | Some r -> Mir.Operand.Reg r
      | None -> v)
    | Ast.Lindex _ -> v)
  | Ast.Op_assign (op, lv, rhs) -> (
    let mir_op = Option.get (ast_binop_to_mir op) in
    let rhs_v = lower_expr env rhs in
    let old_v = load_lvalue env lv in
    match lv with
    | Ast.Lvar name when lookup_var env name <> None ->
      let r = Option.get (lookup_var env name) in
      B.insn env.b (Mir.Insn.Binop (mir_op, r, old_v, rhs_v));
      Mir.Operand.Reg r
    | Ast.Lvar _ | Ast.Lindex _ ->
      let r = B.fresh_reg env.b in
      B.insn env.b (Mir.Insn.Binop (mir_op, r, old_v, rhs_v));
      store_lvalue env lv (Mir.Operand.Reg r);
      Mir.Operand.Reg r)
  | Ast.Incr { pre; up; lv } -> (
    let op = if up then Mir.Insn.Add else Mir.Insn.Sub in
    match lv with
    | Ast.Lvar name when lookup_var env name <> None ->
      let r = Option.get (lookup_var env name) in
      if pre then begin
        B.insn env.b
          (Mir.Insn.Binop (op, r, Mir.Operand.Reg r, Mir.Operand.Imm 1));
        Mir.Operand.Reg r
      end
      else begin
        let keep = B.fresh_reg env.b in
        B.insn env.b (Mir.Insn.Mov (keep, Mir.Operand.Reg r));
        B.insn env.b
          (Mir.Insn.Binop (op, r, Mir.Operand.Reg r, Mir.Operand.Imm 1));
        Mir.Operand.Reg keep
      end
    | Ast.Lvar _ | Ast.Lindex _ ->
      let old_v = load_lvalue env lv in
      let r = B.fresh_reg env.b in
      B.insn env.b (Mir.Insn.Binop (op, r, old_v, Mir.Operand.Imm 1));
      let result =
        if pre then Mir.Operand.Reg r
        else
          match old_v with
          | Mir.Operand.Imm _ -> old_v
          | Mir.Operand.Reg old_r ->
            let keep = B.fresh_reg env.b in
            B.insn env.b (Mir.Insn.Mov (keep, Mir.Operand.Reg old_r));
            Mir.Operand.Reg keep
      in
      store_lvalue env lv (Mir.Operand.Reg r);
      result)
  | Ast.Ternary (c, t, f) ->
    let result = B.fresh_reg env.b in
    let l_true = B.new_label env.b in
    let l_false = B.new_label env.b in
    let l_join = B.new_label env.b in
    lower_cond env c ~ltrue:l_true ~lfalse:l_false;
    B.set_label env.b l_true;
    let tv = lower_expr env t in
    B.insn env.b (Mir.Insn.Mov (result, tv));
    B.jmp env.b l_join;
    B.set_label env.b l_false;
    let fv = lower_expr env f in
    B.insn env.b (Mir.Insn.Mov (result, fv));
    B.set_label env.b l_join;
    Mir.Operand.Reg result

and materialize_bool env e =
  let result = B.fresh_reg env.b in
  let l_true = B.new_label env.b in
  let l_false = B.new_label env.b in
  let l_join = B.new_label env.b in
  lower_cond env e ~ltrue:l_true ~lfalse:l_false;
  B.set_label env.b l_true;
  B.insn env.b (Mir.Insn.Mov (result, Mir.Operand.Imm 1));
  B.jmp env.b l_join;
  B.set_label env.b l_false;
  B.insn env.b (Mir.Insn.Mov (result, Mir.Operand.Imm 0));
  B.set_label env.b l_join;
  Mir.Operand.Reg result

and load_lvalue env = function
  | Ast.Lvar name -> lower_expr env { Ast.desc = Ast.Var name; eloc = Srcloc.dummy }
  | Ast.Lindex (name, idx) ->
    lower_expr env { Ast.desc = Ast.Index (name, idx); eloc = Srcloc.dummy }

and store_lvalue env lv v =
  match lv with
  | Ast.Lvar name -> (
    match lookup_var env name with
    | Some r -> B.insn env.b (Mir.Insn.Mov (r, v))
    | None ->
      assert (is_global_scalar env name);
      B.insn env.b (Mir.Insn.Store (name, Mir.Operand.Imm 0, v)))
  | Ast.Lindex (name, idx) ->
    let idx_op = lower_expr env idx in
    B.insn env.b (Mir.Insn.Store (name, idx_op, v))

and lower_call env ~want_value name args =
  match name, args with
  | ("puts" | "print_str"), [ arg ] ->
    let sym =
      match arg.Ast.desc with
      | Ast.Str s -> Mir.Program.intern_string env.prog s
      | Ast.Var a -> a
      | _ -> assert false
    in
    emit_string_output env sym ~newline:(String.equal name "puts");
    Mir.Operand.Imm 0
  | _ ->
    let arg_ops = List.map (lower_expr env) args in
    let fi = List.assoc name env.info.Sema.funcs in
    let dst =
      if fi.Sema.fi_returns_value || want_value then Some (B.fresh_reg env.b)
      else None
    in
    B.insn env.b (Mir.Insn.Call (dst, name, arg_ops));
    (match dst with
    | Some r -> Mir.Operand.Reg r
    | None -> Mir.Operand.Imm 0)

(* evaluate a value-returning call's arguments without emitting the call
   itself, so the caller can direct the result register *)
and lower_call_args env (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Call (fname, args)
    when not (String.equal fname "puts" || String.equal fname "print_str") ->
    let fi = List.assoc fname env.info.Sema.funcs in
    if fi.Sema.fi_returns_value then
      Some (fname, List.map (lower_expr env) args)
    else None
  | _ -> None

and emit_string_output env sym ~newline =
  (* idx = 0; while ((c = sym[idx]) != 0) { putchar(c); idx++; } *)
  let idx = B.fresh_reg env.b in
  let c = B.fresh_reg env.b in
  let l_head = B.new_label env.b in
  let l_body = B.new_label env.b in
  let l_done = B.new_label env.b in
  B.insn env.b (Mir.Insn.Mov (idx, Mir.Operand.Imm 0));
  B.set_label env.b l_head;
  B.insn env.b (Mir.Insn.Load (c, sym, Mir.Operand.Reg idx));
  B.insn env.b (Mir.Insn.Cmp (Mir.Operand.Reg c, Mir.Operand.Imm 0));
  B.branch_to env.b Mir.Cond.Eq ~taken:l_done ~not_taken:l_body;
  B.set_label env.b l_body;
  B.insn env.b (Mir.Insn.Call (None, "putchar", [ Mir.Operand.Reg c ]));
  B.insn env.b
    (Mir.Insn.Binop (Mir.Insn.Add, idx, Mir.Operand.Reg idx, Mir.Operand.Imm 1));
  B.jmp env.b l_head;
  B.set_label env.b l_done;
  if newline then
    B.insn env.b (Mir.Insn.Call (None, "putchar", [ Mir.Operand.Imm 10 ]))

(* ------------------------------------------------------------------ *)
(* Conditions (branch context)                                         *)
(* ------------------------------------------------------------------ *)

and lower_cond env (e : Ast.expr) ~ltrue ~lfalse =
  match e.desc with
  | Ast.Num n -> B.jmp env.b (if n <> 0 then ltrue else lfalse)
  | Ast.Var "EOF" -> B.jmp env.b ltrue (* EOF = -1, always truthy *)
  | Ast.Unary (Ast.LNot, inner) -> lower_cond env inner ~ltrue:lfalse ~lfalse:ltrue
  | Ast.Binary (Ast.LAnd, a, b) ->
    let l_mid = B.new_label env.b in
    lower_cond env a ~ltrue:l_mid ~lfalse;
    B.set_label env.b l_mid;
    lower_cond env b ~ltrue ~lfalse
  | Ast.Binary (Ast.LOr, a, b) ->
    let l_mid = B.new_label env.b in
    lower_cond env a ~ltrue ~lfalse:l_mid;
    B.set_label env.b l_mid;
    lower_cond env b ~ltrue ~lfalse
  | Ast.Binary (op, a, b) when comparison_cond op <> None ->
    let cond = Option.get (comparison_cond op) in
    let va = lower_expr env a in
    let vb = lower_expr env b in
    (* keep the variable on the left so detection sees cmp reg, imm *)
    let va, vb, cond =
      match va, vb with
      | Mir.Operand.Imm _, Mir.Operand.Reg _ -> vb, va, Mir.Cond.swap cond
      | _ -> va, vb, cond
    in
    B.insn env.b (Mir.Insn.Cmp (va, vb));
    B.branch_to env.b cond ~taken:ltrue ~not_taken:lfalse
  | _ ->
    let v = lower_expr env e in
    B.insn env.b (Mir.Insn.Cmp (v, Mir.Operand.Imm 0));
    B.branch_to env.b Mir.Cond.Ne ~taken:ltrue ~not_taken:lfalse

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt env (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Sexpr { Ast.desc = Ast.Call (name, args); _ } ->
    ignore (lower_call env ~want_value:false name args)
  | Ast.Sexpr e -> ignore (lower_expr env e)
  | Ast.Sif (c, then_s, else_s) -> (
    let l_then = B.new_label env.b in
    let l_join = B.new_label env.b in
    match else_s with
    | None ->
      lower_cond env c ~ltrue:l_then ~lfalse:l_join;
      B.set_label env.b l_then;
      lower_stmt env then_s;
      B.set_label env.b l_join
    | Some else_s ->
      let l_else = B.new_label env.b in
      lower_cond env c ~ltrue:l_then ~lfalse:l_else;
      B.set_label env.b l_then;
      lower_stmt env then_s;
      B.jmp env.b l_join;
      B.set_label env.b l_else;
      lower_stmt env else_s;
      B.set_label env.b l_join)
  | Ast.Swhile (c, body) ->
    let l_head = B.new_label env.b in
    let l_body = B.new_label env.b in
    let l_exit = B.new_label env.b in
    B.set_label env.b l_head;
    lower_cond env c ~ltrue:l_body ~lfalse:l_exit;
    B.set_label env.b l_body;
    env.loops <-
      { break_to = Some l_exit; continue_to = Some l_head } :: env.loops;
    lower_stmt env body;
    env.loops <- List.tl env.loops;
    B.jmp env.b l_head;
    B.set_label env.b l_exit
  | Ast.Sdo (body, c) ->
    let l_body = B.new_label env.b in
    let l_cond = B.new_label env.b in
    let l_exit = B.new_label env.b in
    B.set_label env.b l_body;
    env.loops <-
      { break_to = Some l_exit; continue_to = Some l_cond } :: env.loops;
    lower_stmt env body;
    env.loops <- List.tl env.loops;
    B.set_label env.b l_cond;
    lower_cond env c ~ltrue:l_body ~lfalse:l_exit;
    B.set_label env.b l_exit
  | Ast.Sfor (init, cond, step, body) ->
    let l_head = B.new_label env.b in
    let l_body = B.new_label env.b in
    let l_step = B.new_label env.b in
    let l_exit = B.new_label env.b in
    Option.iter (fun e -> ignore (lower_expr env e)) init;
    B.set_label env.b l_head;
    (match cond with
    | Some c -> lower_cond env c ~ltrue:l_body ~lfalse:l_exit
    | None -> B.jmp env.b l_body);
    B.set_label env.b l_body;
    env.loops <-
      { break_to = Some l_exit; continue_to = Some l_step } :: env.loops;
    lower_stmt env body;
    env.loops <- List.tl env.loops;
    B.set_label env.b l_step;
    Option.iter (fun e -> ignore (lower_expr env e)) step;
    B.jmp env.b l_head;
    B.set_label env.b l_exit
  | Ast.Sswitch (scrutinee, groups) ->
    let v = lower_expr env scrutinee in
    let scrutinee_reg =
      match v with
      | Mir.Operand.Reg r -> r
      | Mir.Operand.Imm n ->
        let r = B.fresh_reg env.b in
        B.insn env.b (Mir.Insn.Mov (r, Mir.Operand.Imm n));
        r
    in
    let l_exit = B.new_label env.b in
    let group_labels = List.map (fun _ -> B.new_label env.b) groups in
    let cases = ref [] in
    let default = ref l_exit in
    List.iter2
      (fun (g : Ast.switch_group) glabel ->
        List.iter
          (function
            | Ast.Case e -> cases := (Sema.const_eval e, glabel) :: !cases
            | Ast.Default -> default := glabel)
          g.labels)
      groups group_labels;
    B.switch env.b scrutinee_reg (List.rev !cases) ~default:!default;
    env.loops <- { break_to = Some l_exit; continue_to = None } :: env.loops;
    List.iter2
      (fun (g : Ast.switch_group) glabel ->
        B.set_label env.b glabel;
        List.iter (lower_stmt env) g.body)
      groups group_labels;
    env.loops <- List.tl env.loops;
    B.set_label env.b l_exit
  | Ast.Sbreak -> (
    match env.loops with
    | { break_to = Some l; _ } :: _ -> B.jmp env.b l
    | _ ->
      (* a switch provides break but not continue; search outward *)
      let rec find = function
        | { break_to = Some l; _ } :: _ -> B.jmp env.b l
        | _ :: rest -> find rest
        | [] -> assert false (* sema rejected *)
      in
      find env.loops)
  | Ast.Scontinue ->
    let rec find = function
      | { continue_to = Some l; _ } :: _ -> B.jmp env.b l
      | _ :: rest -> find rest
      | [] -> assert false (* sema rejected *)
    in
    find env.loops
  | Ast.Sreturn None -> B.ret env.b None
  | Ast.Sreturn (Some e) ->
    let v = lower_expr env e in
    B.ret env.b (Some v)
  | Ast.Sblock items -> lower_block env items

and lower_block env items =
  env.vars <- [] :: env.vars;
  List.iter
    (function
      | Ast.Local { Ast.lname; linit; _ } -> (
        (* evaluate the initialiser before the name enters scope (C scoping
           of "int x = x;" is undefined; we give the outer x), and produce
           the value directly in the variable's register where possible so
           that no copy separates the variable from later comparisons *)
        match linit with
        | Some { Ast.desc = Ast.Index (name, idx); _ } ->
          let idx_op = lower_expr env idx in
          let r = declare_var env lname in
          B.insn env.b (Mir.Insn.Load (r, name, idx_op))
        | Some ({ Ast.desc = Ast.Call (fname, _); _ } as e)
          when not (String.equal fname "puts" || String.equal fname "print_str")
          -> (
          match lower_call_args env e with
          | Some (fname, arg_ops) ->
            let r = declare_var env lname in
            B.insn env.b (Mir.Insn.Call (Some r, fname, arg_ops))
          | None ->
            let v = lower_expr env e in
            let r = declare_var env lname in
            B.insn env.b (Mir.Insn.Mov (r, v)))
        | Some e ->
          let v = lower_expr env e in
          let r = declare_var env lname in
          B.insn env.b (Mir.Insn.Mov (r, v))
        | None ->
          let r = declare_var env lname in
          B.insn env.b (Mir.Insn.Mov (r, Mir.Operand.Imm 0)))
      | Ast.Stmt s -> lower_stmt env s)
    items;
  env.vars <- List.tl env.vars

let lower_func prog info (f : Ast.func_decl) =
  let params = List.mapi (fun i _ -> Mir.Reg.of_int i) f.fparams in
  let b = B.create ~name:f.fname ~params in
  let env =
    { prog; info; b; vars = [ List.combine f.fparams params ]; loops = [] }
  in
  (* every function body starts with an explicit entry block *)
  B.set_label b (f.fname ^ ".entry");
  lower_block env f.fbody;
  (* fall off the end: return 0 for value functions, plain return otherwise *)
  let fi = List.assoc f.fname info.Sema.funcs in
  if fi.Sema.fi_returns_value then B.ret b (Some (Mir.Operand.Imm 0))
  else B.ret b None;
  B.finish b

let lower_program (program : Ast.program) (info : Sema.info) =
  let prog = Mir.Program.make () in
  List.iter
    (fun (name, g) ->
      Mir.Program.add_global prog
        {
          Mir.Program.gname = name;
          size = g.Sema.g_size;
          init = (if Array.for_all (( = ) 0) g.Sema.g_words then None
                  else Some g.Sema.g_words);
        })
    info.Sema.globals;
  List.iter
    (function
      | Ast.Global _ -> ()
      | Ast.Func f -> Mir.Program.add_func prog (lower_func prog info f))
    program;
  prog

let compile src =
  let ast = Parser.parse src in
  let info = Sema.analyze ast in
  lower_program ast info
