lib/frontend/lexer.ml: Buffer Char List Srcloc String Token
