lib/frontend/srcloc.mli: Format
