lib/frontend/ast.mli: Format Srcloc
