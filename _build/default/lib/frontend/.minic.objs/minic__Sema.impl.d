lib/frontend/sema.ml: Array Ast Char Hashtbl List Option Srcloc String
