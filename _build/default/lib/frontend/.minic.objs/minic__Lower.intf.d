lib/frontend/lower.mli: Ast Mir Sema
