lib/frontend/srcloc.ml: Format Printf
