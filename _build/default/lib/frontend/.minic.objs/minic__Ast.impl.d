lib/frontend/ast.ml: Format List Srcloc String
