lib/frontend/token.ml: Format Int Printf String
