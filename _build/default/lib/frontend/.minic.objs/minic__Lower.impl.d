lib/frontend/lower.ml: Array Ast List Mir Option Parser Sema Srcloc String
