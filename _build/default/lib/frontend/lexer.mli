(** Hand-written MiniC lexer.

    Supports decimal and hexadecimal integer literals, character literals
    (as integers), string literals with the usual C escapes, [//] and
    [/* */] comments.  [char] lexes as the keyword [int]. *)

val tokenize : string -> (Token.t * Srcloc.t) list
(** The result always ends with an [EOF_TOK] entry.
    Raises {!Srcloc.Error} on invalid input. *)
