type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr

type unop = Neg | LNot | BNot

type lvalue =
  | Lvar of string
  | Lindex of string * expr

and expr = {
  desc : expr_desc;
  eloc : Srcloc.t;
}

and expr_desc =
  | Num of int
  | Str of string
  | Var of string
  | Index of string * expr
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr
  | Incr of { pre : bool; up : bool; lv : lvalue }
  | Ternary of expr * expr * expr

type stmt = {
  sdesc : stmt_desc;
  sloc : Srcloc.t;
}

and stmt_desc =
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of expr option * expr option * expr option * stmt
  | Sswitch of expr * switch_group list
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sblock of block_item list

and switch_group = {
  labels : case_label list;
  body : stmt list;
}

and case_label =
  | Case of expr
  | Default

and block_item =
  | Local of local_decl
  | Stmt of stmt

and local_decl = {
  lname : string;
  linit : expr option;
  lloc : Srcloc.t;
}

type func_decl = {
  fname : string;
  fparams : string list;
  fret_void : bool;
  fbody : block_item list;
  floc : Srcloc.t;
}

type global_init =
  | Gscalar of expr
  | Gstring of string
  | Glist of expr list

type global_decl = {
  gname : string;
  garray : expr option option;
  ginit : global_init option;
  gloc : Srcloc.t;
}

type decl =
  | Func of func_decl
  | Global of global_decl

type program = decl list

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | LAnd -> "&&" | LOr -> "||"

let unop_name = function Neg -> "-" | LNot -> "!" | BNot -> "~"

let pp_binop ppf op = Format.pp_print_string ppf (binop_name op)

let rec pp_lvalue ppf = function
  | Lvar v -> Format.pp_print_string ppf v
  | Lindex (a, e) -> Format.fprintf ppf "%s[%a]" a pp_expr e

and pp_expr ppf e =
  match e.desc with
  | Num n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Var v -> Format.pp_print_string ppf v
  | Index (a, i) -> Format.fprintf ppf "%s[%a]" a pp_expr i
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args
  | Unary (op, e) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp_expr e
  | Binary (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Assign (lv, e) -> Format.fprintf ppf "%a = %a" pp_lvalue lv pp_expr e
  | Op_assign (op, lv, e) ->
    Format.fprintf ppf "%a %s= %a" pp_lvalue lv (binop_name op) pp_expr e
  | Incr { pre; up; lv } ->
    let op = if up then "++" else "--" in
    if pre then Format.fprintf ppf "%s%a" op pp_lvalue lv
    else Format.fprintf ppf "%a%s" pp_lvalue lv op
  | Ternary (c, t, f) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr f

let rec pp_stmt ppf s =
  match s.sdesc with
  | Sexpr e -> Format.fprintf ppf "%a;" pp_expr e
  | Sif (c, t, None) -> Format.fprintf ppf "if (%a) %a" pp_expr c pp_stmt t
  | Sif (c, t, Some f) ->
    Format.fprintf ppf "if (%a) %a else %a" pp_expr c pp_stmt t pp_stmt f
  | Swhile (c, b) -> Format.fprintf ppf "while (%a) %a" pp_expr c pp_stmt b
  | Sdo (b, c) -> Format.fprintf ppf "do %a while (%a);" pp_stmt b pp_expr c
  | Sfor (init, cond, step, b) ->
    let pp_opt ppf = function
      | None -> ()
      | Some e -> pp_expr ppf e
    in
    Format.fprintf ppf "for (%a; %a; %a) %a" pp_opt init pp_opt cond pp_opt
      step pp_stmt b
  | Sswitch (e, groups) ->
    Format.fprintf ppf "switch (%a) {@\n" pp_expr e;
    List.iter
      (fun g ->
        List.iter
          (function
            | Case c -> Format.fprintf ppf "case %a:@\n" pp_expr c
            | Default -> Format.fprintf ppf "default:@\n")
          g.labels;
        List.iter (fun s -> Format.fprintf ppf "  %a@\n" pp_stmt s) g.body)
      groups;
    Format.fprintf ppf "}"
  | Sbreak -> Format.fprintf ppf "break;"
  | Scontinue -> Format.fprintf ppf "continue;"
  | Sreturn None -> Format.fprintf ppf "return;"
  | Sreturn (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Sblock items ->
    Format.fprintf ppf "{@\n";
    List.iter (fun item -> Format.fprintf ppf "  %a@\n" pp_block_item item) items;
    Format.fprintf ppf "}"

and pp_block_item ppf = function
  | Local { lname; linit = None; _ } -> Format.fprintf ppf "int %s;" lname
  | Local { lname; linit = Some e; _ } ->
    Format.fprintf ppf "int %s = %a;" lname pp_expr e
  | Stmt s -> pp_stmt ppf s

let pp_decl ppf = function
  | Func f ->
    Format.fprintf ppf "%s %s(%s) %a"
      (if f.fret_void then "void" else "int")
      f.fname
      (String.concat ", " (List.map (fun p -> "int " ^ p) f.fparams))
      pp_stmt
      { sdesc = Sblock f.fbody; sloc = f.floc }
  | Global g ->
    let array =
      match g.garray with
      | None -> ""
      | Some None -> "[]"
      | Some (Some e) -> Format.asprintf "[%a]" pp_expr e
    in
    let init =
      match g.ginit with
      | None -> ""
      | Some (Gscalar e) -> Format.asprintf " = %a" pp_expr e
      | Some (Gstring s) -> Format.asprintf " = %S" s
      | Some (Glist es) ->
        Format.asprintf " = {%a}"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             pp_expr)
          es
    in
    Format.fprintf ppf "int %s%s%s;" g.gname array init

let pp_program ppf p =
  List.iter (fun d -> Format.fprintf ppf "%a@\n@\n" pp_decl d) p
