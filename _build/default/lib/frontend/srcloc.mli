(** Source locations and front-end diagnostics. *)

type t = {
  line : int;  (** 1-based *)
  col : int;   (** 1-based *)
}

val dummy : t
val pp : Format.formatter -> t -> unit

exception Error of t * string
(** Raised by the lexer, parser and semantic analysis on invalid input. *)

val error : t -> ('a, unit, string, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error}. *)

val error_to_string : t -> string -> string
