(** Semantic analysis for MiniC.

    Checks name resolution, arity of calls, lvalue/array usage,
    [break]/[continue] placement, duplicate and constant [case] labels,
    and constant-ness of global initialisers.  Produces the symbol
    information the lowering pass consumes.

    [EOF] is a predefined constant with value [-1]; it cannot be
    redefined. *)

type global_info = {
  g_size : int;
  g_is_array : bool;    (** declared with brackets; scalars cannot be indexed *)
  g_words : int array;  (** initial contents, zero-filled *)
}

type func_info = {
  fi_arity : int;
  fi_returns_value : bool;
}

type info = {
  globals : (string * global_info) list;
  funcs : (string * func_info) list;
}

val builtins : (string * func_info) list
(** [getchar], [putchar], [puts], [print_int], [print_str], [exit]. *)

val const_eval : Ast.expr -> int
(** Evaluates a constant expression.  Raises {!Srcloc.Error} if the
    expression is not constant. *)

val analyze : Ast.program -> info
(** Raises {!Srcloc.Error} on the first semantic error. *)
