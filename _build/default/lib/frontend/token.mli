(** MiniC tokens. *)

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_INT          (** [int] (and [char], which is an alias) *)
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | ASSIGN          (** [=] *)
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSPLUS
  | MINUSMINUS
  | EQ              (** [==] *)
  | NE
  | LT
  | LE
  | GT
  | GE
  | AMPAMP
  | BARBAR
  | BANG
  | AMP
  | BAR
  | CARET
  | TILDE
  | SHL
  | SHR
  | EOF_TOK

val pp : Format.formatter -> t -> unit
val describe : t -> string
val equal : t -> t -> bool
