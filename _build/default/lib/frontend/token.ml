type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_INT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSPLUS
  | MINUSMINUS
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AMPAMP
  | BARBAR
  | BANG
  | AMP
  | BAR
  | CARET
  | TILDE
  | SHL
  | SHR
  | EOF_TOK

let describe = function
  | INT n -> Printf.sprintf "integer literal %d" n
  | STRING s -> Printf.sprintf "string literal %S" s
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | KW_INT -> "'int'"
  | KW_VOID -> "'void'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_DO -> "'do'"
  | KW_FOR -> "'for'"
  | KW_SWITCH -> "'switch'"
  | KW_CASE -> "'case'"
  | KW_DEFAULT -> "'default'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_RETURN -> "'return'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | COLON -> "':'"
  | QUESTION -> "'?'"
  | ASSIGN -> "'='"
  | PLUS_ASSIGN -> "'+='"
  | MINUS_ASSIGN -> "'-='"
  | STAR_ASSIGN -> "'*='"
  | SLASH_ASSIGN -> "'/='"
  | PERCENT_ASSIGN -> "'%='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | PLUSPLUS -> "'++'"
  | MINUSMINUS -> "'--'"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | AMPAMP -> "'&&'"
  | BARBAR -> "'||'"
  | BANG -> "'!'"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | EOF_TOK -> "end of input"

let pp ppf t = Format.pp_print_string ppf (describe t)

let equal (a : t) (b : t) =
  match a, b with
  | INT x, INT y -> Int.equal x y
  | STRING x, STRING y | IDENT x, IDENT y -> String.equal x y
  | _ -> a = b
