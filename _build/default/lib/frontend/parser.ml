type state = {
  toks : (Token.t * Srcloc.t) array;
  mutable pos : int;
}

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1)
  else Token.EOF_TOK

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else
    Srcloc.error (peek_loc st) "expected %s but found %s" (Token.describe tok)
      (Token.describe (peek st))

let accept st tok =
  if Token.equal (peek st) tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | t -> Srcloc.error (peek_loc st) "expected identifier but found %s" (Token.describe t)

let mk loc desc = { Ast.desc; eloc = loc }
let mks loc sdesc = { Ast.sdesc; sloc = loc }

let lvalue_of_expr (e : Ast.expr) =
  match e.desc with
  | Ast.Var v -> Ast.Lvar v
  | Ast.Index (a, i) -> Ast.Lindex (a, i)
  | _ -> Srcloc.error e.eloc "expression is not assignable"

(* one precedence level of left-associative binary operators *)
let binary_level st next ops =
  let rec go lhs =
    let loc = peek_loc st in
    match List.assoc_opt (peek st) ops with
    | Some op ->
      advance st;
      let rhs = next st in
      go (mk loc (Ast.Binary (op, lhs, rhs)))
    | None -> lhs
  in
  go (next st)

let rec parse_expr_top st = parse_assignment st

and parse_assignment st =
  let lhs = parse_ternary st in
  let loc = peek_loc st in
  let op_assign op =
    advance st;
    let rhs = parse_assignment st in
    mk loc (Ast.Op_assign (op, lvalue_of_expr lhs, rhs))
  in
  match peek st with
  | Token.ASSIGN ->
    advance st;
    let rhs = parse_assignment st in
    mk loc (Ast.Assign (lvalue_of_expr lhs, rhs))
  | Token.PLUS_ASSIGN -> op_assign Ast.Add
  | Token.MINUS_ASSIGN -> op_assign Ast.Sub
  | Token.STAR_ASSIGN -> op_assign Ast.Mul
  | Token.SLASH_ASSIGN -> op_assign Ast.Div
  | Token.PERCENT_ASSIGN -> op_assign Ast.Rem
  | _ -> lhs

and parse_ternary st =
  let cond = parse_lor st in
  if Token.equal (peek st) Token.QUESTION then begin
    let loc = peek_loc st in
    advance st;
    let t = parse_expr_top st in
    expect st Token.COLON;
    let f = parse_ternary st in
    mk loc (Ast.Ternary (cond, t, f))
  end
  else cond

and parse_lor st = binary_level st parse_land [ (Token.BARBAR, Ast.LOr) ]
and parse_land st = binary_level st parse_bor [ (Token.AMPAMP, Ast.LAnd) ]
and parse_bor st = binary_level st parse_bxor [ (Token.BAR, Ast.BOr) ]
and parse_bxor st = binary_level st parse_band [ (Token.CARET, Ast.BXor) ]
and parse_band st = binary_level st parse_equality [ (Token.AMP, Ast.BAnd) ]

and parse_equality st =
  binary_level st parse_relational
    [ (Token.EQ, Ast.Eq); (Token.NE, Ast.Ne) ]

and parse_relational st =
  binary_level st parse_shift
    [ (Token.LT, Ast.Lt); (Token.LE, Ast.Le); (Token.GT, Ast.Gt); (Token.GE, Ast.Ge) ]

and parse_shift st =
  binary_level st parse_additive [ (Token.SHL, Ast.Shl); (Token.SHR, Ast.Shr) ]

and parse_additive st =
  binary_level st parse_mult [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ]

and parse_mult st =
  binary_level st parse_unary
    [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Rem) ]

and parse_unary st =
  let loc = peek_loc st in
  match peek st with
  | Token.MINUS ->
    advance st;
    let e = parse_unary st in
    (* fold negative literals so constants like -1 stay constants *)
    (match e.Ast.desc with
    | Ast.Num n -> mk loc (Ast.Num (-n))
    | _ -> mk loc (Ast.Unary (Ast.Neg, e)))
  | Token.BANG ->
    advance st;
    mk loc (Ast.Unary (Ast.LNot, parse_unary st))
  | Token.TILDE ->
    advance st;
    mk loc (Ast.Unary (Ast.BNot, parse_unary st))
  | Token.PLUSPLUS ->
    advance st;
    let e = parse_unary st in
    mk loc (Ast.Incr { pre = true; up = true; lv = lvalue_of_expr e })
  | Token.MINUSMINUS ->
    advance st;
    let e = parse_unary st in
    mk loc (Ast.Incr { pre = true; up = false; lv = lvalue_of_expr e })
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    let loc = peek_loc st in
    match peek st with
    | Token.PLUSPLUS ->
      advance st;
      go (mk loc (Ast.Incr { pre = false; up = true; lv = lvalue_of_expr e }))
    | Token.MINUSMINUS ->
      advance st;
      go (mk loc (Ast.Incr { pre = false; up = false; lv = lvalue_of_expr e }))
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  let loc = peek_loc st in
  match peek st with
  | Token.INT n ->
    advance st;
    mk loc (Ast.Num n)
  | Token.STRING s ->
    advance st;
    mk loc (Ast.Str s)
  | Token.LPAREN ->
    advance st;
    let e = parse_expr_top st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.LPAREN ->
      advance st;
      let args =
        if Token.equal (peek st) Token.RPAREN then []
        else
          let rec more acc =
            let arg = parse_expr_top st in
            if accept st Token.COMMA then more (arg :: acc)
            else List.rev (arg :: acc)
          in
          more []
      in
      expect st Token.RPAREN;
      mk loc (Ast.Call (name, args))
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr_top st in
      expect st Token.RBRACKET;
      mk loc (Ast.Index (name, idx))
    | _ -> mk loc (Ast.Var name))
  | t -> Srcloc.error loc "expected expression but found %s" (Token.describe t)

let rec parse_stmt st =
  let loc = peek_loc st in
  match peek st with
  | Token.LBRACE ->
    advance st;
    let items = parse_block_items st in
    expect st Token.RBRACE;
    mks loc (Ast.Sblock items)
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr_top st in
    expect st Token.RPAREN;
    let then_branch = parse_stmt st in
    let else_branch =
      if accept st Token.KW_ELSE then Some (parse_stmt st) else None
    in
    mks loc (Ast.Sif (cond, then_branch, else_branch))
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr_top st in
    expect st Token.RPAREN;
    mks loc (Ast.Swhile (cond, parse_stmt st))
  | Token.KW_DO ->
    advance st;
    let body = parse_stmt st in
    expect st Token.KW_WHILE;
    expect st Token.LPAREN;
    let cond = parse_expr_top st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mks loc (Ast.Sdo (body, cond))
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if Token.equal (peek st) Token.SEMI then None else Some (parse_expr_top st)
    in
    expect st Token.SEMI;
    let cond =
      if Token.equal (peek st) Token.SEMI then None else Some (parse_expr_top st)
    in
    expect st Token.SEMI;
    let step =
      if Token.equal (peek st) Token.RPAREN then None
      else Some (parse_expr_top st)
    in
    expect st Token.RPAREN;
    mks loc (Ast.Sfor (init, cond, step, parse_stmt st))
  | Token.KW_SWITCH ->
    advance st;
    expect st Token.LPAREN;
    let scrutinee = parse_expr_top st in
    expect st Token.RPAREN;
    expect st Token.LBRACE;
    let groups = parse_switch_groups st in
    expect st Token.RBRACE;
    mks loc (Ast.Sswitch (scrutinee, groups))
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    mks loc Ast.Sbreak
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    mks loc Ast.Scontinue
  | Token.KW_RETURN ->
    advance st;
    let value =
      if Token.equal (peek st) Token.SEMI then None else Some (parse_expr_top st)
    in
    expect st Token.SEMI;
    mks loc (Ast.Sreturn value)
  | Token.SEMI ->
    advance st;
    mks loc (Ast.Sblock [])
  | _ ->
    let e = parse_expr_top st in
    expect st Token.SEMI;
    mks loc (Ast.Sexpr e)

and parse_switch_groups st =
  let parse_labels () =
    let rec go acc =
      match peek st with
      | Token.KW_CASE ->
        advance st;
        let e = parse_expr_top st in
        expect st Token.COLON;
        go (Ast.Case e :: acc)
      | Token.KW_DEFAULT ->
        advance st;
        expect st Token.COLON;
        go (Ast.Default :: acc)
      | _ -> List.rev acc
    in
    go []
  in
  let rec groups acc =
    match peek st with
    | Token.RBRACE -> List.rev acc
    | Token.KW_CASE | Token.KW_DEFAULT ->
      let labels = parse_labels () in
      let rec body acc =
        match peek st with
        | Token.RBRACE | Token.KW_CASE | Token.KW_DEFAULT -> List.rev acc
        | _ -> body (parse_stmt st :: acc)
      in
      groups ({ Ast.labels; body = body [] } :: acc)
    | t ->
      Srcloc.error (peek_loc st) "expected 'case', 'default' or '}' but found %s"
        (Token.describe t)
  in
  groups []

and parse_block_items st =
  let rec go acc =
    match peek st with
    | Token.RBRACE | Token.EOF_TOK -> List.rev acc
    | Token.KW_INT ->
      let loc = peek_loc st in
      advance st;
      let rec decls acc =
        let lname = expect_ident st in
        let linit =
          if accept st Token.ASSIGN then Some (parse_assignment st) else None
        in
        let acc = Ast.Local { Ast.lname; linit; lloc = loc } :: acc in
        if accept st Token.COMMA then decls acc else acc
      in
      let acc = decls acc in
      expect st Token.SEMI;
      go acc
    | _ -> go (Ast.Stmt (parse_stmt st) :: acc)
  in
  go []

let parse_params st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else if Token.equal (peek st) Token.KW_VOID && Token.equal (peek2 st) Token.RPAREN
  then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      expect st Token.KW_INT;
      let name = expect_ident st in
      if accept st Token.COMMA then go (name :: acc) else List.rev (name :: acc)
    in
    let params = go [] in
    expect st Token.RPAREN;
    params
  end

let parse_global_tail st loc gname =
  (* after "int <name>", not a function *)
  let garray =
    if accept st Token.LBRACKET then
      if accept st Token.RBRACKET then Some None
      else begin
        let size = parse_expr_top st in
        expect st Token.RBRACKET;
        Some (Some size)
      end
    else None
  in
  let ginit =
    if accept st Token.ASSIGN then
      Some
        (match peek st with
        | Token.STRING s ->
          advance st;
          Ast.Gstring s
        | Token.LBRACE ->
          advance st;
          let rec go acc =
            let e = parse_expr_top st in
            if accept st Token.COMMA then
              if Token.equal (peek st) Token.RBRACE then List.rev (e :: acc)
              else go (e :: acc)
            else List.rev (e :: acc)
          in
          let es = go [] in
          expect st Token.RBRACE;
          Ast.Glist es
        | _ -> Ast.Gscalar (parse_expr_top st))
    else None
  in
  expect st Token.SEMI;
  Ast.Global { Ast.gname; garray; ginit; gloc = loc }

let parse_decl st =
  let loc = peek_loc st in
  match peek st with
  | Token.KW_VOID ->
    advance st;
    let fname = expect_ident st in
    let fparams = parse_params st in
    expect st Token.LBRACE;
    let fbody = parse_block_items st in
    expect st Token.RBRACE;
    Ast.Func { Ast.fname; fparams; fret_void = true; fbody; floc = loc }
  | Token.KW_INT ->
    advance st;
    let name = expect_ident st in
    if Token.equal (peek st) Token.LPAREN then begin
      let fparams = parse_params st in
      expect st Token.LBRACE;
      let fbody = parse_block_items st in
      expect st Token.RBRACE;
      Ast.Func { Ast.fname = name; fparams; fret_void = false; fbody; floc = loc }
    end
    else parse_global_tail st loc name
  | t ->
    Srcloc.error loc "expected declaration but found %s" (Token.describe t)

let parse src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec go acc =
    if Token.equal (peek st) Token.EOF_TOK then List.rev acc
    else go (parse_decl st :: acc)
  in
  go []

let parse_expr src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = parse_expr_top st in
  expect st Token.EOF_TOK;
  e
