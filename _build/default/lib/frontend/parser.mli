(** Recursive-descent MiniC parser.

    Menhir is not available in the build environment (see DESIGN.md), so
    the grammar is parsed by hand with standard precedence climbing; C
    precedence and associativity are respected. *)

val parse : string -> Ast.program
(** Raises {!Srcloc.Error} on a syntax error. *)

val parse_expr : string -> Ast.expr
(** Parses a single expression followed by end of input (for tests). *)
