type global_info = {
  g_size : int;
  g_is_array : bool;
  g_words : int array;
}

type func_info = {
  fi_arity : int;
  fi_returns_value : bool;
}

type info = {
  globals : (string * global_info) list;
  funcs : (string * func_info) list;
}

let builtins =
  [
    ("getchar", { fi_arity = 0; fi_returns_value = true });
    ("putchar", { fi_arity = 1; fi_returns_value = true });
    ("puts", { fi_arity = 1; fi_returns_value = true });
    ("print_int", { fi_arity = 1; fi_returns_value = false });
    ("print_str", { fi_arity = 1; fi_returns_value = false });
    ("exit", { fi_arity = 1; fi_returns_value = false });
  ]

let rec const_eval (e : Ast.expr) =
  match e.desc with
  | Ast.Num n -> n
  | Ast.Var "EOF" -> -1
  | Ast.Unary (Ast.Neg, e) -> -const_eval e
  | Ast.Unary (Ast.BNot, e) -> lnot (const_eval e)
  | Ast.Unary (Ast.LNot, e) -> if const_eval e = 0 then 1 else 0
  | Ast.Binary (op, a, b) -> (
    let a = const_eval a and b = const_eval b in
    let bool_ c = if c then 1 else 0 in
    match op with
    | Ast.Add -> a + b
    | Ast.Sub -> a - b
    | Ast.Mul -> a * b
    | Ast.Div ->
      if b = 0 then Srcloc.error e.eloc "constant division by zero" else a / b
    | Ast.Rem ->
      if b = 0 then Srcloc.error e.eloc "constant division by zero" else a mod b
    | Ast.BAnd -> a land b
    | Ast.BOr -> a lor b
    | Ast.BXor -> a lxor b
    | Ast.Shl -> a lsl b
    | Ast.Shr -> a asr b
    | Ast.Eq -> bool_ (a = b)
    | Ast.Ne -> bool_ (a <> b)
    | Ast.Lt -> bool_ (a < b)
    | Ast.Le -> bool_ (a <= b)
    | Ast.Gt -> bool_ (a > b)
    | Ast.Ge -> bool_ (a >= b)
    | Ast.LAnd -> bool_ (a <> 0 && b <> 0)
    | Ast.LOr -> bool_ (a <> 0 || b <> 0))
  | Ast.Ternary (c, t, f) ->
    if const_eval c <> 0 then const_eval t else const_eval f
  | _ -> Srcloc.error e.eloc "expression is not constant"

type env = {
  info : info;
  mutable scopes : string list list;  (** innermost first; params outermost *)
  mutable in_loop : int;
  mutable in_switch : int;
  current_returns_value : bool;
}

let in_scope env name = List.exists (List.mem name) env.scopes
let is_global env name = List.mem_assoc name env.info.globals

let check_scalar_var env loc name =
  if String.equal name "EOF" then ()
  else if in_scope env name then ()
  else
    match List.assoc_opt name env.info.globals with
    | Some g ->
      if g.g_is_array then
        Srcloc.error loc "'%s' is an array; index it" name
    | None -> Srcloc.error loc "undefined variable '%s'" name

let check_array env loc name =
  match List.assoc_opt name env.info.globals with
  | Some g ->
    if not g.g_is_array then
      Srcloc.error loc "'%s' is a scalar; it cannot be indexed" name
  | None ->
    if in_scope env name then
      Srcloc.error loc "'%s' is a scalar; it cannot be indexed" name
    else Srcloc.error loc "undefined array '%s'" name

let rec check_lvalue env = function
  | Ast.Lvar name ->
    if String.equal name "EOF" then
      Srcloc.error Srcloc.dummy "cannot assign to EOF"
    else if not (in_scope env name || is_global env name) then
      Srcloc.error Srcloc.dummy "undefined variable '%s'" name
  | Ast.Lindex (name, idx) ->
    check_array env idx.Ast.eloc name;
    check_expr env idx

and check_call env loc name args =
  match List.assoc_opt name env.info.funcs with
  | None -> Srcloc.error loc "call to undefined function '%s'" name
  | Some fi ->
    if List.length args <> fi.fi_arity then
      Srcloc.error loc "'%s' expects %d argument(s) but got %d" name fi.fi_arity
        (List.length args);
    (* puts/print_str take a string literal or an array name *)
    if String.equal name "puts" || String.equal name "print_str" then begin
      match args with
      | [ { Ast.desc = Ast.Str _; _ } ] -> ()
      | [ { Ast.desc = Ast.Var a; eloc } ] when is_global env a ->
        check_array env eloc a
      | [ arg ] ->
        Srcloc.error arg.Ast.eloc "'%s' expects a string literal or array name"
          name
      | _ -> assert false
    end
    else
      List.iter (check_expr env) args

and check_expr env (e : Ast.expr) =
  match e.desc with
  | Ast.Num _ -> ()
  | Ast.Str _ ->
    Srcloc.error e.eloc "string literals may only be passed to puts/print_str"
  | Ast.Var name -> check_scalar_var env e.eloc name
  | Ast.Index (name, idx) ->
    check_array env e.eloc name;
    check_expr env idx
  | Ast.Call (name, args) ->
    check_call env e.eloc name args;
    (match List.assoc_opt name env.info.funcs with
    | Some fi when not fi.fi_returns_value ->
      (* using a void result is only an error in expression position; the
         statement level unwraps Sexpr (Call ...) before checking *)
      Srcloc.error e.eloc "void function '%s' used in an expression" name
    | Some _ | None -> ())
  | Ast.Unary (_, e) -> check_expr env e
  | Ast.Binary (_, a, b) ->
    check_expr env a;
    check_expr env b
  | Ast.Assign (lv, e) | Ast.Op_assign (_, lv, e) ->
    check_lvalue env lv;
    check_expr env e
  | Ast.Incr { lv; _ } -> check_lvalue env lv
  | Ast.Ternary (c, t, f) ->
    check_expr env c;
    check_expr env t;
    check_expr env f

let rec check_stmt env (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Sexpr { Ast.desc = Ast.Call (name, args); eloc; _ } ->
    check_call env eloc name args
  | Ast.Sexpr e -> check_expr env e
  | Ast.Sif (c, t, f) ->
    check_expr env c;
    check_stmt env t;
    Option.iter (check_stmt env) f
  | Ast.Swhile (c, b) | Ast.Sdo (b, c) ->
    check_expr env c;
    env.in_loop <- env.in_loop + 1;
    check_stmt env b;
    env.in_loop <- env.in_loop - 1
  | Ast.Sfor (init, cond, step, b) ->
    Option.iter (check_expr env) init;
    Option.iter (check_expr env) cond;
    Option.iter (check_expr env) step;
    env.in_loop <- env.in_loop + 1;
    check_stmt env b;
    env.in_loop <- env.in_loop - 1
  | Ast.Sswitch (e, groups) ->
    check_expr env e;
    let seen = Hashtbl.create 16 in
    let defaults = ref 0 in
    List.iter
      (fun g ->
        List.iter
          (function
            | Ast.Case ce ->
              let v = const_eval ce in
              if Hashtbl.mem seen v then
                Srcloc.error ce.Ast.eloc "duplicate case label %d" v;
              Hashtbl.replace seen v ()
            | Ast.Default ->
              incr defaults;
              if !defaults > 1 then
                Srcloc.error s.sloc "multiple default labels in switch")
          g.Ast.labels)
      groups;
    env.in_switch <- env.in_switch + 1;
    List.iter (fun g -> List.iter (check_stmt env) g.Ast.body) groups;
    env.in_switch <- env.in_switch - 1
  | Ast.Sbreak ->
    if env.in_loop = 0 && env.in_switch = 0 then
      Srcloc.error s.sloc "break outside of a loop or switch"
  | Ast.Scontinue ->
    if env.in_loop = 0 then Srcloc.error s.sloc "continue outside of a loop"
  | Ast.Sreturn value -> (
    match value, env.current_returns_value with
    | Some e, true -> check_expr env e
    | None, false -> ()
    | Some e, false ->
      Srcloc.error e.Ast.eloc "void function returning a value"
    | None, true ->
      Srcloc.error s.sloc "non-void function must return a value")
  | Ast.Sblock items -> check_block env items

and check_block env items =
  env.scopes <- [] :: env.scopes;
  List.iter
    (function
      | Ast.Local { Ast.lname; linit; lloc } ->
        (match env.scopes with
        | scope :: rest ->
          if List.mem lname scope then
            Srcloc.error lloc "duplicate local '%s'" lname;
          if String.equal lname "EOF" then
            Srcloc.error lloc "cannot redefine EOF";
          Option.iter (check_expr env) linit;
          env.scopes <- (lname :: scope) :: rest
        | [] -> assert false)
      | Ast.Stmt s -> check_stmt env s)
    items;
  env.scopes <- List.tl env.scopes

let global_words (g : Ast.global_decl) =
  let init_words =
    match g.ginit with
    | None -> [||]
    | Some (Ast.Gscalar e) -> [| const_eval e |]
    | Some (Ast.Gstring s) ->
      Array.init (String.length s + 1) (fun i ->
          if i < String.length s then Char.code s.[i] else 0)
    | Some (Ast.Glist es) -> Array.of_list (List.map const_eval es)
  in
  let size =
    match g.garray with
    | None ->
      if Array.length init_words > 1 then
        Srcloc.error g.gloc "scalar '%s' has an aggregate initialiser" g.gname;
      1
    | Some None ->
      if Array.length init_words = 0 then
        Srcloc.error g.gloc "array '%s' has no size and no initialiser" g.gname;
      Array.length init_words
    | Some (Some e) ->
      let n = const_eval e in
      if n <= 0 then Srcloc.error g.gloc "array '%s' has non-positive size" g.gname;
      if Array.length init_words > n then
        Srcloc.error g.gloc "initialiser for '%s' is too long" g.gname;
      n
  in
  let words = Array.make size 0 in
  Array.blit init_words 0 words 0 (Array.length init_words);
  { g_size = size; g_is_array = g.garray <> None; g_words = words }

let analyze (program : Ast.program) =
  (* first pass: collect signatures and globals *)
  let globals = ref [] in
  let funcs = ref builtins in
  List.iter
    (function
      | Ast.Global g ->
        if List.mem_assoc g.Ast.gname !globals then
          Srcloc.error g.Ast.gloc "duplicate global '%s'" g.Ast.gname;
        if String.equal g.Ast.gname "EOF" then
          Srcloc.error g.Ast.gloc "cannot redefine EOF";
        globals := (g.Ast.gname, global_words g) :: !globals
      | Ast.Func f ->
        if List.mem_assoc f.Ast.fname !funcs then
          Srcloc.error f.Ast.floc "duplicate function '%s'" f.Ast.fname;
        funcs :=
          ( f.Ast.fname,
            {
              fi_arity = List.length f.Ast.fparams;
              fi_returns_value = not f.Ast.fret_void;
            } )
          :: !funcs)
    program;
  let info = { globals = List.rev !globals; funcs = List.rev !funcs } in
  (* second pass: check bodies *)
  List.iter
    (function
      | Ast.Global _ -> ()
      | Ast.Func f ->
        let seen = Hashtbl.create 8 in
        List.iter
          (fun p ->
            if Hashtbl.mem seen p then
              Srcloc.error f.Ast.floc "duplicate parameter '%s'" p;
            Hashtbl.replace seen p ())
          f.Ast.fparams;
        let env =
          {
            info;
            scopes = [ f.Ast.fparams ];
            in_loop = 0;
            in_switch = 0;
            current_returns_value = not f.Ast.fret_void;
          }
        in
        check_block env f.Ast.fbody)
    program;
  (match List.assoc_opt "main" info.funcs with
  | None -> Srcloc.error Srcloc.dummy "program has no 'main' function"
  | Some fi ->
    if fi.fi_arity <> 0 then
      Srcloc.error Srcloc.dummy "'main' must take no parameters");
  info
