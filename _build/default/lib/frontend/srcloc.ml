type t = {
  line : int;
  col : int;
}

let dummy = { line = 0; col = 0 }
let pp ppf { line; col } = Format.fprintf ppf "%d:%d" line col

exception Error of t * string

let error loc fmt = Printf.ksprintf (fun s -> raise (Error (loc, s))) fmt
let error_to_string loc msg = Format.asprintf "%a: %s" pp loc msg
