(** Lowering MiniC to MIR.

    Scalars (parameters and locals) become virtual registers; globals
    become named word arrays.  Boolean contexts lower to compare-and-branch
    control flow (short-circuit [&&]/[||] produce branch sequences, which
    is where the paper's reorderable sequences come from).  [switch]
    lowers to the {!Mir.Block.Switch} pseudo terminator, expanded later by
    the optimizer according to the selected heuristic set (Table 2).

    [puts]/[print_str] of an array or string literal are expanded into an
    inline character loop over the global, so their instructions count as
    user code, mirroring the paper's exclusion of C library internals. *)

val lower_program : Ast.program -> Sema.info -> Mir.Program.t

val compile : string -> Mir.Program.t
(** [parse] + [analyze] + [lower_program].
    Raises {!Srcloc.Error} on any front-end error. *)
