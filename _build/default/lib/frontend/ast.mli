(** MiniC abstract syntax.

    MiniC is the C subset needed by the paper's workloads: a single [int]
    value type ([char] is an alias), global scalars and arrays, functions,
    the full C statement repertoire including [switch] with fall-through,
    and short-circuit boolean operators.  There are no pointers; arrays are
    referred to by name. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr  (** short-circuit *)

type unop = Neg | LNot | BNot

type lvalue =
  | Lvar of string
  | Lindex of string * expr  (** array element *)

and expr = {
  desc : expr_desc;
  eloc : Srcloc.t;
}

and expr_desc =
  | Num of int
  | Str of string
  | Var of string
  | Index of string * expr
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr  (** [+=] etc.; binop is arithmetic *)
  | Incr of { pre : bool; up : bool; lv : lvalue }
      (** [++x], [x++], [--x], [x--] *)
  | Ternary of expr * expr * expr

type stmt = {
  sdesc : stmt_desc;
  sloc : Srcloc.t;
}

and stmt_desc =
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of expr option * expr option * expr option * stmt
  | Sswitch of expr * switch_group list
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sblock of block_item list

and switch_group = {
  labels : case_label list;  (** labels attached to this group *)
  body : stmt list;          (** falls through to the next group *)
}

and case_label =
  | Case of expr  (** must be a constant expression *)
  | Default

and block_item =
  | Local of local_decl
  | Stmt of stmt

and local_decl = {
  lname : string;
  linit : expr option;
  lloc : Srcloc.t;
}

type func_decl = {
  fname : string;
  fparams : string list;
  fret_void : bool;
  fbody : block_item list;
  floc : Srcloc.t;
}

type global_init =
  | Gscalar of expr           (** constant expression *)
  | Gstring of string
  | Glist of expr list        (** constant expressions *)

type global_decl = {
  gname : string;
  garray : expr option option;
      (** [None] = scalar; [Some None] = array with size from initialiser;
          [Some (Some e)] = array of constant size [e] *)
  ginit : global_init option;
  gloc : Srcloc.t;
}

type decl =
  | Func of func_decl
  | Global of global_decl

type program = decl list

val pp_binop : Format.formatter -> binop -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
