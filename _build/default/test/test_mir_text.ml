(* Textual MIR round-trip tests: the parser must invert the printer on
   every program the tool chain produces. *)

open Helpers

let roundtrip_equal (p : Mir.Program.t) =
  let text = Mir.Program.to_string p in
  let q = Mir.Parse.program text in
  let text2 = Mir.Program.to_string q in
  check_output "print . parse . print is stable" text text2;
  q

let test_roundtrip_simple () =
  let p =
    compile
      "int g; int a[3] = {7, 8, 9};\n\
       int main() { int c = getchar(); if (c == 'x') g = a[1]; print_int(g); \
       return 0; }"
  in
  ignore (roundtrip_equal p)

let test_roundtrip_all_insn_forms () (* every instruction shape *) =
  let text =
    "global g[16]\n\
     global init[2] = {1, -2}\n\
     \n\
     function main():\n\
     main.entry:\n\
    \  r1 = 5\n\
    \  r2 = r1\n\
    \  r3 = neg r2\n\
    \  r4 = not r3\n\
    \  r5 = add r1, 2\n\
    \  r6 = sub r5, r1\n\
    \  r7 = mul r6, -3\n\
    \  r8 = div r7, 2\n\
    \  r9 = rem r8, 2\n\
    \  r10 = and r9, 255\n\
    \  r11 = or r10, 1\n\
    \  r12 = xor r11, 7\n\
    \  r13 = sll r12, 1\n\
    \  r14 = sra r13, 1\n\
    \  r15 = M[g + 0]\n\
    \  M[g + r1] = r15\n\
    \  cmp r15, 0\n\
    \  be -> a | b\n\
     a:\n\
    \  call putchar(65)\n\
    \  r16 = call getchar()\n\
    \  nop\n\
    \  profile_range #3, r16\n\
    \  profile_comb #4\n\
    \  jmp c\n\
     b:\n\
    \  cmp r1, r2\n\
    \  bge -> c | c\n\
     c:\n\
    \  ret 0  ; delay: r17 = 1\n"
  in
  let p = Mir.Parse.program text in
  let q = Mir.Parse.program (Mir.Program.to_string p) in
  check_output "round trip" (Mir.Program.to_string p) (Mir.Program.to_string q);
  (* and it runs *)
  let r = run_prog p ~input:"q" in
  check_output "executes" "A" r.Sim.Machine.output

let test_roundtrip_jump_tables () =
  let src =
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { switch \
     (c) { case 97: s += 1; break; case 98: s += 2; break; case 99: s += 3; \
     break; case 100: s += 4; break; } } print_int(s); return 0; }"
  in
  let p = compile_final src in
  let q = roundtrip_equal p in
  (* behaviourally identical *)
  check_output "same behaviour"
    (run_prog p ~input:"abcdz").Sim.Machine.output
    (run_prog q ~input:"abcdz").Sim.Machine.output

let test_roundtrip_delay_slots () =
  let p = compile_final (Workloads.Registry.find "wc").Workloads.Spec.source in
  let q = roundtrip_equal p in
  let input = "three words here\n" in
  check_output "wc via text round trip"
    (run_prog p ~input).Sim.Machine.output
    (run_prog q ~input).Sim.Machine.output

let test_roundtrip_all_workloads () =
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let p = compile_final w.Workloads.Spec.source in
      ignore (roundtrip_equal p))
    Workloads.Registry.all

let test_roundtrip_reordered () =
  (* the transformed programs (with replicas, edge blocks, cc fixups)
     also survive a text round trip *)
  let w = Workloads.Registry.find "lex" in
  let r =
    reorder_pipeline
      ~training_input:(String.sub (Lazy.force w.Workloads.Spec.training_input) 0 3000)
      ~test_input:(String.sub (Lazy.force w.Workloads.Spec.test_input) 0 3000)
      w.Workloads.Spec.source
  in
  ignore
    (roundtrip_equal r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_program)

let test_parse_errors () =
  let bad line text =
    match Mir.Parse.program text with
    | exception Mir.Parse.Error (l, _) -> check_int "error line" line l
    | _ -> Alcotest.failf "expected a parse error in %S" text
  in
  bad 1 "  r1 = 5\n";
  bad 2 "function f():\n  bogus instruction here\n";
  bad 2 "function f():\n  jmp nowhere\nentry:\n  ret\n" (* term outside block *);
  match Mir.Parse.program "function f():\nentry:\n  r1 = 5\n" with
  | exception Mir.Parse.Error _ -> ()
  | _ -> Alcotest.fail "missing terminator must fail"

let test_parse_next_reg_bumped () =
  let fn =
    Mir.Parse.func "function f(r2):\nentry:\n  r9 = add r2, 1\n  ret r9\n"
  in
  check_bool "fresh registers avoid parsed ones" true
    (Mir.Reg.to_int (Mir.Func.fresh_reg fn) >= 10)

let test_parse_validates () =
  let p =
    Mir.Parse.program
      "function main():\nmain.entry:\n  cmp 1, 2\n  be -> a | b\na:\n  ret \
       0\nb:\n  ret 1\n"
  in
  Mir.Validate.check p;
  check_int "runs" 1 (run_prog p).Sim.Machine.exit_code

let suite =
  [
    case "text: simple program round trip" test_roundtrip_simple;
    case "text: every instruction form" test_roundtrip_all_insn_forms;
    case "text: jump tables" test_roundtrip_jump_tables;
    case "text: delay slots" test_roundtrip_delay_slots;
    case "text: all workloads round trip" test_roundtrip_all_workloads;
    case "text: reordered programs round trip" test_roundtrip_reordered;
    case "text: parse errors carry line numbers" test_parse_errors;
    case "text: register counter restored" test_parse_next_reg_bumped;
    case "text: parsed programs validate and run" test_parse_validates;
  ]
