(* Every Table 3 workload: compiles, validates, runs, and survives the
   full reordering pipeline with identical output under every heuristic
   set.  The full-size pipeline sweeps run as slow tests ([dune runtest]
   still runs them; alcotest's quick filter can skip them). *)

open Helpers

let small_input (w : Workloads.Spec.t) =
  (* a cheap slice of the real test input for quick tests *)
  let s = Lazy.force w.Workloads.Spec.test_input in
  String.sub s 0 (min 4000 (String.length s))

let small_training (w : Workloads.Spec.t) =
  let s = Lazy.force w.Workloads.Spec.training_input in
  String.sub s 0 (min 4000 (String.length s))

let test_all_names_unique () =
  let names = Workloads.Registry.names in
  check_int "17 workloads" 17 (List.length names);
  check_int "unique names" 17 (List.length (List.sort_uniq compare names))

let test_registry_find () =
  check_output "find wc" "wc" (Workloads.Registry.find "wc").Workloads.Spec.name;
  match Workloads.Registry.find "nosuch" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_inputs_differ () =
  List.iter
    (fun (w : Workloads.Spec.t) ->
      check_bool
        (w.Workloads.Spec.name ^ ": training and test inputs differ")
        true
        (not
           (String.equal
              (Lazy.force w.Workloads.Spec.training_input)
              (Lazy.force w.Workloads.Spec.test_input))))
    Workloads.Registry.all

let compile_case (w : Workloads.Spec.t) =
  case (w.Workloads.Spec.name ^ ": compiles and validates under all sets")
    (fun () ->
      List.iter
        (fun hs ->
          let prog = compile ~heuristic:hs w.Workloads.Spec.source in
          Mir.Validate.check ~check_init:true prog)
        Mopt.Switch_lower.all_sets)

let output_case (w : Workloads.Spec.t) =
  case (w.Workloads.Spec.name ^ ": same output under every heuristic set")
    (fun () ->
      let input = small_input w in
      let outputs =
        List.map
          (fun hs -> run_src ~heuristic:hs ~input w.Workloads.Spec.source)
          Mopt.Switch_lower.all_sets
      in
      match outputs with
      | [ a; b; c ] ->
        check_output "I = II" a b;
        check_output "II = III" b c
      | _ -> assert false)

let produces_output_case (w : Workloads.Spec.t) =
  case (w.Workloads.Spec.name ^ ": produces nonempty output") (fun () ->
      let out = run_src ~input:(small_input w) w.Workloads.Spec.source in
      check_bool "some output" true (String.length out > 0))

let pipeline_case (w : Workloads.Spec.t) hs =
  slow_case
    (Printf.sprintf "%s: pipeline preserves output (set %s)"
       w.Workloads.Spec.name hs.Mopt.Switch_lower.hs_name)
    (fun () ->
      let config = { Driver.Config.default with Driver.Config.heuristic = hs } in
      (* Pipeline.run raises if the outputs or exit codes diverge *)
      let r =
        Driver.Pipeline.run ~config ~name:w.Workloads.Spec.name
          ~source:w.Workloads.Spec.source
          ~training_input:(small_training w)
          ~test_input:(small_input w) ()
      in
      (* reordering must never lose to the original by more than noise on
         the same distribution the profile was trained on *)
      let o = r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters in
      let n = r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters in
      check_bool "does not regress materially" true
        (float_of_int n.Sim.Counters.insns
        <= 1.05 *. float_of_int o.Sim.Counters.insns))

let detects_sequences_case (w : Workloads.Spec.t) =
  case (w.Workloads.Spec.name ^ ": reorderable sequences exist") (fun () ->
      let prog = compile ~heuristic:Mopt.Switch_lower.set_iii w.Workloads.Spec.source in
      let seqs = Reorder.Detect.find_program prog in
      check_bool "at least one sequence under set III" true (List.length seqs >= 1))

let determinism_case (w : Workloads.Spec.t) =
  slow_case (w.Workloads.Spec.name ^ ": pipeline is deterministic") (fun () ->
      let go () =
        let r =
          Driver.Pipeline.run ~name:w.Workloads.Spec.name
            ~source:w.Workloads.Spec.source
            ~training_input:(small_training w)
            ~test_input:(small_input w) ()
        in
        ( r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters.Sim.Counters.insns,
          r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_static_insns )
      in
      let a = go () and b = go () in
      check_bool "identical results" true (a = b))

let kitchen_sink_case (w : Workloads.Spec.t) =
  slow_case (w.Workloads.Spec.name ^ ": all extensions enabled at once")
    (fun () ->
      (* common-successor runs + super-branch pairs + coalescing +
         profile-guided layout together; the pipeline's output equality
         check and the validator are the oracle *)
      let config =
        {
          Driver.Config.default with
          Driver.Config.heuristic = Mopt.Switch_lower.set_iii;
          common_succ = true;
          coalesce_machine = Some Sim.Cycle_model.sparc_ipc;
          profile_layout = true;
        }
      in
      ignore
        (Driver.Pipeline.run ~config ~name:w.Workloads.Spec.name
           ~source:w.Workloads.Spec.source
           ~training_input:(small_training w)
           ~test_input:(small_input w) ()))

let suite =
  [
    case "registry: names" test_all_names_unique;
    case "registry: find" test_registry_find;
    case "inputs: training differs from test" test_inputs_differ;
  ]
  @ List.map compile_case Workloads.Registry.all
  @ List.map output_case Workloads.Registry.all
  @ List.map produces_output_case Workloads.Registry.all
  @ List.map detects_sequences_case Workloads.Registry.all
  @ List.concat_map
      (fun w ->
        [ pipeline_case w Mopt.Switch_lower.set_i;
          pipeline_case w Mopt.Switch_lower.set_iii ])
      Workloads.Registry.all
  @ List.map kitchen_sink_case Workloads.Registry.all
  @ [ determinism_case (Workloads.Registry.find "wc");
      determinism_case (Workloads.Registry.find "lex") ]
