(* Tests for branch coalescing into indirect jumps (the [UhW97]
   companion transformation and the paper's Section 9 suggestion to pick
   between reordering and indirect jumps using the profile). *)

open Helpers

let chain_src n =
  (* a dense n-way equality chain: an ideal coalescing candidate *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "int f(int c) {\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  if (c == %d) return %d;\n" (100 + i) (i + 1))
  done;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.add_string buf
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c); \
     print_int(s); return 0; }\n";
  Buffer.contents buf

let seq_of src =
  let prog = compile src in
  let fn = Mir.Program.find_func prog "f" in
  let seqs = Reorder.Detect.find_program prog in
  let seq =
    List.find (fun s -> String.equal s.Reorder.Detect.func_name "f") seqs
  in
  (prog, fn, seq)

let test_coalescible_dense_chain () =
  let _, fn, seq = seq_of (chain_src 8) in
  match Reorder.Coalesce.coalescible fn seq ~max_span:512 with
  | Some plan ->
    check_int "lo" 100 plan.Reorder.Coalesce.table_lo;
    check_int "hi" 107 plan.Reorder.Coalesce.table_hi;
    check_int "entries" 8 (Array.length plan.Reorder.Coalesce.targets)
  | None -> Alcotest.fail "dense chain should be coalescible"

let test_not_coalescible_rays () =
  let _, fn, seq =
    seq_of
      "int f(int c) { if (c > 100) return 1; if (c == 5) return 2; return 0; }\n\
       int main() { return f(getchar()); }"
  in
  check_bool "unbounded range blocks coalescing" true
    (Reorder.Coalesce.coalescible fn seq ~max_span:512 = None)

let test_not_coalescible_side_effects () =
  let _, fn, seq =
    seq_of
      "int g; int f(int c) { if (c == 1) return 1; g++; if (c == 2) return 2; \
       return 0; }\n\
       int main() { return f(getchar()); }"
  in
  check_bool "side effects block coalescing" true
    (Reorder.Coalesce.coalescible fn seq ~max_span:512 = None)

let test_span_limit () =
  let _, fn, seq =
    seq_of
      "int f(int c) { if (c == 0) return 1; if (c == 1000) return 2; return \
       0; }\n\
       int main() { return f(getchar()); }"
  in
  check_bool "span over the limit" true
    (Reorder.Coalesce.coalescible fn seq ~max_span:512 = None);
  check_bool "span under a bigger limit" true
    (Reorder.Coalesce.coalescible fn seq ~max_span:2048 <> None)

let test_decision_flips_with_machine () =
  (* a long chain: cheap table on the IPC, too dear on the Ultra when the
     reordered estimate is low *)
  let ipc = Reorder.Coalesce.indirect_cost_per_execution Sim.Cycle_model.sparc_ipc in
  let ultra =
    Reorder.Coalesce.indirect_cost_per_execution Sim.Cycle_model.sparc_ultra1
  in
  check_bool "ultra indirect dearer" true (ultra > ipc);
  let plan =
    { Reorder.Coalesce.table_lo = 0; table_hi = 7; targets = Array.make 8 "x" }
  in
  (* reordered estimate of 10 instructions/execution over 100 executions *)
  check_bool "IPC coalesces" true
    (Reorder.Coalesce.decide ~machine:Sim.Cycle_model.sparc_ipc ~total:100
       ~reorder_cost:1000 plan);
  check_bool "Ultra keeps the branches" false
    (Reorder.Coalesce.decide ~machine:Sim.Cycle_model.sparc_ultra1 ~total:100
       ~reorder_cost:1000 plan)

let test_apply_semantics () =
  (* coalesce by hand and compare against the untouched program *)
  let src = chain_src 10 in
  let input = String.init 300 (fun i -> Char.chr (90 + (i mod 30))) in
  let prog, fn, seq = seq_of src in
  let plan = Option.get (Reorder.Coalesce.coalescible fn seq ~max_span:512) in
  Reorder.Coalesce.apply fn seq plan;
  ignore (Mopt.Cleanup.finalize prog);
  Mir.Validate.check prog;
  let coalesced = Sim.Machine.run prog ~input in
  let reference = run_src src ~input in
  check_output "outputs agree" reference coalesced.Sim.Machine.output;
  check_bool "indirect jumps executed" true
    (coalesced.Sim.Machine.counters.Sim.Counters.indirect_jumps > 0)

let test_pipeline_coalescing_ipc () =
  (* under set III the chain stays a long linear search; with IPC-model
     coalescing enabled and a uniform profile the table should win *)
  let src = chain_src 16 in
  let input = String.init 400 (fun i -> Char.chr (100 + (i mod 16))) in
  let config =
    {
      Driver.Config.default with
      Driver.Config.heuristic = Mopt.Switch_lower.set_iii;
      coalesce_machine = Some Sim.Cycle_model.sparc_ipc;
    }
  in
  let r = reorder_pipeline ~config ~training_input:input ~test_input:input src in
  check_bool "some sequence coalesced" true
    (Reorder.Pass.coalesced_count r.Driver.Pipeline.r_report >= 1);
  check_bool "reordered version uses indirect jumps" true
    (r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
       .Sim.Counters.indirect_jumps > 0)

let test_pipeline_coalescing_respects_skew () =
  (* with a profile where one value dominates, reordering (test the hot
     value first: ~2 insns/execution) beats any table even on the IPC *)
  let src = chain_src 16 in
  let skewed = String.make 400 (Char.chr 100) in
  let config =
    {
      Driver.Config.default with
      Driver.Config.heuristic = Mopt.Switch_lower.set_iii;
      coalesce_machine = Some Sim.Cycle_model.sparc_ipc;
    }
  in
  let r =
    reorder_pipeline ~config ~training_input:skewed ~test_input:skewed src
  in
  check_int "skewed profile keeps the branches" 0
    (Reorder.Pass.coalesced_count r.Driver.Pipeline.r_report);
  check_bool "and reorders instead" true
    (Reorder.Pass.reordered_count r.Driver.Pipeline.r_report >= 1)

let test_pipeline_coalescing_ultra () =
  (* same uniform profile, Ultra cost model: the table is 4x dearer, the
     reordered chain usually survives *)
  let src = chain_src 4 in
  let input = String.init 200 (fun i -> Char.chr (100 + (i mod 4))) in
  let config =
    {
      Driver.Config.default with
      Driver.Config.heuristic = Mopt.Switch_lower.set_iii;
      coalesce_machine = Some Sim.Cycle_model.sparc_ultra1;
    }
  in
  let r = reorder_pipeline ~config ~training_input:input ~test_input:input src in
  check_int "short chain not worth a table on the Ultra" 0
    (Reorder.Pass.coalesced_count r.Driver.Pipeline.r_report)

let test_workloads_with_coalescing () =
  (* semantic preservation across the suite with coalescing on *)
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let config =
        {
          Driver.Config.default with
          Driver.Config.heuristic = Mopt.Switch_lower.set_iii;
          coalesce_machine = Some Sim.Cycle_model.sparc_ipc;
        }
      in
      (* Pipeline.run raises on output mismatch *)
      ignore
        (Driver.Pipeline.run ~config ~name ~source:w.Workloads.Spec.source
           ~training_input:
             (String.sub (Lazy.force w.Workloads.Spec.training_input) 0 4000)
           ~test_input:
             (String.sub (Lazy.force w.Workloads.Spec.test_input) 0 4000)
           ()))
    [ "lex"; "cb"; "sed"; "yacc"; "wc" ]

let suite =
  [
    case "coalesce: dense chain plan" test_coalescible_dense_chain;
    case "coalesce: rays blocked" test_not_coalescible_rays;
    case "coalesce: side effects blocked" test_not_coalescible_side_effects;
    case "coalesce: span limit" test_span_limit;
    case "coalesce: machine flips the decision" test_decision_flips_with_machine;
    case "coalesce: apply preserves semantics" test_apply_semantics;
    case "coalesce: pipeline coalesces uniform chains (IPC)"
      test_pipeline_coalescing_ipc;
    case "coalesce: skewed profiles keep reordering" test_pipeline_coalescing_respects_skew;
    case "coalesce: Ultra keeps short chains" test_pipeline_coalescing_ultra;
    slow_case "coalesce: workloads preserve output" test_workloads_with_coalescing;
  ]
