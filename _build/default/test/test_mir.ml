(* Unit tests for the machine IR substrate. *)

open Helpers

let all_conds = [ Mir.Cond.Eq; Ne; Lt; Le; Gt; Ge ]

(* ------------------------------------------------------------------ *)
(* Cond                                                                *)
(* ------------------------------------------------------------------ *)

let test_cond_negate_involution () =
  List.iter
    (fun c ->
      check_bool "negate twice" true
        (Mir.Cond.equal c (Mir.Cond.negate (Mir.Cond.negate c))))
    all_conds

let test_cond_negate_semantics () =
  List.iter
    (fun c ->
      List.iter
        (fun (a, b) ->
          check_bool
            (Printf.sprintf "%s %d %d" (Mir.Cond.show c) a b)
            (not (Mir.Cond.eval c a b))
            (Mir.Cond.eval (Mir.Cond.negate c) a b))
        [ (0, 0); (1, 2); (2, 1); (-5, 3); (7, 7); (-2, -2) ])
    all_conds

let test_cond_swap_semantics () =
  List.iter
    (fun c ->
      List.iter
        (fun (a, b) ->
          check_bool "swap" (Mir.Cond.eval c a b)
            (Mir.Cond.eval (Mir.Cond.swap c) b a))
        [ (0, 0); (1, 2); (2, 1); (-5, 3); (3, 3) ])
    all_conds

let test_cond_eval_table () =
  check_bool "1 = 1" true (Mir.Cond.eval Mir.Cond.Eq 1 1);
  check_bool "1 <> 2" true (Mir.Cond.eval Mir.Cond.Ne 1 2);
  check_bool "1 < 2" true (Mir.Cond.eval Mir.Cond.Lt 1 2);
  check_bool "2 < 1 fails" false (Mir.Cond.eval Mir.Cond.Lt 2 1);
  check_bool "2 <= 2" true (Mir.Cond.eval Mir.Cond.Le 2 2);
  check_bool "3 > 2" true (Mir.Cond.eval Mir.Cond.Gt 3 2);
  check_bool "-1 >= -1" true (Mir.Cond.eval Mir.Cond.Ge (-1) (-1));
  check_bool "-2 >= -1 fails" false (Mir.Cond.eval Mir.Cond.Ge (-2) (-1))

(* ------------------------------------------------------------------ *)
(* Insn                                                                *)
(* ------------------------------------------------------------------ *)

let r n = Mir.Reg.of_int n
let reg n = Mir.Operand.Reg (r n)
let imm n = Mir.Operand.Imm n

let test_insn_eval_binop () =
  check_int "add" 7 (Mir.Insn.eval_binop Mir.Insn.Add 3 4);
  check_int "sub" (-1) (Mir.Insn.eval_binop Mir.Insn.Sub 3 4);
  check_int "mul" 12 (Mir.Insn.eval_binop Mir.Insn.Mul 3 4);
  check_int "div trunc" (-2) (Mir.Insn.eval_binop Mir.Insn.Div (-7) 3);
  check_int "rem sign" (-1) (Mir.Insn.eval_binop Mir.Insn.Rem (-7) 3);
  check_int "and" 4 (Mir.Insn.eval_binop Mir.Insn.And 6 12);
  check_int "or" 14 (Mir.Insn.eval_binop Mir.Insn.Or 6 12);
  check_int "xor" 10 (Mir.Insn.eval_binop Mir.Insn.Xor 6 12);
  check_int "shl" 24 (Mir.Insn.eval_binop Mir.Insn.Shl 3 3);
  check_int "shr arithmetic" (-2) (Mir.Insn.eval_binop Mir.Insn.Shr (-8) 2);
  (match Mir.Insn.eval_binop Mir.Insn.Div 1 0 with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "division by zero must raise")

let test_insn_defs_uses () =
  let i = Mir.Insn.Binop (Mir.Insn.Add, r 1, reg 2, reg 3) in
  check_int "defs" 1 (List.length (Mir.Insn.defs i));
  check_int "uses" 2 (List.length (Mir.Insn.uses i));
  let store = Mir.Insn.Store ("g", reg 4, imm 7) in
  check_int "store defs" 0 (List.length (Mir.Insn.defs store));
  check_int "store uses" 1 (List.length (Mir.Insn.uses store));
  let call = Mir.Insn.Call (Some (r 5), "f", [ reg 1; imm 2; reg 3 ]) in
  check_int "call defs" 1 (List.length (Mir.Insn.defs call));
  check_int "call uses" 2 (List.length (Mir.Insn.uses call))

let test_insn_purity () =
  check_bool "mov pure" true (Mir.Insn.is_pure (Mir.Insn.Mov (r 1, imm 2)));
  check_bool "div impure" false
    (Mir.Insn.is_pure (Mir.Insn.Binop (Mir.Insn.Div, r 1, reg 2, reg 3)));
  check_bool "store impure" false
    (Mir.Insn.is_pure (Mir.Insn.Store ("g", imm 0, imm 0)));
  check_bool "call impure" false
    (Mir.Insn.is_pure (Mir.Insn.Call (None, "f", [])));
  check_bool "profile is profile" true
    (Mir.Insn.is_profile (Mir.Insn.Profile_range (0, r 1)));
  check_bool "cmp not side effect" false
    (Mir.Insn.has_side_effect (Mir.Insn.Cmp (reg 1, imm 2)));
  check_bool "store side effect" true
    (Mir.Insn.has_side_effect (Mir.Insn.Store ("g", imm 0, imm 0)))

(* ------------------------------------------------------------------ *)
(* Block / static counts                                               *)
(* ------------------------------------------------------------------ *)

let test_static_count_fallthrough_jump () =
  let b = Mir.Block.make ~label:"a" [ Mir.Insn.Mov (r 1, imm 0) ] (Mir.Block.Jmp "b") in
  check_int "jmp to next is free" 1
    (Mir.Block.static_insn_count ~layout_next:(Some "b") b);
  check_int "jmp away costs transfer+slot" 3
    (Mir.Block.static_insn_count ~layout_next:(Some "c") b)

let test_static_count_branch () =
  let b =
    Mir.Block.make ~label:"a"
      [ Mir.Insn.Cmp (reg 1, imm 0) ]
      (Mir.Block.Br (Mir.Cond.Eq, "t", "f"))
  in
  check_int "branch with fallthrough" 3
    (Mir.Block.static_insn_count ~layout_next:(Some "f") b);
  check_int "branch needing extra jump" 5
    (Mir.Block.static_insn_count ~layout_next:(Some "x") b)

let test_static_count_filled_slot () =
  let b =
    Mir.Block.make ~label:"a"
      [ Mir.Insn.Mov (r 1, imm 0); Mir.Insn.Cmp (reg 1, imm 0) ]
      (Mir.Block.Br (Mir.Cond.Eq, "t", "f"))
  in
  let before = Mir.Block.static_insn_count ~layout_next:(Some "f") b in
  (* move the mov into the delay slot: one nop disappears *)
  b.Mir.Block.insns <- [ Mir.Insn.Cmp (reg 1, imm 0) ];
  b.Mir.Block.term <-
    { b.Mir.Block.term with Mir.Block.delay = Some (Mir.Insn.Mov (r 1, imm 0)) };
  let after = Mir.Block.static_insn_count ~layout_next:(Some "f") b in
  check_int "filling a slot saves one instruction" (before - 1) after

let test_successors () =
  let jtab _ = [| "x"; "y"; "x" |] in
  let b = Mir.Block.make ~label:"a" [] (Mir.Block.Jtab (r 1, 0)) in
  Alcotest.(check (list string)) "jtab successors dedup" [ "x"; "y" ]
    (Mir.Block.successors ~jtab b);
  let br = Mir.Block.make ~label:"a" [] (Mir.Block.Br (Mir.Cond.Eq, "t", "t")) in
  Alcotest.(check (list string)) "br same targets dedup" [ "t" ]
    (Mir.Block.successors ~jtab br)

(* ------------------------------------------------------------------ *)
(* Func                                                                *)
(* ------------------------------------------------------------------ *)

let diamond () =
  (* entry -> (t|f) -> join -> ret *)
  let fn = Mir.Func.make ~name:"d" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "t", "f")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"t" [ Mir.Insn.Mov (r 1, imm 1) ] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"f" [ Mir.Insn.Mov (r 1, imm 2) ] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"join" [] (Mir.Block.Ret (Some (reg 1))));
  fn

let test_func_lookup_and_fresh () =
  let fn = diamond () in
  check_bool "find existing" true (Mir.Func.find_block_opt fn "join" <> None);
  check_bool "find missing" true (Mir.Func.find_block_opt fn "nope" = None);
  let l1 = Mir.Func.fresh_label fn and l2 = Mir.Func.fresh_label fn in
  check_bool "fresh labels distinct" true (not (String.equal l1 l2));
  let r1 = Mir.Func.fresh_reg fn and r2 = Mir.Func.fresh_reg fn in
  check_bool "fresh regs distinct" true (not (Mir.Reg.equal r1 r2));
  check_bool "fresh reg avoids params" true
    (Mir.Reg.to_int r1 > 0)

let test_func_predecessors () =
  let fn = diamond () in
  let preds = Mir.Func.predecessors fn in
  Alcotest.(check (list string)) "join preds" [ "t"; "f" ]
    (Hashtbl.find preds "join");
  Alcotest.(check (list string)) "entry preds" [] (Hashtbl.find preds "entry")

let test_func_reachable () =
  let fn = diamond () in
  Mir.Func.add_block fn (Mir.Block.make ~label:"dead" [] (Mir.Block.Jmp "join"));
  let reach = Mir.Func.reachable fn in
  check_bool "join reachable" true (Hashtbl.mem reach "join");
  check_bool "dead not reachable" false (Hashtbl.mem reach "dead")

let test_insert_blocks_after () =
  let fn = diamond () in
  let nb = Mir.Block.make ~label:"mid" [] (Mir.Block.Jmp "join") in
  Mir.Func.insert_blocks_after fn "t" [ nb ];
  let labels = List.map (fun b -> b.Mir.Block.label) fn.Mir.Func.blocks in
  Alcotest.(check (list string)) "inserted after t"
    [ "entry"; "t"; "mid"; "f"; "join" ] labels;
  (match Mir.Func.insert_blocks_after fn "nope" [] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found")

let test_jtables () =
  let fn = diamond () in
  let id = Mir.Func.add_jtable fn [| "t"; "f" |] in
  check_int "first table id" 0 id;
  let id2 = Mir.Func.add_jtable fn [| "join" |] in
  check_int "second table id" 1 id2;
  check_int "table lookup" 2 (Array.length (Mir.Func.jtab fn 0));
  match Mir.Func.jtab fn 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad table id must raise"

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let test_liveness_diamond () =
  let fn = diamond () in
  let live = Mir.Liveness.compute fn in
  check_bool "r0 live into entry" true
    (Mir.Reg.Set.mem (r 0) (Mir.Liveness.live_in live "entry"));
  check_bool "r1 live out of t" true
    (Mir.Reg.Set.mem (r 1) (Mir.Liveness.live_out live "t"));
  check_bool "r1 not live into entry" false
    (Mir.Reg.Set.mem (r 1) (Mir.Liveness.live_in live "entry"))

let test_liveness_loop () =
  (* head: cmp r1, 10; bge exit | body; body: r1 = r1 + 1; jmp head *)
  let fn = Mir.Func.make ~name:"l" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [ Mir.Insn.Mov (r 1, imm 0) ] (Mir.Block.Jmp "head"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"head"
       [ Mir.Insn.Cmp (reg 1, imm 10) ]
       (Mir.Block.Br (Mir.Cond.Ge, "exit", "body")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"body"
       [ Mir.Insn.Binop (Mir.Insn.Add, r 1, reg 1, imm 1) ]
       (Mir.Block.Jmp "head"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"exit" [] (Mir.Block.Ret (Some (reg 1))));
  let live = Mir.Liveness.compute fn in
  check_bool "loop-carried r1 live around the back edge" true
    (Mir.Reg.Set.mem (r 1) (Mir.Liveness.live_out live "body"));
  check_bool "r1 live into head" true
    (Mir.Reg.Set.mem (r 1) (Mir.Liveness.live_in live "head"))

let test_liveness_delay_slot () =
  let fn = diamond () in
  let entry = Mir.Func.entry fn in
  entry.Mir.Block.term <-
    { entry.Mir.Block.term with Mir.Block.delay = Some (Mir.Insn.Mov (r 2, reg 3)) };
  let live = Mir.Liveness.compute fn in
  check_bool "delay-slot use live into entry" true
    (Mir.Reg.Set.mem (r 3) (Mir.Liveness.live_in live "entry"))

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let prog_of fn =
  let p = Mir.Program.make () in
  Mir.Program.add_func p fn;
  p

let test_validate_ok () =
  match Mir.Validate.func (diamond ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_validate_undefined_label () =
  let fn = diamond () in
  (Mir.Func.find_block fn "t").Mir.Block.term <-
    Mir.Block.term (Mir.Block.Jmp "nowhere");
  expect_invalid ~substr:"undefined label" (Mir.Validate.func fn)

let test_validate_duplicate_label () =
  let fn = diamond () in
  Mir.Func.add_block fn (Mir.Block.make ~label:"t" [] (Mir.Block.Ret None));
  expect_invalid ~substr:"duplicate label" (Mir.Validate.func fn)

let test_validate_missing_cmp () =
  let fn = Mir.Func.make ~name:"m" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [] (Mir.Block.Br (Mir.Cond.Eq, "a", "b")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"b" [] (Mir.Block.Ret None));
  expect_invalid ~substr:"not dominated by a cmp" (Mir.Validate.func fn)

let test_validate_cmp_via_all_paths () =
  (* both predecessors set the codes: the compare-less branch is fine *)
  let fn = Mir.Func.make ~name:"m" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 5) ]
       (Mir.Block.Br (Mir.Cond.Eq, "shared", "other")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"other"
       [ Mir.Insn.Cmp (reg 0, imm 9) ]
       (Mir.Block.Br (Mir.Cond.Eq, "shared", "out")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"shared" [] (Mir.Block.Br (Mir.Cond.Lt, "out", "out2")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"out" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"out2" [] (Mir.Block.Ret None));
  match Mir.Validate.func fn with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_validate_unlowered_switch () =
  let fn = Mir.Func.make ~name:"m" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [] (Mir.Block.Switch (r 0, [ (1, "a") ], "a")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Ret None));
  expect_invalid ~substr:"unlowered switch" (Mir.Validate.func fn);
  match Mir.Validate.func ~allow_switch:true fn with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_validate_delay_cmp () =
  let fn = diamond () in
  let entry = Mir.Func.entry fn in
  entry.Mir.Block.term <-
    { entry.Mir.Block.term with Mir.Block.delay = Some (Mir.Insn.Cmp (reg 1, imm 0)) };
  expect_invalid ~substr:"delay slot" (Mir.Validate.func fn)

let test_validate_uninitialized () =
  let fn = Mir.Func.make ~name:"m" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [] (Mir.Block.Ret (Some (reg 7))));
  expect_invalid ~substr:"read before written"
    (Mir.Validate.func ~check_init:true fn);
  (* without the flag it passes *)
  match Mir.Validate.func fn with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_validate_program_collects () =
  let p = prog_of (diamond ()) in
  let bad = Mir.Func.make ~name:"bad" ~params:[] in
  Mir.Func.add_block bad (Mir.Block.make ~label:"e" [] (Mir.Block.Jmp "gone"));
  Mir.Program.add_func p bad;
  expect_invalid (Mir.Validate.program p)

(* ------------------------------------------------------------------ *)
(* Clone                                                               *)
(* ------------------------------------------------------------------ *)

let test_clone_independence () =
  let fn = diamond () in
  let p = prog_of fn in
  Mir.Program.add_global p { Mir.Program.gname = "g"; size = 4; init = None };
  let copy = Mir.Clone.program p in
  (* mutate the original; the copy must not change *)
  let orig_entry = Mir.Func.entry fn in
  orig_entry.Mir.Block.insns <- [];
  orig_entry.Mir.Block.term <- Mir.Block.term (Mir.Block.Jmp "join");
  let copy_entry = Mir.Func.entry (Mir.Program.find_func copy "d") in
  check_int "copy keeps instructions" 1 (List.length copy_entry.Mir.Block.insns);
  check_bool "copy keeps terminator" true
    (match copy_entry.Mir.Block.term.Mir.Block.kind with
    | Mir.Block.Br _ -> true
    | _ -> false)

let test_program_intern_string () =
  let p = Mir.Program.make () in
  let a = Mir.Program.intern_string p "hello" in
  let b = Mir.Program.intern_string p "hello" in
  let c = Mir.Program.intern_string p "world" in
  check_bool "same string deduplicates" true (String.equal a b);
  check_bool "different strings differ" true (not (String.equal a c));
  match Mir.Program.find_global_opt p a with
  | Some g -> check_int "zero-terminated words" 6 g.Mir.Program.size
  | None -> Alcotest.fail "interned global not found"

let suite =
  [
    case "cond: negate is an involution" test_cond_negate_involution;
    case "cond: negate flips evaluation" test_cond_negate_semantics;
    case "cond: swap mirrors operands" test_cond_swap_semantics;
    case "cond: evaluation table" test_cond_eval_table;
    case "insn: binop evaluation" test_insn_eval_binop;
    case "insn: defs and uses" test_insn_defs_uses;
    case "insn: purity and side effects" test_insn_purity;
    case "block: fall-through jump is free" test_static_count_fallthrough_jump;
    case "block: branch static cost" test_static_count_branch;
    case "block: filled delay slot saves a nop" test_static_count_filled_slot;
    case "block: successor computation" test_successors;
    case "func: lookup and fresh names" test_func_lookup_and_fresh;
    case "func: predecessors" test_func_predecessors;
    case "func: reachability" test_func_reachable;
    case "func: insert_blocks_after" test_insert_blocks_after;
    case "func: jump tables" test_jtables;
    case "liveness: diamond" test_liveness_diamond;
    case "liveness: loop-carried register" test_liveness_loop;
    case "liveness: delay-slot uses" test_liveness_delay_slot;
    case "validate: well-formed function" test_validate_ok;
    case "validate: undefined label" test_validate_undefined_label;
    case "validate: duplicate label" test_validate_duplicate_label;
    case "validate: branch without cmp" test_validate_missing_cmp;
    case "validate: cmp on all paths is accepted" test_validate_cmp_via_all_paths;
    case "validate: unlowered switch" test_validate_unlowered_switch;
    case "validate: cmp in delay slot" test_validate_delay_cmp;
    case "validate: read before written" test_validate_uninitialized;
    case "validate: program-level collection" test_validate_program_collects;
    case "clone: deep copy is independent" test_clone_independence;
    case "program: string interning" test_program_intern_string;
  ]
