test/test_frontend.ml: Alcotest Format Helpers List Minic Mir Reorder Sim String Workloads
