test/test_edge_cases.ml: Alcotest Buffer Char Driver Format Helpers List Mir Mopt Printf Reorder String Workloads
