test/test_properties.ml: Buffer Char Driver Gen Hashtbl Helpers List Minic Mir Mopt Printf QCheck Sim String
