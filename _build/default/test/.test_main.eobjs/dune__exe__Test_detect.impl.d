test/test_detect.ml: Alcotest Buffer Format Helpers List Printf Reorder String Workloads
