test/test_mir.ml: Alcotest Array Hashtbl Helpers List Mir Printf String
