test/test_analyses.ml: Alcotest Hashtbl Helpers List Mir Mopt Sim String
