test/test_range.ml: Alcotest Fmt Helpers Int List Mir Printf QCheck Reorder Sim String
