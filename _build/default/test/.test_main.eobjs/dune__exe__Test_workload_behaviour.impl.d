test/test_workload_behaviour.ml: Helpers Workloads
