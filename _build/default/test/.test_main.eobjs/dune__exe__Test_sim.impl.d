test/test_sim.ml: Alcotest Array Helpers List Mir Reorder Sim
