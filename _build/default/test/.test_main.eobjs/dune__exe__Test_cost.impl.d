test/test_cost.ml: Alcotest Array Helpers List Printf QCheck Reorder String
