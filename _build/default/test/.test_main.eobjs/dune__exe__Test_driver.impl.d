test/test_driver.ml: Alcotest Driver Helpers Lazy List Reorder Sim String Workloads
