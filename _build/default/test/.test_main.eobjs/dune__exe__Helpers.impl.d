test/helpers.ml: Alcotest Driver List Minic Mir Mopt QCheck QCheck_alcotest Sim String
