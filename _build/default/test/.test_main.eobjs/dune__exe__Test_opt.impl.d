test/test_opt.ml: Alcotest Buffer Driver Hashtbl Helpers Lazy List Minic Mir Mopt Printf Sim String Workloads
