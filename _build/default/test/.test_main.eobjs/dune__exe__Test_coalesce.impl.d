test/test_coalesce.ml: Alcotest Array Buffer Char Driver Helpers Lazy List Mir Mopt Option Printf Reorder Sim String Workloads
