test/test_mir_text.ml: Alcotest Driver Helpers Lazy List Mir Sim String Workloads
