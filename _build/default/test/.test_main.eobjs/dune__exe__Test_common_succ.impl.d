test/test_common_succ.ml: Alcotest Array Char Driver Gen Helpers List Mir QCheck Reorder Sim String Workloads
