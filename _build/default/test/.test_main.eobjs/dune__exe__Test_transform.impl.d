test/test_transform.ml: Alcotest Char Driver Helpers List Mir Mopt Reorder Sim String
