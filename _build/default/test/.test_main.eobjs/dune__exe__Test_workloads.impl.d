test/test_workloads.ml: Alcotest Driver Helpers Lazy List Mir Mopt Printf Reorder Sim String Workloads
