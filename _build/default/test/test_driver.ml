(* Driver-level tests: configuration, measurement plumbing, percentage
   arithmetic and the stats aggregation used by the benchmark tables. *)

open Helpers

let test_pct () =
  Alcotest.(check (float 0.001)) "decrease" (-10.0) (Driver.Pipeline.pct 1000 900);
  Alcotest.(check (float 0.001)) "increase" 25.0 (Driver.Pipeline.pct 400 500);
  Alcotest.(check (float 0.001)) "zero base" 0.0 (Driver.Pipeline.pct 0 5)

let test_paper_predictors () =
  check_int "14 predictor configurations" 14
    (List.length Driver.Config.paper_predictors);
  check_bool "includes the Ultra's (0,2)x2048" true
    (List.mem (0, 2, 2048) Driver.Config.paper_predictors)

let simple_src =
  "int main() { int c; int n = 0; while ((c = getchar()) != EOF) { if (c == \
   'a') n++; else if (c == 'b') n += 2; } print_int(n); return 0; }"

let test_measure_fields () =
  let r =
    reorder_pipeline ~training_input:"aabbbcc" ~test_input:"abcabc" simple_src
  in
  let v = r.Driver.Pipeline.r_original in
  check_int "all predictors measured" 14
    (List.length v.Driver.Pipeline.v_mispredicts);
  check_int "all machines modelled" 3 (List.length v.Driver.Pipeline.v_cycles);
  check_bool "static size positive" true (v.Driver.Pipeline.v_static_insns > 0);
  check_output "output captured" "6" v.Driver.Pipeline.v_output

let test_predictor_monotone_entries () =
  (* more entries never increase mispredictions on our deterministic,
     alias-dominated workloads' original runs (sanity of wiring, not a
     general theorem; checked on one program) *)
  let w = Workloads.Registry.find "wc" in
  let r =
    reorder_pipeline
      ~training_input:(String.sub (Lazy.force w.Workloads.Spec.training_input) 0 3000)
      ~test_input:(String.sub (Lazy.force w.Workloads.Spec.test_input) 0 3000)
      w.Workloads.Spec.source
  in
  let m = r.Driver.Pipeline.r_original.Driver.Pipeline.v_mispredicts in
  let get e = List.assoc (0, 2, e) m in
  check_bool "32 entries >= 2048 entries" true (get 32 >= get 2048)

let test_cycles_orderable () =
  let r =
    reorder_pipeline ~training_input:"aaabbb" ~test_input:"aaabbb" simple_src
  in
  let cycles = r.Driver.Pipeline.r_original.Driver.Pipeline.v_cycles in
  List.iter
    (fun (name, c) ->
      check_bool (name ^ " cycles >= insns") true
        (c
        >= r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters
             .Sim.Counters.insns))
    cycles

let test_reorder_disabled () =
  let config = { Driver.Config.default with Driver.Config.reorder_enabled = false } in
  let r =
    reorder_pipeline ~config ~training_input:"aab" ~test_input:"abab" simple_src
  in
  check_int "no sequences considered" 0 (List.length r.Driver.Pipeline.r_seqs);
  check_int "identical instruction counts"
    r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters.Sim.Counters.insns
    r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters.Sim.Counters.insns

let test_stats_aggregation () =
  let r =
    reorder_pipeline ~training_input:"aaaaabbbbbccccc" ~test_input:"cabcab"
      simple_src
  in
  let s = r.Driver.Pipeline.r_stats in
  check_bool "detected >= reordered" true
    (s.Reorder.Stats.total_seqs >= s.Reorder.Stats.reordered_seqs);
  check_int "one length entry per reordered sequence"
    s.Reorder.Stats.reordered_seqs
    (List.length s.Reorder.Stats.orig_branch_lengths)

let test_stats_merge_and_histogram () =
  let h = Reorder.Stats.histogram [ 2; 3; 2; 2; 5 ] in
  Alcotest.(check (list (pair int int))) "histogram" [ (2, 3); (3, 1); (5, 1) ] h;
  let a =
    {
      Reorder.Stats.total_seqs = 2;
      reordered_seqs = 1;
      orig_branch_lengths = [ 2 ];
      final_branch_lengths = [ 4 ];
      avg_len_before = 2.0;
      avg_len_after = 4.0;
    }
  in
  let m = Reorder.Stats.merge a a in
  check_int "merged totals" 4 m.Reorder.Stats.total_seqs;
  Alcotest.(check (float 0.001)) "merged average" 2.0 m.Reorder.Stats.avg_len_before

let test_output_mismatch_detected () =
  (* the pipeline raises if outputs diverge; simulate by feeding a
     program whose behaviour is fine — then check the happy path only.
     (A genuine mismatch would be a transformation bug, which the other
     suites hunt; here we just pin the guard's existence.) *)
  let r = reorder_pipeline ~training_input:"ab" ~test_input:"ba" simple_src in
  check_output "outputs equal by construction"
    r.Driver.Pipeline.r_original.Driver.Pipeline.v_output
    r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output

let suite =
  [
    case "driver: percentage arithmetic" test_pct;
    case "driver: Table 6 predictor grid" test_paper_predictors;
    case "driver: measurement fields" test_measure_fields;
    case "driver: predictor size wiring" test_predictor_monotone_entries;
    case "driver: cycle models bounded below by instructions" test_cycles_orderable;
    case "driver: reordering can be disabled" test_reorder_disabled;
    case "driver: stats aggregation" test_stats_aggregation;
    case "driver: stats merge and histogram" test_stats_merge_and_histogram;
    case "driver: output equality guard" test_output_mismatch_detected;
  ]
