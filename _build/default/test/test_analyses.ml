(* Dominators, natural loops, CSE and LICM. *)

open Helpers

let r n = Mir.Reg.of_int n
let reg n = Mir.Operand.Reg (r n)
let imm n = Mir.Operand.Imm n

(* entry -> head; head -> (body | exit); body -> head *)
let loop_fn ?(body_insns = []) () =
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Mov (r 1, imm 0); Mir.Insn.Mov (r 2, imm 7) ]
       (Mir.Block.Jmp "head"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"head"
       [ Mir.Insn.Cmp (reg 1, imm 10) ]
       (Mir.Block.Br (Mir.Cond.Ge, "exit", "body")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"body"
       (body_insns @ [ Mir.Insn.Binop (Mir.Insn.Add, r 1, reg 1, imm 1) ])
       (Mir.Block.Jmp "head"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"exit" [] (Mir.Block.Ret (Some (reg 1))));
  fn

(* ------------------------------------------------------------------ *)
(* Dominators                                                          *)
(* ------------------------------------------------------------------ *)

let test_dom_chain () =
  let fn = loop_fn () in
  let dom = Mir.Dom.compute fn in
  check_bool "entry dominates everything" true
    (List.for_all
       (fun (b : Mir.Block.t) -> Mir.Dom.dominates dom "entry" b.Mir.Block.label)
       fn.Mir.Func.blocks);
  check_bool "head dominates body" true (Mir.Dom.dominates dom "head" "body");
  check_bool "body does not dominate head" false
    (Mir.Dom.dominates dom "body" "head");
  check_bool "reflexive" true (Mir.Dom.dominates dom "body" "body");
  Alcotest.(check (option string)) "idom of body" (Some "head")
    (Mir.Dom.idom dom "body");
  Alcotest.(check (option string)) "idom of entry" None (Mir.Dom.idom dom "entry")

let test_dom_diamond_join () =
  let fn = Mir.Func.make ~name:"d" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "t", "f")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"t" [] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"f" [] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"join" [] (Mir.Block.Ret None));
  let dom = Mir.Dom.compute fn in
  Alcotest.(check (option string)) "join's idom skips the arms" (Some "entry")
    (Mir.Dom.idom dom "join");
  Alcotest.(check (list string)) "dominator chain of join" [ "join"; "entry" ]
    (Mir.Dom.dominators dom "join");
  check_bool "t does not dominate join" false (Mir.Dom.dominates dom "t" "join");
  (* dominance frontier: t's frontier is the join *)
  Alcotest.(check (list string)) "frontier of t" [ "join" ]
    (Mir.Dom.dominance_frontier dom "t")

(* ------------------------------------------------------------------ *)
(* Loops                                                               *)
(* ------------------------------------------------------------------ *)

let test_loop_detection () =
  let fn = loop_fn () in
  match Mir.Loops.find fn with
  | [ l ] ->
    check_output "header" "head" l.Mir.Loops.header;
    Alcotest.(check (list string)) "body" [ "head"; "body" ] l.Mir.Loops.body;
    Alcotest.(check (list string)) "back edges" [ "body" ] l.Mir.Loops.back_edges
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_loop_nested () =
  let prog =
    compile
      "int main() { int i; int j; int s = 0; for (i = 0; i < 3; i++) for (j = \
       0; j < 3; j++) s++; print_int(s); return 0; }"
  in
  let fn = Mir.Program.find_func prog "main" in
  check_int "two loops" 2 (List.length (Mir.Loops.find fn))

let test_preheader_reuse () =
  let fn = loop_fn () in
  let l = List.hd (Mir.Loops.find fn) in
  (* entry already falls uniquely into head *)
  check_output "existing block reused" "entry" (Mir.Loops.preheader fn l)

let test_preheader_created () =
  let fn = loop_fn () in
  (* give the header a second outside predecessor *)
  Mir.Func.add_block fn (Mir.Block.make ~label:"side" [] (Mir.Block.Jmp "head"));
  (Mir.Func.find_block fn "entry").Mir.Block.term <-
    Mir.Block.term (Mir.Block.Br (Mir.Cond.Eq, "side", "head"));
  (Mir.Func.find_block fn "entry").Mir.Block.insns <-
    (Mir.Func.find_block fn "entry").Mir.Block.insns
    @ [ Mir.Insn.Cmp (reg 1, imm 0) ];
  let l = List.hd (Mir.Loops.find fn) in
  let ph = Mir.Loops.preheader fn l in
  check_bool "fresh block" true (not (String.equal ph "entry"));
  (* both outside predecessors now reach head only through ph *)
  let preds = Mir.Func.predecessors fn in
  Alcotest.(check (list string)) "head's preds"
    (List.sort compare [ "body"; ph ])
    (List.sort compare (Hashtbl.find preds "head"))

(* ------------------------------------------------------------------ *)
(* CSE                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cse_binop () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0; r 1 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Binop (Mir.Insn.Add, r 2, reg 0, reg 1);
         Mir.Insn.Binop (Mir.Insn.Add, r 3, reg 0, reg 1);
         Mir.Insn.Binop (Mir.Insn.Mul, r 4, reg 2, reg 3) ]
       (Mir.Block.Ret (Some (reg 4))));
  check_bool "changed" true (Mopt.Cse.run_func fn);
  match (Mir.Func.entry fn).Mir.Block.insns with
  | [ _; Mir.Insn.Mov (_, Mir.Operand.Reg src); _ ] ->
    check_int "second add becomes a move of the first" 2 (Mir.Reg.to_int src)
  | insns ->
    Alcotest.failf "unexpected: %s"
      (String.concat "; " (List.map Mir.Insn.show insns))

let test_cse_killed_by_redef () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Binop (Mir.Insn.Add, r 2, reg 0, imm 1);
         Mir.Insn.Binop (Mir.Insn.Add, r 0, reg 0, imm 5);
         Mir.Insn.Binop (Mir.Insn.Add, r 3, reg 0, imm 1) ]
       (Mir.Block.Ret (Some (reg 3))));
  check_bool "no rewrite across the operand's redefinition" false
    (Mopt.Cse.run_func fn)

let test_cse_loads () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Load (r 1, "g", reg 0);
         Mir.Insn.Load (r 2, "g", reg 0);
         Mir.Insn.Store ("g", reg 0, imm 1);
         Mir.Insn.Load (r 3, "g", reg 0);
         Mir.Insn.Binop (Mir.Insn.Add, r 4, reg 2, reg 3) ]
       (Mir.Block.Ret (Some (reg 4))));
  check_bool "changed" true (Mopt.Cse.run_func fn);
  let insns = (Mir.Func.entry fn).Mir.Block.insns in
  (match List.nth insns 1 with
  | Mir.Insn.Mov (_, Mir.Operand.Reg src) ->
    check_int "second load forwarded" 1 (Mir.Reg.to_int src)
  | i -> Alcotest.failf "expected a move, got %s" (Mir.Insn.show i));
  match List.nth insns 3 with
  | Mir.Insn.Load _ -> () (* the store killed availability *)
  | i -> Alcotest.failf "load after store must remain, got %s" (Mir.Insn.show i)

let test_cse_behaviour () =
  (* semantics preserved on a source with visible redundancy *)
  check_output "same result" "30 30"
    (run_src
       "int a[4]; int main() { a[2] = 15; int x = a[2] + a[2]; print_int(x); \
        putchar(' '); int y = a[2] + a[2]; print_int(y); return 0; }")

(* ------------------------------------------------------------------ *)
(* LICM                                                                *)
(* ------------------------------------------------------------------ *)

let test_licm_hoists_invariant () =
  (* r3 = r2 * 3 recomputed every iteration with loop-invariant r2 *)
  let fn =
    loop_fn ~body_insns:[ Mir.Insn.Binop (Mir.Insn.Mul, r 3, reg 2, imm 3) ] ()
  in
  let p = Mir.Program.make () in
  Mir.Program.add_func p fn;
  let before = (Sim.Machine.run p ~input:"").Sim.Machine.counters.Sim.Counters.insns in
  let hoisted = Mopt.Licm.run_func fn in
  check_int "one instruction hoisted" 1 hoisted;
  Mir.Validate.check p;
  let after = (Sim.Machine.run p ~input:"").Sim.Machine.counters.Sim.Counters.insns in
  check_bool "dynamic count drops" true (after < before);
  (* the multiply landed outside the loop *)
  let body = Mir.Func.find_block fn "body" in
  check_bool "body no longer multiplies" true
    (not
       (List.exists
          (function Mir.Insn.Binop (Mir.Insn.Mul, _, _, _) -> true | _ -> false)
          body.Mir.Block.insns))

let test_licm_skips_variant () =
  (* r3 depends on the induction variable: must stay *)
  let fn =
    loop_fn ~body_insns:[ Mir.Insn.Binop (Mir.Insn.Mul, r 3, reg 1, imm 3) ] ()
  in
  check_int "nothing hoisted" 0 (Mopt.Licm.run_func fn)

let test_licm_skips_live_out () =
  (* the hoisted register is read after the loop: zero-trip executions
     would observe the wrong value *)
  let fn =
    loop_fn ~body_insns:[ Mir.Insn.Binop (Mir.Insn.Mul, r 4, reg 2, imm 3) ] ()
  in
  (Mir.Func.find_block fn "exit").Mir.Block.term <-
    Mir.Block.term (Mir.Block.Ret (Some (reg 4)));
  (* r4 must be defined on the zero-trip path too for a valid program *)
  (Mir.Func.find_block fn "entry").Mir.Block.insns <-
    (Mir.Func.find_block fn "entry").Mir.Block.insns
    @ [ Mir.Insn.Mov (r 4, imm 0) ];
  check_int "nothing hoisted" 0 (Mopt.Licm.run_func fn)

let test_licm_loads_blocked_by_stores () =
  let fn =
    loop_fn
      ~body_insns:
        [ Mir.Insn.Load (r 3, "g", imm 0);
          Mir.Insn.Store ("g", imm 0, reg 3) ]
      ()
  in
  check_int "loads stay when the loop stores" 0 (Mopt.Licm.run_func fn)

let test_licm_hoists_pure_load () =
  let fn = loop_fn ~body_insns:[ Mir.Insn.Load (r 3, "g", imm 0) ] () in
  check_int "load hoisted from store-free loop" 1 (Mopt.Licm.run_func fn)

let test_licm_behavioural () =
  (* a source-level invariant expression inside a loop; outputs equal and
     instruction counts improve through the full pipeline *)
  let src =
    "int g = 21;\n\
     int main() { int i; int s = 0; int c = getchar();\n\
     for (i = 0; i < 50; i++) { s = s + (g * 2 + c); }\n\
     print_int(s); return 0; }"
  in
  check_output "value correct" (string_of_int (50 * ((21 * 2) + 65)))
    (run_src ~input:"A" src)

let test_licm_chain_hoists_over_rounds () =
  let fn =
    loop_fn
      ~body_insns:
        [ Mir.Insn.Binop (Mir.Insn.Add, r 3, reg 2, imm 1);
          Mir.Insn.Binop (Mir.Insn.Mul, r 4, reg 3, imm 2) ]
      ()
  in
  check_int "dependent chain fully hoisted" 2 (Mopt.Licm.run_func fn)

let suite =
  [
    case "dom: loop chain" test_dom_chain;
    case "dom: diamond join" test_dom_diamond_join;
    case "loops: while shape" test_loop_detection;
    case "loops: nesting" test_loop_nested;
    case "loops: preheader reuse" test_preheader_reuse;
    case "loops: preheader creation" test_preheader_created;
    case "cse: redundant binop" test_cse_binop;
    case "cse: operand redefinition kills" test_cse_killed_by_redef;
    case "cse: loads and stores" test_cse_loads;
    case "cse: behaviour preserved" test_cse_behaviour;
    case "licm: hoists invariant computation" test_licm_hoists_invariant;
    case "licm: keeps induction-dependent code" test_licm_skips_variant;
    case "licm: respects live-out registers" test_licm_skips_live_out;
    case "licm: loops with stores keep loads" test_licm_loads_blocked_by_stores;
    case "licm: hoists loads from pure loops" test_licm_hoists_pure_load;
    case "licm: behaviour preserved" test_licm_behavioural;
    case "licm: dependent chains hoist over rounds" test_licm_chain_hoists_over_rounds;
  ]
