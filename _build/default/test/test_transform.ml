(* Tests for the reordering transformation itself (Sections 7-8):
   semantic preservation, side-effect duplication, condition-code fixups,
   redundant comparison elimination, tail duplication and the guarantees
   of the full pass. *)

open Helpers

let run_pipeline ?config src ~input =
  reorder_pipeline ?config ~training_input:input ~test_input:input src

(* compile + reorder a source with given training input, then return a
   function that runs both versions on arbitrary inputs and checks they
   agree, returning (orig_insns, reord_insns) *)
let both_versions ?(config = Driver.Config.default) ~training src =
  let base = Driver.Pipeline.compile_base config src in
  let seqs = Reorder.Detect.find_program base in
  let train_prog = Mir.Clone.program base in
  let table = Reorder.Profiles.instrument train_prog seqs in
  let _ = Sim.Machine.run train_prog ~profile:table ~input:training in
  let orig = Mir.Clone.program base in
  ignore (Mopt.Cleanup.finalize orig);
  let reord = Mir.Clone.program base in
  let report = Reorder.Pass.run reord seqs table in
  ignore (Mopt.Cleanup.finalize reord);
  Mir.Validate.check reord;
  ( report,
    fun input ->
      let a = Sim.Machine.run orig ~input in
      let b = Sim.Machine.run reord ~input in
      check_output "outputs agree" a.Sim.Machine.output b.Sim.Machine.output;
      check_int "exit codes agree" a.Sim.Machine.exit_code b.Sim.Machine.exit_code;
      ( a.Sim.Machine.counters.Sim.Counters.insns,
        b.Sim.Machine.counters.Sim.Counters.insns ) )

let classify_src =
  "int tally[5];\n\
   int classify(int c) { if (c == ' ') return 1; else if (c == '\\n') return \
   2; else if (c == EOF) return 3; return 0; }\n\
   int main() { int c; while (1) { c = getchar(); int k = classify(c); \
   tally[k]++; if (c == EOF) break; } print_int(tally[0]); print_int(tally[1]); \
   print_int(tally[2]); print_int(tally[3]); return 0; }"

let test_figure1_reordering () =
  let report, run = both_versions ~training:"mostly letters here\n" classify_src in
  check_bool "classify reordered" true (Reorder.Pass.reordered_count report >= 1);
  let orig, reord = run "completely different text, lots of words\n" in
  check_bool "reordered executes fewer instructions" true (reord < orig)

let test_empty_training_leaves_original () =
  (* a function the training run never calls: its sequence must be left
     alone, exactly the paper's "most common factor that prevented a
     sequence from being reordered" *)
  let src =
    "int f(int c) { if (c == 1) return 1; if (c == 2) return 2; return 0; }\n\
     int main() { int c = getchar(); if (c == EOF) return 0; return f(c); }"
  in
  let report, run = both_versions ~training:"" src in
  let f_reports =
    List.filter
      (fun sr -> String.equal sr.Reorder.Pass.sr_seq.Reorder.Detect.func_name "f")
      report.Reorder.Pass.seq_reports
  in
  List.iter
    (fun sr ->
      match sr.Reorder.Pass.sr_outcome with
      | Reorder.Pass.Unchanged _ -> ()
      | Reorder.Pass.Reordered _ | Reorder.Pass.Coalesced _ ->
        Alcotest.fail "sequence reordered despite zero executions")
    f_reports;
  check_bool "f's sequence was detected" true (f_reports <> []);
  ignore (run "\001");
  ignore (run "")

let test_side_effect_duplication () =
  (* g++ sits between two conditions; after reordering it must still
     execute exactly once per traversal that passes the first condition *)
  let src =
    "int g;\n\
     int f(int c) { if (c == 1) return 10; g++; if (c == 2) return 20; if (c \
     == 3) return 30; return 0; }\n\
     int main() { int c; int s = 0; while ((c = getchar()) != EOF) { s += f(c \
     % 5); } print_int(s); putchar(' '); print_int(g); return 0; }"
  in
  (* train so that 3 is hottest: reordering wants it first, which forces
     the side effect onto exit edges *)
  let training = "\003\003\003\003\003\003\002\001\000" in
  let report, run = both_versions ~training src in
  check_bool "sequence reordered despite side effects" true
    (Reorder.Pass.reordered_count report >= 1);
  ignore (run "\000\001\002\003\004\003\003\002\001\000\004\004");
  ignore (run "\003\003\003");
  ignore (run "")

let test_figure10_two_side_effects () =
  (* the paper's Figure 10 shape: three conditions with side effects S1
     (between R1 and R2) and S2 (between R2 and R3), where the side
     effects produce observable output so both their multiplicity and
     their relative order are checked *)
  let src =
    "int f(int c) {\n\
    \  if (c == 1) return 10;\n\
    \  putchar('A');              /* S1 */\n\
    \  if (c == 2) return 20;\n\
    \  putchar('B');              /* S2 */\n\
    \  if (c == 3) return 30;\n\
    \  return 0;\n\
     }\n\
     int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c \
     % 5); print_int(s); return 0; }"
  in
  (* train with 3 dominant so the reordered sequence tests [3] first,
     which must still print A then B exactly when the original would *)
  let report, run = both_versions ~training:"\003\003\003\003\003\002\000" src in
  check_bool "reordered" true (Reorder.Pass.reordered_count report >= 1);
  (* c%5=0 -> A B, =1 -> nothing, =2 -> A, =3 -> A B, =4 -> A B *)
  ignore (run "\000\001\002\003\004");
  ignore (run "\003\003");
  ignore (run "\001\001");
  ignore (run "\004");
  ignore (run "")

let test_side_effect_with_call () =
  (* the intervening side effect performs I/O: order and multiplicity of
     output is observable and must be preserved *)
  let src =
    "int f(int c) { if (c == 'x') return 1; putchar('.'); if (c == 'y') \
     return 2; return 0; }\n\
     int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c); \
     print_int(s); return 0; }"
  in
  let report, run = both_versions ~training:"yyyyyyyyzx" src in
  check_bool "reordered" true (Reorder.Pass.reordered_count report >= 1);
  ignore (run "xyzzy");
  ignore (run "zzzzzzx");
  ignore (run "")

let test_cc_fixup_for_binary_search_targets () =
  (* a binary-search switch inside a hot function: sequence exits can
     target compare-less blocks, requiring the compare fixup *)
  let src =
    "int f(int c) { switch (c) { case 10: return 1; case 20: return 2; case \
     30: return 3; case 40: return 4; case 50: return 5; case 60: return 6; \
     case 70: return 7; case 80: return 8; default: return 0; } }\n\
     int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c); \
     print_int(s); return 0; }"
  in
  let training = String.init 200 (fun i -> Char.chr (10 * (1 + (i mod 8)))) in
  let report, run = both_versions ~training src in
  check_bool "spine sequences reordered" true
    (Reorder.Pass.reordered_count report >= 1);
  ignore (run (String.init 100 (fun i -> Char.chr (10 + (i mod 90)))));
  ignore (run "PPPP")

let test_form4_order_choice () =
  (* a bounded range with all the remaining mass above it: the upper
     bound should be tested first *)
  let src =
    "int f(int c) { if (c >= 10 && c <= 19) return 1; if (c == 200) return 2; \
     return 0; }\n\
     int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c); \
     print_int(s); return 0; }"
  in
  (* training: everything far above the bounded range *)
  let training = String.make 50 (Char.chr 220) in
  let report, run = both_versions ~training src in
  ignore report;
  ignore (run (String.init 60 (fun i -> Char.chr (i mod 250))));
  ignore (run training)

let test_redundant_cmp_elimination_effect () =
  (* adjacent tests of c and c+1 after reordering merge compares
     (Figure 9); verify behaviour and that some compare was eliminated *)
  let src =
    "int f(int c) { if (c == 9) return 1; if (c == 10) return 2; if (c > 10) \
     return 3; return 0; }\n\
     int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c); \
     print_int(s); return 0; }"
  in
  let report, run = both_versions ~training:"abcdef\n\tghij" src in
  let merged =
    List.exists
      (fun sr ->
        match sr.Reorder.Pass.sr_outcome with
        | Reorder.Pass.Reordered info -> info.Reorder.Apply.cmps_eliminated > 0
        | Reorder.Pass.Coalesced _ | Reorder.Pass.Unchanged _ -> false)
      report.Reorder.Pass.seq_reports
  in
  check_bool "at least one compare merged" true merged;
  ignore (run "zyx\n\t\n 987");
  ignore (run "\n\n\n")

let test_ablation_flags () =
  (* every ablation combination still preserves semantics *)
  let src = classify_src in
  List.iter
    (fun (tail_dup_limit, improve_cmp, improve_form4) ->
      let config =
        {
          Driver.Config.default with
          Driver.Config.apply_options =
            { Reorder.Apply.tail_dup_limit; improve_cmp; improve_form4 };
        }
      in
      let _, run =
        both_versions ~config ~training:"words and more words\n" src
      in
      ignore (run "other text 123\n\t!"))
    [ (0, false, false); (8, false, true); (0, true, false); (8, true, true) ]

let test_keep_original_default_ablation () =
  let config = { Driver.Config.default with Driver.Config.keep_original_default = true } in
  let report, run =
    both_versions ~config ~training:"mostly normal words\n" classify_src
  in
  ignore (run "some other input\n");
  (* with the restriction every chosen default is the original one *)
  List.iter
    (fun sr ->
      match sr.Reorder.Pass.sr_choice, sr.Reorder.Pass.sr_outcome with
      | Some c, Reorder.Pass.Reordered _ ->
        check_output "default unchanged"
          sr.Reorder.Pass.sr_seq.Reorder.Detect.default_target
          c.Reorder.Select.default_target
      | _ -> ())
    report.Reorder.Pass.seq_reports

let test_exhaustive_selector_agrees () =
  let greedy_cfg = Driver.Config.default in
  let exhaustive_cfg = { Driver.Config.default with Driver.Config.selector = `Exhaustive } in
  let training = "an input with plenty of words\n" in
  let test = "and some different test data\n" in
  let rg = reorder_pipeline ~config:greedy_cfg ~training_input:training ~test_input:test classify_src in
  let re = reorder_pipeline ~config:exhaustive_cfg ~training_input:training ~test_input:test classify_src in
  (* the paper found greedy always matched exhaustive; our programs agree *)
  check_int "same instruction counts"
    rg.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters.Sim.Counters.insns
    re.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters.Sim.Counters.insns

let test_profile_strip () =
  let prog = compile classify_src in
  let seqs = Reorder.Detect.find_program prog in
  let _ = Reorder.Profiles.instrument prog seqs in
  let count_profiles p =
    List.fold_left
      (fun acc (fn : Mir.Func.t) ->
        List.fold_left
          (fun acc (b : Mir.Block.t) ->
            acc
            + List.length (List.filter Mir.Insn.is_profile b.Mir.Block.insns))
          acc fn.Mir.Func.blocks)
      0 p.Mir.Program.funcs
  in
  check_int "one profile insn per sequence" (List.length seqs) (count_profiles prog);
  Reorder.Profiles.strip prog;
  check_int "strip removes them all" 0 (count_profiles prog)

let test_reordered_sequences_grow () =
  (* default ranges become explicit: reordered length >= original, as the
     paper's Table 8 shows *)
  let r = run_pipeline classify_src ~input:"normal words flow here\n" in
  let s = r.Driver.Pipeline.r_stats in
  check_bool "avg length grows" true
    (s.Reorder.Stats.avg_len_after >= s.Reorder.Stats.avg_len_before)

let test_tail_dup_avoids_jumps () =
  (* with tail duplication the reordered version executes fewer
     unconditional jumps than without it *)
  let mk limit =
    let config =
      {
        Driver.Config.default with
        Driver.Config.apply_options =
          { Reorder.Apply.default_options with Reorder.Apply.tail_dup_limit = limit };
      }
    in
    let input = "lots of letters making the default hot\n" in
    let r = reorder_pipeline ~config ~training_input:input ~test_input:input classify_src in
    r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters.Sim.Counters.jumps
  in
  check_bool "tail duplication saves jumps" true (mk 8 <= mk 0)

let suite =
  [
    case "transform: Figure 1 end to end" test_figure1_reordering;
    case "transform: unexecuted sequences untouched"
      test_empty_training_leaves_original;
    case "transform: side effects duplicated correctly"
      test_side_effect_duplication;
    case "transform: Figure 10 with two side effects"
      test_figure10_two_side_effects;
    case "transform: observable side effects preserved"
      test_side_effect_with_call;
    case "transform: condition-code fixups for tree targets"
      test_cc_fixup_for_binary_search_targets;
    case "transform: Form 4 bound order" test_form4_order_choice;
    case "transform: redundant compares merged (Figure 9)"
      test_redundant_cmp_elimination_effect;
    case "transform: ablation combinations preserve semantics"
      test_ablation_flags;
    case "transform: keep-original-default ablation"
      test_keep_original_default_ablation;
    case "transform: exhaustive selector agrees with greedy"
      test_exhaustive_selector_agrees;
    case "transform: profile instrumentation strips cleanly" test_profile_strip;
    case "transform: sequences lengthen as defaults become explicit"
      test_reordered_sequences_grow;
    case "transform: tail duplication reduces jumps" test_tail_dup_avoids_jumps;
  ]
