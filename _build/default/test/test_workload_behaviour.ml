(* Behavioural pins for the workload programs: small hand-checked inputs
   with exact expected outputs, so the re-created utilities keep doing
   what their descriptions claim while the pipeline evolves. *)

open Helpers

let run_workload name input =
  run_src ~input (Workloads.Registry.find name).Workloads.Spec.source

let test_wc () =
  check_output "counts" "2 5 15\n" (run_workload "wc" "one two\nx yy z\n");
  check_output "empty" "0 0 0\n" (run_workload "wc" "");
  check_output "tabs separate words" "1 3 6\n" (run_workload "wc" "a\tb c\n")

let test_grep () =
  check_output "matching lines echoed" "start\ntail\n2\n"
    (run_workload "grep" "start\nnope\ntail\n");
  check_output "no match" "0\n" (run_workload "grep" "zzz\nqqq\n")

let test_sed () =
  (* s/ta/TA/ once per line, y/xyz/XYZ/, /#/d, double print on etaoin *)
  check_output "substitution and transliteration" "TAXi Xen\n0 1 0\n"
    (run_workload "sed" "taxi xen\n");
  check_output "hash lines deleted" "keep\n1 0 0\n"
    (run_workload "sed" "#gone\nkeep\n");
  check_output "etaoin doubles" "eTAoin\neTAoin\n0 2 1\n"
    (run_workload "sed" "etaoin\n")

let test_deroff () =
  check_output "requests dropped" "hello\n1\n"
    (run_workload "deroff" ".PP intro\nhello\n");
  check_output "font escapes stripped" "bold\n0\n"
    (run_workload "deroff" "\\fBbold\n");
  check_output "table blocks dropped" "before\nafter\n3\n"
    (run_workload "deroff" "before\n.TS\nrow row\n.TE\nafter\n")

let test_ctags () =
  check_output "function tags" "alpha\n1 0\n"
    (run_workload "ctags" "alpha (x)\nif (y)\n");
  check_output "define tags" "WIDTH\n0 1\n"
    (run_workload "ctags" "#define WIDTH 80\n");
  check_output "keywords skipped" "0 0\n"
    (run_workload "ctags" "while (1)\nreturn (0)\n")

let test_hyphen () =
  check_output "existing hyphen listed" "well-known\n1 0\n"
    (run_workload "hyphen" "well-known\n");
  check_output "suffix suggested" "break-ing\n0 1\n"
    (run_workload "hyphen" "breaking\n");
  check_output "short words ignored" "0 0\n" (run_workload "hyphen" "dog ing\n")

let test_join () =
  (* keys come from the compiled-in table; key "1" is always present?
     the table is generated: probe with its first key *)
  let out = run_workload "join" "999999 zz\n" in
  check_output "unmatched key joins nothing" "0\n" out

let test_pr () =
  let out = run_workload "pr" "alpha\n" in
  check_bool "has a page header" true (contains_substring out "Page 1");
  check_bool "line is numbered" true (contains_substring out "    1 alpha");
  check_bool "pads to a full page" true (contains_substring out "56 1\n")

let test_nroff () =
  check_output "centering" "                             short\n1\n"
    (run_workload "nroff" ".ce\nshort\n");
  check_output "spacing request" "\n\nx\n1\n" (run_workload "nroff" ".sp 2\nx\n");
  (* filling: words join into one output line *)
  check_output "fill joins words" "a b c\n0\n" (run_workload "nroff" "a\nb\nc\n")

let test_lex () =
  check_output "token classes" "2 1 0 1 1 0 5 0 \n"
    (run_workload "lex" "ab cd 12 + /* z */\n")

let test_cpp () =
  check_output "directives counted"
    "#define X 1\nab 12\n1 1 1 0 0\n"
    (run_workload "cpp" "#define X 1\nab 12\n")

let test_sort () =
  check_output "lines sorted case-insensitively" "Apple\nbanana\ncherry\n3\n"
    (run_workload "sort" "cherry\nApple\nbanana\n")

let test_awk () =
  check_output "fields, sums, extrema"
    "2 6 1 30 1 20 10 15\n"
    (run_workload "awk" "60000 10 7\n40000 20 1\n")

let test_yacc () =
  (* checksum = (14 mod 9973) + (9 mod 9973); 7 number/plus/times tokens *)
  check_output "expressions evaluated" "2 23 7\n"
    (run_workload "yacc" "2 + 3 * 4\n10 - 1\n")

let test_ptx () =
  check_output "index entries" "quick:1\nbrown:2\n2\n"
    (run_workload "ptx" "the quick\nand brown\n")

let test_sdiff () =
  check_output "equal halves" "==\n2 0\n"
    (run_workload "sdiff" "aa\nbb\n\001aa\nbb\n");
  check_output "differing halves" "||\n0 2\n"
    (run_workload "sdiff" "aa\nbb\n\001ax\nbx\n")

let test_cb () =
  let out = run_workload "cb" "if(x){y;}" in
  check_bool "braces open a line" true (contains_substring out "{\n");
  check_bool "body indented" true (contains_substring out "  y;\n")

let suite =
  [
    case "wc pins" test_wc;
    case "grep pins" test_grep;
    case "sed pins" test_sed;
    case "deroff pins" test_deroff;
    case "ctags pins" test_ctags;
    case "hyphen pins" test_hyphen;
    case "join pins" test_join;
    case "pr pins" test_pr;
    case "nroff pins" test_nroff;
    case "lex pins" test_lex;
    case "cpp pins" test_cpp;
    case "sort pins" test_sort;
    case "awk pins" test_awk;
    case "yacc pins" test_yacc;
    case "ptx pins" test_ptx;
    case "sdiff pins" test_sdiff;
    case "cb pins" test_cb;
  ]
