(* Cost model (Equations 1-4) and ordering selection (Figure 8) tests,
   including the paper's key empirical claim: the greedy selection
   matches exhaustive search. *)

open Helpers

let item ?(target = "T") ~cost ~count payload =
  {
    Reorder.Select.in_range = Reorder.Range.single (payload * 10);
    in_target = target;
    in_cost = cost;
    in_count = count;
    in_payload = payload;
  }

let test_explicit_cost () =
  (* Equation 1 by hand: p1c1 + p2(c1+c2) + p3(c1+c2+c3), scaled *)
  check_int "three conditions"
    ((5 * 2) + (3 * 4) + (2 * 6))
    (Reorder.Cost.explicit_cost [ (5, 2); (3, 2); (2, 2) ]);
  check_int "empty" 0 (Reorder.Cost.explicit_cost [])

let test_sequence_cost_default_term () =
  (* Equation 2: uncovered mass pays the whole chain *)
  let explicit = [ (5, 2); (3, 2) ] in
  check_int "default term"
    (Reorder.Cost.explicit_cost explicit + (2 * 4))
    (Reorder.Cost.sequence_cost ~total:10 ~explicit)

let test_compare_ratio () =
  check_bool "higher p/c first" true
    (Reorder.Cost.compare_ratio (10, 2) (3, 2) < 0);
  check_bool "cheaper wins at equal count" true
    (Reorder.Cost.compare_ratio (5, 1) (5, 4) < 0);
  check_int "ties" 0 (Reorder.Cost.compare_ratio (4, 2) (2, 1))

let test_theorem3_pairwise () =
  (* Explicit_Cost([Ri,Rj]) <= Explicit_Cost([Rj,Ri]) iff pi/ci >= pj/cj *)
  List.iter
    (fun ((p1, c1), (p2, c2)) ->
      let ij = Reorder.Cost.explicit_cost [ (p1, c1); (p2, c2) ] in
      let ji = Reorder.Cost.explicit_cost [ (p2, c2); (p1, c1) ] in
      let ratio = Reorder.Cost.compare_ratio (p1, c1) (p2, c2) in
      if ratio < 0 then check_bool "better order first" true (ij <= ji)
      else if ratio > 0 then check_bool "worse order later" true (ij >= ji)
      else check_int "equal ratios tie" ij ji)
    [ ((10, 2), (3, 2)); ((1, 4), (9, 2)); ((6, 3), (4, 2)); ((2, 2), (2, 2)) ]

let test_greedy_simple () =
  (* two targets, B carrying 90% of the mass: the optimal program tests
     the rare target A once and defaults to B — exactly what eliminating
     all of B's ranges expresses (cost 2 per execution instead of 2.4 for
     testing B's ranges first) *)
  let items =
    [
      item ~cost:2 ~count:10 0 ~target:"A";
      item ~cost:2 ~count:80 1 ~target:"B";
      item ~cost:2 ~count:10 2 ~target:"B";
    ]
  in
  match Reorder.Select.greedy ~total:100 items with
  | Some c ->
    check_output "default is the hot target" "B" c.Reorder.Select.default_target;
    check_int "only A's range is tested" 1 (List.length c.Reorder.Select.ordered);
    check_int "estimated cost: 100 executions x 2 instructions" 200
      c.Reorder.Select.est_cost
  | None -> Alcotest.fail "greedy returned nothing"

let test_greedy_never_worse_than_original () =
  (* the greedy result's estimated cost is never above the original
     configuration's cost (original order, original default) *)
  let check_items items ~total =
    let original_cost =
      Reorder.Select.choice_cost ~total
        (List.filter (fun it -> it.Reorder.Select.in_target <> "TD") items)
        []
    in
    match Reorder.Select.greedy ~total items with
    | Some c -> c.Reorder.Select.est_cost <= original_cost
    | None -> true
  in
  let mk seed =
    List.init 5 (fun i ->
        let target = if i >= 3 then "TD" else [| "A"; "B"; "A" |].(i) in
        item ~target
          ~cost:(2 + (2 * (mix seed i mod 2)))
          ~count:(mix seed (i + 17) mod 50)
          i)
  in
  for seed = 1 to 50 do
    let items = mk seed in
    let total = List.fold_left (fun a i -> a + i.Reorder.Select.in_count) 0 items in
    if total > 0 then
      check_bool (Printf.sprintf "seed %d" seed) true (check_items items ~total)
  done

(* random selection problems for the greedy-vs-exhaustive comparison *)
let gen_problem =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* counts = list_size (return n) (int_range 0 50) in
    let* costs = list_size (return n) (oneofl [ 2; 2; 2; 4 ]) in
    let* targets = list_size (return n) (oneofl [ "A"; "B"; "C" ]) in
    let items =
      List.mapi
        (fun i ((count, cost), target) -> item ~target ~cost ~count i)
        (List.combine (List.combine counts costs) targets)
    in
    let total = List.fold_left (fun a i -> a + i.Reorder.Select.in_count) 0 items in
    return (items, max total 1))

let arb_problem =
  QCheck.make gen_problem ~print:(fun (items, total) ->
      Printf.sprintf "total=%d [%s]" total
        (String.concat "; "
           (List.map
              (fun it ->
                Printf.sprintf "#%d %s c=%d p=%d" it.Reorder.Select.in_payload
                  it.Reorder.Select.in_target it.Reorder.Select.in_cost
                  it.Reorder.Select.in_count)
              items)))

let prop_greedy_close_to_exhaustive =
  (* The paper: "Our approach always selected the optimal sequence for
     every reorderable sequence in every test program."  Greedy considers
     only Figure 8's m elimination prefixes, so in adversarial random
     cases it may in principle be beaten; we check it matches exhaustive
     on the overwhelming majority and never beats it. *)
  qcheck ~count:500 "greedy vs exhaustive subset search" arb_problem
    (fun (items, total) ->
      match
        Reorder.Select.greedy ~total items, Reorder.Select.exhaustive ~total items
      with
      | Some g, Some e ->
        g.Reorder.Select.est_cost >= e.Reorder.Select.est_cost
      | None, None -> true
      | _ -> false)

let prop_exhaustive_matches_brute_force =
  (* p/c ordering of the kept tests is optimal (Theorem 3 + induction):
     subset search with sorted order equals the full permutation search *)
  qcheck ~count:200 "exhaustive equals brute force" arb_problem
    (fun (items, total) ->
      if List.length items > 5 then true
      else
        match
          ( Reorder.Select.exhaustive ~total items,
            Reorder.Select.brute_force ~total items )
        with
        | Some e, Some b ->
          e.Reorder.Select.est_cost = b.Reorder.Select.est_cost
        | None, None -> true
        | _ -> false)

let prop_choice_cost_agrees =
  (* the incremental Equation 4 path inside greedy asserts against the
     direct evaluation; surviving a run means they agreed *)
  qcheck ~count:500 "Equation 4 incremental = direct evaluation" arb_problem
    (fun (items, total) ->
      match Reorder.Select.greedy ~total items with
      | Some c -> c.Reorder.Select.est_cost >= 0
      | None -> true)

let test_greedy_deterministic () =
  let items =
    [
      item ~cost:2 ~count:10 0 ~target:"A";
      item ~cost:2 ~count:10 1 ~target:"B";
      item ~cost:2 ~count:10 2 ~target:"A";
    ]
  in
  let show c =
    String.concat ","
      (List.map
         (fun it -> string_of_int it.Reorder.Select.in_payload)
         c.Reorder.Select.ordered)
  in
  match Reorder.Select.greedy ~total:30 items, Reorder.Select.greedy ~total:30 items with
  | Some a, Some b -> check_output "same order both times" (show a) (show b)
  | _ -> Alcotest.fail "greedy failed"

let test_compatible_restriction () =
  let items =
    [
      item ~cost:2 ~count:50 0 ~target:"A";
      item ~cost:2 ~count:5 1 ~target:"B";
    ]
  in
  (* forbid eliminating anything of target B: the default must be A *)
  let compatible set =
    List.for_all (fun it -> it.Reorder.Select.in_target = "A") set
  in
  match Reorder.Select.greedy ~compatible ~total:55 items with
  | Some c -> check_output "default forced to A" "A" c.Reorder.Select.default_target
  | None -> Alcotest.fail "expected a choice"

let test_empty_input () =
  check_bool "no items, no choice" true (Reorder.Select.greedy ~total:1 [] = None)

let suite =
  [
    case "cost: Equation 1" test_explicit_cost;
    case "cost: Equation 2 default term" test_sequence_cost_default_term;
    case "cost: p/c comparison" test_compare_ratio;
    case "cost: Theorem 3 pairwise exchange" test_theorem3_pairwise;
    case "select: hottest range first" test_greedy_simple;
    case "select: never worse than the original" test_greedy_never_worse_than_original;
    prop_greedy_close_to_exhaustive;
    prop_exhaustive_matches_brute_force;
    prop_choice_cost_agrees;
    case "select: deterministic with stable ties" test_greedy_deterministic;
    case "select: compatibility restriction" test_compatible_restriction;
    case "select: empty input" test_empty_input;
  ]
