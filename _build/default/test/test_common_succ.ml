(* Tests for the Section 10 extension: reordering branches with a common
   successor using 2^n combination profiles. *)

open Helpers

let r n = Mir.Reg.of_int n
let reg n = Mir.Operand.Reg (r n)
let imm n = Mir.Operand.Imm n

let test_expected_cost () =
  (* two conditions, cost 2 each; mask counts: 00: 10 (pay 4), 01: 5
     (pay 2: first test hits), 10: 5 (pay 4), 11: 0 *)
  let counts = [| 10; 5; 5; 0 |] in
  let costs = [| 2; 2 |] in
  check_int "identity order" ((10 * 4) + (5 * 2) + (5 * 4))
    (Reorder.Common_succ.expected_cost ~counts ~costs [| 0; 1 |]);
  check_int "swapped order" ((10 * 4) + (5 * 4) + (5 * 2))
    (Reorder.Common_succ.expected_cost ~counts ~costs [| 1; 0 |])

let test_best_permutation_correlated () =
  (* condition 1 alone never fires; condition 0 fires whenever 1 does:
     testing 0 first is optimal regardless of marginals *)
  let counts = [| 50; 0; 0; 50 |] in
  let costs = [| 2; 2 |] in
  let best = Reorder.Common_succ.best_permutation ~counts ~costs in
  check_int "first test" 0 best.(0)

let test_best_permutation_cost_bias () =
  (* equal probabilities but unequal costs: cheap test first *)
  let counts = [| 40; 30; 30; 0 |] in
  let costs = [| 6; 2 |] in
  let best = Reorder.Common_succ.best_permutation ~counts ~costs in
  check_int "cheap first" 1 best.(0)

let prop_best_is_minimal =
  qcheck ~count:200 "best permutation minimises expected cost"
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 4 in
          let* counts = array_size (return (1 lsl n)) (int_range 0 20) in
          let* costs = array_size (return n) (int_range 1 6) in
          return (counts, costs)))
    (fun (counts, costs) ->
      let best = Reorder.Common_succ.best_permutation ~counts ~costs in
      let best_cost = Reorder.Common_succ.expected_cost ~counts ~costs best in
      (* compare against a few arbitrary orders *)
      let n = Array.length costs in
      let identity = Array.init n (fun i -> i) in
      let reversed = Array.init n (fun i -> n - 1 - i) in
      best_cost <= Reorder.Common_succ.expected_cost ~counts ~costs identity
      && best_cost <= Reorder.Common_succ.expected_cost ~counts ~costs reversed)

(* hand-built CFG: three pure compares on different registers chaining to
   a common successor *)
let comb_cfg () =
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"init"
       [ Mir.Insn.Call (Some (r 1), "getchar", []);
         Mir.Insn.Call (Some (r 2), "getchar", []);
         Mir.Insn.Call (Some (r 3), "getchar", []) ]
       (Mir.Block.Jmp "b1"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"b1"
       [ Mir.Insn.Cmp (reg 1, imm 97) ]
       (Mir.Block.Br (Mir.Cond.Eq, "cs", "b2")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"b2"
       [ Mir.Insn.Cmp (reg 2, imm 98) ]
       (Mir.Block.Br (Mir.Cond.Eq, "cs", "b3")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"b3"
       [ Mir.Insn.Cmp (reg 3, imm 99) ]
       (Mir.Block.Br (Mir.Cond.Eq, "cs", "fail")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"cs" [] (Mir.Block.Ret (Some (imm 1))));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"fail" [] (Mir.Block.Ret (Some (imm 0))));
  let p = Mir.Program.make () in
  Mir.Program.add_func p fn;
  p

let test_detect_run () =
  let p = comb_cfg () in
  let runs = Reorder.Common_succ.find_program p in
  match runs with
  | [ run ] ->
    Alcotest.(check (list string)) "chain" [ "b1"; "b2"; "b3" ]
      run.Reorder.Common_succ.labels;
    check_output "common successor" "cs" run.Reorder.Common_succ.common_succ;
    check_output "final fail" "fail" run.Reorder.Common_succ.final_fail
  | l -> Alcotest.failf "expected one run, got %d" (List.length l)

let test_detect_and_chain () =
  (* && chains share the fall-through side instead *)
  let prog =
    compile
      "int main() { int a = getchar(); int b = getchar(); if (a == 'x' && b \
       == 'y') return 1; return 0; }"
  in
  let runs = Reorder.Common_succ.find_program prog in
  check_int "one run" 1 (List.length runs)

let test_detect_rejects_side_effects () =
  (* a call between the compares blocks the run *)
  let prog =
    compile
      "int main() { int a = getchar(); if (a == 'x' || getchar() == 'y') \
       return 1; return 0; }"
  in
  let runs = Reorder.Common_succ.find_program prog in
  check_int "call blocks the chain" 0
    (List.length
       (List.filter
          (fun r -> List.length r.Reorder.Common_succ.labels >= 2)
          runs))

let test_apply_preserves_and_improves () =
  let p = comb_cfg () in
  let runs = Reorder.Common_succ.find_program p in
  let run = List.hd runs in
  let table = Sim.Profile.make () in
  Reorder.Common_succ.instrument p runs table;
  (* training: third condition fires almost always *)
  for _ = 1 to 40 do
    ignore (Sim.Machine.run p ~profile:table ~input:"qqc")
  done;
  let p2 = comb_cfg () in
  let runs2 = Reorder.Common_succ.find_program p2 in
  (match Reorder.Common_succ.apply p2 table (List.hd runs2) with
  | Reorder.Common_succ.Reordered order -> check_int "hot test first" 2 order.(0)
  | Reorder.Common_succ.Unchanged reason -> Alcotest.failf "unchanged: %s" reason);
  Mir.Validate.check p2;
  ignore run;
  (* behaviour identical on all 8 combinations *)
  List.iter
    (fun input ->
      let a = Sim.Machine.run (comb_cfg ()) ~input in
      let b = Sim.Machine.run p2 ~input in
      check_int ("exit for " ^ input) a.Sim.Machine.exit_code b.Sim.Machine.exit_code)
    [ "abc"; "axc"; "qbc"; "qqc"; "qqq"; "aqq"; "qbq"; "abq" ]

let test_apply_unexecuted () =
  let p = comb_cfg () in
  let runs = Reorder.Common_succ.find_program p in
  let table = Sim.Profile.make () in
  Reorder.Common_succ.instrument p runs table;
  let p2 = comb_cfg () in
  let runs2 = Reorder.Common_succ.find_program p2 in
  match Reorder.Common_succ.apply p2 table (List.hd runs2) with
  | Reorder.Common_succ.Unchanged _ -> ()
  | Reorder.Common_succ.Reordered _ ->
    Alcotest.fail "must not reorder without training data"

let test_pipeline_with_common_succ () =
  let src =
    "int main() { int a; int b; int c; int hits = 0; int ch;\n\
     while ((ch = getchar()) != EOF) { a = ch % 3; b = ch % 5; c = ch % 7;\n\
     if (a == 0 && b == 2 && c == 4) hits++; }\n\
     print_int(hits); return 0; }"
  in
  let config = { Driver.Config.default with Driver.Config.common_succ = true } in
  let input = Workloads.Textgen.prose ~seed:11 ~chars:5000 in
  let r = reorder_pipeline ~config ~training_input:input ~test_input:input src in
  check_bool "runs detected" true (r.Driver.Pipeline.r_comb <> [])

(* ------------------------------------------------------------------ *)
(* Figure 14(d)-(e): sequences as super-branches                       *)
(* ------------------------------------------------------------------ *)

(* (a == 'p' && b == 'q') || (d == 'r' && e == 's'): two conjunction
   groups; group 1's escapes fall into group 2 *)
let pair_src =
  "int main() { int hits = 0; int a; int b; int d; int e; int ch;\n\
   while ((ch = getchar()) != EOF) { a = ch % 3; b = ch % 5; d = ch % 7; e = \
   ch % 11;\n\
   if (a == 1 && b == 2 || d == 3 && e == 4) hits++; }\n\
   print_int(hits); return 0; }"

let pair_setup training =
  let base = Driver.Pipeline.compile_base Driver.Config.default pair_src in
  let runs = Reorder.Common_succ.find_program base in
  let pairs = Reorder.Common_succ.find_pairs base runs ~first_id:500 in
  (base, runs, pairs, training)

let test_pair_detection () =
  let _, runs, pairs, _ = pair_setup "" in
  check_int "two runs" 2 (List.length runs);
  match pairs with
  | [ pr ] ->
    check_int "group sizes" 2
      (Array.length pr.Reorder.Common_succ.pr_first.Reorder.Common_succ.conds);
    check_int "second group size" 2
      (Array.length pr.Reorder.Common_succ.pr_second.Reorder.Common_succ.conds)
  | l -> Alcotest.failf "expected one pair, got %d" (List.length l)

let test_pair_cost_model () =
  let _, _, pairs, _ = pair_setup "" in
  let pr = List.hd pairs in
  let first = pr.Reorder.Common_succ.pr_first in
  let second = pr.Reorder.Common_succ.pr_second in
  (* every execution: group 1 escapes immediately (bit 0 of its first
     cond), group 2's first condition also escapes (bit set) *)
  let counts = Array.make 16 0 in
  counts.(0b0101) <- 10;
  let keep = Reorder.Common_succ.pair_cost ~counts ~first ~second ~swapped:false in
  let swap = Reorder.Common_succ.pair_cost ~counts ~first ~second ~swapped:true in
  (* keep: group1 escapes after 1 cond (cost 2), group2 escapes after 1
     cond (2) => 4 per exec; swap: group2 first, same 4 *)
  check_int "keep cost" 40 keep;
  check_int "swap cost" 40 swap;
  (* group 1 never escapes (conjunction holds): only its 2 conds run *)
  let counts2 = Array.make 16 0 in
  counts2.(0b0000) <- 10;
  check_int "all-false keeps both groups short" 40
    (Reorder.Common_succ.pair_cost ~counts:counts2 ~first ~second ~swapped:false)

let test_pair_swap_end_to_end () =
  (* make group 2's conjunction the usual winner: a == 1 rarely holds but
     d == 3 && e == 4 often does; testing group 2 first gets to T faster
     only when its escape is rarer — craft inputs accordingly *)
  let config = { Driver.Config.default with Driver.Config.common_succ = true } in
  let input =
    (* ch = 59 gives a=2 (group1 escapes at once), d=3, e=4 (group2 all
       hold): the hot path is group1-escape -> group2-success *)
    String.make 300 (Char.chr 59)
  in
  let r = reorder_pipeline ~config ~training_input:input ~test_input:input pair_src in
  check_int "one pair considered" 1 (List.length r.Driver.Pipeline.r_pairs);
  (match r.Driver.Pipeline.r_pairs with
  | [ (_, Reorder.Common_succ.Reordered order) ] ->
    Alcotest.(check (array int)) "groups swapped" [| 1; 0 |] order
  | [ (_, Reorder.Common_succ.Unchanged reason) ] ->
    Alcotest.failf "expected a swap, got: %s" reason
  | _ -> Alcotest.fail "unexpected pair outcomes");
  (* and the swap pays off *)
  check_bool "fewer instructions" true
    (r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters.Sim.Counters.insns
    < r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters.Sim.Counters.insns)

let test_pair_swap_semantics_fuzz () =
  (* all residue combinations of ch exercise every mask; the pipeline's
     output equality check is the oracle *)
  let config = { Driver.Config.default with Driver.Config.common_succ = true } in
  List.iter
    (fun seed ->
      let input =
        String.init 231 (fun i -> Char.chr (32 + ((i * seed) mod 90)))
      in
      ignore (reorder_pipeline ~config ~training_input:input ~test_input:input pair_src))
    [ 1; 7; 13; 59 ]

let test_pair_unexecuted () =
  let config = { Driver.Config.default with Driver.Config.common_succ = true } in
  let r = reorder_pipeline ~config ~training_input:"" ~test_input:"" pair_src in
  List.iter
    (fun (_, outcome) ->
      match outcome with
      | Reorder.Common_succ.Unchanged _ -> ()
      | Reorder.Common_succ.Reordered _ ->
        Alcotest.fail "pair swapped without training data")
    r.Driver.Pipeline.r_pairs

let suite =
  [
    case "comb: expected cost arithmetic" test_expected_cost;
    case "comb: correlation-aware ordering" test_best_permutation_correlated;
    case "comb: cost-aware ordering" test_best_permutation_cost_bias;
    prop_best_is_minimal;
    case "comb: detects || chains" test_detect_run;
    case "comb: detects && chains" test_detect_and_chain;
    case "comb: side effects block runs" test_detect_rejects_side_effects;
    case "comb: apply preserves semantics" test_apply_preserves_and_improves;
    case "comb: unexecuted runs untouched" test_apply_unexecuted;
    case "comb: pipeline integration" test_pipeline_with_common_succ;
    case "pair: detection (Figure 14d)" test_pair_detection;
    case "pair: joint cost model" test_pair_cost_model;
    case "pair: swap end to end (Figure 14e)" test_pair_swap_end_to_end;
    case "pair: semantics fuzz" test_pair_swap_semantics_fuzz;
    case "pair: unexecuted untouched" test_pair_unexecuted;
  ]
