(* Conventional-optimizer tests: each pass in isolation plus
   switch-lowering shape and equivalence checks. *)

open Helpers

let r n = Mir.Reg.of_int n
let reg n = Mir.Operand.Reg (r n)
let imm n = Mir.Operand.Imm n

let block_labels fn = List.map (fun b -> b.Mir.Block.label) fn.Mir.Func.blocks

(* ------------------------------------------------------------------ *)
(* Branch chaining                                                      *)
(* ------------------------------------------------------------------ *)

let test_chain_collapse () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 1) ]
       (Mir.Block.Br (Mir.Cond.Eq, "hop1", "out")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"hop1" [] (Mir.Block.Jmp "hop2"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"hop2" [] (Mir.Block.Jmp "final"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"final" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"out" [] (Mir.Block.Ret None));
  check_bool "changed" true (Mopt.Branch_chain.run_func fn);
  match (Mir.Func.entry fn).Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Br (_, taken, _) -> check_output "retargeted" "final" taken
  | _ -> Alcotest.fail "terminator changed shape"

let test_chain_cycle_safe () =
  (* two empty jump blocks pointing at each other must not loop *)
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn (Mir.Block.make ~label:"entry" [] (Mir.Block.Jmp "a"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Jmp "b"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"b" [] (Mir.Block.Jmp "a"));
  ignore (Mopt.Branch_chain.run_func fn)

let test_branch_same_targets () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 1) ]
       (Mir.Block.Br (Mir.Cond.Eq, "x", "x")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"x" [] (Mir.Block.Ret None));
  ignore (Mopt.Branch_chain.run_func fn);
  match (Mir.Func.entry fn).Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Jmp "x" -> ()
  | _ -> Alcotest.fail "br with equal arms should become a jump"

let test_constant_branch_fold () =
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (imm 3, imm 3) ]
       (Mir.Block.Br (Mir.Cond.Eq, "yes", "no")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"yes" [] (Mir.Block.Ret (Some (imm 1))));
  Mir.Func.add_block fn (Mir.Block.make ~label:"no" [] (Mir.Block.Ret (Some (imm 0))));
  ignore (Mopt.Branch_chain.run_func fn);
  match (Mir.Func.entry fn).Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Jmp "yes" -> ()
  | _ -> Alcotest.fail "constant comparison should fold"

(* ------------------------------------------------------------------ *)
(* Copy propagation / constant folding                                  *)
(* ------------------------------------------------------------------ *)

let run_copyprop insns =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn (Mir.Block.make ~label:"entry" insns (Mir.Block.Ret (Some (reg 9))));
  ignore (Mopt.Copy_prop.run_func fn);
  (Mir.Func.entry fn).Mir.Block.insns

let test_copyprop_constants () =
  match
    run_copyprop
      [ Mir.Insn.Mov (r 1, imm 4);
        Mir.Insn.Binop (Mir.Insn.Add, r 2, reg 1, imm 6);
        Mir.Insn.Binop (Mir.Insn.Mul, r 9, reg 2, reg 1) ]
  with
  | [ _; Mir.Insn.Mov (_, Mir.Operand.Imm 10); Mir.Insn.Mov (_, Mir.Operand.Imm 40) ] ->
    ()
  | insns ->
    Alcotest.failf "constants not folded: %s"
      (String.concat "; " (List.map Mir.Insn.show insns))

let test_copyprop_identities () =
  (match run_copyprop [ Mir.Insn.Binop (Mir.Insn.Add, r 9, reg 0, imm 0) ] with
  | [ Mir.Insn.Mov (_, Mir.Operand.Reg _) ] -> ()
  | _ -> Alcotest.fail "x + 0 should simplify");
  match run_copyprop [ Mir.Insn.Binop (Mir.Insn.Mul, r 9, reg 0, imm 0) ] with
  | [ Mir.Insn.Mov (_, Mir.Operand.Imm 0) ] -> ()
  | _ -> Alcotest.fail "x * 0 should be 0"

let test_copyprop_self_move_removed () =
  match run_copyprop [ Mir.Insn.Mov (r 9, reg 9) ] with
  | [] -> ()
  | _ -> Alcotest.fail "self move should disappear"

let test_copyprop_invalidates_on_redef () =
  match
    run_copyprop
      [ Mir.Insn.Mov (r 1, imm 4);
        Mir.Insn.Call (Some (r 1), "getchar", []);
        Mir.Insn.Binop (Mir.Insn.Add, r 9, reg 1, imm 0) ]
  with
  | [ _; _; Mir.Insn.Mov (_, Mir.Operand.Reg src) ] ->
    check_int "uses the redefined register" 1 (Mir.Reg.to_int src)
  | insns ->
    Alcotest.failf "unexpected: %s"
      (String.concat "; " (List.map Mir.Insn.show insns))

let test_copyprop_keeps_compared_register () =
  (* cmp must keep the variable's register (constants still propagate) *)
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Mov (r 1, reg 0);
         Mir.Insn.Mov (r 2, imm 7);
         Mir.Insn.Cmp (reg 1, reg 2) ]
       (Mir.Block.Br (Mir.Cond.Eq, "a", "b")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"b" [] (Mir.Block.Ret None));
  ignore (Mopt.Copy_prop.run_func fn);
  let cmp =
    List.find
      (function Mir.Insn.Cmp _ -> true | _ -> false)
      (Mir.Func.entry fn).Mir.Block.insns
  in
  match cmp with
  | Mir.Insn.Cmp (Mir.Operand.Reg kept, Mir.Operand.Imm 7) ->
    check_int "register operand untouched" 1 (Mir.Reg.to_int kept)
  | i -> Alcotest.failf "unexpected compare %s" (Mir.Insn.show i)

(* ------------------------------------------------------------------ *)
(* Dead code                                                           *)
(* ------------------------------------------------------------------ *)

let test_dead_code_cascade () =
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Mov (r 1, imm 4);
         Mir.Insn.Binop (Mir.Insn.Add, r 2, reg 1, imm 1);
         Mir.Insn.Binop (Mir.Insn.Add, r 3, reg 2, imm 1);
         Mir.Insn.Mov (r 4, imm 9) ]
       (Mir.Block.Ret (Some (reg 4))));
  ignore (Mopt.Dead_code.run_func fn);
  check_int "only the live mov survives" 1
    (List.length (Mir.Func.entry fn).Mir.Block.insns)

let test_dead_code_keeps_effects () =
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Store ("g", imm 0, imm 1);
         Mir.Insn.Call (Some (r 5), "getchar", []) ]
       (Mir.Block.Ret None));
  let p = Mir.Program.make () in
  Mir.Program.add_global p { Mir.Program.gname = "g"; size = 1; init = None };
  Mir.Program.add_func p fn;
  ignore (Mopt.Dead_code.run_func fn);
  check_int "store and call survive" 2
    (List.length (Mir.Func.entry fn).Mir.Block.insns)

let test_dead_code_loop_carried () =
  (* a register only used around a loop must stay live *)
  let prog =
    compile
      "int main() { int i = 0; int s = 0; while (i < 100) { s += i; i++; } \
       print_int(s); return 0; }"
  in
  check_output "sum survives optimization" "4950"
    (run_prog prog).Sim.Machine.output

(* ------------------------------------------------------------------ *)
(* Unreachable / reposition / delay slots                               *)
(* ------------------------------------------------------------------ *)

let test_unreachable_removed () =
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn (Mir.Block.make ~label:"entry" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"dead" [] (Mir.Block.Ret None));
  check_bool "changed" true (Mopt.Unreachable.run_func fn);
  Alcotest.(check (list string)) "only entry" [ "entry" ] (block_labels fn)

let test_reposition_follows_fallthrough () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "cold", "hot")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"cold" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"hot" [] (Mir.Block.Ret None));
  ignore (Mopt.Reposition.run_func fn);
  Alcotest.(check (list string)) "not-taken successor placed next"
    [ "entry"; "hot"; "cold" ] (block_labels fn)

let test_reposition_keeps_entry_first () =
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn (Mir.Block.make ~label:"entry" [] (Mir.Block.Jmp "loop"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"other" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"loop" [] (Mir.Block.Jmp "other"));
  ignore (Mopt.Reposition.run_func fn);
  check_output "entry still first" "entry" (List.hd (block_labels fn))

let test_delay_slot_fills () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0); Mir.Insn.Mov (r 1, imm 5) ]
       (Mir.Block.Br (Mir.Cond.Eq, "a", "b")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"b" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Ret None));
  check_int "one slot filled" 1 (Mopt.Delay_slot.run_func fn);
  let entry = Mir.Func.entry fn in
  check_int "mov moved out of the body" 1 (List.length entry.Mir.Block.insns);
  check_bool "slot holds the mov" true
    (match entry.Mir.Block.term.Mir.Block.delay with
    | Some (Mir.Insn.Mov _) -> true
    | _ -> false)

let test_delay_slot_refuses_cmp () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "a", "b")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"b" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Ret None));
  check_int "cmp cannot fill its own branch's slot" 0
    (Mopt.Delay_slot.run_func fn)

let test_delay_slot_refuses_term_use () =
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Mov (r 1, imm 5) ]
       (Mir.Block.Ret (Some (reg 1))));
  check_int "ret operand definition cannot move into its slot" 0
    (Mopt.Delay_slot.run_func fn)

let test_delay_slot_skips_fallthrough_jump () =
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [ Mir.Insn.Mov (r 1, imm 5) ] (Mir.Block.Jmp "next"));
  Mir.Func.add_block fn (Mir.Block.make ~label:"next" [] (Mir.Block.Ret None));
  check_int "fall-through jump emits nothing to fill" 0
    (Mopt.Delay_slot.run_func fn)

let test_delay_slot_steals_from_taken_target () =
  (* nothing fillable from above; the taken target has a single pred: its
     first instruction moves into an annulled slot *)
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (imm 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "t", "f")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"f" [] (Mir.Block.Ret (Some (imm 0))));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"t"
       [ Mir.Insn.Mov (r 1, imm 42) ]
       (Mir.Block.Ret (Some (reg 1))));
  check_int "one slot stolen" 1 (Mopt.Delay_slot.run_func fn);
  let entry = Mir.Func.entry fn in
  check_bool "slot annulled" true entry.Mir.Block.term.Mir.Block.annul;
  check_int "target body emptied" 0
    (List.length (Mir.Func.find_block fn "t").Mir.Block.insns);
  (* taken path still returns 42 *)
  let p = Mir.Program.make () in
  Mir.Program.add_func p fn;
  check_int "taken executes the stolen insn" 42 (run_prog p).Sim.Machine.exit_code

let test_delay_slot_annul_squashes () =
  (* same shape but the branch is never taken: the annulled slot must not
     execute and must not be charged *)
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (imm 1, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "t", "f")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"f" [ Mir.Insn.Mov (r 2, imm 7) ] (Mir.Block.Ret (Some (reg 2))));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"t"
       [ Mir.Insn.Mov (r 1, imm 42) ]
       (Mir.Block.Ret (Some (reg 1))));
  ignore (Mopt.Delay_slot.run_func fn);
  let p = Mir.Program.make () in
  Mir.Program.add_func p fn;
  let result = run_prog p in
  check_int "falls through to f" 7 result.Sim.Machine.exit_code;
  (* cmp + br (squashed slot: 0) + mov + ret + ret-slot(mov stolen? the
     ret of f: fill-from-above moved nothing since mov feeds ret) + nop *)
  check_bool "squashed slot not charged" true
    (result.Sim.Machine.counters.Sim.Counters.insns <= 6)

let test_delay_slot_jmp_steal_no_annul () =
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [] (Mir.Block.Jmp "far"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"mid" [] (Mir.Block.Ret (Some (imm 1))));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"far"
       [ Mir.Insn.Mov (r 1, imm 9) ]
       (Mir.Block.Ret (Some (reg 1))));
  check_int "jump slot stolen" 1 (Mopt.Delay_slot.run_func fn);
  check_bool "not annulled" false (Mir.Func.entry fn).Mir.Block.term.Mir.Block.annul;
  let p = Mir.Program.make () in
  Mir.Program.add_func p fn;
  check_int "behaviour preserved" 9 (run_prog p).Sim.Machine.exit_code

let test_delay_slot_no_steal_multi_pred () =
  (* two branches share the target: stealing would break the other path *)
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (imm 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "shared", "other")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"other" [] (Mir.Block.Jmp "shared"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"shared"
       [ Mir.Insn.Mov (r 1, imm 3) ]
       (Mir.Block.Ret (Some (reg 1))));
  ignore (Mopt.Delay_slot.run_func fn);
  check_int "shared target keeps its instruction" 1
    (List.length (Mir.Func.find_block fn "shared").Mir.Block.insns)

let test_annul_text_roundtrip () =
  let text =
    "function main():\nentry:\n  cmp 0, 0\n  be -> t | f  ; delay,a: r1 = 42\nf:\n\
    \  ret 0\nt:\n  ret r1\n"
  in
  let p = Mir.Parse.program text in
  check_output "round trip stable" (Mir.Program.to_string p)
    (Mir.Program.to_string (Mir.Parse.program (Mir.Program.to_string p)));
  check_int "annulled slot executes on taken" 42 (run_prog p).Sim.Machine.exit_code

let test_delay_slot_strip_roundtrip () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0); Mir.Insn.Mov (r 1, imm 5) ]
       (Mir.Block.Br (Mir.Cond.Eq, "a", "b")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"b" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Ret None));
  ignore (Mopt.Delay_slot.run_func fn);
  Mopt.Delay_slot.strip_func fn;
  check_int "body restored" 2 (List.length (Mir.Func.entry fn).Mir.Block.insns);
  check_bool "slot empty" true
    ((Mir.Func.entry fn).Mir.Block.term.Mir.Block.delay = None)

(* ------------------------------------------------------------------ *)
(* Switch lowering                                                     *)
(* ------------------------------------------------------------------ *)

let switch_src ncases ~dense =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "int main() { int c; int s = 0;\n";
  Buffer.add_string buf "  while ((c = getchar()) != EOF) { switch (c % 256) {\n";
  for i = 0 to ncases - 1 do
    let v = if dense then 97 + i else 97 + (i * 7) in
    Buffer.add_string buf (Printf.sprintf "  case %d: s += %d; break;\n" v (i + 1))
  done;
  Buffer.add_string buf "  default: s--; } }\n print_int(s); return 0; }\n";
  Buffer.contents buf

let shape_of prog =
  let fn = Mir.Program.find_func prog "main" in
  let has_jtab = ref false and branches = ref 0 in
  Mir.Func.iter_blocks fn (fun b ->
      match b.Mir.Block.term.Mir.Block.kind with
      | Mir.Block.Jtab _ -> has_jtab := true
      | Mir.Block.Br _ -> incr branches
      | _ -> ());
  (!has_jtab, !branches)

let test_switch_shapes () =
  (* dense 10-case switch: indirect under I, binary under II, linear under III *)
  let src = switch_src 10 ~dense:true in
  let jt1, _ = shape_of (compile ~heuristic:Mopt.Switch_lower.set_i src) in
  let jt2, br2 = shape_of (compile ~heuristic:Mopt.Switch_lower.set_ii src) in
  let jt3, br3 = shape_of (compile ~heuristic:Mopt.Switch_lower.set_iii src) in
  check_bool "set I uses a jump table" true jt1;
  check_bool "set II avoids the jump table" false jt2;
  check_bool "set III avoids the jump table" false jt3;
  (* statically, binary search emits two branches per node while linear
     emits one per case; dynamically binary is shorter, which Table 4
     exercises -- here we only pin both shapes exist *)
  check_bool "both shapes produce branches" true (br2 > 0 && br3 > 0)

let test_switch_sparse_binary () =
  (* sparse 9-case switch: binary search for I and II, never indirect *)
  let src = switch_src 9 ~dense:false in
  let jt1, _ = shape_of (compile ~heuristic:Mopt.Switch_lower.set_i src) in
  check_bool "sparse switch gets no table" false jt1

let test_switch_small_linear () =
  let src = switch_src 3 ~dense:true in
  let jt, _ = shape_of (compile ~heuristic:Mopt.Switch_lower.set_i src) in
  check_bool "3 cases stay linear" false jt

let test_switch_equivalence () =
  (* all three shapes compute the same answer on the same input *)
  List.iter
    (fun (ncases, dense) ->
      let src = switch_src ncases ~dense in
      let input = Workloads.Textgen.prose ~seed:99 ~chars:2000 in
      let outputs =
        List.map
          (fun hs -> run_src ~heuristic:hs ~input src)
          Mopt.Switch_lower.all_sets
      in
      match outputs with
      | [ a; b; c ] ->
        check_output "I = II" a b;
        check_output "II = III" b c
      | _ -> assert false)
    [ (1, true); (4, true); (9, false); (10, true); (16, true); (20, false) ]

let test_switch_empty_and_holes () =
  check_output "default only" "-5"
    (run_src ~input:"abcde"
       "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { \
        switch (c) { default: s--; } } print_int(s); return 0; }");
  (* dense table with holes: holes route to default *)
  let src =
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { switch \
     (c) { case 'a': s += 1; break; case 'c': s += 2; break; case 'e': s += \
     4; break; case 'g': s += 8; break; default: s += 100; } } print_int(s); \
     return 0; }"
  in
  List.iter
    (fun hs -> check_output "holes" "107" (run_src ~heuristic:hs ~input:"aceb" src))
    Mopt.Switch_lower.all_sets

(* ------------------------------------------------------------------ *)
(* Global constant propagation                                          *)
(* ------------------------------------------------------------------ *)

let test_global_const_across_blocks () =
  (* a constant defined in the entry flows into a later block *)
  let fn = Mir.Func.make ~name:"f" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [ Mir.Insn.Mov (r 1, imm 7) ] (Mir.Block.Jmp "next"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"next"
       [ Mir.Insn.Binop (Mir.Insn.Add, r 2, reg 1, imm 1) ]
       (Mir.Block.Ret (Some (reg 2))));
  check_bool "changed" true (Mopt.Global_const.run_func fn);
  match (Mir.Func.find_block fn "next").Mir.Block.insns with
  | [ Mir.Insn.Binop (_, _, Mir.Operand.Imm 7, Mir.Operand.Imm 1) ] -> ()
  | insns ->
    Alcotest.failf "constant did not flow: %s"
      (String.concat "; " (List.map Mir.Insn.show insns))

let test_global_const_meet () =
  (* two predecessors assign different constants: the join must not fold *)
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "a", "b")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"a" [ Mir.Insn.Mov (r 1, imm 1) ] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"b" [ Mir.Insn.Mov (r 1, imm 2) ] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"join"
       [ Mir.Insn.Binop (Mir.Insn.Add, r 2, reg 1, imm 1) ]
       (Mir.Block.Ret (Some (reg 2))));
  check_bool "no change at a conflicting join" false
    (Mopt.Global_const.run_func fn)

let test_global_const_agreeing_join () =
  (* both predecessors assign the same constant: fold at the join *)
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "a", "b")));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"a" [ Mir.Insn.Mov (r 1, imm 5) ] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"b" [ Mir.Insn.Mov (r 1, imm 5) ] (Mir.Block.Jmp "join"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"join" [ Mir.Insn.Mov (r 2, reg 1) ] (Mir.Block.Ret (Some (reg 2))));
  check_bool "changed" true (Mopt.Global_const.run_func fn);
  match (Mir.Func.find_block fn "join").Mir.Block.insns with
  | [ Mir.Insn.Mov (_, Mir.Operand.Imm 5) ] -> ()
  | _ -> Alcotest.fail "agreeing constant should flow through the join"

let test_global_const_loop_kill () =
  (* a register incremented in a loop is not constant at the header *)
  let prog =
    compile
      "int main() { int i = 0; int s = 0; while (i < 3) { s += i; i++; } \
       print_int(s); return 0; }"
  in
  check_output "loop result" "3" (run_prog prog).Sim.Machine.output

let test_global_const_behaviour () =
  check_output "global constant threading" "25"
    (run_src
       "int main() { int a = 5; int b; if (getchar() == 'x') b = a * 4; else \
        b = a * 5; print_int(b); return 0; }")

(* ------------------------------------------------------------------ *)
(* Profile-guided layout                                                *)
(* ------------------------------------------------------------------ *)

let test_profile_layout_inverts_hot_branch () =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (reg 0, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "hot", "cold")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"cold" [] (Mir.Block.Ret None));
  Mir.Func.add_block fn (Mir.Block.make ~label:"hot" [] (Mir.Block.Ret None));
  let counts : Mopt.Profile_layout.counts = Hashtbl.create 4 in
  Hashtbl.replace counts "entry" (90, 10);
  check_bool "changed" true (Mopt.Profile_layout.run_func fn counts);
  (* the branch is inverted so the hot arm falls through *)
  (match (Mir.Func.entry fn).Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Br (Mir.Cond.Ne, "cold", "hot") -> ()
  | k -> Alcotest.failf "unexpected terminator %s"
           (match k with Mir.Block.Br (c, a, b) ->
              Printf.sprintf "Br(%s,%s,%s)" (Mir.Cond.show c) a b | _ -> "?"));
  Alcotest.(check (list string)) "hot placed next" [ "entry"; "hot"; "cold" ]
    (block_labels fn)

let test_profile_layout_pipeline () =
  (* end-to-end: enabling the layout must preserve semantics and not
     increase taken branches on the training distribution *)
  let w = Workloads.Registry.find "wc" in
  let train = String.sub (Lazy.force w.Workloads.Spec.training_input) 0 5000 in
  let base_cfg = Driver.Config.default in
  let layout_cfg = { Driver.Config.default with Driver.Config.profile_layout = true } in
  let run cfg =
    Driver.Pipeline.run ~config:cfg ~name:"wc" ~source:w.Workloads.Spec.source
      ~training_input:train ~test_input:train ()
  in
  let plain = run base_cfg and laid = run layout_cfg in
  check_output "same output"
    plain.Driver.Pipeline.r_original.Driver.Pipeline.v_output
    laid.Driver.Pipeline.r_original.Driver.Pipeline.v_output;
  check_bool "taken branches do not increase" true
    (laid.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
       .Sim.Counters.taken_branches
    <= plain.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
         .Sim.Counters.taken_branches)

let test_cleanup_preserves_semantics () =
  (* optimization pipeline does not change behaviour on a branchy program *)
  let src = (Workloads.Registry.find "lex").Workloads.Spec.source in
  let input = Workloads.Textgen.code ~seed:5 ~chars:4000 in
  let raw = Minic.Lower.compile src in
  Mopt.Switch_lower.lower_program Mopt.Switch_lower.set_i raw;
  let raw_out = (Sim.Machine.run raw ~input).Sim.Machine.output in
  check_output "cleanup preserves output" raw_out (run_src ~input src)

let suite =
  [
    case "branch chaining: collapses jump chains" test_chain_collapse;
    case "branch chaining: survives cycles" test_chain_cycle_safe;
    case "branch chaining: equal arms become a jump" test_branch_same_targets;
    case "branch chaining: folds constant compares" test_constant_branch_fold;
    case "copy prop: folds constants" test_copyprop_constants;
    case "copy prop: algebraic identities" test_copyprop_identities;
    case "copy prop: removes self moves" test_copyprop_self_move_removed;
    case "copy prop: redefinition invalidates facts"
      test_copyprop_invalidates_on_redef;
    case "copy prop: compares keep their register" test_copyprop_keeps_compared_register;
    case "dead code: cascading removal" test_dead_code_cascade;
    case "dead code: keeps effects" test_dead_code_keeps_effects;
    case "dead code: loop-carried values survive" test_dead_code_loop_carried;
    case "unreachable blocks removed" test_unreachable_removed;
    case "reposition: fall-through chains" test_reposition_follows_fallthrough;
    case "reposition: entry stays first" test_reposition_keeps_entry_first;
    case "delay slots: fills a safe instruction" test_delay_slot_fills;
    case "delay slots: never a cmp" test_delay_slot_refuses_cmp;
    case "delay slots: never a terminator input" test_delay_slot_refuses_term_use;
    case "delay slots: fall-through jumps skipped"
      test_delay_slot_skips_fallthrough_jump;
    case "delay slots: strip restores the body" test_delay_slot_strip_roundtrip;
    case "delay slots: steal from taken target (annul)"
      test_delay_slot_steals_from_taken_target;
    case "delay slots: annulled slot squashes" test_delay_slot_annul_squashes;
    case "delay slots: jump steal without annul" test_delay_slot_jmp_steal_no_annul;
    case "delay slots: shared targets not stolen from"
      test_delay_slot_no_steal_multi_pred;
    case "delay slots: annul survives text round trip" test_annul_text_roundtrip;
    case "switch: heuristic set shapes (Table 2)" test_switch_shapes;
    case "switch: sparse cases avoid tables" test_switch_sparse_binary;
    case "switch: few cases stay linear" test_switch_small_linear;
    case "switch: all shapes equivalent" test_switch_equivalence;
    case "switch: empty and holey tables" test_switch_empty_and_holes;
    case "cleanup pipeline preserves semantics" test_cleanup_preserves_semantics;
    case "global const: flows across blocks" test_global_const_across_blocks;
    case "global const: conflicting join" test_global_const_meet;
    case "global const: agreeing join" test_global_const_agreeing_join;
    case "global const: loop-carried kill" test_global_const_loop_kill;
    case "global const: behaviour" test_global_const_behaviour;
    case "profile layout: hot arm falls through"
      test_profile_layout_inverts_hot_branch;
    case "profile layout: pipeline integration" test_profile_layout_pipeline;
  ]
