(* Sequence detection tests (paper Section 3, Figure 4). *)

open Helpers

let detect src = Reorder.Detect.find_program (compile src)

let seq_in func seqs =
  List.filter (fun s -> String.equal s.Reorder.Detect.func_name func) seqs

let ranges_of (s : Reorder.Detect.t) =
  List.map (fun it -> it.Reorder.Detect.range) s.Reorder.Detect.items

let test_if_chain () =
  let seqs =
    detect
      "int f(int c) { if (c == 10) return 1; else if (c == 32) return 2; else \
       if (c == 9) return 3; return 0; } int main() { return f(5); }"
  in
  match seq_in "f" seqs with
  | [ s ] ->
    check_int "three items" 3 (Reorder.Detect.items_count s);
    Alcotest.(check (list string)) "ranges"
      [ "[10]"; "[32]"; "[9]" ]
      (List.map Reorder.Range.show (ranges_of s))
  | l -> Alcotest.failf "expected 1 sequence in f, got %d" (List.length l)

let test_relational_chain () =
  (* the paper's Figure 5: mixed bounded and equality conditions *)
  let seqs =
    detect
      "int f(int c) { if (c >= 0 && c <= 2) return 1; if (c == 5) return 2; \
       return 0; } int main() { return f(1); }"
  in
  match seq_in "f" seqs with
  | [ s ] ->
    Alcotest.(check (list string)) "bounded then single"
      [ "[0..2]"; "[5]" ]
      (List.map Reorder.Range.show (ranges_of s))
  | l -> Alcotest.failf "expected 1 sequence, got %d" (List.length l)

let test_form4_two_blocks () =
  let seqs =
    detect
      "int f(int c) { if (c >= 'a' && c <= 'z') return 1; else if (c == ' ') \
       return 2; return 0; } int main() { return f(0); }"
  in
  match seq_in "f" seqs with
  | [ s ] -> (
    match s.Reorder.Detect.items with
    | [ first; second ] ->
      check_output "bounded range" "[97..122]" (Reorder.Range.show first.Reorder.Detect.range);
      check_int "two blocks for Form 4" 2 (List.length first.Reorder.Detect.item_blocks);
      check_output "then the blank" "[32]" (Reorder.Range.show second.Reorder.Detect.range)
    | _ -> Alcotest.fail "expected 2 items")
  | l -> Alcotest.failf "expected 1 sequence, got %d" (List.length l)

let test_ne_interpretation () =
  (* != exits through the fall-through side and the sequence continues
     inside the then-branch *)
  let seqs =
    detect
      "int f(int c) { if (c != 7) { if (c == 9) return 1; return 2; } return \
       3; } int main() { return f(1); }"
  in
  match seq_in "f" seqs with
  | [ s ] ->
    Alcotest.(check (list string)) "both conditions in one sequence"
      [ "[7]"; "[9]" ]
      (List.map Reorder.Range.show (ranges_of s))
  | l -> Alcotest.failf "expected 1 sequence, got %d" (List.length l)

let test_overlap_stops () =
  (* the second test overlaps the first: the walk must stop at it *)
  let seqs =
    detect
      "int f(int c) { if (c > 10) return 1; if (c > 5) return 2; if (c == 3) \
       return 3; return 0; } int main() { return f(1); }"
  in
  match seq_in "f" seqs with
  | [ s ] ->
    (* [11..MAX] first; the taken-side reading [6..MAX] of "c > 5"
       overlaps it, so Figure 4's fall-through reading [MIN..5] is used:
       those values exit to the block holding the c == 3 test, and the
       sequence's default becomes "return 2" *)
    Alcotest.(check (list string)) "complement reading"
      [ "[11..MAX]"; "[MIN..5]" ]
      (List.map Reorder.Range.show (ranges_of s))
  | l -> Alcotest.failf "expected 1 sequence, got %d" (List.length l)

let test_side_effect_recorded () =
  let seqs =
    detect
      "int g; int f(int c) { if (c == 1) return 1; g++; if (c == 2) return 2; \
       return 0; } int main() { return f(1); }"
  in
  match seq_in "f" seqs with
  | [ s ] -> (
    match s.Reorder.Detect.items with
    | [ first; second ] ->
      check_int "head has no recorded sides" 0 (List.length first.Reorder.Detect.sides);
      check_bool "second condition carries the g++ side effects" true
        (List.length second.Reorder.Detect.sides > 0)
    | _ -> Alcotest.fail "expected 2 items")
  | l -> Alcotest.failf "expected 1 sequence, got %d" (List.length l)

let test_var_redefinition_stops () =
  let seqs =
    detect
      "int f(int c) { if (c == 1) return 1; c = c + 1; if (c == 2) return 2; \
       if (c == 3) return 3; return 0; } int main() { return f(1); }"
  in
  (* the redefinition splits the chain into two sequences of lengths 1 and
     2; the length-1 piece is discarded, so only [2][3] appears *)
  match seq_in "f" seqs with
  | [ s ] ->
    Alcotest.(check (list string)) "only the second chain"
      [ "[2]"; "[3]" ]
      (List.map Reorder.Range.show (ranges_of s))
  | l -> Alcotest.failf "expected 1 sequence, got %d" (List.length l)

let test_different_vars_stop () =
  let seqs =
    detect
      "int f(int a, int b) { if (a == 1) return 1; if (b == 2) return 2; if \
       (b == 3) return 3; return 0; } int main() { return f(1, 2); }"
  in
  match seq_in "f" seqs with
  | [ s ] ->
    check_int "only the b-chain has length 2" 2 (Reorder.Detect.items_count s)
  | l -> Alcotest.failf "expected 1 sequence, got %d" (List.length l)

let test_binary_tree_spines () =
  (* a binary-search switch yields several sequences (paper Section 9) *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "int f(int c) { switch (c) {";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf " case %d: return %d;" v v))
    [ 5; 100; 205; 310; 415; 520; 625; 730 ];
  Buffer.add_string buf " default: return 0; } } int main() { return f(5); }";
  let seqs = detect (Buffer.contents buf) in
  let fseqs = seq_in "f" seqs in
  check_bool "multiple sequences from one tree" true (List.length fseqs >= 2);
  (* inherited-codes items (the lt blocks) appear without their own cmp *)
  check_bool "some items reuse the preceding compare" true
    (List.exists
       (fun s ->
         List.exists
           (fun it -> not it.Reorder.Detect.had_own_cmp)
           s.Reorder.Detect.items)
       fseqs)

let test_marking_exclusive () =
  let seqs =
    detect
      "int f(int c) { if (c == 1) return 1; if (c == 2) return 2; return 0; }\n\
       int main() { return f(3); }"
  in
  (* each block belongs to at most one sequence *)
  let all_blocks =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun it -> it.Reorder.Detect.item_blocks)
          s.Reorder.Detect.items)
      seqs
  in
  check_int "no block repeats" (List.length all_blocks)
    (List.length (List.sort_uniq String.compare all_blocks))

let test_min_len () =
  let src =
    "int f(int c) { if (c == 1) return 1; if (c == 2) return 2; if (c == 3) \
     return 3; return 0; } int main() { return f(1); }"
  in
  let prog = compile src in
  let three = Reorder.Detect.find_program ~min_len:3 prog in
  let prog2 = compile src in
  let four = Reorder.Detect.find_program ~min_len:4 prog2 in
  check_int "min_len 3 keeps it" 1
    (List.length (seq_in "f" three));
  check_int "min_len 4 drops it" 0 (List.length (seq_in "f" four))

let test_default_ranges_view () =
  let seqs =
    detect
      "int f(int c) { if (c == 10) return 1; if (c == 20) return 2; return 0; \
       } int main() { return f(1); }"
  in
  match seq_in "f" seqs with
  | [ s ] ->
    Alcotest.(check (list string)) "three default ranges"
      [ "[MIN..9]"; "[11..19]"; "[21..MAX]" ]
      (List.map Reorder.Range.show (Reorder.Detect.default_ranges s))
  | _ -> Alcotest.fail "expected one sequence"

let test_branch_count () =
  let seqs =
    detect
      "int f(int c) { if (c >= 5 && c <= 9) return 1; if (c == 12) return 2; \
       return 0; } int main() { return f(1); }"
  in
  match seq_in "f" seqs with
  | [ s ] -> check_int "Form 4 counts two branches" 3 (Reorder.Detect.branches s)
  | _ -> Alcotest.fail "expected one sequence"

let test_deterministic () =
  let src = (Workloads.Registry.find "lex").Workloads.Spec.source in
  let show prog =
    String.concat "\n"
      (List.map
         (fun s -> Format.asprintf "%a" Reorder.Detect.pp s)
         (Reorder.Detect.find_program prog))
  in
  check_output "same sequences on recompilation" (show (compile src))
    (show (compile src))

let suite =
  [
    case "detect: equality if-chain" test_if_chain;
    case "detect: bounded plus equality (Figure 5)" test_relational_chain;
    case "detect: Form 4 across two blocks" test_form4_two_blocks;
    case "detect: != exits on fall-through" test_ne_interpretation;
    case "detect: overlapping reading falls back to complement"
      test_overlap_stops;
    case "detect: side effects recorded per item" test_side_effect_recorded;
    case "detect: branch-variable redefinition splits" test_var_redefinition_stops;
    case "detect: variable change splits" test_different_vars_stop;
    case "detect: binary search trees yield spines" test_binary_tree_spines;
    case "detect: block marking is exclusive" test_marking_exclusive;
    case "detect: minimum length" test_min_len;
    case "detect: default ranges" test_default_ranges_view;
    case "detect: branch counting" test_branch_count;
    case "detect: deterministic" test_deterministic;
  ]
