(* Range and range-condition tests (paper Table 1, Section 5), including
   qcheck properties on the default-range computation. *)

open Helpers

let range = Alcotest.testable (Fmt.of_to_string Reorder.Range.show) Reorder.Range.equal

let test_make_bounds () =
  let r = Reorder.Range.make 3 9 in
  check_int "lo" 3 (Reorder.Range.lo r);
  check_int "hi" 9 (Reorder.Range.hi r);
  (match Reorder.Range.make 9 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted bounds must be rejected");
  match Reorder.Range.make min_int 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-domain bounds must be rejected"

let test_mem_and_size () =
  let r = Reorder.Range.make (-2) 4 in
  check_bool "mem lo" true (Reorder.Range.mem (-2) r);
  check_bool "mem hi" true (Reorder.Range.mem 4 r);
  check_bool "mem outside" false (Reorder.Range.mem 5 r);
  check_int "size" 7 (Reorder.Range.size r);
  check_bool "single" true (Reorder.Range.is_single (Reorder.Range.single 8))

let test_overlap () =
  let open Reorder.Range in
  check_bool "adjacent do not overlap" false (overlaps (make 0 4) (make 5 9));
  check_bool "shared endpoint overlaps" true (overlaps (make 0 5) (make 5 9));
  check_bool "containment overlaps" true (overlaps (make 0 9) (make 3 4));
  check_bool "nonoverlapping list" true
    (nonoverlapping (make 5 6) [ make 0 4; make 7 9 ]);
  check_bool "overlapping list" false
    (nonoverlapping (make 4 7) [ make 0 4; make 8 9 ])

let test_is_bounded () =
  let open Reorder.Range in
  check_bool "bounded" true (is_bounded (make 3 9));
  check_bool "single not Form 4" false (is_bounded (single 3));
  check_bool "ray below" false (is_bounded (below 10));
  check_bool "ray above" false (is_bounded (above 10))

let test_complement_simple () =
  let open Reorder.Range in
  let defaults = complement_cover [ single 10; make 20 30 ] in
  Alcotest.(check (list range)) "three gaps"
    [ below 9; make 11 19; above 31 ]
    defaults

let test_complement_empty_input () =
  let open Reorder.Range in
  Alcotest.(check (list range)) "everything" [ full ] (complement_cover [])

let test_complement_touching_min_max () =
  let open Reorder.Range in
  Alcotest.(check (list range)) "gap in the middle only"
    [ make 1 4 ]
    (complement_cover [ below 0; above 5 ]);
  Alcotest.(check (list range)) "no gaps" [] (complement_cover [ full ])

let test_complement_rejects_overlap () =
  let open Reorder.Range in
  match complement_cover [ make 0 5; make 5 9 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlap must be rejected"

(* qcheck: random nonoverlapping range sets built by pairing sorted
   distinct bounds *)
let gen_ranges =
  QCheck.Gen.(
    let* bounds = list_size (int_range 0 16) (int_range (-1000) 1000) in
    let sorted = List.sort_uniq Int.compare bounds in
    let rec pair acc = function
      | a :: b :: rest -> pair (Reorder.Range.make a b :: acc) rest
      | [ a ] -> Reorder.Range.single a :: acc
      | [] -> acc
    in
    return (pair [] sorted))

let arb_ranges =
  QCheck.make gen_ranges ~print:(fun rs ->
      String.concat ", " (List.map Reorder.Range.show rs))

let prop_complement_partitions =
  qcheck "complement partitions the value space" arb_ranges (fun ranges ->
      let defaults = Reorder.Range.complement_cover ranges in
      (* no default overlaps an input range *)
      List.for_all (fun d -> Reorder.Range.nonoverlapping d ranges) defaults
      && (* every probe point lies in exactly one side *)
      List.for_all
        (fun v ->
          let in_input = List.exists (Reorder.Range.mem v) ranges in
          let in_default = List.exists (Reorder.Range.mem v) defaults in
          in_input <> in_default)
        [ -1000000; -1000; -999; -37; -1; 0; 1; 2; 37; 500; 999; 1000; 1000000 ])

let prop_complement_minimal =
  qcheck "defaults are maximal gaps (no two adjacent)" arb_ranges (fun ranges ->
      let defaults = Reorder.Range.complement_cover ranges in
      let sorted = Reorder.Range.sort_by_lo defaults in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          Reorder.Range.hi a + 1 < Reorder.Range.lo b && ok rest
        | _ -> true
      in
      ok sorted)

(* ------------------------------------------------------------------ *)
(* Range conditions                                                    *)
(* ------------------------------------------------------------------ *)

let test_forms () =
  let open Reorder.Range in
  let f = Reorder.Range_cond.form in
  (match f (single 5) with
  | Reorder.Range_cond.Form_single 5 -> ()
  | _ -> Alcotest.fail "single");
  (match f (below 5) with
  | Reorder.Range_cond.Form_below 5 -> ()
  | _ -> Alcotest.fail "below");
  (match f (above 5) with
  | Reorder.Range_cond.Form_above 5 -> ()
  | _ -> Alcotest.fail "above");
  (match f (make 3 9) with
  | Reorder.Range_cond.Form_bounded (3, 9) -> ()
  | _ -> Alcotest.fail "bounded");
  match f full with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "full range is not testable"

let test_costs () =
  let open Reorder.Range in
  check_int "single" 2 (Reorder.Range_cond.cost (single 5));
  check_int "ray" 2 (Reorder.Range_cond.cost (above 5));
  check_int "bounded" 4 (Reorder.Range_cond.cost (make 1 5));
  check_int "single branches" 1 (Reorder.Range_cond.branch_count (single 5));
  check_int "bounded branches" 2 (Reorder.Range_cond.branch_count (make 1 5))

(* behavioural check of emitted conditions: build a function around the
   emitted blocks and execute it for every probe value *)
let emit_and_run range ~lower_first v =
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  let var = Mir.Reg.of_int 0 in
  let emitted =
    Reorder.Range_cond.emit fn ~var ~range ~exit_to:"inside" ~fall_to:"outside"
      ~lower_first
  in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Mov (var, Mir.Operand.Imm v) ]
       (Mir.Block.Jmp emitted.Reorder.Range_cond.entry_label));
  List.iter (Mir.Func.add_block fn) emitted.Reorder.Range_cond.blocks;
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"inside" [] (Mir.Block.Ret (Some (Mir.Operand.Imm 1))));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"outside" [] (Mir.Block.Ret (Some (Mir.Operand.Imm 0))));
  let p = Mir.Program.make () in
  Mir.Program.add_func p fn;
  Mir.Validate.check p;
  (run_prog p).Sim.Machine.exit_code = 1

let test_emit_semantics () =
  let open Reorder.Range in
  List.iter
    (fun range ->
      List.iter
        (fun lower_first ->
          List.iter
            (fun v ->
              check_bool
                (Printf.sprintf "%s v=%d lf=%b" (show range) v lower_first)
                (mem v range)
                (emit_and_run range ~lower_first v))
            [ -100; 0; 3; 5; 9; 10; 42; 100 ])
        [ true; false ])
    [ single 5; below 5; above 5; make 3 9; make 5 5; make 0 42 ]

let suite =
  [
    case "range: construction bounds" test_make_bounds;
    case "range: membership and size" test_mem_and_size;
    case "range: overlap" test_overlap;
    case "range: Form 4 recognition" test_is_bounded;
    case "range: default ranges (Figure 7)" test_complement_simple;
    case "range: complement of nothing" test_complement_empty_input;
    case "range: complement touching MIN/MAX" test_complement_touching_min_max;
    case "range: complement rejects overlap" test_complement_rejects_overlap;
    prop_complement_partitions;
    prop_complement_minimal;
    case "range_cond: Table 1 forms" test_forms;
    case "range_cond: cost estimates" test_costs;
    case "range_cond: emitted code tests membership" test_emit_semantics;
  ]
