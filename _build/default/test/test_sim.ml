(* Simulator, predictor, cycle model and profile-runtime tests. *)

open Helpers

let r n = Mir.Reg.of_int n
let reg n = Mir.Operand.Reg (r n)
let imm n = Mir.Operand.Imm n

(* ------------------------------------------------------------------ *)
(* Exact dynamic instruction accounting                                *)
(* ------------------------------------------------------------------ *)

let straight_line_prog insns =
  let p = Mir.Program.make () in
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn (Mir.Block.make ~label:"entry" insns (Mir.Block.Ret None));
  Mir.Program.add_func p fn;
  p

let test_count_straight_line () =
  let p = straight_line_prog [ Mir.Insn.Mov (r 1, imm 1); Mir.Insn.Mov (r 2, imm 2) ] in
  let result = run_prog p in
  (* 2 movs + ret + its nop delay slot *)
  check_int "insns" 4 result.Sim.Machine.counters.Sim.Counters.insns;
  check_int "nops" 1 result.Sim.Machine.counters.Sim.Counters.nops;
  check_int "returns" 1 result.Sim.Machine.counters.Sim.Counters.returns

let branch_prog ~taken =
  (* entry: cmp; br taken -> t | f (f is laid out next); t/f: ret *)
  let p = Mir.Program.make () in
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (imm (if taken then 0 else 1), imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "t", "f")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"f" [] (Mir.Block.Ret (Some (imm 0))));
  Mir.Func.add_block fn (Mir.Block.make ~label:"t" [] (Mir.Block.Ret (Some (imm 1))));
  Mir.Program.add_func p fn;
  p

let test_count_branch_fallthrough () =
  let result = run_prog (branch_prog ~taken:false) in
  (* cmp + br + slot nop + ret + slot nop: not-taken falls through free *)
  check_int "insns" 5 result.Sim.Machine.counters.Sim.Counters.insns;
  check_int "jumps" 0 result.Sim.Machine.counters.Sim.Counters.jumps;
  check_int "exit code" 0 result.Sim.Machine.exit_code

let test_count_branch_taken () =
  let result = run_prog (branch_prog ~taken:true) in
  (* same cost on the taken side: branch + slot reach t directly *)
  check_int "insns" 5 result.Sim.Machine.counters.Sim.Counters.insns;
  check_int "taken" 1 result.Sim.Machine.counters.Sim.Counters.taken_branches;
  check_int "exit code" 1 result.Sim.Machine.exit_code

let test_count_layout_jump () =
  (* a not-taken branch whose fall-through is NOT next pays jump + nop *)
  let p = Mir.Program.make () in
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Cmp (imm 1, imm 0) ]
       (Mir.Block.Br (Mir.Cond.Eq, "t", "f")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"t" [] (Mir.Block.Ret (Some (imm 1))));
  Mir.Func.add_block fn (Mir.Block.make ~label:"f" [] (Mir.Block.Ret (Some (imm 0))));
  Mir.Program.add_func p fn;
  let result = run_prog p in
  (* cmp + br + nop + (jmp + nop) + ret + nop *)
  check_int "insns" 7 result.Sim.Machine.counters.Sim.Counters.insns;
  check_int "jumps" 1 result.Sim.Machine.counters.Sim.Counters.jumps

let test_count_filled_delay_slot () =
  let p = branch_prog ~taken:true in
  let fn = Mir.Program.find_func p "main" in
  let entry = Mir.Func.entry fn in
  entry.Mir.Block.term <-
    { entry.Mir.Block.term with Mir.Block.delay = Some (Mir.Insn.Mov (r 9, imm 5)) };
  let result = run_prog p in
  (* cmp + br + filled slot (mov) + ret + nop *)
  check_int "insns" 5 result.Sim.Machine.counters.Sim.Counters.insns;
  check_int "only the ret slot is a nop" 1
    result.Sim.Machine.counters.Sim.Counters.nops

let test_profile_insns_are_free () =
  let p =
    straight_line_prog
      [ Mir.Insn.Mov (r 1, imm 1); Mir.Insn.Profile_range (0, r 1) ]
  in
  let result = run_prog p in
  check_int "profile pseudo not counted" 3
    result.Sim.Machine.counters.Sim.Counters.insns

(* ------------------------------------------------------------------ *)
(* Traps                                                               *)
(* ------------------------------------------------------------------ *)

let test_trap_div_by_zero () =
  expect_trap (fun () ->
      run_src "int main() { int x = 0; print_int(1 / x); return 0; }")

let test_trap_oob () =
  expect_trap (fun () ->
      run_src "int a[4]; int main() { return a[9]; }");
  expect_trap (fun () ->
      run_src "int a[4]; int main() { a[-1] = 0; return 0; }")

let test_trap_fuel () =
  let prog = compile_final "int main() { while (1) { } return 0; }" in
  match
    Sim.Machine.run
      ~config:{ Sim.Machine.default_config with Sim.Machine.fuel = 1000 }
      prog ~input:""
  with
  | exception Sim.Machine.Trap _ -> ()
  | _ -> Alcotest.fail "expected fuel trap"

let test_trap_depth () =
  let prog =
    compile_final "int f(int n) { return f(n + 1); } int main() { return f(0); }"
  in
  expect_trap (fun () -> Sim.Machine.run prog ~input:"")

let test_trap_unknown_function () =
  let p = straight_line_prog [ Mir.Insn.Call (None, "mystery", []) ] in
  expect_trap (fun () -> run_prog p)

let test_trap_unlowered_switch () =
  let p = Mir.Program.make () in
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry"
       [ Mir.Insn.Mov (r 0, imm 1) ]
       (Mir.Block.Switch (r 0, [ (1, "a") ], "a")));
  Mir.Func.add_block fn (Mir.Block.make ~label:"a" [] (Mir.Block.Ret None));
  Mir.Program.add_func p fn;
  expect_trap (fun () -> run_prog p)

(* ------------------------------------------------------------------ *)
(* Branch event stream / sites                                         *)
(* ------------------------------------------------------------------ *)

let test_on_block_trace () =
  let prog =
    compile_final
      "int f(int x) { return x + 1; } int main() { return f(2); }"
  in
  let blocks = ref [] in
  let _ =
    Sim.Machine.run
      ~on_block:(fun ~func ~label -> blocks := (func, label) :: !blocks)
      prog ~input:""
  in
  let trace = List.rev !blocks in
  check_bool "starts in main" true
    (match trace with ("main", _) :: _ -> true | _ -> false);
  check_bool "visits f" true (List.exists (fun (f, _) -> f = "f") trace)

let test_on_branch_events () =
  let prog =
    compile_final
      "int main() { int i; for (i = 0; i < 10; i++) { } return 0; }"
  in
  let events = ref [] in
  let _ =
    Sim.Machine.run ~on_branch:(fun ~site ~taken -> events := (site, taken) :: !events)
      prog ~input:""
  in
  let total = List.length !events in
  check_int "one event per dynamic branch" 11 total;
  (* all events come from the same site (the loop condition) *)
  let sites = List.sort_uniq compare (List.map fst !events) in
  check_int "single site" 1 (List.length sites)

(* ------------------------------------------------------------------ *)
(* Predictors                                                          *)
(* ------------------------------------------------------------------ *)

let test_predictor_always_taken () =
  let p = Sim.Predictor.make ~history_bits:0 ~counter_bits:2 ~entries:64 in
  for _ = 1 to 100 do
    Sim.Predictor.access p ~site:7 ~taken:true
  done;
  (* initial weakly-not-taken state: first access mispredicts, then the
     counter saturates taken *)
  check_int "one miss then correct" 1 (Sim.Predictor.mispredicts p);
  check_int "lookups" 100 (Sim.Predictor.lookups p)

let test_predictor_alternating () =
  (* a strict alternation defeats a 1-bit counter completely after warmup *)
  let p1 = Sim.Predictor.make ~history_bits:0 ~counter_bits:1 ~entries:16 in
  for i = 1 to 100 do
    Sim.Predictor.access p1 ~site:3 ~taken:(i mod 2 = 0)
  done;
  check_bool "1-bit mispredicts nearly always" true
    (Sim.Predictor.mispredicts p1 >= 98)

let test_predictor_two_bit_tolerates_one_off () =
  (* T T T N T T T N ... : 2-bit counters mispredict only the Ns *)
  let p = Sim.Predictor.make ~history_bits:0 ~counter_bits:2 ~entries:16 in
  for i = 1 to 100 do
    Sim.Predictor.access p ~site:3 ~taken:(i mod 4 <> 0)
  done;
  let m = Sim.Predictor.mispredicts p in
  check_bool "about 25 misses" true (m >= 25 && m <= 27)

let test_predictor_aliasing () =
  (* two sites with opposite behaviour colliding in a 1-entry table *)
  let p = Sim.Predictor.make ~history_bits:0 ~counter_bits:2 ~entries:1 in
  for _ = 1 to 50 do
    Sim.Predictor.access p ~site:0 ~taken:true;
    Sim.Predictor.access p ~site:1 ~taken:false
  done;
  let aliased = Sim.Predictor.mispredicts p in
  let q = Sim.Predictor.make ~history_bits:0 ~counter_bits:2 ~entries:64 in
  for _ = 1 to 50 do
    Sim.Predictor.access q ~site:0 ~taken:true;
    Sim.Predictor.access q ~site:1 ~taken:false
  done;
  check_bool "separate entries beat aliasing" true
    (Sim.Predictor.mispredicts q < aliased)

let test_predictor_history () =
  (* with history bits, an alternating pattern becomes predictable *)
  let p = Sim.Predictor.make ~history_bits:2 ~counter_bits:2 ~entries:64 in
  for i = 1 to 200 do
    Sim.Predictor.access p ~site:5 ~taken:(i mod 2 = 0)
  done;
  check_bool "history learns alternation" true (Sim.Predictor.mispredicts p < 20)

let test_predictor_reset_and_describe () =
  let p = Sim.Predictor.make ~history_bits:0 ~counter_bits:2 ~entries:2048 in
  Sim.Predictor.access p ~site:1 ~taken:true;
  Sim.Predictor.reset p;
  check_int "reset lookups" 0 (Sim.Predictor.lookups p);
  check_output "describe" "(0,2)x2048" (Sim.Predictor.describe p);
  match Sim.Predictor.make ~history_bits:0 ~counter_bits:2 ~entries:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two entries must be rejected"

(* ------------------------------------------------------------------ *)
(* Cycle model                                                         *)
(* ------------------------------------------------------------------ *)

let test_cycle_model () =
  let c = Sim.Counters.make () in
  c.Sim.Counters.insns <- 1000;
  c.Sim.Counters.indirect_jumps <- 10;
  c.Sim.Counters.loads <- 100;
  check_int "ultra cycles"
    (1000 + (5 * 4) + (10 * 8) + 100)
    (Sim.Cycle_model.cycles Sim.Cycle_model.sparc_ultra1 c ~mispredicts:5);
  check_bool "indirect dearer on ultra" true
    (Sim.Cycle_model.sparc_ultra1.Sim.Cycle_model.indirect_penalty
     = 4 * Sim.Cycle_model.sparc_ipc.Sim.Cycle_model.indirect_penalty)

(* ------------------------------------------------------------------ *)
(* Profile runtime                                                     *)
(* ------------------------------------------------------------------ *)

let test_profile_range_counting () =
  let t = Sim.Profile.make () in
  let seq =
    Sim.Profile.register_range_seq t 0
      [| (min_int / 4, 9); (10, 10); (11, 31); (32, 32); (33, max_int / 4) |]
  in
  List.iter (fun v -> Sim.Profile.record_range t 0 v) [ 32; 32; 97; 10; 5; 200 ];
  check_int "executions" 6 seq.Sim.Profile.executions;
  check_int "blank count" 2 seq.Sim.Profile.counts.(3);
  check_int "newline count" 1 seq.Sim.Profile.counts.(1);
  check_int "low count" 1 seq.Sim.Profile.counts.(0);
  check_int "letters" 2 seq.Sim.Profile.counts.(4)

let test_profile_comb_counting () =
  let t = Sim.Profile.make () in
  let conds =
    [| (Mir.Cond.Eq, reg 1, imm 0); (Mir.Cond.Gt, reg 2, imm 5) |]
  in
  let seq = Sim.Profile.register_comb_seq t 1 conds in
  let read values reg_t = List.nth values (Mir.Reg.to_int reg_t) in
  Sim.Profile.record_comb t 1 ~read_reg:(read [ 0; 0; 9 ]);  (* both true *)
  Sim.Profile.record_comb t 1 ~read_reg:(read [ 0; 1; 9 ]);  (* only 2nd *)
  Sim.Profile.record_comb t 1 ~read_reg:(read [ 0; 0; 0 ]);  (* only 1st *)
  check_int "mask 3" 1 seq.Sim.Profile.comb_counts.(3);
  check_int "mask 2" 1 seq.Sim.Profile.comb_counts.(2);
  check_int "mask 1" 1 seq.Sim.Profile.comb_counts.(1);
  check_int "executions" 3 seq.Sim.Profile.comb_executions

let test_profile_through_machine () =
  let prog =
    compile
      "int main() { int c; while ((c = getchar()) != EOF) { if (c == 'x') \
       putchar('!'); } return 0; }"
  in
  let seqs = Reorder.Detect.find_program prog in
  check_int "one sequence" 1 (List.length seqs);
  let table = Reorder.Profiles.instrument prog seqs in
  let _ = Sim.Machine.run prog ~profile:table ~input:"xxyyz" in
  let view = Reorder.Profiles.counts table (List.hd seqs) in
  check_int "total executions" 6 view.Reorder.Profiles.total;
  (* items: EOF and 'x' in source order *)
  check_int "EOF exits" 1 view.Reorder.Profiles.item_counts.(0);
  check_int "'x' exits" 2 view.Reorder.Profiles.item_counts.(1)

let suite =
  [
    case "machine: straight-line accounting" test_count_straight_line;
    case "machine: not-taken branch falls through" test_count_branch_fallthrough;
    case "machine: taken branch accounting" test_count_branch_taken;
    case "machine: layout jump charged" test_count_layout_jump;
    case "machine: filled delay slot" test_count_filled_delay_slot;
    case "machine: profile pseudos are free" test_profile_insns_are_free;
    case "machine: trap on division by zero" test_trap_div_by_zero;
    case "machine: trap on out-of-bounds" test_trap_oob;
    case "machine: trap on fuel exhaustion" test_trap_fuel;
    case "machine: trap on runaway recursion" test_trap_depth;
    case "machine: trap on unknown function" test_trap_unknown_function;
    case "machine: trap on unlowered switch" test_trap_unlowered_switch;
    case "machine: branch event stream" test_on_branch_events;
    case "machine: block trace" test_on_block_trace;
    case "predictor: saturating taken" test_predictor_always_taken;
    case "predictor: 1-bit loses on alternation" test_predictor_alternating;
    case "predictor: 2-bit tolerates single off-beats"
      test_predictor_two_bit_tolerates_one_off;
    case "predictor: aliasing hurts" test_predictor_aliasing;
    case "predictor: history learns patterns" test_predictor_history;
    case "predictor: reset and describe" test_predictor_reset_and_describe;
    case "cycle model: parameters" test_cycle_model;
    case "profile: range counters" test_profile_range_counting;
    case "profile: combination counters" test_profile_comb_counting;
    case "profile: end-to-end through the machine" test_profile_through_machine;
  ]
