let () =
  Alcotest.run "branch_reorder"
    [
      ("mir", Test_mir.suite);
      ("mir-text", Test_mir_text.suite);
      ("validate", Test_validate.suite);
      ("frontend", Test_frontend.suite);
      ("sim", Test_sim.suite);
      ("opt", Test_opt.suite);
      ("analyses", Test_analyses.suite);
      ("dataflow", Test_dataflow.suite);
      ("range", Test_range.suite);
      ("detect", Test_detect.suite);
      ("cost", Test_cost.suite);
      ("transform", Test_transform.suite);
      ("coalesce", Test_coalesce.suite);
      ("common-succ", Test_common_succ.suite);
      ("workloads", Test_workloads.suite);
      ("workload-behaviour", Test_workload_behaviour.suite);
      ("driver", Test_driver.suite);
      ("properties", Test_properties.suite);
      ("check", Test_check.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("predecode", Test_predecode.suite);
      ("parallel", Test_parallel.suite);
      ("native", Test_native.suite);
      ("server", Test_server.suite);
      ("state", Test_state.suite);
      ("bench-db", Test_bench_db.suite);
      ("static", Test_static.suite);
    ]
