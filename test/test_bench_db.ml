(* The continuous-benchmarking flywheel: record roundtrips, the seven
   historical snapshot shapes, the golden trend report, the regression
   gate and the minimized-repro corpus. *)

module R = Bench_db.Record

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* every committed snapshot; PR8 was the gate infrastructure itself and
   produced no snapshot, so the sequence jumps from 7 to 9 *)
let bench_files =
  List.init 7 (fun i -> Printf.sprintf "../BENCH_PR%d.json" (i + 1))
  @ [ "../BENCH_PR9.json" ]

let history_path = "../bench/history.jsonl"

let load_history () =
  match Bench_db.History.load history_path with
  | Ok records -> records
  | Error m -> Alcotest.fail m

let find_label records label =
  match
    List.find_opt (fun (r : R.t) -> String.equal r.R.r_label label) records
  with
  | Some r -> r
  | None -> Alcotest.failf "no record labelled %s" label

let metric_value r name =
  match R.find r name with
  | Some m -> m.R.m_value
  | None -> Alcotest.failf "%s has no metric %s" r.R.r_label name

(* ------------------------------------------------------------------ *)
(* Record roundtrip property                                           *)
(* ------------------------------------------------------------------ *)

let gen_name =
  QCheck2.Gen.(
    oneof
      [
        string_size ~gen:(char_range 'a' 'z') (1 -- 12);
        oneofl
          [
            "suite.branch_reduction_pct"; "backends.compiled_vs_reference";
            "metric with spaces"; "quote\"backslash\\tab\t";
          ];
      ])

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        map
          (fun (num, den) -> float_of_int num /. float_of_int den)
          (pair (int_range (-1_000_000) 1_000_000) (int_range 1 997));
      ])

let gen_metric =
  let open QCheck2.Gen in
  let* name = gen_name in
  let* value = gen_value in
  let* unit_ = oneofl [ "count"; "s"; "x"; "pct"; "rps"; "ms" ] in
  let* dir = oneofl [ R.Higher; R.Lower ] in
  let* gate = bool in
  let* floor = map Float.abs gen_value in
  let* tolerance = option (map Float.abs gen_value) in
  pure (R.metric ~unit_ ~dir ~gate ~floor ?tolerance name value)

let gen_record =
  let open QCheck2.Gen in
  let* seq = int_range 0 999 in
  let* label = gen_name in
  let* commit = oneofl [ ""; "deadbeef"; "5c5d651" ] in
  let* context = oneofl [ "suite-full"; "suite-fast"; "serve"; "fuzz" ] in
  let* source = gen_name in
  let* runs = int_range 1 9 in
  let* metrics = list_size (0 -- 8) gen_metric in
  pure (R.make ~commit ~source ~runs ~seq ~label ~context metrics)

let record_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"record JSONL line roundtrips"
       gen_record (fun r ->
         match R.of_line (R.to_line r) with
         | Ok r' -> R.equal r r'
         | Error m -> QCheck2.Test.fail_reportf "decode failed: %s" m))

let find_sub ~sub s =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then None
    else if String.sub s i n = sub then Some i
    else go (i + 1)
  in
  go 0

let replace_once ~sub ~by s =
  match find_sub ~sub s with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by
    ^ String.sub s
        (i + String.length sub)
        (String.length s - i - String.length sub)

let test_schema_refused () =
  let r = R.make ~seq:1 ~label:"X" ~context:"fuzz" [ R.metric "m" 1. ] in
  let line =
    replace_once
      ~sub:(Printf.sprintf "\"schema\":%d" R.schema_version)
      ~by:(Printf.sprintf "\"schema\":%d" (R.schema_version + 1))
      (R.to_line r)
  in
  match R.of_line line with
  | Ok _ -> Alcotest.fail "a future schema version must be refused"
  | Error m ->
    Alcotest.(check bool)
      "error names the version" true
      (String.length m > 0)

(* ------------------------------------------------------------------ *)
(* The historical snapshot shapes                                       *)
(* ------------------------------------------------------------------ *)

let test_import_all_shapes () =
  List.iter
    (fun path ->
      match Bench_db.Import.of_file path with
      | Error m -> Alcotest.failf "%s: %s" path m
      | Ok r ->
        Alcotest.(check bool)
          (path ^ " yields metrics") true (r.R.r_metrics <> []);
        Alcotest.(check bool)
          (path ^ " yields gated metrics") true (R.gated r <> []))
    bench_files

(* lifting must not lose or distort the values the gate runs on *)
let test_import_values () =
  let imported path = Result.get_ok (Bench_db.Import.of_file path) in
  let close = Alcotest.float 1e-9 in
  let pr2 = imported "../BENCH_PR2.json" in
  Alcotest.check close "PR2 compiled/reference" 1.566
    (metric_value pr2 "backends.compiled_vs_reference");
  let pr3 = imported "../BENCH_PR3.json" in
  Alcotest.check close "PR3 catches all injected bugs" 100.
    (metric_value pr3 "fuzz.injected_caught_pct");
  Alcotest.check close "PR3 cases" 500. (metric_value pr3 "fuzz.cases");
  Alcotest.check close "PR3 failures" 0. (metric_value pr3 "fuzz.failures");
  let pr6 = imported "../BENCH_PR6.json" in
  Alcotest.check close "PR6 compiled/reference" 1.48
    (metric_value pr6 "backends.compiled_vs_reference");
  Alcotest.check close "PR6 native/reference" 5.838
    (metric_value pr6 "backends.native_vs_reference");
  Alcotest.(check int) "PR6 is best-of-3" 3 pr6.R.r_runs;
  let pr7 = imported "../BENCH_PR7.json" in
  Alcotest.check close "PR7 throughput" 832.37
    (metric_value pr7 "serve.throughput_rps");
  Alcotest.check close "PR7 oracle mismatches" 0.
    (metric_value pr7 "serve.oracle_mismatches");
  Alcotest.check close "PR7 program cache hit rate"
    (100. *. 1063. /. 1081.)
    (metric_value pr7 "serve.program_cache_hit_pct");
  Alcotest.(check string) "PR7 context" "serve" pr7.R.r_context;
  Alcotest.(check string)
    "PR5 fast input is its own context" "suite-fast"
    (imported "../BENCH_PR5.json").R.r_context;
  let pr9 = imported "../BENCH_PR9.json" in
  Alcotest.(check string) "PR9 context" "static-profile" pr9.R.r_context;
  Alcotest.check close "PR9 workloads at half trained" 11.
    (metric_value pr9 "static.workloads_at_half_trained");
  Alcotest.(check bool)
    "PR9 static reduction is a real reduction" true
    (metric_value pr9 "static.branch_reduction_pct" < -5.);
  let pr10 = imported "../BENCH_PR10.json" in
  Alcotest.(check string)
    "PR10 chaos runs gate in their own context" "serve-chaos"
    pr10.R.r_context;
  Alcotest.check close "PR10 chaos escapes" 0.
    (metric_value pr10 "serve.chaos_escapes");
  Alcotest.check close "PR10 restore exact" 1.
    (metric_value pr10 "serve.restore_exact");
  Alcotest.check close "PR10 oracle mismatches" 0.
    (metric_value pr10 "serve.oracle_mismatches")

let test_history_has_all_seven () =
  let records = load_history () in
  Alcotest.(check int) "nine records" 9 (List.length records);
  List.iteri
    (fun i (r : R.t) ->
      Alcotest.(check string)
        (Printf.sprintf "record %d label" i)
        (Printf.sprintf "PR%d" (if i < 7 then i + 1 else i + 2))
        r.R.r_label)
    records

(* ------------------------------------------------------------------ *)
(* Golden trend report                                                  *)
(* ------------------------------------------------------------------ *)

let test_report_golden () =
  let records =
    match Bench_db.History.load "bench_history_fixture.jsonl" with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string)
    "markdown report is byte-stable"
    (read_file "bench_report_golden.md")
    (Bench_db.Report.to_markdown records);
  (* the html rendering shares the data; just pin its shape *)
  let html = Bench_db.Report.to_html records in
  Alcotest.(check bool)
    "html embeds every context" true
    (List.for_all
       (fun ctx ->
         find_sub ~sub:(Printf.sprintf "<code>%s</code>" ctx) html <> None)
       [ "suite-full"; "suite-fast"; "serve"; "fuzz" ])

(* ------------------------------------------------------------------ *)
(* The regression gate                                                  *)
(* ------------------------------------------------------------------ *)

let test_gate_true_history_passes () =
  let records = load_history () in
  List.iter
    (fun (head : R.t) ->
      let verdicts = Bench_db.Gate.check ~head ~history:records () in
      match Bench_db.Gate.failures verdicts with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "history gates red at %s: %s regressed %.1f%%"
          head.R.r_label v.Bench_db.Gate.v_metric v.Bench_db.Gate.v_regress_pct)
    records

let worsen r name factor =
  {
    r with
    R.r_seq = 99;
    R.r_label = "HEAD";
    R.r_metrics =
      List.map
        (fun (m : R.metric) ->
          if String.equal m.R.m_name name then
            { m with R.m_value = m.R.m_value *. factor }
          else m)
        r.R.r_metrics;
  }

let test_gate_injected_regression_fails () =
  let records = load_history () in
  (* -28.07% branch reduction decaying to -25.26% is a 10% regression on
     a metric whose tolerance is 2.5% *)
  let head = worsen (find_label records "PR6") "suite.branch_reduction_pct" 0.9 in
  let verdicts = Bench_db.Gate.check ~head ~history:records () in
  match Bench_db.Gate.failures verdicts with
  | [ v ] ->
    Alcotest.(check string)
      "the failing metric is named" "suite.branch_reduction_pct"
      v.Bench_db.Gate.v_metric;
    Alcotest.(check bool)
      "regression is ~10%" true
      (Float.abs (v.Bench_db.Gate.v_regress_pct -. 10.) < 0.5);
    Alcotest.(check (option string))
      "baseline is named" (Some "PR6") v.Bench_db.Gate.v_base_label
  | [] -> Alcotest.fail "a 10% regression must fail the gate"
  | vs -> Alcotest.failf "expected one failure, got %d" (List.length vs)

let test_gate_unchanged_head_passes () =
  let records = load_history () in
  let pr6 = find_label records "PR6" in
  let head = { pr6 with R.r_seq = 99; R.r_label = "HEAD" } in
  Alcotest.(check int)
    "no-change head gates green" 0
    (List.length
       (Bench_db.Gate.failures
          (Bench_db.Gate.check ~head ~history:records ())))

let test_gate_noise_floor () =
  let base =
    R.make ~seq:1 ~label:"B" ~context:"serve"
      [
        R.metric ~unit_:"ms" ~dir:R.Lower ~gate:true ~floor:0.5 ~tolerance:0.
          "p99" 0.1;
      ]
  in
  let head value =
    R.make ~seq:2 ~label:"H" ~context:"serve"
      [
        R.metric ~unit_:"ms" ~dir:R.Lower ~gate:true ~floor:0.5 ~tolerance:0.
          "p99" value;
      ]
  in
  (* +350% of a 0.1 ms baseline, but only +0.35 ms: under the floor, no flap *)
  (match Bench_db.Gate.check ~head:(head 0.45) ~history:[ base ] () with
  | [ v ] ->
    Alcotest.(check bool)
      "sub-floor delta does not gate" true
      (v.Bench_db.Gate.v_status = Bench_db.Gate.Below_floor)
  | _ -> Alcotest.fail "expected one verdict");
  (* +0.8 ms clears the floor and the zero tolerance: fail *)
  match Bench_db.Gate.check ~head:(head 0.9) ~history:[ base ] () with
  | [ v ] ->
    Alcotest.(check bool)
      "above-floor regression fails" true
      (v.Bench_db.Gate.v_status = Bench_db.Gate.Fail)
  | _ -> Alcotest.fail "expected one verdict"

let test_gate_against_label () =
  let records = load_history () in
  let head = { (find_label records "PR6") with R.r_seq = 99; R.r_label = "HEAD" } in
  let verdicts =
    Bench_db.Gate.check ~against:"PR4" ~head ~history:records ()
  in
  Alcotest.(check int) "pinned baseline gates green" 0
    (List.length (Bench_db.Gate.failures verdicts));
  List.iter
    (fun (v : Bench_db.Gate.verdict) ->
      match v.Bench_db.Gate.v_base_label with
      | Some l -> Alcotest.(check string) "baseline pinned to PR4" "PR4" l
      | None -> ())
    verdicts

(* ------------------------------------------------------------------ *)
(* The repro corpus                                                     *)
(* ------------------------------------------------------------------ *)

let test_mir_full_line_comments () =
  let prog =
    Mir.Parse.program
      "; a full-line comment\nfunction main():\nmain.entry:\n  ret 0\n"
  in
  Alcotest.(check int) "one function" 1 (List.length prog.Mir.Program.funcs)

let test_corpus_roundtrip () =
  let spec = Check.Fuzz.spec_of_case ~seed:7 ~case:3 in
  let r =
    Bench_db.Corpus.of_spec ~name:"roundtrip" ~origin:"unit test"
      ~facts:(Check.Fuzz.case_facts 3) ~coalesce:(Check.Fuzz.case_coalesce 3)
      spec
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "bromc-corpus-test" in
  let path = Bench_db.Corpus.save ~dir r in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Bench_db.Corpus.load_file path with
      | Error m -> Alcotest.fail m
      | Ok r' ->
        Alcotest.(check string) "origin" r.Bench_db.Corpus.rp_origin
          r'.Bench_db.Corpus.rp_origin;
        Alcotest.(check int) "heuristic" r.Bench_db.Corpus.rp_heuristic
          r'.Bench_db.Corpus.rp_heuristic;
        Alcotest.(check bool) "facts" r.Bench_db.Corpus.rp_facts
          r'.Bench_db.Corpus.rp_facts;
        Alcotest.(check bool) "coalesce" r.Bench_db.Corpus.rp_coalesce
          r'.Bench_db.Corpus.rp_coalesce;
        Alcotest.(check string) "train" r.Bench_db.Corpus.rp_train
          r'.Bench_db.Corpus.rp_train;
        Alcotest.(check string) "test" r.Bench_db.Corpus.rp_test
          r'.Bench_db.Corpus.rp_test;
        Alcotest.(check string) "program text"
          (Format.asprintf "%a" Mir.Program.pp r.Bench_db.Corpus.rp_program)
          (Format.asprintf "%a" Mir.Program.pp r'.Bench_db.Corpus.rp_program))

(* every committed repro replays green and byte-identical across the
   backends (native joins the race when the toolchain is present) *)
let test_corpus_replay () =
  match Bench_db.Corpus.load_dir "../corpus" with
  | Error m -> Alcotest.fail m
  | Ok repros ->
    Alcotest.(check bool) "the corpus is seeded" true (List.length repros >= 2);
    let backends = Check.Fuzz.all_backends () in
    List.iter
      (fun (r : Bench_db.Corpus.repro) ->
        let out = Bench_db.Corpus.replay ~backends r in
        Alcotest.(check (list string))
          (r.Bench_db.Corpus.rp_name ^ " replays green")
          [] out.Check.Fuzz.co_errors;
        Alcotest.(check bool)
          (r.Bench_db.Corpus.rp_name ^ " still reorders something")
          true
          (out.Check.Fuzz.co_reordered + out.Check.Fuzz.co_coalesced > 0))
      repros

(* a replay is the fuzz case: a planted wrong default on a corpus
   program must still be caught when run in inject mode *)
let test_corpus_specs_still_catch_injection () =
  List.iter
    (fun case ->
      let spec =
        Check.Gen.shrink_spec
          ~keep:(fun s ->
            (Check.Fuzz.run_case ~backends:Check.Fuzz.default_backends
               ~inject:true ~case s)
              .Check.Fuzz.co_caught)
          (Check.Fuzz.spec_of_case ~seed:42 ~case)
      in
      let out =
        Check.Fuzz.run_case ~backends:Check.Fuzz.default_backends ~inject:true
          ~case spec
      in
      Alcotest.(check bool)
        (Printf.sprintf "case %d caught after shrinking" case)
        true out.Check.Fuzz.co_caught)
    [ 0 ]

let suite =
  [
    record_roundtrip;
    ("future schema refused", `Quick, test_schema_refused);
    ("all committed snapshot shapes import", `Quick, test_import_all_shapes);
    ("imported values survive lifting", `Quick, test_import_values);
    ("history holds PR1..PR9", `Quick, test_history_has_all_seven);
    ("trend report matches golden file", `Quick, test_report_golden);
    ("gate: true history passes", `Quick, test_gate_true_history_passes);
    ( "gate: injected 10% regression fails",
      `Quick,
      test_gate_injected_regression_fails );
    ("gate: unchanged head passes", `Quick, test_gate_unchanged_head_passes);
    ("gate: noise floor suppresses flap", `Quick, test_gate_noise_floor);
    ("gate: --against pins the baseline", `Quick, test_gate_against_label);
    ("mir: full-line comments parse", `Quick, test_mir_full_line_comments);
    ("corpus: repro file roundtrips", `Quick, test_corpus_roundtrip);
    ("corpus: committed repros replay green", `Quick, test_corpus_replay);
    ( "corpus: shrunk specs still catch injection",
      `Quick,
      test_corpus_specs_still_catch_injection );
  ]
