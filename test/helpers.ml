(* Shared helpers for the test suites. *)

let compile ?(heuristic = Mopt.Switch_lower.set_i) src =
  let prog = Minic.Lower.compile src in
  Mopt.Switch_lower.lower_program heuristic prog;
  Mopt.Cleanup.run prog;
  prog

let compile_final ?heuristic src =
  let prog = compile ?heuristic src in
  ignore (Mopt.Cleanup.finalize prog);
  Mir.Validate.check prog;
  prog

(* run a MiniC program and return its output *)
let run_src ?heuristic ?(input = "") src =
  let prog = compile_final ?heuristic src in
  let result = Sim.Machine.run prog ~input in
  result.Sim.Machine.output

let run_prog ?(input = "") prog = Sim.Machine.run prog ~input

(* full reordering pipeline on a source string; returns (original version,
   reordered version, pipeline result) *)
let reorder_pipeline ?(config = Driver.Config.default) ~training_input
    ~test_input src =
  Driver.Pipeline.run ~config ~name:"test" ~source:src ~training_input
    ~test_input ()

let check_output = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* QCheck2 flavour, for generators shared with lib/check (Check.Gen) *)
let qcheck2 ?(count = 200) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)

(* a deterministic pseudo-random int stream for building test data *)
let mix seed i = ((seed * 1103515245) + (i * 12345)) land 0x3FFFFFFF

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  n = 0 || go 0

(* assert that a validation result is an error mentioning [substr] *)
let expect_invalid ?substr result =
  match result with
  | Ok () -> Alcotest.fail "expected validation to fail"
  | Error msgs -> (
    match substr with
    | None -> ()
    | Some s ->
      if not (List.exists (fun m -> contains_substring m s) msgs) then
        Alcotest.failf "no validation message mentions %S in: %s" s
          (String.concat " | " msgs))

let expect_srcloc_error f =
  match f () with
  | exception Minic.Srcloc.Error _ -> ()
  | _ -> Alcotest.fail "expected a front-end error"

let expect_trap f =
  match f () with
  | exception Sim.Machine.Trap _ -> ()
  | _ -> Alcotest.fail "expected a simulator trap"
