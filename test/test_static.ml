(* The static-prediction layer: golden heuristic probabilities on
   hand-built CFGs, the Dempster–Shafer combination rule, Wu–Larus
   frequency propagation properties, the Analysis.Dom differential
   against Mir.Dom (Check.Verify runs on the former, the optimizer on
   the latter — they must agree), and the static-profile pipeline's
   backend differential. *)

open Helpers

let feq = Alcotest.float 1e-9

(* --- Dempster–Shafer combination ----------------------------------- *)

let test_combine () =
  let c = Analysis.Heur.combine in
  Alcotest.check feq "0.5 is the left identity" 0.3 (c 0.5 0.3);
  Alcotest.check feq "0.5 is the right identity" 0.3 (c 0.3 0.5);
  Alcotest.check feq "symmetric" (c 0.88 0.2) (c 0.2 0.88);
  (* the worked example: 0.88 (+) 0.2 = .88*.2 / (.88*.2 + .12*.8) *)
  Alcotest.check feq "golden value" (0.176 /. (0.176 +. 0.096)) (c 0.88 0.2);
  Alcotest.check feq "certainty absorbs" 1.0 (c 1.0 0.3);
  Alcotest.check feq "agreement reinforces"
    (0.88 *. 0.88 /. ((0.88 *. 0.88) +. (0.12 *. 0.12)))
    (c 0.88 0.88)

(* --- golden heuristic probabilities -------------------------------- *)

(* a while loop: the header's branch keeps the loop on the taken edge,
   leaves it on the fall edge *)
let while_loop () =
  Mir.Parse.func
    {|function f(r0):
f.entry:
  r1 = 0
  jmp f.head
f.head:
  cmp r1, 10
  bl -> f.body | f.exit
f.body:
  r1 = add r1, 1
  jmp f.head
f.exit:
  ret 0
|}

let ev_names heur label =
  List.map
    (fun e -> e.Analysis.Heur.ev_heur)
    (Analysis.Heur.evidence heur label)

let test_loop_exit () =
  let fn = while_loop () in
  let heur = Analysis.Heur.analyze fn in
  Alcotest.(check (list string))
    "only the loop-exit heuristic applies" [ "loop-exit" ]
    (ev_names heur "f.head");
  (* the fall edge leaves the loop: P(taken) = 1 - p_loop_exit *)
  Alcotest.check feq "stay probability" 0.8
    (Analysis.Heur.taken_prob heur "f.head")

let test_loop_branch () =
  let fn =
    Mir.Parse.func
      {|function f(r0):
f.entry:
  r1 = 0
  jmp f.body
f.body:
  r1 = add r1, 1
  cmp r1, 10
  bl -> f.body | f.exit
f.exit:
  ret 0
|}
  in
  let heur = Analysis.Heur.analyze fn in
  Alcotest.(check (list string))
    "a back edge is the strongest signal" [ "loop-branch" ]
    (ev_names heur "f.body");
  Alcotest.check feq "back-edge probability" 0.88
    (Analysis.Heur.taken_prob heur "f.body")

let test_opcode_eq () =
  let fn =
    Mir.Parse.func
      {|function f(r0):
f.entry:
  cmp r0, 42
  be -> f.yes | f.no
f.yes:
  ret 1
f.no:
  r1 = add r0, 1
  ret r1
|}
  in
  let heur = Analysis.Heur.analyze fn in
  (* both successors return, so the return heuristic abstains; only the
     equality-fails opcode prediction is left *)
  Alcotest.(check (list string))
    "opcode evidence alone" [ "opcode" ]
    (ev_names heur "f.entry");
  Alcotest.check feq "equality predicted to fail" 0.16
    (Analysis.Heur.taken_prob heur "f.entry")

let test_evidence_fusion () =
  let fn =
    Mir.Parse.func
      {|function f(r0):
f.entry:
  cmp r0, 0
  be -> f.call | f.plain
f.call:
  r1 = call getchar()
  jmp f.join
f.plain:
  r1 = add r0, 1
  jmp f.join
f.join:
  ret r1
|}
  in
  let heur = Analysis.Heur.analyze fn in
  Alcotest.(check (list string))
    "opcode and call both apply" [ "opcode"; "call" ]
    (ev_names heur "f.entry");
  Alcotest.check feq "fused by Dempster-Shafer"
    (Analysis.Heur.combine 0.16 0.22)
    (Analysis.Heur.taken_prob heur "f.entry")

let test_no_evidence () =
  let fn =
    Mir.Parse.func
      {|function f(r0, r1):
f.entry:
  cmp r0, r1
  bg -> f.a | f.b
f.a:
  ret 0
f.b:
  ret 1
|}
  in
  let heur = Analysis.Heur.analyze fn in
  Alcotest.(check (list string)) "undecidable branch" [] (ev_names heur "f.entry");
  Alcotest.check feq "coin flip" 0.5 (Analysis.Heur.taken_prob heur "f.entry")

(* --- frequency propagation golden values --------------------------- *)

let test_freq_while_loop () =
  let fn = while_loop () in
  let freq = Analysis.Freq.analyze fn in
  (* stay probability 0.8 -> cyclic 0.8 -> multiplier 1/(1-0.8) = 5 *)
  Alcotest.check feq "entry once" 1. (Analysis.Freq.block_freq freq "f.entry");
  Alcotest.check feq "header five times" 5.
    (Analysis.Freq.block_freq freq "f.head");
  Alcotest.check feq "body four times" 4.
    (Analysis.Freq.block_freq freq "f.body");
  Alcotest.check feq "exit once" 1. (Analysis.Freq.block_freq freq "f.exit");
  Alcotest.check feq "loop edge" 4.
    (Analysis.Freq.edge_freq freq ~src:"f.head" ~dst:"f.body");
  match Analysis.Freq.succ_probs freq "f.head" with
  | [ (a, pa); (b, pb) ] ->
    Alcotest.check feq "P(head->body)" 0.8
      (if String.equal a "f.body" then pa else pb);
    Alcotest.check feq "P(head->exit)" 0.2
      (if String.equal a "f.exit" then pa else (if String.equal b "f.exit" then pb else nan))
  | probs ->
    Alcotest.failf "expected two successors, got %d" (List.length probs)

let test_freq_loop_cap () =
  let fn =
    Mir.Parse.func
      {|function f(r0):
f.entry:
  jmp f.spin
f.spin:
  call putchar(42)
  jmp f.spin
|}
  in
  let freq = Analysis.Freq.analyze fn in
  (* cyclic probability 1 saturates at the cap instead of diverging *)
  Alcotest.check feq "capped multiplier" Analysis.Freq.loop_cap
    (Analysis.Freq.block_freq freq "f.spin")

(* --- frequency propagation properties ------------------------------ *)

(* all of [Freq]'s documented guarantees on one function *)
let freq_invariants fn =
  let loops = Analysis.Loops.analyze fn in
  let freq = Analysis.Freq.analyze ~loops fn in
  let preds = Mir.Func.predecessors fn in
  let entry = (Mir.Func.entry fn).Mir.Block.label in
  List.for_all
    (fun (b : Mir.Block.t) ->
      let label = b.Mir.Block.label in
      let f = Analysis.Freq.block_freq freq label in
      let finite = Float.is_finite f && f >= 0. in
      let probs = Analysis.Freq.succ_probs freq label in
      let dist_ok =
        probs = []
        || abs_float (List.fold_left (fun s (_, p) -> s +. p) 0. probs -. 1.)
           < 1e-9
      in
      (* flow conservation: away from loop headers (whose re-entry mass
         the multiplier already folds in) and the entry (source of the
         unit mass), a reached block's frequency is its edge inflow *)
      let conserved =
        (not (Analysis.Freq.reached freq label))
        || String.equal label entry
        || Analysis.Loops.is_header loops label
        ||
        let inflow =
          List.fold_left
            (fun s p -> s +. Analysis.Freq.edge_freq freq ~src:p ~dst:label)
            0.
            (Option.value ~default:[] (Hashtbl.find_opt preds label))
        in
        abs_float (inflow -. f) <= 1e-6 *. Float.max 1. f
      in
      finite && dist_ok && conserved)
    fn.Mir.Func.blocks

let prop_freq_specs =
  qcheck2 ~count:60 ~print:Check.Gen.show_spec "freq invariants on fuzz specs"
    Check.Gen.gen_spec
    (fun spec ->
      let p = Check.Gen.to_program spec in
      List.for_all freq_invariants p.Mir.Program.funcs)

let prop_freq_cfgs =
  qcheck2 ~count:120 ~print:Check.Gen.print_cfg
    "freq invariants on random CFGs (incl. irreducible)" Check.Gen.gen_cfg
    (fun cfg -> freq_invariants (Check.Gen.build_cfg cfg))

(* --- Analysis.Dom vs Mir.Dom differential -------------------------- *)

(* Check.Verify certifies rewrites with [Analysis.Dom]; the optimizer's
   loop analyses run on [Mir.Dom].  On reachable blocks the two must be
   the same analysis. *)
let dom_agrees fn =
  let a = Analysis.Dom.compute fn in
  let m = Mir.Dom.compute fn in
  let reachable = Mir.Func.reachable fn in
  let labels =
    List.filter
      (fun l -> Hashtbl.mem reachable l)
      (List.map (fun (b : Mir.Block.t) -> b.Mir.Block.label) fn.Mir.Func.blocks)
  in
  List.for_all
    (fun x ->
      Option.equal String.equal (Analysis.Dom.idom a x) (Mir.Dom.idom m x)
      && List.for_all
           (fun y ->
             Analysis.Dom.dominates a x y = Mir.Dom.dominates m x y)
           labels)
    labels

let prop_dom_cfgs =
  qcheck2 ~count:200 ~print:Check.Gen.print_cfg
    "Analysis.Dom = Mir.Dom on random CFGs" Check.Gen.gen_cfg
    (fun cfg -> dom_agrees (Check.Gen.build_cfg cfg))

let test_dom_fuzz_corpus () =
  List.iter
    (fun spec ->
      let p = Check.Gen.to_program spec in
      List.iter
        (fun fn ->
          Alcotest.(check bool)
            (Printf.sprintf "dominators agree on %s" fn.Mir.Func.name)
            true (dom_agrees fn))
        p.Mir.Program.funcs)
    (Check.Gen.sample ~seed:7 ~n:25 Check.Gen.gen_spec)

let test_dom_repro_corpus () =
  match Bench_db.Corpus.load_dir "../corpus" with
  | Error e -> Alcotest.fail e
  | Ok repros ->
    Alcotest.(check bool) "corpus is seeded" true (List.length repros >= 2);
    List.iter
      (fun (r : Bench_db.Corpus.repro) ->
        List.iter
          (fun fn ->
            Alcotest.(check bool)
              (Printf.sprintf "dominators agree on %s/%s"
                 r.Bench_db.Corpus.rp_name fn.Mir.Func.name)
              true (dom_agrees fn))
          r.Bench_db.Corpus.rp_program.Mir.Program.funcs)
      repros

let test_postdom () =
  let fn = while_loop () in
  let post = Analysis.Dom.compute_post fn in
  let exit = Analysis.Dom.virtual_exit in
  List.iter
    (fun label ->
      Alcotest.(check bool)
        (Printf.sprintf "virtual exit postdominates %s" label)
        true
        (Analysis.Dom.dominates post exit label))
    [ "f.entry"; "f.head"; "f.body"; "f.exit" ];
  Alcotest.(check bool) "exit postdominates the header" true
    (Analysis.Dom.dominates post "f.exit" "f.head");
  Alcotest.(check bool) "the body does not postdominate the header" false
    (Analysis.Dom.dominates post "f.body" "f.head")

(* --- static profile counts ----------------------------------------- *)

(* of_static fills every registered sequence with a positive budget and
   row counts matching its executions *)
let test_of_static_counts () =
  let spec = Check.Gen.spec_of_seed 11 in
  let p = Check.Gen.to_program spec in
  Mopt.Switch_lower.lower_program (Check.Gen.heuristic_of_spec spec) p;
  Mopt.Cleanup.run p;
  ignore (Mopt.Cleanup.finalize p);
  let seqs = Reorder.Detect.find_program ~facts:true p in
  Alcotest.(check bool) "spec has sequences" true (seqs <> []);
  let table = Reorder.Profiles.of_static p seqs in
  List.iter
    (fun (seq : Reorder.Detect.t) ->
      let view = Reorder.Profiles.counts table seq in
      Alcotest.(check bool)
        (Printf.sprintf "seq %d predicted alive" seq.Reorder.Detect.seq_id)
        true (view.Reorder.Profiles.total > 0);
      let sum =
        Array.fold_left ( + ) 0 view.Reorder.Profiles.item_counts
        + List.fold_left
            (fun s (_, c) -> s + c)
            0 view.Reorder.Profiles.default_counts
      in
      Alcotest.(check int) "rows sum to the execution budget"
        view.Reorder.Profiles.total sum)
    seqs

(* --- static-profile pipeline: backend differential ----------------- *)

(* the fuzz-case stages under --profile=static: reorder on predicted
   counts, certify, and demand byte-identical observables across every
   execution backend *)
let prop_static_differential =
  qcheck2 ~count:25 ~print:Check.Gen.show_spec
    "static-profile reordering: backends agree" Check.Gen.gen_spec
    (fun spec ->
      let p = Check.Gen.to_program spec in
      let out =
        Check.Fuzz.run_program ~profile:`Static
          ~heuristic:(Check.Gen.heuristic_of_spec spec)
          ~train:spec.Check.Gen.sp_train ~test:spec.Check.Gen.sp_test p
      in
      out.Check.Fuzz.co_errors = [])

let test_static_workload name =
  let w = Workloads.Registry.find name in
  let p = Minic.Lower.compile w.Workloads.Spec.source in
  let out =
    Check.Fuzz.run_program ~backends:(Check.Fuzz.all_backends ())
      ~profile:`Static ~heuristic:Mopt.Switch_lower.set_i ~train:""
      ~test:(Lazy.force w.Workloads.Spec.test_input)
      p
  in
  Alcotest.(check (list string))
    "four-backend observables byte-identical" [] out.Check.Fuzz.co_errors;
  Alcotest.(check bool) "the static profile drove reorderings" true
    (out.Check.Fuzz.co_reordered > 0)

let suite =
  [
    case "heur: Dempster-Shafer combination" test_combine;
    case "heur: loop-exit golden" test_loop_exit;
    case "heur: loop-branch golden" test_loop_branch;
    case "heur: opcode-equality golden" test_opcode_eq;
    case "heur: evidence fusion golden" test_evidence_fusion;
    case "heur: undecidable branch is a coin flip" test_no_evidence;
    case "freq: while-loop golden frequencies" test_freq_while_loop;
    case "freq: cyclic probability saturates at the cap" test_freq_loop_cap;
    prop_freq_specs;
    prop_freq_cfgs;
    prop_dom_cfgs;
    case "dom: differential on fuzz specs" test_dom_fuzz_corpus;
    case "dom: differential on the repro corpus" test_dom_repro_corpus;
    case "dom: postdominators of a while loop" test_postdom;
    case "profiles: of_static fills every sequence" test_of_static_counts;
    prop_static_differential;
    slow_case "pipeline: wc under --profile=static (all backends)" (fun () ->
        test_static_workload "wc");
    slow_case "pipeline: grep under --profile=static (all backends)" (fun () ->
        test_static_workload "grep");
  ]
