(* Differential tests for the fast execution backends: every program
   must behave identically under the MIR-walking reference interpreter,
   the Image-based pre-decoded interpreter AND the closure-compiled
   backend — same output, exit code, all ten counters, and the same
   (site, taken) branch event and block trace streams. *)

open Helpers

let fast_backends = [ ("predecoded", `Predecoded); ("compiled", `Compiled) ]

let counter_fields (c : Sim.Counters.t) =
  [
    ("insns", c.Sim.Counters.insns);
    ("cond_branches", c.Sim.Counters.cond_branches);
    ("taken_branches", c.Sim.Counters.taken_branches);
    ("jumps", c.Sim.Counters.jumps);
    ("indirect_jumps", c.Sim.Counters.indirect_jumps);
    ("calls", c.Sim.Counters.calls);
    ("returns", c.Sim.Counters.returns);
    ("loads", c.Sim.Counters.loads);
    ("stores", c.Sim.Counters.stores);
    ("nops", c.Sim.Counters.nops);
  ]

let capture ?config backend prog ~input =
  let branches = ref [] in
  let blocks = ref [] in
  let on_branch ~site ~taken = branches := (site, taken) :: !branches in
  let on_block ~func ~label = blocks := (func, label) :: !blocks in
  let result =
    Sim.Machine.run ?config ~backend ~on_branch ~on_block prog ~input
  in
  (result, List.rev !branches, List.rev !blocks)

let assert_backends_agree ?config ~name prog ~input =
  let r_ref, br_ref, bl_ref = capture ?config `Reference prog ~input in
  List.iter
    (fun (bname, backend) ->
      let name = name ^ " [" ^ bname ^ "]" in
      let r_img, br_img, bl_img = capture ?config backend prog ~input in
      check_output (name ^ ": output") r_ref.Sim.Machine.output
        r_img.Sim.Machine.output;
      check_int (name ^ ": exit code") r_ref.Sim.Machine.exit_code
        r_img.Sim.Machine.exit_code;
      List.iter2
        (fun (field, a) (_, b) -> check_int (name ^ ": " ^ field) a b)
        (counter_fields r_ref.Sim.Machine.counters)
        (counter_fields r_img.Sim.Machine.counters);
      Alcotest.(check (list (pair int bool)))
        (name ^ ": branch events") br_ref br_img;
      Alcotest.(check (list (pair string string)))
        (name ^ ": block trace") bl_ref bl_img)
    fast_backends

(* both backends must agree on whether a program traps and on the
   trap message *)
let trap_outcome ?config backend prog ~input =
  match Sim.Machine.run ?config ~backend prog ~input with
  | r -> Ok r.Sim.Machine.exit_code
  | exception Sim.Machine.Trap msg -> Error msg

let assert_trap_parity ?config ~name prog ~input =
  let outcome = Alcotest.(result int string) in
  let expected = trap_outcome ?config `Reference prog ~input in
  List.iter
    (fun (bname, backend) ->
      Alcotest.check outcome
        (name ^ " [" ^ bname ^ "]")
        expected
        (trap_outcome ?config backend prog ~input))
    fast_backends

(* ------------------------------------------------------------------ *)
(* Hand-built MIR corner cases                                         *)
(* ------------------------------------------------------------------ *)

let r n = Mir.Reg.of_int n
let reg n = Mir.Operand.Reg (r n)
let imm n = Mir.Operand.Imm n

let one_block_main ?(funcs = []) insns term =
  let p = Mir.Program.make () in
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn (Mir.Block.make ~label:"entry" insns term);
  Mir.Program.add_func p fn;
  List.iter (Mir.Program.add_func p) funcs;
  p

let test_unknown_callee () =
  (* decodes to a trap thunk; must only fire if the call executes *)
  let p =
    one_block_main
      [ Mir.Insn.Call (Some (r 1), "nowhere", []) ]
      (Mir.Block.Ret (Some (imm 0)))
  in
  assert_trap_parity ~name:"unknown callee" p ~input:""

let test_unknown_callee_unreached () =
  let p = Mir.Program.make () in
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"entry" [] (Mir.Block.Jmp "done"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"dead"
       [ Mir.Insn.Call (Some (r 1), "nowhere", []) ]
       (Mir.Block.Jmp "done"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"done" [] (Mir.Block.Ret (Some (imm 7))));
  Mir.Program.add_func p fn;
  (* the dead block's bad call must not poison decoding *)
  assert_backends_agree ~name:"unreached unknown callee" p ~input:""

let test_unknown_label () =
  let p = one_block_main [] (Mir.Block.Jmp "nowhere") in
  assert_trap_parity ~name:"unknown label" p ~input:""

let test_division_by_zero () =
  let p =
    one_block_main
      [
        Mir.Insn.Mov (r 1, imm 0);
        Mir.Insn.Binop (Mir.Insn.Div, r 2, imm 5, reg 1);
      ]
      (Mir.Block.Ret (Some (reg 2)))
  in
  assert_trap_parity ~name:"division by zero" p ~input:""

let test_fuel_exhaustion () =
  let src = "int main() { while (1) {} return 0; }" in
  let p = compile_final src in
  let config = { Sim.Machine.default_config with Sim.Machine.fuel = 1000 } in
  assert_trap_parity ~config ~name:"fuel exhaustion" p ~input:""

let test_depth_exhaustion () =
  let src = "int f(int n) { return f(n + 1); } int main() { return f(0); }" in
  let p = compile_final src in
  assert_trap_parity ~name:"call depth" p ~input:""

let test_too_few_args () =
  let callee = Mir.Func.make ~name:"two" ~params:[ r 1; r 2 ] in
  Mir.Func.add_block callee
    (Mir.Block.make ~label:"entry" [] (Mir.Block.Ret (Some (reg 1))));
  let p =
    one_block_main ~funcs:[ callee ]
      [ Mir.Insn.Call (Some (r 1), "two", [ imm 1 ]) ]
      (Mir.Block.Ret (Some (reg 1)))
  in
  assert_trap_parity ~name:"too few arguments" p ~input:""

let test_builtin_wrong_arity () =
  let p =
    one_block_main
      [ Mir.Insn.Call (None, "putchar", [ imm 65; imm 66 ]) ]
      (Mir.Block.Ret (Some (imm 0)))
  in
  assert_trap_parity ~name:"builtin arity" p ~input:""

let test_out_of_bounds_load () =
  let src = "int a[4]; int main() { return a[9]; }" in
  let p = compile_final src in
  assert_trap_parity ~name:"out-of-bounds load" p ~input:""

(* ------------------------------------------------------------------ *)
(* Random dispatch programs (QCheck differential fuzzing)              *)
(* ------------------------------------------------------------------ *)

type rand_program = { source : string; heuristic : string; input : string }

let dispatch_source ~cases ~dense ~with_call =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "int g;\n";
  if with_call then
    Buffer.add_string buf "int bump(int x) { g = g + x; return g % 97; }\n";
  Buffer.add_string buf "int classify(int c) {\n  switch (c) {\n";
  List.iteri
    (fun i v ->
      Buffer.add_string buf
        (Printf.sprintf "  case %d: return %d;\n" v (i + 1)))
    cases;
  Buffer.add_string buf "  default: return 0;\n  }\n}\n";
  Buffer.add_string buf
    (Printf.sprintf
       "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { s = \
        s * 31 + classify(c); %s s = s %% 65536; } print_int(s); putchar(' \
        '); print_int(g); return 0; }\n"
       (if with_call then "s = s + bump(c);" else ""));
  ignore dense;
  Buffer.contents buf

let gen_rand_program =
  QCheck.Gen.(
    let* n = int_range 1 16 in
    let* dense = bool in
    let* base = int_range 32 90 in
    let* step = if dense then return 1 else int_range 2 7 in
    let cases = List.init n (fun i -> base + (i * step)) in
    let* with_call = bool in
    let* heuristic = oneofl [ "I"; "II"; "III" ] in
    let* len = int_range 0 300 in
    let* chars = list_size (return len) (int_range 0 126) in
    let input =
      String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) chars)
    in
    return { source = dispatch_source ~cases ~dense ~with_call; heuristic; input })

let arb_rand_program =
  QCheck.make gen_rand_program ~print:(fun p ->
      Printf.sprintf "-- heuristic %s\n%s\n-- input: %S" p.heuristic p.source
        p.input)

let heuristic_of = function
  | "II" -> Mopt.Switch_lower.set_ii
  | "III" -> Mopt.Switch_lower.set_iii
  | _ -> Mopt.Switch_lower.set_i

let prop_differential =
  qcheck ~count:150 "fast backends match reference on random dispatchers"
    arb_rand_program (fun p ->
      let prog = compile_final ~heuristic:(heuristic_of p.heuristic) p.source in
      assert_backends_agree ~name:"fuzz" prog ~input:p.input;
      true)

(* ------------------------------------------------------------------ *)
(* All built-in workloads                                              *)
(* ------------------------------------------------------------------ *)

let truncate n s = if String.length s <= n then s else String.sub s 0 n

(* every workload under every heuristic set, all three backends *)
let test_all_workloads () =
  List.iter
    (fun hs ->
      List.iter
        (fun (w : Workloads.Spec.t) ->
          let prog = compile_final ~heuristic:hs w.Workloads.Spec.source in
          let input = truncate 3000 (Lazy.force w.Workloads.Spec.test_input) in
          let name =
            Printf.sprintf "%s (set %s)" w.Workloads.Spec.name
              hs.Mopt.Switch_lower.hs_name
          in
          assert_backends_agree ~name prog ~input)
        Workloads.Registry.all)
    Mopt.Switch_lower.all_sets

(* the prebuilt-image entry point must agree with run on a fresh build *)
let test_run_image_reuse () =
  let prog = compile_final "int main() { print_int(42); return 3; }" in
  let image = Sim.Image.build prog in
  let a = Sim.Machine.run_image image ~input:"" in
  let b = Sim.Machine.run_image image ~input:"" in
  let c = Sim.Machine.run prog ~input:"" in
  check_output "first" c.Sim.Machine.output a.Sim.Machine.output;
  check_output "second (image reused)" c.Sim.Machine.output b.Sim.Machine.output;
  check_int "exit" c.Sim.Machine.exit_code b.Sim.Machine.exit_code

(* a compiled program holds no run state: compile once, execute many
   times, each run starts from scratch *)
let test_compiled_reuse () =
  let w = Workloads.Registry.find "wc" in
  let prog = compile_final w.Workloads.Spec.source in
  let input = truncate 2000 (Lazy.force w.Workloads.Spec.test_input) in
  let compiled = Sim.Compiled.compile (Sim.Image.build prog) in
  let a = Sim.Compiled.exec compiled ~input in
  let b = Sim.Compiled.exec compiled ~input in
  let c = Sim.Machine.run ~backend:`Reference prog ~input in
  check_output "first" c.Sim.Machine.output a.Sim.Runtime.output;
  check_output "second (compiled reused)" c.Sim.Machine.output
    b.Sim.Runtime.output;
  check_int "insns first" c.Sim.Machine.counters.Sim.Counters.insns
    a.Sim.Runtime.counters.Sim.Counters.insns;
  check_int "insns second" c.Sim.Machine.counters.Sim.Counters.insns
    b.Sim.Runtime.counters.Sim.Counters.insns

(* the predictor bank driven through the compiled backend's fused sink
   must count exactly what the old per-branch closure dispatch over an
   assoc list of predictors counted *)
let test_bank_equivalence () =
  let w = Workloads.Registry.find "grep" in
  let prog = compile_final w.Workloads.Spec.source in
  let input = truncate 3000 (Lazy.force w.Workloads.Spec.test_input) in
  let keys = Driver.Config.paper_predictors in
  (* old protocol: an assoc list of predictors behind an on_branch
     closure, List.iter-ed for every event *)
  let preds =
    List.map
      (fun (h, c, e) ->
        ( (h, c, e),
          Sim.Predictor.make ~history_bits:h ~counter_bits:c ~entries:e ))
      keys
  in
  let on_branch ~site ~taken =
    List.iter (fun (_, p) -> Sim.Predictor.access p ~site ~taken) preds
  in
  let _ = Sim.Machine.run ~on_branch prog ~input in
  (* new protocol: a bank wired into the compiled branch terminators *)
  let bank = Sim.Predictor.bank keys in
  let compiled = Sim.Compiled.compile (Sim.Image.build prog) in
  let _ = Sim.Compiled.exec ~sink:(Sim.Predictor.Sink_bank bank) compiled ~input in
  check_int "bank size" (List.length keys) (Sim.Predictor.bank_size bank);
  List.iter2
    (fun (key, p) (key', mis) ->
      Alcotest.(check (triple int int int)) "key order" key key';
      check_int "mispredicts" (Sim.Predictor.mispredicts p) mis)
    preds
    (Sim.Predictor.bank_mispredicts bank);
  List.iter2
    (fun (_, p) (_, lk) -> check_int "lookups" (Sim.Predictor.lookups p) lk)
    preds
    (Sim.Predictor.bank_lookups bank);
  (* a reset bank re-counts from scratch *)
  Sim.Predictor.bank_reset bank;
  let _ = Sim.Compiled.exec ~sink:(Sim.Predictor.Sink_bank bank) compiled ~input in
  List.iter2
    (fun (_, p) (_, mis) -> check_int "mispredicts after reset"
        (Sim.Predictor.mispredicts p) mis)
    preds
    (Sim.Predictor.bank_mispredicts bank)

(* Machine.sites/site_of are now derived from the pre-decoded image;
   the numbering must round-trip and match the image's own tables *)
let test_sites_roundtrip () =
  let w = Workloads.Registry.find "sort" in
  let prog = compile_final w.Workloads.Spec.source in
  let sites = Sim.Machine.sites prog in
  let img_sites = Sim.Image.sites (Sim.Image.build prog) in
  check_int "same count" (Array.length sites) (Array.length img_sites);
  Array.iteri
    (fun i (func, label) ->
      let func', label' = img_sites.(i) in
      check_output "func" func func';
      check_output "label" label label';
      check_int "site_of roundtrip" i
        (Sim.Machine.site_of prog ~func ~label))
    sites

let suite =
  [
    case "unknown callee traps identically" test_unknown_callee;
    case "unreached unknown callee is harmless" test_unknown_callee_unreached;
    case "unknown label traps identically" test_unknown_label;
    case "division by zero" test_division_by_zero;
    case "fuel exhaustion" test_fuel_exhaustion;
    case "call depth exhaustion" test_depth_exhaustion;
    case "too few call arguments" test_too_few_args;
    case "builtin arity mismatch" test_builtin_wrong_arity;
    case "out-of-bounds load" test_out_of_bounds_load;
    case "image reuse across runs" test_run_image_reuse;
    case "compiled program reuse across runs" test_compiled_reuse;
    case "predictor bank equals closure dispatch" test_bank_equivalence;
    case "site numbering round-trips through the image" test_sites_roundtrip;
    prop_differential;
    slow_case "all workloads agree across backends" test_all_workloads;
  ]
