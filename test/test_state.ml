(* Durable serving state: CRC framing, journal + snapshot roundtrips,
   torn-tail tolerance, and the manifest reader's crash hardening. *)

open Helpers

let tmp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bromc_state_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  let rec walk p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> walk (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then walk dir

let with_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let program ~key ~name ?(generation = 1) ?(executions = 100)
    ?(last_opt = 50) () =
  {
    Driver.State.p_key = key;
    p_name = name;
    p_source = "int main() { return 0; }";
    p_generation = generation;
    p_signature = Printf.sprintf "sig-g%d" generation;
    p_executions = executions;
    p_last_opt_execs = last_opt;
    p_ranges = [ (0, [| 7; 3 |], executions); (1, [| 1; 2; 3 |], 6) ];
    p_combs = [ (0, [| 4 |], 4) ];
  }

let bank : Driver.State.bank =
  [ ((2, 2, 64), (1000, 37)); ((0, 2, 2048), (1000, 12)) ]

(* ---------------------------------------------------------------- *)
(* CRC framing                                                       *)
(* ---------------------------------------------------------------- *)

let test_crc_frame_roundtrip () =
  (* IEEE 802.3 check value for the classic vector *)
  Alcotest.(check int)
    "crc32(\"123456789\") is the standard check value" 0xCBF43926
    (Driver.State.crc32 "123456789");
  List.iter
    (fun payload ->
      let framed = Driver.State.frame payload in
      check_bool "frame is a single line" true
        (not (String.contains framed '\n'));
      match Driver.State.unframe framed with
      | Some back -> check_output "unframe restores the payload" payload back
      | None -> Alcotest.fail "frame/unframe roundtrip failed")
    [ "x"; "{\"v\":1}"; String.make 4096 'z' ];
  (* a single flipped byte must fail the CRC, not parse as data *)
  let framed = Driver.State.frame "{\"v\":1,\"k\":\"abc\"}" in
  let b = Bytes.of_string framed in
  Bytes.set b (String.length framed - 2) 'X';
  check_bool "corrupted frame rejected" true
    (Driver.State.unframe (Bytes.to_string b) = None);
  check_bool "short garbage rejected" true (Driver.State.unframe "zzz" = None)

(* ---------------------------------------------------------------- *)
(* Journal roundtrip and last-record-wins                            *)
(* ---------------------------------------------------------------- *)

let test_journal_roundtrip () =
  with_dir (fun dir ->
      check_bool "no state yet" false (Driver.State.exists ~dir);
      let w = Driver.State.open_journal ~dir in
      let p1 = program ~key:"k1" ~name:"alpha" () in
      let p2 = program ~key:"k2" ~name:"beta" ~generation:3 () in
      Driver.State.journal_program w p1;
      Driver.State.journal_program w p2;
      Driver.State.journal_bank w bank;
      (* a newer absolute record for k1 supersedes the first *)
      let p1' = program ~key:"k1" ~name:"alpha" ~generation:2 ~executions:500 () in
      Driver.State.journal_program w p1';
      Alcotest.(check int) "appended counts records" 4 (Driver.State.appended w);
      Driver.State.close_journal w;
      check_bool "state exists now" true (Driver.State.exists ~dir);
      let r = Driver.State.load ~dir in
      Alcotest.(check int) "no frames skipped" 0 r.Driver.State.r_skipped;
      Alcotest.(check int) "two distinct programs" 2
        (List.length r.Driver.State.r_programs);
      check_bool "bank restored" true (r.Driver.State.r_bank = bank);
      let k1 =
        List.find
          (fun p -> p.Driver.State.p_key = "k1")
          r.Driver.State.r_programs
      in
      Alcotest.(check int) "last record wins: generation" 2
        k1.Driver.State.p_generation;
      Alcotest.(check int) "last record wins: executions" 500
        k1.Driver.State.p_executions;
      check_bool "counters roundtrip" true
        (k1.Driver.State.p_ranges = p1'.Driver.State.p_ranges
        && k1.Driver.State.p_combs = p1'.Driver.State.p_combs);
      let k2 =
        List.find
          (fun p -> p.Driver.State.p_key = "k2")
          r.Driver.State.r_programs
      in
      check_bool "untouched program intact" true (k2 = p2))

let test_torn_tail_tolerated () =
  with_dir (fun dir ->
      let w = Driver.State.open_journal ~dir in
      Driver.State.journal_program w (program ~key:"k1" ~name:"alpha" ());
      Driver.State.journal_program w
        (program ~key:"k2" ~name:"beta" ~generation:4 ~executions:900 ());
      Driver.State.close_journal w;
      check_bool "tear applies" true (Driver.State.tear_journal ~dir);
      let r = Driver.State.load ~dir in
      (* the torn final record is dropped; the first survives whole *)
      Alcotest.(check int) "torn frame counted as skipped" 1
        r.Driver.State.r_skipped;
      Alcotest.(check int) "prefix record survives" 1
        (List.length r.Driver.State.r_programs);
      check_output "the surviving record is the first" "k1"
        (List.hd r.Driver.State.r_programs).Driver.State.p_key)

let test_garbage_never_raises () =
  with_dir (fun dir ->
      (* hole torn mid-file: garbage between two valid records *)
      let w = Driver.State.open_journal ~dir in
      Driver.State.journal_program w (program ~key:"k1" ~name:"alpha" ());
      Driver.State.close_journal w;
      let oc =
        open_out_gen [ Open_append ] 0o644 (Driver.State.journal_path ~dir)
      in
      output_string oc "deadbeef {not json}\n\n08x nope\n";
      close_out oc;
      let w = Driver.State.open_journal ~dir in
      Driver.State.journal_program w
        (program ~key:"k2" ~name:"beta" ~generation:2 ());
      Driver.State.close_journal w;
      let r = Driver.State.load ~dir in
      Alcotest.(check int) "damaged frames skipped, not fatal" 2
        r.Driver.State.r_skipped;
      Alcotest.(check int) "records on both sides survive" 2
        (List.length r.Driver.State.r_programs);
      (* an unreadable snapshot restores as empty, never raises *)
      let oc = open_out (Driver.State.snapshot_path ~dir) in
      output_string oc "\x00\x01\x02 total nonsense";
      close_out oc;
      let r = Driver.State.load ~dir in
      Alcotest.(check int) "journal still restores past a junk snapshot" 2
        (List.length r.Driver.State.r_programs))

(* ---------------------------------------------------------------- *)
(* Snapshots                                                         *)
(* ---------------------------------------------------------------- *)

let test_snapshot_compacts_journal () =
  with_dir (fun dir ->
      let w = Driver.State.open_journal ~dir in
      Driver.State.journal_program w (program ~key:"k1" ~name:"alpha" ());
      Driver.State.journal_bank w bank;
      Driver.State.close_journal w;
      (* snapshot the superseding state, then truncate the journal *)
      let p1' = program ~key:"k1" ~name:"alpha" ~generation:5 ~executions:777 () in
      Driver.State.write_snapshot ~dir [ p1' ] bank;
      (* before the truncate, load sees snapshot then stale journal:
         the journal's k1 record is older but still *absolute*, so the
         snapshot must not lose to it only when the journal is empty.
         Truncate-after-rename is the contract. *)
      Driver.State.truncate_journal ~dir;
      let r = Driver.State.load ~dir in
      Alcotest.(check int) "one program" 1
        (List.length r.Driver.State.r_programs);
      let k1 = List.hd r.Driver.State.r_programs in
      Alcotest.(check int) "snapshot state restored" 5
        k1.Driver.State.p_generation;
      Alcotest.(check int) "snapshot executions restored" 777
        k1.Driver.State.p_executions;
      check_bool "bank in the snapshot" true (r.Driver.State.r_bank = bank);
      (* journal records appended after the snapshot win over it *)
      let w = Driver.State.open_journal ~dir in
      Driver.State.journal_program w
        (program ~key:"k1" ~name:"alpha" ~generation:6 ~executions:800 ());
      Driver.State.close_journal w;
      let r = Driver.State.load ~dir in
      Alcotest.(check int) "journal beats snapshot" 6
        (List.hd r.Driver.State.r_programs).Driver.State.p_generation;
      (* no tmp file left behind by the atomic rename *)
      check_bool "no snapshot.tmp residue" false
        (Sys.file_exists (Driver.State.snapshot_path ~dir ^ ".tmp")))

(* ---------------------------------------------------------------- *)
(* Satellite: manifest reader skips a torn final line                 *)
(* ---------------------------------------------------------------- *)

let test_manifest_torn_tail () =
  let path = Filename.temp_file "bromc_manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let e1 = Driver.Manifest.entry ~id:0 ~status:"ok" () in
      let e2 =
        Driver.Manifest.entry ~id:1 ~status:"crash" ~message:"boom" ()
      in
      Driver.Manifest.write path [ e1; e2 ];
      (* a crash mid-append leaves a partial final line *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{ \"id\": 2, \"status\": \"o";
      close_out oc;
      let back = Driver.Manifest.read path in
      Alcotest.(check int) "torn tail dropped, prefix kept" 2
        (List.length back);
      check_bool "surviving entries intact" true (back = [ e1; e2 ]);
      (* a malformed line with valid lines *after* it is corruption *)
      Driver.Manifest.write path [ e1 ];
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{ garbage }\n";
      close_out oc;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{ \"id\": 3, \"status\": \"ok\" }\n";
      close_out oc;
      match Driver.Manifest.read path with
      | _ -> Alcotest.fail "mid-file corruption must raise"
      | exception Driver.Manifest.Parse_error _ -> ())

(* ---------------------------------------------------------------- *)
(* Chaos plans                                                       *)
(* ---------------------------------------------------------------- *)

let test_server_plan () =
  let p1 = Driver.Inject.server_plan ~seed:9 ~requests:200 ~count:10 in
  let p2 = Driver.Inject.server_plan ~seed:9 ~requests:200 ~count:10 in
  check_bool "deterministic in the seed" true (p1 = p2);
  Alcotest.(check int) "requested count" 10 (List.length p1);
  let victims = List.map (fun f -> f.Driver.Inject.sv_request) p1 in
  Alcotest.(check int) "distinct victims" 10
    (List.length (List.sort_uniq compare victims));
  check_bool "victims in range" true
    (List.for_all (fun r -> r >= 0 && r < 200) victims);
  check_bool "sorted by request index" true
    (List.sort compare victims = victims);
  let kinds =
    List.sort_uniq compare (List.map (fun f -> f.Driver.Inject.sv_kind) p1)
  in
  Alcotest.(check int) "all five kinds appear at count 10" 5
    (List.length kinds);
  let p3 = Driver.Inject.server_plan ~seed:10 ~requests:200 ~count:10 in
  check_bool "different seed, different victims" true (p1 <> p3);
  Alcotest.(check int) "count clamped to the stream" 3
    (List.length (Driver.Inject.server_plan ~seed:1 ~requests:3 ~count:99));
  check_bool "empty stream, empty plan" true
    (Driver.Inject.server_plan ~seed:1 ~requests:0 ~count:5 = [])

let suite =
  [
    case "state: CRC-32 framing roundtrip and rejection"
      test_crc_frame_roundtrip;
    case "state: journal roundtrip, last record wins" test_journal_roundtrip;
    case "state: torn tail dropped, prefix survives" test_torn_tail_tolerated;
    case "state: damaged frames and junk snapshots never raise"
      test_garbage_never_raises;
    case "state: snapshot compacts, journal beats snapshot"
      test_snapshot_compacts_journal;
    case "manifest: torn final line skipped, mid-file corruption raises"
      test_manifest_torn_tail;
    case "inject: server chaos plans are seeded and exhaustive"
      test_server_plan;
  ]
