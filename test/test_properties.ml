(* Cross-cutting property tests: randomly generated dispatch programs are
   pushed through the entire two-pass pipeline; the pipeline itself
   asserts output equality between the original and reordered binaries,
   so surviving the run is the property.  This is the repository's main
   semantic-preservation fuzz harness. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Random dispatch-program generator                                    *)
(* ------------------------------------------------------------------ *)

type cond =
  | Ceq of int
  | Cne of int
  | Clt of int
  | Cle of int
  | Cgt of int
  | Cge of int
  | Cbetween of int * int

let cond_to_c = function
  | Ceq k -> Printf.sprintf "c == %d" k
  | Cne k -> Printf.sprintf "c != %d" k
  | Clt k -> Printf.sprintf "c < %d" k
  | Cle k -> Printf.sprintf "c <= %d" k
  | Cgt k -> Printf.sprintf "c > %d" k
  | Cge k -> Printf.sprintf "c >= %d" k
  | Cbetween (a, b) -> Printf.sprintf "c >= %d && c <= %d" a b

let gen_cond =
  QCheck.Gen.(
    let* k = int_range 0 120 in
    let* k2 = int_range 1 20 in
    oneofl
      [ Ceq k; Cne k; Clt k; Cle k; Cgt k; Cge k; Cbetween (k, k + k2) ])

type dispatch_program = {
  conds : (cond * bool) list;  (* condition, side effect before it *)
  train : string;
  test : string;
}

let program_source p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "int g;\nint f(int c) {\n";
  List.iteri
    (fun i (cond, side) ->
      if side && i > 0 then Buffer.add_string buf "  g = g + 1;\n";
      Buffer.add_string buf
        (Printf.sprintf "  if (%s) return %d;\n" (cond_to_c cond) (i + 1)))
    p.conds;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.add_string buf
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { s = s * \
     31 + f(c); s = s % 65536; } print_int(s); putchar(' '); print_int(g); \
     return 0; }\n";
  Buffer.contents buf

let gen_input =
  QCheck.Gen.(
    let* n = int_range 0 400 in
    let* chars = list_size (return n) (int_range 0 126) in
    return (String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) chars)))

let gen_program =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* conds = list_size (return n) gen_cond in
    let* sides = list_size (return n) (frequency [ (4, return false); (1, return true) ]) in
    let* train = gen_input in
    let* test = gen_input in
    return { conds = List.combine conds sides; train; test })

let arb_program =
  QCheck.make gen_program ~print:(fun p ->
      Printf.sprintf "%s\n-- train: %S\n-- test: %S" (program_source p) p.train
        p.test)

let prop_pipeline_preserves_semantics =
  qcheck ~count:150 "pipeline preserves semantics on random dispatchers"
    arb_program (fun p ->
      (* Pipeline.run raises Failure on any output divergence and the
         validator raises on malformed MIR *)
      let r =
        reorder_pipeline ~training_input:p.train ~test_input:p.test
          (program_source p)
      in
      ignore r;
      true)

let prop_training_input_improves =
  qcheck ~count:75 "reordering never materially regresses on the training input"
    arb_program (fun p ->
      QCheck.assume (String.length p.train > 50);
      let r =
        reorder_pipeline ~training_input:p.train ~test_input:p.train
          (program_source p)
      in
      let o =
        r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters
          .Sim.Counters.insns
      in
      let n =
        r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
          .Sim.Counters.insns
      in
      (* the selection minimises an estimate; delay slots and the layout
         jumps of the restructured sequence are outside it and on short
         runs (a few thousand dynamic instructions) they can amount to
         several percent, so the bound is deliberately loose *)
      float_of_int n <= (1.12 *. float_of_int o) +. 64.)

let prop_exhaustive_never_loses =
  qcheck ~count:40 "greedy selection matches exhaustive on generated programs"
    arb_program (fun p ->
      QCheck.assume (String.length p.train > 20);
      let greedy =
        reorder_pipeline ~training_input:p.train ~test_input:p.test
          (program_source p)
      in
      let exhaustive =
        reorder_pipeline
          ~config:{ Driver.Config.default with Driver.Config.selector = `Exhaustive }
          ~training_input:p.train ~test_input:p.test (program_source p)
      in
      let insns (r : Driver.Pipeline.result) =
        r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
          .Sim.Counters.insns
      in
      (* the paper reports exact agreement on its suite; allow the tiny
         residue where distinct choices tie in the estimate but differ in
         delay-slot luck *)
      abs (insns greedy - insns exhaustive)
      <= 1 + (insns greedy / 50))

(* random switch programs across heuristic sets *)
let gen_switch_program =
  QCheck.Gen.(
    let* n = int_range 1 18 in
    let* dense = bool in
    let* values =
      if dense then return (List.init n (fun i -> 40 + i))
      else
        let* step = int_range 2 9 in
        return (List.init n (fun i -> 40 + (i * step)))
    in
    let* input = gen_input in
    return (values, input))

let arb_switch =
  QCheck.make gen_switch_program ~print:(fun (values, input) ->
      Printf.sprintf "cases [%s] input %S"
        (String.concat ";" (List.map string_of_int values))
        input)

let switch_source values =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { switch (c) {\n";
  List.iteri
    (fun i v -> Buffer.add_string buf (Printf.sprintf "case %d: s += %d; break;\n" v (i + 1)))
    values;
  Buffer.add_string buf "default: s--; } } print_int(s); return 0; }\n";
  Buffer.contents buf

let prop_switch_heuristics_agree =
  qcheck ~count:100 "random switches agree across heuristic sets" arb_switch
    (fun (values, input) ->
      let src = switch_source values in
      let a = run_src ~heuristic:Mopt.Switch_lower.set_i ~input src in
      let b = run_src ~heuristic:Mopt.Switch_lower.set_ii ~input src in
      let c = run_src ~heuristic:Mopt.Switch_lower.set_iii ~input src in
      String.equal a b && String.equal b c)

(* reordering on top of random switches: the pipeline's own equality
   check plus validation make this a semantics fuzz for the interaction
   of switch shapes with sequence detection *)
let prop_switch_reorder_preserves =
  qcheck ~count:60 "reordering random switches preserves semantics" arb_switch
    (fun (values, input) ->
      QCheck.assume (String.length input > 10);
      List.iter
        (fun hs ->
          let config = { Driver.Config.default with Driver.Config.heuristic = hs } in
          ignore
            (reorder_pipeline ~config ~training_input:input ~test_input:input
               (switch_source values)))
        Mopt.Switch_lower.all_sets;
      true)

(* ------------------------------------------------------------------ *)
(* Reference-model properties for the analyses                          *)
(* ------------------------------------------------------------------ *)

(* random small CFG: n blocks, each ending in a branch or jump to random
   targets (block 0 is the entry; the last block returns) *)
let gen_cfg =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* choices = list_size (return n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, choices))

let build_cfg (n, choices) =
  let fn = Mir.Func.make ~name:"g" ~params:[ Mir.Reg.of_int 0 ] in
  let label i = Printf.sprintf "b%d" i in
  List.iteri
    (fun i (t, f) ->
      let block =
        if i = n - 1 then
          Mir.Block.make ~label:(label i) [] (Mir.Block.Ret None)
        else if t = f then
          Mir.Block.make ~label:(label i) [] (Mir.Block.Jmp (label t))
        else
          Mir.Block.make ~label:(label i)
            [ Mir.Insn.Cmp (Mir.Operand.Reg (Mir.Reg.of_int 0), Mir.Operand.Imm 0) ]
            (Mir.Block.Br (Mir.Cond.Eq, label t, label f))
      in
      Mir.Func.add_block fn block)
    choices;
  fn

let arb_cfg =
  QCheck.make gen_cfg ~print:(fun (n, choices) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat ";"
           (List.map (fun (t, f) -> Printf.sprintf "(%d,%d)" t f) choices)))

(* reference dominance: a dominates b iff b is unreachable from the
   entry once a is removed (and both are reachable) *)
let reference_dominates fn a b =
  if String.equal a b then true
  else begin
    let reachable_avoiding avoided =
      let seen = Hashtbl.create 16 in
      let rec go l =
        if (not (Hashtbl.mem seen l)) && not (String.equal l avoided) then begin
          Hashtbl.replace seen l ();
          match Mir.Func.find_block_opt fn l with
          | Some b -> List.iter go (Mir.Func.successors fn b)
          | None -> ()
        end
      in
      (match fn.Mir.Func.blocks with
      | e :: _ -> go e.Mir.Block.label
      | [] -> ());
      seen
    in
    not (Hashtbl.mem (reachable_avoiding a) b)
  end

let prop_dominators_match_reference =
  qcheck ~count:300 "dominators agree with the path-cutting reference" arb_cfg
    (fun spec ->
      let fn = build_cfg spec in
      let dom = Mir.Dom.compute fn in
      let reach = Mir.Func.reachable fn in
      List.for_all
        (fun (a : Mir.Block.t) ->
          List.for_all
            (fun (b : Mir.Block.t) ->
              let la = a.Mir.Block.label and lb = b.Mir.Block.label in
              if not (Hashtbl.mem reach la && Hashtbl.mem reach lb) then true
              else Mir.Dom.dominates dom la lb = reference_dominates fn la lb)
            fn.Mir.Func.blocks)
        fn.Mir.Func.blocks)

let prop_loops_headers_dominate_bodies =
  qcheck ~count:300 "loop headers dominate their bodies" arb_cfg (fun spec ->
      let fn = build_cfg spec in
      let dom = Mir.Dom.compute fn in
      List.for_all
        (fun (l : Mir.Loops.loop) ->
          List.for_all
            (fun b -> Mir.Dom.dominates dom l.Mir.Loops.header b)
            l.Mir.Loops.body)
        (Mir.Loops.find fn))

(* ------------------------------------------------------------------ *)
(* Front-end robustness fuzz                                           *)
(* ------------------------------------------------------------------ *)

let prop_lexer_total =
  (* the lexer either tokenizes or raises Srcloc.Error, never anything
     else, on arbitrary bytes *)
  qcheck ~count:500 "lexer is total" QCheck.(string_of_size (Gen.int_range 0 200))
    (fun src ->
      match Minic.Lexer.tokenize src with
      | _ -> true
      | exception Minic.Srcloc.Error _ -> true)

let prop_parser_total =
  qcheck ~count:500 "parser is total"
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun src ->
      match Minic.Parser.parse src with
      | _ -> true
      | exception Minic.Srcloc.Error _ -> true)

let prop_cfg_text_roundtrip =
  qcheck ~count:200 "random CFGs survive the text round trip" arb_cfg
    (fun spec ->
      let fn = build_cfg spec in
      let p = Mir.Program.make () in
      Mir.Program.add_func p fn;
      let text = Mir.Program.to_string p in
      let q = Mir.Parse.program text in
      String.equal text (Mir.Program.to_string q))

let prop_mir_parser_total =
  qcheck ~count:500 "textual MIR parser is total"
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun src ->
      match Mir.Parse.program src with
      | _ -> true
      | exception Mir.Parse.Error _ -> true)

let suite =
  [
    prop_pipeline_preserves_semantics;
    prop_training_input_improves;
    prop_exhaustive_never_loses;
    prop_switch_heuristics_agree;
    prop_switch_reorder_preserves;
    prop_dominators_match_reference;
    prop_loops_headers_dominate_bodies;
    prop_lexer_total;
    prop_parser_total;
    prop_mir_parser_total;
    prop_cfg_text_roundtrip;
  ]
