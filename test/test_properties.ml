(* Cross-cutting property tests: randomly generated dispatch programs are
   pushed through the entire two-pass pipeline; the pipeline itself
   asserts output equality between the original and reordered binaries,
   so surviving the run is the property.

   The generators live in Check.Gen — one corpus shared with the fuzzing
   subsystem (bromc fuzz), so the shapes tested here and the shapes
   fuzzed there cannot drift apart. *)

open Helpers
module Gen = Check.Gen

let prop_pipeline_preserves_semantics =
  qcheck2 ~count:150 ~print:Gen.print_dispatch
    "pipeline preserves semantics on random dispatchers" Gen.gen_dispatch
    (fun (p : Gen.dispatch) ->
      (* Pipeline.run raises Failure on any output divergence and the
         validator raises on malformed MIR *)
      let r =
        reorder_pipeline ~training_input:p.Gen.train ~test_input:p.Gen.test
          (Gen.dispatch_source p)
      in
      ignore r;
      true)

(* Training-input regression guard.  This was a QCheck property whose
   bound had to be loosened repeatedly to absorb unlucky draws (delay
   slots and layout jumps are outside the estimate selection minimizes,
   and on runs of a few thousand dynamic instructions they can amount to
   several percent); a fixed seeded corpus keeps the guard while making
   every run check the exact same programs. *)
let training_regression_corpus () =
  let checked = ref 0 in
  List.iter
    (fun (p : Gen.dispatch) ->
      if String.length p.Gen.train > 50 then begin
        incr checked;
        let r =
          reorder_pipeline ~training_input:p.Gen.train
            ~test_input:p.Gen.train (Gen.dispatch_source p)
        in
        let insns (v : Driver.Pipeline.version) =
          v.Driver.Pipeline.v_counters.Sim.Counters.insns
        in
        let o = insns r.Driver.Pipeline.r_original in
        let n = insns r.Driver.Pipeline.r_reordered in
        if float_of_int n > (1.12 *. float_of_int o) +. 64. then
          Alcotest.failf
            "reordering regressed on its own training input (%d -> %d):\n%s" o
            n (Gen.print_dispatch p)
      end)
    (Gen.sample ~seed:1998 ~n:60 Gen.gen_dispatch);
  (* the corpus must actually exercise the bound, or the guard is dead *)
  check_bool "corpus has enough long training inputs" true (!checked >= 20)

let prop_exhaustive_never_loses =
  qcheck2 ~count:40 ~print:Gen.print_dispatch
    "greedy selection matches exhaustive on generated programs"
    Gen.gen_dispatch (fun (p : Gen.dispatch) ->
      QCheck2.assume (String.length p.Gen.train > 20);
      let greedy =
        reorder_pipeline ~training_input:p.Gen.train ~test_input:p.Gen.test
          (Gen.dispatch_source p)
      in
      let exhaustive =
        reorder_pipeline
          ~config:
            { Driver.Config.default with Driver.Config.selector = `Exhaustive }
          ~training_input:p.Gen.train ~test_input:p.Gen.test
          (Gen.dispatch_source p)
      in
      let insns (r : Driver.Pipeline.result) =
        r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
          .Sim.Counters.insns
      in
      (* the paper reports exact agreement on its suite; allow the tiny
         residue where distinct choices tie in the estimate but differ in
         delay-slot luck *)
      abs (insns greedy - insns exhaustive) <= 1 + (insns greedy / 50))

(* random switch programs across heuristic sets *)
let prop_switch_heuristics_agree =
  qcheck2 ~count:100 ~print:Gen.print_switch_values
    "random switches agree across heuristic sets" Gen.gen_switch_values
    (fun (values, input) ->
      let src = Gen.switch_source values in
      let a = run_src ~heuristic:Mopt.Switch_lower.set_i ~input src in
      let b = run_src ~heuristic:Mopt.Switch_lower.set_ii ~input src in
      let c = run_src ~heuristic:Mopt.Switch_lower.set_iii ~input src in
      String.equal a b && String.equal b c)

(* reordering on top of random switches: the pipeline's own equality
   check plus validation make this a semantics fuzz for the interaction
   of switch shapes with sequence detection *)
let prop_switch_reorder_preserves =
  qcheck2 ~count:60 ~print:Gen.print_switch_values
    "reordering random switches preserves semantics" Gen.gen_switch_values
    (fun (values, input) ->
      QCheck2.assume (String.length input > 10);
      List.iter
        (fun hs ->
          let config =
            { Driver.Config.default with Driver.Config.heuristic = hs }
          in
          ignore
            (reorder_pipeline ~config ~training_input:input ~test_input:input
               (Gen.switch_source values)))
        Mopt.Switch_lower.all_sets;
      true)

(* ------------------------------------------------------------------ *)
(* Reference-model properties for the analyses                          *)
(* ------------------------------------------------------------------ *)

(* reference dominance: a dominates b iff b is unreachable from the
   entry once a is removed (and both are reachable) *)
let reference_dominates fn a b =
  if String.equal a b then true
  else begin
    let reachable_avoiding avoided =
      let seen = Hashtbl.create 16 in
      let rec go l =
        if (not (Hashtbl.mem seen l)) && not (String.equal l avoided) then begin
          Hashtbl.replace seen l ();
          match Mir.Func.find_block_opt fn l with
          | Some b -> List.iter go (Mir.Func.successors fn b)
          | None -> ()
        end
      in
      (match fn.Mir.Func.blocks with
      | e :: _ -> go e.Mir.Block.label
      | [] -> ());
      seen
    in
    not (Hashtbl.mem (reachable_avoiding a) b)
  end

let prop_dominators_match_reference =
  qcheck2 ~count:300 ~print:Gen.print_cfg
    "dominators agree with the path-cutting reference" Gen.gen_cfg (fun spec ->
      let fn = Gen.build_cfg spec in
      let dom = Mir.Dom.compute fn in
      let reach = Mir.Func.reachable fn in
      List.for_all
        (fun (a : Mir.Block.t) ->
          List.for_all
            (fun (b : Mir.Block.t) ->
              let la = a.Mir.Block.label and lb = b.Mir.Block.label in
              if not (Hashtbl.mem reach la && Hashtbl.mem reach lb) then true
              else Mir.Dom.dominates dom la lb = reference_dominates fn la lb)
            fn.Mir.Func.blocks)
        fn.Mir.Func.blocks)

let prop_loops_headers_dominate_bodies =
  qcheck2 ~count:300 ~print:Gen.print_cfg "loop headers dominate their bodies"
    Gen.gen_cfg (fun spec ->
      let fn = Gen.build_cfg spec in
      let dom = Mir.Dom.compute fn in
      List.for_all
        (fun (l : Mir.Loops.loop) ->
          List.for_all
            (fun b -> Mir.Dom.dominates dom l.Mir.Loops.header b)
            l.Mir.Loops.body)
        (Mir.Loops.find fn))

(* ------------------------------------------------------------------ *)
(* Front-end robustness fuzz                                           *)
(* ------------------------------------------------------------------ *)

let prop_lexer_total =
  (* the lexer either tokenizes or raises Srcloc.Error, never anything
     else, on arbitrary bytes *)
  qcheck ~count:500 "lexer is total"
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun src ->
      match Minic.Lexer.tokenize src with
      | _ -> true
      | exception Minic.Srcloc.Error _ -> true)

let prop_parser_total =
  qcheck ~count:500 "parser is total"
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun src ->
      match Minic.Parser.parse src with
      | _ -> true
      | exception Minic.Srcloc.Error _ -> true)

let prop_cfg_text_roundtrip =
  qcheck2 ~count:200 ~print:Gen.print_cfg
    "random CFGs survive the text round trip" Gen.gen_cfg (fun spec ->
      let fn = Gen.build_cfg spec in
      let p = Mir.Program.make () in
      Mir.Program.add_func p fn;
      let text = Mir.Program.to_string p in
      let q = Mir.Parse.program text in
      String.equal text (Mir.Program.to_string q))

let prop_mir_parser_total =
  qcheck ~count:500 "textual MIR parser is total"
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun src ->
      match Mir.Parse.program src with
      | _ -> true
      | exception Mir.Parse.Error _ -> true)

let suite =
  [
    prop_pipeline_preserves_semantics;
    slow_case "reordering never materially regresses on the seeded corpus"
      training_regression_corpus;
    prop_exhaustive_never_loses;
    prop_switch_heuristics_agree;
    prop_switch_reorder_preserves;
    prop_dominators_match_reference;
    prop_loops_headers_dominate_bodies;
    prop_lexer_total;
    prop_parser_total;
    prop_mir_parser_total;
    prop_cfg_text_roundtrip;
  ]
