(* Tests for the translation-validation and fuzzing subsystem
   (lib/check): the verifier certifies every workload rewrite under
   every heuristic set, rejects a hand-mutated wrong-default-target
   clone (so it is not vacuously true), and the fuzz orchestrator's
   normal and injection modes both hold up on a seeded corpus. *)

open Helpers

(* compile + detect + train + reorder, returning everything the
   verifier needs; mirrors the pipeline's pass-2 stages *)
let transform ?(config = Driver.Config.default) ~training src =
  let base = Driver.Pipeline.compile_base config src in
  let seqs = Reorder.Detect.find_program base in
  let train_prog = Mir.Clone.program base in
  let table = Reorder.Profiles.instrument train_prog seqs in
  let _ = Sim.Machine.run train_prog ~profile:table ~input:training in
  let reord = Mir.Clone.program base in
  let report = Reorder.Pass.run reord seqs table in
  (base, reord, report)

let dispatch_src =
  "int g;\n\
   int f(int c) { if (c == 5) return 1; g++; if (c >= 10 && c <= 20) return \
   2; if (c != 64) return 3; return 0; }\n\
   int main() { int c; int s = 0; while ((c = getchar()) != EOF) { s = s * 31 \
   + f(c); s = s % 65536; } print_int(s); putchar(' '); print_int(g); return \
   0; }"

(* a training input that makes the later conditions hot, forcing a
   genuine reorder with duplicated side effects *)
let dispatch_training = String.concat "" (List.init 60 (fun i ->
    String.make 1 (Char.chr (40 + (i mod 60)))))

let test_certifies_dispatch () =
  let base, reord, report = transform ~training:dispatch_training dispatch_src in
  check_bool "something reordered" true
    (Reorder.Pass.reordered_count report >= 1);
  let summary = Check.Verify.certify_report ~before:base ~after:reord report in
  if not (Check.Verify.ok summary) then
    Alcotest.failf "verifier rejected a correct rewrite:\n%s"
      (String.concat "\n" (Check.Verify.all_errors summary));
  let pieces =
    List.fold_left
      (fun acc r -> acc + r.Check.Verify.v_pieces)
      0 summary.Check.Verify.seq_results
  in
  check_bool "certified at least one partition piece" true (pieces > 0)

(* hand-mutate the certified result: point one live chain edge of the
   reordered dispatcher at the wrong returning block and require the
   verifier to object.  This is the direct guard against a verifier
   that accepts everything. *)
let test_rejects_wrong_default_target () =
  let base, reord, report = transform ~training:dispatch_training dispatch_src in
  let applied =
    List.find_map
      (fun (sr : Reorder.Pass.seq_report) ->
        match sr.Reorder.Pass.sr_outcome with
        | Reorder.Pass.Reordered a -> Some (sr.Reorder.Pass.sr_seq, a)
        | _ -> None)
      report.Reorder.Pass.seq_reports
  in
  match applied with
  | None -> Alcotest.fail "expected a reordered sequence to mutate"
  | Some (seq, a) -> (
    let fb = Mir.Program.find_func base seq.Reorder.Detect.func_name in
    let fa = Mir.Program.find_func reord seq.Reorder.Detect.func_name in
    let edges =
      Check.Verify.live_leaf_edges ~fn_before:fb ~fn_after:fa
        ~var:seq.Reorder.Detect.var ~entry:a.Reorder.Apply.replica_entry
    in
    check_bool "chain has live exit edges" true (edges <> []);
    (* the deepest live edge carries the complement values: the default *)
    let chain_label, dir, succ = List.nth edges (List.length edges - 1) in
    let wrong =
      List.find
        (fun (bb : Mir.Block.t) ->
          (match bb.Mir.Block.term.kind with
          | Mir.Block.Ret _ -> true
          | _ -> false)
          && bb.Mir.Block.label <> succ
          && bb.Mir.Block.label <> Check.Verify.resolve fa succ)
        fb.Mir.Func.blocks
    in
    let b = Mir.Func.find_block fa chain_label in
    (match b.Mir.Block.term.kind with
    | Mir.Block.Br (cond, taken, fall) ->
      let kind =
        match dir with
        | `Taken -> Mir.Block.Br (cond, wrong.Mir.Block.label, fall)
        | `Fall -> Mir.Block.Br (cond, taken, wrong.Mir.Block.label)
      in
      b.Mir.Block.term <- Mir.Block.term kind
    | _ -> Alcotest.fail "live edge did not come from a branch");
    let summary = Check.Verify.certify_report ~before:base ~after:reord report in
    check_bool "verifier rejects the wrong target" false
      (Check.Verify.ok summary))

let test_pipeline_verify_flag () =
  let config = { Driver.Config.default with Driver.Config.verify = true } in
  let r =
    reorder_pipeline ~config ~training_input:dispatch_training
      ~test_input:"some other bytes entirely: 5 5 @ABC" dispatch_src
  in
  match r.Driver.Pipeline.r_verify with
  | None -> Alcotest.fail "verify=true produced no summary"
  | Some s -> check_bool "pipeline summary certified" true (Check.Verify.ok s)

(* every Table 3 workload under every heuristic set runs the pipeline
   with translation validation on; Pipeline.run raises if the verifier
   rejects, so surviving the sweep is the property *)
let small_slice s = String.sub s 0 (min 4000 (String.length s))

let workload_verify_case (w : Workloads.Spec.t) =
  slow_case (w.Workloads.Spec.name ^ ": rewrite certified under all sets")
    (fun () ->
      List.iter
        (fun hs ->
          let config =
            {
              Driver.Config.default with
              Driver.Config.heuristic = hs;
              Driver.Config.verify = true;
            }
          in
          let r =
            reorder_pipeline ~config
              ~training_input:
                (small_slice (Lazy.force w.Workloads.Spec.training_input))
              ~test_input:(small_slice (Lazy.force w.Workloads.Spec.test_input))
              w.Workloads.Spec.source
          in
          match r.Driver.Pipeline.r_verify with
          | Some s -> check_bool "certified" true (Check.Verify.ok s)
          | None -> Alcotest.fail "no verify summary")
        Mopt.Switch_lower.all_sets)

let test_fuzz_smoke () =
  let stats = Check.Fuzz.run ~cases:20 ~seed:7 () in
  if not (Check.Fuzz.ok stats) then
    Alcotest.failf "fuzz smoke failed:\n%s"
      (Format.asprintf "%a" Check.Fuzz.pp_stats stats);
  check_bool "corpus exercised the pass" true (stats.Check.Fuzz.st_reordered > 0);
  check_bool "pieces certified" true (stats.Check.Fuzz.st_pieces > 0)

let test_fuzz_inject_caught () =
  let stats = Check.Fuzz.run ~cases:15 ~seed:42 ~inject:true () in
  check_bool "injection run passed" true (Check.Fuzz.ok stats);
  check_bool "bugs were planted" true (stats.Check.Fuzz.st_injected > 0);
  check_int "every planted bug caught" stats.Check.Fuzz.st_injected
    stats.Check.Fuzz.st_caught;
  match stats.Check.Fuzz.st_counterexample_blocks with
  | None -> Alcotest.fail "no shrunk counterexample recorded"
  | Some blocks ->
    check_bool "shrunk counterexample is small (<= 10 blocks)" true
      (blocks <= 10)

let test_fuzz_skip_and_notify () =
  (* the checkpoint/resume contract: [skip]-ped cases are not executed
     but are counted, and [on_case] sees every executed case exactly
     once with its status *)
  let seen = Hashtbl.create 16 in
  let on_case case status = Hashtbl.replace seen case status in
  let skip case = case < 8 in
  let stats =
    Check.Fuzz.run ~cases:12 ~seed:7 ~skip ~on_case
      ~log:(fun _ -> ())
      ()
  in
  check_bool "run passed" true (Check.Fuzz.ok stats);
  check_int "skipped count" 8 stats.Check.Fuzz.st_skipped;
  check_int "executed cases notified" 4 (Hashtbl.length seen);
  for case = 8 to 11 do
    check_output
      (Printf.sprintf "case %d status" case)
      "ok"
      (try Hashtbl.find seen case with Not_found -> "<missing>")
  done;
  check_int "no watchdog firings expected" 0 stats.Check.Fuzz.st_timeouts;
  (* resuming everything is a no-op run *)
  let stats =
    Check.Fuzz.run ~cases:12 ~seed:7 ~skip:(fun _ -> true)
      ~log:(fun _ -> ())
      ()
  in
  check_int "all skipped" 12 stats.Check.Fuzz.st_skipped;
  check_int "nothing executed" 0 stats.Check.Fuzz.st_reordered

let test_spec_of_seed_deterministic () =
  let a = Check.Gen.spec_of_seed 12345 and b = Check.Gen.spec_of_seed 12345 in
  check_output "same seed, same spec" (Check.Gen.show_spec a)
    (Check.Gen.show_spec b);
  let c = Check.Gen.spec_of_seed 12346 in
  check_bool "different seed, different spec" true
    (not (String.equal (Check.Gen.show_spec a) (Check.Gen.show_spec c)))

let test_generated_specs_validate () =
  List.iter
    (fun spec ->
      Mir.Validate.check ~allow_switch:true (Check.Gen.to_program spec))
    (Check.Gen.sample ~seed:99 ~n:50 Check.Gen.gen_spec)

let test_shrink_keeps_predicate () =
  (* shrinking must preserve the caller's predicate and never grow the
     spec *)
  let spec = Check.Gen.spec_of_seed 4242 in
  let keep (s : Check.Gen.spec) = s.Check.Gen.sp_seq.Check.Gen.sq_conds <> [] in
  if keep spec then begin
    let shrunk = Check.Gen.shrink_spec ~keep spec in
    check_bool "predicate still holds" true (keep shrunk);
    Mir.Validate.check ~allow_switch:true (Check.Gen.to_program shrunk)
  end

let suite =
  [
    case "verifier certifies a reordered dispatcher" test_certifies_dispatch;
    case "verifier rejects a wrong default target"
      test_rejects_wrong_default_target;
    case "pipeline --verify populates and certifies" test_pipeline_verify_flag;
    case "spec_of_seed is deterministic" test_spec_of_seed_deterministic;
    case "generated specs validate" test_generated_specs_validate;
    case "shrinking preserves the predicate" test_shrink_keeps_predicate;
    slow_case "fuzz smoke (20 cases, all backends)" test_fuzz_smoke;
    slow_case "fuzz skip/on_case checkpoint contract" test_fuzz_skip_and_notify;
    slow_case "fuzz injection mode catches planted bugs"
      test_fuzz_inject_caught;
  ]
  @ List.map workload_verify_case Workloads.Registry.all
