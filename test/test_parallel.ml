(* The bounded domain pool and the fault-tolerant execution layer:
   results must come back in input order whatever the schedule, a
   failing job must be attributable without discarding its siblings,
   watchdogs must contain runaway runs, retries must be bounded and
   seeded-deterministic, backend degradation must preserve observables,
   and every injected fault must be contained. *)

open Helpers

let test_map_ordering () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun domains ->
      let ys = Driver.Pool.map ~domains (fun x -> x * x) xs in
      Alcotest.(check (list int))
        (Printf.sprintf "squares on %d domains" domains)
        (List.map (fun x -> x * x) xs)
        ys)
    [ 1; 2; 4; 7 ]

let test_map_uneven_work () =
  (* skew the per-item cost so late items finish before early ones *)
  let xs = List.init 40 (fun i -> 40 - i) in
  let f n =
    let acc = ref 0 in
    for i = 1 to n * 10_000 do
      acc := (!acc + i) land 0xFFFF
    done;
    (n, !acc land 0)
  in
  let ys = Driver.Pool.map ~domains:4 f xs in
  Alcotest.(check (list int)) "input order kept" xs (List.map fst ys)

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Driver.Pool.map ~domains:4 Fun.id []);
  Alcotest.(check (list int))
    "singleton" [ 9 ]
    (Driver.Pool.map ~domains:4 Fun.id [ 9 ])

exception Boom of int

let test_map_exception () =
  (* several items fail; the first failure in input order is re-raised,
     wrapped so the job is attributable *)
  let f x = if x mod 10 = 3 then raise (Boom x) else x in
  (match Driver.Pool.map ~domains:4 f (List.init 50 Fun.id) with
  | _ -> Alcotest.fail "expected Job_error"
  | exception Driver.Pool.Job_error (i, _, Boom n) ->
    check_int "first failing index" 3 i;
    check_int "original exception payload" 3 n);
  (* the trap exception type used by the simulator survives inside the
     wrapper too *)
  match
    Driver.Pool.map ~domains:2
      ~label:(fun i _ -> Printf.sprintf "item-%d" i)
      (fun x -> if x = 1 then raise (Sim.Machine.Trap "t") else x)
      [ 0; 1 ]
  with
  | _ -> Alcotest.fail "expected Job_error"
  | exception Driver.Pool.Job_error (i, label, Sim.Machine.Trap m) ->
    check_int "failing index" 1 i;
    check_output "label" "item-1" label;
    check_output "trap message" "t" m

let test_map_result_isolation () =
  (* failing jobs become structured outcomes; every sibling's result is
     preserved *)
  let f x =
    if x = 2 then raise (Boom 2)
    else if x = 5 then raise (Sim.Machine.Trap "bad")
    else x * 3
  in
  let outs = Driver.Pool.map_result ~domains:3 f (List.init 8 Fun.id) in
  check_int "one outcome per job" 8 (List.length outs);
  List.iteri
    (fun i o ->
      match (i, o) with
      | 2, Driver.Pool.Crash info ->
        check_bool "crash message mentions Boom" true
          (contains_substring info.Driver.Pool.exn_message "Boom")
      | 5, Driver.Pool.Trap m -> check_output "trap outcome" "bad" m
      | _, Driver.Pool.Ok v -> check_int (Printf.sprintf "sibling %d" i) (i * 3) v
      | _ -> Alcotest.failf "job %d: unexpected outcome" i)
    outs

let test_map_result_random_faults =
  qcheck ~count:60 "random crash subsets never lose siblings"
    QCheck.(pair small_nat (int_bound 3))
    (fun (seed, extra_domains) ->
      let n = 30 in
      let faulty = Array.init n (fun i -> mix seed i mod 3 = 0) in
      let f i = if faulty.(i) then raise (Boom i) else i * 7 in
      let outs =
        Driver.Pool.map_result ~domains:(1 + extra_domains) f
          (List.init n Fun.id)
      in
      List.length outs = n
      && List.for_all2
           (fun expected_fault o ->
             match o with
             | Driver.Pool.Ok v -> (not expected_fault) && v mod 7 = 0
             | Driver.Pool.Crash _ -> expected_fault
             | _ -> false)
           (Array.to_list faulty) outs)

let test_timed_map () =
  let ys = Driver.Pool.timed_map ~domains:3 (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] (List.map fst ys);
  List.iter (fun (_, s) -> check_bool "non-negative time" true (s >= 0.0)) ys

let test_default_domains_env () =
  let saved = Sys.getenv_opt "BROMC_DOMAINS" in
  Unix.putenv "BROMC_DOMAINS" "3";
  check_int "env override" 3 (Driver.Pool.default_domains ());
  Unix.putenv "BROMC_DOMAINS" "garbage";
  check_int "bad env falls back to 1" 1 (Driver.Pool.default_domains ());
  (* the invalid-value warning is emitted once, not per call *)
  check_int "still 1 on repeat" 1 (Driver.Pool.default_domains ());
  Unix.putenv "BROMC_DOMAINS" (match saved with Some s -> s | None -> "")

(* ------------------------------------------------------------------ *)
(* Guard: retries, backoff determinism, classification                 *)
(* ------------------------------------------------------------------ *)

let test_guard_retry_determinism () =
  let policy =
    { Driver.Guard.default with Driver.Guard.retries = 3; backoff_ms = 5;
      seed = 42 }
  in
  let schedule () =
    List.init 3 (fun a ->
        Driver.Guard.backoff_ms policy ~index:7 ~attempt:(a + 1))
  in
  Alcotest.(check (list int))
    "same seed, same backoff schedule" (schedule ()) (schedule ());
  (match schedule () with
  | [ a; b; c ] ->
    check_bool "exponential growth" true (a < b && b < c);
    check_bool "jitter bounded by one base unit" true
      (a >= 5 && a < 10 && b >= 10 && b < 15 && c >= 20 && c < 25)
  | _ -> Alcotest.fail "expected three delays");
  (* a transiently-failing job recovers within the retry budget *)
  let calls = ref 0 in
  let out, meta =
    Driver.Guard.protect ~index:3 policy (fun ~attempt ~cancel:_ ->
        incr calls;
        if attempt <= 2 then raise (Boom attempt) else 99)
  in
  (match out with
  | Driver.Pool.Ok v -> check_int "recovered value" 99 v
  | _ -> Alcotest.fail "expected recovery");
  check_int "three attempts" 3 meta.Driver.Guard.m_attempts;
  check_int "job called once per attempt" 3 !calls;
  check_int "one error line per failed attempt" 2
    (List.length meta.Driver.Guard.m_errors)

let test_guard_bounded_and_final () =
  let policy =
    { Driver.Guard.default with Driver.Guard.retries = 2; backoff_ms = 0 }
  in
  (* a persistent crash exhausts the budget: retries + 1 attempts *)
  let out, meta =
    Driver.Guard.protect policy (fun ~attempt ~cancel:_ -> raise (Boom attempt))
  in
  (match out with
  | Driver.Pool.Gave_up { attempts; _ } -> check_int "gave up after" 3 attempts
  | _ -> Alcotest.fail "expected Gave_up");
  check_int "attempts bounded" 3 meta.Driver.Guard.m_attempts;
  (* a crash with no retry budget is a plain Crash *)
  let out, meta =
    Driver.Guard.protect
      { policy with Driver.Guard.retries = 0 }
      (fun ~attempt:_ ~cancel:_ -> raise (Boom 0))
  in
  (match out with
  | Driver.Pool.Crash _ -> ()
  | _ -> Alcotest.fail "expected Crash");
  check_int "single attempt" 1 meta.Driver.Guard.m_attempts;
  (* traps are deterministic: never retried, whatever the budget *)
  let calls = ref 0 in
  let out, meta =
    Driver.Guard.protect policy (fun ~attempt:_ ~cancel:_ ->
        incr calls;
        raise (Sim.Runtime.Trap "deterministic"))
  in
  (match out with
  | Driver.Pool.Trap m -> check_output "trap kept" "deterministic" m
  | _ -> Alcotest.fail "expected Trap");
  check_int "trap not retried" 1 meta.Driver.Guard.m_attempts;
  check_int "job ran once" 1 !calls

(* ------------------------------------------------------------------ *)
(* Watchdog: a runaway job is cancelled and classified as a timeout     *)
(* ------------------------------------------------------------------ *)

let spin_src =
  "int main() { int i = 0; while (i >= 0) { i = i + 1; if (i > 100000) { i = \
   1; } } return 0; }"

let test_watchdog_timeout () =
  let job =
    Driver.Pipeline.job ~name:"spin" ~source:spin_src ~training_input:""
      ~test_input:"" ()
  in
  let policy =
    { Driver.Guard.default with Driver.Guard.timeout_ms = Some 50 }
  in
  let o = Driver.Pipeline.run_guarded_job ~index:0 ~policy job in
  (match o.Driver.Pipeline.o_outcome with
  | Driver.Pool.Timeout ms -> check_int "deadline reported" 50 ms
  | out ->
    Alcotest.failf "expected Timeout, got %s" (Driver.Pool.outcome_status out));
  check_int "one attempt (timeouts are final)" 1 o.Driver.Pipeline.o_attempts;
  check_bool "not degraded (timeouts are backend-independent)" false
    o.Driver.Pipeline.o_degraded

(* ------------------------------------------------------------------ *)
(* Manifest: JSON-lines write/read round trip                           *)
(* ------------------------------------------------------------------ *)

let test_manifest_roundtrip () =
  let entries =
    [
      Driver.Manifest.entry ~label:"a \"quoted\"\nlabel" ~message:"tab\there"
        ~attempts:3 ~retried:2 ~backend:"compiled" ~degraded:true
        ~injected:"raise" ~wall_ms:12.5 ~id:0 ~status:"crash" ();
      Driver.Manifest.entry ~id:7 ~status:"ok" ();
    ]
  in
  let path = Filename.temp_file "bromc_manifest" ".json" in
  Driver.Manifest.write path entries;
  let back = Driver.Manifest.read path in
  Sys.remove path;
  check_bool "round trip preserves every field" true (back = entries);
  (* incremental writes survive without a close (flushed per line) *)
  let path = Filename.temp_file "bromc_manifest" ".json" in
  let w = Driver.Manifest.create path in
  Driver.Manifest.add w (List.hd entries);
  let partial = Driver.Manifest.read path in
  Driver.Manifest.close w;
  Sys.remove path;
  check_int "entry readable before close" 1 (List.length partial);
  check_bool "ok predicate" true
    (Driver.Manifest.ok (Driver.Manifest.entry ~id:0 ~status:"ok" ()));
  check_bool "non-ok predicate" false
    (Driver.Manifest.ok (Driver.Manifest.entry ~id:0 ~status:"timeout" ()))

(* ------------------------------------------------------------------ *)
(* Inject: seeded fault plans                                           *)
(* ------------------------------------------------------------------ *)

let test_inject_plan () =
  let p1 = Driver.Inject.plan ~seed:5 ~jobs:50 ~count:12 in
  let p2 = Driver.Inject.plan ~seed:5 ~jobs:50 ~count:12 in
  check_bool "deterministic in the seed" true (p1 = p2);
  check_int "requested count" 12 (List.length p1);
  let victims = List.map (fun f -> f.Driver.Inject.i_job) p1 in
  check_int "distinct victims" 12 (List.length (List.sort_uniq compare victims));
  check_bool "victims in range" true (List.for_all (fun j -> j >= 0 && j < 50) victims);
  List.iter
    (fun k ->
      check_bool
        (Printf.sprintf "kind %s present" (Driver.Inject.kind_name k))
        true
        (List.exists (fun f -> f.Driver.Inject.i_kind = k) p1))
    Driver.Inject.all_kinds;
  check_int "count clamped to job count" 10
    (List.length (Driver.Inject.plan ~seed:5 ~jobs:10 ~count:100));
  check_int "no jobs, no faults" 0
    (List.length (Driver.Inject.plan ~seed:5 ~jobs:0 ~count:3))

(* ------------------------------------------------------------------ *)
(* Containment certification: >= 200 seeded faults, zero escapes        *)
(* ------------------------------------------------------------------ *)

(* enough dynamic instructions (~60 loop iterations) that an injected
   64-instruction fuel budget is guaranteed to exhaust *)
let tiny_src =
  "int main() { int i = 0; int s = 0; while (i < 60) { s = s + i; i = i + 1; \
   } print_int(s); return 0; }"

let tiny_output = "1770"  (* sum 0..59 *)

let test_fault_containment_certification () =
  let n = 220 and faults_n = 200 in
  let jobs =
    List.init n (fun i ->
        Driver.Pipeline.job
          ~name:(Printf.sprintf "j%03d" i)
          ~source:tiny_src ~training_input:"" ~test_input:"" ())
  in
  let faults = Driver.Inject.plan ~seed:11 ~jobs:n ~count:faults_n in
  check_int "fault budget" faults_n (List.length faults);
  let policy =
    { Driver.Guard.default with Driver.Guard.retries = 2; backoff_ms = 0;
      degrade = true }
  in
  let outcomes =
    Driver.Pipeline.run_jobs_guarded ~domains:4 ~policy ~inject:faults jobs
  in
  check_int "no outcome lost" n (List.length outcomes);
  let escapes = ref [] and contained = ref 0 in
  List.iteri
    (fun i (o : Driver.Pipeline.job_outcome) ->
      check_int "outcomes in job order" i o.Driver.Pipeline.o_index;
      let ok = Driver.Pool.outcome_ok o.Driver.Pipeline.o_outcome in
      match Driver.Inject.find faults ~job:i with
      | None ->
        (* sibling of 200 faults: must be untouched *)
        if not ok then
          escapes := Printf.sprintf "sibling %d lost" i :: !escapes;
        (match o.Driver.Pipeline.o_outcome with
        | Driver.Pool.Ok r ->
          check_output "sibling output intact" tiny_output
            r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output
        | _ -> ());
        check_output "sibling not attributed" "" o.Driver.Pipeline.o_injected
      | Some f ->
        (* victim: the fault must leave a trace — recovery evidence or a
           non-ok outcome attributed to this job in the manifest *)
        incr contained;
        check_output "victim attributed"
          (Driver.Inject.kind_name f.Driver.Inject.i_kind)
          o.Driver.Pipeline.o_injected;
        let e = Driver.Pipeline.manifest_of_outcome o in
        check_int "manifest id" i e.Driver.Manifest.e_id;
        check_bool "manifest attribution" true
          (e.Driver.Manifest.e_injected <> "");
        if ok then begin
          (if o.Driver.Pipeline.o_retried = 0 && not o.Driver.Pipeline.o_degraded
           then
             escapes :=
               Printf.sprintf "fault on %d left no trace" i :: !escapes);
          (* recovered jobs still produce the right answer *)
          match o.Driver.Pipeline.o_outcome with
          | Driver.Pool.Ok r ->
            check_output "recovered output correct" tiny_output
              r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output
          | _ -> ()
        end)
    outcomes;
  check_int "every fault accounted for" faults_n !contained;
  if !escapes <> [] then
    Alcotest.failf "%d escapes: %s" (List.length !escapes)
      (String.concat "; " !escapes)

(* ------------------------------------------------------------------ *)
(* Backend degradation preserves observables on the real workloads      *)
(* ------------------------------------------------------------------ *)

let test_backend_fallback_observables () =
  let trunc s = String.sub s 0 (min 3000 (String.length s)) in
  let jobs =
    List.map
      (fun (w : Workloads.Spec.t) ->
        Driver.Pipeline.job ~name:w.Workloads.Spec.name
          ~source:w.Workloads.Spec.source
          ~training_input:(trunc (Lazy.force w.Workloads.Spec.training_input))
          ~test_input:(trunc (Lazy.force w.Workloads.Spec.test_input))
          ())
      Workloads.Registry.all
  in
  let clean = Driver.Pipeline.run_jobs ~domains:4 jobs in
  (* corrupt every job's compiled-backend result: each must fall back to
     the predecoded interpreter and reproduce the clean observables *)
  let faults =
    List.mapi
      (fun i _ ->
        { Driver.Inject.i_job = i; i_kind = Driver.Inject.Corrupt;
          i_transient = false })
      jobs
  in
  let policy =
    { Driver.Guard.default with Driver.Guard.backoff_ms = 0; degrade = true }
  in
  let outcomes =
    Driver.Pipeline.run_jobs_guarded ~domains:4 ~policy ~inject:faults jobs
  in
  List.iter2
    (fun ((c : Driver.Pipeline.result), _) (o : Driver.Pipeline.job_outcome) ->
      match o.Driver.Pipeline.o_outcome with
      | Driver.Pool.Ok r ->
        check_bool (o.Driver.Pipeline.o_name ^ ": degraded") true
          o.Driver.Pipeline.o_degraded;
        check_output
          (o.Driver.Pipeline.o_name ^ ": fallback backend")
          "predecoded" o.Driver.Pipeline.o_backend;
        List.iter
          (fun (what, of_version) ->
            check_output
              (o.Driver.Pipeline.o_name ^ ": " ^ what)
              (of_version c.Driver.Pipeline.r_reordered)
              (of_version r.Driver.Pipeline.r_reordered))
          [
            ("output byte-identical", fun v -> v.Driver.Pipeline.v_output);
            ( "exit code identical",
              fun v -> string_of_int v.Driver.Pipeline.v_exit_code );
            ( "dynamic insns identical",
              fun v ->
                string_of_int v.Driver.Pipeline.v_counters.Sim.Counters.insns );
          ]
      | out ->
        Alcotest.failf "%s: not recovered (%s)" o.Driver.Pipeline.o_name
          (Driver.Pool.outcome_status out))
    clean outcomes

(* a parallel run of pipeline jobs equals the sequential run, job order
   preserved *)
let test_run_jobs_deterministic () =
  let workloads = [ "wc"; "hyphen"; "deroff" ] in
  let jobs =
    List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        Driver.Pipeline.job ~name
          ~source:w.Workloads.Spec.source
          ~training_input:(Lazy.force w.Workloads.Spec.training_input)
          ~test_input:(Lazy.force w.Workloads.Spec.test_input)
          ())
      workloads
  in
  let seq = Driver.Pipeline.run_jobs ~domains:1 jobs in
  let par = Driver.Pipeline.run_jobs ~domains:3 jobs in
  Alcotest.(check (list string))
    "sequential order" workloads
    (List.map (fun ((r : Driver.Pipeline.result), _) -> r.Driver.Pipeline.r_name) seq);
  List.iter2
    (fun ((a : Driver.Pipeline.result), _) ((b : Driver.Pipeline.result), _) ->
      check_output "name" a.Driver.Pipeline.r_name b.Driver.Pipeline.r_name;
      check_int
        (a.Driver.Pipeline.r_name ^ ": reordered insns")
        a.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
          .Sim.Counters.insns
        b.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
          .Sim.Counters.insns;
      check_output
        (a.Driver.Pipeline.r_name ^ ": output")
        a.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output
        b.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output)
    seq par

let test_on_stage_hook () =
  let stages = ref [] in
  let w = Workloads.Registry.find "wc" in
  let _ =
    Driver.Pipeline.run ~name:"wc"
      ~on_stage:(fun label seconds ->
        check_bool "stage time non-negative" true (seconds >= 0.0);
        stages := label :: !stages)
      ~source:w.Workloads.Spec.source
      ~training_input:(Lazy.force w.Workloads.Spec.training_input)
      ~test_input:(Lazy.force w.Workloads.Spec.test_input)
      ()
  in
  Alcotest.(check (list string))
    "stage sequence"
    [ "compile"; "detect"; "train"; "reorder"; "cleanup"; "measure" ]
    (List.rev !stages)

let suite =
  [
    case "map keeps input order" test_map_ordering;
    case "map keeps order under uneven work" test_map_uneven_work;
    case "map on empty and singleton lists" test_map_empty_and_singleton;
    case "map wraps the first error in Job_error" test_map_exception;
    case "map_result isolates failures from siblings" test_map_result_isolation;
    test_map_result_random_faults;
    case "timed_map pairs results with durations" test_timed_map;
    case "BROMC_DOMAINS overrides the domain count" test_default_domains_env;
    case "guard retries are seeded-deterministic" test_guard_retry_determinism;
    case "guard retries are bounded; traps are final" test_guard_bounded_and_final;
    case "manifest JSON-lines round trip" test_manifest_roundtrip;
    case "fault plans are seeded and cover all kinds" test_inject_plan;
    slow_case "watchdog cancels a runaway job as a timeout" test_watchdog_timeout;
    slow_case "200 injected faults, zero escapes, siblings intact"
      test_fault_containment_certification;
    slow_case "backend fallback preserves workload observables"
      test_backend_fallback_observables;
    case "pipeline stage hook fires in order" test_on_stage_hook;
    slow_case "parallel run_jobs equals sequential" test_run_jobs_deterministic;
  ]
