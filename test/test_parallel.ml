(* The bounded domain pool and the parallel pipeline jobs: results must
   come back in input order whatever the schedule, exceptions must
   propagate, and a parallel run must equal a sequential one. *)

open Helpers

let test_map_ordering () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun domains ->
      let ys = Driver.Pool.map ~domains (fun x -> x * x) xs in
      Alcotest.(check (list int))
        (Printf.sprintf "squares on %d domains" domains)
        (List.map (fun x -> x * x) xs)
        ys)
    [ 1; 2; 4; 7 ]

let test_map_uneven_work () =
  (* skew the per-item cost so late items finish before early ones *)
  let xs = List.init 40 (fun i -> 40 - i) in
  let f n =
    let acc = ref 0 in
    for i = 1 to n * 10_000 do
      acc := (!acc + i) land 0xFFFF
    done;
    (n, !acc land 0)
  in
  let ys = Driver.Pool.map ~domains:4 f xs in
  Alcotest.(check (list int)) "input order kept" xs (List.map fst ys)

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Driver.Pool.map ~domains:4 Fun.id []);
  Alcotest.(check (list int))
    "singleton" [ 9 ]
    (Driver.Pool.map ~domains:4 Fun.id [ 9 ])

exception Boom of int

let test_map_exception () =
  (* several items fail; the first failure in input order is re-raised *)
  let f x = if x mod 10 = 3 then raise (Boom x) else x in
  (match Driver.Pool.map ~domains:4 f (List.init 50 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> check_int "first failing index" 3 n);
  (* and the trap exception type used by the simulator survives too *)
  match
    Driver.Pool.map ~domains:2
      (fun x -> if x = 1 then raise (Sim.Machine.Trap "t") else x)
      [ 0; 1 ]
  with
  | _ -> Alcotest.fail "expected Trap"
  | exception Sim.Machine.Trap m -> check_output "trap message" "t" m

let test_timed_map () =
  let ys = Driver.Pool.timed_map ~domains:3 (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] (List.map fst ys);
  List.iter (fun (_, s) -> check_bool "non-negative time" true (s >= 0.0)) ys

let test_default_domains_env () =
  let saved = Sys.getenv_opt "BROMC_DOMAINS" in
  Unix.putenv "BROMC_DOMAINS" "3";
  check_int "env override" 3 (Driver.Pool.default_domains ());
  Unix.putenv "BROMC_DOMAINS" "garbage";
  check_int "bad env falls back to 1" 1 (Driver.Pool.default_domains ());
  Unix.putenv "BROMC_DOMAINS" (match saved with Some s -> s | None -> "")

(* a parallel run of pipeline jobs equals the sequential run, job order
   preserved *)
let test_run_jobs_deterministic () =
  let workloads = [ "wc"; "hyphen"; "deroff" ] in
  let jobs =
    List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        Driver.Pipeline.job ~name
          ~source:w.Workloads.Spec.source
          ~training_input:(Lazy.force w.Workloads.Spec.training_input)
          ~test_input:(Lazy.force w.Workloads.Spec.test_input)
          ())
      workloads
  in
  let seq = Driver.Pipeline.run_jobs ~domains:1 jobs in
  let par = Driver.Pipeline.run_jobs ~domains:3 jobs in
  Alcotest.(check (list string))
    "sequential order" workloads
    (List.map (fun ((r : Driver.Pipeline.result), _) -> r.Driver.Pipeline.r_name) seq);
  List.iter2
    (fun ((a : Driver.Pipeline.result), _) ((b : Driver.Pipeline.result), _) ->
      check_output "name" a.Driver.Pipeline.r_name b.Driver.Pipeline.r_name;
      check_int
        (a.Driver.Pipeline.r_name ^ ": reordered insns")
        a.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
          .Sim.Counters.insns
        b.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
          .Sim.Counters.insns;
      check_output
        (a.Driver.Pipeline.r_name ^ ": output")
        a.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output
        b.Driver.Pipeline.r_reordered.Driver.Pipeline.v_output)
    seq par

let test_on_stage_hook () =
  let stages = ref [] in
  let w = Workloads.Registry.find "wc" in
  let _ =
    Driver.Pipeline.run ~name:"wc"
      ~on_stage:(fun label seconds ->
        check_bool "stage time non-negative" true (seconds >= 0.0);
        stages := label :: !stages)
      ~source:w.Workloads.Spec.source
      ~training_input:(Lazy.force w.Workloads.Spec.training_input)
      ~test_input:(Lazy.force w.Workloads.Spec.test_input)
      ()
  in
  Alcotest.(check (list string))
    "stage sequence"
    [ "compile"; "detect"; "train"; "reorder"; "cleanup"; "measure" ]
    (List.rev !stages)

let suite =
  [
    case "map keeps input order" test_map_ordering;
    case "map keeps order under uneven work" test_map_uneven_work;
    case "map on empty and singleton lists" test_map_empty_and_singleton;
    case "map re-raises the first error in input order" test_map_exception;
    case "timed_map pairs results with durations" test_timed_map;
    case "BROMC_DOMAINS overrides the domain count" test_default_domains_env;
    case "pipeline stage hook fires in order" test_on_stage_hook;
    slow_case "parallel run_jobs equals sequential" test_run_jobs_deterministic;
  ]
