(* Edge cases across the pipeline: boundary constants, degenerate
   sequences, deep chains, pathological profiles, dot output. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Boundary constants                                                  *)
(* ------------------------------------------------------------------ *)

let test_constants_outside_range_domain () =
  (* compare constants beyond Range.min/max_value: detection must skip
     the sequence rather than misbehave; semantics still hold *)
  let src =
    Printf.sprintf
      "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { if (c \
       == %d) s++; else if (c == %d) s--; else if (c == 'a') s += 2; } \
       print_int(s); return 0; }"
      (Reorder.Range.max_value + 10)
      (Reorder.Range.min_value - 10)
  in
  let r = reorder_pipeline ~training_input:"aab" ~test_input:"aba" src in
  ignore r (* pipeline validates outputs *)

let test_constants_at_domain_edge () =
  let src =
    Printf.sprintf
      "int f(int c) { if (c == %d) return 1; if (c == %d) return 2; return 0; \
       }\n\
       int main() { print_int(f(getchar())); return 0; }"
      (Reorder.Range.max_value - 1)
      (Reorder.Range.min_value + 1)
  in
  let prog = compile src in
  let seqs = Reorder.Detect.find_program prog in
  check_bool "edge constants detected" true
    (List.exists
       (fun s -> String.equal s.Reorder.Detect.func_name "f")
       seqs)

let test_negative_ranges () =
  let src =
    "int f(int c) { if (c == -5) return 1; if (c >= -3 && c <= -1) return 2; \
     if (c == 0) return 3; return 0; }\n\
     int main() { int i; int s = 0; for (i = -8; i < 3; i++) s = s * 10 + \
     f(i); print_int(s); return 0; }"
  in
  let r = reorder_pipeline ~training_input:"" ~test_input:"" src in
  ignore r;
  check_output "values correct" "10222300"
    (run_src src ~input:"")

(* ------------------------------------------------------------------ *)
(* Degenerate and deep shapes                                          *)
(* ------------------------------------------------------------------ *)

let test_long_chain () =
  (* a 40-way chain exceeds the exhaustive-selection threshold and the
     brute-force limits; greedy must handle it *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "int f(int c) {\n";
  for i = 0 to 39 do
    Buffer.add_string buf (Printf.sprintf "  if (c == %d) return %d;\n" (i * 3) i)
  done;
  Buffer.add_string buf "  return 99;\n}\n";
  Buffer.add_string buf
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c); \
     print_int(s); return 0; }";
  let src = Buffer.contents buf in
  (* bias the profile toward the high cases so the identity order loses *)
  let input = String.init 200 (fun i -> Char.chr (100 + (i mod 20))) in
  let r = reorder_pipeline ~training_input:input ~test_input:input src in
  check_bool "long chain reordered" true
    (Reorder.Pass.reordered_count r.Driver.Pipeline.r_report >= 1)

let test_two_sided_overlapping_conditions () =
  (* conditions whose both readings overlap earlier ranges cut the walk *)
  let src =
    "int f(int c) { if (c >= 0) return 1; if (c <= -1) return 2; if (c == 5) \
     return 3; return 4; }\n\
     int main() { print_int(f(getchar())); return 0; }"
  in
  (* c >= 0 -> [0..MAX]; c <= -1: R=[MIN..-1] ok; then c == 5 overlaps
     [0..MAX]: stop; the third test is unreachable anyway *)
  let prog = compile src in
  let seqs = Reorder.Detect.find_program prog in
  List.iter
    (fun s ->
      check_bool "no overlapping ranges inside a sequence" true
        (let rec ok = function
           | [] -> true
           | (it : Reorder.Detect.item) :: rest ->
             List.for_all
               (fun (other : Reorder.Detect.item) ->
                 not
                   (Reorder.Range.overlaps it.Reorder.Detect.range
                      other.Reorder.Detect.range))
               rest
             && ok rest
         in
         ok s.Reorder.Detect.items))
    seqs

let test_single_hot_value_profile () =
  (* all mass on one range: it must be tested first *)
  let src =
    "int f(int c) { if (c == 1) return 1; if (c == 2) return 2; if (c == 3) \
     return 3; return 0; }\n\
     int main() { int c; int s = 0; while ((c = getchar()) != EOF) s += f(c); \
     print_int(s); return 0; }"
  in
  let training = String.make 100 '\003' in
  let r = reorder_pipeline ~training_input:training ~test_input:training src in
  let sr =
    List.find
      (fun sr ->
        String.equal sr.Reorder.Pass.sr_seq.Reorder.Detect.func_name "f")
      r.Driver.Pipeline.r_report.Reorder.Pass.seq_reports
  in
  match sr.Reorder.Pass.sr_choice with
  | Some choice ->
    check_output "hottest range first" "[3]"
      (Reorder.Range.show
         (List.hd choice.Reorder.Select.ordered).Reorder.Select.in_range)
  | None -> Alcotest.fail "no choice recorded"

let test_all_conditions_same_target () =
  (* every range exits to the same block: selection collapses the whole
     sequence to at most one test *)
  let src =
    "int main() { int c; int n = 0; while ((c = getchar()) != EOF) { if (c == \
     'a' || c == 'e' || c == 'i') n++; } print_int(n); return 0; }"
  in
  let input = "the quick brown fox is here again and again\n" in
  let r = reorder_pipeline ~training_input:input ~test_input:input src in
  ignore r

let test_sequence_in_recursive_function () =
  let src =
    "int depth(int c, int d) { if (c == '(') return depth(getchar(), d + 1); \
     if (c == ')') return depth(getchar(), d - 1); if (c == EOF) return d; \
     return depth(getchar(), d); }\n\
     int main() { print_int(depth(getchar(), 0)); return 0; }"
  in
  let input = "((a)(b))((c)" in
  let r = reorder_pipeline ~training_input:input ~test_input:input src in
  check_bool "sequence in recursive function handled" true
    (Reorder.Pass.detected_count r.Driver.Pipeline.r_report >= 1)

let test_do_while_backedge_sequence () =
  let src =
    "int main() { int c; int n = 0; do { c = getchar(); if (c == 'x') n++; \
     else if (c == 'y') n--; } while (c != EOF); print_int(n); return 0; }"
  in
  let input = "xyxyxxyzzz" in
  let r = reorder_pipeline ~training_input:input ~test_input:input src in
  ignore r

let test_switch_on_negative_values () =
  let src =
    "int main() { int i; int s = 0; for (i = -4; i <= 4; i++) { switch (i) { \
     case -3: s += 1; break; case -1: s += 2; break; case 0: s += 4; break; \
     case 2: s += 8; break; } } print_int(s); return 0; }"
  in
  List.iter
    (fun hs -> check_output "negative cases" "15" (run_src ~heuristic:hs src))
    Mopt.Switch_lower.all_sets

let test_empty_main () =
  check_output "empty program" "" (run_src "int main() { return 0; }")

(* ------------------------------------------------------------------ *)
(* Dot output                                                          *)
(* ------------------------------------------------------------------ *)

let test_dot_output_well_formed () =
  let prog = compile_final (Workloads.Registry.find "sed").Workloads.Spec.source in
  let dot = Format.asprintf "%a" (Mir.Dot.program ?annot:None) prog in
  check_bool "has digraphs" true (contains_substring dot "digraph");
  check_bool "has edges" true (contains_substring dot " -> ");
  (* crude balance check on braces *)
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 dot in
  check_int "balanced braces" (count '{') (count '}')

let suite =
  [
    case "edge: constants outside the range domain"
      test_constants_outside_range_domain;
    case "edge: constants at the domain boundary" test_constants_at_domain_edge;
    case "edge: negative ranges" test_negative_ranges;
    case "edge: 40-way chain" test_long_chain;
    case "edge: overlap cuts the walk" test_two_sided_overlapping_conditions;
    case "edge: single hot value" test_single_hot_value_profile;
    case "edge: one shared target" test_all_conditions_same_target;
    case "edge: sequence in recursion" test_sequence_in_recursive_function;
    case "edge: do-while back edge" test_do_while_backedge_sequence;
    case "edge: negative switch cases" test_switch_on_negative_values;
    case "edge: empty main" test_empty_main;
    case "edge: dot output" test_dot_output_well_formed;
  ]
