(* Negative tests for Mir.Validate: each malformed function must be
   rejected with the expected diagnostic.  The rest of the suite only
   ever exercises the validator on well-formed programs, so without
   these a validator that accepted everything would go unnoticed — and
   the translation-validation layer (Check.Verify) leans on it. *)

open Helpers

let r0 = Mir.Reg.of_int 0
let reg r = Mir.Operand.Reg r
let imm k = Mir.Operand.Imm k
let cmp0 = Mir.Insn.Cmp (reg r0, imm 0)

let func_of blocks =
  let fn = Mir.Func.make ~name:"t" ~params:[ r0 ] in
  List.iter (Mir.Func.add_block fn) blocks;
  fn

let ret = Mir.Block.make ~label:"done" [] (Mir.Block.Ret None)

let duplicate_label () =
  expect_invalid ~substr:"duplicate label"
    (Mir.Validate.func
       (func_of
          [
            Mir.Block.make ~label:"a" [] (Mir.Block.Jmp "done");
            Mir.Block.make ~label:"a" [] (Mir.Block.Jmp "done");
            ret;
          ]))

let undefined_branch_target () =
  expect_invalid ~substr:"undefined label"
    (Mir.Validate.func
       (func_of
          [
            Mir.Block.make ~label:"a" [ cmp0 ]
              (Mir.Block.Br (Mir.Cond.Eq, "nowhere", "done"));
            ret;
          ]))

let undefined_jmp_target () =
  expect_invalid ~substr:"undefined label"
    (Mir.Validate.func
       (func_of [ Mir.Block.make ~label:"a" [] (Mir.Block.Jmp "nowhere") ]))

let undefined_switch_case () =
  expect_invalid ~substr:"undefined label"
    (Mir.Validate.func ~allow_switch:true
       (func_of
          [
            Mir.Block.make ~label:"a" []
              (Mir.Block.Switch (r0, [ (1, "nowhere") ], "done"));
            ret;
          ]))

let unlowered_switch () =
  (* without [allow_switch] even a well-targeted switch is malformed:
     nothing downstream of Mopt.Switch_lower can execute one *)
  expect_invalid ~substr:"unlowered switch"
    (Mir.Validate.func
       (func_of
          [
            Mir.Block.make ~label:"a" []
              (Mir.Block.Switch (r0, [ (1, "done") ], "done"));
            ret;
          ]))

let undefined_jump_table () =
  expect_invalid ~substr:"undefined jump table"
    (Mir.Validate.func
       (func_of [ Mir.Block.make ~label:"a" [] (Mir.Block.Jtab (r0, 0)); ret ]))

let jump_table_bad_entry () =
  let fn =
    func_of [ Mir.Block.make ~label:"a" [] (Mir.Block.Jtab (r0, 0)); ret ]
  in
  fn.Mir.Func.jtables <- [ [| "done"; "nowhere" |] ];
  expect_invalid ~substr:"undefined label" (Mir.Validate.func fn)

let no_blocks () =
  (* the explicit-terminator analog of running off the end of a function:
     there is no block to fall into, so an empty function is the one way
     to "fall off the end" in this IR, and it must be rejected *)
  expect_invalid ~substr:"no blocks"
    (Mir.Validate.func (Mir.Func.make ~name:"t" ~params:[ r0 ]))

let cmp_in_delay_slot () =
  let b = Mir.Block.make ~label:"a" [] (Mir.Block.Jmp "done") in
  b.Mir.Block.term.Mir.Block.delay <- Some cmp0;
  expect_invalid ~substr:"delay slot contains a cmp"
    (Mir.Validate.func (func_of [ b; ret ]))

let call_in_delay_slot () =
  let b = Mir.Block.make ~label:"a" [] (Mir.Block.Jmp "done") in
  b.Mir.Block.term.Mir.Block.delay <-
    Some (Mir.Insn.Call (None, "putchar", [ imm 33 ]));
  expect_invalid ~substr:"delay slot contains a call"
    (Mir.Validate.func (func_of [ b; ret ]))

let branch_without_cmp () =
  expect_invalid ~substr:"not dominated by a cmp"
    (Mir.Validate.func
       (func_of
          [
            Mir.Block.make ~label:"a" []
              (Mir.Block.Br (Mir.Cond.Eq, "done", "b"));
            Mir.Block.make ~label:"b" [] (Mir.Block.Jmp "done");
            ret;
          ]))

let use_before_def () =
  let r9 = Mir.Reg.of_int 9 in
  expect_invalid ~substr:"read before written"
    (Mir.Validate.func ~check_init:true
       (func_of
          [
            Mir.Block.make ~label:"a"
              [ Mir.Insn.Binop (Mir.Insn.Add, r9, reg r9, imm 1) ]
              (Mir.Block.Ret (Some (reg r9)));
          ]))

let well_formed_accepted () =
  (* positive control: the same shapes, assembled correctly, validate *)
  let fn =
    func_of
      [
        Mir.Block.make ~label:"a" [ cmp0 ]
          (Mir.Block.Br (Mir.Cond.Eq, "done", "b"));
        Mir.Block.make ~label:"b" [] (Mir.Block.Jtab (r0, 0));
        ret;
      ]
  in
  fn.Mir.Func.jtables <- [ [| "done" |] ];
  match Mir.Validate.func ~check_init:true fn with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "unexpected: %s" (String.concat " | " msgs)

let program_check_raises () =
  let p = Mir.Program.make () in
  Mir.Program.add_func p
    (func_of [ Mir.Block.make ~label:"a" [] (Mir.Block.Jmp "nowhere") ]);
  match Mir.Validate.check p with
  | () -> Alcotest.fail "expected Validate.check to raise"
  | exception Failure msg ->
    check_bool "message names the label" true
      (contains_substring msg "nowhere")

let suite =
  [
    case "duplicate label rejected" duplicate_label;
    case "undefined branch target rejected" undefined_branch_target;
    case "undefined jmp target rejected" undefined_jmp_target;
    case "undefined switch case target rejected" undefined_switch_case;
    case "unlowered switch rejected" unlowered_switch;
    case "undefined jump table rejected" undefined_jump_table;
    case "jump table entry to undefined label rejected" jump_table_bad_entry;
    case "function with no blocks rejected" no_blocks;
    case "cmp in delay slot rejected" cmp_in_delay_slot;
    case "call in delay slot rejected" call_in_delay_slot;
    case "branch not dominated by a cmp rejected" branch_without_cmp;
    case "register read before written rejected" use_before_def;
    case "well-formed function accepted" well_formed_accepted;
    case "Validate.check raises with the message" program_check_raises;
  ]
