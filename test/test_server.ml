(* The serving daemon: artifact caches, sharded online profiles,
   drift-triggered re-optimization, and the replay driver. *)

open Helpers

(* ---------------------------------------------------------------- *)
(* Artifact caches                                                   *)
(* ---------------------------------------------------------------- *)

let test_artifact_single_flight () =
  let cache : int Sim.Artifact.t =
    Sim.Artifact.create ~name:"t-singleflight" ()
  in
  let builds = Atomic.make 0 in
  let n = 4 in
  let barrier = Atomic.make 0 in
  let worker () =
    (* rendezvous so all domains hit the cold key together *)
    Atomic.incr barrier;
    while Atomic.get barrier < n do
      Domain.cpu_relax ()
    done;
    Sim.Artifact.find_or_build cache "k" (fun () ->
        Atomic.incr builds;
        Unix.sleepf 0.02;
        41 + Atomic.get builds)
  in
  let doms = List.init n (fun _ -> Domain.spawn worker) in
  let values = List.map Domain.join doms in
  check_int "build ran once" 1 (Atomic.get builds);
  List.iter (fun v -> check_int "all domains share the artifact" 42 v) values;
  let s = Sim.Artifact.stats cache in
  check_int "one miss (the builder)" 1 s.Sim.Artifact.a_misses;
  check_int "waiters and latecomers are hits" (n - 1) s.Sim.Artifact.a_hits;
  check_int "one build" 1 s.Sim.Artifact.a_builds;
  check_int "one entry resident" 1 s.Sim.Artifact.a_entries

let test_artifact_lru_eviction () =
  let cache : string Sim.Artifact.t =
    Sim.Artifact.create ~capacity:2 ~name:"t-lru" ()
  in
  let build v () = v in
  ignore (Sim.Artifact.find_or_build cache "a" (build "A"));
  ignore (Sim.Artifact.find_or_build cache "b" (build "B"));
  (* touch [a] so [b] is the least recently used *)
  check_bool "a resident" true (Sim.Artifact.find cache "a" <> None);
  ignore (Sim.Artifact.find_or_build cache "c" (build "C"));
  let s = Sim.Artifact.stats cache in
  check_int "capacity enforced" 2 s.Sim.Artifact.a_entries;
  check_int "one eviction" 1 s.Sim.Artifact.a_evictions;
  check_bool "LRU victim was b" true (Sim.Artifact.find cache "b" = None);
  check_bool "a survived" true (Sim.Artifact.find cache "a" <> None);
  check_bool "c resident" true (Sim.Artifact.find cache "c" <> None)

let test_artifact_failed_build_retries () =
  let cache : int Sim.Artifact.t = Sim.Artifact.create ~name:"t-fail" () in
  (match Sim.Artifact.find_or_build cache "k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "failed build must re-raise"
  | exception Failure m -> check_output "diagnostic preserved" "boom" m);
  let s = Sim.Artifact.stats cache in
  check_int "failure counted" 1 s.Sim.Artifact.a_failures;
  check_int "no artifact installed" 0 s.Sim.Artifact.a_entries;
  (* the key stayed cold: a later request builds fresh *)
  check_int "retry succeeds" 7
    (Sim.Artifact.find_or_build cache "k" (fun () -> 7));
  let s = Sim.Artifact.stats cache in
  check_int "successful build counted" 1 s.Sim.Artifact.a_builds;
  check_int "both attempts were misses" 2 s.Sim.Artifact.a_misses

(* ---------------------------------------------------------------- *)
(* Profile shards and predictor banks                                *)
(* ---------------------------------------------------------------- *)

let drift_config = Driver.Config.default

let drift_parts () =
  let base =
    Driver.Pipeline.compile_base drift_config Driver.Replay.drift_source
  in
  let seqs = Driver.Pipeline.detect_seqs drift_config base in
  check_bool "drift program has sequences" true (seqs <> []);
  let train, table = Driver.Pipeline.instrument drift_config base seqs in
  (base, seqs, train, table)

let test_profile_shard_absorb () =
  let _, _, train, table = drift_parts () in
  let shard = Sim.Profile.copy_shape table in
  check_int "shard starts empty" 0 (Sim.Profile.total_executions shard);
  let input = Driver.Replay.drift_input ~phase:0 ~seed:1 in
  ignore (Sim.Machine.run_reference train ~profile:shard ~input);
  let collected = Sim.Profile.total_executions shard in
  check_bool "shard collected executions" true (collected > 0);
  check_int "global still empty" 0 (Sim.Profile.total_executions table);
  let moved = Sim.Profile.absorb ~into:table shard in
  check_int "absorb reports the move" collected moved;
  check_int "global received the counts" collected
    (Sim.Profile.total_executions table);
  check_int "shard zeroed" 0 (Sim.Profile.total_executions shard);
  check_int "re-absorb moves nothing" 0 (Sim.Profile.absorb ~into:table shard)

let test_bank_absorb () =
  let keys = [ (0, 2, 64); (2, 2, 128) ] in
  let global = Sim.Predictor.bank keys in
  let shard = Sim.Predictor.bank keys in
  for i = 0 to 99 do
    Sim.Predictor.bank_access shard ~site:(i mod 7) ~taken:(i mod 3 = 0)
  done;
  let shard_lookups = Sim.Predictor.bank_lookups shard in
  List.iter
    (fun (_, n) -> check_int "shard recorded the events" 100 n)
    shard_lookups;
  let shard_miss = Sim.Predictor.bank_mispredicts shard in
  Sim.Predictor.bank_absorb ~into:global shard;
  check_bool "tallies moved to the global bank" true
    (Sim.Predictor.bank_lookups global = shard_lookups
    && Sim.Predictor.bank_mispredicts global = shard_miss);
  List.iter
    (fun (_, n) -> check_int "shard lookups zeroed" 0 n)
    (Sim.Predictor.bank_lookups shard);
  List.iter
    (fun (_, n) -> check_int "shard mispredicts zeroed" 0 n)
    (Sim.Predictor.bank_mispredicts shard);
  (match
     Sim.Predictor.bank_absorb ~into:global
       (Sim.Predictor.bank [ (0, 1, 32) ])
   with
  | () -> Alcotest.fail "shape mismatch must raise"
  | exception Invalid_argument _ -> ());
  (* double absorb did not happen: global still holds exactly one move *)
  List.iter
    (fun (_, n) -> check_int "no double counting" 100 n)
    (Sim.Predictor.bank_lookups global)

(* ---------------------------------------------------------------- *)
(* Worker pool                                                       *)
(* ---------------------------------------------------------------- *)

let test_workers_run_and_shutdown () =
  let pool = Driver.Pool.Workers.create ~domains:3 () in
  check_int "size honors the request" 3 (Driver.Pool.Workers.size pool);
  check_int "run returns the task's result" 12
    (Driver.Pool.Workers.run pool (fun ~worker ->
         check_bool "worker index in range" true (worker >= 0 && worker < 3);
         12));
  (match Driver.Pool.Workers.run pool (fun ~worker:_ -> failwith "task") with
  | _ -> Alcotest.fail "run must re-raise the task's exception"
  | exception Failure m -> check_output "exception carried back" "task" m);
  let hits = Atomic.make 0 in
  for _ = 1 to 50 do
    Driver.Pool.Workers.post pool (fun ~worker:_ -> Atomic.incr hits)
  done;
  Driver.Pool.Workers.shutdown pool;
  check_int "queue drained before join" 50 (Atomic.get hits);
  Driver.Pool.Workers.shutdown pool;
  (* idempotent *)
  match Driver.Pool.Workers.post pool (fun ~worker:_ -> ()) with
  | () -> Alcotest.fail "post after shutdown must raise"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* Drift signatures                                                  *)
(* ---------------------------------------------------------------- *)

let test_drift_signature_flips () =
  let base, seqs, train, table = drift_parts () in
  let shard_for phase =
    let shard = Sim.Profile.copy_shape table in
    ignore
      (Sim.Machine.run_reference train ~profile:shard
         ~input:(Driver.Replay.drift_input ~phase ~seed:3));
    shard
  in
  let s0 = Reorder.Drift.signature base seqs (shard_for 0) in
  let s0' = Reorder.Drift.signature base seqs (shard_for 0) in
  let s1 = Reorder.Drift.signature base seqs (shard_for 1) in
  check_output "signature is deterministic in the counts" s0 s0';
  check_bool "lowercase-heavy vs digit-heavy orderings differ" true
    (Reorder.Drift.drifted ~served:s0 ~current:s1);
  check_bool "unchanged counts are not drift" false
    (Reorder.Drift.drifted ~served:s0 ~current:s0');
  let empty = Sim.Profile.copy_shape table in
  check_bool "no executions still renders a signature" true
    (String.length (Reorder.Drift.signature base seqs empty) > 0)

(* ---------------------------------------------------------------- *)
(* Native memo LRU (satellite: bounded in-process memo)              *)
(* ---------------------------------------------------------------- *)

let test_native_memo_lru () =
  if not (Sim.Native.available ()) then
    Alcotest.skip ();
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bromc-test-server-native-%d" (Unix.getpid ()))
  in
  let rec rm d =
    if Sys.file_exists d then
      if Sys.is_directory d then begin
        Array.iter (fun e -> rm (Filename.concat d e)) (Sys.readdir d);
        try Unix.rmdir d with _ -> ()
      end
      else try Sys.remove d with _ -> ()
  in
  let saved_cap = Sim.Native.memo_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Sim.Native.set_memo_capacity saved_cap;
      rm dir)
    (fun () ->
      Sim.Native.clear_memo ();
      Sim.Native.reset_stats ();
      Sim.Native.set_memo_capacity 2;
      check_int "capacity readable" 2 (Sim.Native.memo_capacity ());
      let img i =
        Sim.Image.build
          (compile_final (Printf.sprintf "int main() { return %d; }" i))
      in
      for i = 1 to 3 do
        match Sim.Native.prepare ~cache_dir:dir (img i) with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "prepare %d failed: %s" i m
      done;
      let s = Sim.Native.stats () in
      check_int "memo bounded" 2 s.Sim.Native.memo_entries;
      check_int "one eviction" 1 s.Sim.Native.memo_evictions;
      (* the evicted image is served from the on-disk store, not
         recompiled *)
      (match Sim.Native.prepare ~cache_dir:dir (img 1) with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "re-prepare failed: %s" m);
      let s = Sim.Native.stats () in
      check_bool "re-request hit the disk store" true
        (s.Sim.Native.disk_hits >= 1);
      check_int "no extra compile" 3 s.Sim.Native.compiles)

(* ---------------------------------------------------------------- *)
(* The server                                                        *)
(* ---------------------------------------------------------------- *)

let wc_spec = Workloads.Registry.find "wc"
let wc_source = wc_spec.Workloads.Spec.source
let wc_input () = Driver.Replay.input_slice ~seed:5 (Lazy.force wc_spec.Workloads.Spec.test_input)

let cache_stat stats name =
  List.find
    (fun s -> String.equal s.Sim.Artifact.a_name name)
    stats.Driver.Server.st_caches

let test_server_cold_then_warm () =
  let srv = Driver.Server.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Driver.Server.shutdown srv)
    (fun () ->
      let input = wc_input () in
      let r1 =
        Driver.Server.submit srv ~name:"wc" ~source:wc_source ~input
      in
      check_output "first request ok" "ok" r1.Driver.Server.rs_status;
      check_bool "first request was cold" true r1.Driver.Server.rs_cold;
      let r2 =
        Driver.Server.submit srv ~name:"wc" ~source:wc_source ~input
      in
      check_output "second request ok" "ok" r2.Driver.Server.rs_status;
      check_bool "second request served warm" false r2.Driver.Server.rs_cold;
      check_output "warm output identical" r1.Driver.Server.rs_output
        r2.Driver.Server.rs_output;
      let out, code = Driver.Server.oracle srv ~name:"wc" ~source:wc_source ~input in
      check_output "output matches the reference oracle" out
        r1.Driver.Server.rs_output;
      check_int "exit code matches the oracle" code
        r1.Driver.Server.rs_exit_code;
      let st = Driver.Server.stats srv in
      check_int "two requests" 2 st.Driver.Server.st_requests;
      check_int "one cold" 1 st.Driver.Server.st_cold;
      check_int "program built once" 1
        (cache_stat st "programs").Sim.Artifact.a_builds;
      check_int "MIR parsed once" 1
        (cache_stat st "mir").Sim.Artifact.a_builds)

(* Satellite: N domains requesting the same cold program concurrently
   compile it exactly once, and every response is byte-identical. *)
let test_server_concurrent_single_flight () =
  let srv = Driver.Server.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Driver.Server.shutdown srv)
    (fun () ->
      let input = wc_input () in
      let n = 8 in
      let lock = Mutex.create () in
      let cond = Condition.create () in
      let pending = ref n in
      let responses = Array.make n None in
      for i = 0 to n - 1 do
        Driver.Server.post srv ~name:"wc" ~source:wc_source ~input
          (fun r ->
            Mutex.lock lock;
            responses.(i) <- Some r;
            decr pending;
            if !pending = 0 then Condition.broadcast cond;
            Mutex.unlock lock)
      done;
      Mutex.lock lock;
      while !pending > 0 do
        Condition.wait cond lock
      done;
      Mutex.unlock lock;
      let rs =
        Array.to_list responses
        |> List.map (function Some r -> r | None -> assert false)
      in
      let first = List.hd rs in
      check_output "status ok" "ok" first.Driver.Server.rs_status;
      List.iter
        (fun r ->
          check_output "every response ok" "ok" r.Driver.Server.rs_status;
          check_output "byte-identical outputs" first.Driver.Server.rs_output
            r.Driver.Server.rs_output;
          check_int "identical exit codes" first.Driver.Server.rs_exit_code
            r.Driver.Server.rs_exit_code)
        rs;
      let st = Driver.Server.stats srv in
      check_int "exactly one cold request" 1 st.Driver.Server.st_cold;
      check_int "single-flight: program pipeline ran once" 1
        (cache_stat st "programs").Sim.Artifact.a_builds;
      check_int "single-flight: MIR parsed once" 1
        (cache_stat st "mir").Sim.Artifact.a_builds;
      let out, _ = Driver.Server.oracle srv ~name:"wc" ~source:wc_source ~input in
      check_output "all of them match the oracle" out
        first.Driver.Server.rs_output)

(* Satellite: profile drift mid-stream re-optimizes and atomically
   swaps the artifact; observables stay byte-identical throughout. *)
let test_server_drift_reopt () =
  let srv =
    Driver.Server.create ~domains:2 ~sample_every:1 ~merge_every:1
      ~drift_min_execs:8 ()
  in
  Fun.protect
    ~finally:(fun () -> Driver.Server.shutdown srv)
    (fun () ->
      let source = Driver.Replay.drift_source in
      let submit phase seed =
        let input = Driver.Replay.drift_input ~phase ~seed in
        let r = Driver.Server.submit srv ~name:"drift" ~source ~input in
        check_output "request ok" "ok" r.Driver.Server.rs_status;
        let out, code = Driver.Server.oracle srv ~name:"drift" ~source ~input in
        check_output "served output byte-identical to the oracle" out
          r.Driver.Server.rs_output;
        check_int "exit code identical" code r.Driver.Server.rs_exit_code;
        r
      in
      (* phase 0: lowercase-heavy traffic trains the initial ordering *)
      for s = 1 to 4 do
        ignore (submit 0 s)
      done;
      Driver.Server.sync srv;
      let before = List.length (Driver.Server.reopt_events srv) in
      (* phase 1: digit-heavy traffic; accumulated counts flip Eq. 1-4 *)
      for s = 1 to 6 do
        ignore (submit 1 s)
      done;
      Driver.Server.sync srv;
      let events = Driver.Server.reopt_events srv in
      check_bool "drift triggered a re-optimization" true
        (List.length events > before);
      let last = List.nth events (List.length events - 1) in
      check_bool "swap advanced the generation" true
        (last.Driver.Server.re_generation >= 2);
      check_output "event names the program" "drift"
        last.Driver.Server.re_program;
      (* the swapped artifact serves the new generation, still
         byte-identical to the reference *)
      let r = submit 1 99 in
      check_bool "served from the re-optimized generation" true
        (r.Driver.Server.rs_generation >= 2);
      let st = Driver.Server.stats srv in
      check_bool "shadow runs happened" true
        (st.Driver.Server.st_shadow_runs > 0);
      check_bool "merges happened" true (st.Driver.Server.st_merges > 0);
      check_bool "re-opt counted in stats" true
        (st.Driver.Server.st_reopts > before))

let test_server_guard_contains_trap () =
  let srv = Driver.Server.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Driver.Server.shutdown srv)
    (fun () ->
      let bad = "int main() { int x; x = 1 / 0; return x; }" in
      let r = Driver.Server.submit srv ~name:"bad" ~source:bad ~input:"" in
      check_output "trap is reported, not fatal" "trap"
        r.Driver.Server.rs_status;
      (* the server survives and still serves good programs *)
      let ok =
        Driver.Server.submit srv ~name:"wc" ~source:wc_source
          ~input:(wc_input ())
      in
      check_output "service alive after the trap" "ok"
        ok.Driver.Server.rs_status)

(* ---------------------------------------------------------------- *)
(* Replay                                                            *)
(* ---------------------------------------------------------------- *)

let test_replay_smoke () =
  let outcome =
    Driver.Replay.run
      ~workloads:[ "wc"; "grep" ]
      ~requests:36 ~concurrency:2 ~seed:7 ~drift:true ~sample_every:1
      ~merge_every:2 ~drift_min_execs:8 ~check_every:4 ()
  in
  check_int "every request was fired" 36 outcome.Driver.Replay.ro_requests;
  check_int "every request succeeded" 36 outcome.Driver.Replay.ro_ok;
  check_int "no failures" 0 outcome.Driver.Replay.ro_failed;
  check_bool "throughput measured" true
    (outcome.Driver.Replay.ro_throughput_rps > 0.);
  check_bool "latency percentiles ordered" true
    (outcome.Driver.Replay.ro_p99_ms >= outcome.Driver.Replay.ro_p50_ms);
  check_bool "differential sample ran" true
    (outcome.Driver.Replay.ro_checked > 0);
  check_int "zero oracle mismatches" 0 outcome.Driver.Replay.ro_mismatches;
  check_bool "drift re-optimization fired" true
    (outcome.Driver.Replay.ro_reopts >= 1);
  check_bool "cold baseline measured" true
    (outcome.Driver.Replay.ro_cold_ms > 0.);
  let st = outcome.Driver.Replay.ro_stats in
  check_bool "warm requests dominated" true
    (st.Driver.Server.st_requests > st.Driver.Server.st_cold)

(* Satellite: LRU eviction racing single-flight builds.  Domains hammer
   a capacity-1 cache with interleaved keys, so entries are evicted
   while other domains are mid-build or mid-wait on them; every lookup
   must still come back with its own key's artifact. *)
let test_artifact_lru_race () =
  let cache : string Sim.Artifact.t =
    Sim.Artifact.create ~capacity:1 ~name:"t-lru-race" ()
  in
  let keys = [| "a"; "b"; "c"; "d" |] in
  (* a resident re-request is a deterministic hit before the storm *)
  ignore (Sim.Artifact.find_or_build cache "a" (fun () -> "v-a"));
  ignore (Sim.Artifact.find_or_build cache "a" (fun () -> "v-a"));
  let wrong = Atomic.make 0 in
  let worker () =
    for i = 0 to 199 do
      (* all domains share the schedule, so the same key is requested
         concurrently (waiters on in-flight builds) while domains that
         drifted ahead evict it with the next key *)
      let k = keys.((i / 8) mod Array.length keys) in
      let v =
        Sim.Artifact.find_or_build cache k (fun () ->
            (* widen the in-flight window so evictions land inside it *)
            if i land 15 = 0 then Domain.cpu_relax ();
            "v-" ^ k)
      in
      if not (String.equal v ("v-" ^ k)) then Atomic.incr wrong
    done
  in
  let doms = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join doms;
  check_int "every lookup got its own key's artifact" 0 (Atomic.get wrong);
  let s = Sim.Artifact.stats cache in
  check_int "capacity held under the race" 1 s.Sim.Artifact.a_entries;
  check_bool "evictions actually happened" true
    (s.Sim.Artifact.a_evictions > 0);
  check_bool "hits and misses both occurred" true
    (s.Sim.Artifact.a_hits > 0 && s.Sim.Artifact.a_misses > 0)

(* ---------------------------------------------------------------- *)
(* Durability and admission control                                  *)
(* ---------------------------------------------------------------- *)

let with_state_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bromc_srv_state_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  let rec rm d =
    if Sys.is_directory d then begin
      Array.iter (fun e -> rm (Filename.concat d e)) (Sys.readdir d);
      try Unix.rmdir d with _ -> ()
    end
    else try Sys.remove d with _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

(* Tentpole: a crash (no final flush) and restart resumes at the
   learned generation with the merged profile counters intact, and the
   restored server's responses stay byte-identical to the oracle. *)
let test_server_crash_restart_resumes () =
  with_state_dir (fun dir ->
      let make () =
        Driver.Server.create ~domains:2 ~sample_every:1 ~merge_every:1
          ~drift_min_execs:8 ~state_dir:dir ()
      in
      let srv = make () in
      let input = wc_input () in
      for _ = 1 to 6 do
        ignore (Driver.Server.submit srv ~name:"wc" ~source:wc_source ~input)
      done;
      (* push drift through a generation bump so the restore has a
         non-trivial generation to resume *)
      let d0 = Driver.Replay.drift_input ~phase:0 ~seed:3 in
      let d1 = Driver.Replay.drift_input ~phase:1 ~seed:4 in
      for _ = 1 to 4 do
        ignore
          (Driver.Server.submit srv ~name:"drift"
             ~source:Driver.Replay.drift_source ~input:d0)
      done;
      Driver.Server.sync srv;
      for _ = 1 to 8 do
        ignore
          (Driver.Server.submit srv ~name:"drift"
             ~source:Driver.Replay.drift_source ~input:d1)
      done;
      Driver.Server.sync srv;
      let pre = Driver.Server.stats srv in
      let pre_programs = List.sort compare pre.Driver.Server.st_programs in
      check_bool "drift advanced a generation before the crash" true
        (List.exists
           (fun (n, g, _) -> String.equal n "drift" && g >= 2)
           pre_programs);
      (* power loss: no final merge, no snapshot *)
      Driver.Server.shutdown ~crash:true srv;
      let srv2 = make () in
      Fun.protect
        ~finally:(fun () -> Driver.Server.shutdown srv2)
        (fun () ->
          let post = Driver.Server.stats srv2 in
          check_int "both programs restored" 2
            post.Driver.Server.st_restored;
          check_bool "generations and counters resumed exactly" true
            (List.sort compare post.Driver.Server.st_programs = pre_programs);
          (* restored artifacts serve, warm, and match the oracle *)
          let r =
            Driver.Server.submit srv2 ~name:"wc" ~source:wc_source ~input
          in
          check_output "restored program serves" "ok"
            r.Driver.Server.rs_status;
          check_bool "restored program is warm (no rebuild)" false
            r.Driver.Server.rs_cold;
          let out, code =
            Driver.Server.oracle srv2 ~name:"wc" ~source:wc_source ~input
          in
          check_output "restored response byte-identical to oracle" out
            r.Driver.Server.rs_output;
          check_int "restored exit code matches" code
            r.Driver.Server.rs_exit_code;
          let rd =
            Driver.Server.submit srv2 ~name:"drift"
              ~source:Driver.Replay.drift_source ~input:d1
          in
          check_bool "drift serves at its resumed generation" true
            (rd.Driver.Server.rs_generation >= 2)))

(* a config change must not resurrect stale state: the content key
   embeds the config fingerprint, so restore drops every record *)
let test_restore_drops_on_config_change () =
  with_state_dir (fun dir ->
      let srv =
        Driver.Server.create ~domains:1 ~sample_every:1 ~merge_every:1
          ~state_dir:dir ()
      in
      ignore
        (Driver.Server.submit srv ~name:"wc" ~source:wc_source
           ~input:(wc_input ()));
      Driver.Server.sync srv;
      Driver.Server.shutdown ~crash:true srv;
      let config =
        { Driver.Config.default with Driver.Config.reorder_enabled = false }
      in
      let srv2 =
        Driver.Server.create ~config ~domains:1 ~state_dir:dir ()
      in
      Fun.protect
        ~finally:(fun () -> Driver.Server.shutdown srv2)
        (fun () ->
          check_int "mismatched config restores nothing" 0
            (Driver.Server.stats srv2).Driver.Server.st_restored))

(* Tentpole: admission control sheds excess load with an explicit
   overloaded response instead of queueing without bound. *)
let test_overload_shedding () =
  let srv = Driver.Server.create ~domains:1 ~queue_cap:2 () in
  Fun.protect
    ~finally:(fun () -> Driver.Server.shutdown srv)
    (fun () ->
      let input = wc_input () in
      (* warm the program so queued requests are pure service time *)
      ignore (Driver.Server.submit srv ~name:"wc" ~source:wc_source ~input);
      let n = 16 in
      let lock = Mutex.create () in
      let cond = Condition.create () in
      let pending = ref n in
      let responses = Array.make n None in
      for i = 0 to n - 1 do
        (* each in-flight request stalls 30ms, so the single worker
           saturates and the queue hits its cap *)
        Driver.Server.post srv
          ~inject:(fun () -> Unix.sleepf 0.03)
          ~name:"wc" ~source:wc_source ~input
          (fun r ->
            Mutex.lock lock;
            responses.(i) <- Some r;
            decr pending;
            if !pending = 0 then Condition.broadcast cond;
            Mutex.unlock lock)
      done;
      Mutex.lock lock;
      while !pending > 0 do
        Condition.wait cond lock
      done;
      Mutex.unlock lock;
      let shed, served =
        Array.fold_left
          (fun (shed, served) r ->
            match r with
            | Some r when String.equal r.Driver.Server.rs_status "overloaded"
              ->
              check_bool "shed response carries a diagnostic" true
                (String.length r.Driver.Server.rs_message > 0);
              (shed + 1, served)
            | Some r ->
              check_output "admitted requests still succeed" "ok"
                r.Driver.Server.rs_status;
              (shed, served + 1)
            | None -> Alcotest.fail "response lost")
          (0, 0) responses
      in
      check_bool "some requests were shed" true (shed > 0);
      check_bool "some requests were served" true (served > 0);
      let st = Driver.Server.stats srv in
      check_int "shed count surfaces in stats" shed
        st.Driver.Server.st_overloaded)

let test_replay_rejects_unknown_workload () =
  match Driver.Replay.run ~workloads:[ "no-such" ] ~requests:1 () with
  | _ -> Alcotest.fail "unknown workload must be rejected"
  | exception Failure m ->
    check_bool "error names the workload" true
      (String.length m > 0 && String.index_opt m 'n' <> None)

(* Tentpole: the chaos matrix end to end — seeded faults of every kind
   against a durable server, a crash-restart between the waves, zero
   escapes and an exact restore. *)
let test_replay_chaos_certification () =
  with_state_dir (fun dir ->
      let outcome =
        Driver.Replay.run
          ~workloads:[ "wc" ]
          ~requests:40 ~concurrency:2 ~seed:11 ~drift:true ~sample_every:1
          ~merge_every:2 ~drift_min_execs:8 ~check_every:8 ~chaos:5
          ~chaos_seed:13 ~state_dir:dir ()
      in
      check_int "five faults planned" 5 outcome.Driver.Replay.ro_chaos_planned;
      check_int "zero escapes" 0 outcome.Driver.Replay.ro_chaos_escapes;
      check_int "zero oracle mismatches" 0 outcome.Driver.Replay.ro_mismatches;
      check_int "one crash-restart cycle" 1
        outcome.Driver.Replay.ro_crash_restarts;
      check_bool "programs restored after the crash" true
        (outcome.Driver.Replay.ro_restored > 0);
      check_bool "restore matched the pre-crash state exactly" true
        outcome.Driver.Replay.ro_restore_exact;
      check_int "every fault has a verdict" 5
        (List.length outcome.Driver.Replay.ro_chaos_faults);
      (* unplanned requests must be untouched by the chaos *)
      check_bool "failures are bounded by the planned faults" true
        (outcome.Driver.Replay.ro_failed
        <= outcome.Driver.Replay.ro_chaos_failed))

let test_input_slice () =
  check_output "empty stays empty" "" (Driver.Replay.input_slice ~seed:1 "");
  let text = String.concat "\n" (List.init 200 string_of_int) ^ "\n" in
  let s1 = Driver.Replay.input_slice ~seed:1 text in
  let s4 = Driver.Replay.input_slice ~seed:4 text in
  check_bool "slice is a prefix" true
    (String.length s1 <= String.length text
    && String.equal s1 (String.sub text 0 (String.length s1)));
  check_bool "slices vary with the seed" true
    (String.length s1 <> String.length s4 || String.equal s1 s4);
  check_bool "newline-aligned" true
    (String.length s1 = 0 || s1.[String.length s1 - 1] = '\n')

let suite =
  [
    case "artifact: single-flight across domains" test_artifact_single_flight;
    case "artifact: LRU eviction under capacity" test_artifact_lru_eviction;
    case "artifact: failed build leaves key cold" test_artifact_failed_build_retries;
    case "profile: shard absorb moves counts once" test_profile_shard_absorb;
    case "predictor: bank absorb merges telemetry" test_bank_absorb;
    case "pool: workers run, drain, shut down" test_workers_run_and_shutdown;
    case "drift: signature flips with the input mix" test_drift_signature_flips;
    case "native: memo LRU bounded, refill from disk" test_native_memo_lru;
    case "server: cold build then warm hits" test_server_cold_then_warm;
    case "server: N domains, one compile, identical bytes"
      test_server_concurrent_single_flight;
    slow_case "server: drift re-optimizes, observables identical"
      test_server_drift_reopt;
    case "server: trap contained by the guard ladder"
      test_server_guard_contains_trap;
    case "artifact: LRU eviction races single-flight builds"
      test_artifact_lru_race;
    slow_case "server: crash-restart resumes generation and counters"
      test_server_crash_restart_resumes;
    case "server: restore drops state on config change"
      test_restore_drops_on_config_change;
    case "server: queue cap sheds load as overloaded"
      test_overload_shedding;
    slow_case "replay: mixed traffic, oracle-checked" test_replay_smoke;
    slow_case "replay: chaos matrix certified, zero escapes"
      test_replay_chaos_certification;
    case "replay: unknown workload rejected" test_replay_rejects_unknown_workload;
    case "replay: input slices" test_input_slice;
  ]
