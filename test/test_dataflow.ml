(* The lib/analysis subsystem: the generic engine, the interval and
   exact-set domains, the derived analyses (intervals, cc liveness,
   reaching definitions, purity), their consumers (lint, Explain,
   Const_prop, dot annotations), and the analysis-strengthened detector
   end to end on the awk fixture. *)

open Helpers
module Iv = Analysis.Iv
module Iset = Analysis.Iset

let r n = Mir.Reg.of_int n
let reg n = Mir.Operand.Reg (r n)
let imm n = Mir.Operand.Imm n

let fn_of blocks =
  let fn = Mir.Func.make ~name:"f" ~params:[ r 0 ] in
  List.iter
    (fun (label, insns, term) ->
      Mir.Func.add_block fn (Mir.Block.make ~label insns term))
    blocks;
  fn

let block fn label =
  match Mir.Func.find_block_opt fn label with
  | Some b -> b
  | None -> Alcotest.failf "no block %s" label

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_forward_reachability () =
  (* boolean forward reachability: the island block keeps bottom *)
  let fn =
    fn_of
      [
        ("entry", [], Mir.Block.Jmp "mid");
        ("mid", [], Mir.Block.Ret None);
        ("island", [], Mir.Block.Ret None);
      ]
  in
  let problem =
    {
      Mir.Dataflow.direction = Mir.Dataflow.Forward;
      boundary = true;
      bottom = false;
      join = ( || );
      equal = Bool.equal;
      transfer = (fun _ f -> f);
      edge = None;
      widen = None;
      widen_after = 8;
    }
  in
  let res = Mir.Dataflow.solve problem fn in
  check_bool "entry reached" true (Mir.Dataflow.fact_in res "entry");
  check_bool "mid reached" true (Mir.Dataflow.fact_in res "mid");
  check_bool "island keeps bottom" false (Mir.Dataflow.fact_in res "island");
  check_bool "iterations counted" true (Mir.Dataflow.iterations res > 0)

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)
(* ------------------------------------------------------------------ *)

let test_iv_ops () =
  check_bool "meet disjoint is bot" true
    (Iv.is_bot (Iv.meet (Iv.make 0 4) (Iv.make 6 9)));
  check_bool "join hull" true
    (Iv.equal (Iv.join (Iv.make 0 2) (Iv.make 8 9)) (Iv.make 0 9));
  check_bool "add" true
    (Iv.equal (Iv.add (Iv.make 1 2) (Iv.make 10 20)) (Iv.make 11 22));
  check_bool "const recognised" true (Iv.is_const (Iv.const 7) = Some 7);
  check_bool "of_cond lt" true
    (Iv.equal (Iv.of_cond Mir.Cond.Lt 5) (Iv.make min_int 4));
  check_bool "of_cond ne degrades to top" true
    (Iv.equal (Iv.of_cond Mir.Cond.Ne 5) Iv.top);
  check_bool "always" true
    (Iv.always Mir.Cond.Lt (Iv.make 0 4) (Iv.make 5 9));
  check_bool "never" true (Iv.never Mir.Cond.Eq (Iv.make 0 4) (Iv.const 9));
  (* widening jumps a moving bound to the infinity *)
  let w = Iv.widen (Iv.make 0 4) (Iv.make 0 5) in
  check_bool "widen moving hi" true (Iv.mem max_int w && Iv.mem 0 w)

let test_iset_exact_ne () =
  let ne = Iset.of_cond Mir.Cond.Ne 5 in
  check_bool "punctured line is exact" true
    (Iset.equal ne
       (Iset.union (Iset.of_interval min_int 4) (Iset.of_interval 6 max_int)));
  check_bool "5 not a member" false (Iset.mem 5 ne);
  check_bool "difference" true
    (Iset.equal
       (Iset.diff (Iset.of_interval 0 9) (Iset.of_interval 3 5))
       (Iset.union (Iset.of_interval 0 2) (Iset.of_interval 6 9)));
  check_bool "as_interval on union" true
    (Iset.as_interval ne = None);
  check_bool "subset" true (Iset.subset (Iset.single 7) ne)

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

let test_intervals_branch_refinement () =
  let fn =
    fn_of
      [
        ( "entry",
          [ Mir.Insn.Cmp (reg 0, imm 10) ],
          Mir.Block.Br (Mir.Cond.Lt, "low", "high") );
        ("low", [], Mir.Block.Ret None);
        ("high", [], Mir.Block.Ret None);
      ]
  in
  let t = Analysis.Intervals.analyze fn in
  check_bool "taken edge refined" true
    (Iv.equal (Analysis.Intervals.reg_in t "low" (r 0)) (Iv.make min_int 9));
  check_bool "fall-through edge refined" true
    (Iv.equal (Analysis.Intervals.reg_in t "high" (r 0))
       (Iv.make 10 max_int));
  check_bool "param unknown at entry" true
    (Iv.equal (Analysis.Intervals.reg_in t "entry" (r 0)) Iv.top)

let test_intervals_unreachable_and_fate () =
  let fn =
    fn_of
      [
        ( "entry",
          [ Mir.Insn.Mov (r 1, imm 5); Mir.Insn.Cmp (reg 1, imm 10) ],
          Mir.Block.Br (Mir.Cond.Gt, "dead", "live") );
        ("dead", [], Mir.Block.Ret None);
        ("live", [], Mir.Block.Ret None);
      ]
  in
  let t = Analysis.Intervals.analyze fn in
  check_bool "5 > 10 never taken" true
    (Analysis.Intervals.branch_fate t (block fn "entry") = `Never_taken);
  check_bool "dead arm unreachable" false
    (Analysis.Intervals.reachable t "dead");
  check_bool "live arm reachable" true (Analysis.Intervals.reachable t "live")

let test_intervals_call_kills_cc () =
  let fn =
    fn_of
      [
        ( "entry",
          [
            Mir.Insn.Cmp (reg 0, imm 10);
            Mir.Insn.Call (None, "put_char", [ imm 65 ]);
          ],
          Mir.Block.Br (Mir.Cond.Lt, "a", "b") );
        ("a", [], Mir.Block.Ret None);
        ("b", [], Mir.Block.Ret None);
      ]
  in
  let t = Analysis.Intervals.analyze fn in
  check_bool "cc unknown after call" true
    (Analysis.Intervals.cc_at_term t (block fn "entry") = None);
  check_bool "fate undecided" true
    (Analysis.Intervals.branch_fate t (block fn "entry") = `Unknown)

let test_intervals_widening_terminates () =
  (* i = 0; while (i < 1000000) i++ — converges by widening, and the
     exit edge still carries the refined lower bound *)
  let fn =
    fn_of
      [
        ("entry", [ Mir.Insn.Mov (r 1, imm 0) ], Mir.Block.Jmp "head");
        ( "head",
          [ Mir.Insn.Cmp (reg 1, imm 1_000_000) ],
          Mir.Block.Br (Mir.Cond.Ge, "exit", "body") );
        ( "body",
          [ Mir.Insn.Binop (Mir.Insn.Add, r 1, reg 1, imm 1) ],
          Mir.Block.Jmp "head" );
        ("exit", [], Mir.Block.Ret (Some (reg 1)));
      ]
  in
  let t = Analysis.Intervals.analyze fn in
  check_bool "terminated quickly" true (Analysis.Intervals.iterations t < 100);
  check_bool "exit lower bound proved" true
    (Iv.subset
       (Analysis.Intervals.reg_in t "exit" (r 1))
       (Iv.make 1_000_000 max_int));
  check_bool "body upper bound proved" true
    (Iv.subset
       (Analysis.Intervals.reg_in t "body" (r 1))
       (Iv.make min_int 999_999))

(* ------------------------------------------------------------------ *)
(* Cc liveness / reaching definitions / purity                         *)
(* ------------------------------------------------------------------ *)

let test_cc_live_through_forwarder () =
  let fn =
    fn_of
      [
        ("entry", [ Mir.Insn.Cmp (reg 0, imm 3) ], Mir.Block.Jmp "fwd");
        ("fwd", [], Mir.Block.Jmp "use");
        ("use", [], Mir.Block.Br (Mir.Cond.Eq, "a", "b"));
        ("a", [], Mir.Block.Ret None);
        ("b", [], Mir.Block.Ret None);
      ]
  in
  let t = Analysis.Cc_live.analyze fn in
  check_bool "live through the forwarder" true
    (Analysis.Cc_live.live_in t "fwd");
  check_bool "live into the consumer" true (Analysis.Cc_live.live_in t "use");
  check_bool "live out of the compare block" true
    (Analysis.Cc_live.live_out t "entry");
  check_bool "dead past the branch" false (Analysis.Cc_live.live_in t "a")

let test_cc_live_call_clobbers () =
  let fn =
    fn_of
      [
        ("entry", [ Mir.Insn.Cmp (reg 0, imm 3) ], Mir.Block.Jmp "mid");
        ( "mid",
          [ Mir.Insn.Call (None, "put_char", [ imm 65 ]) ],
          Mir.Block.Jmp "use" );
        ("use", [], Mir.Block.Br (Mir.Cond.Eq, "a", "b"));
        ("a", [], Mir.Block.Ret None);
        ("b", [], Mir.Block.Ret None);
      ]
  in
  let t = Analysis.Cc_live.analyze fn in
  check_bool "consumer still needs cc" true (Analysis.Cc_live.live_in t "use");
  check_bool "call blocks the entry codes" false
    (Analysis.Cc_live.live_in t "mid")

let test_reaching_const_oracle () =
  let fn =
    fn_of
      [
        ( "entry",
          [ Mir.Insn.Mov (r 1, imm 7); Mir.Insn.Cmp (reg 0, imm 0) ],
          Mir.Block.Br (Mir.Cond.Eq, "a", "b") );
        ("a", [], Mir.Block.Jmp "join");
        ("b", [ Mir.Insn.Mov (r 1, imm 7) ], Mir.Block.Jmp "join");
        ("join", [], Mir.Block.Ret (Some (reg 1)));
      ]
  in
  let t = Analysis.Reaching.analyze fn in
  check_bool "same constant on both paths" true
    (Analysis.Reaching.const_in t fn "join" (r 1) = Some 7);
  check_bool "never-assigned register is the entry zero" true
    (Analysis.Reaching.const_in t fn "join" (r 9) = Some 0);
  check_bool "parameter is unknown" true
    (Analysis.Reaching.const_in t fn "join" (r 0) = None);
  check_bool "two sites reach the join" true
    (List.length (Analysis.Reaching.sites_in t "join" (r 1)) = 2)

let test_purity_interval_refutes_trap () =
  let fn =
    fn_of
      [
        ( "entry",
          [
            Mir.Insn.Mov (r 2, imm 5);
            Mir.Insn.Binop (Mir.Insn.Div, r 3, reg 0, reg 2);
          ],
          Mir.Block.Ret (Some (reg 3)) );
      ]
  in
  let b = block fn "entry" in
  check_bool "register divisor may trap without facts" false
    (Analysis.Purity.pure b);
  check_bool "interval facts refute the trap" true
    (Analysis.Purity.pure ~intervals:(Analysis.Intervals.analyze fn) b);
  let store =
    Mir.Block.make ~label:"s"
      [ Mir.Insn.Store ("g", imm 0, imm 1) ]
      (Mir.Block.Ret None)
  in
  check_bool "store is an effect" true
    (List.exists
       (function Analysis.Purity.Store "g" -> true | _ -> false)
       (Analysis.Purity.effects store))

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint fn = Analysis.Lint.check_func fn (Analysis.Intervals.analyze fn)

let test_lint_unreachable_and_decided () =
  (* the trailing Mov keeps the block out of the arm-chain walk (the
     compare is not last), so the generic branch_fate check fires *)
  let fn =
    fn_of
      [
        ( "entry",
          [
            Mir.Insn.Mov (r 1, imm 5);
            Mir.Insn.Cmp (reg 1, imm 10);
            Mir.Insn.Mov (r 2, imm 0);
          ],
          Mir.Block.Br (Mir.Cond.Gt, "dead", "live") );
        ("dead", [], Mir.Block.Ret None);
        ("live", [], Mir.Block.Ret None);
      ]
  in
  let diags = lint fn in
  let has kind label =
    List.exists
      (fun (d : Analysis.Lint.diag) ->
        d.Analysis.Lint.kind = kind && d.Analysis.Lint.label = label)
      diags
  in
  check_bool "branch decided" true
    (has Analysis.Lint.Branch_never_taken "entry");
  check_bool "dead arm reported" true
    (has Analysis.Lint.Unreachable_block "dead");
  let json = Analysis.Lint.to_json diags in
  check_bool "json carries the kinds" true
    (contains_substring json "branch-never-taken"
    && contains_substring json "unreachable-block"
    && contains_substring json "\"func\"");
  (* a decided arm inside a chain is the arm walk's responsibility *)
  let armed =
    fn_of
      [
        ( "entry",
          [ Mir.Insn.Mov (r 1, imm 5); Mir.Insn.Cmp (reg 1, imm 10) ],
          Mir.Block.Br (Mir.Cond.Gt, "dead", "live") );
        ("dead", [], Mir.Block.Ret None);
        ("live", [], Mir.Block.Ret None);
      ]
  in
  check_bool "arm-shaped block reported as subsumed" true
    (List.exists
       (fun (d : Analysis.Lint.diag) ->
         d.Analysis.Lint.kind = Analysis.Lint.Subsumed_arm)
       (lint armed))

let test_lint_subsumed_arm () =
  let fn =
    fn_of
      [
        ( "b1",
          [ Mir.Insn.Cmp (reg 0, imm 5) ],
          Mir.Block.Br (Mir.Cond.Eq, "x", "b2") );
        ( "b2",
          [ Mir.Insn.Cmp (reg 0, imm 5) ],
          Mir.Block.Br (Mir.Cond.Eq, "y", "rest") );
        ("x", [], Mir.Block.Ret None);
        ("y", [], Mir.Block.Ret None);
        ("rest", [], Mir.Block.Ret None);
      ]
  in
  check_bool "second test of the same value is subsumed" true
    (List.exists
       (fun (d : Analysis.Lint.diag) ->
         d.Analysis.Lint.kind = Analysis.Lint.Subsumed_arm
         && d.Analysis.Lint.label = "b2")
       (lint fn))

let test_lint_clean_program () =
  let prog = compile "int main() { return getchar(); }" in
  Alcotest.(check int)
    "no diagnostics" 0
    (List.length (Analysis.Lint.check_program prog))

let test_explain_names_the_blocker () =
  let fn =
    fn_of
      [
        ( "entry",
          [ Mir.Insn.Cmp (reg 0, imm 5) ],
          Mir.Block.Br (Mir.Cond.Eq, "yes", "no") );
        ("yes", [], Mir.Block.Ret (Some (imm 1)));
        ("no", [], Mir.Block.Ret (Some (imm 0)));
      ]
  in
  match Reorder.Explain.explain_func fn with
  | [ d ] ->
    check_bool "kind" true (d.Analysis.Lint.kind = Analysis.Lint.Not_reorderable);
    check_bool "names the returning continuation" true
      (contains_substring d.Analysis.Lint.message "returns")
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* Dot annotations / Const_prop                                        *)
(* ------------------------------------------------------------------ *)

let test_dot_annotation_hook () =
  let fn = fn_of [ ("entry", [], Mir.Block.Ret None) ] in
  let s =
    Mir.Dot.func_to_string
      ~annot:(fun b ->
        if b.Mir.Block.label = "entry" then Some "r0:[0,9]" else None)
      fn
  in
  check_bool "annotation rendered" true (contains_substring s "r0:[0,9]");
  check_bool "no hook, no annotation" false
    (contains_substring (Mir.Dot.func_to_string fn) "r0:[0,9]")

let test_const_prop_entry_zero () =
  let fn =
    fn_of
      [
        ( "entry",
          [
            Mir.Insn.Mov (r 1, imm 3);
            Mir.Insn.Binop (Mir.Insn.Add, r 2, reg 1, reg 5);
            Mir.Insn.Cmp (reg 1, imm 0);
          ],
          Mir.Block.Br (Mir.Cond.Eq, "a", "b") );
        ("a", [], Mir.Block.Ret (Some (reg 2)));
        ("b", [], Mir.Block.Ret (Some (reg 2)));
      ]
  in
  check_bool "changed" true (Mopt.Const_prop.run_func fn);
  (match (block fn "entry").Mir.Block.insns with
  | [ _; Mir.Insn.Binop (Mir.Insn.Add, _, x, y); Mir.Insn.Cmp (c, _) ] ->
    check_bool "defined constant folded" true (x = imm 3);
    check_bool "never-assigned register folded to zero" true (y = imm 0);
    check_bool "compares keep their register" true (c = reg 1)
  | _ -> Alcotest.fail "unexpected block shape");
  check_bool "fixpoint" false (Mopt.Const_prop.run_func fn)

(* ------------------------------------------------------------------ *)
(* Analysis-strengthened detection on the awk fixture                  *)
(* ------------------------------------------------------------------ *)

let test_awk_facts_admit_strictly_more () =
  (* awk keeps FS/RS in registers, as real awk does; only the facts walk
     can use those compares.  The admitted sequences must survive the
     full train/reorder/certify pipeline with all three backends
     byte-identical. *)
  let w = Workloads.Registry.find "awk" in
  let base = compile w.Workloads.Spec.source in
  let syntactic = Reorder.Detect.find_program ~facts:false base in
  let facts = Reorder.Detect.find_program ~facts:true base in
  check_bool "facts admit strictly more sequences" true
    (List.length facts > List.length syntactic);
  let tests seqs =
    List.fold_left (fun a s -> a + Reorder.Detect.items_count s) 0 seqs
  in
  check_bool "and strictly more range tests" true
    (tests facts > tests syntactic);
  let train = String.sub (Lazy.force w.Workloads.Spec.training_input) 0 8000 in
  let input = String.sub (Lazy.force w.Workloads.Spec.test_input) 0 8000 in
  let train_prog = Mir.Clone.program base in
  let table = Reorder.Profiles.instrument train_prog facts in
  let (_ : Sim.Machine.result) =
    Sim.Machine.run ~profile:table train_prog ~input:train
  in
  let reord = Mir.Clone.program base in
  let report = Reorder.Pass.run reord facts table in
  check_bool "something was reordered" true
    (Reorder.Pass.reordered_count report > List.length syntactic);
  let summary = Check.Verify.certify_report ~before:base ~after:reord report in
  check_bool
    (String.concat "; " (Check.Verify.all_errors summary))
    true
    (Check.Verify.ok summary);
  ignore (Mopt.Cleanup.finalize base);
  ignore (Mopt.Cleanup.finalize reord);
  Mir.Validate.check base;
  Mir.Validate.check reord;
  let outputs =
    List.concat_map
      (fun prog ->
        List.map
          (fun backend ->
            (Sim.Machine.run ~backend prog ~input).Sim.Machine.output)
          [ `Reference; `Predecoded; `Compiled ])
      [ base; reord ]
  in
  match outputs with
  | first :: rest ->
    List.iteri
      (fun i o -> check_output (Printf.sprintf "output %d" (i + 1)) first o)
      rest
  | [] -> assert false

let suite =
  [
    case "engine: forward bool reachability" test_engine_forward_reachability;
    case "iv: lattice and arithmetic" test_iv_ops;
    case "iset: exact punctured sets" test_iset_exact_ne;
    case "intervals: branch-edge refinement" test_intervals_branch_refinement;
    case "intervals: infeasible edge, decided branch"
      test_intervals_unreachable_and_fate;
    case "intervals: call kills the condition codes"
      test_intervals_call_kills_cc;
    case "intervals: widening terminates, bounds survive"
      test_intervals_widening_terminates;
    case "cc-live: jmp forwarder" test_cc_live_through_forwarder;
    case "cc-live: call clobbers" test_cc_live_call_clobbers;
    case "reaching: whole-function constant oracle" test_reaching_const_oracle;
    case "purity: facts refute a division trap"
      test_purity_interval_refutes_trap;
    case "lint: unreachable arm and decided branch, json"
      test_lint_unreachable_and_decided;
    case "lint: subsumed arm" test_lint_subsumed_arm;
    case "lint: clean program is clean" test_lint_clean_program;
    case "explain: lone test names its blocker" test_explain_names_the_blocker;
    case "dot: annotation hook" test_dot_annotation_hook;
    case "const-prop: reaching-defs oracle" test_const_prop_entry_zero;
    slow_case "awk: facts admit strictly more, certified, byte-identical"
      test_awk_facts_admit_strictly_more;
  ]
