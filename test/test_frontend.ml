(* Lexer, parser, semantic analysis and lowering tests.  Lowering is
   tested behaviourally: compile a snippet, run it on the simulator and
   check the output. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map fst (Minic.Lexer.tokenize src)

let test_lex_basic () =
  match toks "int x = 42;" with
  | [ KW_INT; IDENT "x"; ASSIGN; INT 42; SEMI; EOF_TOK ] -> ()
  | ts -> Alcotest.failf "unexpected tokens (%d)" (List.length ts)

let test_lex_char_literals () =
  (match toks "'a' '\\n' '\\t' '\\0' '\\\\' '\\''" with
  | [ INT 97; INT 10; INT 9; INT 0; INT 92; INT 39; EOF_TOK ] -> ()
  | _ -> Alcotest.fail "char literals");
  expect_srcloc_error (fun () -> toks "'ab'")

let test_lex_string_escapes () =
  match toks {|"a\nb\"c"|} with
  | [ STRING "a\nb\"c"; EOF_TOK ] -> ()
  | _ -> Alcotest.fail "string escapes"

let test_lex_numbers () =
  match toks "0 123 0x1F 0XFF" with
  | [ INT 0; INT 123; INT 31; INT 255; EOF_TOK ] -> ()
  | _ -> Alcotest.fail "numbers"

let test_lex_operators () =
  match toks "++ -- += -= == != <= >= << >> && || = < >" with
  | [ PLUSPLUS; MINUSMINUS; PLUS_ASSIGN; MINUS_ASSIGN; EQ; NE; LE; GE;
      SHL; SHR; AMPAMP; BARBAR; ASSIGN; LT; GT; EOF_TOK ] -> ()
  | _ -> Alcotest.fail "operators"

let test_lex_comments () =
  match toks "a /* multi \n line */ b // rest\n c" with
  | [ IDENT "a"; IDENT "b"; IDENT "c"; EOF_TOK ] -> ()
  | _ -> Alcotest.fail "comments"

let test_lex_errors () =
  expect_srcloc_error (fun () -> toks "\"unterminated");
  expect_srcloc_error (fun () -> toks "/* unterminated");
  expect_srcloc_error (fun () -> toks "a $ b");
  expect_srcloc_error (fun () -> toks {|"bad \q escape"|});
  expect_srcloc_error (fun () -> toks "0x");
  expect_srcloc_error (fun () -> toks "0Xg")

let test_lex_locations () =
  let all = Minic.Lexer.tokenize "a\n  b" in
  match all with
  | [ (_, l1); (_, l2); _ ] ->
    check_int "a line" 1 l1.Minic.Srcloc.line;
    check_int "b line" 2 l2.Minic.Srcloc.line;
    check_int "b col" 3 l2.Minic.Srcloc.col
  | _ -> Alcotest.fail "token count"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let expr_str src = Format.asprintf "%a" Minic.Ast.pp_expr (Minic.Parser.parse_expr src)

let test_parse_precedence () =
  check_output "mul binds tighter" "(1 + (2 * 3))" (expr_str "1 + 2 * 3");
  check_output "left assoc sub" "((10 - 4) - 3)" (expr_str "10 - 4 - 3");
  check_output "comparison vs arith" "((a + 1) < (b * 2))" (expr_str "a + 1 < b * 2");
  check_output "and over or" "(a || (b && c))" (expr_str "a || b && c");
  check_output "bitwise chain" "((a | (b ^ (c & d))))" ("(" ^ expr_str "a | b ^ c & d" ^ ")");
  check_output "shift vs add" "((a + 1) << 2)" (expr_str "a + 1 << 2");
  check_output "unary binds tight" "(-(a) * b)" (expr_str "-a * b")

let test_parse_assignment_right_assoc () =
  check_output "chained assign" "a = b = 3" (expr_str "a = b = 3")

let test_parse_ternary () =
  check_output "ternary" "(a ? 1 : (b ? 2 : 3))" (expr_str "a ? 1 : b ? 2 : 3")

let test_parse_calls_and_index () =
  check_output "call" "f(1, (2 + 3))" (expr_str "f(1, 2+3)");
  check_output "index" "a[(i + 1)]" (expr_str "a[i+1]")

let test_parse_incr () =
  check_output "pre" "++a" (expr_str "++a");
  check_output "post" "a++" (expr_str "a++");
  check_output "post on index" "a[i]--" (expr_str "a[i]--")

let test_parse_errors () =
  expect_srcloc_error (fun () -> Minic.Parser.parse_expr "1 +");
  expect_srcloc_error (fun () -> Minic.Parser.parse_expr "(1");
  expect_srcloc_error (fun () -> Minic.Parser.parse_expr "1 = 2");
  expect_srcloc_error (fun () -> Minic.Parser.parse "int f( { }");
  expect_srcloc_error (fun () -> Minic.Parser.parse "int f() { if }");
  expect_srcloc_error (fun () -> Minic.Parser.parse "int f() { switch (x) { y; } }")

let test_parse_program_shapes () =
  let p =
    Minic.Parser.parse
      "int g; int a[10]; int b[] = \"hi\"; int c[3] = {1, 2, 3};\n\
       void f(int x, int y) { }\n\
       int main() { return 0; }"
  in
  check_int "five declarations" 6 (List.length p)

let test_parse_switch_groups () =
  let p =
    Minic.Parser.parse
      "int main() { switch (1) { case 1: case 2: return 1; default: return 2; } }"
  in
  match p with
  | [ Minic.Ast.Func { Minic.Ast.fbody = [ Minic.Ast.Stmt s ]; _ } ] -> (
    match s.Minic.Ast.sdesc with
    | Minic.Ast.Sswitch (_, groups) ->
      check_int "two groups" 2 (List.length groups);
      check_int "first group labels" 2
        (List.length (List.hd groups).Minic.Ast.labels)
    | _ -> Alcotest.fail "not a switch")
  | _ -> Alcotest.fail "unexpected program shape"

(* ------------------------------------------------------------------ *)
(* Sema                                                                *)
(* ------------------------------------------------------------------ *)

let analyze src = Minic.Sema.analyze (Minic.Parser.parse src)

let test_sema_errors () =
  let bad =
    [
      "int main() { return x; }"                          (* undefined var *);
      "int main() { return f(); }"                        (* undefined fn *);
      "int main() { return putchar(); }"                  (* arity *);
      "int g; int main() { return g[0]; }"                (* index scalar *);
      "int a[4]; int main() { return a; }"                (* array as scalar *);
      "int main() { break; }"                             (* stray break *);
      "int main() { continue; }"                          (* stray continue *);
      "int main() { switch (1) { case 1: case 1: break; } return 0; }";
      "int main() { switch (1) { default: break; default: break; } return 0; }";
      "int main() { int x; int x; return 0; }"            (* dup local *);
      "int x; int x; int main() { return 0; }"            (* dup global *);
      "int f(int a, int a) { return 0; } int main() { return 0; }";
      "int main() { return; }"                            (* missing value *);
      "void f() { return 1; } int main() { return 0; }"   (* value from void *);
      "void f() { } int main() { return f(); }"           (* void in expr *);
      "int main() { int EOF; return 0; }"                 (* EOF reserved *);
      "int a[0]; int main() { return 0; }"                (* bad size *);
      "int a[2] = {1,2,3}; int main() { return 0; }"      (* init too long *);
      "int g = x; int main() { return 0; }"               (* non-const init *);
      "int main() { switch (1) { case x: break; } return 0; }";
      "int main(int x) { return 0; }"                     (* main arity *);
      "int nomain() { return 0; }"                        (* no main *);
    ]
  in
  List.iteri
    (fun i src ->
      match analyze src with
      | exception Minic.Srcloc.Error _ -> ()
      | _ -> Alcotest.failf "program %d should be rejected: %s" i src)
    bad

let test_sema_accepts () =
  let good =
    [
      "int main() { int x = 1; { int x = 2; } return x; }"  (* shadowing *);
      "int main() { while (1) { break; } return 0; }";
      "int main() { switch (1) { case 1: break; } return 0; }";
      "int a[] = \"xyz\"; int main() { return a[0]; }";
      "int g = 3 * 4 + 1; int main() { return g; }";
      "int main() { return EOF; }";
      (* forward references work: signatures are collected first *)
      "void f() { g(); } void g() { } int main() { f(); return 0; }";
    ]
  in
  List.iter (fun src -> ignore (analyze src)) good

let test_const_eval () =
  let ce src = Minic.Sema.const_eval (Minic.Parser.parse_expr src) in
  check_int "arith" 14 (ce "2 + 3 * 4");
  check_int "shift" 16 (ce "1 << 4");
  check_int "char" 97 (ce "'a'");
  check_int "EOF" (-1) (ce "EOF");
  check_int "ternary" 5 (ce "1 < 2 ? 5 : 6");
  check_int "logical" 1 (ce "3 && 2");
  expect_srcloc_error (fun () -> ce "1 / 0");
  expect_srcloc_error (fun () -> ce "x + 1")

(* ------------------------------------------------------------------ *)
(* Lowering behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let behaves name src expected =
  case name (fun () -> check_output name expected (run_src src))

let behaviour_tests =
  [
    behaves "arithmetic"
      "int main() { print_int(7 + 3 * 2 - 8 / 4); return 0; }" "11";
    behaves "division truncates toward zero"
      "int main() { print_int(-7 / 2); putchar(' '); print_int(-7 % 2); return 0; }"
      "-3 -1";
    behaves "short-circuit and skips rhs"
      "int g; int side() { g = 1; return 1; } \n\
       int main() { if (0 && side()) putchar('y'); print_int(g); return 0; }"
      "0";
    behaves "short-circuit or skips rhs"
      "int g; int side() { g = 1; return 1; } \n\
       int main() { if (1 || side()) putchar('y'); print_int(g); return 0; }"
      "y0";
    behaves "comparison materialises 0/1"
      "int main() { int x = (3 < 4) + (4 < 3); print_int(x); return 0; }" "1";
    behaves "while loop" "int main() { int i = 0; int s = 0; while (i < 5) { s += i; i++; } print_int(s); return 0; }"
      "10";
    behaves "do-while runs once"
      "int main() { int i = 9; do { print_int(i); } while (i < 3); return 0; }"
      "9";
    behaves "for with continue"
      "int main() { int i; int s = 0; for (i = 0; i < 6; i++) { if (i % 2) continue; s += i; } print_int(s); return 0; }"
      "6";
    behaves "nested break"
      "int main() { int i; int j; int n = 0; for (i = 0; i < 3; i++) { for (j = 0; j < 3; j++) { if (j == 1) break; n++; } } print_int(n); return 0; }"
      "3";
    behaves "switch dispatch"
      "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; default: return 30; } }\n\
       int main() { print_int(f(1) + f(2) + f(9)); return 0; }"
      "60";
    behaves "switch fall-through"
      "int main() { int n = 0; switch (2) { case 1: n += 1; case 2: n += 2; case 3: n += 4; break; case 4: n += 8; } print_int(n); return 0; }"
      "6";
    behaves "switch without default falls out"
      "int main() { int n = 5; switch (9) { case 1: n = 0; } print_int(n); return 0; }"
      "5";
    behaves "ternary" "int main() { int x = 3; print_int(x > 2 ? 7 : 8); return 0; }" "7";
    behaves "pre/post increment"
      "int main() { int x = 5; print_int(x++); print_int(x); print_int(++x); print_int(--x); print_int(x--); print_int(x); return 0; }"
      "567665";
    behaves "post-increment on array element"
      "int a[3]; int main() { a[1] = 4; print_int(a[1]++); print_int(a[1]); return 0; }"
      "45";
    behaves "compound assignment"
      "int main() { int x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; print_int(x); return 0; }"
      "2";
    behaves "global arrays and initialisers"
      "int a[5] = {3, 1, 4, 1, 5}; int main() { int i; int s = 0; for (i = 0; i < 5; i++) s += a[i]; print_int(s); return 0; }"
      "14";
    behaves "string global"
      "int msg[] = \"ok\"; int main() { putchar(msg[0]); putchar(msg[1]); print_int(msg[2]); return 0; }"
      "ok0";
    behaves "recursion"
      "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
       int main() { print_int(fib(12)); return 0; }"
      "144";
    behaves "mutual recursion"
      "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }\n\
       int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }\n\
       int main() { print_int(is_even(10)); print_int(is_odd(10)); return 0; }"
      "10";
    behaves "global scalar updates"
      "int g; void bump() { g += 2; } int main() { bump(); bump(); print_int(g); return 0; }"
      "4";
    behaves "puts emits newline"
      "int main() { puts(\"hi\"); return 0; }" "hi\n";
    behaves "print_str emits no newline"
      "int msg[] = \"ab\"; int main() { print_str(msg); putchar('!'); return 0; }"
      "ab!";
    behaves "exit stops execution"
      "int main() { putchar('a'); exit(3); putchar('b'); return 0; }" "a";
    behaves "bitwise ops"
      "int main() { print_int((6 & 3) | (1 << 3) ^ 2); return 0; }" "10";
    behaves "unary minus and not"
      "int main() { print_int(-(3) + !0 + !5 + ~0); return 0; }" "-3";
    behaves "locals re-initialise each iteration"
      "int main() { int i; int s = 0; for (i = 0; i < 3; i++) { int x = 1; x += i; s += x; } print_int(s); return 0; }"
      "6";
    behaves "empty statement and blocks"
      "int main() { ; {} { ; } print_int(1); return 0; }" "1";
  ]

let test_getchar_eof () =
  check_output "eof" "-1"
    (run_src ~input:""
       "int main() { print_int(getchar()); return 0; }");
  check_output "reads in order" "ab-1"
    (run_src ~input:"ab"
       "int main() { putchar(getchar()); putchar(getchar()); print_int(getchar()); return 0; }")

let test_exit_code () =
  let prog = compile_final "int main() { return 42; }" in
  let result = run_prog prog in
  check_int "exit code" 42 result.Sim.Machine.exit_code

let test_lowering_validates () =
  (* every compiled program passes validation with init checking *)
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let prog = compile w.Workloads.Spec.source in
      match Mir.Validate.program ~check_init:true prog with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "%s: %s" w.Workloads.Spec.name (String.concat "; " es))
    Workloads.Registry.all

let test_assignment_returns_variable_register () =
  (* the register unification that sequence detection relies on *)
  let prog =
    compile
      "int main() { int c; int n = 0; while ((c = getchar()) != EOF) { if (c \
       == 'a') n++; else if (c == 'b') n--; } print_int(n); return 0; }"
  in
  let seqs = Reorder.Detect.find_program prog in
  let main_seq =
    List.filter (fun s -> String.equal s.Reorder.Detect.func_name "main") seqs
  in
  match main_seq with
  | [ s ] ->
    check_int "EOF, 'a' and 'b' unify into one sequence" 3
      (Reorder.Detect.items_count s)
  | _ -> Alcotest.failf "expected one sequence, got %d" (List.length main_seq)

let suite =
  [
    case "lexer: basic tokens" test_lex_basic;
    case "lexer: character literals" test_lex_char_literals;
    case "lexer: string escapes" test_lex_string_escapes;
    case "lexer: numbers" test_lex_numbers;
    case "lexer: operators" test_lex_operators;
    case "lexer: comments" test_lex_comments;
    case "lexer: errors" test_lex_errors;
    case "lexer: locations" test_lex_locations;
    case "parser: precedence" test_parse_precedence;
    case "parser: assignment associativity" test_parse_assignment_right_assoc;
    case "parser: ternary" test_parse_ternary;
    case "parser: calls and indexing" test_parse_calls_and_index;
    case "parser: increment forms" test_parse_incr;
    case "parser: errors" test_parse_errors;
    case "parser: program shapes" test_parse_program_shapes;
    case "parser: switch groups" test_parse_switch_groups;
    case "sema: rejects invalid programs" test_sema_errors;
    case "sema: accepts valid programs" test_sema_accepts;
    case "sema: constant evaluation" test_const_eval;
    case "lowering: getchar and EOF" test_getchar_eof;
    case "lowering: exit code" test_exit_code;
    case "lowering: all workloads validate with init checks"
      test_lowering_validates;
    case "lowering: assignments keep the variable register"
      test_assignment_returns_variable_register;
  ]
  @ behaviour_tests
