(* The native (runtime-codegen) backend: four-way differentials against
   the reference oracle, the content-hashed artifact store, and the
   degradation path for hosts without a toolchain.

   Every test that needs the out-of-process compiler skips (rather than
   fails) when [Sim.Native.available] is false, so the suite stays
   green on hosts without ocamlfind — the same contract the driver's
   degradation ladder provides at run time. *)

open Helpers

let require_native () = if not (Sim.Native.available ()) then Alcotest.skip ()

let counter_fields (c : Sim.Counters.t) =
  [
    ("insns", c.Sim.Counters.insns);
    ("cond_branches", c.Sim.Counters.cond_branches);
    ("taken_branches", c.Sim.Counters.taken_branches);
    ("jumps", c.Sim.Counters.jumps);
    ("indirect_jumps", c.Sim.Counters.indirect_jumps);
    ("calls", c.Sim.Counters.calls);
    ("returns", c.Sim.Counters.returns);
    ("loads", c.Sim.Counters.loads);
    ("stores", c.Sim.Counters.stores);
    ("nops", c.Sim.Counters.nops);
  ]

let capture ?config backend prog ~input =
  let branches = ref [] in
  let blocks = ref [] in
  let on_branch ~site ~taken = branches := (site, taken) :: !branches in
  let on_block ~func ~label = blocks := (func, label) :: !blocks in
  let result =
    Sim.Machine.run ?config ~backend ~on_branch ~on_block prog ~input
  in
  (result, List.rev !branches, List.rev !blocks)

let assert_native_matches_reference ?config ~name prog ~input =
  let r_ref, br_ref, bl_ref = capture ?config `Reference prog ~input in
  let r_nat, br_nat, bl_nat = capture ?config `Native prog ~input in
  check_output (name ^ " output") r_ref.Sim.Machine.output
    r_nat.Sim.Machine.output;
  check_int (name ^ " exit code") r_ref.Sim.Machine.exit_code
    r_nat.Sim.Machine.exit_code;
  List.iter2
    (fun (f, v_ref) (_, v_nat) -> check_int (name ^ " " ^ f) v_ref v_nat)
    (counter_fields r_ref.Sim.Machine.counters)
    (counter_fields r_nat.Sim.Machine.counters);
  check_bool (name ^ " branch events") true (br_ref = br_nat);
  check_bool (name ^ " block trace") true (bl_ref = bl_nat)

(* a private store so cache tests never see artifacts from other runs;
   removed on exit *)
let with_temp_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bromc-test-native-%d-%d" (Unix.getpid ())
         (Random.bits ()))
  in
  let rec rm d =
    if Sys.file_exists d then begin
      if Sys.is_directory d then begin
        Array.iter (fun e -> rm (Filename.concat d e)) (Sys.readdir d);
        try Unix.rmdir d with _ -> ()
      end
      else try Sys.remove d with _ -> ()
    end
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Differentials                                                       *)
(* ------------------------------------------------------------------ *)

(* a source that exercises every construct the generator emits:
   arithmetic incl. division/shifts, comparisons, nested calls and
   recursion, arrays, switch (indirect jumps after lowering), builtins,
   and data-dependent branching *)
let torture_src =
  {|
int tab[16];

int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int classify(int c) {
  switch (c) {
    case 0: return 10;
    case 1: return 11;
    case 2: return 12;
    case 3: return 13;
    case 7: return 17;
    default: return 99;
  }
}

int main() {
  int i; int c; int acc;
  acc = fib(10);
  for (i = 0; i < 16; i = i + 1) tab[i] = (i * 37 + 11) % 16;
  for (i = 0; i < 16; i = i + 1) acc = acc + classify(tab[i] % 9);
  c = getchar();
  while (c >= 0) {
    acc = acc + (c / 3) - (c % 5);
    if (c > 64) acc = acc * 2; else acc = acc - 1;
    putchar((acc % 26) + 97);
    c = getchar();
  }
  print_int(acc);
  return acc % 7;
}
|}

let test_torture_program () =
  require_native ();
  List.iter
    (fun (hs : Mopt.Switch_lower.heuristic_set) ->
      let prog = compile_final ~heuristic:hs torture_src in
      assert_native_matches_reference
        ~name:("torture/" ^ hs.Mopt.Switch_lower.hs_name)
        prog ~input:"Hello, branch reordering world! 0123456789")
    Mopt.Switch_lower.all_sets

(* the tentpole differential: all 17 workloads under all 3 heuristic
   sets, native vs reference, on shortened inputs (full inputs belong
   to the bench, not the unit suite) *)
let test_workloads_all_sets () =
  require_native ();
  let truncate s = String.sub s 0 (min 500 (String.length s)) in
  List.iter
    (fun (w : Workloads.Spec.t) ->
      List.iter
        (fun (hs : Mopt.Switch_lower.heuristic_set) ->
          let prog =
            compile_final ~heuristic:hs w.Workloads.Spec.source
          in
          assert_native_matches_reference
            ~name:
              (w.Workloads.Spec.name ^ "/" ^ hs.Mopt.Switch_lower.hs_name)
            prog
            ~input:(truncate (Lazy.force w.Workloads.Spec.test_input)))
        Mopt.Switch_lower.all_sets)
    Workloads.Registry.all

(* reordered code must agree too: run the full pipeline, then diff the
   reordered program across the oracle and the native backend *)
let test_reordered_version () =
  require_native ();
  let w = Workloads.Registry.find "awk" in
  let input =
    String.sub (Lazy.force w.Workloads.Spec.test_input) 0 400
  in
  let r =
    reorder_pipeline ~training_input:input ~test_input:input
      w.Workloads.Spec.source
  in
  assert_native_matches_reference ~name:"awk reordered"
    r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_program ~input

(* trap behaviour must be identical down to the message string *)
let assert_same_trap ~name ?config src ~input =
  let prog = compile_final src in
  let trap_of backend =
    match Sim.Machine.run ?config ~backend prog ~input with
    | _ -> None
    | exception Sim.Machine.Trap m -> Some m
  in
  let t_ref = trap_of `Reference in
  let t_nat = trap_of `Native in
  check_bool (name ^ " both trap") true (t_ref <> None && t_nat <> None);
  check_output (name ^ " trap message")
    (Option.value ~default:"" t_ref)
    (Option.value ~default:"" t_nat)

let test_trap_messages () =
  require_native ();
  assert_same_trap ~name:"division by zero"
    "int main() { int d; d = getchar(); return 7 / (d + 1); }" ~input:"";
  assert_same_trap ~name:"out of bounds"
    "int a[4]; int main() { int i; i = getchar() + 10; return a[i]; }"
    ~input:"";
  assert_same_trap ~name:"call depth"
    "int f(int n) { return f(n + 1); } int main() { return f(0); }" ~input:"";
  assert_same_trap ~name:"fuel"
    ~config:{ Sim.Machine.default_config with Sim.Machine.fuel = 100 }
    "int main() { int i; i = 0; while (i >= 0) i = i + 1; return 0; }"
    ~input:""

(* the watchdog must still fire inside generated code: cancellation is
   polled at every basic-block entry, exactly like the other backends *)
let test_watchdog_fires () =
  require_native ();
  let prog =
    compile_final
      "int main() { int i; i = 0; while (i >= 0) i = i + 1; return 0; }"
  in
  let config =
    {
      Sim.Machine.default_config with
      Sim.Machine.fuel = max_int;
      cancel = Some (fun () -> true);
    }
  in
  match Sim.Native.run ~config prog ~input:"" with
  | _ -> Alcotest.fail "expected Cancelled"
  | exception Sim.Runtime.Cancelled -> ()

(* ------------------------------------------------------------------ *)
(* The artifact store                                                  *)
(* ------------------------------------------------------------------ *)

let test_generate_deterministic () =
  (* no toolchain needed: codegen is pure *)
  let img () = Sim.Image.build (compile_final torture_src) in
  let src1, _ = Sim.Native.generate (img ()) in
  let src2, _ = Sim.Native.generate (img ()) in
  check_bool "equal images generate byte-identical source" true (src1 = src2)

let test_cache_hit_determinism () =
  require_native ();
  with_temp_store (fun dir ->
      let prog = compile_final torture_src in
      let img = Sim.Image.build prog in
      let input = "cache determinism" in
      (* earlier tests may have loaded this very image: the memo is keyed
         by content, not by store location, so start from a cold table *)
      Sim.Native.clear_memo ();
      Sim.Native.reset_stats ();
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (Unix.gettimeofday () -. t0, r)
      in
      let miss_t, t1 =
        time (fun () ->
            match Sim.Native.prepare ~cache_dir:dir img with
            | Ok t -> t
            | Error e -> Alcotest.failf "prepare (miss): %s" e)
      in
      let s1 = Sim.Native.stats () in
      check_int "first prepare misses" 1 s1.Sim.Native.misses;
      check_int "first prepare compiles" 1 s1.Sim.Native.compiles;
      let r1 = Sim.Native.exec t1 ~input in
      (* drop the in-process memo so the second prepare must go to disk *)
      Sim.Native.clear_memo ();
      let hit_t, t2 =
        time (fun () ->
            match Sim.Native.prepare ~cache_dir:dir img with
            | Ok t -> t
            | Error e -> Alcotest.failf "prepare (hit): %s" e)
      in
      let s2 = Sim.Native.stats () in
      check_int "second prepare is a disk hit" 1 s2.Sim.Native.disk_hits;
      check_int "second prepare does not compile" 1 s2.Sim.Native.compiles;
      let r2 = Sim.Native.exec t2 ~input in
      check_output "second run output byte-identical" r1.Sim.Machine.output
        r2.Sim.Machine.output;
      check_int "second run exit code" r1.Sim.Machine.exit_code
        r2.Sim.Machine.exit_code;
      check_bool "second run counters" true
        (r1.Sim.Machine.counters = r2.Sim.Machine.counters);
      (* loading a .cmxs is orders of magnitude cheaper than running
         ocamlopt; a generous factor keeps this robust on slow hosts *)
      check_bool "cache hit faster than miss" true (hit_t < miss_t);
      (* and a third prepare is served by the in-process memo *)
      (match Sim.Native.prepare ~cache_dir:dir img with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "prepare (memo): %s" e);
      let s3 = Sim.Native.stats () in
      check_int "third prepare is a memo hit" 1 s3.Sim.Native.memo_hits)

let test_cache_disabled () =
  require_native ();
  with_temp_store (fun dir ->
      let img = Sim.Image.build (compile_final "int main() { return 41; }") in
      Sim.Native.clear_memo ();
      (match Sim.Native.prepare ~cache_dir:dir ~use_cache:false img with
      | Ok t ->
        let r = Sim.Native.exec t ~input:"" in
        check_int "exit code" 41 r.Sim.Machine.exit_code
      | Error e -> Alcotest.failf "prepare: %s" e);
      check_bool "store untouched with use_cache:false" true
        ((not (Sys.file_exists dir)) || Sys.readdir dir = [||]))

let test_cache_clear_and_evict () =
  require_native ();
  with_temp_store (fun dir ->
      let img = Sim.Image.build (compile_final "int main() { return 5; }") in
      Sim.Native.clear_memo ();
      (match Sim.Native.prepare ~cache_dir:dir img with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "prepare: %s" e);
      let current =
        match Sim.Native.Cache.fingerprint () with
        | Some fp -> fp
        | None -> Alcotest.fail "toolchain has no fingerprint"
      in
      (* plant a stale fingerprint directory next to the current one *)
      let stale = Filename.concat dir "9.9.9-w64-s0" in
      Unix.mkdir stale 0o755;
      let oc = open_out (Filename.concat stale "bromc_native_dead.cmxs") in
      output_string oc "stale";
      close_out oc;
      let entries = Sim.Native.Cache.list ~dir () in
      check_int "two fingerprints listed" 2 (List.length entries);
      check_bool "current fingerprint flagged" true
        (List.exists
           (fun (e : Sim.Native.Cache.entry) ->
             e.Sim.Native.Cache.e_current
             && e.Sim.Native.Cache.e_fingerprint = current)
           entries);
      let evicted = Sim.Native.Cache.evict_stale ~dir () in
      check_int "stale artifact evicted" 1 evicted;
      check_bool "current artifact survives eviction" true
        (List.exists
           (fun (e : Sim.Native.Cache.entry) ->
             e.Sim.Native.Cache.e_fingerprint = current
             && e.Sim.Native.Cache.e_files = 1)
           (Sim.Native.Cache.list ~dir ()));
      let cleared = Sim.Native.Cache.clear ~dir () in
      check_bool "clear removes the rest" true (cleared >= 1);
      check_int "store empty after clear" 0
        (List.fold_left
           (fun acc (e : Sim.Native.Cache.entry) ->
             acc + e.Sim.Native.Cache.e_files)
           0
           (Sim.Native.Cache.list ~dir ())))

(* Damage an artifact on disk without touching the mapped inode: this
   process may have the .cmxs dlopened, and truncating or rewriting a
   mapped file in place raises SIGBUS.  Write-then-rename puts the
   damage on the store while live mappings keep the old inode. *)
let damage_in_store path bytes =
  let tmp = path ^ ".dmg" in
  let oc = open_out_bin tmp in
  output_string oc bytes;
  close_out oc;
  Sys.rename tmp path

let test_checksum_quarantine () =
  require_native ();
  with_temp_store (fun dir ->
      let img = Sim.Image.build (compile_final "int main() { return 7; }") in
      Sim.Native.clear_memo ();
      Sim.Native.reset_stats ();
      (match Sim.Native.prepare ~cache_dir:dir img with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "prepare: %s" e);
      let fpr =
        match Sim.Native.Cache.fingerprint () with
        | Some fp -> fp
        | None -> Alcotest.fail "toolchain has no fingerprint"
      in
      let store = Filename.concat dir fpr in
      let cmxs =
        match
          Sys.readdir store |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".cmxs")
        with
        | [ f ] -> Filename.concat store f
        | l -> Alcotest.failf "expected one artifact, found %d" (List.length l)
      in
      check_bool "install writes the checksum sidecar" true
        (Sys.file_exists (cmxs ^ ".sum"));
      let v = Sim.Native.Cache.verify ~dir () in
      check_int "verify: one artifact checked" 1 v.Sim.Native.Cache.v_checked;
      check_int "verify: intact artifact passes" 1 v.Sim.Native.Cache.v_ok;
      (* corrupt the stored bytes; the sidecar is now a witness *)
      damage_in_store cmxs "not a plugin";
      let v = Sim.Native.Cache.verify ~dir () in
      check_int "verify: mismatch quarantined" 1
        v.Sim.Native.Cache.v_quarantined;
      check_bool "artifact moved aside, not deleted" true
        (Sys.file_exists (Filename.concat dir "quarantine")
        && Sys.readdir (Filename.concat dir "quarantine") <> [||]);
      check_bool "store slot is free" false (Sys.file_exists cmxs);
      (* the next prepare rebuilds from source and reinstalls *)
      Sim.Native.clear_memo ();
      Sim.Native.reset_stats ();
      (match Sim.Native.prepare ~cache_dir:dir img with
      | Ok t ->
        let r = Sim.Native.exec t ~input:"" in
        check_int "rebuilt artifact still correct" 7 r.Sim.Machine.exit_code
      | Error e -> Alcotest.failf "prepare after quarantine: %s" e);
      check_int "rebuild was a miss + compile" 1
        (Sim.Native.stats ()).Sim.Native.compiles;
      (* load-path self-healing: corrupt again, prepare directly *)
      damage_in_store cmxs "still not a plugin";
      Sim.Native.clear_memo ();
      Sim.Native.reset_stats ();
      (match Sim.Native.prepare ~cache_dir:dir img with
      | Ok t ->
        let r = Sim.Native.exec t ~input:"" in
        check_int "self-healed load still correct" 7 r.Sim.Machine.exit_code
      | Error e -> Alcotest.failf "self-healing prepare: %s" e);
      let s = Sim.Native.stats () in
      check_int "load path quarantined the damage" 1 s.Sim.Native.quarantined;
      check_int "and recompiled" 1 s.Sim.Native.compiles;
      (* legacy adoption: strip the sidecar, verify writes one back *)
      Sys.remove (cmxs ^ ".sum");
      let v = Sim.Native.Cache.verify ~dir () in
      check_int "verify: sidecar-less artifact adopted" 1
        v.Sim.Native.Cache.v_healed;
      check_bool "sidecar rewritten" true (Sys.file_exists (cmxs ^ ".sum")))

(* ------------------------------------------------------------------ *)
(* Degradation                                                         *)
(* ------------------------------------------------------------------ *)

let small_native_job () =
  let w = Workloads.Registry.find "wc" in
  let slice s = String.sub s 0 (min 2000 (String.length s)) in
  Driver.Pipeline.job
    ~config:{ Driver.Config.default with Driver.Config.backend = `Native }
    ~name:"wc" ~source:w.Workloads.Spec.source
    ~training_input:(slice (Lazy.force w.Workloads.Spec.training_input))
    ~test_input:(slice (Lazy.force w.Workloads.Spec.test_input))
    ()

(* force the backend off and require the guarded runner to serve the
   job from the compiled rung, recording the divergence — this is the
   no-toolchain path, so it must pass on every host *)
let test_degrades_to_compiled () =
  let was = Sim.Native.enabled () in
  Fun.protect
    ~finally:(fun () -> Sim.Native.set_enabled was)
    (fun () ->
      Sim.Native.set_enabled false;
      check_bool "disabled backend reports unavailable" false
        (Sim.Native.available ());
      (match
         Sim.Native.prepare
           (Sim.Image.build (compile_final "int main() { return 0; }"))
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "prepare must fail when disabled");
      let job = small_native_job () in
      let o =
        Driver.Pipeline.run_guarded_job ~index:0
          ~policy:
            { Driver.Guard.default with Driver.Guard.degrade = true;
              backoff_ms = 0 }
          job
      in
      check_bool "job succeeded" true
        (Driver.Pool.outcome_ok o.Driver.Pipeline.o_outcome);
      check_output "served rung recorded" "compiled"
        o.Driver.Pipeline.o_backend;
      check_bool "degradation recorded" true o.Driver.Pipeline.o_degraded)

(* with degradation disabled, the missing toolchain surfaces as a
   contained crash, not a green result on a different engine *)
let test_no_degrade_is_contained_crash () =
  let was = Sim.Native.enabled () in
  Fun.protect
    ~finally:(fun () -> Sim.Native.set_enabled was)
    (fun () ->
      Sim.Native.set_enabled false;
      let job = small_native_job () in
      let o =
        Driver.Pipeline.run_guarded_job ~index:0
          ~policy:
            { Driver.Guard.default with Driver.Guard.degrade = false;
              backoff_ms = 0 }
          job
      in
      check_bool "outcome is a failure" false
        (Driver.Pool.outcome_ok o.Driver.Pipeline.o_outcome);
      check_output "rung stays native" "native" o.Driver.Pipeline.o_backend;
      check_bool "unavailability attributed" true
        (List.exists
           (fun e -> contains_substring e "native backend unavailable")
           o.Driver.Pipeline.o_errors))

(* ------------------------------------------------------------------ *)
(* Batched predictor drain (pure; no toolchain needed)                 *)
(* ------------------------------------------------------------------ *)

let test_bank_drain_matches_streaming () =
  let keys = Driver.Config.paper_predictors @ [ (4, 2, 64); (2, 1, 32) ] in
  let streamed = Sim.Predictor.bank keys in
  let drained = Sim.Predictor.bank keys in
  let n = 5000 in
  let events =
    Array.init n (fun i ->
        let site = mix 7 i mod 97 in
        let taken = mix 13 (i * 3) land 1 = 1 in
        (site, taken))
  in
  Array.iter
    (fun (site, taken) -> Sim.Predictor.bank_access streamed ~site ~taken)
    events;
  (* drain in uneven chunks to cover the partial-buffer path *)
  let buf = Array.make 257 0 in
  let fill = ref 0 in
  Array.iter
    (fun (site, taken) ->
      buf.(!fill) <- (site lsl 1) lor (if taken then 1 else 0);
      incr fill;
      if !fill = Array.length buf then begin
        Sim.Predictor.bank_drain drained buf !fill;
        fill := 0
      end)
    events;
  if !fill > 0 then Sim.Predictor.bank_drain drained buf !fill;
  check_bool "mispredicts identical" true
    (Sim.Predictor.bank_mispredicts streamed
    = Sim.Predictor.bank_mispredicts drained);
  check_bool "lookups identical" true
    (Sim.Predictor.bank_lookups streamed = Sim.Predictor.bank_lookups drained)

let suite =
  [
    case "generate is deterministic" test_generate_deterministic;
    case "bank_drain matches streaming delivery"
      test_bank_drain_matches_streaming;
    case "torture program x3 heuristic sets" test_torture_program;
    slow_case "17 workloads x 3 heuristic sets vs reference"
      test_workloads_all_sets;
    slow_case "reordered pipeline output" test_reordered_version;
    case "trap messages identical" test_trap_messages;
    case "watchdog fires inside native code" test_watchdog_fires;
    case "cache: miss, disk hit, memo hit, determinism"
      test_cache_hit_determinism;
    case "cache: use_cache:false leaves the store untouched"
      test_cache_disabled;
    case "cache: list, evict stale fingerprints, clear"
      test_cache_clear_and_evict;
    case "cache: checksum mismatch quarantined and rebuilt"
      test_checksum_quarantine;
    case "degrades to compiled when unavailable" test_degrades_to_compiled;
    case "no-degrade policy yields contained crash"
      test_no_degrade_is_contained_crash;
  ]
