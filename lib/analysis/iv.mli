(** The interval abstract domain.

    An interval abstracts the set of integers a register may hold.
    Bounds are inclusive; [min_int]/[max_int] play the roles of -oo/+oo
    (no concrete register ever holds them: simulated arithmetic is exact
    OCaml [int] arithmetic, and treating the extremes as infinities only
    costs precision at the two outermost values).  [Bot] is the empty
    set — the fact attached to dead code and infeasible branch edges. *)

type t = Bot | Iv of int * int  (** [Iv (lo, hi)], [lo <= hi] *)

val top : t
val bot : t
val const : int -> t
val make : int -> int -> t
(** Normalises: an empty [(lo, hi)] with [lo > hi] is [Bot]. *)

val is_bot : t -> bool
val is_const : t -> int option
val mem : int -> t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool

val join : t -> t -> t
val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old next]: bounds of [next] that moved past [old]'s jump to
    the infinities, guaranteeing termination of interval iteration. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Sound for any operands; precise when at least one side is constant
    (the shapes address arithmetic produces). *)

val rem : t -> t -> t
(** Abstract truncated remainder: bounded by the divisor's magnitude,
    sign following the dividend. *)

val logical_not : t -> t
(** The [Not] unop: 1 if the value is 0, else 0. *)

val of_cond : Mir.Cond.t -> int -> t
(** Values [v] with [v cond c], as an interval; [Ne] (a punctured line)
    degrades to [top]. *)

val always : Mir.Cond.t -> t -> t -> bool
(** [always cond a b]: [x cond y] holds for {b all} [x] in [a], [y] in
    [b] (false when either side is empty). *)

val never : Mir.Cond.t -> t -> t -> bool
(** [never cond a b]: [x cond y] holds for {b no} [x] in [a], [y] in [b]
    (false when either side is empty: a vacuous edge is dead, not
    decided). *)

val pp : Format.formatter -> t -> unit
val show : t -> string
