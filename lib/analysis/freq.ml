(* Wu–Larus block/edge frequency propagation from heuristic branch
   probabilities: process loops innermost-first, give each header a
   cyclic probability (the mass its back edges return per entry) and
   turn it into a capped multiplier, then one final pass from the entry
   yields absolute frequencies with bfreq(entry) = 1.  Every successor
   distribution sums to 1 and every multiplier is capped, so the
   frequencies are finite and non-negative by construction, and flow is
   conserved at every join the propagation reached. *)

type t = {
  probs : (string, (string * float) list) Hashtbl.t;
  bfreq : (string, float) Hashtbl.t;
  visited : (string, unit) Hashtbl.t;  (* reached by the final pass *)
}

let loop_cap = 64.
(* a header's multiplier 1/(1 - cyclic_prob) saturates here, the
   paper-style bound that keeps deep nests finite *)

let max_cyclic = 1. -. (1. /. loop_cap)

(* the successor probability distribution of one block: heuristic split
   for two-way branches, uniform over jump-table/switch edges (summed
   per label for duplicate targets), deterministic singletons for the
   rest *)
let successor_probs fn heur (b : Mir.Block.t) =
  let uniform targets =
    match targets with
    | [] -> []
    | _ ->
      let share = 1. /. float_of_int (List.length targets) in
      let acc = Hashtbl.create 4 in
      let order = ref [] in
      List.iter
        (fun l ->
          if not (Hashtbl.mem acc l) then order := l :: !order;
          Hashtbl.replace acc l
            (share +. Option.value ~default:0. (Hashtbl.find_opt acc l)))
        targets;
      List.rev_map (fun l -> (l, Hashtbl.find acc l)) !order
  in
  match b.Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Ret _ -> []
  | Mir.Block.Jmp l -> [ (l, 1.) ]
  | Mir.Block.Br (_, taken, fall) when String.equal taken fall -> [ (taken, 1.) ]
  | Mir.Block.Br (_, taken, fall) ->
    let p = Heur.taken_prob heur b.Mir.Block.label in
    [ (taken, p); (fall, 1. -. p) ]
  | Mir.Block.Switch (_, cases, default) ->
    uniform (List.map snd cases @ [ default ])
  | Mir.Block.Jtab (_, id) ->
    uniform (Array.to_list (Mir.Func.jtab fn id))

let analyze ?heur ?loops fn =
  let loops_t = match loops with Some l -> l | None -> Loops.analyze fn in
  let heur =
    match heur with Some h -> h | None -> Heur.analyze ~loops:loops_t fn
  in
  let reachable = Mir.Func.reachable fn in
  let probs = Hashtbl.create 64 in
  let preds = Hashtbl.create 64 in
  List.iter
    (fun (b : Mir.Block.t) ->
      if Hashtbl.mem reachable b.Mir.Block.label then begin
        let ps = successor_probs fn heur b in
        Hashtbl.replace probs b.Mir.Block.label ps;
        List.iter
          (fun (s, _) ->
            Hashtbl.replace preds s
              (Option.value ~default:[] (Hashtbl.find_opt preds s)
              @ [ b.Mir.Block.label ]))
          ps
      end)
    fn.Mir.Func.blocks;
  let prob src dst =
    match Hashtbl.find_opt probs src with
    | Some ps -> Option.value ~default:0. (List.assoc_opt dst ps)
    | None -> 0.
  in
  let back src dst = Loops.is_back_edge loops_t ~src ~dst in
  (* per-entry probability mass each back edge carries home; refined by
     the inner-loop passes before an outer pass consumes it *)
  let back_prob = Hashtbl.create 8 in
  Hashtbl.iter
    (fun src ps ->
      List.iter
        (fun (dst, p) -> if back src dst then Hashtbl.replace back_prob (src, dst) p)
        ps)
    probs;
  let cyclic_of pbs label =
    let c =
      List.fold_left
        (fun acc p ->
          if back p label then
            acc +. Option.value ~default:0. (Hashtbl.find_opt back_prob (p, label))
          else acc)
        0. pbs
    in
    Float.min c max_cyclic
  in
  let run_pass ~is_final head =
    let visited = Hashtbl.create 64 in
    let bfreq = Hashtbl.create 64 in
    let rec process label =
      if (not (Hashtbl.mem visited label)) && Hashtbl.mem probs label then begin
        let pbs = Option.value ~default:[] (Hashtbl.find_opt preds label) in
        let is_head = String.equal label head in
        let ready =
          is_head
          || List.for_all
               (fun p -> Hashtbl.mem visited p || back p label)
               pbs
        in
        if ready then begin
          let incoming =
            if is_head then 1.
            else
              List.fold_left
                (fun acc p ->
                  if back p label then acc
                  else
                    acc
                    +. Option.value ~default:0. (Hashtbl.find_opt bfreq p)
                       *. prob p label)
                0. pbs
          in
          let f =
            (* the pass head enters with mass 1; only the final pass
               applies its own multiplier (an entry block that is also a
               loop header re-enters itself, which no outer pass would
               otherwise account for) *)
            if is_head && not is_final then incoming
            else incoming /. (1. -. cyclic_of pbs label)
          in
          Hashtbl.replace bfreq label f;
          Hashtbl.replace visited label ();
          let ss = Option.value ~default:[] (Hashtbl.find_opt probs label) in
          (* refresh the mass this pass's back edges carry to its head *)
          List.iter
            (fun (s, p) ->
              if String.equal s head && back label s then
                Hashtbl.replace back_prob (label, s) (p *. f))
            ss;
          List.iter (fun (s, _) -> if not (back label s) then process s) ss
        end
      end
    in
    process head;
    (bfreq, visited)
  in
  List.iter
    (fun (l : Loops.loop) -> ignore (run_pass ~is_final:false l.Loops.l_header))
    (Loops.innermost_first loops_t);
  let bfreq, visited =
    match fn.Mir.Func.blocks with
    | [] -> (Hashtbl.create 1, Hashtbl.create 1)
    | entry :: _ -> run_pass ~is_final:true entry.Mir.Block.label
  in
  { probs; bfreq; visited }

let block_freq t label =
  Option.value ~default:0. (Hashtbl.find_opt t.bfreq label)

let succ_probs t label =
  Option.value ~default:[] (Hashtbl.find_opt t.probs label)

let edge_freq t ~src ~dst =
  block_freq t src
  *. Option.value ~default:0. (List.assoc_opt dst (succ_probs t src))

let reached t label = Hashtbl.mem t.visited label
