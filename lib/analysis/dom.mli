(** Dominators and postdominators on {!Mir} functions.

    One Cooper–Harvey–Kennedy engine over an abstract successor
    function: {!compute} instantiates it on the forward CFG (dominators,
    the same verdicts as the verifier's historical ad-hoc walk),
    {!compute_post} on the reversed CFG rooted at a virtual exit whose
    reverse successors are every reachable [Ret] block (postdominators).
    Labels outside the analyzed region — unreachable blocks forward,
    blocks that cannot reach an exit backward — are simply absent:
    {!dominates} answers [false], {!idom} and {!dominators} answer
    nothing. *)

type t

val compute : Mir.Func.t -> t
(** Dominators; the entry dominates everything reachable. *)

val compute_post : Mir.Func.t -> t
(** Postdominators.  [dominates t a b] then reads "[a] postdominates
    [b]".  The root is {!virtual_exit}. *)

val virtual_exit : string
(** The synthetic root of the reversed CFG (["<exit>"]; not a valid MIR
    label, so it can never collide). *)

val of_graph : root:string -> succs:(string -> string list) -> t
(** The raw engine, for non-CFG graphs and tests. *)

val idom : t -> string -> string option
(** Immediate dominator; [None] for the root and unanalyzed labels. *)

val dominates : t -> string -> string -> bool
(** [dominates t a b]: every path from the root to [b] passes through
    [a].  Reflexive; [false] when either label is unanalyzed. *)

val dominators : t -> string -> string list
(** Root-first chain of dominators of a label, ending with the label
    itself; [[]] for unanalyzed labels. *)

val known : t -> string -> bool
(** The label was reached by the analysis (reachable in the analyzed
    direction). *)
