(* Condition-code state: operands of the last [Cmp] on every path, when
   unique.  Killed by calls (the machine's cc register is shared with the
   callee, whose compares clobber it) and by redefinition of a compared
   register (the recorded operand would no longer name the compared
   value). *)
type cc = Cc_top | Cc_cmp of Mir.Operand.t * Mir.Operand.t

type st = { regs : Iv.t Mir.Reg.Map.t; cc : cc }
type state = Bot | St of st

type t = state Mir.Dataflow.result

let zero = Iv.const 0

(* Registers absent from the map were never assigned on any path from the
   entry; the simulator zero-initialises register files, so they hold 0. *)
let get regs r = Option.value (Mir.Reg.Map.find_opt r regs) ~default:zero

let cc_equal a b =
  match (a, b) with
  | Cc_top, Cc_top -> true
  | Cc_cmp (a1, b1), Cc_cmp (a2, b2) ->
    Mir.Operand.equal a1 a2 && Mir.Operand.equal b1 b2
  | _ -> false

let regs_merge f a b =
  Mir.Reg.Map.merge
    (fun _ x y ->
      Some
        (f (Option.value x ~default:zero) (Option.value y ~default:zero)))
    a b

let join_state a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | St a, St b ->
    St
      {
        regs = regs_merge Iv.join a.regs b.regs;
        cc = (if cc_equal a.cc b.cc then a.cc else Cc_top);
      }

let widen_state old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | St o, St n ->
    St
      {
        regs = regs_merge Iv.widen o.regs n.regs;
        cc = (if cc_equal o.cc n.cc then o.cc else Cc_top);
      }

let equal_state a b =
  match (a, b) with
  | Bot, Bot -> true
  | St a, St b ->
    cc_equal a.cc b.cc
    && Mir.Reg.Map.equal Iv.equal
         (regs_merge (fun x _ -> x) a.regs b.regs)
         (regs_merge (fun _ y -> y) a.regs b.regs)
  | _ -> false

let eval_op regs = function
  | Mir.Operand.Imm c -> Iv.const c
  | Mir.Operand.Reg r -> get regs r

let mentions r = function
  | Mir.Operand.Reg s -> Mir.Reg.equal r s
  | Mir.Operand.Imm _ -> false

let kill_cc r = function
  | Cc_cmp (a, b) when mentions r a || mentions r b -> Cc_top
  | cc -> cc

let set r v st = { regs = Mir.Reg.Map.add r v st.regs; cc = kill_cc r st.cc }

let apply_insn st insn =
  let ev op = eval_op st.regs op in
  match insn with
  | Mir.Insn.Mov (r, op) -> set r (ev op) st
  | Mir.Insn.Unop (Mir.Insn.Neg, r, op) -> set r (Iv.neg (ev op)) st
  | Mir.Insn.Unop (Mir.Insn.Not, r, op) -> set r (Iv.logical_not (ev op)) st
  | Mir.Insn.Binop (op, r, a, b) ->
    let va = ev a and vb = ev b in
    let v =
      match op with
      | Mir.Insn.Add -> Iv.add va vb
      | Mir.Insn.Sub -> Iv.sub va vb
      | Mir.Insn.Mul -> Iv.mul va vb
      | Mir.Insn.Rem -> Iv.rem va vb
      | Mir.Insn.Div | Mir.Insn.And | Mir.Insn.Or | Mir.Insn.Xor
      | Mir.Insn.Shl | Mir.Insn.Shr -> (
        match (Iv.is_const va, Iv.is_const vb) with
        | Some x, Some y -> (
          try Iv.const (Mir.Insn.eval_binop op x y)
          with Division_by_zero -> Iv.bot)
        | _ -> Iv.top)
    in
    set r v st
  | Mir.Insn.Load (r, _, _) -> set r Iv.top st
  | Mir.Insn.Store _ -> st
  | Mir.Insn.Cmp (a, b) -> { st with cc = Cc_cmp (a, b) }
  | Mir.Insn.Call (dst, _, _) -> (
    let st = { st with cc = Cc_top } in
    match dst with Some r -> set r Iv.top st | None -> st)
  | Mir.Insn.Nop | Mir.Insn.Profile_range _ | Mir.Insn.Profile_comb _ -> st

let transfer b st =
  match st with
  | Bot -> Bot
  | St st -> St (List.fold_left apply_insn st b.Mir.Block.insns)

(* Values x with [exists y in b. x cond y], as an interval. *)
let sat cond b =
  match b with
  | Iv.Bot -> Iv.Bot
  | Iv.Iv (bl, bh) -> (
    match cond with
    | Mir.Cond.Eq -> b
    | Mir.Cond.Ne -> Iv.top
    | Mir.Cond.Lt | Mir.Cond.Le -> Iv.of_cond cond bh
    | Mir.Cond.Gt | Mir.Cond.Ge -> Iv.of_cond cond bl)

let refine_against cond a b =
  match cond with
  | Mir.Cond.Ne -> (
    (* A punctured line is not an interval, but a punctured endpoint
       still shrinks: this is what turns a != loop guard into a
       convergent induction-variable bound. *)
    match (Iv.is_const b, a) with
    | Some c, Iv.Iv (lo, hi) ->
      if lo = c && hi = c then Iv.Bot
      else if lo = c then Iv.make (lo + 1) hi
      else if hi = c then Iv.make lo (hi - 1)
      else a
    | _ -> a)
  | _ -> Iv.meet a (sat cond b)

(* Sharpen the compared registers knowing [a cond b] held. *)
let refine_cc cond a_op b_op st =
  let iva = eval_op st.regs a_op and ivb = eval_op st.regs b_op in
  let iva' = refine_against cond iva ivb in
  let ivb' = refine_against (Mir.Cond.swap cond) ivb iva in
  if Iv.is_bot iva' || Iv.is_bot ivb' then Bot
  else
    let upd op v st =
      match op with
      | Mir.Operand.Reg r ->
        { st with regs = Mir.Reg.Map.add r (Iv.meet (get st.regs r) v) st.regs }
      | Mir.Operand.Imm _ -> st
    in
    St (upd b_op ivb' (upd a_op iva' st))

let refine_edge fn src dst st =
  match src.Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Br (cond, taken, fall) ->
    if taken = fall then St st (* both edges agree: direction tells nothing *)
    else (
      match st.cc with
      | Cc_cmp (a, b) ->
        refine_cc (if dst = taken then cond else Mir.Cond.negate cond) a b st
      | Cc_top -> St st)
  | Mir.Block.Jtab (r, tbl) ->
    let targets = Mir.Func.jtab fn tbl in
    let lo = ref max_int and hi = ref min_int in
    Array.iteri (fun i l -> if l = dst then (lo := min !lo i; hi := max !hi i)) targets;
    if !lo > !hi then St st (* dst not in the table: edge can't exist *)
    else
      let v = Iv.meet (get st.regs r) (Iv.make !lo !hi) in
      if Iv.is_bot v then Bot
      else St { st with regs = Mir.Reg.Map.add r v st.regs }
  | Mir.Block.Switch (r, cases, default) ->
    if dst = default then St st
    else
      let vals = List.filter_map (fun (v, l) -> if l = dst then Some v else None) cases in
      (match vals with
      | [] -> St st
      | v0 :: _ ->
        let lo = List.fold_left min v0 vals and hi = List.fold_left max v0 vals in
        let v = Iv.meet (get st.regs r) (Iv.make lo hi) in
        if Iv.is_bot v then Bot
        else St { st with regs = Mir.Reg.Map.add r v st.regs })
  | Mir.Block.Jmp _ | Mir.Block.Ret _ -> St st

(* Delay slots execute after the branch decision, so on the edge: after
   refinement (which talks about values at decision time), before the
   successor.  An annulled slot runs on the taken path only. *)
let apply_delay src dst st =
  match src.Mir.Block.term.Mir.Block.delay with
  | None -> St st
  | Some i ->
    if not src.Mir.Block.term.Mir.Block.annul then St (apply_insn st i)
    else (
      match src.Mir.Block.term.Mir.Block.kind with
      | Mir.Block.Br (_, taken, fall) when taken <> fall ->
        if dst = taken then St (apply_insn st i) else St st
      | _ -> join_state (St (apply_insn st i)) (St st))

let edge fn src dst st =
  match st with
  | Bot -> Bot
  | St st -> (
    match refine_edge fn src dst st with
    | Bot -> Bot
    | St st -> apply_delay src dst st)

let entry_state fn =
  let regs =
    List.fold_left
      (fun m r -> Mir.Reg.Map.add r Iv.top m)
      Mir.Reg.Map.empty fn.Mir.Func.params
  in
  St { regs; cc = Cc_top }

let analyze fn =
  Mir.Dataflow.solve
    {
      Mir.Dataflow.direction = Mir.Dataflow.Forward;
      boundary = entry_state fn;
      bottom = Bot;
      join = join_state;
      equal = equal_state;
      transfer;
      edge = Some (edge fn);
      widen = Some widen_state;
      widen_after = 8;
    }
    fn

let reachable t label = Mir.Dataflow.fact_in t label <> Bot

let reg_in t label r =
  match Mir.Dataflow.fact_in t label with
  | Bot -> Iv.Bot
  | St st -> get st.regs r

let reg_before t b i r =
  match Mir.Dataflow.fact_in t b.Mir.Block.label with
  | Bot -> Iv.Bot
  | St st ->
    let rec go st k = function
      | insn :: rest when k < i -> go (apply_insn st insn) (k + 1) rest
      | _ -> get st.regs r
    in
    go st 0 b.Mir.Block.insns

let cc_at_term t b =
  match Mir.Dataflow.fact_out t b.Mir.Block.label with
  | Bot -> None
  | St st -> (
    match st.cc with
    | Cc_top -> None
    | Cc_cmp (a, b) -> Some (eval_op st.regs a, eval_op st.regs b))

let branch_fate t b =
  match b.Mir.Block.term.Mir.Block.kind with
  | Mir.Block.Br (cond, _, _) -> (
    match Mir.Dataflow.fact_out t b.Mir.Block.label with
    | Bot -> `Unreachable
    | St st -> (
      match st.cc with
      | Cc_top -> `Unknown
      | Cc_cmp (a_op, b_op) ->
        let a = eval_op st.regs a_op and bv = eval_op st.regs b_op in
        if Iv.always cond a bv then `Always_taken
        else if Iv.never cond a bv then `Never_taken
        else `Unknown))
  | _ -> `Unknown

let iterations = Mir.Dataflow.iterations
