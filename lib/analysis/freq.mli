(** Block and edge frequency propagation (Wu–Larus).

    From the heuristic branch probabilities of {!Heur}, every block gets
    an expected execution frequency per function invocation: loops are
    processed innermost-first, each header's {e cyclic probability}
    (mass its back edges return per entry) becomes a loop multiplier
    capped at {!loop_cap}, and a final pass from the entry
    ([bfreq(entry) = 1]) makes the frequencies absolute.

    Guarantees, property-tested in [test_static]: all frequencies are
    finite and non-negative, every successor distribution sums to 1,
    and at every block the final pass reached (other than a loop
    header's re-entry mass) inflow equals frequency. *)

type t

val analyze : ?heur:Heur.t -> ?loops:Loops.t -> Mir.Func.t -> t
(** [heur] / [loops] are computed when not supplied. *)

val loop_cap : float
(** Saturation of a header's multiplier [1/(1 - cyclic_prob)] (64). *)

val block_freq : t -> string -> float
(** Expected executions per invocation; [0.] for blocks the propagation
    never reached (unreachable, or stranded in an irreducible region). *)

val edge_freq : t -> src:string -> dst:string -> float
(** [block_freq src * P(src -> dst)]. *)

val succ_probs : t -> string -> (string * float) list
(** The successor probability distribution of a block: heuristic split
    for two-way branches, uniform per table slot for [Jtab]/[Switch]
    (duplicate targets summed), [1.] for jumps; sums to 1 (or is empty,
    for returns). *)

val reached : t -> string -> bool
(** The final propagation pass assigned this block a frequency. *)
