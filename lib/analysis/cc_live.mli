(** Condition-code liveness.

    A backward may-analysis on {!Mir.Dataflow} with a one-bit fact: is
    the condition-code register live (read by a [Br] before being
    overwritten by a [Cmp])?  Unlike the syntactic "starts with a
    compare" test this follows the CFG, so a [Jmp]-only forwarder
    between a compare and the branch that consumes it is handled, and a
    [Call] is treated as clobbering the cc register (the machine has a
    single global cc shared with callees).

    Used by {!Reorder.Apply} and {!Check.Verify} to agree on which
    blocks require a valid incoming condition code. *)

type t

val analyze : Mir.Func.t -> t

val live_in : t -> string -> bool
(** The labelled block (or a successor reached before any [Cmp]) reads
    the condition code set by its predecessors. *)

val live_out : t -> string -> bool
(** The condition code at the labelled block's exit is read by some
    successor. *)
