(** Finite unions of integer intervals.

    The exact counterpart of {!Iv}: where an interval over-approximates
    (a punctured line, a union of arms), an interval {e set} is precise.
    Used by the lint arm analysis to track exactly which values survive
    a chain of range tests, and by the redundant-comparison eliminator
    as the proof obligation that a rewritten compare/branch pair decides
    the same set of values as the pair it replaces.

    Representation: sorted, disjoint, non-adjacent inclusive intervals;
    [min_int]/[max_int] act as -oo/+oo. *)

type t = (int * int) list

val empty : t
val full : t
val of_interval : int -> int -> t
val single : int -> t
val of_iv : Iv.t -> t

val is_empty : t -> bool
val equal : t -> t -> bool
val mem : int -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool

val of_cond : Mir.Cond.t -> int -> t
(** Values [v] with [v cond c] — exact, including [Ne]. *)

val as_interval : t -> (int * int) option
(** [Some (lo, hi)] when the set is one contiguous interval. *)

val to_iv : t -> Iv.t
(** Smallest interval covering the set ([Bot] when empty). *)

val pp : Format.formatter -> t -> unit
val show : t -> string
