(** Per-block side-effect summaries.

    Answers, with a reason, the question the sequence detector and the
    lint explanations both ask: "can this block's body be duplicated
    onto edges / skipped on some paths without changing observable
    behaviour?"  An effect is anything beyond writing local registers
    and the condition code: a memory store, a call (I/O, global state,
    possible non-termination), or an instruction that may trap.

    Interval facts refute trap effects: a [Div]/[Rem] whose divisor's
    interval excludes 0 cannot trap and is dropped from the summary. *)

type effect =
  | Store of string  (** writes global [sym] *)
  | Io of string  (** calls [callee] *)
  | May_trap of string  (** description, e.g. "div by possibly-zero r3" *)

val effects : ?intervals:Intervals.t -> Mir.Block.t -> effect list
(** Effects of the block's body and delay slot, in instruction order. *)

val pure : ?intervals:Intervals.t -> Mir.Block.t -> bool

val pp_effect : Format.formatter -> effect -> unit
val describe : effect list -> string
(** Human-readable one-line summary, e.g.
    ["stores to counts; calls put_char"] — ["pure"] when empty. *)
