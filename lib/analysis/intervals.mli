(** Interval (value-range) analysis over a function's registers.

    A forward dataflow on {!Mir.Dataflow} whose facts map every register
    to an {!Iv.t}, with two features the rest of the tree leans on:

    - {b branch-edge refinement}: the analysis tracks the operands of
      the last executed [Cmp] (the condition-code state, killed by calls
      — the machine's cc register is shared with callees — and by
      redefinitions of a compared register), and sharpens the compared
      registers' intervals separately along the taken and not-taken
      edges of every branch.  Jump-table edges bound the index register;
      switch edges narrow the scrutinee to the hull of the case values.
      An edge whose refined fact is empty is {e infeasible}, and a block
      all of whose incoming edges are infeasible keeps the [Bot] state —
      statically unreachable even though the CFG has an edge into it;
    - {b widening}: after eight visits to a block the input interval's
      moving bounds jump to the infinities, so loops with induction
      variables converge.

    Registers never assigned on a path hold 0 (the simulator
    zero-initialises register files); parameters are unknown. *)

type t

val analyze : Mir.Func.t -> t

val reachable : t -> string -> bool
(** The labelled block's entry fact is non-empty: some feasible path
    from the entry reaches it. *)

val reg_in : t -> string -> Mir.Reg.t -> Iv.t
(** Interval of a register at entry to the labelled block ([Bot] when
    the block is unreachable). *)

val reg_before : t -> Mir.Block.t -> int -> Mir.Reg.t -> Iv.t
(** [reg_before t b i r]: interval of [r] immediately before the [i]-th
    instruction of [b] (so [reg_before t b 0 r = reg_in t b.label r]).
    [i] may be [List.length b.insns], meaning "at the terminator". *)

val cc_at_term : t -> Mir.Block.t -> (Iv.t * Iv.t) option
(** Intervals of the condition-code operands live at the block's
    terminator, when the last compare on every path through the block
    is known ([None] after calls, or when the block is unreachable). *)

val branch_fate :
  t -> Mir.Block.t -> [ `Always_taken | `Never_taken | `Unknown | `Unreachable ]
(** Decide a [Br] terminator from the facts: [`Always_taken] /
    [`Never_taken] when the interval facts prove the branch one-way.
    [`Unknown] for non-branch terminators. *)

val iterations : t -> int
(** Engine iterations (a termination probe for tests). *)
