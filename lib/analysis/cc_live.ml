type t = bool Mir.Dataflow.result

(* Both [Cmp] and [Call] define the cc register ([Call] with the
   callee's garbage), so both kill liveness going backward. *)
let insn_kills = function
  | Mir.Insn.Cmp _ | Mir.Insn.Call _ -> true
  | _ -> false

let transfer b live_out =
  let term = b.Mir.Block.term in
  (* The delay slot executes after the branch reads the cc, so going
     backward it comes first.  An annulled slot may not execute (fall
     path), so it cannot be relied on to kill. *)
  let live =
    match term.Mir.Block.delay with
    | Some i when (not term.Mir.Block.annul) && insn_kills i -> false
    | _ -> live_out
  in
  let live =
    match term.Mir.Block.kind with Mir.Block.Br _ -> true | _ -> live
  in
  List.fold_left
    (fun live i -> if insn_kills i then false else live)
    live (List.rev b.Mir.Block.insns)

let problem =
  {
    Mir.Dataflow.direction = Mir.Dataflow.Backward;
    boundary = false;
    bottom = false;
    join = ( || );
    equal = Bool.equal;
    transfer;
    edge = None;
    widen = None;
    widen_after = 0;
  }

let analyze fn = Mir.Dataflow.solve problem fn
let live_in t label = Mir.Dataflow.fact_in t label
let live_out t label = Mir.Dataflow.fact_out t label
