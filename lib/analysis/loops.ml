(* Natural loop nests from back edges (an edge t -> h where h dominates
   t), with the nesting structure the frequency propagation needs:
   loops carry their depth and parent, blocks answer their innermost
   enclosing loop. *)

type loop = {
  l_header : string;
  l_body : string list;       (* layout order, header included *)
  l_back_edges : string list; (* tails of the back edges into the header *)
  l_depth : int;              (* 1 = outermost *)
  l_parent : string option;   (* header of the enclosing loop *)
}

type t = {
  loops : loop list;  (* layout order of the headers *)
  membership : (string, loop) Hashtbl.t;  (* (body label) -> loop, multi *)
  back : (string * string, unit) Hashtbl.t;  (* (tail, header) *)
  headers : (string, loop) Hashtbl.t;
}

let natural_body fn preds reachable header tails =
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec pull label =
    if (not (Hashtbl.mem in_loop label)) && Hashtbl.mem reachable label then begin
      Hashtbl.replace in_loop label ();
      match Hashtbl.find_opt preds label with
      | Some ps -> List.iter pull ps
      | None -> ()
    end
  in
  List.iter pull tails;
  List.filter_map
    (fun (b : Mir.Block.t) ->
      if Hashtbl.mem in_loop b.Mir.Block.label then Some b.Mir.Block.label
      else None)
    fn.Mir.Func.blocks

let analyze fn =
  let dom = Dom.compute fn in
  let preds = Mir.Func.predecessors fn in
  let reachable = Mir.Func.reachable fn in
  let tails_of = Hashtbl.create 8 in
  let back = Hashtbl.create 8 in
  List.iter
    (fun (b : Mir.Block.t) ->
      List.iter
        (fun s ->
          if Dom.dominates dom s b.Mir.Block.label then begin
            let tails =
              Option.value ~default:[] (Hashtbl.find_opt tails_of s)
            in
            Hashtbl.replace tails_of s (tails @ [ b.Mir.Block.label ]);
            Hashtbl.replace back (b.Mir.Block.label, s) ()
          end)
        (Mir.Func.successors fn b))
    fn.Mir.Func.blocks;
  let bare =
    List.filter_map
      (fun (b : Mir.Block.t) ->
        match Hashtbl.find_opt tails_of b.Mir.Block.label with
        | Some tails ->
          Some
            ( b.Mir.Block.label,
              natural_body fn preds reachable b.Mir.Block.label tails,
              tails )
        | None -> None)
      fn.Mir.Func.blocks
  in
  (* nesting: loop A encloses loop B when A's body contains B's header
     (natural loops with distinct headers are disjoint or nested) *)
  let bodies = Hashtbl.create 8 in
  List.iter
    (fun (h, body, _) ->
      let set = Hashtbl.create 16 in
      List.iter (fun l -> Hashtbl.replace set l ()) body;
      Hashtbl.replace bodies h set)
    bare;
  let enclosing h =
    List.filter
      (fun (h', _, _) ->
        (not (String.equal h h'))
        && Hashtbl.mem (Hashtbl.find bodies h') h)
      bare
  in
  let loops =
    List.map
      (fun (h, body, tails) ->
        let outer = enclosing h in
        let parent =
          (* the enclosing loop with the smallest body is the direct one *)
          List.fold_left
            (fun acc (h', body', _) ->
              match acc with
              | Some (_, n) when n <= List.length body' -> acc
              | _ -> Some (h', List.length body'))
            None outer
          |> Option.map fst
        in
        {
          l_header = h;
          l_body = body;
          l_back_edges = tails;
          l_depth = 1 + List.length outer;
          l_parent = parent;
        })
      bare
  in
  let membership = Hashtbl.create 32 in
  let headers = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.replace headers l.l_header l;
      List.iter (fun b -> Hashtbl.add membership b l) l.l_body)
    loops;
  { loops; membership; back; headers }

let loops t = t.loops

let innermost_first t =
  (* deeper loops first; stable within a depth (layout order) *)
  List.stable_sort (fun a b -> compare b.l_depth a.l_depth) t.loops

let header t h = Hashtbl.find_opt t.headers h

let is_back_edge t ~src ~dst = Hashtbl.mem t.back (src, dst)

let is_header t label = Hashtbl.mem t.headers label

let depth t label = List.length (Hashtbl.find_all t.membership label)

let innermost t label =
  List.fold_left
    (fun acc l ->
      match acc with
      | Some best when List.length best.l_body <= List.length l.l_body -> acc
      | _ -> Some l)
    None
    (Hashtbl.find_all t.membership label)

let in_body l label = List.exists (String.equal label) l.l_body
