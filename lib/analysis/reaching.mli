(** Reaching definitions.

    A forward may-analysis on {!Mir.Dataflow} mapping every register to
    the set of definition sites whose value may reach the program point.
    The entry block carries one pseudo-definition per register:
    parameters are defined to an unknown value, every other register to
    0 (the simulator zero-initialises register files), which is what
    makes {!const_in} sound as a whole-function constant propagation
    oracle rather than a per-path guess. *)

type site =
  | Entry  (** the function-entry pseudo-definition *)
  | At of string * int
      (** [At (label, i)]: the [i]-th instruction of block [label];
          [i = List.length insns] is the terminator's delay slot *)

type t

val analyze : Mir.Func.t -> t

val sites_in : t -> string -> Mir.Reg.t -> site list
(** Definition sites of a register that may reach the labelled block's
    entry, deterministically ordered.  Empty iff the block is
    unreachable. *)

val const_in : t -> Mir.Func.t -> string -> Mir.Reg.t -> int option
(** [Some c] when every definition of the register reaching the block's
    entry assigns the compile-time constant [c] — [Mov r, #c]
    instructions, or the entry zero-definition of a non-parameter. *)
