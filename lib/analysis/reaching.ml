type site =
  | Entry
  | At of string * int

module Sites = Set.Make (struct
  type t = site

  let compare = compare
end)

type state = Unreached | Reached of Sites.t Mir.Reg.Map.t

type t = state Mir.Dataflow.result

let entry_sites = Sites.singleton Entry

(* A register with no recorded definition still holds its entry
   pseudo-definition. *)
let get m r = Option.value (Mir.Reg.Map.find_opt r m) ~default:entry_sites

let join a b =
  match (a, b) with
  | Unreached, x | x, Unreached -> x
  | Reached a, Reached b ->
    Reached
      (Mir.Reg.Map.merge
         (fun _ x y ->
           Some
             (Sites.union
                (Option.value x ~default:entry_sites)
                (Option.value y ~default:entry_sites)))
         a b)

let equal a b =
  match (a, b) with
  | Unreached, Unreached -> true
  | Reached a, Reached b ->
    Mir.Reg.Map.for_all (fun r s -> Sites.equal s (get b r)) a
    && Mir.Reg.Map.for_all (fun r s -> Sites.equal s (get a r)) b
  | _ -> false

let def_insn label i insn m =
  List.fold_left
    (fun m r -> Mir.Reg.Map.add r (Sites.singleton (At (label, i))) m)
    m (Mir.Insn.defs insn)

let transfer b st =
  match st with
  | Unreached -> Unreached
  | Reached m ->
    let label = b.Mir.Block.label in
    let m, _ =
      List.fold_left
        (fun (m, i) insn -> (def_insn label i insn m, i + 1))
        (m, 0) b.Mir.Block.insns
    in
    Reached m

(* The delay slot's definition happens on the edge: always for a plain
   slot, only along the taken edge for an annulled one (on the fall edge
   the old definitions survive, so we union rather than overwrite). *)
let edge _fn src dst st =
  match st with
  | Unreached -> Unreached
  | Reached m -> (
    let term = src.Mir.Block.term in
    match term.Mir.Block.delay with
    | None -> st
    | Some insn -> (
      let label = src.Mir.Block.label in
      let i = List.length src.Mir.Block.insns in
      let strong = Reached (def_insn label i insn m) in
      if not term.Mir.Block.annul then strong
      else
        match term.Mir.Block.kind with
        | Mir.Block.Br (_, taken, fall) when taken <> fall ->
          if dst = taken then strong else st
        | _ -> join strong st))

let analyze fn =
  Mir.Dataflow.solve
    {
      Mir.Dataflow.direction = Mir.Dataflow.Forward;
      boundary = Reached Mir.Reg.Map.empty;
      bottom = Unreached;
      join;
      equal;
      transfer;
      edge = Some (edge fn);
      widen = None;
      widen_after = 0;
    }
    fn

let sites_in t label r =
  match Mir.Dataflow.fact_in t label with
  | Unreached -> []
  | Reached m -> Sites.elements (get m r)

let site_insn fn label i =
  match Mir.Func.find_block_opt fn label with
  | None -> None
  | Some b ->
    if i < List.length b.Mir.Block.insns then List.nth_opt b.Mir.Block.insns i
    else b.Mir.Block.term.Mir.Block.delay

let const_in t fn label r =
  let is_param = List.exists (Mir.Reg.equal r) fn.Mir.Func.params in
  let site_const = function
    | Entry -> if is_param then None else Some 0
    | At (l, i) -> (
      match site_insn fn l i with
      | Some (Mir.Insn.Mov (r', Mir.Operand.Imm c)) when Mir.Reg.equal r r' ->
        Some c
      | _ -> None)
  in
  match sites_in t label r with
  | [] -> None (* unreachable: no definition reaches *)
  | s0 :: rest -> (
    match site_const s0 with
    | None -> None
    | Some c ->
      if List.for_all (fun s -> site_const s = Some c) rest then Some c
      else None)
