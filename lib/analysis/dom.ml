(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm",
   generalized over an abstract successor function so the same engine
   yields dominators (forward CFG) and postdominators (reversed CFG
   rooted at a virtual exit).  This is the shared implementation the
   verifier and the static-profile analyses both sit on. *)

type t = {
  order : string array;                  (* reverse postorder; order.(0) = root *)
  number : (string, int) Hashtbl.t;
  idom : int array;                      (* idom.(i) = rpo index, or -1 *)
}

let virtual_exit = "<exit>"

(* reverse postorder of the nodes reachable from [root] under [succs] *)
let reverse_postorder ~root ~succs =
  let visited = Hashtbl.create 64 in
  let post = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      List.iter dfs (succs label);
      post := label :: !post
    end
  in
  dfs root;
  Array.of_list !post

let of_graph ~root ~succs =
  let order = reverse_postorder ~root ~succs in
  let n = Array.length order in
  let number = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace number l i) order;
  let preds = Array.make n [] in
  Array.iteri
    (fun i label ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt number s with
          | Some j -> preds.(j) <- i :: preds.(j)
          | None -> ())
        (succs label))
    order;
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    let rec intersect a b =
      if a = b then a
      else if a > b then intersect idom.(a) b
      else intersect a idom.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 1 to n - 1 do
        let processed = List.filter (fun p -> idom.(p) >= 0) preds.(i) in
        match processed with
        | [] -> ()
        | first :: rest ->
          let new_idom = List.fold_left intersect first rest in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
      done
    done
  end;
  { order; number; idom }

let func_succs fn label =
  match Mir.Func.find_block_opt fn label with
  | Some b -> Mir.Func.successors fn b
  | None -> []

let compute fn =
  match fn.Mir.Func.blocks with
  | [] -> { order = [||]; number = Hashtbl.create 1; idom = [||] }
  | entry :: _ ->
    of_graph ~root:entry.Mir.Block.label ~succs:(func_succs fn)

(* postdominators: dominators of the reverse CFG, rooted at a virtual
   exit whose reverse successors are every reachable exit block (a [Ret]
   terminator).  Blocks that cannot reach an exit (infinite loops) have
   no postdominators; [dominates] answers [false] for them. *)
let compute_post fn =
  match fn.Mir.Func.blocks with
  | [] -> { order = [||]; number = Hashtbl.create 1; idom = [||] }
  | _ ->
    let reachable = Mir.Func.reachable fn in
    let exits =
      List.filter_map
        (fun (b : Mir.Block.t) ->
          match b.Mir.Block.term.Mir.Block.kind with
          | Mir.Block.Ret _ when Hashtbl.mem reachable b.Mir.Block.label ->
            Some b.Mir.Block.label
          | _ -> None)
        fn.Mir.Func.blocks
    in
    let preds = Mir.Func.predecessors fn in
    let succs label =
      if String.equal label virtual_exit then exits
      else
        match Hashtbl.find_opt preds label with
        | Some ps -> List.filter (Hashtbl.mem reachable) ps
        | None -> []
    in
    of_graph ~root:virtual_exit ~succs

let idom t label =
  match Hashtbl.find_opt t.number label with
  | None -> None
  | Some i ->
    if i = 0 || t.idom.(i) < 0 then None else Some t.order.(t.idom.(i))

let dominates t a b =
  match (Hashtbl.find_opt t.number a, Hashtbl.find_opt t.number b) with
  | Some ia, Some ib ->
    let rec walk i =
      if i = ia then true else if i = 0 then ia = 0 else walk t.idom.(i)
    in
    if t.idom.(ib) < 0 && ib <> 0 then false else walk ib
  | _ -> false

let dominators t label =
  match Hashtbl.find_opt t.number label with
  | None -> []
  | Some i ->
    if i <> 0 && t.idom.(i) < 0 then []
    else begin
      let rec up acc i =
        let acc = t.order.(i) :: acc in
        if i = 0 then List.rev acc else up acc t.idom.(i)
      in
      up [] i
    end

let known t label = Hashtbl.mem t.number label
