type effect =
  | Store of string
  | Io of string
  | May_trap of string

let insn_effects lookup_iv i insn =
  match insn with
  | Mir.Insn.Store (sym, _, _) -> [ Store sym ]
  | Mir.Insn.Call (_, callee, _) -> [ Io callee ]
  | Mir.Insn.Binop ((Mir.Insn.Div | Mir.Insn.Rem), _, _, divisor) -> (
    match divisor with
    | Mir.Operand.Imm 0 -> [ May_trap "division by constant zero" ]
    | Mir.Operand.Imm _ -> []
    | Mir.Operand.Reg r ->
      if Iv.mem 0 (lookup_iv i r) then
        [ May_trap (Format.asprintf "division by possibly-zero %a" Mir.Reg.pp r) ]
      else [])
  | _ -> []

let effects ?intervals b =
  let lookup_iv i r =
    match intervals with
    | None -> Iv.top
    | Some t -> Intervals.reg_before t b i r
  in
  let body =
    List.concat (List.mapi (fun i insn -> insn_effects lookup_iv i insn) b.Mir.Block.insns)
  in
  match b.Mir.Block.term.Mir.Block.delay with
  | None -> body
  | Some insn ->
    body @ insn_effects lookup_iv (List.length b.Mir.Block.insns) insn

let pure ?intervals b = effects ?intervals b = []

let pp_effect ppf = function
  | Store sym -> Format.fprintf ppf "stores to %s" sym
  | Io callee -> Format.fprintf ppf "calls %s" callee
  | May_trap what -> Format.fprintf ppf "may trap (%s)" what

let describe = function
  | [] -> "pure"
  | effs ->
    Format.asprintf "%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_effect)
      effs
