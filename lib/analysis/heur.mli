(** Static branch-probability heuristics (Ball–Larus / Wu–Larus).

    For every two-way [Br] of a function this collects the applicable
    heuristic {e evidence} — loop branch, loop exit, compare opcode,
    trap guard, call, store, return, each with its literature hit rate
    as the taken-edge probability — and fuses the pieces by
    Dempster–Shafer combination.  A branch with no applicable evidence
    is a coin flip (0.5).

    Adapted to MIR's condition-code machine: the opcode heuristic reads
    the block's own last [Cmp] (normalizing swapped operand order) and
    abstains on cc-reuse blocks that inherit the codes from a
    predecessor; the successor-property heuristics abstain when the
    successor postdominates the branch, or when both successors trigger
    (Ball–Larus applicability). *)

type evidence = {
  ev_heur : string;
      (** stable name: ["loop-branch"], ["loop-exit"], ["opcode"],
          ["guard"], ["call"], ["store"], ["return"] *)
  ev_taken : float;  (** P(taken edge) under this heuristic alone *)
}

type t

val analyze : ?loops:Loops.t -> ?post:Dom.t -> Mir.Func.t -> t
(** [loops] and [post] (postdominators) are computed when not
    supplied. *)

val evidence : t -> string -> evidence list
(** The applicable evidence at a [Br] block, in a fixed order; [[]] for
    non-branch labels and undecidable branches. *)

val taken_prob : t -> string -> float
(** Fused probability that the block's branch takes its taken edge;
    [0.5] without evidence. *)

val combine : float -> float -> float
(** Dempster–Shafer combination of two probabilities over a
    two-hypothesis frame: [p1*p2 / (p1*p2 + (1-p1)*(1-p2))].  [0.5] is
    the identity; exposed for the golden heuristic tests. *)
