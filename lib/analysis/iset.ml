type t = (int * int) list

let empty = []
let full = [ (min_int, max_int) ]

let norm s =
  let s = List.filter (fun (lo, hi) -> lo <= hi) s in
  let s = List.sort compare s in
  let rec merge = function
    | (a, b) :: (c, d) :: rest when b = max_int || c <= b + 1 ->
      merge ((a, max b d) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge s

let of_interval lo hi = norm [ (lo, hi) ]
let single c = [ (c, c) ]

let of_iv = function Iv.Bot -> [] | Iv.Iv (lo, hi) -> [ (lo, hi) ]

let is_empty s = s = []
let equal (a : t) (b : t) = a = b
let mem x s = List.exists (fun (lo, hi) -> lo <= x && x <= hi) s

let inter a b =
  List.concat_map
    (fun (alo, ahi) ->
      List.filter_map
        (fun (blo, bhi) ->
          let lo = max alo blo and hi = min ahi bhi in
          if lo > hi then None else Some (lo, hi))
        b)
    a
  |> norm

let diff a b =
  let sub_one (lo, hi) (blo, bhi) =
    if bhi < lo || blo > hi then [ (lo, hi) ]
    else
      (if blo > lo then [ (lo, blo - 1) ] else [])
      @ if bhi < hi then [ (bhi + 1, hi) ] else []
  in
  List.fold_left
    (fun acc cut -> List.concat_map (fun iv -> sub_one iv cut) acc)
    a b
  |> norm

let union a b = norm (a @ b)
let subset a b = is_empty (diff a b)

let of_cond cond c =
  match cond with
  | Mir.Cond.Eq -> single c
  | Mir.Cond.Ne ->
    norm
      ((if c = min_int then [] else [ (min_int, c - 1) ])
      @ if c = max_int then [] else [ (c + 1, max_int) ])
  | Mir.Cond.Lt -> if c = min_int then [] else [ (min_int, c - 1) ]
  | Mir.Cond.Le -> [ (min_int, c) ]
  | Mir.Cond.Gt -> if c = max_int then [] else [ (c + 1, max_int) ]
  | Mir.Cond.Ge -> [ (c, max_int) ]

let as_interval = function [ (lo, hi) ] -> Some (lo, hi) | _ -> None

let to_iv s =
  match (s, List.rev s) with
  | [], _ | _, [] -> Iv.Bot
  | (lo, _) :: _, (_, hi) :: _ -> Iv.Iv (lo, hi)

let pp ppf s =
  let one ppf (lo, hi) =
    let b ppf x =
      if x = min_int then Format.pp_print_string ppf "-oo"
      else if x = max_int then Format.pp_print_string ppf "+oo"
      else Format.pp_print_int ppf x
    in
    if lo = hi then Format.fprintf ppf "%a" b lo
    else Format.fprintf ppf "%a..%a" b lo b hi
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") one)
    s

let show s = Format.asprintf "%a" pp s
