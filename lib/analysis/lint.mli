(** Structured diagnostics from the dataflow facts.

    Four families, all proved (not guessed) from {!Intervals} and the
    exact {!Iset} arm walk — soundness matters because the fuzzer
    cross-checks every verdict against reference-interpreter traces:

    - {e unreachable blocks}: syntactically reachable, but every path
      into them crosses an infeasible branch edge;
    - {e decidable branches}: the interval facts prove a [Br] one-way;
    - {e subsumed arms}: a range-test arm in a compare chain whose test
      can never be satisfied by the values still flowing past the
      earlier arms;
    - {e overlapping arms}: an arm whose test set intersects values
      already claimed by earlier arms (part of its nominal range is
      dead, though the arm itself still fires).

    The [Not_reorderable] kind is produced by [Reorder.Explain], which
    reuses this diagnostic type so the lint driver can present one
    merged report. *)

type kind =
  | Unreachable_block
  | Branch_always_taken
  | Branch_never_taken
  | Subsumed_arm
  | Overlapping_arms
  | Not_reorderable

type diag = {
  func : string;
  label : string;  (** block the diagnostic anchors to *)
  kind : kind;
  message : string;
}

val kind_name : kind -> string
(** Stable kebab-case identifier, e.g. ["subsumed-arm"] (used in JSON
    output and tests). *)

val check_func : Mir.Func.t -> Intervals.t -> diag list
val check_program : Mir.Program.t -> diag list
(** Runs {!Intervals.analyze} per function; diagnostics in layout
    order. *)

val pp_diag : Format.formatter -> diag -> unit
val to_json : diag list -> string
(** A JSON array of [{func, label, kind, message}] objects. *)
