(** Structured diagnostics from the dataflow facts.

    Four families, all proved (not guessed) from {!Intervals} and the
    exact {!Iset} arm walk — soundness matters because the fuzzer
    cross-checks every verdict against reference-interpreter traces:

    - {e unreachable blocks}: syntactically reachable, but every path
      into them crosses an infeasible branch edge;
    - {e decidable branches}: the interval facts prove a [Br] one-way;
    - {e subsumed arms}: a range-test arm in a compare chain whose test
      can never be satisfied by the values still flowing past the
      earlier arms;
    - {e overlapping arms}: an arm whose test set intersects values
      already claimed by earlier arms (part of its nominal range is
      dead, though the arm itself still fires).

    The [Not_reorderable] kind is produced by [Reorder.Explain], which
    reuses this diagnostic type so the lint driver can present one
    merged report. *)

type kind =
  | Unreachable_block
  | Branch_always_taken
  | Branch_never_taken
  | Subsumed_arm
  | Overlapping_arms
  | Not_reorderable
  | Prediction_diverges
      (** the static heuristics ({!Heur}) and a supplied trained profile
          disagree on a branch's likely direction; advisory (produced
          only by {!divergence}, never by {!check_func}) *)

type diag = {
  func : string;
  label : string;  (** block the diagnostic anchors to *)
  kind : kind;
  message : string;
}

val kind_name : kind -> string
(** Stable kebab-case identifier, e.g. ["subsumed-arm"] (used in JSON
    output and tests). *)

val check_func : Mir.Func.t -> Intervals.t -> diag list
val check_program : Mir.Program.t -> diag list
(** Runs {!Intervals.analyze} per function; diagnostics in layout
    order. *)

val divergence :
  ?min_count:int ->
  ?margin:float ->
  Mir.Program.t ->
  observed:(func:string -> label:string -> (int * int) option) ->
  diag list
(** [Prediction_diverges] diagnostics: two-way branches where the fused
    static prediction and an observed (taken, not-taken) count pair
    firmly point in opposite directions.  [observed] supplies the
    trained counts per branch block ([None] = unobserved); branches with
    fewer than [min_count] observations (default 8) are skipped, and
    both the predicted and the measured probability must sit at least
    [margin] (default 0.1) away from the coin flip. *)

val pp_diag : Format.formatter -> diag -> unit
val to_json : diag list -> string
(** A JSON array of [{func, label, kind, message}] objects. *)
