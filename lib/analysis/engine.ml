(* The generic worklist engine physically lives in [Mir.Dataflow] (so
   [Mir.Liveness] can be built on it without a dependency cycle); this
   alias gives the analysis library a local front door. *)
include Mir.Dataflow
