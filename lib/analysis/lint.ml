type kind =
  | Unreachable_block
  | Branch_always_taken
  | Branch_never_taken
  | Subsumed_arm
  | Overlapping_arms
  | Not_reorderable
  | Prediction_diverges

type diag = {
  func : string;
  label : string;
  kind : kind;
  message : string;
}

let kind_name = function
  | Unreachable_block -> "unreachable-block"
  | Branch_always_taken -> "branch-always-taken"
  | Branch_never_taken -> "branch-never-taken"
  | Subsumed_arm -> "subsumed-arm"
  | Overlapping_arms -> "overlapping-arms"
  | Not_reorderable -> "not-reorderable"
  | Prediction_diverges -> "prediction-diverges"

(* --- range-test chains ------------------------------------------------- *)

(* A block participates in an arm chain when its last instruction
   compares a register against a constant and the terminator branches on
   the result.  The walk tracks the exact set of values still flowing
   past each arm, so punctured sets ([Ne] arms) stay precise where the
   interval facts alone would widen to top. *)

let arm_shape b =
  match (List.rev b.Mir.Block.insns, b.Mir.Block.term.Mir.Block.kind) with
  | ( Mir.Insn.Cmp (Mir.Operand.Reg v, Mir.Operand.Imm c) :: _,
      Mir.Block.Br (cond, taken, fall) )
    when taken <> fall -> Some (v, c, cond, taken, fall)
  | _ -> None

let defines v insn = List.exists (Mir.Reg.equal v) (Mir.Insn.defs insn)

(* The fall-through block [next] continues a chain on [v] rooted at
   [cur] when it is a pure re-test of the same unmodified variable and
   nothing else jumps into the middle of the chain. *)
let chain_continues preds cur next v =
  match arm_shape next with
  | Some (v', _, _, _, _) when Mir.Reg.equal v v' ->
    (match Hashtbl.find_opt preds next.Mir.Block.label with
    | Some [ p ] when p = cur.Mir.Block.label ->
      (not (List.exists (defines v) next.Mir.Block.insns))
      && (match cur.Mir.Block.term.Mir.Block.delay with
         | Some i when not cur.Mir.Block.term.Mir.Block.annul ->
           not (defines v i)
         | _ -> true)
    | _ -> false)
  | _ -> false

let check_arms fn intervals =
  let preds = Mir.Func.predecessors fn in
  let continuation = Hashtbl.create 16 in
  (* mark every block that a chain walk will reach from an earlier head,
     so it is not reported twice as its own chain *)
  Mir.Func.iter_blocks fn (fun b ->
      match arm_shape b with
      | Some (v, _, _, _, fall) -> (
        match Mir.Func.find_block_opt fn fall with
        | Some next when chain_continues preds b next v ->
          Hashtbl.replace continuation fall ()
        | _ -> ())
      | None -> ());
  let diags = ref [] in
  let emit label kind message =
    diags := { func = fn.Mir.Func.name; label; kind; message } :: !diags
  in
  let walk_chain head v =
    let cmp_index b = List.length b.Mir.Block.insns - 1 in
    let init =
      match Intervals.reg_before intervals head (cmp_index head) v with
      | Iv.Bot -> Iset.empty
      | iv -> Iset.of_iv iv
    in
    let rec go b remaining claimed =
      match arm_shape b with
      | None -> ()
      | Some (v', c, cond, _, fall) ->
        let test = Iset.of_cond cond c in
        let taken = Iset.inter remaining test in
        let overlap = Iset.inter claimed test in
        if Iset.is_empty taken then
          emit b.Mir.Block.label Subsumed_arm
            (Format.asprintf
               "arm %a %a %d can never fire: values reaching it are %a"
               Mir.Reg.pp v' Mir.Cond.pp cond c Iset.pp remaining)
        else begin
          if not (Iset.is_empty overlap) then
            emit b.Mir.Block.label Overlapping_arms
              (Format.asprintf
                 "arm %a %a %d overlaps earlier arms on %a; it only fires for %a"
                 Mir.Reg.pp v' Mir.Cond.pp cond c Iset.pp overlap Iset.pp taken);
          if (not (Iset.is_empty remaining)) && Iset.subset remaining test then
            emit b.Mir.Block.label Branch_always_taken
              (Format.asprintf
                 "arm %a %a %d is taken by every remaining value %a"
                 Mir.Reg.pp v' Mir.Cond.pp cond c Iset.pp remaining)
        end;
        let remaining = Iset.diff remaining test in
        let claimed = Iset.union claimed test in
        (match Mir.Func.find_block_opt fn fall with
        | Some next when chain_continues preds b next v ->
          go next remaining claimed
        | _ -> ())
    in
    go head init Iset.empty
  in
  Mir.Func.iter_blocks fn (fun b ->
      if not (Hashtbl.mem continuation b.Mir.Block.label) then
        match arm_shape b with
        | Some (v, _, _, _, _) when Intervals.reachable intervals b.Mir.Block.label ->
          walk_chain b v
        | _ -> ());
  List.rev !diags

(* --- whole-function checks --------------------------------------------- *)

let check_func fn intervals =
  let arm_diags = check_arms fn intervals in
  let armed = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace armed d.label ()) arm_diags;
  let syntactic = Mir.Func.reachable fn in
  let diags = ref [] in
  let emit label kind message =
    diags := { func = fn.Mir.Func.name; label; kind; message } :: !diags
  in
  Mir.Func.iter_blocks fn (fun b ->
      let label = b.Mir.Block.label in
      if Hashtbl.mem syntactic label && not (Intervals.reachable intervals label)
      then
        emit label Unreachable_block
          "block is statically unreachable: every path to it crosses an \
           infeasible branch edge"
      else if not (Hashtbl.mem armed label) then
        match (b.Mir.Block.term.Mir.Block.kind, Intervals.branch_fate intervals b) with
        | Mir.Block.Br (cond, _, _), `Always_taken ->
          emit label Branch_always_taken
            (Format.asprintf "branch %a is always taken:%s" Mir.Cond.pp cond
               (match Intervals.cc_at_term intervals b with
               | Some (a, bv) ->
                 Format.asprintf " operands are %a and %a" Iv.pp a Iv.pp bv
               | None -> ""))
        | Mir.Block.Br (cond, _, _), `Never_taken ->
          emit label Branch_never_taken
            (Format.asprintf "branch %a is never taken:%s" Mir.Cond.pp cond
               (match Intervals.cc_at_term intervals b with
               | Some (a, bv) ->
                 Format.asprintf " operands are %a and %a" Iv.pp a Iv.pp bv
               | None -> ""))
        | _ -> ());
  List.rev !diags @ arm_diags

let check_program p =
  List.concat_map
    (fun fn -> check_func fn (Intervals.analyze fn))
    p.Mir.Program.funcs

(* --- static-vs-trained divergence -------------------------------------- *)

(* Unlike the families above this one is {e advisory}, not proved: the
   static heuristics predict a direction, a trained profile observed
   one, and the diagnostic flags two-way branches where they firmly
   disagree.  It never feeds the fuzzer's trace cross-check. *)

let divergence ?(min_count = 8) ?(margin = 0.1) (p : Mir.Program.t) ~observed =
  List.concat_map
    (fun (fn : Mir.Func.t) ->
      let heur = Heur.analyze fn in
      let diags = ref [] in
      Mir.Func.iter_blocks fn (fun b ->
          match b.Mir.Block.term.Mir.Block.kind with
          | Mir.Block.Br (_, taken, fall) when not (String.equal taken fall) -> (
            match observed ~func:fn.Mir.Func.name ~label:b.Mir.Block.label with
            | Some (t, nt) when t + nt >= min_count ->
              let predicted = Heur.taken_prob heur b.Mir.Block.label in
              let measured = float_of_int t /. float_of_int (t + nt) in
              if
                predicted -. 0.5 >= margin && 0.5 -. measured >= margin
                || 0.5 -. predicted >= margin && measured -. 0.5 >= margin
              then
                diags :=
                  {
                    func = fn.Mir.Func.name;
                    label = b.Mir.Block.label;
                    kind = Prediction_diverges;
                    message =
                      Printf.sprintf
                        "static prediction says taken with p=%.2f, but the \
                         trained profile observed %d taken / %d fall-through \
                         (%.0f%% taken)"
                        predicted t nt (100. *. measured);
                  }
                  :: !diags
            | _ -> ())
          | _ -> ());
      List.rev !diags)
    p.Mir.Program.funcs

let pp_diag ppf d =
  Format.fprintf ppf "%s:%s: [%s] %s" d.func d.label (kind_name d.kind)
    d.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json diags =
  let b = Buffer.create 256 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"func\": \"%s\", \"label\": \"%s\", \"kind\": \"%s\", \
            \"message\": \"%s\"}"
           (json_escape d.func) (json_escape d.label)
           (kind_name d.kind) (json_escape d.message)))
    diags;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
