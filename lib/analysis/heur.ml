(* Static branch-probability heuristics in the Ball–Larus / Wu–Larus
   style, adapted to MIR's condition-code machine.  Each heuristic
   contributes one piece of evidence — a probability that the branch's
   taken edge is taken — and the pieces are fused by Dempster–Shafer
   evidence combination (Wu–Larus Eq. 1), with 0.5 the neutral
   element.  The fused probabilities feed [Freq] and, through
   [Reorder.Profiles.of_static], the whole reorder pipeline. *)

type evidence = {
  ev_heur : string;  (* stable kebab-case heuristic name *)
  ev_taken : float;  (* P(taken edge) under this heuristic alone *)
}

type t = {
  table : (string, evidence list) Hashtbl.t;  (* per Br block label *)
}

(* per-heuristic taken-edge probabilities: the literature's measured hit
   rates on whole-program suites (Ball–Larus Table 4, Wu–Larus
   Table 1), unit-tested in isolation in test_static *)
let p_loop_branch = 0.88  (* a back edge is taken *)
let p_loop_exit = 0.20    (* an edge leaving the innermost loop is taken *)
let p_opcode = 0.16       (* v = c / v < 0 / v <= 0 succeeds *)
let p_guard = 0.22        (* the edge into a trap-guarded block is taken *)
let p_call = 0.22         (* the edge into a calling block is taken *)
let p_return = 0.28       (* the edge into a returning block is taken *)
let p_store = 0.45        (* the edge into a storing block is taken *)

(* Dempster–Shafer combination for a two-hypothesis frame *)
let combine p1 p2 =
  let d = (p1 *. p2) +. ((1. -. p1) *. (1. -. p2)) in
  if d <= 0. then 0.5 else p1 *. p2 /. d

let fuse evs = List.fold_left (fun p ev -> combine p ev.ev_taken) 0.5 evs

(* the compare whose condition codes the terminator consumes: the last
   [Cmp] of the block, provided no [Call] follows it (a callee may
   re-set the codes); cc-reuse blocks without their own compare yield
   nothing and skip the opcode evidence *)
let own_cmp (b : Mir.Block.t) =
  let rec scan = function
    | Mir.Insn.Cmp (a, c) :: _ -> Some (a, c)
    | Mir.Insn.Call _ :: _ -> None
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (List.rev b.Mir.Block.insns)

let block_has fn label pred =
  match Mir.Func.find_block_opt fn label with
  | Some b -> List.exists pred b.Mir.Block.insns
  | None -> false

let block_returns fn label =
  match Mir.Func.find_block_opt fn label with
  | Some b -> (
    match b.Mir.Block.term.Mir.Block.kind with
    | Mir.Block.Ret _ -> true
    | _ -> false)
  | None -> false

let is_trapping = function
  | Mir.Insn.Binop ((Mir.Insn.Div | Mir.Insn.Rem), _, _, d) -> (
    (* a constant nonzero divisor cannot trap; anything else may *)
    match d with Mir.Operand.Imm k -> k = 0 | Mir.Operand.Reg _ -> true)
  | _ -> false

let is_call = function Mir.Insn.Call _ -> true | _ -> false
let is_store = function Mir.Insn.Store _ -> true | _ -> false

(* apply a successor-property heuristic: evidence only when exactly one
   of the two edges triggers (both or neither discriminates nothing) *)
let succ_evidence ~name ~p ~taken_hit ~fall_hit =
  match (taken_hit, fall_hit) with
  | true, false -> Some { ev_heur = name; ev_taken = p }
  | false, true -> Some { ev_heur = name; ev_taken = 1. -. p }
  | _ -> None

let branch_evidence fn loops post (b : Mir.Block.t) cond taken fall =
  let label = b.Mir.Block.label in
  let postdominates succ = Dom.dominates post succ label in
  let back dst = Loops.is_back_edge loops ~src:label ~dst in
  let collect = ref [] in
  let add ev = collect := ev :: !collect in
  (* loop branch: a back edge is taken (paper's most reliable signal) *)
  (match
     succ_evidence ~name:"loop-branch" ~p:p_loop_branch
       ~taken_hit:(back taken) ~fall_hit:(back fall)
   with
  | Some ev -> add ev
  | None ->
    (* loop exit: an edge leaving the innermost enclosing loop is
       avoided; only when neither edge is a back edge (back edges are
       already decided above, and stronger) *)
    if not (back taken || back fall) then (
      match Loops.innermost loops label with
      | Some l -> (
        let leaves dst = not (Loops.in_body l dst) in
        match
          succ_evidence ~name:"loop-exit" ~p:p_loop_exit
            ~taken_hit:(leaves taken) ~fall_hit:(leaves fall)
        with
        | Some ev -> add ev
        | None -> ())
      | None -> ()));
  (* opcode: normalize the compare to [v cond' c] (honouring swapped
     operands) and predict equality / negative tests to fail *)
  (match own_cmp b with
  | Some (a, c) -> (
    let normalized =
      match (a, c) with
      | Mir.Operand.Reg _, Mir.Operand.Imm k -> Some (cond, Some k)
      | Mir.Operand.Imm k, Mir.Operand.Reg _ -> Some (Mir.Cond.swap cond, Some k)
      | Mir.Operand.Reg _, Mir.Operand.Reg _ -> Some (cond, None)
      | Mir.Operand.Imm _, Mir.Operand.Imm _ -> None
    in
    match normalized with
    | Some (c', k) -> (
      let ev p = add { ev_heur = "opcode"; ev_taken = p } in
      match (c', k) with
      | Mir.Cond.Eq, _ -> ev p_opcode
      | Mir.Cond.Ne, _ -> ev (1. -. p_opcode)
      | (Mir.Cond.Lt | Mir.Cond.Le), Some 0 -> ev p_opcode
      | (Mir.Cond.Gt | Mir.Cond.Ge), Some 0 -> ev (1. -. p_opcode)
      | _ -> ())
    | None -> ())
  | None -> ());
  (* successor-property heuristics, each guarded by postdomination: an
     edge into a block every path crosses anyway predicts nothing *)
  let succ_prop name p pred =
    let hit dst = block_has fn dst pred && not (postdominates dst) in
    match succ_evidence ~name ~p ~taken_hit:(hit taken) ~fall_hit:(hit fall) with
    | Some ev -> add ev
    | None -> ()
  in
  succ_prop "guard" p_guard is_trapping;
  succ_prop "call" p_call is_call;
  succ_prop "store" p_store is_store;
  (* return: a successor that immediately returns is avoided *)
  (let ret dst = block_returns fn dst && not (postdominates dst) in
   match
     succ_evidence ~name:"return" ~p:p_return ~taken_hit:(ret taken)
       ~fall_hit:(ret fall)
   with
  | Some ev -> add ev
  | None -> ());
  List.rev !collect

let analyze ?loops ?post fn =
  let loops = match loops with Some l -> l | None -> Loops.analyze fn in
  let post = match post with Some p -> p | None -> Dom.compute_post fn in
  let table = Hashtbl.create 32 in
  Mir.Func.iter_blocks fn (fun b ->
      match b.Mir.Block.term.Mir.Block.kind with
      | Mir.Block.Br (cond, taken, fall) when not (String.equal taken fall) ->
        Hashtbl.replace table b.Mir.Block.label
          (branch_evidence fn loops post b cond taken fall)
      | _ -> ());
  { table }

let evidence t label =
  Option.value ~default:[] (Hashtbl.find_opt t.table label)

let taken_prob t label =
  match Hashtbl.find_opt t.table label with
  | Some evs -> fuse evs
  | None -> 0.5
