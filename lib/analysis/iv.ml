type t = Bot | Iv of int * int

let ninf = min_int
let pinf = max_int

let top = Iv (ninf, pinf)
let bot = Bot
let const c = Iv (c, c)
let make lo hi = if lo > hi then Bot else Iv (lo, hi)
let is_bot v = v = Bot
let is_const = function Iv (lo, hi) when lo = hi -> Some lo | _ -> None
let mem x = function Bot -> false | Iv (lo, hi) -> lo <= x && x <= hi
let equal a b = a = b

let subset a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Iv (al, ah), Iv (bl, bh) -> bl <= al && ah <= bh

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Iv (al, ah), Iv (bl, bh) -> Iv (min al bl, max ah bh)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (al, ah), Iv (bl, bh) -> make (max al bl) (min ah bh)

let widen old next =
  match (old, next) with
  | Bot, x -> x
  | x, Bot -> x
  | Iv (ol, oh), Iv (nl, nh) ->
    Iv ((if nl < ol then ninf else nl), if nh > oh then pinf else nh)

(* bound arithmetic: the infinities absorb, finite sums saturate *)
let add_bound a b =
  if a = ninf || b = ninf then ninf
  else if a = pinf || b = pinf then pinf
  else
    let s = a + b in
    if a > 0 && b > 0 && s < 0 then pinf
    else if a < 0 && b < 0 && s >= 0 then ninf
    else s

let neg_bound x = if x = ninf then pinf else if x = pinf then ninf else -x

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (al, ah), Iv (bl, bh) -> Iv (add_bound al bl, add_bound ah bh)

let neg = function Bot -> Bot | Iv (lo, hi) -> Iv (neg_bound hi, neg_bound lo)
let sub a b = add a (neg b)

let mul_bound a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then if (a > 0) = (b > 0) then pinf else ninf else p

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (al, ah), Iv (bl, bh) ->
    if al = ninf || ah = pinf || bl = ninf || bh = pinf then top
    else begin
      let ps = [ mul_bound al bl; mul_bound al bh; mul_bound ah bl; mul_bound ah bh ] in
      Iv (List.fold_left min pinf ps, List.fold_left max ninf ps)
    end

let rem a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (al, ah), _ -> (
    match is_const b with
    | Some c when c <> 0 && c <> ninf && c <> pinf ->
      let m = abs c - 1 in
      if al >= -m && ah <= m then a (* |x| < |c|: the remainder is x itself *)
      else if al >= 0 then Iv (0, m)
      else if ah <= 0 then Iv (-m, 0)
      else Iv (-m, m)
    | _ -> top)

let logical_not v =
  match v with
  | Bot -> Bot
  | _ ->
    if not (mem 0 v) then const 0
    else if is_const v = Some 0 then const 1
    else Iv (0, 1)

let of_cond cond c =
  match cond with
  | Mir.Cond.Eq -> const c
  | Mir.Cond.Ne -> top (* a punctured line is not an interval *)
  | Mir.Cond.Lt -> if c = ninf then Bot else Iv (ninf, c - 1)
  | Mir.Cond.Le -> Iv (ninf, c)
  | Mir.Cond.Gt -> if c = pinf then Bot else Iv (c + 1, pinf)
  | Mir.Cond.Ge -> Iv (c, pinf)

let always cond a b =
  match (a, b) with
  | Bot, _ | _, Bot -> false
  | Iv (al, ah), Iv (bl, bh) -> (
    match cond with
    | Mir.Cond.Eq -> al = ah && bl = bh && al = bl
    | Mir.Cond.Ne -> meet a b = Bot
    | Mir.Cond.Lt -> ah < bl
    | Mir.Cond.Le -> ah <= bl
    | Mir.Cond.Gt -> al > bh
    | Mir.Cond.Ge -> al >= bh)

let never cond a b =
  match (a, b) with
  | Bot, _ | _, Bot -> false
  | _ -> always (Mir.Cond.negate cond) a b

let pp ppf v =
  match v with
  | Bot -> Format.pp_print_string ppf "_|_"
  | Iv (lo, hi) ->
    let b ppf x =
      if x = ninf then Format.pp_print_string ppf "-oo"
      else if x = pinf then Format.pp_print_string ppf "+oo"
      else Format.pp_print_int ppf x
    in
    if lo = hi then Format.fprintf ppf "[%a]" b lo
    else Format.fprintf ppf "[%a,%a]" b lo b hi

let show v = Format.asprintf "%a" pp v
