(** Natural loop nests on {!Mir} functions.

    Back edges are edges [t -> h] where [h] dominates [t] (via
    {!Dom}); each header's natural loop is the predecessor closure of
    its back-edge tails, restricted to reachable blocks.  On top of the
    bare loops this records the nesting structure — depth, parent,
    innermost loop of a block — which {!Heur} (loop branch / loop exit
    heuristics) and {!Freq} (innermost-first propagation order, one
    cyclic multiplier per header) both consume. *)

type loop = {
  l_header : string;
  l_body : string list;       (** layout order, header included *)
  l_back_edges : string list; (** tails of the back edges into the header *)
  l_depth : int;              (** 1 = outermost *)
  l_parent : string option;   (** header of the directly enclosing loop *)
}

type t

val analyze : Mir.Func.t -> t

val loops : t -> loop list
(** Layout order of the headers. *)

val innermost_first : t -> loop list
(** Deepest first — the propagation order of {!Freq}. *)

val header : t -> string -> loop option
(** The loop headed at a label, if any. *)

val is_header : t -> string -> bool
val is_back_edge : t -> src:string -> dst:string -> bool

val depth : t -> string -> int
(** Number of loops whose body contains the label (0 = not in a loop). *)

val innermost : t -> string -> loop option
(** Smallest loop containing the label. *)

val in_body : loop -> string -> bool
