(** The two-compilation-pass process of the paper's Figure 2.

    Pass 1: front end, switch lowering under the configured heuristic
    set, conventional optimizations, sequence detection, profiling
    instrumentation, and a training run.  Pass 2: reordering driven by
    the profile, cleanup reinvocation, delay-slot filling.  The original
    (non-reordered) version is finalized from the same optimized base and
    both are measured on the test input, with every configured branch
    predictor attached.

    The outputs of the two versions are compared; a mismatch raises
    [Failure] (it would mean the transformation changed semantics). *)

type version = {
  v_program : Mir.Program.t;
  v_static_insns : int;
  v_counters : Sim.Counters.t;
  v_output : string;
  v_exit_code : int;
  v_mispredicts : ((int * int * int) * int) list;
      (** per predictor configuration *)
  v_cycles : (string * int) list;  (** per cycle-model machine *)
}

type result = {
  r_name : string;
  r_config : Config.t;
  r_seqs : Reorder.Detect.t list;
  r_report : Reorder.Pass.report;
  r_verify : Check.Verify.summary option;
      (** translation-validation summary when {!Config.t.verify} is set
          (the pipeline has already failed if it contains errors) *)
  r_comb : (Reorder.Common_succ.run * Reorder.Common_succ.outcome) list;
  r_pairs : (Reorder.Common_succ.pair * Reorder.Common_succ.outcome) list;
      (** Figure 14(d)-(e) super-branch pairs, when [common_succ] is on *)
  r_stats : Reorder.Stats.t;
  r_original : version;
  r_reordered : version;
}

val compile_base : Config.t -> string -> Mir.Program.t
(** Front end + switch lowering + conventional optimizations (no
    reordering, no delay slots). *)

(** {2 Cache-aware entry points}

    The serving daemon ({!Server}) caches each stage's artifact by
    content hash and re-runs later stages alone — re-optimizing a
    program against merged live profiles must not re-parse or
    re-detect — so the batch pipeline's stages are also exposed one at
    a time.  {!run} is built from the same pieces. *)

val detect_seqs : Config.t -> Mir.Program.t -> Reorder.Detect.t list
(** Sequence detection on an optimized base ([] when reordering is
    disabled), honoring {!Config.t.analysis_facts}. *)

val instrument : Config.t -> Mir.Program.t -> Reorder.Detect.t list ->
  Mir.Program.t * Sim.Profile.t
(** Clone the base and splice profiling pseudo-instructions at every
    sequence head; the returned table has a zeroed counter set
    registered per sequence (run the clone with [~profile] to fill it,
    or {!Sim.Profile.copy_shape} it into per-domain shards). *)

val reoptimize :
  Config.t -> name:string -> Mir.Program.t -> Reorder.Detect.t list ->
  Sim.Profile.t -> Mir.Program.t * Reorder.Pass.report
(** Clone the base, run the reordering pass under [table]'s counts
    (translation-validating when {!Config.t.verify} is set), finalize
    (cleanup + delay slots) and validate.  Returns the servable program
    and the pass report.  Unlike {!run} this performs no training run,
    no measurement, and no common-successor rewrites: it is the
    re-optimization step of a daemon that already owns live profiles. *)

val measure :
  Config.t -> ?bank:Sim.Predictor.bank -> Mir.Program.t -> input:string ->
  version
(** Measure one finalized program on an input under the configured
    execution backend, driving every configured predictor through a
    prebuilt {!Sim.Predictor.bank} (the compiled backend's fused sink —
    no allocation per branch event).  Pass [bank] to reuse one bank
    across several measurements; it is reset on entry. *)

val run :
  ?config:Config.t ->
  ?on_stage:(string -> float -> unit) ->
  name:string ->
  source:string ->
  training_input:string ->
  test_input:string ->
  unit ->
  result
(** [on_stage] is called after each pipeline stage with its name
    ([compile], [detect], [train], [reorder], [cleanup], [measure]) and
    its wall-clock duration in seconds (the [bromc --timings] hook). *)

val pct : int -> int -> float
(** [pct original changed] is the percentage change, e.g. [-7.91]. *)

(** {2 Parallel measurement jobs}

    A [job] is a self-contained, pure description of one pipeline run:
    inputs are plain strings (force lazies before building jobs) and the
    pipeline touches no global mutable state, so jobs can execute on any
    domain.  [run_jobs] fans them out over a bounded {!Pool} and returns
    results in job order with per-job wall-clock seconds. *)

type job = {
  job_name : string;
  job_config : Config.t;
  job_source : string;
  job_training_input : string;
  job_test_input : string;
}

val job :
  ?config:Config.t ->
  name:string ->
  source:string ->
  training_input:string ->
  test_input:string ->
  unit ->
  job

val run_job : job -> result
(** [run_job j] is {!run} on [j]'s fields, in the calling domain. *)

val run_jobs : ?domains:int -> job list -> (result * float) list
(** Deterministic: results are in job order whatever the schedule;
    [domains] defaults to {!Pool.default_domains}.  Fail-fast: the first
    failing job aborts the whole batch with {!Pool.Job_error} — use
    {!run_jobs_guarded} to keep going. *)

(** {2 Guarded execution}

    The fault-tolerant runner: every job ends in a structured
    {!job_outcome} (never an exception), under a {!Guard.policy} of
    per-attempt watchdog deadlines and bounded seeded retries, plus
    backend graceful degradation — a job whose [`Native] attempts crash
    (including {!Sim.Native.Unavailable}: no ocamlfind, codegen or
    dynlink failure) is retried under [`Compiled], then [`Predecoded]
    and finally [`Reference], and the divergence is recorded.  Traps
    and timeouts are final: they are properties of the simulated
    program and the deadline, identical on every backend, so degrading
    cannot help. *)

exception Wrong_result of string
(** Raised (and contained by the guard as a retryable crash) when the
    post-run observables re-check fails: the reordered version's output
    or exit code diverged from the original's outside the pipeline's own
    internal comparison.  This is the detection layer for wrong-result
    faults. *)

type job_outcome = {
  o_index : int;       (** 0-based position in the submitted job list *)
  o_name : string;
  o_outcome : result Pool.outcome;
  o_attempts : int;    (** total attempts across all backend rungs *)
  o_retried : int;     (** [o_attempts - 1] *)
  o_backend : string;  (** backend that produced the final outcome *)
  o_degraded : bool;   (** served by a lower rung than requested *)
  o_errors : string list;  (** one line per failed attempt, oldest first *)
  o_injected : string; (** {!Inject.kind_name} of a planted fault; [""] *)
  o_seconds : float;   (** wall clock including retries and backoff *)
}

val run_guarded_job :
  ?fault:Inject.fault -> index:int -> policy:Guard.policy -> job -> job_outcome
(** Run one job in the calling domain under the full containment stack.
    [fault] (tests and the [--inject] harness) is armed only on attempts
    against the job's requested backend, so degradation recovers from
    persistent kinds and retries recover from transient ones. *)

val run_jobs_guarded :
  ?domains:int ->
  ?policy:Guard.policy ->
  ?inject:Inject.fault list ->
  job list ->
  job_outcome list
(** Fan {!run_guarded_job} over a bounded {!Pool}; job order is
    preserved and no job's failure can abort or disturb a sibling. *)

val manifest_of_outcome : job_outcome -> Manifest.entry
(** The failure-manifest row for one job outcome ([--failures-json]). *)
