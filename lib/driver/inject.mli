(** Seeded fault-injection plans for certifying job isolation.

    {!plan} draws a deterministic set of faults (distinct victim jobs,
    all five kinds cycled) for a run of [jobs] jobs;
    {!Pipeline.run_jobs_guarded} arms each fault on its victim's
    attempts against the originally-requested backend only, so retries
    (transient raises) and backend degradation (persistent faults) have
    a real recovery path.  The tests and the CI smoke job assert that
    every planted fault is contained: attributed to its job id in the
    outcome list and failure manifest, with every sibling's result
    intact. *)

type kind =
  | Raise      (** exception thrown inside the worker *)
  | Trap       (** simulated-program trap *)
  | Fuel       (** fuel exhaustion (tiny instruction budget) *)
  | Deadline   (** watchdog exhaustion (cancellation flag forced on) *)
  | Corrupt    (** wrong-result corruption of the job's observables *)

val all_kinds : kind list

val kind_name : kind -> string
(** Stable machine-readable tag ("raise", "trap", "fuel", "deadline",
    "corrupt") used in manifests. *)

type fault = {
  i_job : int;          (** victim job index *)
  i_kind : kind;
  i_transient : bool;
      (** fault only the first attempt on the requested backend, so a
          bounded retry recovers (only ever set for {!Raise}) *)
}

exception Injected of int
(** What a {!Raise} fault throws, carrying the victim job id. *)

val pp_fault : Format.formatter -> fault -> unit

val plan : seed:int -> jobs:int -> count:int -> fault list
(** [plan ~seed ~jobs ~count] draws [min count jobs] faults against
    distinct victim jobs, deterministically in [seed].  Kinds are cycled
    in {!all_kinds} order so every class appears whenever
    [count >= 5]. *)

val find : fault list -> job:int -> fault option

(** {1 Server-level chaos plans}

    The serving counterpart of {!plan}: seeded faults against a
    {!Server} under {!Replay} traffic.  {!S_kill_worker} and {!S_stall}
    strike {e inside} the victim request's guarded closure (via
    {!Server.submit}'s [inject] hook), so the retry/degradation ladder
    recovers them; the other three damage the environment — artifact
    store bytes, the durability journal's tail — just before the victim
    request fires, so the self-healing store and the torn-tail-tolerant
    {!State} reader recover under live load.  The certification bar is
    the same as for jobs: zero wrong results, zero escapes. *)

type server_kind =
  | S_kill_worker  (** exception thrown inside the serving closure *)
  | S_stall  (** the attempt stalls past the per-request deadline *)
  | S_corrupt_artifact  (** bytes of a cached [.cmxs] flipped on disk *)
  | S_truncate_artifact  (** a cached [.cmxs] truncated on disk *)
  | S_tear_journal  (** the durability journal's tail torn mid-record *)

val all_server_kinds : server_kind list

val server_kind_name : server_kind -> string
(** Stable tag ("kill_worker", "stall", "corrupt_artifact",
    "truncate_artifact", "tear_journal") used in chaos reports. *)

type server_fault = { sv_request : int; sv_kind : server_kind }

val pp_server_fault : Format.formatter -> server_fault -> unit

val server_plan : seed:int -> requests:int -> count:int -> server_fault list
(** [min count requests] faults against distinct victim requests,
    deterministic in [seed], kinds cycled in {!all_server_kinds} order
    (every class appears whenever [count >= 5]), sorted by request
    index. *)

val server_find : server_fault list -> request:int -> server_fault option
