(** Seeded fault-injection plans for certifying job isolation.

    {!plan} draws a deterministic set of faults (distinct victim jobs,
    all five kinds cycled) for a run of [jobs] jobs;
    {!Pipeline.run_jobs_guarded} arms each fault on its victim's
    attempts against the originally-requested backend only, so retries
    (transient raises) and backend degradation (persistent faults) have
    a real recovery path.  The tests and the CI smoke job assert that
    every planted fault is contained: attributed to its job id in the
    outcome list and failure manifest, with every sibling's result
    intact. *)

type kind =
  | Raise      (** exception thrown inside the worker *)
  | Trap       (** simulated-program trap *)
  | Fuel       (** fuel exhaustion (tiny instruction budget) *)
  | Deadline   (** watchdog exhaustion (cancellation flag forced on) *)
  | Corrupt    (** wrong-result corruption of the job's observables *)

val all_kinds : kind list

val kind_name : kind -> string
(** Stable machine-readable tag ("raise", "trap", "fuel", "deadline",
    "corrupt") used in manifests. *)

type fault = {
  i_job : int;          (** victim job index *)
  i_kind : kind;
  i_transient : bool;
      (** fault only the first attempt on the requested backend, so a
          bounded retry recovers (only ever set for {!Raise}) *)
}

exception Injected of int
(** What a {!Raise} fault throws, carrying the victim job id. *)

val pp_fault : Format.formatter -> fault -> unit

val plan : seed:int -> jobs:int -> count:int -> fault list
(** [plan ~seed ~jobs ~count] draws [min count jobs] faults against
    distinct victim jobs, deterministically in [seed].  Kinds are cycled
    in {!all_kinds} order so every class appears whenever
    [count >= 5]. *)

val find : fault list -> job:int -> fault option
