(* Seeded fault injection for certifying job isolation.

   A plan assigns at most one fault to each victim job; the guarded
   runner ({!Pipeline.run_jobs_guarded}) arms the fault only on attempts
   against the job's originally-requested backend, so the retry and
   degradation machinery has something real to recover from.  Every
   fault must end up contained: attributed to its job in the outcome
   list (and failure manifest) without disturbing any sibling. *)

type kind =
  | Raise      (* an exception thrown inside the worker *)
  | Trap       (* a simulated-program trap *)
  | Fuel       (* fuel exhaustion: the attempt runs with a tiny budget *)
  | Deadline   (* watchdog exhaustion: the cancellation flag is forced *)
  | Corrupt    (* wrong-result corruption of the job's observables *)

let all_kinds = [ Raise; Trap; Fuel; Deadline; Corrupt ]

let kind_name = function
  | Raise -> "raise"
  | Trap -> "trap"
  | Fuel -> "fuel"
  | Deadline -> "deadline"
  | Corrupt -> "corrupt"

type fault = {
  i_job : int;
  i_kind : kind;
  i_transient : bool;
      (* only the first attempt faults; a retry on the same backend
         succeeds (models a transient failure) *)
}

exception Injected of int
(* the [Raise] fault, carrying the victim job id *)

let pp_fault ppf f =
  Format.fprintf ppf "job %d: %s%s" f.i_job (kind_name f.i_kind)
    (if f.i_transient then " (transient)" else "")

let plan ~seed ~jobs ~count =
  if jobs <= 0 then []
  else begin
    let count = min count jobs in
    let state = ref (((seed * 2_654_435_761) lxor 0x5DEECE6D) land 0x3FFF_FFFF) in
    let next () =
      state := ((!state * 1_103_515_245) + 12345) land 0x3FFF_FFFF;
      !state
    in
    (* seeded Fisher-Yates prefix: distinct victim jobs *)
    let ids = Array.init jobs Fun.id in
    for i = 0 to count - 1 do
      let j = i + (next () mod (jobs - i)) in
      let t = ids.(i) in
      ids.(i) <- ids.(j);
      ids.(j) <- t
    done;
    let kinds = Array.of_list all_kinds in
    List.init count (fun i ->
        (* cycle the kinds so every fault class is exercised whenever
           count >= 5, whatever the seed *)
        let kind = kinds.(i mod Array.length kinds) in
        {
          i_job = ids.(i);
          i_kind = kind;
          (* only [Raise] models a transient failure the retry loop can
             beat; the other kinds persist for the whole rung *)
          i_transient = (match kind with Raise -> next () mod 2 = 0 | _ -> false);
        })
  end

let find plans ~job = List.find_opt (fun f -> f.i_job = job) plans
