(* Seeded fault injection for certifying job isolation.

   A plan assigns at most one fault to each victim job; the guarded
   runner ({!Pipeline.run_jobs_guarded}) arms the fault only on attempts
   against the job's originally-requested backend, so the retry and
   degradation machinery has something real to recover from.  Every
   fault must end up contained: attributed to its job in the outcome
   list (and failure manifest) without disturbing any sibling. *)

type kind =
  | Raise      (* an exception thrown inside the worker *)
  | Trap       (* a simulated-program trap *)
  | Fuel       (* fuel exhaustion: the attempt runs with a tiny budget *)
  | Deadline   (* watchdog exhaustion: the cancellation flag is forced *)
  | Corrupt    (* wrong-result corruption of the job's observables *)

let all_kinds = [ Raise; Trap; Fuel; Deadline; Corrupt ]

let kind_name = function
  | Raise -> "raise"
  | Trap -> "trap"
  | Fuel -> "fuel"
  | Deadline -> "deadline"
  | Corrupt -> "corrupt"

type fault = {
  i_job : int;
  i_kind : kind;
  i_transient : bool;
      (* only the first attempt faults; a retry on the same backend
         succeeds (models a transient failure) *)
}

exception Injected of int
(* the [Raise] fault, carrying the victim job id *)

let pp_fault ppf f =
  Format.fprintf ppf "job %d: %s%s" f.i_job (kind_name f.i_kind)
    (if f.i_transient then " (transient)" else "")

let plan ~seed ~jobs ~count =
  if jobs <= 0 then []
  else begin
    let count = min count jobs in
    let state = ref (((seed * 2_654_435_761) lxor 0x5DEECE6D) land 0x3FFF_FFFF) in
    let next () =
      state := ((!state * 1_103_515_245) + 12345) land 0x3FFF_FFFF;
      !state
    in
    (* seeded Fisher-Yates prefix: distinct victim jobs *)
    let ids = Array.init jobs Fun.id in
    for i = 0 to count - 1 do
      let j = i + (next () mod (jobs - i)) in
      let t = ids.(i) in
      ids.(i) <- ids.(j);
      ids.(j) <- t
    done;
    let kinds = Array.of_list all_kinds in
    List.init count (fun i ->
        (* cycle the kinds so every fault class is exercised whenever
           count >= 5, whatever the seed *)
        let kind = kinds.(i mod Array.length kinds) in
        {
          i_job = ids.(i);
          i_kind = kind;
          (* only [Raise] models a transient failure the retry loop can
             beat; the other kinds persist for the whole rung *)
          i_transient = (match kind with Raise -> next () mod 2 = 0 | _ -> false);
        })
  end

let find plans ~job = List.find_opt (fun f -> f.i_job = job) plans

(* ------------------------------------------------------------------ *)
(* Server-level chaos plans                                            *)
(* ------------------------------------------------------------------ *)

(* The serving counterpart: faults against a {!Server} under replay
   traffic rather than against one batch job.  The first two strike
   inside the victim request's guarded closure; the other three damage
   the environment (artifact store, durability journal) from the
   driver thread just before the victim request fires, so the
   self-healing and torn-tail machinery recover under live load. *)

type server_kind =
  | S_kill_worker  (* exception inside the serving closure *)
  | S_stall        (* the attempt stalls past the request deadline *)
  | S_corrupt_artifact   (* flip bytes of a cached .cmxs on disk *)
  | S_truncate_artifact  (* truncate a cached .cmxs on disk *)
  | S_tear_journal       (* tear the durability journal's tail *)

let all_server_kinds =
  [ S_kill_worker; S_stall; S_corrupt_artifact; S_truncate_artifact;
    S_tear_journal ]

let server_kind_name = function
  | S_kill_worker -> "kill_worker"
  | S_stall -> "stall"
  | S_corrupt_artifact -> "corrupt_artifact"
  | S_truncate_artifact -> "truncate_artifact"
  | S_tear_journal -> "tear_journal"

type server_fault = { sv_request : int; sv_kind : server_kind }

let pp_server_fault ppf f =
  Format.fprintf ppf "request %d: %s" f.sv_request
    (server_kind_name f.sv_kind)

let server_plan ~seed ~requests ~count =
  if requests <= 0 then []
  else begin
    let count = min count requests in
    let state = ref (((seed * 2_654_435_761) lxor 0x2545F491) land 0x3FFF_FFFF) in
    let next () =
      state := ((!state * 1_103_515_245) + 12345) land 0x3FFF_FFFF;
      !state
    in
    let ids = Array.init requests Fun.id in
    for i = 0 to count - 1 do
      let j = i + (next () mod (requests - i)) in
      let t = ids.(i) in
      ids.(i) <- ids.(j);
      ids.(j) <- t
    done;
    let kinds = Array.of_list all_server_kinds in
    List.init count (fun i ->
        { sv_request = ids.(i); sv_kind = kinds.(i mod Array.length kinds) })
    |> List.sort (fun a b -> compare a.sv_request b.sv_request)
  end

let server_find plans ~request =
  List.find_opt (fun f -> f.sv_request = request) plans
