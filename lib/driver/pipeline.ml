type version = {
  v_program : Mir.Program.t;
  v_static_insns : int;
  v_counters : Sim.Counters.t;
  v_output : string;
  v_exit_code : int;
  v_mispredicts : ((int * int * int) * int) list;
  v_cycles : (string * int) list;
}

type result = {
  r_name : string;
  r_config : Config.t;
  r_seqs : Reorder.Detect.t list;
  r_report : Reorder.Pass.report;
  r_verify : Check.Verify.summary option;
  r_comb : (Reorder.Common_succ.run * Reorder.Common_succ.outcome) list;
  r_pairs : (Reorder.Common_succ.pair * Reorder.Common_succ.outcome) list;
  r_stats : Reorder.Stats.t;
  r_original : version;
  r_reordered : version;
}

let pct original changed =
  if original = 0 then 0.0
  else 100.0 *. float_of_int (changed - original) /. float_of_int original

let compile_base (config : Config.t) source =
  let prog = Minic.Lower.compile source in
  Mopt.Switch_lower.lower_program config.Config.heuristic prog;
  Mopt.Cleanup.run prog;
  if config.Config.validate then Mir.Validate.check prog;
  prog

let sim_config (config : Config.t) =
  {
    Sim.Machine.default_config with
    Sim.Machine.fuel = config.Config.fuel;
    Sim.Machine.cancel = config.Config.cancel;
  }

(* run a program under the configured execution backend; when the caller
   already holds the pre-decoded image, the fast backends reuse it
   instead of lowering a second time *)
let run_backend (config : Config.t) ?profile ?on_branch ?image prog ~input =
  let sc = sim_config config in
  match config.Config.backend with
  | `Reference -> Sim.Machine.run_reference ~config:sc ?profile ?on_branch prog ~input
  | `Predecoded ->
    let img = match image with Some i -> i | None -> Sim.Image.build prog in
    Sim.Machine.run_image ~config:sc ?profile ?on_branch img ~input
  | `Compiled ->
    let img = match image with Some i -> i | None -> Sim.Image.build prog in
    Sim.Compiled.run_image ~config:sc ?profile ?on_branch img ~input
  | `Native ->
    let img = match image with Some i -> i | None -> Sim.Image.build prog in
    Sim.Native.run_image ~config:sc ?profile ?on_branch
      ?cache_dir:config.Config.native_cache_dir
      ~use_cache:config.Config.native_cache img ~input

(* profile-guided layout: run the training input once more against this
   very binary (layouts need edge frequencies of the final CFG, which
   the instrumentation run's clone cannot provide), then place hot arms
   on the fall-through path *)
let apply_profile_layout (config : Config.t) prog ~training_input =
  Mopt.Delay_slot.strip prog;
  (* one lowering serves both the site names and the run itself *)
  let image = Sim.Image.build prog in
  let site_names = Sim.Image.sites image in
  let tables : (string, Mopt.Profile_layout.counts) Hashtbl.t =
    Hashtbl.create 8
  in
  let on_branch ~site ~taken =
    let func, label = site_names.(site) in
    let counts =
      match Hashtbl.find_opt tables func with
      | Some c -> c
      | None ->
        let c = Hashtbl.create 16 in
        Hashtbl.replace tables func c;
        c
    in
    let t, nt =
      match Hashtbl.find_opt counts label with Some x -> x | None -> (0, 0)
    in
    Hashtbl.replace counts label
      (if taken then (t + 1, nt) else (t, nt + 1))
  in
  let _ = run_backend config ~on_branch ~image prog ~input:training_input in
  ignore (Mopt.Profile_layout.run prog tables)

(* measure a finalized program on the test input with all predictors.
   The predictors live in a prebuilt {!Sim.Predictor.bank}: the compiled
   backend drives it through its fused sink (no allocation per branch
   event), the others through a single closure.  Callers measuring
   several versions can pass one [bank] to reuse across calls — it is
   reset here. *)
let measure (config : Config.t) ?bank prog ~input =
  let bank =
    match bank with
    | Some b ->
      Sim.Predictor.bank_reset b;
      b
    | None -> Sim.Predictor.bank config.Config.predictors
  in
  let sc = sim_config config in
  let result =
    match config.Config.backend with
    | `Compiled ->
      Sim.Compiled.exec ~config:sc
        ~sink:(Sim.Predictor.Sink_bank bank)
        (Sim.Compiled.compile (Sim.Image.build prog))
        ~input
    | `Native ->
      Sim.Native.run_image ~config:sc
        ~sink:(Sim.Predictor.Sink_bank bank)
        ?cache_dir:config.Config.native_cache_dir
        ~use_cache:config.Config.native_cache (Sim.Image.build prog) ~input
    | `Predecoded ->
      Sim.Machine.run_image ~config:sc
        ~on_branch:(fun ~site ~taken ->
          Sim.Predictor.bank_access bank ~site ~taken)
        (Sim.Image.build prog) ~input
    | `Reference ->
      Sim.Machine.run_reference ~config:sc
        ~on_branch:(fun ~site ~taken ->
          Sim.Predictor.bank_access bank ~site ~taken)
        prog ~input
  in
  let mispredicts = Sim.Predictor.bank_mispredicts bank in
  let cycles =
    List.map
      (fun (m : Sim.Cycle_model.params) ->
        let penalized =
          match m.Sim.Cycle_model.predictor with
          | Some key -> (
            match List.assoc_opt key mispredicts with
            | Some n -> n
            | None ->
              (* the model's predictor was not simulated; fall back to
                 taken branches like the predictor-less machines *)
              result.Sim.Machine.counters.Sim.Counters.taken_branches)
          | None -> result.Sim.Machine.counters.Sim.Counters.taken_branches
        in
        ( m.Sim.Cycle_model.model_name,
          Sim.Cycle_model.cycles m result.Sim.Machine.counters
            ~mispredicts:penalized ))
      Sim.Cycle_model.all_machines
  in
  {
    v_program = prog;
    v_static_insns = Mir.Program.static_insn_count prog;
    v_counters = result.Sim.Machine.counters;
    v_output = result.Sim.Machine.output;
    v_exit_code = result.Sim.Machine.exit_code;
    v_mispredicts = mispredicts;
    v_cycles = cycles;
  }

(* ------------------------------------------------------------------ *)
(* Cache-aware entry points                                            *)
(* ------------------------------------------------------------------ *)

(* the serving daemon caches each stage's artifact by content hash and
   re-runs later stages alone (re-optimization against merged profiles
   must not re-parse or re-detect), so the batch pipeline's stages are
   also exposed one at a time *)

let detect_seqs (config : Config.t) base =
  if config.Config.reorder_enabled then
    Reorder.Detect.find_program ~facts:config.Config.analysis_facts base
  else []

let instrument (config : Config.t) base seqs =
  let train_prog = Mir.Clone.program base in
  let table = Reorder.Profiles.instrument train_prog seqs in
  if config.Config.validate then Mir.Validate.check train_prog;
  (train_prog, table)

let reoptimize (config : Config.t) ~name base seqs table =
  let reord = Mir.Clone.program base in
  let report =
    Reorder.Pass.run ~options:config.Config.apply_options
      ~selector:config.Config.selector
      ~keep_original_default:config.Config.keep_original_default
      ?coalesce_machine:config.Config.coalesce_machine reord seqs table
  in
  if config.Config.verify then begin
    let summary = Check.Verify.certify_report ~before:base ~after:reord report in
    if not (Check.Verify.ok summary) then
      failwith
        (Printf.sprintf "%s: translation validation failed:\n  %s" name
           (String.concat "\n  " (Check.Verify.all_errors summary)))
  end;
  ignore
    (Mopt.Cleanup.finalize ~steal_delay_slots:config.Config.delay_fill_from_target
       reord);
  if config.Config.validate then Mir.Validate.check reord;
  (reord, report)

let run ?(config = Config.default) ?on_stage ~name ~source ~training_input
    ~test_input () =
  let stage label f =
    match on_stage with
    | None -> f ()
    | Some report ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      report label (Unix.gettimeofday () -. t0);
      r
  in
  let base = stage "compile" (fun () -> compile_base config source) in

  (* detection on the optimized base *)
  let seqs, combs, pairs =
    stage "detect" (fun () ->
        let seqs = detect_seqs config base in
        let seq_blocks = Hashtbl.create 64 in
        List.iter
          (fun (s : Reorder.Detect.t) ->
            Hashtbl.replace seq_blocks s.Reorder.Detect.head ();
            List.iter
              (fun (it : Reorder.Detect.item) ->
                List.iter
                  (fun l -> Hashtbl.replace seq_blocks l ())
                  it.Reorder.Detect.item_blocks)
              s.Reorder.Detect.items)
          seqs;
        let combs =
          if config.Config.reorder_enabled && config.Config.common_succ then
            Reorder.Common_succ.find_program
              ~exclude:(Hashtbl.mem seq_blocks)
              ~first_id:1_000_000 base
          else []
        in
        let pairs =
          Reorder.Common_succ.find_pairs base combs ~first_id:2_000_000
        in
        (seqs, combs, pairs))
  in

  (* pass 1: profile — a training run over an instrumented clone, a
     pure static prediction, or training backfilled by prediction *)
  let table =
    stage "train" (fun () ->
        match config.Config.profile with
        | `Static ->
          (* no training run at all: synthesize the counts from the CFG *)
          Reorder.Profiles.of_static base seqs
        | (`Trained | `Both) as mode ->
          let train_prog = Mir.Clone.program base in
          let table = Reorder.Profiles.instrument train_prog seqs in
          Reorder.Common_succ.instrument train_prog combs table;
          Reorder.Common_succ.instrument_pairs train_prog pairs table;
          if config.Config.validate then Mir.Validate.check train_prog;
          let _ =
            run_backend config ~profile:table train_prog ~input:training_input
          in
          if mode = `Both then Reorder.Profiles.add_static base seqs table;
          table)
  in

  (* finalization: with profile layout enabled the frequency-driven
     placement must come after all cleanup (the static repositioner
     would override it), followed only by delay-slot filling *)
  let finalize prog =
    if config.Config.profile_layout then begin
      Mopt.Cleanup.run prog;
      Reorder.Profiles.strip prog;
      apply_profile_layout config prog ~training_input;
      ignore
        (Mopt.Delay_slot.run ~steal:config.Config.delay_fill_from_target prog)
    end
    else
      ignore
        (Mopt.Cleanup.finalize
           ~steal_delay_slots:config.Config.delay_fill_from_target prog)
  in

  (* pass 2: reorder a clone of the base *)
  let reord = Mir.Clone.program base in
  let report, verify, comb_outcomes, pair_outcomes =
    stage "reorder" (fun () ->
        let report =
          Reorder.Pass.run ~options:config.Config.apply_options
            ~selector:config.Config.selector
            ~keep_original_default:config.Config.keep_original_default
            ?coalesce_machine:config.Config.coalesce_machine reord seqs table
        in
        (* translation validation must look at the pass's output before
           the common-successor rewrites and cleanup reshape the blocks *)
        let verify =
          if config.Config.verify then begin
            let summary =
              Check.Verify.certify_report ~before:base ~after:reord report
            in
            if not (Check.Verify.ok summary) then
              failwith
                (Printf.sprintf "%s: translation validation failed:\n  %s" name
                   (String.concat "\n  " (Check.Verify.all_errors summary)));
            Some summary
          end
          else None
        in
        (* within-run permutations first (they re-emit each run's edges from
           the run record), then super-branch pair swaps, which relink those
           edges between the groups *)
        let comb_outcomes =
          List.map (fun r -> (r, Reorder.Common_succ.apply reord table r)) combs
        in
        let pair_outcomes =
          List.map
            (fun pr -> (pr, Reorder.Common_succ.apply_pair reord table pr))
            pairs
        in
        (report, verify, comb_outcomes, pair_outcomes))
  in

  (* cleanup + finalization of both versions (the original is finalized
     from the same optimized base, untransformed) *)
  let orig = Mir.Clone.program base in
  stage "cleanup" (fun () ->
      finalize orig;
      if config.Config.validate then Mir.Validate.check orig;
      finalize reord;
      if config.Config.validate then Mir.Validate.check reord);

  let original, reordered =
    stage "measure" (fun () ->
        (* one bank serves both versions (reset between runs) *)
        let bank = Sim.Predictor.bank config.Config.predictors in
        let original = measure config ~bank orig ~input:test_input in
        let reordered = measure config ~bank reord ~input:test_input in
        (original, reordered))
  in
  if not (String.equal original.v_output reordered.v_output) then
    failwith
      (Printf.sprintf "%s: reordered output differs from original" name);
  if original.v_exit_code <> reordered.v_exit_code then
    failwith (Printf.sprintf "%s: reordered exit code differs" name);
  {
    r_name = name;
    r_config = config;
    r_seqs = seqs;
    r_report = report;
    r_verify = verify;
    r_comb = comb_outcomes;
    r_pairs = pair_outcomes;
    r_stats = Reorder.Stats.of_report report;
    r_original = original;
    r_reordered = reordered;
  }

(* ------------------------------------------------------------------ *)
(* Parallel measurement jobs                                           *)
(* ------------------------------------------------------------------ *)

type job = {
  job_name : string;
  job_config : Config.t;
  job_source : string;
  job_training_input : string;
  job_test_input : string;
}

let job ?(config = Config.default) ~name ~source ~training_input ~test_input ()
    =
  {
    job_name = name;
    job_config = config;
    job_source = source;
    job_training_input = training_input;
    job_test_input = test_input;
  }

let run_job j =
  run ~config:j.job_config ~name:j.job_name ~source:j.job_source
    ~training_input:j.job_training_input ~test_input:j.job_test_input ()

let run_jobs ?domains jobs = Pool.timed_map ?domains run_job jobs

(* ------------------------------------------------------------------ *)
(* Guarded execution: watchdogs, retries, backend degradation          *)
(* ------------------------------------------------------------------ *)

exception Wrong_result of string

type job_outcome = {
  o_index : int;
  o_name : string;
  o_outcome : result Pool.outcome;
  o_attempts : int;
  o_retried : int;
  o_backend : string;
  o_degraded : bool;
  o_errors : string list;
  o_injected : string;
  o_seconds : float;
}

let outcome_ladder : Config.t -> _ = fun config ->
  (* degradation walks from the requested backend down to the reference
     interpreter — the slowest rung, but the one with the least
     machinery to go wrong *)
  match config.Config.backend with
  | `Native -> [ `Native; `Compiled; `Predecoded; `Reference ]
  | `Compiled -> [ `Compiled; `Predecoded; `Reference ]
  | `Predecoded -> [ `Predecoded; `Reference ]
  | `Reference -> [ `Reference ]

(* defense-in-depth re-check of the pipeline's own invariant, outside
   {!run}: this is what catches a wrong-result fault that corrupted the
   observables after the pipeline's internal comparison passed *)
let check_observables name r =
  if
    (not (String.equal r.r_original.v_output r.r_reordered.v_output))
    || r.r_original.v_exit_code <> r.r_reordered.v_exit_code
  then
    raise
      (Wrong_result
         (Printf.sprintf "%s: reordered observables diverge from original" name));
  r

let run_guarded_job ?fault ~index ~policy j =
  let requested = j.job_config.Config.backend in
  let rungs =
    if policy.Guard.degrade then outcome_ladder j.job_config
    else [ requested ]
  in
  let injected =
    match fault with
    | Some (f : Inject.fault) -> Inject.kind_name f.Inject.i_kind
    | None -> ""
  in
  let t0 = Unix.gettimeofday () in
  let attempt_job ~backend ~armed ~attempt ~cancel =
    let config = { j.job_config with Config.backend; Config.cancel = cancel } in
    let config =
      match armed with
      | None -> config
      | Some (f : Inject.fault) -> (
        match f.Inject.i_kind with
        | Inject.Raise ->
          (* transient raises fault only the first attempt, giving the
             bounded-retry loop something it can actually beat *)
          if (not f.Inject.i_transient) || attempt = 1 then
            raise (Inject.Injected index);
          config
        | Inject.Trap ->
          raise
            (Sim.Runtime.Trap (Printf.sprintf "injected trap (job %d)" index))
        | Inject.Fuel -> { config with Config.fuel = 64 }
        | Inject.Deadline ->
          { config with Config.cancel = Some (fun () -> true) }
        | Inject.Corrupt -> config)
    in
    let r =
      run ~config ~name:j.job_name ~source:j.job_source
        ~training_input:j.job_training_input ~test_input:j.job_test_input ()
    in
    let r =
      match armed with
      | Some { Inject.i_kind = Inject.Corrupt; _ } ->
        {
          r with
          r_reordered =
            {
              r.r_reordered with
              v_output = r.r_reordered.v_output ^ "\000<corrupted>";
            };
        }
      | _ -> r
    in
    check_observables j.job_name r
  in
  let finish backend outcome attempts errors =
    {
      o_index = index;
      o_name = j.job_name;
      o_outcome = outcome;
      o_attempts = attempts;
      o_retried = attempts - 1;
      o_backend = Config.backend_name backend;
      o_degraded = backend <> requested;
      o_errors = errors;
      o_injected = injected;
      o_seconds = Unix.gettimeofday () -. t0;
    }
  in
  let rec walk rungs attempts errors =
    match rungs with
    | [] -> assert false
    | backend :: rest -> (
      (* faults are armed only against the requested backend, so the
         degradation ladder has a real recovery path *)
      let armed = if backend = requested then fault else None in
      let outcome, meta =
        Guard.protect ~index policy (fun ~attempt ~cancel ->
            attempt_job ~backend ~armed ~attempt ~cancel)
      in
      let attempts = attempts + meta.Guard.m_attempts in
      let errors = errors @ meta.Guard.m_errors in
      match outcome with
      | Pool.Ok _ | Pool.Trap _ | Pool.Timeout _ ->
        (* traps and timeouts are properties of the simulated program
           and the deadline, identical on every backend: degrading
           cannot help, so they are final *)
        finish backend outcome attempts errors
      | Pool.Crash _ | Pool.Gave_up _ ->
        if rest = [] then finish backend outcome attempts errors
        else walk rest attempts errors)
  in
  walk rungs 0 []

let run_jobs_guarded ?domains ?(policy = Guard.default) ?(inject = []) jobs =
  let indexed = List.mapi (fun i j -> (i, j)) jobs in
  Pool.map ?domains
    ~label:(fun _ (_, j) -> j.job_name)
    (fun (i, j) ->
      run_guarded_job ?fault:(Inject.find inject ~job:i) ~index:i ~policy j)
    indexed

let manifest_of_outcome o =
  Manifest.entry ~label:o.o_name
    ~message:(Pool.outcome_message o.o_outcome)
    ~attempts:o.o_attempts ~retried:o.o_retried ~backend:o.o_backend
    ~degraded:o.o_degraded ~injected:o.o_injected
    ~wall_ms:(o.o_seconds *. 1000.0) ~id:o.o_index
    ~status:(Pool.outcome_status o.o_outcome) ()
