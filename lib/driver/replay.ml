type fault_report = {
  rf_request : int;
  rf_kind : string;
  rf_outcome : string;  (* "ok" | "failed:STATUS" | "vacuous" | "escape" *)
}

type outcome = {
  ro_requests : int;
  ro_ok : int;
  ro_failed : int;
  ro_elapsed_s : float;
  ro_throughput_rps : float;
  ro_p50_ms : float;
  ro_p99_ms : float;
  ro_cold_ms : float;
  ro_cold_rps : float;
  ro_warm_ratio : float;
  ro_checked : int;
  ro_mismatches : int;
  ro_reopts : int;
  ro_events : Server.reopt_event list;
  ro_stats : Server.stats;
  ro_chaos_planned : int;
  ro_chaos_ok : int;
  ro_chaos_failed : int;
  ro_chaos_vacuous : int;
  ro_chaos_escapes : int;
  ro_chaos_faults : fault_report list;
  ro_crash_restarts : int;
  ro_restored : int;
  ro_restore_exact : bool;
}

(* ------------------------------------------------------------------ *)
(* The synthetic drift workload                                        *)
(* ------------------------------------------------------------------ *)

let drift_name = "drift"

(* a char-class dispatch chain over mutually exclusive equality tests
   (so every arm order is cc-compatible and Eq. 1-4 alone picks the
   layout): the hot arm is whatever class the input stream is made of —
   shifting the input mix shifts the optimal ordering *)
let drift_body =
  {|
int digits;
int uppers;
int lowers;
int others;

int main() {
  int c;
  digits = 0;
  uppers = 0;
  lowers = 0;
  others = 0;
  while ((c = getchar()) != EOF) {
    if (c == '5')
      digits++;
    else if (c == 'Z')
      uppers++;
    else if (c == 'l')
      lowers++;
    else
      others++;
  }
  print_num(digits);
  putchar(' ');
  print_num(uppers);
  putchar(' ');
  print_num(lowers);
  putchar(' ');
  print_num(others);
  putchar('\n');
  return 0;
}
|}

let drift_spec =
  Workloads.Spec.make ~name:drift_name
    ~description:"synthetic char-class dispatch whose input bias flips"
    ~source:drift_body
    ~training_input:(lazy "")
    ~test_input:(lazy "")

let drift_source = drift_spec.Workloads.Spec.source

let drift_input ~phase ~seed =
  let state = ref (((seed * 2654435761) lxor 0x5bf03635) land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  (* phase 1 is digit-heavy and longer, so the accumulated global
     profile overtakes phase 0's lowercase majority; the cold classes
     appear a little so every arm has nonzero counts *)
  let len, hot, alts =
    if phase = 0 then (600, 'l', [| '5'; 'Z'; 'x' |])
    else (2400, '5', [| 'l'; 'Z'; 'x' |])
  in
  String.init len (fun _ ->
      let n = next () in
      if n mod 10 < 9 then hot else alts.(n mod 3))

(* ------------------------------------------------------------------ *)
(* Request inputs                                                      *)
(* ------------------------------------------------------------------ *)

let input_slice ?(max_bytes = 2048) ~seed text =
  let len = String.length text in
  if len = 0 then ""
  else begin
    let window = min len max_bytes in
    let target = max 1 (window * (1 + (abs seed mod 4)) / 4) in
    let cut =
      match String.rindex_from_opt text (target - 1) '\n' with
      | Some i when i > 0 -> i + 1
      | _ -> target
    in
    String.sub text 0 cut
  end

(* ------------------------------------------------------------------ *)
(* The replay                                                          *)
(* ------------------------------------------------------------------ *)

type req = { q_name : string; q_source : string; q_input : string }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (n * p / 100))

(* ------------------------------------------------------------------ *)
(* Chaos: environment fault application                                 *)
(* ------------------------------------------------------------------ *)

(* where the server's native rung keeps its .cmxs artifacts *)
let native_store_dir (config : Config.t) =
  let root =
    match config.Config.native_cache_dir with
    | Some d -> d
    | None -> Sim.Native.Cache.default_dir ()
  in
  match Sim.Native.Cache.fingerprint () with
  | None -> None
  | Some fpr -> Some (Filename.concat root fpr)

let list_artifacts config =
  match native_store_dir config with
  | None -> []
  | Some dir -> (
    match Sys.readdir dir with
    | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".cmxs")
      |> List.sort compare
      |> List.map (Filename.concat dir)
    | exception Sys_error _ -> [])

(* Damage an artifact by writing the damaged bytes to a sibling file
   and renaming it over the original — never in place: the original
   inode may be dlopen-mmapped by this very process (a loaded plugin),
   and truncating or rewriting a mapped file raises SIGBUS.  The
   rename leaves live mappings on the old inode and puts the damage
   where it belongs: on the store the next load reads. *)
let replace_with path bytes =
  let tmp = path ^ ".chaos" in
  match
    let oc = open_out_bin tmp in
    output_string oc bytes;
    close_out oc;
    Sys.rename tmp path
  with
  | () -> true
  | exception Sys_error _ -> false

let read_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b
  with
  | b -> Some b
  | exception Sys_error _ -> None

(* flip one byte mid-file, leaving the .sum sidecar stale: the next
   disk load must fail its checksum and quarantine the artifact *)
let corrupt_file path =
  match read_file path with
  | None | Some "" -> false
  | Some s ->
    let b = Bytes.of_string s in
    let mid = Bytes.length b / 2 in
    Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xFF));
    replace_with path (Bytes.to_string b)

let truncate_file path =
  match read_file path with
  | None | Some "" -> false
  | Some s -> replace_with path (String.sub s 0 (max 1 (String.length s / 2)))

(* pick the victim artifact deterministically, damage it, and drop the
   in-process memo so the next native request must reload from disk
   and trip over the damage *)
let apply_artifact_fault config ~request kind =
  match list_artifacts config with
  | [] -> false
  | artifacts ->
    let victim = List.nth artifacts (request mod List.length artifacts) in
    let applied =
      match kind with
      | Inject.S_corrupt_artifact -> corrupt_file victim
      | _ -> truncate_file victim
    in
    if applied then Sim.Native.clear_memo ();
    applied

let run ?(config = Config.default) ?(workloads = []) ?(requests = 1000)
    ?concurrency ?(seed = 42) ?(drift = true) ?(sample_every = 2)
    ?(merge_every = 8) ?(drift_min_execs = 64) ?(check_every = 16)
    ?(chaos = 0) ?(chaos_seed = 7) ?state_dir
    ?(progress = fun _ -> ()) () =
  let names =
    match workloads with [] -> Workloads.Registry.names | ns -> ns
  in
  let specs =
    List.map
      (fun n ->
        match Workloads.Registry.find n with
        | s -> s
        | exception Not_found -> failwith ("replay: unknown workload " ^ n))
      names
  in
  (* force lazies on this domain before any fan-out *)
  let mix =
    List.map
      (fun (s : Workloads.Spec.t) ->
        (s.Workloads.Spec.name, s.Workloads.Spec.source,
         Lazy.force s.Workloads.Spec.test_input))
      specs
  in
  let mix = Array.of_list mix in
  let n_mix = Array.length mix + if drift then 1 else 0 in
  let half = requests / 2 in
  let request i =
    let slot = i mod n_mix in
    if drift && slot = n_mix - 1 then
      let phase = if i < half then 0 else 1 in
      {
        q_name = drift_name;
        q_source = drift_source;
        q_input = drift_input ~phase ~seed:(seed + i);
      }
    else
      let name, source, test_input = mix.(slot) in
      { q_name = name; q_source = source;
        q_input = input_slice ~seed:(seed + i) test_input }
  in
  let reqs = Array.init requests request in

  (* cold baseline: one request per distinct program against a fresh
     single-domain server with empty caches — every request pays
     parse + detect + train + reorder + predecode + compile *)
  progress "cold baseline (fresh server per program)";
  let distinct =
    Array.to_list (Array.map (fun (n, s, t) -> (n, s, input_slice ~seed t)) mix)
    @ (if drift then
         [ (drift_name, drift_source, drift_input ~phase:0 ~seed) ]
       else [])
  in
  let cold_total = ref 0.0 in
  List.iter
    (fun (name, source, input) ->
      let srv = Server.create ~config ~domains:1 ~sample_every:1_000_000 () in
      let t0 = Unix.gettimeofday () in
      let r = Server.submit srv ~name ~source ~input in
      cold_total := !cold_total +. (Unix.gettimeofday () -. t0);
      if r.Server.rs_status <> "ok" then
        failwith
          (Printf.sprintf "replay: cold request for %s failed: %s %s" name
             r.Server.rs_status r.Server.rs_message);
      Server.shutdown srv)
    distinct;
  let cold_ms = !cold_total /. float_of_int (List.length distinct) *. 1000.0 in

  (* warm service: one long-lived server; warm every program up
     (untimed), then fire the two timed waves with a sync between.
     With [state_dir] the server is durable, and a crash-restart cycle
     is certified between the waves. *)
  let make_server () =
    Server.create ~config ?domains:concurrency ~sample_every ~merge_every
      ~drift_min_execs ?state_dir ()
  in
  let server = ref (make_server ()) in
  progress
    (Printf.sprintf "warmup (%d programs, %d domains)" (List.length distinct)
       (Server.domains !server));
  List.iter
    (fun (name, source, input) ->
      ignore (Server.submit !server ~name ~source ~input))
    distinct;

  let faults =
    if chaos > 0 then
      Inject.server_plan ~seed:chaos_seed ~requests ~count:chaos
    else []
  in
  if faults <> [] then
    progress
      (Printf.sprintf "chaos: %d faults planned (%s)" (List.length faults)
         (String.concat ", "
            (List.map
               (fun (f : Inject.server_fault) ->
                 Printf.sprintf "%d:%s" f.Inject.sv_request
                   (Inject.server_kind_name f.Inject.sv_kind))
               faults)));
  (* environment faults that found nothing to damage (no artifact on
     disk, no state dir) — reported, never silently counted as ok *)
  let vacuous : (int, unit) Hashtbl.t = Hashtbl.create 8 in

  let responses : Server.response option array = Array.make requests None in
  let fire lo hi =
    let srv = !server in
    let m = Mutex.create () in
    let c = Condition.create () in
    let pending = ref (hi - lo) in
    for i = lo to hi - 1 do
      let q = reqs.(i) in
      let fault = Inject.server_find faults ~request:i in
      (* environment faults strike from the driver thread, just before
         the victim request is posted *)
      (match fault with
      | Some { Inject.sv_kind = (Inject.S_corrupt_artifact
                                | Inject.S_truncate_artifact) as k; _ } ->
        if not (apply_artifact_fault config ~request:i k) then
          Hashtbl.replace vacuous i ()
      | Some { Inject.sv_kind = Inject.S_tear_journal; _ } ->
        let torn =
          match state_dir with
          | Some dir -> State.tear_journal ~dir
          | None -> false
        in
        if not torn then Hashtbl.replace vacuous i ()
      | _ -> ());
      let deadline_ms, inject =
        match fault with
        | Some { Inject.sv_kind = Inject.S_kill_worker; _ } ->
          (None, Some (fun () -> raise (Inject.Injected i)))
        | Some { Inject.sv_kind = Inject.S_stall; _ } ->
          (* the stall outlives the request deadline, so the watchdog
             must fire; the retry (the stall fires once) recovers *)
          (Some 100, Some (fun () -> Unix.sleepf 0.25))
        | _ -> (None, None)
      in
      Server.post ?deadline_ms ?inject srv ~name:q.q_name ~source:q.q_source
        ~input:q.q_input
        (fun r ->
          responses.(i) <- Some r;
          Mutex.lock m;
          decr pending;
          if !pending = 0 then Condition.signal c;
          Mutex.unlock m)
    done;
    Mutex.lock m;
    while !pending > 0 do
      Condition.wait c m
    done;
    Mutex.unlock m
  in
  progress (Printf.sprintf "wave 1: requests 0..%d" (half - 1));
  let t0 = Unix.gettimeofday () in
  fire 0 half;
  Server.sync !server;

  (* crash-restart-resume: kill the durable server without any final
     flush (power-loss semantics), restart on the same state dir, and
     certify the restore against the pre-crash learned state — [sync]
     journaled an absolute record per program, so the match must be
     exact even if a tear fault struck the journal earlier *)
  let crash_restarts = ref 0 and restored = ref 0 in
  let restore_exact = ref true in
  let restart_s = ref 0.0 in
  let pre_crash_events = ref [] in
  let pre_crash_reopts = ref 0 in
  (match state_dir with
  | Some _ ->
    progress "crash (no final snapshot) and restart from the state dir";
    let r0 = Unix.gettimeofday () in
    let pre_stats = Server.stats !server in
    let pre = List.sort compare pre_stats.Server.st_programs in
    pre_crash_events := Server.reopt_events !server;
    pre_crash_reopts := pre_stats.Server.st_reopts;
    Server.shutdown ~crash:true !server;
    (* a real restart is a fresh process: drop the in-memory plugin memo *)
    Sim.Native.clear_memo ();
    server := make_server ();
    incr crash_restarts;
    let st = Server.stats !server in
    restored := st.Server.st_restored;
    restore_exact := List.sort compare st.Server.st_programs = pre;
    restart_s := Unix.gettimeofday () -. r0
  | None -> ());

  progress (Printf.sprintf "wave 2: requests %d..%d" half (requests - 1));
  fire half requests;
  Server.sync !server;
  let elapsed = Unix.gettimeofday () -. t0 -. !restart_s in

  (* differential check against the reference oracle: the usual every
     [check_every]-th sample, plus every chaos victim (a fault must
     never produce a wrong result) *)
  let checked = ref 0 and mismatches = ref 0 in
  let mis = Array.make requests false in
  let victim = Array.make requests false in
  List.iter (fun (f : Inject.server_fault) -> victim.(f.Inject.sv_request) <- true) faults;
  if check_every > 0 || faults <> [] then begin
    progress "differential check against the reference interpreter";
    for i = 0 to requests - 1 do
      if (check_every > 0 && i mod check_every = 0) || victim.(i) then
        match responses.(i) with
        | Some r when r.Server.rs_status = "ok" ->
          let q = reqs.(i) in
          let out, code =
            Server.oracle !server ~name:q.q_name ~source:q.q_source
              ~input:q.q_input
          in
          incr checked;
          if
            (not (String.equal out r.Server.rs_output))
            || code <> r.Server.rs_exit_code
          then begin
            mis.(i) <- true;
            incr mismatches
          end
        | _ -> ()
    done
  end;

  (* chaos verdicts *)
  let fault_reports =
    List.map
      (fun (f : Inject.server_fault) ->
        let i = f.Inject.sv_request in
        let verdict =
          if Hashtbl.mem vacuous i then "vacuous"
          else
            match responses.(i) with
            | None -> "escape"  (* response lost: the fault leaked *)
            | Some r ->
              if r.Server.rs_status = "ok" then
                if mis.(i) then "escape" (* wrong result: worst case *)
                else "ok"
              else "failed:" ^ r.Server.rs_status
        in
        {
          rf_request = i;
          rf_kind = Inject.server_kind_name f.Inject.sv_kind;
          rf_outcome = verdict;
        })
      faults
  in
  let tally p = List.length (List.filter p fault_reports) in
  let chaos_ok = tally (fun r -> r.rf_outcome = "ok") in
  let chaos_vacuous = tally (fun r -> r.rf_outcome = "vacuous") in
  let chaos_escapes = tally (fun r -> r.rf_outcome = "escape") in
  let chaos_failed =
    tally (fun r -> String.length r.rf_outcome > 7
                    && String.sub r.rf_outcome 0 7 = "failed:")
  in

  let stats = Server.stats !server in
  (* events and reopt counts span the crash: pre-crash history survives
     in the outcome even though the counters restart from zero *)
  let events = !pre_crash_events @ Server.reopt_events !server in
  let reopts = !pre_crash_reopts + stats.Server.st_reopts in
  Server.shutdown !server;

  let ok = ref 0 and failed = ref 0 in
  let lats = ref [] in
  Array.iter
    (function
      | Some (r : Server.response) ->
        if r.Server.rs_status = "ok" then begin
          incr ok;
          lats := r.Server.rs_wall_ms :: !lats
        end
        else incr failed
      | None -> incr failed)
    responses;
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  let throughput =
    if elapsed > 0.0 then float_of_int !ok /. elapsed else 0.0
  in
  let cold_rps = if cold_ms > 0.0 then 1000.0 /. cold_ms else 0.0 in
  {
    ro_requests = requests;
    ro_ok = !ok;
    ro_failed = !failed;
    ro_elapsed_s = elapsed;
    ro_throughput_rps = throughput;
    ro_p50_ms = percentile sorted 50;
    ro_p99_ms = percentile sorted 99;
    ro_cold_ms = cold_ms;
    ro_cold_rps = cold_rps;
    ro_warm_ratio = (if cold_rps > 0.0 then throughput /. cold_rps else 0.0);
    ro_checked = !checked;
    ro_mismatches = !mismatches;
    ro_reopts = reopts;
    ro_events = events;
    ro_stats = stats;
    ro_chaos_planned = List.length faults;
    ro_chaos_ok = chaos_ok;
    ro_chaos_failed = chaos_failed;
    ro_chaos_vacuous = chaos_vacuous;
    ro_chaos_escapes = chaos_escapes;
    ro_chaos_faults = fault_reports;
    ro_crash_restarts = !crash_restarts;
    ro_restored = !restored;
    ro_restore_exact = !restore_exact;
  }

(* ------------------------------------------------------------------ *)
(* BENCH_PR7.json                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~path (o : outcome) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"serve_replay\",\n";
  p "  \"requests\": %d,\n" o.ro_requests;
  p "  \"ok\": %d,\n" o.ro_ok;
  p "  \"failed\": %d,\n" o.ro_failed;
  p "  \"domains\": %d,\n" o.ro_stats.Server.st_domains;
  p "  \"elapsed_s\": %.6f,\n" o.ro_elapsed_s;
  p "  \"throughput_rps\": %.2f,\n" o.ro_throughput_rps;
  p "  \"p50_ms\": %.4f,\n" o.ro_p50_ms;
  p "  \"p99_ms\": %.4f,\n" o.ro_p99_ms;
  p "  \"cold_ms_per_request\": %.4f,\n" o.ro_cold_ms;
  p "  \"cold_rps\": %.2f,\n" o.ro_cold_rps;
  p "  \"warm_vs_cold_ratio\": %.2f,\n" o.ro_warm_ratio;
  p "  \"checked\": %d,\n" o.ro_checked;
  p "  \"mismatches\": %d,\n" o.ro_mismatches;
  p "  \"server\": { \"requests\": %d, \"cold\": %d, \"shadow_runs\": %d, \"merges\": %d, \"reopts\": %d },\n"
    o.ro_stats.Server.st_requests o.ro_stats.Server.st_cold
    o.ro_stats.Server.st_shadow_runs o.ro_stats.Server.st_merges
    o.ro_stats.Server.st_reopts;
  p "  \"caches\": [\n";
  let n_caches = List.length o.ro_stats.Server.st_caches in
  List.iteri
    (fun i (s : Sim.Artifact.stats) ->
      p
        "    { \"name\": \"%s\", \"entries\": %d, \"capacity\": %d, \
         \"hits\": %d, \"misses\": %d, \"builds\": %d, \"evictions\": %d, \
         \"failures\": %d }%s\n"
        (json_escape s.Sim.Artifact.a_name)
        s.Sim.Artifact.a_entries s.Sim.Artifact.a_capacity
        s.Sim.Artifact.a_hits s.Sim.Artifact.a_misses s.Sim.Artifact.a_builds
        s.Sim.Artifact.a_evictions s.Sim.Artifact.a_failures
        (if i = n_caches - 1 then "" else ","))
    o.ro_stats.Server.st_caches;
  p "  ],\n";
  let ns = o.ro_stats.Server.st_native in
  p
    "  \"native\": { \"memo_hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
     \"compiles\": %d, \"memo_evictions\": %d, \"memo_entries\": %d, \
     \"memo_capacity\": %d, \"quarantined\": %d },\n"
    ns.Sim.Native.memo_hits ns.Sim.Native.disk_hits ns.Sim.Native.misses
    ns.Sim.Native.compiles ns.Sim.Native.memo_evictions
    ns.Sim.Native.memo_entries ns.Sim.Native.memo_capacity
    ns.Sim.Native.quarantined;
  p
    "  \"chaos\": { \"planned\": %d, \"ok\": %d, \"failed\": %d, \
     \"vacuous\": %d, \"escapes\": %d, \"faults\": [" o.ro_chaos_planned
    o.ro_chaos_ok o.ro_chaos_failed o.ro_chaos_vacuous o.ro_chaos_escapes;
  let n_f = List.length o.ro_chaos_faults in
  List.iteri
    (fun i f ->
      p "{ \"request\": %d, \"kind\": \"%s\", \"outcome\": \"%s\" }%s"
        f.rf_request (json_escape f.rf_kind) (json_escape f.rf_outcome)
        (if i = n_f - 1 then "" else ", "))
    o.ro_chaos_faults;
  p "] },\n";
  p
    "  \"durability\": { \"crash_restarts\": %d, \"restored\": %d, \
     \"restore_exact\": %b },\n"
    o.ro_crash_restarts o.ro_restored o.ro_restore_exact;
  p "  \"reopt_events\": [\n";
  let n_ev = List.length o.ro_events in
  List.iteri
    (fun i (e : Server.reopt_event) ->
      p
        "    { \"program\": \"%s\", \"generation\": %d, \"executions\": %d, \
         \"signature\": \"%s\" }%s\n"
        (json_escape e.Server.re_program)
        e.Server.re_generation e.Server.re_executions
        (json_escape e.Server.re_signature)
        (if i = n_ev - 1 then "" else ","))
    o.ro_events;
  p "  ]\n";
  p "}\n";
  close_out oc
