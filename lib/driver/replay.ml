type outcome = {
  ro_requests : int;
  ro_ok : int;
  ro_failed : int;
  ro_elapsed_s : float;
  ro_throughput_rps : float;
  ro_p50_ms : float;
  ro_p99_ms : float;
  ro_cold_ms : float;
  ro_cold_rps : float;
  ro_warm_ratio : float;
  ro_checked : int;
  ro_mismatches : int;
  ro_reopts : int;
  ro_events : Server.reopt_event list;
  ro_stats : Server.stats;
}

(* ------------------------------------------------------------------ *)
(* The synthetic drift workload                                        *)
(* ------------------------------------------------------------------ *)

let drift_name = "drift"

(* a char-class dispatch chain over mutually exclusive equality tests
   (so every arm order is cc-compatible and Eq. 1-4 alone picks the
   layout): the hot arm is whatever class the input stream is made of —
   shifting the input mix shifts the optimal ordering *)
let drift_body =
  {|
int digits;
int uppers;
int lowers;
int others;

int main() {
  int c;
  digits = 0;
  uppers = 0;
  lowers = 0;
  others = 0;
  while ((c = getchar()) != EOF) {
    if (c == '5')
      digits++;
    else if (c == 'Z')
      uppers++;
    else if (c == 'l')
      lowers++;
    else
      others++;
  }
  print_num(digits);
  putchar(' ');
  print_num(uppers);
  putchar(' ');
  print_num(lowers);
  putchar(' ');
  print_num(others);
  putchar('\n');
  return 0;
}
|}

let drift_spec =
  Workloads.Spec.make ~name:drift_name
    ~description:"synthetic char-class dispatch whose input bias flips"
    ~source:drift_body
    ~training_input:(lazy "")
    ~test_input:(lazy "")

let drift_source = drift_spec.Workloads.Spec.source

let drift_input ~phase ~seed =
  let state = ref (((seed * 2654435761) lxor 0x5bf03635) land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  (* phase 1 is digit-heavy and longer, so the accumulated global
     profile overtakes phase 0's lowercase majority; the cold classes
     appear a little so every arm has nonzero counts *)
  let len, hot, alts =
    if phase = 0 then (600, 'l', [| '5'; 'Z'; 'x' |])
    else (2400, '5', [| 'l'; 'Z'; 'x' |])
  in
  String.init len (fun _ ->
      let n = next () in
      if n mod 10 < 9 then hot else alts.(n mod 3))

(* ------------------------------------------------------------------ *)
(* Request inputs                                                      *)
(* ------------------------------------------------------------------ *)

let input_slice ?(max_bytes = 2048) ~seed text =
  let len = String.length text in
  if len = 0 then ""
  else begin
    let window = min len max_bytes in
    let target = max 1 (window * (1 + (abs seed mod 4)) / 4) in
    let cut =
      match String.rindex_from_opt text (target - 1) '\n' with
      | Some i when i > 0 -> i + 1
      | _ -> target
    in
    String.sub text 0 cut
  end

(* ------------------------------------------------------------------ *)
(* The replay                                                          *)
(* ------------------------------------------------------------------ *)

type req = { q_name : string; q_source : string; q_input : string }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (n * p / 100))

let run ?(config = Config.default) ?(workloads = []) ?(requests = 1000)
    ?concurrency ?(seed = 42) ?(drift = true) ?(sample_every = 2)
    ?(merge_every = 8) ?(drift_min_execs = 64) ?(check_every = 16)
    ?(progress = fun _ -> ()) () =
  let names =
    match workloads with [] -> Workloads.Registry.names | ns -> ns
  in
  let specs =
    List.map
      (fun n ->
        match Workloads.Registry.find n with
        | s -> s
        | exception Not_found -> failwith ("replay: unknown workload " ^ n))
      names
  in
  (* force lazies on this domain before any fan-out *)
  let mix =
    List.map
      (fun (s : Workloads.Spec.t) ->
        (s.Workloads.Spec.name, s.Workloads.Spec.source,
         Lazy.force s.Workloads.Spec.test_input))
      specs
  in
  let mix = Array.of_list mix in
  let n_mix = Array.length mix + if drift then 1 else 0 in
  let half = requests / 2 in
  let request i =
    let slot = i mod n_mix in
    if drift && slot = n_mix - 1 then
      let phase = if i < half then 0 else 1 in
      {
        q_name = drift_name;
        q_source = drift_source;
        q_input = drift_input ~phase ~seed:(seed + i);
      }
    else
      let name, source, test_input = mix.(slot) in
      { q_name = name; q_source = source;
        q_input = input_slice ~seed:(seed + i) test_input }
  in
  let reqs = Array.init requests request in

  (* cold baseline: one request per distinct program against a fresh
     single-domain server with empty caches — every request pays
     parse + detect + train + reorder + predecode + compile *)
  progress "cold baseline (fresh server per program)";
  let distinct =
    Array.to_list (Array.map (fun (n, s, t) -> (n, s, input_slice ~seed t)) mix)
    @ (if drift then
         [ (drift_name, drift_source, drift_input ~phase:0 ~seed) ]
       else [])
  in
  let cold_total = ref 0.0 in
  List.iter
    (fun (name, source, input) ->
      let srv = Server.create ~config ~domains:1 ~sample_every:1_000_000 () in
      let t0 = Unix.gettimeofday () in
      let r = Server.submit srv ~name ~source ~input in
      cold_total := !cold_total +. (Unix.gettimeofday () -. t0);
      if r.Server.rs_status <> "ok" then
        failwith
          (Printf.sprintf "replay: cold request for %s failed: %s %s" name
             r.Server.rs_status r.Server.rs_message);
      Server.shutdown srv)
    distinct;
  let cold_ms = !cold_total /. float_of_int (List.length distinct) *. 1000.0 in

  (* warm service: one long-lived server; warm every program up
     (untimed), then fire the two timed waves with a sync between *)
  let server =
    Server.create ~config ?domains:concurrency ~sample_every ~merge_every
      ~drift_min_execs ()
  in
  progress
    (Printf.sprintf "warmup (%d programs, %d domains)" (List.length distinct)
       (Server.domains server));
  List.iter
    (fun (name, source, input) ->
      ignore (Server.submit server ~name ~source ~input))
    distinct;

  let responses : Server.response option array = Array.make requests None in
  let fire lo hi =
    let m = Mutex.create () in
    let c = Condition.create () in
    let pending = ref (hi - lo) in
    for i = lo to hi - 1 do
      let q = reqs.(i) in
      Server.post server ~name:q.q_name ~source:q.q_source ~input:q.q_input
        (fun r ->
          responses.(i) <- Some r;
          Mutex.lock m;
          decr pending;
          if !pending = 0 then Condition.signal c;
          Mutex.unlock m)
    done;
    Mutex.lock m;
    while !pending > 0 do
      Condition.wait c m
    done;
    Mutex.unlock m
  in
  progress (Printf.sprintf "wave 1: requests 0..%d" (half - 1));
  let t0 = Unix.gettimeofday () in
  fire 0 half;
  Server.sync server;
  progress (Printf.sprintf "wave 2: requests %d..%d" half (requests - 1));
  fire half requests;
  Server.sync server;
  let elapsed = Unix.gettimeofday () -. t0 in

  (* differential sample against the reference oracle *)
  let checked = ref 0 and mismatches = ref 0 in
  if check_every > 0 then begin
    progress "differential check against the reference interpreter";
    let i = ref 0 in
    while !i < requests do
      (match responses.(!i) with
      | Some r when r.Server.rs_status = "ok" ->
        let q = reqs.(!i) in
        let out, code =
          Server.oracle server ~name:q.q_name ~source:q.q_source
            ~input:q.q_input
        in
        incr checked;
        if
          (not (String.equal out r.Server.rs_output))
          || code <> r.Server.rs_exit_code
        then incr mismatches
      | _ -> ());
      i := !i + check_every
    done
  end;

  let stats = Server.stats server in
  let events = Server.reopt_events server in
  Server.shutdown server;

  let ok = ref 0 and failed = ref 0 in
  let lats = ref [] in
  Array.iter
    (function
      | Some (r : Server.response) ->
        if r.Server.rs_status = "ok" then begin
          incr ok;
          lats := r.Server.rs_wall_ms :: !lats
        end
        else incr failed
      | None -> incr failed)
    responses;
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  let throughput =
    if elapsed > 0.0 then float_of_int !ok /. elapsed else 0.0
  in
  let cold_rps = if cold_ms > 0.0 then 1000.0 /. cold_ms else 0.0 in
  {
    ro_requests = requests;
    ro_ok = !ok;
    ro_failed = !failed;
    ro_elapsed_s = elapsed;
    ro_throughput_rps = throughput;
    ro_p50_ms = percentile sorted 50;
    ro_p99_ms = percentile sorted 99;
    ro_cold_ms = cold_ms;
    ro_cold_rps = cold_rps;
    ro_warm_ratio = (if cold_rps > 0.0 then throughput /. cold_rps else 0.0);
    ro_checked = !checked;
    ro_mismatches = !mismatches;
    ro_reopts = stats.Server.st_reopts;
    ro_events = events;
    ro_stats = stats;
  }

(* ------------------------------------------------------------------ *)
(* BENCH_PR7.json                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~path (o : outcome) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"serve_replay\",\n";
  p "  \"requests\": %d,\n" o.ro_requests;
  p "  \"ok\": %d,\n" o.ro_ok;
  p "  \"failed\": %d,\n" o.ro_failed;
  p "  \"domains\": %d,\n" o.ro_stats.Server.st_domains;
  p "  \"elapsed_s\": %.6f,\n" o.ro_elapsed_s;
  p "  \"throughput_rps\": %.2f,\n" o.ro_throughput_rps;
  p "  \"p50_ms\": %.4f,\n" o.ro_p50_ms;
  p "  \"p99_ms\": %.4f,\n" o.ro_p99_ms;
  p "  \"cold_ms_per_request\": %.4f,\n" o.ro_cold_ms;
  p "  \"cold_rps\": %.2f,\n" o.ro_cold_rps;
  p "  \"warm_vs_cold_ratio\": %.2f,\n" o.ro_warm_ratio;
  p "  \"checked\": %d,\n" o.ro_checked;
  p "  \"mismatches\": %d,\n" o.ro_mismatches;
  p "  \"server\": { \"requests\": %d, \"cold\": %d, \"shadow_runs\": %d, \"merges\": %d, \"reopts\": %d },\n"
    o.ro_stats.Server.st_requests o.ro_stats.Server.st_cold
    o.ro_stats.Server.st_shadow_runs o.ro_stats.Server.st_merges
    o.ro_stats.Server.st_reopts;
  p "  \"caches\": [\n";
  let n_caches = List.length o.ro_stats.Server.st_caches in
  List.iteri
    (fun i (s : Sim.Artifact.stats) ->
      p
        "    { \"name\": \"%s\", \"entries\": %d, \"capacity\": %d, \
         \"hits\": %d, \"misses\": %d, \"builds\": %d, \"evictions\": %d, \
         \"failures\": %d }%s\n"
        (json_escape s.Sim.Artifact.a_name)
        s.Sim.Artifact.a_entries s.Sim.Artifact.a_capacity
        s.Sim.Artifact.a_hits s.Sim.Artifact.a_misses s.Sim.Artifact.a_builds
        s.Sim.Artifact.a_evictions s.Sim.Artifact.a_failures
        (if i = n_caches - 1 then "" else ","))
    o.ro_stats.Server.st_caches;
  p "  ],\n";
  let ns = o.ro_stats.Server.st_native in
  p
    "  \"native\": { \"memo_hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
     \"compiles\": %d, \"memo_evictions\": %d, \"memo_entries\": %d, \
     \"memo_capacity\": %d },\n"
    ns.Sim.Native.memo_hits ns.Sim.Native.disk_hits ns.Sim.Native.misses
    ns.Sim.Native.compiles ns.Sim.Native.memo_evictions
    ns.Sim.Native.memo_entries ns.Sim.Native.memo_capacity;
  p "  \"reopt_events\": [\n";
  let n_ev = List.length o.ro_events in
  List.iteri
    (fun i (e : Server.reopt_event) ->
      p
        "    { \"program\": \"%s\", \"generation\": %d, \"executions\": %d, \
         \"signature\": \"%s\" }%s\n"
        (json_escape e.Server.re_program)
        e.Server.re_generation e.Server.re_executions
        (json_escape e.Server.re_signature)
        (if i = n_ev - 1 then "" else ","))
    o.ro_events;
  p "  ]\n";
  p "}\n";
  close_out oc
