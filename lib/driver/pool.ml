let default_domains () =
  match Sys.getenv_opt "BROMC_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)
  | None -> max 1 (min 16 (Domain.recommended_domain_count ()))

let map ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    max 1 (min n (match domains with Some d -> d | None -> default_domains ()))
  in
  if d <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* each domain claims the next unstarted index; distinct slots, so
       the plain writes are race-free, and [Domain.join] publishes them *)
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some
              (try Ok (f items.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    let spawned = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let timed_map ?domains f xs =
  map ?domains
    (fun x ->
      let t0 = Unix.gettimeofday () in
      let r = f x in
      (r, Unix.gettimeofday () -. t0))
    xs
