(* a malformed BROMC_DOMAINS is reported once, not on every call *)
let warned_bad_domains = ref false

let default_domains () =
  match Sys.getenv_opt "BROMC_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      if not !warned_bad_domains then begin
        warned_bad_domains := true;
        Printf.eprintf
          "[pool] WARNING: BROMC_DOMAINS=%S is not a positive integer; \
           running on 1 domain\n%!"
          s
      end;
      1)
  | None -> max 1 (min 16 (Domain.recommended_domain_count ()))

(* ------------------------------------------------------------------ *)
(* Structured per-job outcomes                                         *)
(* ------------------------------------------------------------------ *)

type exn_info = {
  exn_name : string;
  exn_message : string;
  backtrace : string;
}

let exn_info ?(backtrace = "") e =
  {
    exn_name = Printexc.exn_slot_name e;
    exn_message = Printexc.to_string e;
    backtrace;
  }

type 'a outcome =
  | Ok of 'a
  | Trap of string
  | Timeout of int
  | Crash of exn_info
  | Gave_up of { attempts : int; last : exn_info }

let outcome_ok = function Ok _ -> true | _ -> false

let outcome_status = function
  | Ok _ -> "ok"
  | Trap _ -> "trap"
  | Timeout _ -> "timeout"
  | Crash _ -> "crash"
  | Gave_up _ -> "gave_up"

let outcome_message = function
  | Ok _ -> ""
  | Trap m -> m
  | Timeout ms ->
    if ms > 0 then Printf.sprintf "deadline of %d ms exceeded" ms
    else "run cancelled by watchdog"
  | Crash i -> i.exn_message
  | Gave_up { attempts; last } ->
    Printf.sprintf "gave up after %d attempts: %s" attempts last.exn_message

exception Job_error of int * string * exn

(* ------------------------------------------------------------------ *)
(* The domain pool                                                     *)
(* ------------------------------------------------------------------ *)

(* the core fan-out: every item's [f] runs to completion (or to a
   captured exception); nothing a single job does can discard another
   job's slot *)
let map_captured ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    max 1 (min n (match domains with Some d -> d | None -> default_domains ()))
  in
  if d <= 1 then
    List.map
      (fun x ->
        try Stdlib.Ok (f x)
        with e -> Stdlib.Error (e, Printexc.get_raw_backtrace ()))
      xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* each domain claims the next unstarted index; distinct slots, so
       the plain writes are race-free, and [Domain.join] publishes them *)
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some
              (try Stdlib.Ok (f items.(i))
               with e -> Stdlib.Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    let spawned = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  end

let default_label i _ = Printf.sprintf "job %d" i

let map_result ?domains f xs =
  List.map
    (function
      | Stdlib.Ok v -> Ok v
      | Stdlib.Error (Sim.Runtime.Trap m, _) -> Trap m
      | Stdlib.Error (e, bt) ->
        Crash (exn_info ~backtrace:(Printexc.raw_backtrace_to_string bt) e))
    (map_captured ?domains f xs)

let map ?domains ?(label = default_label) f xs =
  let rec first i xs rs =
    match (xs, rs) with
    | _, [] -> None
    | [], _ -> None
    | x :: xs, r :: rs -> (
      match r with
      | Stdlib.Ok _ -> first (i + 1) xs rs
      | Stdlib.Error (e, bt) -> Some (i, x, e, bt))
  in
  let rs = map_captured ?domains f xs in
  match first 0 xs rs with
  | Some (i, x, e, bt) ->
    (* fail fast, but name the job: siblings' results are recoverable
       through [map_result]; here the caller asked for all-or-nothing *)
    Printexc.raise_with_backtrace (Job_error (i, label i x, e)) bt
  | None ->
    List.map (function Stdlib.Ok r -> r | Stdlib.Error _ -> assert false) rs

let timed_map ?domains ?label f xs =
  map ?domains ?label
    (fun x ->
      let t0 = Unix.gettimeofday () in
      let r = f x in
      (r, Unix.gettimeofday () -. t0))
    xs

(* ------------------------------------------------------------------ *)
(* Long-lived worker pool                                              *)
(* ------------------------------------------------------------------ *)

(* [map] and friends spawn domains per call, which is the right shape
   for batch fan-out but not for a daemon taking an open-ended request
   stream: domain spawn is milliseconds, and per-domain state (profile
   shards) needs workers with stable identities.  [Workers] keeps [n]
   domains alive pulling tasks off one queue; every task learns the
   index of the worker running it. *)
module Workers = struct
  exception Overloaded of { depth : int; cap : int }

  let () =
    Printexc.register_printer (function
      | Overloaded { depth; cap } ->
        Some
          (Printf.sprintf "Pool.Workers.Overloaded (queue depth %d, cap %d)"
             depth cap)
      | _ -> None)

  type t = {
    mutable w_domains : unit Domain.t list;
    w_queue : (worker:int -> unit) Queue.t;
    w_lock : Mutex.t;
    w_nonempty : Condition.t;
    mutable w_stopping : bool;
    w_size : int;
    w_queue_cap : int;  (* 0 = unbounded *)
    mutable w_shed : int;  (* posts refused at the high-watermark *)
  }

  let size t = t.w_size

  let depth t =
    Mutex.lock t.w_lock;
    let d = Queue.length t.w_queue in
    Mutex.unlock t.w_lock;
    d

  let queue_cap t = t.w_queue_cap

  let shed t =
    Mutex.lock t.w_lock;
    let n = t.w_shed in
    Mutex.unlock t.w_lock;
    n

  let worker_loop t w =
    let continue = ref true in
    while !continue do
      Mutex.lock t.w_lock;
      while Queue.is_empty t.w_queue && not t.w_stopping do
        Condition.wait t.w_nonempty t.w_lock
      done;
      if Queue.is_empty t.w_queue then begin
        (* stopping and drained *)
        Mutex.unlock t.w_lock;
        continue := false
      end
      else begin
        let task = Queue.pop t.w_queue in
        Mutex.unlock t.w_lock;
        (* a task that escapes with an exception must not take its
           worker down with it; tasks that care wrap their own work *)
        try task ~worker:w
        with e ->
          Printf.eprintf "[pool] WARNING: worker %d task raised %s\n%!" w
            (Printexc.to_string e)
      end
    done

  let create ?domains ?(queue_cap = 0) () =
    if queue_cap < 0 then invalid_arg "Pool.Workers.create: negative queue_cap";
    let d =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let t =
      {
        w_domains = [];
        w_queue = Queue.create ();
        w_lock = Mutex.create ();
        w_nonempty = Condition.create ();
        w_stopping = false;
        w_size = d;
        w_queue_cap = queue_cap;
        w_shed = 0;
      }
    in
    t.w_domains <- List.init d (fun w -> Domain.spawn (fun () -> worker_loop t w));
    t

  (* admission control: a bounded queue sheds load at its
     high-watermark instead of letting latency grow without limit.
     The cap bounds *waiting* tasks, not in-flight ones — [d] workers
     plus [queue_cap] queued is the system's capacity *)
  let post t task =
    Mutex.lock t.w_lock;
    if t.w_stopping then begin
      Mutex.unlock t.w_lock;
      invalid_arg "Pool.Workers.post: pool is shut down"
    end;
    let d = Queue.length t.w_queue in
    if t.w_queue_cap > 0 && d >= t.w_queue_cap then begin
      t.w_shed <- t.w_shed + 1;
      Mutex.unlock t.w_lock;
      raise (Overloaded { depth = d; cap = t.w_queue_cap })
    end;
    Queue.push task t.w_queue;
    Condition.signal t.w_nonempty;
    Mutex.unlock t.w_lock

  let run t f =
    let m = Mutex.create () in
    let c = Condition.create () in
    let cell = ref None in
    post t (fun ~worker ->
        let r =
          try Stdlib.Ok (f ~worker)
          with e -> Stdlib.Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock m;
        cell := Some r;
        Condition.signal c;
        Mutex.unlock m);
    Mutex.lock m;
    while Option.is_none !cell do
      Condition.wait c m
    done;
    let r = Option.get !cell in
    Mutex.unlock m;
    match r with
    | Stdlib.Ok v -> v
    | Stdlib.Error (e, bt) -> Printexc.raise_with_backtrace e bt

  let shutdown t =
    Mutex.lock t.w_lock;
    let ds = t.w_domains in
    t.w_stopping <- true;
    t.w_domains <- [];
    Condition.broadcast t.w_nonempty;
    Mutex.unlock t.w_lock;
    List.iter Domain.join ds
end
