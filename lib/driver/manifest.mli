(** Machine-readable failure manifests (JSON lines).

    One flat JSON object per line, flushed per entry, so a run killed
    mid-way leaves a readable prefix — which is exactly what
    [bromc fuzz --resume] and the CI resume job consume.  {!read} parses
    the same format back; it is a purpose-built flat-object reader, not a
    general JSON parser. *)

type entry = {
  e_id : int;          (** job index / fuzz case number *)
  e_label : string;
  e_status : string;   (** {!Pool.outcome_status}, or fuzz "ok"/"failed" *)
  e_message : string;
  e_attempts : int;
  e_retried : int;
  e_backend : string;  (** backend that finally served the job; [""] n/a *)
  e_degraded : bool;   (** served by a lower rung than requested *)
  e_injected : string; (** {!Inject.kind_name} of a planted fault; [""] *)
  e_wall_ms : float;
}

val entry :
  ?label:string ->
  ?message:string ->
  ?attempts:int ->
  ?retried:int ->
  ?backend:string ->
  ?degraded:bool ->
  ?injected:string ->
  ?wall_ms:float ->
  id:int ->
  status:string ->
  unit ->
  entry

val ok : entry -> bool
(** [status = "ok"]. *)

val to_line : entry -> string
(** One-line JSON encoding (no trailing newline). *)

type writer

val create : string -> writer
(** Open (truncate) a manifest for incremental writing. *)

val add : writer -> entry -> unit
(** Append one entry and flush, so the line survives a crash. *)

val close : writer -> unit

val write : string -> entry list -> unit
(** Write a whole manifest at once. *)

exception Parse_error of string

val parse_object : string -> (string * string) list
(** Parse one flat JSON object of scalar fields into an assoc list of
    raw string values (strings unescaped; numbers and booleans
    verbatim), in field order.  The substrate {!entry_of_line} is built
    on — also reused by {!State}'s journal records, which share the
    one-flat-object-per-line discipline.
    @raise Parse_error on malformed input. *)

val escape : string -> string
(** JSON string-escape (quotes, backslashes, control characters) — the
    writer half of {!parse_object}'s string fields. *)

val entry_of_line : string -> entry
(** @raise Parse_error on malformed input; unknown fields are ignored
    and missing fields default. *)

val read : string -> entry list
(** Read every non-blank line of a manifest.  A torn {e final} line —
    the partial write a crash mid-{!add} leaves behind — is skipped
    rather than failing the load, so a killed run's readable prefix
    stays consumable ([bromc fuzz --resume], the journal restore path).
    @raise Parse_error on a malformed line that has valid lines after
    it (that is corruption, not a torn tail). *)
