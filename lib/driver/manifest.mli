(** Machine-readable failure manifests (JSON lines).

    One flat JSON object per line, flushed per entry, so a run killed
    mid-way leaves a readable prefix — which is exactly what
    [bromc fuzz --resume] and the CI resume job consume.  {!read} parses
    the same format back; it is a purpose-built flat-object reader, not a
    general JSON parser. *)

type entry = {
  e_id : int;          (** job index / fuzz case number *)
  e_label : string;
  e_status : string;   (** {!Pool.outcome_status}, or fuzz "ok"/"failed" *)
  e_message : string;
  e_attempts : int;
  e_retried : int;
  e_backend : string;  (** backend that finally served the job; [""] n/a *)
  e_degraded : bool;   (** served by a lower rung than requested *)
  e_injected : string; (** {!Inject.kind_name} of a planted fault; [""] *)
  e_wall_ms : float;
}

val entry :
  ?label:string ->
  ?message:string ->
  ?attempts:int ->
  ?retried:int ->
  ?backend:string ->
  ?degraded:bool ->
  ?injected:string ->
  ?wall_ms:float ->
  id:int ->
  status:string ->
  unit ->
  entry

val ok : entry -> bool
(** [status = "ok"]. *)

val to_line : entry -> string
(** One-line JSON encoding (no trailing newline). *)

type writer

val create : string -> writer
(** Open (truncate) a manifest for incremental writing. *)

val add : writer -> entry -> unit
(** Append one entry and flush, so the line survives a crash. *)

val close : writer -> unit

val write : string -> entry list -> unit
(** Write a whole manifest at once. *)

exception Parse_error of string

val entry_of_line : string -> entry
(** @raise Parse_error on malformed input; unknown fields are ignored
    and missing fields default. *)

val read : string -> entry list
(** Read every non-blank line of a manifest.
    @raise Parse_error on the first malformed line. *)
