(** A bounded pool of OCaml 5 domains for fanning out independent
    measurement jobs (one {!Pipeline} run per workload).

    Work items are claimed from a shared atomic counter, results land in
    their input slot, and the caller receives them in input order — so
    output is deterministic regardless of scheduling.  Every job runs to
    completion (or to a captured exception) whatever its siblings do:
    {!map_result} returns a structured {!outcome} per job and never
    loses a finished sibling to one crash, while {!map} is the thin
    fail-fast wrapper that re-raises the first failure (in input order)
    wrapped in {!Job_error} so the job is attributable.

    The pipeline has no global mutable state, so jobs are data-parallel;
    callers must only take care to force any [lazy] inputs *before*
    submitting (concurrently forcing one lazy from two domains raises
    [CamlinternalLazy.Undefined]). *)

val default_domains : unit -> int
(** Domains used when [?domains] is omitted:
    [Domain.recommended_domain_count ()] clamped to [1..16], or the
    [BROMC_DOMAINS] environment variable when set.  A [BROMC_DOMAINS]
    that is not a positive integer degrades to 1 domain with a single
    warning on stderr. *)

(** {2 Structured per-job outcomes} *)

type exn_info = {
  exn_name : string;     (** [Printexc.exn_slot_name] of the exception *)
  exn_message : string;  (** [Printexc.to_string] rendering *)
  backtrace : string;    (** raw backtrace, possibly empty *)
}

val exn_info : ?backtrace:string -> exn -> exn_info

type 'a outcome =
  | Ok of 'a                   (** the job finished *)
  | Trap of string             (** the simulated program trapped *)
  | Timeout of int             (** watchdog deadline (ms) expired *)
  | Crash of exn_info          (** the job raised any other exception *)
  | Gave_up of { attempts : int; last : exn_info }
      (** retries exhausted on a persistently-crashing job *)

val outcome_ok : 'a outcome -> bool

val outcome_status : 'a outcome -> string
(** ["ok" | "trap" | "timeout" | "crash" | "gave_up"] — the stable
    machine-readable tag used by failure manifests. *)

val outcome_message : 'a outcome -> string
(** Human-readable failure description; [""] for {!Ok}. *)

exception Job_error of int * string * exn
(** [Job_error (index, label, e)]: job [index] (0-based input position,
    with its display [label]) raised [e].  Raised by {!map} and
    {!timed_map}; the original exception and backtrace are preserved in
    the payload. *)

(** {2 Fan-out} *)

val map : ?domains:int -> ?label:(int -> 'a -> string) -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, running up to [domains]
    domains (never more than [List.length xs]; [domains <= 1] degrades
    to plain sequential application).  Results are in input order.
    Fail-fast: if any job raised, the first failure in input order is
    re-raised as {!Job_error} (completed siblings are discarded — use
    {!map_result} to keep them). *)

val map_result : ?domains:int -> ('a -> 'b) -> 'a list -> 'b outcome list
(** Like {!map} but total: each job's exception is captured in its own
    slot ({!Trap} for simulator traps, {!Crash} otherwise) and every
    other job's result is still returned.  Never raises on a job
    failure.  {!Timeout} and {!Gave_up} are produced by the
    deadline/retry layer ({!Guard}), not by the pool itself. *)

val timed_map :
  ?domains:int -> ?label:(int -> 'a -> string) -> ('a -> 'b) -> 'a list ->
  ('b * float) list
(** {!map} that also reports each item's wall-clock seconds, measured
    inside the worker domain. *)

(** {2 Long-lived worker pool}

    {!map} and friends spawn fresh domains per call — right for batch
    fan-out, wrong for a daemon serving an open-ended request stream,
    which wants the spawn cost paid once and stable worker identities
    (per-domain profile shards are indexed by worker).  A {!Workers.t}
    keeps [n] domains alive pulling tasks off one queue until
    {!Workers.shutdown} drains and joins them. *)
module Workers : sig
  type t

  exception Overloaded of { depth : int; cap : int }
  (** Raised by {!post} (and {!run}) when the queue is at its
      high-watermark: admission control sheds the request instead of
      letting queueing delay grow without bound.  [depth] is the queue
      length observed, [cap] the configured bound. *)

  val create : ?domains:int -> ?queue_cap:int -> unit -> t
  (** Spawn the worker domains now ({!default_domains} when [?domains]
      is omitted; always at least 1).  [queue_cap] bounds {e waiting}
      tasks (in-flight tasks are not counted): a {!post} that would
      push the queue past the cap raises {!Overloaded} instead.  0 (the
      default) means unbounded. *)

  val size : t -> int
  (** Number of worker domains; worker indices are [0 .. size-1]. *)

  val depth : t -> int
  (** Tasks currently waiting in the queue. *)

  val queue_cap : t -> int

  val shed : t -> int
  (** Posts refused by admission control so far. *)

  val post : t -> (worker:int -> unit) -> unit
  (** Enqueue a task, return immediately.  Tasks run in FIFO claim
      order on whichever worker frees up first.  A task that escapes
      with an exception is reported on stderr and its worker keeps
      going.  Raises [Invalid_argument] after {!shutdown} and
      {!Overloaded} past the queue cap. *)

  val run : t -> (worker:int -> 'a) -> 'a
  (** Enqueue a task and block until it finishes, returning its result
      (or re-raising its exception with the original backtrace).  Must
      not be called from inside a pool task: with every worker waiting
      the pool would deadlock. *)

  val shutdown : t -> unit
  (** Stop accepting tasks, let the queue drain, join every worker.
      Idempotent. *)
end
