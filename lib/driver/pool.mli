(** A bounded pool of OCaml 5 domains for fanning out independent
    measurement jobs (one {!Pipeline} run per workload).

    Work items are claimed from a shared atomic counter, results land in
    their input slot, and the caller receives them in input order — so
    output is deterministic regardless of scheduling.  Exceptions raised
    by [f] are captured per item and re-raised in the parent, first
    failing item (in input order) first, with its backtrace.

    The pipeline has no global mutable state, so jobs are data-parallel;
    callers must only take care to force any [lazy] inputs *before*
    submitting (concurrently forcing one lazy from two domains raises
    [CamlinternalLazy.Undefined]). *)

val default_domains : unit -> int
(** Domains used when [?domains] is omitted:
    [Domain.recommended_domain_count ()] clamped to [1..16], or the
    [BROMC_DOMAINS] environment variable when set. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, running up to [domains]
    domains (never more than [List.length xs]; [domains <= 1] degrades
    to plain [List.map]).  Results are in input order. *)

val timed_map : ?domains:int -> ('a -> 'b) -> 'a list -> ('b * float) list
(** [map] that also reports each item's wall-clock seconds, measured
    inside the worker domain. *)
