(* Per-job resilience: wall-clock watchdogs, bounded seeded retries with
   backoff, and classification of every way a job can end into a
   structured {!Pool.outcome}.  The guard never lets a job's failure
   escape as an exception — containment is the whole point. *)

type policy = {
  timeout_ms : int option;
  retries : int;
  backoff_ms : int;
  seed : int;
  degrade : bool;
}

let default =
  { timeout_ms = None; retries = 0; backoff_ms = 10; seed = 0; degrade = false }

type meta = {
  m_attempts : int;
  m_errors : string list;
}

(* deterministic backoff jitter: the same (seed, index, attempt) always
   sleeps the same duration, so retry schedules are reproducible *)
let mix a b c =
  let h = ref 0x9E3779B9 in
  List.iter
    (fun x -> h := ((!h lxor x) * 1_103_515_245) land 0x3FFF_FFFF)
    [ a; b; c ];
  !h

let backoff_ms policy ~index ~attempt =
  if policy.backoff_ms <= 0 then 0
  else begin
    (* exponential base doubling per attempt, plus seeded jitter of up
       to one base unit *)
    let base = policy.backoff_ms * (1 lsl min 6 (attempt - 1)) in
    base + (mix policy.seed index attempt mod max 1 policy.backoff_ms)
  end

let cancel_of policy =
  Option.map (fun ms -> Sim.Runtime.watchdog ~ms) policy.timeout_ms

let protect ?(index = 0) policy job =
  let rec go attempt errors =
    let finish outcome errors =
      (outcome, { m_attempts = attempt; m_errors = List.rev errors })
    in
    match job ~attempt ~cancel:(cancel_of policy) with
    | v -> finish (Pool.Ok v) errors
    | exception Sim.Runtime.Cancelled ->
      let ms = Option.value ~default:0 policy.timeout_ms in
      let what =
        if ms > 0 then Printf.sprintf "deadline of %d ms exceeded" ms
        else "run cancelled by watchdog"
      in
      finish (Pool.Timeout ms)
        (Printf.sprintf "attempt %d: %s" attempt what :: errors)
    | exception Sim.Native.Unavailable m ->
      (* the native toolchain is missing or broke for this process:
         deterministic, so retrying this rung cannot help — fail it
         immediately as a crash and let the caller's degradation
         ladder serve the job from the closure backend *)
      finish
        (Pool.Crash (Pool.exn_info (Sim.Native.Unavailable m)))
        (Printf.sprintf "attempt %d: native backend unavailable: %s" attempt m
        :: errors)
    | exception Sim.Runtime.Trap m ->
      (* a trap is a deterministic property of the simulated program:
         retrying cannot help, so it is final *)
      finish (Pool.Trap m) (Printf.sprintf "attempt %d: trap: %s" attempt m :: errors)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      let info = Pool.exn_info ~backtrace:(Printexc.raw_backtrace_to_string bt) e in
      let errors =
        Printf.sprintf "attempt %d: %s" attempt info.Pool.exn_message :: errors
      in
      if attempt > policy.retries then
        if attempt = 1 then finish (Pool.Crash info) errors
        else finish (Pool.Gave_up { attempts = attempt; last = info }) errors
      else begin
        let ms = backoff_ms policy ~index ~attempt in
        if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0);
        go (attempt + 1) errors
      end
  in
  go 1 []
