(** Durable serving state: write-ahead journal + periodic snapshots.

    The crash-safety substrate under {!Server}.  Everything the online
    profiling loop learns — merged {!Sim.Profile} counters, predictor
    bank tallies, {!Reorder.Drift} generations and signatures — is
    persisted as {e absolute} per-program records, one CRC-framed flat
    JSON line each ({!Manifest}'s line dialect under a [crc32hex ]
    prefix).  The journal is appended and flushed record by record; a
    snapshot rewrites the whole state atomically (tmp-then-rename) and
    truncates the journal.  Restore replays snapshot then journal with
    last-record-wins, so duplicated or superseded records are free.

    The reader is torn-tail and corruption tolerant: a frame that fails
    its CRC or does not parse — the partial final line of an
    interrupted append, a hole torn mid-file — is skipped and counted,
    and reading resumes at the next newline.  One damaged record never
    poisons the rest of the file, and losing one journal record only
    costs the delta since the previous record for that program (records
    are absolute). *)

type program = {
  p_key : string;
      (** {!Server}'s content key (config fingerprint + source hash);
          restore re-derives it and drops records that no longer match
          (e.g. the daemon restarted under a different config) *)
  p_name : string;
  p_source : string;  (** full source, so restore can rebuild artifacts *)
  p_generation : int;  (** served artifact generation *)
  p_signature : string;  (** {!Reorder.Drift} signature it was built with *)
  p_executions : int;  (** total profile executions at write time *)
  p_last_opt_execs : int;  (** executions at the last (re-)optimization *)
  p_ranges : (int * int array * int) list;  (** {!Sim.Profile.counters} *)
  p_combs : (int * int array * int) list;
}

type bank = ((int * int * int) * (int * int)) list
(** Predictor-bank tallies: [(key, (lookups, mispredicts))] per
    configured predictor, as {!Sim.Predictor.bank_lookups} /
    [bank_mispredicts] report them. *)

type restore = {
  r_programs : program list;  (** unique keys; journal beats snapshot *)
  r_bank : bank;  (** [[]] when no bank record survived *)
  r_records : int;  (** valid frames consumed across both files *)
  r_skipped : int;  (** frames dropped by the CRC check or the parser *)
}

val version : int
(** Record format version; mismatched records are skipped on restore. *)

val journal_path : dir:string -> string
val snapshot_path : dir:string -> string

val exists : dir:string -> bool
(** Does [dir] hold any persisted state (snapshot or journal)? *)

(** {2 The journal} *)

type writer

val open_journal : dir:string -> writer
(** Create [dir] as needed and open the journal for appending
    ([O_APPEND]: records land at the current end of file even if a
    concurrent snapshot truncates the journal underneath).  Writes are
    serialized by an internal lock and flushed per record. *)

val journal_program : writer -> program -> unit
val journal_bank : writer -> bank -> unit

val appended : writer -> int
(** Records appended through this writer so far (the snapshot-cadence
    counter). *)

val close_journal : writer -> unit

(** {2 Snapshots} *)

val write_snapshot : dir:string -> program list -> bank -> unit
(** Write the complete state to [snapshot.tmp], fsync, and rename over
    the snapshot — readers see the old state or the new state, never a
    partial file.  Does {e not} truncate the journal; call
    {!truncate_journal} after (a crash between the two merely leaves
    journal records that restore absorbs by last-record-wins). *)

val truncate_journal : dir:string -> unit

(** {2 Restore} *)

val load : dir:string -> restore
(** Replay snapshot then journal, last record wins per program key.
    Never raises on damaged state: unreadable files restore as empty,
    damaged frames are counted in [r_skipped]. *)

(** {2 Fault injection} *)

val tear_journal : dir:string -> bool
(** Chaos hook: cut the journal a few bytes short of its end, exactly
    the shape a crash mid-append leaves behind.  [false] when there is
    no journal (or it is too short to tear). *)

(**/**)

val crc32 : string -> int
val frame : string -> string
val unframe : string -> string option
(** Exposed for tests. *)
