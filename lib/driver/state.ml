(* Durable serving state: a write-ahead journal plus periodic snapshots.

   Everything the online-profiling loop learns — merged profile
   counters, predictor-bank tallies, drift generations — is
   re-creatable absolute state, so the format is deliberately dumb:
   every record carries the *whole* current state of one program (or
   the whole bank), one CRC-framed flat-JSON line each, and restore is
   last-record-wins over snapshot-then-journal.  No deltas, no
   compaction logic beyond "snapshot, then truncate the journal".

   Frame: "crc32hex payload\n" where payload is one flat JSON object in
   {!Manifest}'s line dialect.  The CRC makes torn tails and mid-file
   corruption (a hole from an interrupted write, a chaos-injected tear)
   detectable per line; the reader skips frames that fail the check and
   resynchronizes at the next newline, so one damaged record never
   poisons the rest of the file. *)

type program = {
  p_key : string;  (* Server content key: config fingerprint + source *)
  p_name : string;
  p_source : string;
  p_generation : int;
  p_signature : string;
  p_executions : int;  (* total profile executions at write time *)
  p_last_opt_execs : int;
  p_ranges : (int * int array * int) list;  (* Sim.Profile.counters *)
  p_combs : (int * int array * int) list;
}

type bank = ((int * int * int) * (int * int)) list

type restore = {
  r_programs : program list;  (* unique keys, journal beats snapshot *)
  r_bank : bank;
  r_records : int;  (* valid frames consumed *)
  r_skipped : int;  (* frames dropped by the CRC or the parser *)
}

let version = 1

let journal_path ~dir = Filename.concat dir "journal"
let snapshot_path ~dir = Filename.concat dir "snapshot"

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                    *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let frame payload = Printf.sprintf "%08x %s" (crc32 payload) payload

(* [Some payload] iff the line is a well-formed frame whose CRC matches *)
let unframe line =
  let n = String.length line in
  if n < 10 || line.[8] <> ' ' then None
  else
    let crc_hex = String.sub line 0 8 in
    let payload = String.sub line 9 (n - 9) in
    match int_of_string_opt ("0x" ^ crc_hex) with
    | Some crc when crc = crc32 payload -> Some payload
    | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Record encoding                                                      *)
(* ------------------------------------------------------------------ *)

(* counter lists as "id:executions:c,c,c;..." — compact, newline-free,
   and trivially split-able *)
let encode_counters cs =
  String.concat ";"
    (List.map
       (fun (id, counts, execs) ->
         Printf.sprintf "%d:%d:%s" id execs
           (String.concat ","
              (List.map string_of_int (Array.to_list counts))))
       cs)

let decode_counters s =
  if String.equal s "" then Some []
  else
    let seq str = String.split_on_char str in
    let parse_one part =
      match seq ':' part with
      | [ id; execs; counts ] -> (
        match (int_of_string_opt id, int_of_string_opt execs) with
        | Some id, Some execs ->
          let cs = if counts = "" then [] else seq ',' counts in
          let arr = List.filter_map int_of_string_opt cs in
          if List.length arr <> List.length cs then None
          else Some (id, Array.of_list arr, execs)
        | _ -> None)
      | _ -> None
    in
    let parts = List.map parse_one (seq ';' s) in
    if List.for_all Option.is_some parts then
      Some (List.map Option.get parts)
    else None

let encode_bank (b : bank) =
  String.concat ";"
    (List.map
       (fun ((h, c, e), (lk, mis)) ->
         Printf.sprintf "%d.%d.%d:%d:%d" h c e lk mis)
       b)

let decode_bank s : bank option =
  if String.equal s "" then Some []
  else
    let parse_one part =
      match String.split_on_char ':' part with
      | [ key; lk; mis ] -> (
        match
          ( String.split_on_char '.' key,
            int_of_string_opt lk,
            int_of_string_opt mis )
        with
        | [ h; c; e ], Some lk, Some mis -> (
          match
            (int_of_string_opt h, int_of_string_opt c, int_of_string_opt e)
          with
          | Some h, Some c, Some e -> Some ((h, c, e), (lk, mis))
          | _ -> None)
        | _ -> None)
      | _ -> None
    in
    let parts = List.map parse_one (String.split_on_char ';' s) in
    if List.for_all Option.is_some parts then
      Some (List.map Option.get parts)
    else None

let program_payload p =
  Printf.sprintf
    "{\"t\": \"program\", \"v\": %d, \"key\": \"%s\", \"name\": \"%s\", \
     \"source\": \"%s\", \"drift\": \"%s\", \"last_opt\": %d, \"ranges\": \
     \"%s\", \"combs\": \"%s\"}"
    version (Manifest.escape p.p_key) (Manifest.escape p.p_name)
    (Manifest.escape p.p_source)
    (Manifest.escape
       (Reorder.Drift.state_to_string ~generation:p.p_generation
          ~executions:p.p_executions p.p_signature))
    p.p_last_opt_execs
    (Manifest.escape (encode_counters p.p_ranges))
    (Manifest.escape (encode_counters p.p_combs))

let bank_payload (b : bank) =
  Printf.sprintf "{\"t\": \"bank\", \"v\": %d, \"tallies\": \"%s\"}" version
    (Manifest.escape (encode_bank b))

type record = Program of program | Bank of bank

let record_of_payload payload =
  match Manifest.parse_object payload with
  | exception Manifest.Parse_error _ -> None
  | fields -> (
    let str k = Option.value ~default:"" (List.assoc_opt k fields) in
    let int k = Option.bind (List.assoc_opt k fields) int_of_string_opt in
    if int "v" <> Some version then None
    else
      match str "t" with
      | "program" -> (
        match
          ( Reorder.Drift.state_of_string (str "drift"),
            int "last_opt",
            decode_counters (str "ranges"),
            decode_counters (str "combs") )
        with
        | Some (generation, executions, signature), Some last_opt,
          Some ranges, Some combs
          when str "key" <> "" ->
          Some
            (Program
               {
                 p_key = str "key";
                 p_name = str "name";
                 p_source = str "source";
                 p_generation = generation;
                 p_signature = signature;
                 p_executions = executions;
                 p_last_opt_execs = last_opt;
                 p_ranges = ranges;
                 p_combs = combs;
               })
        | _ -> None)
      | "bank" -> Option.map (fun b -> Bank b) (decode_bank (str "tallies"))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)
(* ------------------------------------------------------------------ *)

let mkdirs dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

type writer = { w_oc : out_channel; w_lock : Mutex.t; mutable w_appended : int }

(* O_APPEND, so every flush lands at the file's current end even after
   a concurrent snapshot truncated it under us *)
let open_journal ~dir =
  mkdirs dir;
  let oc =
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 (journal_path ~dir)
  in
  { w_oc = oc; w_lock = Mutex.create (); w_appended = 0 }

let append w payload =
  Mutex.lock w.w_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_lock)
    (fun () ->
      output_string w.w_oc (frame payload);
      output_char w.w_oc '\n';
      flush w.w_oc;
      w.w_appended <- w.w_appended + 1;
      w.w_appended)

let journal_program w p = ignore (append w (program_payload p))
let journal_bank w b = ignore (append w (bank_payload b))
let appended w = w.w_appended

let close_journal w =
  Mutex.lock w.w_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_lock)
    (fun () -> close_out_noerr w.w_oc)

let fsync_out oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* atomic tmp-then-rename; readers see either the old snapshot or the
   complete new one, never a partial write.  The journal is truncated
   only after the rename: a crash between the two leaves journal
   records that duplicate the snapshot, which last-record-wins replay
   absorbs for free *)
let write_snapshot ~dir programs (b : bank) =
  mkdirs dir;
  let tmp = snapshot_path ~dir ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  (try
     List.iter
       (fun p ->
         output_string oc (frame (program_payload p));
         output_char oc '\n')
       programs;
     output_string oc (frame (bank_payload b));
     output_char oc '\n';
     fsync_out oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (snapshot_path ~dir)

let truncate_journal ~dir =
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
      0o644 (journal_path ~dir)
  in
  close_out_noerr oc

(* ------------------------------------------------------------------ *)
(* Restore                                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ([], 0, 0)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let records = ref [] and ok = ref 0 and skipped = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Option.bind (unframe line) record_of_payload with
               | Some r ->
                 incr ok;
                 records := r :: !records
               | None -> incr skipped
           done
         with End_of_file -> ());
        (List.rev !records, !ok, !skipped))

let load ~dir =
  let snap, n1, s1 = read_file (snapshot_path ~dir) in
  let jour, n2, s2 = read_file (journal_path ~dir) in
  let programs : (string, program) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let bank = ref [] in
  List.iter
    (fun r ->
      match r with
      | Program p ->
        if not (Hashtbl.mem programs p.p_key) then
          order := p.p_key :: !order;
        Hashtbl.replace programs p.p_key p
      | Bank b -> bank := b)
    (snap @ jour);
  {
    r_programs =
      List.rev_map (fun k -> Hashtbl.find programs k) !order;
    r_bank = !bank;
    r_records = n1 + n2;
    r_skipped = s1 + s2;
  }

let exists ~dir =
  Sys.file_exists (snapshot_path ~dir) || Sys.file_exists (journal_path ~dir)

(* ------------------------------------------------------------------ *)
(* Chaos helper                                                         *)
(* ------------------------------------------------------------------ *)

(* cut the journal mid-record: drop the trailing newline and the last
   few bytes of the final frame, exactly the shape an interrupted
   append leaves behind.  Returns false when there is nothing to tear *)
let tear_journal ~dir =
  let path = journal_path ~dir in
  match Unix.stat path with
  | exception Unix.Unix_error _ -> false
  | st when st.Unix.st_size < 8 -> false
  | st ->
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd (st.Unix.st_size - 7);
        true)
