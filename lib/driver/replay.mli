(** Replay driver: simulated production traffic for {!Server}.

    [bromc replay] (and the CI daemon smoke job) fire thousands of
    mixed workload requests at a {!Server} at a configurable
    concurrency and record steady-state throughput, p50/p99 service
    latency, cache hit rates and re-optimization counts — the
    serving-shaped counterpart of the batch bench.

    The request mix cycles over the paper's 17 workloads (or a chosen
    subset), each request taking a seeded newline-aligned slice of the
    workload's test input so inputs vary while staying valid.  With
    [drift] enabled the mix also includes a synthetic char-class
    dispatch program whose input distribution flips halfway through
    the stream — lowercase-heavy, then digit-heavy — so the accumulated
    online profile flips the Eq. 1–4 ordering of its dispatch sequence
    and a drift-triggered re-optimization demonstrably fires.

    The replay runs in two waves with a {!Server.sync} between them
    (so shard merges and the drift check happen deterministically even
    at low request counts), and differentially checks a sample of
    responses against {!Server.oracle} — the reference interpreter on
    the unreordered base — which must match byte for byte. *)

type fault_report = {
  rf_request : int;  (** victim request index *)
  rf_kind : string;  (** {!Inject.server_kind_name} tag *)
  rf_outcome : string;
      (** ["ok"] (served correctly despite the fault),
          ["failed:STATUS"] (clean failure response — contained),
          ["vacuous"] (nothing to damage: no artifact, no state dir),
          ["escape"] (lost response or wrong result — a certification
          failure) *)
}

type outcome = {
  ro_requests : int;  (** timed requests fired *)
  ro_ok : int;
  ro_failed : int;  (** non-[ok] responses (trap/timeout/crash) *)
  ro_elapsed_s : float;  (** wall clock of the timed warm phase *)
  ro_throughput_rps : float;  (** ok requests / elapsed *)
  ro_p50_ms : float;  (** median in-worker service time *)
  ro_p99_ms : float;
  ro_cold_ms : float;
      (** mean per-request wall on a fresh single-domain server with
          empty caches — the parse+train+reorder+compile-every-time
          baseline, one request per distinct program in the mix *)
  ro_cold_rps : float;
  ro_warm_ratio : float;  (** [ro_throughput_rps /. ro_cold_rps] *)
  ro_checked : int;  (** responses differentially checked *)
  ro_mismatches : int;  (** byte differences against the oracle (0!) *)
  ro_reopts : int;  (** across the crash when one was simulated *)
  ro_events : Server.reopt_event list;
  ro_stats : Server.stats;  (** server counters at shutdown *)
  ro_chaos_planned : int;  (** faults drawn from the chaos plan *)
  ro_chaos_ok : int;  (** victims still served correctly *)
  ro_chaos_failed : int;  (** victims with a clean failure response *)
  ro_chaos_vacuous : int;  (** faults that found nothing to damage *)
  ro_chaos_escapes : int;  (** lost responses or wrong results (0!) *)
  ro_chaos_faults : fault_report list;
  ro_crash_restarts : int;  (** simulated crash-restart cycles (0 or 1) *)
  ro_restored : int;  (** programs warm-started after the crash *)
  ro_restore_exact : bool;
      (** restored (name, generation, executions) set matched the
          pre-crash server exactly *)
}

val drift_name : string
(** Name of the synthetic drift workload (["drift"]). *)

val drift_source : string
(** Its MiniC source: a char-class dispatch chain (digits / uppercase /
    lowercase / other) whose hot arm is whatever the input is made
    of. *)

val drift_input : phase:int -> seed:int -> string
(** Deterministic input for the drift program: phase 0 is
    lowercase-heavy, phase 1 digit-heavy and longer (so the accumulated
    counts overtake the first phase's). *)

val input_slice : ?max_bytes:int -> seed:int -> string -> string
(** A newline-aligned prefix slice of [text] whose length varies with
    [seed] (capped at [max_bytes], default 2048); [""] stays [""]. *)

val run :
  ?config:Config.t ->
  ?workloads:string list ->
  ?requests:int ->
  ?concurrency:int ->
  ?seed:int ->
  ?drift:bool ->
  ?sample_every:int ->
  ?merge_every:int ->
  ?drift_min_execs:int ->
  ?check_every:int ->
  ?chaos:int ->
  ?chaos_seed:int ->
  ?state_dir:string ->
  ?progress:(string -> unit) ->
  unit ->
  outcome
(** Run the replay.  Defaults: all 17 workloads, 1000 requests,
    {!Pool.default_domains} concurrency, seed 42, drift on,
    [sample_every] 2, [merge_every] 8, [drift_min_execs] 64,
    [check_every] 16 (0 disables the differential sample).
    [progress] receives one-line phase messages.  Raises [Failure] on
    an unknown workload name.

    [chaos] (default 0) plants that many {!Inject.server_plan} faults
    (seeded by [chaos_seed], default 7) across the request stream:
    worker kills and stalls strike inside the victim's guarded
    closure; artifact corruption/truncation and journal tears damage
    the environment just before the victim fires.  Every victim is
    differentially checked; the certification bar is
    [ro_chaos_escapes = 0].

    [state_dir] makes the server durable and adds a crash-restart
    cycle between the waves: after wave 1's sync the server is killed
    with {e no} final flush, a fresh server restores from the state
    dir (certified exact in [ro_restore_exact]), and wave 2 resumes on
    it.  Restart time is excluded from [ro_elapsed_s]. *)

val write_json : path:string -> outcome -> unit
(** Write the bench record ([BENCH_PR7.json], [BENCH_PR10.json]):
    parameters, throughput and latency, per-cache
    hit/miss/build/eviction counters, native store counters, chaos and
    durability verdicts, re-optimization events, differential-check
    tally. *)
