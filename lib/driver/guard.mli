(** Per-job resilience: watchdog deadlines, bounded seeded retries, and
    structured failure classification.

    {!protect} runs one job under a {!policy} and always returns — every
    exception the job can raise is folded into a {!Pool.outcome}:

    - normal return               → [Ok]
    - {!Sim.Runtime.Cancelled}    → [Timeout] (the watchdog fired)
    - {!Sim.Runtime.Trap}         → [Trap] (deterministic; never retried)
    - any other exception         → retried up to [retries] times with
      seeded exponential backoff, then [Crash] (no retries configured)
      or [Gave_up] (retries exhausted)

    Backend degradation (the [degrade] field) is interpreted one level
    up, by {!Pipeline.run_jobs_guarded}, which walks the execution
    backends from the requested one down to the reference interpreter
    and calls {!protect} once per rung. *)

type policy = {
  timeout_ms : int option;
      (** per-attempt wall-clock budget; [None] = no watchdog *)
  retries : int;      (** extra attempts after a crashed one (not traps) *)
  backoff_ms : int;   (** base backoff unit; doubles per attempt, with
                          seeded jitter of up to one unit; [0] = none *)
  seed : int;         (** jitter seed — retry schedules are reproducible *)
  degrade : bool;     (** walk the backend ladder on failure
                          ({!Pipeline.run_jobs_guarded}) *)
}

val default : policy
(** No timeout, no retries, 10 ms backoff base, no degradation. *)

type meta = {
  m_attempts : int;        (** attempts performed, >= 1 *)
  m_errors : string list;  (** one line per failed attempt, oldest first *)
}

val backoff_ms : policy -> index:int -> attempt:int -> int
(** The deterministic backoff before retrying [attempt] of job [index]. *)

val cancel_of : policy -> (unit -> bool) option
(** A fresh watchdog flag for one attempt under [policy]'s deadline
    ([None] when the policy has no timeout). *)

val protect :
  ?index:int ->
  policy ->
  (attempt:int -> cancel:(unit -> bool) option -> 'a) ->
  'a Pool.outcome * meta
(** Run a job to a structured outcome; never raises from the job's own
    failures.  The job receives the attempt number (1-based) and a fresh
    cancellation flag to thread into {!Sim.Runtime.config.cancel};
    [index] only seeds the backoff jitter. *)
