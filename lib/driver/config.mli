(** Pipeline configuration. *)

type t = {
  heuristic : Mopt.Switch_lower.heuristic_set;
      (** switch translation heuristic set (paper Table 2) *)
  selector : [ `Greedy | `Exhaustive ];
      (** ordering selection algorithm (Figure 8 vs full subset search) *)
  apply_options : Reorder.Apply.options;
  reorder_enabled : bool;   (** false = measure the original only *)
  analysis_facts : bool;
      (** detect with interval facts ({!Analysis.Intervals}): admits
          compare-not-last blocks, register compares whose other operand
          the facts pin to a constant, and facts-narrowed overlapping
          ranges — sequences the syntactic walk rejects (default
          [true]; disable for the purely syntactic paper baseline) *)
  common_succ : bool;       (** also reorder common-successor runs (Sec. 10) *)
  profile : [ `Trained | `Static | `Both ];
      (** profile source (default [`Trained], the paper's baseline).
          [`Static] skips the training run entirely and synthesizes the
          counts with {!Reorder.Profiles.of_static} (heuristic branch
          probabilities + frequency propagation); [`Both] trains and
          then backfills sequences the training input never exercised
          with the static prediction.  Common-successor profiling needs
          a training run, so with [`Static] those rewrites degrade to
          [Unchanged] *)
  keep_original_default : bool;
      (** ablation: restrict the default target to the original one *)
  coalesce_machine : Sim.Cycle_model.params option;
      (** when set, each sequence may instead be coalesced into an
          indirect jump if that is cheaper under this machine's cost
          model (the paper's Section 9 suggestion, via [UhW97]) *)
  delay_fill_from_target : bool;
      (** fill remaining delay slots from the taken successor with the
          annul bit (vpo's strategy; ablation toggle) *)
  profile_layout : bool;
      (** lay out both versions with training-run branch frequencies
          (Calder-Grunwald-style placement; an ablation, not part of the
          paper's baseline) *)
  predictors : (int * int * int) list;
      (** (history bits, counter bits, entries) simulated on every run *)
  validate : bool;          (** run the MIR validator after every stage *)
  verify : bool;
      (** translation-validate every sequence rewrite with
          {!Check.Verify} right after the reordering pass (before any
          later cleanup reshapes the blocks); a rejected rewrite fails
          the pipeline *)
  fuel : int;               (** simulator instruction budget per run *)
  backend : [ `Reference | `Predecoded | `Compiled | `Native ];
      (** execution engine for the training and measurement runs
          (default [`Compiled]; all four are observably identical, so
          this only changes wall-clock time — but [`Native] needs a
          working ocamlfind toolchain and otherwise degrades down the
          {!Pipeline.run_guarded_job} ladder) *)
  native_cache_dir : string option;
      (** [.cmxs] artifact store for the native backend ([None] =
          {!Sim.Native.Cache.default_dir}) *)
  native_cache : bool;
      (** disable to rebuild native artifacts in a throwaway temp dir *)
  cancel : (unit -> bool) option;
      (** cooperative cancellation flag threaded into every simulator
          run (polled once per basic block); typically a
          {!Sim.Runtime.watchdog}.  [None] (the default) costs
          nothing. *)
}

val default : t

val backend_name :
  [ `Reference | `Predecoded | `Compiled | `Native ] -> string
(** Stable machine-readable tag ("reference" / "predecoded" /
    "compiled" / "native") used in manifests and reports. *)

val profile_name : [ `Trained | `Static | `Both ] -> string
(** Stable machine-readable tag ("trained" / "static" / "both"). *)

val profile_of_name : string -> [ `Trained | `Static | `Both ] option
(** Inverse of {!profile_name}; [None] on unknown tags. *)

val paper_predictors : (int * int * int) list
(** The (0,1) and (0,2) predictors with 32..2048 entries of Table 6
    (which includes Table 5's (0,2)x2048). *)
