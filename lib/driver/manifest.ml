(* Machine-readable failure manifests.

   One JSON object per line, flushed as soon as the entry is known, so a
   run killed mid-corpus leaves a readable prefix behind — that is what
   `bromc fuzz --resume` and the CI resume job consume.  The format is a
   flat object of scalars; the reader below parses exactly that (it is
   not a general JSON parser, and does not need to be). *)

type entry = {
  e_id : int;            (* job index / fuzz case number *)
  e_label : string;
  e_status : string;     (* Pool.outcome_status or "ok"/"failed"/... *)
  e_message : string;
  e_attempts : int;
  e_retried : int;
  e_backend : string;    (* backend that served the job; "" when n/a *)
  e_degraded : bool;
  e_injected : string;   (* Inject.kind_name of a planted fault; "" *)
  e_wall_ms : float;
}

let entry ?(label = "") ?(message = "") ?(attempts = 1) ?(retried = 0)
    ?(backend = "") ?(degraded = false) ?(injected = "") ?(wall_ms = 0.0)
    ~id ~status () =
  {
    e_id = id;
    e_label = label;
    e_status = status;
    e_message = message;
    e_attempts = attempts;
    e_retried = retried;
    e_backend = backend;
    e_degraded = degraded;
    e_injected = injected;
    e_wall_ms = wall_ms;
  }

let ok e = String.equal e.e_status "ok"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_line e =
  Printf.sprintf
    "{\"id\": %d, \"label\": \"%s\", \"status\": \"%s\", \"message\": \"%s\", \
     \"attempts\": %d, \"retried\": %d, \"backend\": \"%s\", \"degraded\": %b, \
     \"injected\": \"%s\", \"wall_ms\": %.3f}"
    e.e_id (escape e.e_label) (escape e.e_status) (escape e.e_message)
    e.e_attempts e.e_retried (escape e.e_backend) e.e_degraded
    (escape e.e_injected) e.e_wall_ms

type writer = out_channel

let create path : writer = open_out path

let add (w : writer) e =
  output_string w (to_line e);
  output_char w '\n';
  flush w

let close (w : writer) = close_out w

let write path entries =
  let w = create path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> List.iter (add w) entries)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

(* parse one flat JSON object of scalar fields into an assoc list of
   raw string values (strings unescaped, numbers/bools verbatim) *)
let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (m ^ ": " ^ line))) fmt
  in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> error "expected %c" c
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then error "dangling escape";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if !pos + 5 >= n then error "short \\u escape";
            let code = int_of_string ("0x" ^ String.sub line (!pos + 2) 4) in
            Buffer.add_char b (Char.chr (code land 255));
            pos := !pos + 4
          | c -> error "unknown escape \\%c" c);
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some _ ->
      let start = !pos in
      while
        !pos < n && (match line.[!pos] with ',' | '}' -> false | _ -> true)
      do
        incr pos
      done;
      String.trim (String.sub line start (!pos - start))
    | None -> error "expected a value"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let continue = ref true in
    while !continue do
      skip_ws ();
      let key = parse_string () in
      expect ':';
      let v = parse_scalar () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' -> incr pos
      | Some '}' ->
        incr pos;
        continue := false
      | _ -> error "expected , or }"
    done
  end;
  List.rev !fields

let entry_of_line line =
  let fields = parse_object line in
  let str k = Option.value ~default:"" (List.assoc_opt k fields) in
  let int k = Option.value ~default:0 (int_of_string_opt (str k)) in
  let flo k = Option.value ~default:0.0 (float_of_string_opt (str k)) in
  {
    e_id = int "id";
    e_label = str "label";
    e_status = str "status";
    e_message = str "message";
    e_attempts = max 1 (int "attempts");
    e_retried = int "retried";
    e_backend = str "backend";
    e_degraded = String.equal (str "degraded") "true";
    e_injected = str "injected";
    e_wall_ms = flo "wall_ms";
  }

(* a manifest is appended line by line and flushed per entry, so the
   one malformed shape a crash can leave behind is a torn final line
   (partial write, no trailing newline, or cut mid-string).  [read]
   tolerates exactly that: a parse failure on the last line drops the
   line instead of failing the whole load.  A malformed line with valid
   lines after it is real corruption and still raises. *)
let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" then lines := line :: !lines
         done
       with End_of_file -> ());
      let rec parse acc = function
        | [] -> List.rev acc
        | [ last ] -> (
          match entry_of_line last with
          | e -> List.rev (e :: acc)
          | exception Parse_error _ -> List.rev acc)
        | line :: rest -> parse (entry_of_line line :: acc) rest
      in
      parse [] (List.rev !lines))
