(** The long-running optimization service behind [bromc serve].

    A server owns a {!Pool.Workers} pool and fans run requests across
    it.  In front of the engines sit three content-hash
    {!Sim.Artifact} caches — parsed MIR, pre-decoded {!Sim.Image}s and
    compiled closure programs (the native rung additionally reuses
    {!Sim.Native}'s on-disk [.cmxs] store and in-process memo) — so
    each distinct program is parsed, trained, reordered, pre-decoded
    and compiled {e once} and then served from warm artifacts, with
    single-flight builds when several domains request the same cold
    key at once.

    {b Online profiles.}  The served artifact is never instrumented
    (responses stay byte-identical to a batch run, and the hot path
    touches no shared counter).  Instead every [sample_every]-th
    request per worker also executes the cached {e instrumented
    training clone} on the request's input, recording into that
    worker's private profile shard ({!Sim.Profile.copy_shape}) and
    per-worker predictor bank.  Shards are merged asynchronously into
    the program's global profile — opportunistically after enough
    samples accumulate (a [try_lock]; nobody blocks), or forced by
    {!sync}.

    {b Drift-triggered re-optimization.}  After a merge, if enough new
    executions accumulated, the server recomputes the Eq. 1–4
    selection signature ({!Reorder.Drift}) under the merged counts.  A
    changed signature means live traffic now justifies a different
    ordering for at least one sequence: the server re-optimizes from
    the cached base ({!Pipeline.reoptimize} — no re-parse, no
    re-detect), rebuilds image and closure artifacts under a new
    generation key, and atomically swaps the served artifact.
    In-flight requests keep the generation they started with.

    {b Resilience.}  Every request runs under the PR-5 {!Guard}
    ladder: per-attempt watchdog, bounded seeded retries, and backend
    degradation native → compiled → predecoded → reference, each rung
    served from its cached artifact.  One poisoned request cannot take
    the service down.

    {b Durability.}  With [state_dir] set, everything the online loop
    learns is persisted through {!State}: every merge appends an
    absolute per-program journal record (plus the predictor-bank
    tallies), a snapshot compacts the journal every [snapshot_every]
    records, and graceful {!shutdown} drains, merges and leaves a
    fresh snapshot.  A restarting server warm-starts each persisted
    program at its learned drift generation with its merged profile
    counters intact — no retraining, no generation reset — and drops
    records whose content key no longer matches (config change).

    {b Admission control.}  With [queue_cap] set, a request arriving
    while [queue_cap] tasks wait is shed with an ["overloaded"]
    response instead of growing the queue (and tail latency) without
    bound.  Per-request deadlines ([deadline_ms]) tighten the
    watchdog for that request only. *)

type t

type response = {
  rs_program : string;  (** request's program name *)
  rs_status : string;  (** {!Pool.outcome_status}: ["ok"], ["trap"], … *)
  rs_output : string;  (** program stdout ([""] unless ok) *)
  rs_exit_code : int;
  rs_backend : string;  (** rung that served the request *)
  rs_generation : int;  (** artifact generation served *)
  rs_cold : bool;  (** this request built the program's artifacts *)
  rs_message : string;  (** failure detail ([""] when ok) *)
  rs_wall_ms : float;  (** in-worker service time *)
}

type reopt_event = {
  re_program : string;
  re_generation : int;  (** generation the re-optimization created *)
  re_executions : int;  (** merged profile executions at the trigger *)
  re_signature : string;  (** the new selection signature *)
}

type stats = {
  st_requests : int;
  st_cold : int;  (** requests that found their program cold *)
  st_shadow_runs : int;  (** sampled instrumented executions *)
  st_merges : int;  (** shard-merge passes *)
  st_reopts : int;  (** drift-triggered re-optimizations *)
  st_domains : int;
  st_caches : Sim.Artifact.stats list;  (** program/MIR/image/closure *)
  st_native : Sim.Native.stats;
  st_mispredicts : ((int * int * int) * (int * int)) list;
      (** merged shadow-run telemetry per predictor key:
          (lookups, mispredicts) *)
  st_overloaded : int;  (** requests shed by admission control *)
  st_restored : int;  (** programs warm-started from [state_dir] *)
  st_programs : (string * int * int) list;
      (** per program: (name, served generation, profile executions) *)
}

val create :
  ?config:Config.t ->
  ?policy:Guard.policy ->
  ?domains:int ->
  ?sample_every:int ->
  ?merge_every:int ->
  ?drift_min_execs:int ->
  ?state_dir:string ->
  ?queue_cap:int ->
  ?snapshot_every:int ->
  unit ->
  t
(** Spawn the worker pool and empty caches.  [sample_every] (default
    4): every n-th request per worker runs the profiling shadow.
    [merge_every] (default 8): shadow runs accumulated across workers
    before an opportunistic merge attempt.  [drift_min_execs] (default
    32): new profile executions required after the last
    (re-)optimization before the drift check may fire — the damper
    that keeps a handful of unusual requests from thrashing the
    artifacts.  [policy] defaults to {!Guard.default} with degradation
    enabled.

    [state_dir] makes the server durable: learned state is journaled
    and snapshotted there ({!State}), and existing state found in the
    directory is restored before the first request — each surviving
    program warm-starts at its persisted drift generation with its
    merged profile counters.  [queue_cap] (default unbounded) bounds
    the pool's waiting queue; excess requests are shed with an
    ["overloaded"] response.  [snapshot_every] (default 64): journal
    records between snapshot compactions. *)

val submit :
  ?deadline_ms:int ->
  ?inject:(unit -> unit) ->
  t -> name:string -> source:string -> input:string -> response
(** Serve one request, blocking the calling thread (the work itself
    runs on a pool worker — do not call from inside one).  [name] is a
    display label; caching is keyed by a content hash of [source] and
    the config fingerprint, so equal sources share artifacts whatever
    their names.  A cold program is compiled, trained on this
    request's input, reordered and cached; every later request (any
    worker) reuses the artifacts.

    [deadline_ms] tightens the guard policy's watchdog for this
    request only (it never loosens a stricter policy timeout); on
    expiry the response status is ["timeout"].  When admission control
    sheds the request the response status is ["overloaded"] — no
    exception escapes.  [inject] is the chaos hook: it runs {e inside}
    the guarded closure on the first execution attempt, so a raised
    fault exercises the real recovery path (retry, degradation to the
    next rung); test/fault-drill use only. *)

val post :
  ?deadline_ms:int ->
  ?inject:(unit -> unit) ->
  t -> name:string -> source:string -> input:string ->
  (response -> unit) -> unit
(** Fire-and-forget {!submit}: enqueue the request and return; the
    callback runs on the worker that served it — except for a shed
    request, whose ["overloaded"] response is delivered on the
    {e calling} thread, so drivers tracking in-flight counts never
    leak a slot. *)

val oracle : t -> name:string -> source:string -> input:string -> string * int
(** [(output, exit_code)] of the {e reference interpreter} on the
    cached optimized base (pre-reordering) — the ground truth a served
    response must match byte for byte.  Builds the program's entry if
    cold.  Runs on the calling thread; intended for differential
    checks in tests and replay, not the hot path. *)

val sync : t -> unit
(** Block until every program's shards are merged and the drift check
    has run (re-optimizing where drifted).  Deterministic alternative
    to waiting for the opportunistic merge.  On a durable server every
    program's state is journaled by the merge, so after [sync] a crash
    loses nothing learned before it. *)

val stats : t -> stats
val reopt_events : t -> reopt_event list
(** Re-optimizations so far, oldest first. *)

val domains : t -> int

val shutdown : ?crash:bool -> t -> unit
(** Graceful by default: stop accepting, drain the queue, join the
    workers, merge every straggling shard, and (durable servers) leave
    a final snapshot and an empty journal.  [~crash:true] simulates
    power loss for fault drills: the workers are stopped but {e no}
    final merge or snapshot is written — a restart must stand on the
    journal alone.  Idempotent. *)
