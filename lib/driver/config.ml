type t = {
  heuristic : Mopt.Switch_lower.heuristic_set;
  selector : [ `Greedy | `Exhaustive ];
  apply_options : Reorder.Apply.options;
  reorder_enabled : bool;
  analysis_facts : bool;
      (** detect with interval facts ({!Analysis.Intervals}): admits
          compare-not-last blocks, facts-constant register compares and
          facts-narrowed ranges that the syntactic walk rejects *)
  common_succ : bool;
  profile : [ `Trained | `Static | `Both ];
      (** where the profile counts come from: a training run ([`Trained],
          the paper's baseline), pure static prediction
          ({!Reorder.Profiles.of_static}, no training run at all), or
          training backfilled with predictions for unexercised
          sequences ([`Both]) *)
  keep_original_default : bool;
  coalesce_machine : Sim.Cycle_model.params option;
  delay_fill_from_target : bool;
  profile_layout : bool;
  predictors : (int * int * int) list;
  validate : bool;
  verify : bool;
  fuel : int;
  backend : [ `Reference | `Predecoded | `Compiled | `Native ];
  native_cache_dir : string option;
  native_cache : bool;
  cancel : (unit -> bool) option;
}

let backend_name = function
  | `Reference -> "reference"
  | `Predecoded -> "predecoded"
  | `Compiled -> "compiled"
  | `Native -> "native"

let profile_name = function
  | `Trained -> "trained"
  | `Static -> "static"
  | `Both -> "both"

let profile_of_name = function
  | "trained" -> Some `Trained
  | "static" -> Some `Static
  | "both" -> Some `Both
  | _ -> None

let paper_predictors =
  List.concat_map
    (fun entries -> [ (0, 1, entries); (0, 2, entries) ])
    [ 32; 64; 128; 256; 512; 1024; 2048 ]

let default =
  {
    heuristic = Mopt.Switch_lower.set_i;
    selector = `Greedy;
    apply_options = Reorder.Apply.default_options;
    reorder_enabled = true;
    analysis_facts = true;
    common_succ = false;
    profile = `Trained;
    keep_original_default = false;
    coalesce_machine = None;
    delay_fill_from_target = true;
    profile_layout = false;
    predictors = paper_predictors;
    validate = true;
    verify = false;
    fuel = 500_000_000;
    backend = `Compiled;
    native_cache_dir = None;
    native_cache = true;
    cancel = None;
  }
