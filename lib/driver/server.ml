type response = {
  rs_program : string;
  rs_status : string;
  rs_output : string;
  rs_exit_code : int;
  rs_backend : string;
  rs_generation : int;
  rs_cold : bool;
  rs_message : string;
  rs_wall_ms : float;
}

type reopt_event = {
  re_program : string;
  re_generation : int;
  re_executions : int;
  re_signature : string;
}

type stats = {
  st_requests : int;
  st_cold : int;
  st_shadow_runs : int;
  st_merges : int;
  st_reopts : int;
  st_domains : int;
  st_caches : Sim.Artifact.stats list;
  st_native : Sim.Native.stats;
  st_mispredicts : ((int * int * int) * (int * int)) list;
  st_overloaded : int;
  st_restored : int;
  st_programs : (string * int * int) list;
}

(* the artifacts one generation serves from; swapped atomically as a
   whole so a request never mixes generations *)
type artifact = {
  a_generation : int;
  a_signature : string;  (* Drift.signature at (re-)optimization time *)
  a_served : Mir.Program.t;  (* reordered + finalized *)
  a_image : Sim.Image.t;
  a_compiled : Sim.Compiled.t;
}

type entry = {
  e_key : string;
  e_name : string;
  e_source : string;  (* verbatim, so durable state can rebuild cold *)
  e_base : Mir.Program.t;  (* optimized base, never transformed *)
  e_seqs : Reorder.Detect.t list;
  e_train_compiled : Sim.Compiled.t;  (* instrumented clone, compiled *)
  e_global : Sim.Profile.t;  (* merged profile; counts under e_merge *)
  e_shards : (Mutex.t * Sim.Profile.t) array;  (* one per worker *)
  e_artifact : artifact Atomic.t;
  e_merge : Mutex.t;  (* serializes merge + drift check + re-opt *)
  mutable e_last_opt_execs : int;  (* under e_merge *)
  e_pending : int Atomic.t;  (* shadow runs since last merge attempt *)
}

type t = {
  config : Config.t;
  policy : Guard.policy;
  pool : Pool.Workers.t;
  sample_every : int;
  merge_every : int;
  drift_min_execs : int;
  programs : entry Sim.Artifact.t;
  mir_cache : Mir.Program.t Sim.Artifact.t;
  image_cache : Sim.Image.t Sim.Artifact.t;
  closure_cache : Sim.Compiled.t Sim.Artifact.t;
  entries : entry list ref;  (* for sync/stats iteration *)
  entries_lock : Mutex.t;
  ticks : int array;  (* per-worker request count (worker-private slot) *)
  banks : Sim.Predictor.bank array;  (* per-worker shadow telemetry *)
  bank_locks : Mutex.t array;
  bank_global : Sim.Predictor.bank;
  bank_global_lock : Mutex.t;
  requests : int Atomic.t;
  cold : int Atomic.t;
  shadow_runs : int Atomic.t;
  merges : int Atomic.t;
  reopts : int Atomic.t;
  events : reopt_event list ref;
  events_lock : Mutex.t;
  (* durable state: a journal appended after every merge plus periodic
     snapshots.  [None] = ephemeral server (the default) *)
  state_dir : string option;
  journal : State.writer option;
  snapshot_every : int;
  snap_mark : int Atomic.t;  (* journal records at the last snapshot *)
  snap_lock : Mutex.t;  (* one snapshot writer at a time *)
  restored : int Atomic.t;  (* programs warm-started from disk *)
  mutable stopped : bool;
}

let domains t = Pool.Workers.size t.pool

(* Rendered explicitly from plain data — never [Hashtbl.hash]: the
   heuristic set carries a closure, and closures hash by code address,
   which differs between processes.  The fingerprint seeds the content
   keys persisted by {!State}, so it must be stable across restarts or
   every restored record would be dropped as a config mismatch. *)
let config_fingerprint (c : Config.t) =
  let b = function true -> "t" | false -> "f" in
  let machine =
    match c.Config.coalesce_machine with
    | None -> "-"
    | Some m ->
        Printf.sprintf "%s:%d:%d:%d:%s" m.Sim.Cycle_model.model_name
          m.Sim.Cycle_model.mispredict_penalty m.Sim.Cycle_model.indirect_penalty
          m.Sim.Cycle_model.load_latency
          (match m.Sim.Cycle_model.predictor with
          | None -> "-"
          | Some (h, cbits, e) -> Printf.sprintf "%d.%d.%d" h cbits e)
  in
  Printf.sprintf "%s|%s|%d.%s.%s|%s%s%s%s|%s|%s|%s"
    c.Config.heuristic.Mopt.Switch_lower.hs_name
    (match c.Config.selector with `Greedy -> "greedy" | `Exhaustive -> "exhaustive")
    c.Config.apply_options.Reorder.Apply.tail_dup_limit
    (b c.Config.apply_options.Reorder.Apply.improve_cmp)
    (b c.Config.apply_options.Reorder.Apply.improve_form4)
    (b c.Config.reorder_enabled)
    (b c.Config.analysis_facts)
    (b c.Config.keep_original_default)
    (b c.Config.delay_fill_from_target)
    machine
    (Config.profile_name c.Config.profile)
    (string_of_int c.Config.fuel)

let content_key t source =
  Digest.to_hex (Digest.string (config_fingerprint t.config ^ "\x00" ^ source))

let gen_key key gen = Printf.sprintf "%s#g%d" key gen

let sim_config ?(cancel = None) t =
  {
    Sim.Machine.default_config with
    Sim.Machine.fuel = t.config.Config.fuel;
    Sim.Machine.cancel = cancel;
  }

let signature_of t base seqs table =
  Reorder.Drift.signature ~selector:t.config.Config.selector
    ~keep_original_default:t.config.Config.keep_original_default base seqs
    table

(* build the servable artifacts of one generation, through the
   content-hash caches (image and closure entries are generation-keyed:
   a re-optimization produces new content) *)
let build_artifact t ~key ~generation ~signature served =
  let gk = gen_key key generation in
  let image =
    Sim.Artifact.find_or_build t.image_cache gk (fun () ->
        Sim.Image.build served)
  in
  let compiled =
    Sim.Artifact.find_or_build t.closure_cache gk (fun () ->
        Sim.Compiled.compile image)
  in
  {
    a_generation = generation;
    a_signature = signature;
    a_served = served;
    a_image = image;
    a_compiled = compiled;
  }

(* ------------------------------------------------------------------ *)
(* Durable state                                                       *)
(* ------------------------------------------------------------------ *)

(* one absolute journal/snapshot record for a program entry; the caller
   must hold [e_merge] (or otherwise know the globals are quiescent) so
   counters and generation are read consistently *)
let program_record (e : entry) =
  let art = Atomic.get e.e_artifact in
  let ranges, combs = Sim.Profile.counters e.e_global in
  {
    State.p_key = e.e_key;
    p_name = e.e_name;
    p_source = e.e_source;
    p_generation = art.a_generation;
    p_signature = art.a_signature;
    p_executions = Sim.Profile.total_executions e.e_global;
    p_last_opt_execs = e.e_last_opt_execs;
    p_ranges = ranges;
    p_combs = combs;
  }

let bank_record t : State.bank =
  Mutex.lock t.bank_global_lock;
  let lookups = Sim.Predictor.bank_lookups t.bank_global in
  let mis = Sim.Predictor.bank_mispredicts t.bank_global in
  Mutex.unlock t.bank_global_lock;
  List.map2
    (fun (k, l) (k', m) ->
      assert (k = k');
      (k, (l, m)))
    lookups mis

(* caller holds [e_merge] *)
let journal_entry t e =
  match t.journal with
  | None -> ()
  | Some w ->
    State.journal_program w (program_record e);
    State.journal_bank w (bank_record t)

let snapshot_due t =
  match t.journal with
  | None -> false
  | Some w -> State.appended w - Atomic.get t.snap_mark >= t.snapshot_every

(* write a full snapshot and truncate the journal.  Takes each entry's
   [e_merge] one at a time — callers must hold NO [e_merge] (the merge
   paths signal "due" and snapshot after unlocking), so two concurrent
   snapshotters cannot deadlock; [snap_lock]'s try_lock makes the loser
   skip rather than queue.  A merge that lands between record collection
   and the journal truncation loses only its journal record, and only
   until that program's next merge re-journals it (records are
   absolute). *)
let snapshot t =
  match (t.state_dir, t.journal) with
  | Some dir, Some w ->
    if Mutex.try_lock t.snap_lock then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.snap_lock)
        (fun () ->
          Mutex.lock t.entries_lock;
          let es = !(t.entries) in
          Mutex.unlock t.entries_lock;
          let records =
            List.map
              (fun e ->
                Mutex.lock e.e_merge;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock e.e_merge)
                  (fun () -> program_record e))
              es
          in
          State.write_snapshot ~dir records (bank_record t);
          State.truncate_journal ~dir;
          Atomic.set t.snap_mark (State.appended w))
  | _ -> ()

(* cold path, single-flighted by the [programs] cache: parse + optimize
   the base once, detect, instrument and train on this first request's
   input, reorder, and pre-build every serving artifact *)
let build_entry t ~name ~key ~source ~input =
  let base =
    Sim.Artifact.find_or_build t.mir_cache key (fun () ->
        Pipeline.compile_base t.config source)
  in
  let seqs = Pipeline.detect_seqs t.config base in
  let train_prog, table = Pipeline.instrument t.config base seqs in
  let train_compiled = Sim.Compiled.compile (Sim.Image.build train_prog) in
  (match t.config.Config.profile with
  | `Static ->
    (* cold requests start on the pure static prediction: no training
       run; the online shard profiles and {!Reorder.Drift} take over as
       real counts accumulate and diverge from the prediction *)
    Reorder.Profiles.add_static base seqs table
  | (`Trained | `Both) as mode ->
    (* the training run: a trap or fuel exhaustion still leaves usable
       partial counts, so it is not fatal here — the guarded request
       itself will surface the failure to the caller *)
    (try
       ignore
         (Sim.Compiled.exec ~config:(sim_config t) ~profile:table
            train_compiled ~input)
     with _ -> ());
    if mode = `Both then Reorder.Profiles.add_static base seqs table);
  let served, _report = Pipeline.reoptimize t.config ~name base seqs table in
  let signature = signature_of t base seqs table in
  let artifact = build_artifact t ~key ~generation:1 ~signature served in
  let entry =
    {
      e_key = key;
      e_name = name;
      e_source = source;
      e_base = base;
      e_seqs = seqs;
      e_train_compiled = train_compiled;
      e_global = table;
      e_shards =
        Array.init
          (Pool.Workers.size t.pool)
          (fun _ -> (Mutex.create (), Sim.Profile.copy_shape table));
      e_artifact = Atomic.make artifact;
      e_merge = Mutex.create ();
      e_last_opt_execs = Sim.Profile.total_executions table;
      e_pending = Atomic.make 0;
    }
  in
  Mutex.lock t.entries_lock;
  t.entries := !(t.entries) @ [ entry ];
  Mutex.unlock t.entries_lock;
  (* journal the newborn entry: a crash before its first merge must
     still find the program (training counts included) on restart *)
  (match t.journal with
  | None -> ()
  | Some w -> State.journal_program w (program_record entry));
  entry

(* warm-start one persisted program: recompile the base from its
   persisted source, restore the merged profile counters verbatim, and
   re-optimize under them at the persisted generation — no training
   run, no generation reset.  The selection signature is recomputed
   from the restored counters; with counters intact it reproduces the
   persisted one, and it is what future drift checks compare against. *)
let restore_entry t (p : State.program) =
  let key = p.State.p_key in
  let base =
    Sim.Artifact.find_or_build t.mir_cache key (fun () ->
        Pipeline.compile_base t.config p.State.p_source)
  in
  let seqs = Pipeline.detect_seqs t.config base in
  let train_prog, table = Pipeline.instrument t.config base seqs in
  let train_compiled = Sim.Compiled.compile (Sim.Image.build train_prog) in
  let applied =
    Sim.Profile.set_counters table ~ranges:p.State.p_ranges
      ~combs:p.State.p_combs
  in
  if applied = 0 && (p.State.p_ranges <> [] || p.State.p_combs <> []) then
    failwith "restore: persisted counters do not match the program's shape";
  let served, _report =
    Pipeline.reoptimize t.config ~name:p.State.p_name base seqs table
  in
  let signature = signature_of t base seqs table in
  let artifact =
    build_artifact t ~key ~generation:p.State.p_generation ~signature served
  in
  {
    e_key = key;
    e_name = p.State.p_name;
    e_source = p.State.p_source;
    e_base = base;
    e_seqs = seqs;
    e_train_compiled = train_compiled;
    e_global = table;
    e_shards =
      Array.init
        (Pool.Workers.size t.pool)
        (fun _ -> (Mutex.create (), Sim.Profile.copy_shape table));
    e_artifact = Atomic.make artifact;
    e_merge = Mutex.create ();
    e_last_opt_execs = p.State.p_last_opt_execs;
    e_pending = Atomic.make 0;
  }

(* replay persisted state into the caches, drop what no longer matches
   (config change, unparsable source); never fails the boot *)
let restore_state t dir =
  let r = State.load ~dir in
  List.iter
    (fun (p : State.program) ->
      if String.equal (content_key t p.State.p_source) p.State.p_key then
        match
          Sim.Artifact.find_or_build t.programs p.State.p_key (fun () ->
              restore_entry t p)
        with
        | entry ->
          Mutex.lock t.entries_lock;
          t.entries := !(t.entries) @ [ entry ];
          Mutex.unlock t.entries_lock;
          Atomic.incr t.restored
        | exception _ -> ())
    r.State.r_programs;
  (try
     Mutex.lock t.bank_global_lock;
     Fun.protect
       ~finally:(fun () -> Mutex.unlock t.bank_global_lock)
       (fun () -> Sim.Predictor.bank_add_tallies t.bank_global r.State.r_bank)
   with Invalid_argument _ -> ())

let create ?(config = Config.default) ?policy ?domains ?(sample_every = 4)
    ?(merge_every = 8) ?(drift_min_execs = 32) ?state_dir ?queue_cap
    ?(snapshot_every = 64) () =
  if sample_every < 1 then invalid_arg "Server.create: sample_every < 1";
  if merge_every < 1 then invalid_arg "Server.create: merge_every < 1";
  if snapshot_every < 1 then invalid_arg "Server.create: snapshot_every < 1";
  let policy =
    match policy with
    | Some p -> p
    | None -> { Guard.default with Guard.degrade = true }
  in
  let pool = Pool.Workers.create ?domains ?queue_cap () in
  let n = Pool.Workers.size pool in
  let journal =
    match state_dir with
    | None -> None
    | Some dir -> Some (State.open_journal ~dir)
  in
  let t =
    {
      config;
      policy;
      pool;
      sample_every;
      merge_every;
      drift_min_execs;
      programs = Sim.Artifact.create ~name:"programs" ();
      mir_cache = Sim.Artifact.create ~name:"mir" ();
      image_cache = Sim.Artifact.create ~name:"image" ();
      closure_cache = Sim.Artifact.create ~name:"closure" ();
      entries = ref [];
      entries_lock = Mutex.create ();
      ticks = Array.make n 0;
      banks = Array.init n (fun _ -> Sim.Predictor.bank config.Config.predictors);
      bank_locks = Array.init n (fun _ -> Mutex.create ());
      bank_global = Sim.Predictor.bank config.Config.predictors;
      bank_global_lock = Mutex.create ();
      requests = Atomic.make 0;
      cold = Atomic.make 0;
      shadow_runs = Atomic.make 0;
      merges = Atomic.make 0;
      reopts = Atomic.make 0;
      events = ref [];
      events_lock = Mutex.create ();
      state_dir;
      journal;
      snapshot_every;
      snap_mark = Atomic.make 0;
      snap_lock = Mutex.create ();
      restored = Atomic.make 0;
      stopped = false;
    }
  in
  (match state_dir with
  | Some dir when State.exists ~dir -> restore_state t dir
  | _ -> ());
  t

(* ------------------------------------------------------------------ *)
(* Merge + drift                                                       *)
(* ------------------------------------------------------------------ *)

let record_event t ev =
  Mutex.lock t.events_lock;
  t.events := !(t.events) @ [ ev ];
  Mutex.unlock t.events_lock

(* caller holds e.e_merge *)
let merge_locked t (e : entry) =
  Array.iter
    (fun (m, shard) ->
      Mutex.lock m;
      ignore (Sim.Profile.absorb ~into:e.e_global shard);
      Mutex.unlock m)
    e.e_shards;
  Atomic.incr t.merges;
  (* fold the per-worker predictor banks into the global summary *)
  Array.iteri
    (fun w bank ->
      Mutex.lock t.bank_locks.(w);
      Mutex.lock t.bank_global_lock;
      Sim.Predictor.bank_absorb ~into:t.bank_global bank;
      Mutex.unlock t.bank_global_lock;
      Mutex.unlock t.bank_locks.(w))
    t.banks;
  let execs = Sim.Profile.total_executions e.e_global in
  if execs - e.e_last_opt_execs >= t.drift_min_execs then begin
    let art = Atomic.get e.e_artifact in
    let current = signature_of t e.e_base e.e_seqs e.e_global in
    if Reorder.Drift.drifted ~served:art.a_signature ~current then begin
      (* live traffic justifies a different ordering: rebuild from the
         cached base and swap generations atomically *)
      let served, _report =
        Pipeline.reoptimize t.config ~name:e.e_name e.e_base e.e_seqs
          e.e_global
      in
      let generation = art.a_generation + 1 in
      let artifact =
        build_artifact t ~key:e.e_key ~generation ~signature:current served
      in
      Atomic.set e.e_artifact artifact;
      (* the old generation's cache slots are dead weight now *)
      Sim.Artifact.remove t.image_cache (gen_key e.e_key art.a_generation);
      Sim.Artifact.remove t.closure_cache (gen_key e.e_key art.a_generation);
      Atomic.incr t.reopts;
      record_event t
        {
          re_program = e.e_name;
          re_generation = generation;
          re_executions = execs;
          re_signature = current;
        }
    end;
    e.e_last_opt_execs <- execs
  end;
  (* every merge journals the program's full (absolute) state, so a
     crash at any point loses at most the samples since this record *)
  journal_entry t e

let try_merge t e =
  if Mutex.try_lock e.e_merge then begin
    Fun.protect
      ~finally:(fun () -> Mutex.unlock e.e_merge)
      (fun () -> merge_locked t e);
    (* snapshot with no [e_merge] held — see [snapshot] *)
    if snapshot_due t then snapshot t
  end

let sync t =
  Mutex.lock t.entries_lock;
  let es = !(t.entries) in
  Mutex.unlock t.entries_lock;
  List.iter
    (fun e ->
      Mutex.lock e.e_merge;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock e.e_merge)
        (fun () -> merge_locked t e))
    es;
  if snapshot_due t then snapshot t

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let rungs_of (c : Config.t) =
  match c.Config.backend with
  | `Native -> [ `Native; `Compiled; `Predecoded; `Reference ]
  | `Compiled -> [ `Compiled; `Predecoded; `Reference ]
  | `Predecoded -> [ `Predecoded; `Reference ]
  | `Reference -> [ `Reference ]

let exec_rung t (art : artifact) backend ~cancel ~input =
  let sc = sim_config ~cancel t in
  match backend with
  | `Native ->
    Sim.Native.run_image ~config:sc
      ?cache_dir:t.config.Config.native_cache_dir
      ~use_cache:t.config.Config.native_cache art.a_image ~input
  | `Compiled -> Sim.Compiled.exec ~config:sc art.a_compiled ~input
  | `Predecoded -> Sim.Machine.run_image ~config:sc art.a_image ~input
  | `Reference -> Sim.Machine.run_reference ~config:sc art.a_served ~input

(* the sampled profiling shadow: run the instrumented training clone on
   this request's input, recording into this worker's private shard and
   predictor bank.  Failures are swallowed — the shadow is telemetry,
   not the response *)
let shadow_run t (e : entry) ~worker ~input =
  let m, shard = e.e_shards.(worker) in
  Mutex.lock m;
  Mutex.lock t.bank_locks.(worker);
  (try
     ignore
       (Sim.Compiled.exec ~config:(sim_config t) ~profile:shard
          ~sink:(Sim.Predictor.Sink_bank t.banks.(worker))
          e.e_train_compiled ~input)
   with _ -> ());
  Mutex.unlock t.bank_locks.(worker);
  Mutex.unlock m;
  Atomic.incr t.shadow_runs;
  let pending = 1 + Atomic.fetch_and_add e.e_pending 1 in
  if pending >= t.merge_every then begin
    Atomic.set e.e_pending 0;
    try_merge t e
  end

let handle ?deadline_ms ?inject t ~worker ~name ~source ~input =
  let t0 = Unix.gettimeofday () in
  Atomic.incr t.requests;
  let key = content_key t source in
  let requested = t.config.Config.backend in
  (* a per-request deadline tightens (never loosens) the policy's
     watchdog; it rides the same {!Sim.Runtime.watchdog} machinery *)
  let policy =
    match deadline_ms with
    | None -> t.policy
    | Some ms ->
      let ms =
        match t.policy.Guard.timeout_ms with
        | Some p -> min p ms
        | None -> ms
      in
      { t.policy with Guard.timeout_ms = Some ms }
  in
  (* chaos hook: fires inside the guarded closure exactly once, on the
     first attempt of the first rung, so an injected crash exercises
     the real recovery path (degradation to the next rung) *)
  let injected = ref false in
  let fire_inject () =
    if not !injected then begin
      injected := true;
      match inject with Some f -> f () | None -> ()
    end
  in
  let built = ref false in
  match
    Sim.Artifact.find_or_build t.programs key (fun () ->
        built := true;
        Atomic.incr t.cold;
        build_entry t ~name ~key ~source ~input)
  with
  | exception e ->
    {
      rs_program = name;
      rs_status = "crash";
      rs_output = "";
      rs_exit_code = -1;
      rs_backend = Config.backend_name requested;
      rs_generation = 0;
      rs_cold = !built;
      rs_message = Printexc.to_string e;
      rs_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
    }
  | entry ->
    let art = Atomic.get entry.e_artifact in
    let rungs =
      if policy.Guard.degrade then rungs_of t.config else [ requested ]
    in
    let rec walk rungs =
      match rungs with
      | [] -> assert false
      | backend :: rest -> (
        let outcome, _meta =
          Guard.protect policy (fun ~attempt:_ ~cancel ->
              fire_inject ();
              exec_rung t art backend ~cancel ~input)
        in
        match outcome with
        | Pool.Ok r -> (backend, Pool.Ok r)
        | Pool.Trap _ | Pool.Timeout _ -> (backend, outcome)
        | Pool.Crash _ | Pool.Gave_up _ ->
          if rest = [] then (backend, outcome) else walk rest)
    in
    let backend, outcome = walk rungs in
    let response =
      match outcome with
      | Pool.Ok (r : Sim.Machine.result) ->
        {
          rs_program = name;
          rs_status = "ok";
          rs_output = r.Sim.Machine.output;
          rs_exit_code = r.Sim.Machine.exit_code;
          rs_backend = Config.backend_name backend;
          rs_generation = art.a_generation;
          rs_cold = !built;
          rs_message = "";
          rs_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
        }
      | o ->
        {
          rs_program = name;
          rs_status = Pool.outcome_status o;
          rs_output = "";
          rs_exit_code = -1;
          rs_backend = Config.backend_name backend;
          rs_generation = art.a_generation;
          rs_cold = !built;
          rs_message = Pool.outcome_message o;
          rs_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
        }
    in
    (* profiling shadow on a sampling of successful requests *)
    (if response.rs_status = "ok" && entry.e_seqs <> [] then begin
       t.ticks.(worker) <- t.ticks.(worker) + 1;
       if t.ticks.(worker) mod t.sample_every = 0 then
         shadow_run t entry ~worker ~input
     end);
    response

(* an admission-control rejection is a first-class response, not an
   exception: the server is healthy, it is just refusing to let the
   queue (and so tail latency) grow without bound *)
let overloaded_response ~name (o : Pool.Workers.t) depth cap =
  {
    rs_program = name;
    rs_status = "overloaded";
    rs_output = "";
    rs_exit_code = -1;
    rs_backend = "";
    rs_generation = 0;
    rs_cold = false;
    rs_message =
      Printf.sprintf "queue at capacity (%d waiting, cap %d, %d shed so far)"
        depth cap (Pool.Workers.shed o);
    rs_wall_ms = 0.0;
  }

let submit ?deadline_ms ?inject t ~name ~source ~input =
  match
    Pool.Workers.run t.pool (fun ~worker ->
        handle ?deadline_ms ?inject t ~worker ~name ~source ~input)
  with
  | r -> r
  | exception Pool.Workers.Overloaded { depth; cap } ->
    overloaded_response ~name t.pool depth cap

let post ?deadline_ms ?inject t ~name ~source ~input k =
  match
    Pool.Workers.post t.pool (fun ~worker ->
        k (handle ?deadline_ms ?inject t ~worker ~name ~source ~input))
  with
  | () -> ()
  | exception Pool.Workers.Overloaded { depth; cap } ->
    (* shed on the caller's thread; the callback still fires so drivers
       tracking in-flight counts never leak a slot *)
    k (overloaded_response ~name t.pool depth cap)

let oracle t ~name ~source ~input =
  let key = content_key t source in
  let entry =
    Sim.Artifact.find_or_build t.programs key (fun () ->
        build_entry t ~name ~key ~source ~input)
  in
  let r =
    Sim.Machine.run_reference ~config:(sim_config t) entry.e_base ~input
  in
  (r.Sim.Machine.output, r.Sim.Machine.exit_code)

let stats t =
  {
    st_requests = Atomic.get t.requests;
    st_cold = Atomic.get t.cold;
    st_shadow_runs = Atomic.get t.shadow_runs;
    st_merges = Atomic.get t.merges;
    st_reopts = Atomic.get t.reopts;
    st_domains = Pool.Workers.size t.pool;
    st_caches =
      [
        Sim.Artifact.stats t.programs;
        Sim.Artifact.stats t.mir_cache;
        Sim.Artifact.stats t.image_cache;
        Sim.Artifact.stats t.closure_cache;
      ];
    st_native = Sim.Native.stats ();
    st_mispredicts = bank_record t;
    st_overloaded = Pool.Workers.shed t.pool;
    st_restored = Atomic.get t.restored;
    st_programs =
      (Mutex.lock t.entries_lock;
       let es = !(t.entries) in
       Mutex.unlock t.entries_lock;
       List.map
         (fun e ->
           ( e.e_name,
             (Atomic.get e.e_artifact).a_generation,
             Sim.Profile.total_executions e.e_global ))
         es);
  }

let reopt_events t =
  Mutex.lock t.events_lock;
  let es = !(t.events) in
  Mutex.unlock t.events_lock;
  es

let shutdown ?(crash = false) t =
  if not t.stopped then begin
    t.stopped <- true;
    if crash then
      (* simulated power loss: abandon the pool's queue-drain niceties
         as far as we safely can, and above all write NOTHING — restart
         must stand on the journal alone *)
      Pool.Workers.shutdown t.pool
    else begin
      (* graceful drain: stop accepting (the pool refuses new posts
         once stopping), finish in-flight work, capture every
         straggling shard, then leave a fresh snapshot and an empty
         journal for the next boot *)
      Pool.Workers.shutdown t.pool;
      Mutex.lock t.entries_lock;
      let es = !(t.entries) in
      Mutex.unlock t.entries_lock;
      List.iter
        (fun e ->
          Mutex.lock e.e_merge;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock e.e_merge)
            (fun () -> merge_locked t e))
        es;
      (match t.state_dir with
      | Some dir when t.journal <> None ->
        let records =
          List.map
            (fun e ->
              Mutex.lock e.e_merge;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock e.e_merge)
                (fun () -> program_record e))
            es
        in
        State.write_snapshot ~dir records (bank_record t);
        State.truncate_journal ~dir
      | _ -> ())
    end;
    match t.journal with
    | Some w -> State.close_journal w
    | None -> ()
  end
