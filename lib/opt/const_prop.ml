let run_func (fn : Mir.Func.t) =
  let t = Analysis.Reaching.analyze fn in
  let changed = ref false in
  List.iter
    (fun (b : Mir.Block.t) ->
      let entry_cache = Hashtbl.create 8 in
      let entry_const r =
        match Hashtbl.find_opt entry_cache r with
        | Some v -> v
        | None ->
          let v = Analysis.Reaching.const_in t fn b.Mir.Block.label r in
          Hashtbl.add entry_cache r v;
          v
      in
      (* local environment over the block body; a register not locally
         redefined keeps its entry fact *)
      let env = Hashtbl.create 8 in
      let lookup r =
        match Hashtbl.find_opt env r with
        | Some v -> v
        | None -> entry_const r
      in
      let op_const = function
        | Mir.Operand.Imm n -> Some n
        | Mir.Operand.Reg r -> lookup r
      in
      let subst op =
        match op with
        | Mir.Operand.Reg r -> (
          match lookup r with
          | Some c ->
            changed := true;
            Mir.Operand.Imm c
          | None -> op)
        | Mir.Operand.Imm _ -> op
      in
      let advance insn =
        match insn with
        | Mir.Insn.Mov (r, o) -> Hashtbl.replace env r (op_const o)
        | Mir.Insn.Unop (u, r, o) ->
          Hashtbl.replace env r
            (Option.map (Mir.Insn.eval_unop u) (op_const o))
        | Mir.Insn.Binop (bop, r, x, y) ->
          Hashtbl.replace env r
            (match (op_const x, op_const y) with
            | Some a, Some c
              when not
                     ((bop = Mir.Insn.Div || bop = Mir.Insn.Rem) && c = 0) ->
              Some (Mir.Insn.eval_binop bop a c)
            | _ -> None)
        | Mir.Insn.Load (r, _, _) | Mir.Insn.Call (Some r, _, _) ->
          Hashtbl.replace env r None
        | Mir.Insn.Store _ | Mir.Insn.Cmp _ | Mir.Insn.Call (None, _, _)
        | Mir.Insn.Nop | Mir.Insn.Profile_range _ | Mir.Insn.Profile_comb _ ->
          ()
      in
      let rewrite insn =
        let insn' =
          match insn with
          | Mir.Insn.Mov (r, o) -> Mir.Insn.Mov (r, subst o)
          | Mir.Insn.Unop (u, r, o) -> Mir.Insn.Unop (u, r, subst o)
          | Mir.Insn.Binop (bop, r, x, y) ->
            Mir.Insn.Binop (bop, r, subst x, subst y)
          | Mir.Insn.Load (r, sym, idx) -> Mir.Insn.Load (r, sym, subst idx)
          | Mir.Insn.Store (sym, idx, v) ->
            Mir.Insn.Store (sym, subst idx, subst v)
          | Mir.Insn.Call (dst, f, args) ->
            Mir.Insn.Call (dst, f, List.map subst args)
          | (Mir.Insn.Cmp _ | Mir.Insn.Nop | Mir.Insn.Profile_range _
            | Mir.Insn.Profile_comb _) as i ->
            i
        in
        advance insn';
        insn'
      in
      b.Mir.Block.insns <- List.map rewrite b.Mir.Block.insns)
    fn.Mir.Func.blocks;
  !changed

let run (p : Mir.Program.t) =
  List.fold_left (fun acc fn -> run_func fn || acc) false p.Mir.Program.funcs
