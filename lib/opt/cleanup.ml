let fixpoint_func fn =
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 50 do
    incr rounds;
    let c1 = Branch_chain.run_func fn in
    let c2 = Unreachable.run_func fn in
    let c3 = Copy_prop.run_func fn in
    let c4 = Cse.run_func fn in
    let c5 = Global_const.run_func fn in
    let c6 = Const_prop.run_func fn in
    let c7 = Dead_code.run_func fn in
    continue_ := c1 || c2 || c3 || c4 || c5 || c6 || c7
  done

let run_func fn =
  Delay_slot.strip_func fn;
  fixpoint_func fn;
  (* loop-invariant code motion, then clean up the moves it leaves *)
  if Licm.run_func fn > 0 then fixpoint_func fn;
  ignore (Reposition.run_func fn)

let run (p : Mir.Program.t) = List.iter run_func p.Mir.Program.funcs

let finalize ?(steal_delay_slots = true) (p : Mir.Program.t) =
  run p;
  Delay_slot.run ~steal:steal_delay_slots p
