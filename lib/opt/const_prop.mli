(** Constant propagation driven by reaching definitions
    ({!Analysis.Reaching}).

    Complements {!Global_const}: that pass treats registers absent from
    its state map as varying, deliberately giving up on the machine's
    zero-initialised register file.  The reaching-definitions oracle
    models the entry pseudo-definitions precisely (non-parameters start
    at 0), so a register whose every reaching definition is the same
    [Mov r, #c] — or the entry zero — folds to the constant here even
    when one path never writes it.

    Compares are left untouched, as in {!Global_const}: the sequence
    detector wants registers there, and the interval facts already see
    through them. *)

val run_func : Mir.Func.t -> bool
(** Returns true when something changed. *)

val run : Mir.Program.t -> bool
