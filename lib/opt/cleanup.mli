(** The conventional-optimization pipeline ("all of vpo's conventional
    optimizations", paper Section 9), applied to a fixpoint:

    branch chaining -> unreachable-code removal -> copy/constant
    propagation (including the reaching-definitions pass
    {!Const_prop}) -> dead-code elimination, then code repositioning.

    {!finalize} additionally fills delay slots; it must run last (the
    paper applies reordering before delay slots are filled). *)

val run : Mir.Program.t -> unit
val run_func : Mir.Func.t -> unit

val finalize : ?steal_delay_slots:bool -> Mir.Program.t -> int
(** [run] + delay-slot filling; returns the number of slots filled.
    [steal_delay_slots] (default true) enables fill-from-successor. *)
