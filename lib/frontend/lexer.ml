type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let loc st = { Srcloc.line = st.line; col = st.pos - st.bol + 1 }
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "int" | "char" -> Some Token.KW_INT
  | "void" -> Some Token.KW_VOID
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "do" -> Some Token.KW_DO
  | "for" -> Some Token.KW_FOR
  | "switch" -> Some Token.KW_SWITCH
  | "case" -> Some Token.KW_CASE
  | "default" -> Some Token.KW_DEFAULT
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "return" -> Some Token.KW_RETURN
  | _ -> None

let lex_escape st =
  match peek st with
  | None -> Srcloc.error (loc st) "unterminated escape sequence"
  | Some c ->
    advance st;
    (match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | c -> Srcloc.error (loc st) "unknown escape '\\%c'" c)

let lex_char_literal st start =
  (* opening quote already consumed *)
  let c =
    match peek st with
    | None -> Srcloc.error start "unterminated character literal"
    | Some '\\' ->
      advance st;
      lex_escape st
    | Some c ->
      advance st;
      c
  in
  (match peek st with
  | Some '\'' -> advance st
  | Some _ | None -> Srcloc.error start "unterminated character literal");
  Token.INT (Char.code c)

let lex_string st start =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> Srcloc.error start "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (lex_escape st);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let lex_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    let start_loc = loc st in
    advance st;
    advance st;
    let digits = st.pos in
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    if st.pos = digits then
      Srcloc.error start_loc "hexadecimal literal with no digits";
    Token.INT (int_of_string (String.sub st.src start (st.pos - start)))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Token.INT (int_of_string (String.sub st.src start (st.pos - start)))
  end

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match keyword s with Some kw -> kw | None -> Token.IDENT s

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
    let start = loc st in
    advance st;
    advance st;
    let rec close () =
      match peek st, peek2 st with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        close ()
      | None, _ -> Srcloc.error start "unterminated comment"
    in
    close ();
    skip_ws_and_comments st
  | Some _ | None -> ()

let two st tok = advance st; advance st; tok
let one st tok = advance st; tok

let next_token st =
  skip_ws_and_comments st;
  let l = loc st in
  let tok =
    match peek st with
    | None -> Token.EOF_TOK
    | Some c -> (
      match c, peek2 st with
      | '\'', _ ->
        advance st;
        lex_char_literal st l
      | '"', _ ->
        advance st;
        lex_string st l
      | c, _ when is_digit c -> lex_number st
      | c, _ when is_ident_start c -> lex_ident st
      | '+', Some '+' -> two st Token.PLUSPLUS
      | '+', Some '=' -> two st Token.PLUS_ASSIGN
      | '+', _ -> one st Token.PLUS
      | '-', Some '-' -> two st Token.MINUSMINUS
      | '-', Some '=' -> two st Token.MINUS_ASSIGN
      | '-', _ -> one st Token.MINUS
      | '*', Some '=' -> two st Token.STAR_ASSIGN
      | '*', _ -> one st Token.STAR
      | '/', Some '=' -> two st Token.SLASH_ASSIGN
      | '/', _ -> one st Token.SLASH
      | '%', Some '=' -> two st Token.PERCENT_ASSIGN
      | '%', _ -> one st Token.PERCENT
      | '=', Some '=' -> two st Token.EQ
      | '=', _ -> one st Token.ASSIGN
      | '!', Some '=' -> two st Token.NE
      | '!', _ -> one st Token.BANG
      | '<', Some '=' -> two st Token.LE
      | '<', Some '<' -> two st Token.SHL
      | '<', _ -> one st Token.LT
      | '>', Some '=' -> two st Token.GE
      | '>', Some '>' -> two st Token.SHR
      | '>', _ -> one st Token.GT
      | '&', Some '&' -> two st Token.AMPAMP
      | '&', _ -> one st Token.AMP
      | '|', Some '|' -> two st Token.BARBAR
      | '|', _ -> one st Token.BAR
      | '^', _ -> one st Token.CARET
      | '~', _ -> one st Token.TILDE
      | '(', _ -> one st Token.LPAREN
      | ')', _ -> one st Token.RPAREN
      | '{', _ -> one st Token.LBRACE
      | '}', _ -> one st Token.RBRACE
      | '[', _ -> one st Token.LBRACKET
      | ']', _ -> one st Token.RBRACKET
      | ';', _ -> one st Token.SEMI
      | ',', _ -> one st Token.COMMA
      | ':', _ -> one st Token.COLON
      | '?', _ -> one st Token.QUESTION
      | c, _ -> Srcloc.error l "unexpected character '%c'" c)
  in
  (tok, l)

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let (tok, _) as entry = next_token st in
    match tok with
    | Token.EOF_TOK -> List.rev (entry :: acc)
    | _ -> go (entry :: acc)
  in
  go []
