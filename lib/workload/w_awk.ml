(* awk: pattern scanning core running the program
     { n += NF; if ($1 > 50000) big++; sum += $2;
       if ($3 ~ /7/) sevens++;
       if ($2 > max2) max2 = $2; if ($2 < min2) min2 = $2 }
     END { print NR, n, big, sum, sevens, max2, min2, sum/NR }
   — per-line field splitting, decimal conversion, range tests, a
   contains-digit scan and running extrema.

   As in real awk, the field separator FS is a runtime variable, not a
   literal: the splitting loops compare against the [fs] register.  The
   syntactic sequence detector cannot use those compares (it needs a
   register-vs-constant test), but the interval facts prove [fs] holds
   ' ' throughout, so analysis-strengthened detection recovers the full
   separator-skip and field-scan chains. *)

let source =
  {|
int main() {
  int c;
  int lines = 0;
  int fields = 0;
  int big = 0;
  int sum = 0;
  int sevens = 0;
  int max2 = 0;
  int min2 = 999999;
  int fs = ' ';   /* separator set: variables, as in real awk (FS) */
  int tab = '\t';
  int rs = '\n';  /* record separator, also an awk variable (RS) */
  c = getchar();
  while (c != EOF) {
    int nf = 0;
    int f1 = 0;
    int f2 = 0;
    while (c != EOF && c != rs) {
      /* skip field separators */
      while (c == fs || c == tab)
        c = getchar();
      if (c != EOF && c != rs) {
        nf++;
        int value = 0;
        int is_num = 1;
        int has_seven = 0;
        while (c != EOF && c != fs && c != tab && c != rs) {
          if (c >= '0' && c <= '9') {
            value = value * 10 + (c - '0');
            if (c == '7')
              has_seven = 1;
          } else
            is_num = 0;
          c = getchar();
        }
        if (is_num == 1) {
          if (nf == 1)
            f1 = value;
          if (nf == 2)
            f2 = value;
          if (nf == 3 && has_seven == 1)
            sevens++;
        }
      }
    }
    lines++;
    fields = fields + nf;
    if (f1 > 50000)
      big++;
    sum = sum + f2;
    if (f2 > max2)
      max2 = f2;
    if (f2 < min2)
      min2 = f2;
    if (c == rs)
      c = getchar();
  }
  print_num(lines);
  putchar(' ');
  print_num(fields);
  putchar(' ');
  print_num(big);
  putchar(' ');
  print_num(sum);
  putchar(' ');
  print_num(sevens);
  putchar(' ');
  print_num(max2);
  putchar(' ');
  print_num(min2);
  putchar(' ');
  if (lines > 0)
    print_num(sum / lines);
  putchar('\n');
  return 0;
}
|}

let spec =
  Spec.make ~name:"awk"
    ~description:"Pattern Scanning and Processing Language" ~source
    ~training_input:(lazy (Textgen.numbers ~seed:2525 ~lines:2_500 ~fields:5))
    ~test_input:(lazy (Textgen.numbers ~seed:2626 ~lines:3_800 ~fields:5))
