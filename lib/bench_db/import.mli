(** Importers lifting every historical [BENCH_PR*.json] shape into the
    normalized {!Record.t}.

    Three source families are recognized automatically:

    - the {b suite matrix} shape ([{"pr": n, "workloads": [...], ...}],
      PR 1/2/4/5/6 — with or without the [backends] race, the [outcomes]
      tally and the per-workload detection counts);
    - the {b serve/replay} shape ([{"bench": "serve_replay", ...}],
      PR 7);
    - the {b fuzz} shape ([{"bench": "fuzz", ...}], PR 3).

    Importer policy for historical snapshots: scale-invariant ratios
    (backend speedups, instruction/branch reduction percentages, caught
    ratios, cache hit rates) are imported as {e gated} metrics with
    per-metric tolerances; raw wall-clock seconds are imported {e
    ungated} because the snapshots were recorded on different machines
    and input scales — a fresh same-machine series recorded with
    [bromc bench record --gate-wall] gates them.  Fast-input and
    full-input suite runs land in different contexts ([suite-fast] /
    [suite-full]) so the gate never compares across input scales. *)

val seq_of_filename : string -> int option
(** [seq_of_filename "path/BENCH_PR6.json"] is [Some 6]. *)

val of_json :
  ?seq:int ->
  ?label:string ->
  ?commit:string ->
  ?gate_wall:bool ->
  source:string ->
  Json.t ->
  (Record.t, string) result
(** [seq] defaults to the snapshot's ["pr"] field when present; [label]
    to ["PR<seq>"].  [gate_wall] (default [false]) marks wall-clock
    metrics as gated — for fresh records measured in a stable
    environment. *)

val of_file :
  ?seq:int -> ?label:string -> ?commit:string -> ?gate_wall:bool ->
  string -> (Record.t, string) result
(** {!of_json} on a file, inferring [seq] from the [BENCH_PR<n>]
    filename when the payload has no ["pr"] field. *)
