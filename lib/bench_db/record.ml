let schema_version = 1

type dir = Higher | Lower

type metric = {
  m_name : string;
  m_value : float;
  m_unit : string;
  m_dir : dir;
  m_gate : bool;
  m_floor : float;
  m_tolerance : float option;
}

type t = {
  r_schema : int;
  r_seq : int;
  r_label : string;
  r_commit : string;
  r_context : string;
  r_source : string;
  r_runs : int;
  r_metrics : metric list;
}

let metric ?(unit_ = "count") ?(dir = Higher) ?(gate = false) ?(floor = 0.)
    ?tolerance name value =
  {
    m_name = name;
    m_value = value;
    m_unit = unit_;
    m_dir = dir;
    m_gate = gate;
    m_floor = floor;
    m_tolerance = tolerance;
  }

let make ?(commit = "") ?(source = "") ?(runs = 1) ~seq ~label ~context metrics =
  {
    r_schema = schema_version;
    r_seq = seq;
    r_label = label;
    r_commit = commit;
    r_context = context;
    r_source = source;
    r_runs = runs;
    r_metrics = metrics;
  }

let find r name =
  List.find_opt (fun m -> String.equal m.m_name name) r.r_metrics

let gated r = List.filter (fun m -> m.m_gate) r.r_metrics

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let dir_name = function Higher -> "higher" | Lower -> "lower"

let encode_metric m =
  Json.Obj
    ([
       ("name", Json.Str m.m_name);
       ("value", Json.Float m.m_value);
       ("unit", Json.Str m.m_unit);
       ("dir", Json.Str (dir_name m.m_dir));
       ("gate", Json.Bool m.m_gate);
       ("floor", Json.Float m.m_floor);
     ]
    @
    match m.m_tolerance with
    | Some t -> [ ("tolerance", Json.Float t) ]
    | None -> [])

let encode r =
  Json.Obj
    [
      ("schema", Json.Int r.r_schema);
      ("seq", Json.Int r.r_seq);
      ("label", Json.Str r.r_label);
      ("commit", Json.Str r.r_commit);
      ("context", Json.Str r.r_context);
      ("source", Json.Str r.r_source);
      ("runs", Json.Int r.r_runs);
      ("metrics", Json.Arr (List.map encode_metric r.r_metrics));
    ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name extract j =
  match Option.bind (Json.member name j) extract with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let decode_metric j =
  let* name = field "name" Json.str j in
  let* value = field "value" Json.num j in
  let* unit_ = field "unit" Json.str j in
  let* dir_s = field "dir" Json.str j in
  let* dir =
    match dir_s with
    | "higher" -> Ok Higher
    | "lower" -> Ok Lower
    | s -> Error (Printf.sprintf "metric %s: unknown dir %S" name s)
  in
  let* gate = field "gate" Json.bool j in
  let* floor = field "floor" Json.num j in
  let tolerance = Option.bind (Json.member "tolerance" j) Json.num in
  Ok
    {
      m_name = name;
      m_value = value;
      m_unit = unit_;
      m_dir = dir;
      m_gate = gate;
      m_floor = floor;
      m_tolerance = tolerance;
    }

let decode j =
  let* schema = field "schema" Json.int j in
  if schema < 1 || schema > schema_version then
    Error
      (Printf.sprintf
         "record schema v%d not supported (this reader knows 1..%d)" schema
         schema_version)
  else
    let* seq = field "seq" Json.int j in
    let* label = field "label" Json.str j in
    let* commit = field "commit" Json.str j in
    let* context = field "context" Json.str j in
    let* source = field "source" Json.str j in
    let* runs = field "runs" Json.int j in
    let* metrics_json = field "metrics" Json.arr j in
    let* metrics =
      List.fold_left
        (fun acc mj ->
          let* acc = acc in
          let* m = decode_metric mj in
          Ok (m :: acc))
        (Ok []) metrics_json
    in
    Ok
      {
        r_schema = schema;
        r_seq = seq;
        r_label = label;
        r_commit = commit;
        r_context = context;
        r_source = source;
        r_runs = runs;
        r_metrics = List.rev metrics;
      }

let to_line r = Json.to_string ~compact:true (encode r)

let of_line line =
  match Json.parse line with
  | j -> decode j
  | exception Json.Parse_error m -> Error m

let metric_equal a b =
  String.equal a.m_name b.m_name
  && a.m_value = b.m_value
  && String.equal a.m_unit b.m_unit
  && a.m_dir = b.m_dir && a.m_gate = b.m_gate && a.m_floor = b.m_floor
  && a.m_tolerance = b.m_tolerance

let equal a b =
  a.r_schema = b.r_schema && a.r_seq = b.r_seq
  && String.equal a.r_label b.r_label
  && String.equal a.r_commit b.r_commit
  && String.equal a.r_context b.r_context
  && String.equal a.r_source b.r_source
  && a.r_runs = b.r_runs
  && List.length a.r_metrics = List.length b.r_metrics
  && List.for_all2 metric_equal a.r_metrics b.r_metrics

let pp ppf r =
  Format.fprintf ppf "%s [%s] seq %d, %d metric(s), gated: %s" r.r_label
    r.r_context r.r_seq
    (List.length r.r_metrics)
    (match gated r with
    | [] -> "(none)"
    | ms -> String.concat ", " (List.map (fun m -> m.m_name) ms))
