(** The normalized benchmark record: one measurement epoch, one line of
    the append-only history.

    Seven historical [BENCH_PR*.json] snapshots accumulated seven
    drifting schemas (suite matrices with and without backend races,
    outcome tallies, detection counts; a serve/replay shape; a fuzz
    shape).  This type is the common denominator they are all lifted
    into: a schema-versioned envelope of {e metrics} — named scalar
    observations, each carrying its unit, its direction of goodness,
    whether the regression gate watches it, an absolute noise floor, and
    an optional per-metric regression tolerance.

    Records are comparable only within a {e context} (e.g. a fast-input
    suite run is not comparable to a full-input one); the gate's
    baseline search never crosses contexts. *)

val schema_version : int
(** Current encoder schema.  {!decode} accepts any version in
    [1..schema_version] and refuses later ones, so an old binary fails
    loudly on a future history rather than misreading it. *)

type dir = Higher | Lower  (** which way is better *)

type metric = {
  m_name : string;  (** dotted path, e.g. ["backends.native_vs_reference"] *)
  m_value : float;
  m_unit : string;  (** ["s"], ["x"], ["pct"], ["rps"], ["ms"], ["count"] *)
  m_dir : dir;
  m_gate : bool;    (** watched by [bromc bench gate] *)
  m_floor : float;
      (** absolute noise floor in the metric's own unit: deltas with
          [|head - base| <= m_floor] never gate, whatever the
          percentage — the anti-flap guard for near-zero denominators *)
  m_tolerance : float option;
      (** maximum tolerated regression in percent; [None] means the
          gate's command-line default applies *)
}

type t = {
  r_schema : int;
  r_seq : int;       (** position in the series (PR number / epoch) *)
  r_label : string;  (** unique name, e.g. ["PR6"] *)
  r_commit : string; (** git commit hash, [""] when unrecorded *)
  r_context : string;
      (** comparability class: ["suite-full"], ["suite-fast"],
          ["serve"], ["fuzz"], ... *)
  r_source : string; (** provenance: importing file name or ["live"] *)
  r_runs : int;      (** best-of-N cycles behind the timing metrics *)
  r_metrics : metric list;
}

val metric :
  ?unit_:string ->
  ?dir:dir ->
  ?gate:bool ->
  ?floor:float ->
  ?tolerance:float ->
  string ->
  float ->
  metric
(** Defaults: unit ["count"], dir [Higher], gate [false], floor [0.]. *)

val make :
  ?commit:string ->
  ?source:string ->
  ?runs:int ->
  seq:int ->
  label:string ->
  context:string ->
  metric list ->
  t

val find : t -> string -> metric option
val gated : t -> metric list

val encode : t -> Json.t
val decode : Json.t -> (t, string) result

val to_line : t -> string
(** One compact JSON line (no newline). *)

val of_line : string -> (t, string) result

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human summary: label, context, metric count, gated metric names. *)
