type repro = {
  rp_name : string;
  rp_origin : string;
  rp_heuristic : int;
  rp_facts : bool;
  rp_coalesce : bool;
  rp_train : string;
  rp_test : string;
  rp_program : Mir.Program.t;
}

let magic = "; bromc repro v1"

let heuristic_set = function
  | 0 -> Mopt.Switch_lower.set_i
  | 1 -> Mopt.Switch_lower.set_ii
  | _ -> Mopt.Switch_lower.set_iii

let heuristic_index name =
  match name with "I" -> Some 0 | "II" -> Some 1 | "III" -> Some 2 | _ -> None

let single_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let of_spec ~name ~origin ~facts ~coalesce (spec : Check.Gen.spec) =
  {
    rp_name = name;
    rp_origin = single_line origin;
    rp_heuristic = spec.Check.Gen.sp_heuristic;
    rp_facts = facts;
    rp_coalesce = coalesce;
    rp_train = spec.Check.Gen.sp_train;
    rp_test = spec.Check.Gen.sp_test;
    rp_program = Check.Gen.to_program spec;
  }

(* ------------------------------------------------------------------ *)
(* File format                                                         *)
(* ------------------------------------------------------------------ *)

let to_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (magic ^ "\n");
  Buffer.add_string buf ("; origin: " ^ r.rp_origin ^ "\n");
  Buffer.add_string buf
    ("; heuristic: " ^ (heuristic_set r.rp_heuristic).Mopt.Switch_lower.hs_name
    ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "; facts: %b\n; coalesce: %b\n" r.rp_facts r.rp_coalesce);
  Buffer.add_string buf ("; train: " ^ Json.escape_string r.rp_train ^ "\n");
  Buffer.add_string buf ("; test: " ^ Json.escape_string r.rp_test ^ "\n");
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Format.asprintf "%a" Mir.Program.pp r.rp_program);
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "." && dir <> "/" && dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let save ~dir r =
  mkdir_p dir;
  let path = Filename.concat dir (r.rp_name ^ ".mir") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_text r));
  path

let of_text ~name text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest when String.trim first = magic ->
    let header, body =
      let rec split acc = function
        | l :: tl when String.length (String.trim l) > 0
                       && (String.trim l).[0] = ';' ->
          split (String.trim l :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      split [] rest
    in
    let field key =
      let prefix = "; " ^ key ^ ": " in
      List.find_map
        (fun l ->
          if String.length l >= String.length prefix
             && String.sub l 0 (String.length prefix) = prefix
          then
            Some
              (String.sub l (String.length prefix)
                 (String.length l - String.length prefix))
          else None)
        header
    in
    let require key =
      match field key with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing header field %S" key)
    in
    let quoted key =
      let* v = require key in
      match Json.unescape_string v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "bad quoted header field %S" key)
    in
    let* origin = require "origin" in
    let* hname = require "heuristic" in
    let* heuristic =
      Option.to_result
        ~none:(Printf.sprintf "unknown heuristic set %S" hname)
        (heuristic_index hname)
    in
    let* facts = Result.map (( = ) "true") (require "facts") in
    let* coalesce = Result.map (( = ) "true") (require "coalesce") in
    let* train = quoted "train" in
    let* test = quoted "test" in
    let* program =
      match Mir.Parse.program (String.concat "\n" body) with
      | p -> Ok p
      | exception Mir.Parse.Error (l, m) ->
        Error (Printf.sprintf "line %d: %s" l m)
    in
    Ok
      {
        rp_name = name;
        rp_origin = origin;
        rp_heuristic = heuristic;
        rp_facts = facts;
        rp_coalesce = coalesce;
        rp_train = train;
        rp_test = test;
        rp_program = program;
      }
  | _ -> Error "not a bromc repro file (missing magic header)"

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text ->
    Result.map_error
      (fun m -> path ^ ": " ^ m)
      (of_text ~name:(Filename.remove_extension (Filename.basename path)) text)

let load_dir dir =
  if not (Sys.file_exists dir) then Ok []
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".mir")
      |> List.sort compare
    in
    List.fold_left
      (fun acc f ->
        match acc with
        | Error _ as e -> e
        | Ok rs -> (
          match load_file (Filename.concat dir f) with
          | Ok r -> Ok (r :: rs)
          | Error _ as e -> e))
      (Ok []) files
    |> Result.map List.rev
  end

(* ------------------------------------------------------------------ *)
(* Replay and minting                                                  *)
(* ------------------------------------------------------------------ *)

let replay ?backends ?profile r =
  Check.Fuzz.run_program ?backends ?profile
    ~facts:r.rp_facts ~coalesce:r.rp_coalesce
    ~heuristic:(heuristic_set r.rp_heuristic)
    ~train:r.rp_train ~test:r.rp_test r.rp_program

let mint_from_inject ?(backends = Check.Fuzz.default_backends) ~seed ~cases
    ~max () =
  let repros = ref [] in
  let minted = ref 0 in
  let case = ref 0 in
  while !minted < max && !case < cases do
    let c = !case in
    let spec = Check.Fuzz.spec_of_case ~seed ~case:c in
    let out = Check.Fuzz.run_case ~backends ~inject:true ~case:c spec in
    if out.Check.Fuzz.co_caught then begin
      let keep s =
        (Check.Fuzz.run_case ~backends ~inject:true ~case:c s)
          .Check.Fuzz.co_caught
      in
      let shrunk = Check.Gen.shrink_spec ~keep spec in
      incr minted;
      repros :=
        of_spec
          ~name:(Printf.sprintf "inject-wrong-default-s%d-c%03d" seed c)
          ~origin:
            (Printf.sprintf
               "fuzz --inject seed=%d case=%d: verifier rejected a planted \
                wrong default target; spec shrunk while the catch held"
               seed c)
          ~facts:(Check.Fuzz.case_facts c)
          ~coalesce:(Check.Fuzz.case_coalesce c)
          shrunk
        :: !repros
    end;
    incr case
  done;
  List.rev !repros

let mint_from_failure ~seed (f : Check.Fuzz.failure) =
  of_spec
    ~name:(Printf.sprintf "fuzz-failure-s%d-c%03d" seed f.Check.Fuzz.f_case)
    ~origin:
      (Printf.sprintf "fuzz seed=%d case=%d: %s" seed f.Check.Fuzz.f_case
         (match f.Check.Fuzz.f_errors with e :: _ -> e | [] -> "failure"))
    ~facts:(Check.Fuzz.case_facts f.Check.Fuzz.f_case)
    ~coalesce:(Check.Fuzz.case_coalesce f.Check.Fuzz.f_case)
    f.Check.Fuzz.f_shrunk
