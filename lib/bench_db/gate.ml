type status = Pass | Improved | Fail | Below_floor | No_baseline

type verdict = {
  v_metric : string;
  v_unit : string;
  v_dir : Record.dir;
  v_head : float;
  v_base : float option;
  v_base_label : string option;
  v_regress_pct : float;
  v_threshold : float;
  v_floor : float;
  v_status : status;
}

let default_max_regress = 10.

(* latest record before [head] in the same context that carries [name];
   [against] pins the label instead *)
let baseline_for ?against ~(head : Record.t) ~history name =
  let candidates =
    List.filter
      (fun (r : Record.t) ->
        (match against with
        | Some label -> String.equal r.Record.r_label label
        | None ->
          r.Record.r_seq <= head.Record.r_seq
          && not (String.equal r.Record.r_label head.Record.r_label))
        && String.equal r.Record.r_context head.Record.r_context
        && Record.find r name <> None)
      history
  in
  List.fold_left
    (fun best (r : Record.t) ->
      match best with
      | Some (b : Record.t) when b.Record.r_seq >= r.Record.r_seq -> best
      | _ -> Some r)
    None candidates

let check ?(max_regress = default_max_regress) ?against ~(head : Record.t)
    ~history () =
  List.map
    (fun (m : Record.metric) ->
      let threshold =
        Option.value ~default:max_regress m.Record.m_tolerance
      in
      let base_record = baseline_for ?against ~head ~history m.Record.m_name in
      match
        Option.bind base_record (fun r -> Record.find r m.Record.m_name)
      with
      | None ->
        {
          v_metric = m.Record.m_name;
          v_unit = m.Record.m_unit;
          v_dir = m.Record.m_dir;
          v_head = m.Record.m_value;
          v_base = None;
          v_base_label = None;
          v_regress_pct = 0.;
          v_threshold = threshold;
          v_floor = m.Record.m_floor;
          v_status = No_baseline;
        }
      | Some bm ->
        let base = bm.Record.m_value in
        let head_v = m.Record.m_value in
        let delta = head_v -. base in
        (* signed worsening in the metric's bad direction *)
        let worsening =
          match m.Record.m_dir with
          | Record.Higher -> -.delta
          | Record.Lower -> delta
        in
        let regress_pct =
          if worsening <= 0. then 0.
          else if Float.abs base > 1e-12 then
            100. *. worsening /. Float.abs base
          else 999.  (* worsened off a zero baseline: floor decides *)
        in
        let status =
          if Float.abs delta <= m.Record.m_floor then Below_floor
          else if worsening <= 0. then Improved
          else if regress_pct > threshold then Fail
          else Pass
        in
        {
          v_metric = m.Record.m_name;
          v_unit = m.Record.m_unit;
          v_dir = m.Record.m_dir;
          v_head = head_v;
          v_base = Some base;
          v_base_label =
            Option.map (fun (r : Record.t) -> r.Record.r_label) base_record;
          v_regress_pct = regress_pct;
          v_threshold = threshold;
          v_floor = m.Record.m_floor;
          v_status = status;
        })
    (Record.gated head)

let failures = List.filter (fun v -> v.v_status = Fail)

let status_name = function
  | Pass -> "pass"
  | Improved -> "improved"
  | Fail -> "FAIL"
  | Below_floor -> "below-floor"
  | No_baseline -> "no-baseline"

let pp_verdict ppf v =
  match v.v_base with
  | None ->
    Format.fprintf ppf "%-36s %-11s %12.4g %s (first observation)"
      v.v_metric (status_name v.v_status) v.v_head v.v_unit
  | Some base ->
    Format.fprintf ppf
      "%-36s %-11s %12.4g vs %.4g %s (%s %+.1f%%, tolerance %.1f%%%s)"
      v.v_metric (status_name v.v_status) v.v_head base v.v_unit
      (match v.v_dir with Record.Higher -> "higher-better"
       | Record.Lower -> "lower-better")
      (match v.v_dir with
      | Record.Higher when base <> 0. -> 100. *. (v.v_head -. base) /. Float.abs base
      | Record.Lower when base <> 0. -> 100. *. (v.v_head -. base) /. Float.abs base
      | _ -> 0.)
      v.v_threshold
      (Option.fold ~none:"" ~some:(fun l -> ", baseline " ^ l) v.v_base_label)

let pp ppf verdicts =
  let fails, rest = List.partition (fun v -> v.v_status = Fail) verdicts in
  List.iter (fun v -> Format.fprintf ppf "%a@\n" pp_verdict v) (rest @ fails)
