(** The minimized-repro corpus: every counterexample the tooling ever
    caught, shrunk and committed as a [.mir] file that replays
    deterministically through the whole pipeline.

    A repro file is the MIR program text prefixed by a [;]-comment
    header carrying everything the replay needs: the originating event,
    the switch-lowering heuristic set, the detector/coalescing choices,
    and the training and test inputs.  Replay runs the exact fuzz-case
    stages ({!Check.Fuzz.run_program}): validate → lower → train →
    reorder → certify → lint cross-check → backend differential.  A
    repro minted from a caught injected bug (or a fixed real bug)
    replays {e green} — the corpus is a regression suite, pinning the
    programs that once exposed a weakness. *)

type repro = {
  rp_name : string;       (** file basename without [.mir] *)
  rp_origin : string;     (** free-form provenance line *)
  rp_heuristic : int;     (** 0, 1, 2 = heuristic set I, II, III *)
  rp_facts : bool;        (** interval-facts detector (vs syntactic) *)
  rp_coalesce : bool;     (** SPARC IPC coalescing model *)
  rp_train : string;
  rp_test : string;
  rp_program : Mir.Program.t;
}

val heuristic_set : int -> Mopt.Switch_lower.heuristic_set
(** [0 → I], [1 → II], [2 → III]; out-of-range clamps to III. *)

val of_spec :
  name:string -> origin:string -> facts:bool -> coalesce:bool ->
  Check.Gen.spec -> repro
(** Freeze a (typically shrunk) fuzz spec as a repro. *)

val save : dir:string -> repro -> string
(** Write [dir/<name>.mir] (creating [dir] if needed); returns the
    path.  [load_file (save ~dir r)] is [r] up to program layout. *)

val load_file : string -> (repro, string) result
val load_dir : string -> (repro list, string) result
(** Every [.mir] file under [dir], sorted by name; a missing directory
    is an empty corpus.  The first malformed file is an error naming
    it. *)

val replay :
  ?backends:Check.Fuzz.backend list ->
  ?profile:[ `Trained | `Static ] ->
  repro ->
  Check.Fuzz.case_out
(** One repro through {!Check.Fuzz.run_program} under its recorded
    choices.  [backends] defaults to {!Check.Fuzz.default_backends};
    [profile] (default [`Trained]) replays the repro under the static
    prediction instead of its recorded training run. *)

val mint_from_inject :
  ?backends:Check.Fuzz.backend list ->
  seed:int -> cases:int -> max:int -> unit -> repro list
(** Recreate inject-mode fuzz cases, shrink each caught one with
    {!Check.Gen.shrink_spec} while the verifier still catches the
    planted bug, and freeze the first [max] distinct shrunk specs as
    repros — the corpus seeding path. *)

val mint_from_failure :
  seed:int -> Check.Fuzz.failure -> repro
(** Freeze a real fuzz failure's shrunk counterexample, naming the
    first error in the origin line ([bromc fuzz --corpus-dir]). *)
